file(REMOVE_RECURSE
  "CMakeFiles/csr_view_test.dir/graph/csr_view_test.cc.o"
  "CMakeFiles/csr_view_test.dir/graph/csr_view_test.cc.o.d"
  "csr_view_test"
  "csr_view_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csr_view_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
