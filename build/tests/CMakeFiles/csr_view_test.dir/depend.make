# Empty dependencies file for csr_view_test.
# This may be replaced when dependencies are built.
