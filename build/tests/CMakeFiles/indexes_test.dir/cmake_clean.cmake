file(REMOVE_RECURSE
  "CMakeFiles/indexes_test.dir/graph/indexes_test.cc.o"
  "CMakeFiles/indexes_test.dir/graph/indexes_test.cc.o.d"
  "indexes_test"
  "indexes_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/indexes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
