# Empty compiler generated dependencies file for code_map_test.
# This may be replaced when dependencies are built.
