file(REMOVE_RECURSE
  "CMakeFiles/code_map_test.dir/vis/code_map_test.cc.o"
  "CMakeFiles/code_map_test.dir/vis/code_map_test.cc.o.d"
  "code_map_test"
  "code_map_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/code_map_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
