# Empty compiler generated dependencies file for treemap_test.
# This may be replaced when dependencies are built.
