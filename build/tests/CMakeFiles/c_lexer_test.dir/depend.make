# Empty dependencies file for c_lexer_test.
# This may be replaced when dependencies are built.
