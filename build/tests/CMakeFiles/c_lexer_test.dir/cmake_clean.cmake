file(REMOVE_RECURSE
  "CMakeFiles/c_lexer_test.dir/extractor/c_lexer_test.cc.o"
  "CMakeFiles/c_lexer_test.dir/extractor/c_lexer_test.cc.o.d"
  "c_lexer_test"
  "c_lexer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/c_lexer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
