# Empty compiler generated dependencies file for code_graph_test.
# This may be replaced when dependencies are built.
