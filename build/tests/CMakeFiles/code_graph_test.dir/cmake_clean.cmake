file(REMOVE_RECURSE
  "CMakeFiles/code_graph_test.dir/model/code_graph_test.cc.o"
  "CMakeFiles/code_graph_test.dir/model/code_graph_test.cc.o.d"
  "code_graph_test"
  "code_graph_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/code_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
