file(REMOVE_RECURSE
  "CMakeFiles/graph_view_test.dir/graph/graph_view_test.cc.o"
  "CMakeFiles/graph_view_test.dir/graph/graph_view_test.cc.o.d"
  "graph_view_test"
  "graph_view_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_view_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
