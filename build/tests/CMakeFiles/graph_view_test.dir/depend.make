# Empty dependencies file for graph_view_test.
# This may be replaced when dependencies are built.
