file(REMOVE_RECURSE
  "CMakeFiles/property_map_test.dir/graph/property_map_test.cc.o"
  "CMakeFiles/property_map_test.dir/graph/property_map_test.cc.o.d"
  "property_map_test"
  "property_map_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_map_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
