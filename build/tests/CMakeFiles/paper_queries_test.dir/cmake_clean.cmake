file(REMOVE_RECURSE
  "CMakeFiles/paper_queries_test.dir/query/paper_queries_test.cc.o"
  "CMakeFiles/paper_queries_test.dir/query/paper_queries_test.cc.o.d"
  "paper_queries_test"
  "paper_queries_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paper_queries_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
