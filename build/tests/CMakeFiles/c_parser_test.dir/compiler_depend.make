# Empty compiler generated dependencies file for c_parser_test.
# This may be replaced when dependencies are built.
