file(REMOVE_RECURSE
  "CMakeFiles/c_parser_test.dir/extractor/c_parser_test.cc.o"
  "CMakeFiles/c_parser_test.dir/extractor/c_parser_test.cc.o.d"
  "c_parser_test"
  "c_parser_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/c_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
