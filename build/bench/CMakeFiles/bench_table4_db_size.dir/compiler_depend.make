# Empty compiler generated dependencies file for bench_table4_db_size.
# This may be replaced when dependencies are built.
