# Empty compiler generated dependencies file for bench_table5_query_performance.
# This may be replaced when dependencies are built.
