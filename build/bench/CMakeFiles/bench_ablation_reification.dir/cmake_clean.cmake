file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_reification.dir/bench_ablation_reification.cc.o"
  "CMakeFiles/bench_ablation_reification.dir/bench_ablation_reification.cc.o.d"
  "bench_ablation_reification"
  "bench_ablation_reification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_reification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
