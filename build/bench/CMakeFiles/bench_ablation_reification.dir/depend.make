# Empty dependencies file for bench_ablation_reification.
# This may be replaced when dependencies are built.
