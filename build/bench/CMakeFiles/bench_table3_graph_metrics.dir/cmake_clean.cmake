file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_graph_metrics.dir/bench_table3_graph_metrics.cc.o"
  "CMakeFiles/bench_table3_graph_metrics.dir/bench_table3_graph_metrics.cc.o.d"
  "bench_table3_graph_metrics"
  "bench_table3_graph_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_graph_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
