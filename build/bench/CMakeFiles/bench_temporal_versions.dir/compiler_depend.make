# Empty compiler generated dependencies file for bench_temporal_versions.
# This may be replaced when dependencies are built.
