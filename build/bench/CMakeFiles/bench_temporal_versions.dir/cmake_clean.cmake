file(REMOVE_RECURSE
  "CMakeFiles/bench_temporal_versions.dir/bench_temporal_versions.cc.o"
  "CMakeFiles/bench_temporal_versions.dir/bench_temporal_versions.cc.o.d"
  "bench_temporal_versions"
  "bench_temporal_versions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_temporal_versions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
