file(REMOVE_RECURSE
  "CMakeFiles/frappe_common.dir/status.cc.o"
  "CMakeFiles/frappe_common.dir/status.cc.o.d"
  "CMakeFiles/frappe_common.dir/string_util.cc.o"
  "CMakeFiles/frappe_common.dir/string_util.cc.o.d"
  "libfrappe_common.a"
  "libfrappe_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frappe_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
