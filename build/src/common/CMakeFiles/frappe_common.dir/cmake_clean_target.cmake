file(REMOVE_RECURSE
  "libfrappe_common.a"
)
