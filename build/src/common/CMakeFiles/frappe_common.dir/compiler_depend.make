# Empty compiler generated dependencies file for frappe_common.
# This may be replaced when dependencies are built.
