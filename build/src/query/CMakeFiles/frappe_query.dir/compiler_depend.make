# Empty compiler generated dependencies file for frappe_query.
# This may be replaced when dependencies are built.
