file(REMOVE_RECURSE
  "CMakeFiles/frappe_query.dir/database.cc.o"
  "CMakeFiles/frappe_query.dir/database.cc.o.d"
  "CMakeFiles/frappe_query.dir/executor.cc.o"
  "CMakeFiles/frappe_query.dir/executor.cc.o.d"
  "CMakeFiles/frappe_query.dir/explain.cc.o"
  "CMakeFiles/frappe_query.dir/explain.cc.o.d"
  "CMakeFiles/frappe_query.dir/lexer.cc.o"
  "CMakeFiles/frappe_query.dir/lexer.cc.o.d"
  "CMakeFiles/frappe_query.dir/parser.cc.o"
  "CMakeFiles/frappe_query.dir/parser.cc.o.d"
  "CMakeFiles/frappe_query.dir/session.cc.o"
  "CMakeFiles/frappe_query.dir/session.cc.o.d"
  "libfrappe_query.a"
  "libfrappe_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frappe_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
