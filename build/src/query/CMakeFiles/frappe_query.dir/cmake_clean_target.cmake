file(REMOVE_RECURSE
  "libfrappe_query.a"
)
