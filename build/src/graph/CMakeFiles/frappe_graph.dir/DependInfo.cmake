
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/csr_view.cc" "src/graph/CMakeFiles/frappe_graph.dir/csr_view.cc.o" "gcc" "src/graph/CMakeFiles/frappe_graph.dir/csr_view.cc.o.d"
  "/root/repo/src/graph/graph_store.cc" "src/graph/CMakeFiles/frappe_graph.dir/graph_store.cc.o" "gcc" "src/graph/CMakeFiles/frappe_graph.dir/graph_store.cc.o.d"
  "/root/repo/src/graph/indexes.cc" "src/graph/CMakeFiles/frappe_graph.dir/indexes.cc.o" "gcc" "src/graph/CMakeFiles/frappe_graph.dir/indexes.cc.o.d"
  "/root/repo/src/graph/snapshot.cc" "src/graph/CMakeFiles/frappe_graph.dir/snapshot.cc.o" "gcc" "src/graph/CMakeFiles/frappe_graph.dir/snapshot.cc.o.d"
  "/root/repo/src/graph/stats.cc" "src/graph/CMakeFiles/frappe_graph.dir/stats.cc.o" "gcc" "src/graph/CMakeFiles/frappe_graph.dir/stats.cc.o.d"
  "/root/repo/src/graph/traversal.cc" "src/graph/CMakeFiles/frappe_graph.dir/traversal.cc.o" "gcc" "src/graph/CMakeFiles/frappe_graph.dir/traversal.cc.o.d"
  "/root/repo/src/graph/value.cc" "src/graph/CMakeFiles/frappe_graph.dir/value.cc.o" "gcc" "src/graph/CMakeFiles/frappe_graph.dir/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/frappe_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
