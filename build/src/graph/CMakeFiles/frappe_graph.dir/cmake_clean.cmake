file(REMOVE_RECURSE
  "CMakeFiles/frappe_graph.dir/csr_view.cc.o"
  "CMakeFiles/frappe_graph.dir/csr_view.cc.o.d"
  "CMakeFiles/frappe_graph.dir/graph_store.cc.o"
  "CMakeFiles/frappe_graph.dir/graph_store.cc.o.d"
  "CMakeFiles/frappe_graph.dir/indexes.cc.o"
  "CMakeFiles/frappe_graph.dir/indexes.cc.o.d"
  "CMakeFiles/frappe_graph.dir/snapshot.cc.o"
  "CMakeFiles/frappe_graph.dir/snapshot.cc.o.d"
  "CMakeFiles/frappe_graph.dir/stats.cc.o"
  "CMakeFiles/frappe_graph.dir/stats.cc.o.d"
  "CMakeFiles/frappe_graph.dir/traversal.cc.o"
  "CMakeFiles/frappe_graph.dir/traversal.cc.o.d"
  "CMakeFiles/frappe_graph.dir/value.cc.o"
  "CMakeFiles/frappe_graph.dir/value.cc.o.d"
  "libfrappe_graph.a"
  "libfrappe_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frappe_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
