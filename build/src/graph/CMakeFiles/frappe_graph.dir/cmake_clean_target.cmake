file(REMOVE_RECURSE
  "libfrappe_graph.a"
)
