# Empty compiler generated dependencies file for frappe_graph.
# This may be replaced when dependencies are built.
