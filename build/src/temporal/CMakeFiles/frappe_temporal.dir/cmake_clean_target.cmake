file(REMOVE_RECURSE
  "libfrappe_temporal.a"
)
