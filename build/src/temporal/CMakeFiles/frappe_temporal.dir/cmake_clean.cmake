file(REMOVE_RECURSE
  "CMakeFiles/frappe_temporal.dir/impact.cc.o"
  "CMakeFiles/frappe_temporal.dir/impact.cc.o.d"
  "CMakeFiles/frappe_temporal.dir/version_store.cc.o"
  "CMakeFiles/frappe_temporal.dir/version_store.cc.o.d"
  "libfrappe_temporal.a"
  "libfrappe_temporal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frappe_temporal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
