# Empty compiler generated dependencies file for frappe_temporal.
# This may be replaced when dependencies are built.
