file(REMOVE_RECURSE
  "CMakeFiles/frappe_extractor.dir/build_model.cc.o"
  "CMakeFiles/frappe_extractor.dir/build_model.cc.o.d"
  "CMakeFiles/frappe_extractor.dir/c_lexer.cc.o"
  "CMakeFiles/frappe_extractor.dir/c_lexer.cc.o.d"
  "CMakeFiles/frappe_extractor.dir/c_parser.cc.o"
  "CMakeFiles/frappe_extractor.dir/c_parser.cc.o.d"
  "CMakeFiles/frappe_extractor.dir/extract.cc.o"
  "CMakeFiles/frappe_extractor.dir/extract.cc.o.d"
  "CMakeFiles/frappe_extractor.dir/preprocessor.cc.o"
  "CMakeFiles/frappe_extractor.dir/preprocessor.cc.o.d"
  "CMakeFiles/frappe_extractor.dir/synthetic.cc.o"
  "CMakeFiles/frappe_extractor.dir/synthetic.cc.o.d"
  "CMakeFiles/frappe_extractor.dir/vfs.cc.o"
  "CMakeFiles/frappe_extractor.dir/vfs.cc.o.d"
  "libfrappe_extractor.a"
  "libfrappe_extractor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frappe_extractor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
