# Empty compiler generated dependencies file for frappe_extractor.
# This may be replaced when dependencies are built.
