
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/extractor/build_model.cc" "src/extractor/CMakeFiles/frappe_extractor.dir/build_model.cc.o" "gcc" "src/extractor/CMakeFiles/frappe_extractor.dir/build_model.cc.o.d"
  "/root/repo/src/extractor/c_lexer.cc" "src/extractor/CMakeFiles/frappe_extractor.dir/c_lexer.cc.o" "gcc" "src/extractor/CMakeFiles/frappe_extractor.dir/c_lexer.cc.o.d"
  "/root/repo/src/extractor/c_parser.cc" "src/extractor/CMakeFiles/frappe_extractor.dir/c_parser.cc.o" "gcc" "src/extractor/CMakeFiles/frappe_extractor.dir/c_parser.cc.o.d"
  "/root/repo/src/extractor/extract.cc" "src/extractor/CMakeFiles/frappe_extractor.dir/extract.cc.o" "gcc" "src/extractor/CMakeFiles/frappe_extractor.dir/extract.cc.o.d"
  "/root/repo/src/extractor/preprocessor.cc" "src/extractor/CMakeFiles/frappe_extractor.dir/preprocessor.cc.o" "gcc" "src/extractor/CMakeFiles/frappe_extractor.dir/preprocessor.cc.o.d"
  "/root/repo/src/extractor/synthetic.cc" "src/extractor/CMakeFiles/frappe_extractor.dir/synthetic.cc.o" "gcc" "src/extractor/CMakeFiles/frappe_extractor.dir/synthetic.cc.o.d"
  "/root/repo/src/extractor/vfs.cc" "src/extractor/CMakeFiles/frappe_extractor.dir/vfs.cc.o" "gcc" "src/extractor/CMakeFiles/frappe_extractor.dir/vfs.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/frappe_model.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/frappe_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/frappe_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
