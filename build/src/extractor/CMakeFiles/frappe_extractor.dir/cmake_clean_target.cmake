file(REMOVE_RECURSE
  "libfrappe_extractor.a"
)
