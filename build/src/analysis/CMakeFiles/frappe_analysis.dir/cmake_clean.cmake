file(REMOVE_RECURSE
  "CMakeFiles/frappe_analysis.dir/debugging.cc.o"
  "CMakeFiles/frappe_analysis.dir/debugging.cc.o.d"
  "CMakeFiles/frappe_analysis.dir/navigation.cc.o"
  "CMakeFiles/frappe_analysis.dir/navigation.cc.o.d"
  "CMakeFiles/frappe_analysis.dir/search.cc.o"
  "CMakeFiles/frappe_analysis.dir/search.cc.o.d"
  "CMakeFiles/frappe_analysis.dir/slicing.cc.o"
  "CMakeFiles/frappe_analysis.dir/slicing.cc.o.d"
  "libfrappe_analysis.a"
  "libfrappe_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frappe_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
