file(REMOVE_RECURSE
  "libfrappe_analysis.a"
)
