# Empty compiler generated dependencies file for frappe_analysis.
# This may be replaced when dependencies are built.
