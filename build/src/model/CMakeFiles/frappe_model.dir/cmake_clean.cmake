file(REMOVE_RECURSE
  "CMakeFiles/frappe_model.dir/code_graph.cc.o"
  "CMakeFiles/frappe_model.dir/code_graph.cc.o.d"
  "CMakeFiles/frappe_model.dir/schema.cc.o"
  "CMakeFiles/frappe_model.dir/schema.cc.o.d"
  "libfrappe_model.a"
  "libfrappe_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frappe_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
