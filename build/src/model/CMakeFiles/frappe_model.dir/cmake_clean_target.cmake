file(REMOVE_RECURSE
  "libfrappe_model.a"
)
