
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/code_graph.cc" "src/model/CMakeFiles/frappe_model.dir/code_graph.cc.o" "gcc" "src/model/CMakeFiles/frappe_model.dir/code_graph.cc.o.d"
  "/root/repo/src/model/schema.cc" "src/model/CMakeFiles/frappe_model.dir/schema.cc.o" "gcc" "src/model/CMakeFiles/frappe_model.dir/schema.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/frappe_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/frappe_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
