# Empty compiler generated dependencies file for frappe_model.
# This may be replaced when dependencies are built.
