file(REMOVE_RECURSE
  "CMakeFiles/frappe_vis.dir/code_map.cc.o"
  "CMakeFiles/frappe_vis.dir/code_map.cc.o.d"
  "CMakeFiles/frappe_vis.dir/treemap.cc.o"
  "CMakeFiles/frappe_vis.dir/treemap.cc.o.d"
  "libfrappe_vis.a"
  "libfrappe_vis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frappe_vis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
