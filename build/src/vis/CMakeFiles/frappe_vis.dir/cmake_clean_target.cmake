file(REMOVE_RECURSE
  "libfrappe_vis.a"
)
