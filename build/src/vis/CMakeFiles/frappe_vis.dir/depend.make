# Empty dependencies file for frappe_vis.
# This may be replaced when dependencies are built.
