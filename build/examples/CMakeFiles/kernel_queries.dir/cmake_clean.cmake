file(REMOVE_RECURSE
  "CMakeFiles/kernel_queries.dir/kernel_queries.cpp.o"
  "CMakeFiles/kernel_queries.dir/kernel_queries.cpp.o.d"
  "kernel_queries"
  "kernel_queries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernel_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
