# Empty compiler generated dependencies file for kernel_queries.
# This may be replaced when dependencies are built.
