file(REMOVE_RECURSE
  "CMakeFiles/code_search.dir/code_search.cpp.o"
  "CMakeFiles/code_search.dir/code_search.cpp.o.d"
  "code_search"
  "code_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/code_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
