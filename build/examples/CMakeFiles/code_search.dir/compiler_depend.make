# Empty compiler generated dependencies file for code_search.
# This may be replaced when dependencies are built.
