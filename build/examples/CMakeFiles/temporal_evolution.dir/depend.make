# Empty dependencies file for temporal_evolution.
# This may be replaced when dependencies are built.
