file(REMOVE_RECURSE
  "CMakeFiles/temporal_evolution.dir/temporal_evolution.cpp.o"
  "CMakeFiles/temporal_evolution.dir/temporal_evolution.cpp.o.d"
  "temporal_evolution"
  "temporal_evolution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/temporal_evolution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
