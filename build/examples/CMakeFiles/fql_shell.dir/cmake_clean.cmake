file(REMOVE_RECURSE
  "CMakeFiles/fql_shell.dir/fql_shell.cpp.o"
  "CMakeFiles/fql_shell.dir/fql_shell.cpp.o.d"
  "fql_shell"
  "fql_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fql_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
