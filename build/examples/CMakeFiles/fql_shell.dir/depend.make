# Empty dependencies file for fql_shell.
# This may be replaced when dependencies are built.
