# Empty compiler generated dependencies file for extract_dir.
# This may be replaced when dependencies are built.
