file(REMOVE_RECURSE
  "CMakeFiles/extract_dir.dir/extract_dir.cpp.o"
  "CMakeFiles/extract_dir.dir/extract_dir.cpp.o.d"
  "extract_dir"
  "extract_dir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extract_dir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
