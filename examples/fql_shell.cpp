// Interactive FQL shell: open a Frappé snapshot (or generate a synthetic
// kernel) and query it from stdin.
//
//   fql_shell <snapshot.db>        open an existing database
//   fql_shell --generate [factor]  generate a synthetic kernel (default 0.05)
//
// Meta commands: \stats  \hubs  \schema  \save <path>  \quit

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "extractor/synthetic.h"
#include "graph/snapshot.h"
#include "graph/stats.h"
#include "model/code_graph.h"
#include "query/explain.h"
#include "query/parser.h"
#include "query/session.h"

namespace {

using namespace frappe;

struct Shell {
  std::unique_ptr<graph::GraphStore> store;
  std::unique_ptr<model::CodeGraph> owned_graph;  // --generate mode
  graph::NameIndex name_index;
  graph::LabelIndex label_index;
  model::Schema schema;
  query::Database db;

  const graph::GraphView& view() const {
    return owned_graph ? owned_graph->view()
                       : static_cast<const graph::GraphView&>(*store);
  }
};

bool OpenSnapshot(const std::string& path, Shell* shell) {
  auto loaded = graph::LoadSnapshot(path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "cannot open %s: %s\n", path.c_str(),
                 loaded.status().ToString().c_str());
    return false;
  }
  shell->store = std::move(loaded->store);
  if (loaded->index.has_value()) {
    shell->name_index = std::move(*loaded->index);
  } else {
    model::CodeGraph scratch;
    shell->name_index =
        graph::NameIndex::Build(*shell->store, scratch.IndexFields());
  }
  shell->label_index = graph::LabelIndex::Build(*shell->store);
  shell->schema = model::Schema::Install(shell->store.get());
  shell->db = query::MakeFrappeDatabase(*shell->store, shell->schema,
                                        &shell->name_index,
                                        &shell->label_index);
  return true;
}

void Generate(double factor, Shell* shell) {
  shell->owned_graph = std::make_unique<model::CodeGraph>(
      model::CodeGraph::Validation::kOff);
  extractor::GraphScale scale;
  scale.factor = factor;
  extractor::GenerateKernelGraph(scale, shell->owned_graph.get());
  shell->name_index = shell->owned_graph->BuildNameIndex();
  shell->label_index = graph::LabelIndex::Build(shell->owned_graph->view());
  shell->schema = shell->owned_graph->schema();
  shell->db = query::MakeFrappeDatabase(shell->owned_graph->view(),
                                        shell->schema, &shell->name_index,
                                        &shell->label_index);
}

void PrintStats(const Shell& shell) {
  auto metrics = graph::ComputeMetrics(shell.view());
  std::printf("nodes %llu, edges %llu, ratio 1:%.2f, density %.3e\n",
              static_cast<unsigned long long>(metrics.node_count),
              static_cast<unsigned long long>(metrics.edge_count),
              metrics.edge_node_ratio, metrics.density);
}

void PrintHubs(const Shell& shell) {
  for (const auto& hub : graph::TopDegreeNodes(
           shell.view(), 10,
           shell.schema.key(model::PropKey::kShortName))) {
    std::printf("  %-30s %-14s degree %llu\n", hub.short_name.c_str(),
                hub.type_name.c_str(),
                static_cast<unsigned long long>(hub.degree));
  }
}

void PrintSchema() {
  std::printf("node types:");
  for (size_t i = 0; i < static_cast<size_t>(model::NodeKind::kCount); ++i) {
    std::printf(" %s",
                std::string(model::NodeKindName(
                                static_cast<model::NodeKind>(i)))
                    .c_str());
  }
  std::printf("\nedge types:");
  for (size_t i = 0; i < static_cast<size_t>(model::EdgeKind::kCount); ++i) {
    std::printf(" %s",
                std::string(model::EdgeKindName(
                                static_cast<model::EdgeKind>(i)))
                    .c_str());
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  Shell shell;
  if (argc >= 2 && std::strcmp(argv[1], "--generate") == 0) {
    double factor = argc >= 3 ? std::atof(argv[2]) : 0.05;
    std::printf("generating synthetic kernel at scale %g...\n", factor);
    Generate(factor, &shell);
  } else if (argc >= 2) {
    if (!OpenSnapshot(argv[1], &shell)) return 1;
  } else {
    std::printf("no snapshot given; generating a small kernel (0.02)...\n");
    Generate(0.02, &shell);
  }
  PrintStats(shell);
  std::printf("type FQL queries (prefix EXPLAIN or PROFILE for plans), or"
              " \\stats \\hubs \\schema \\explain <query> \\save <path>"
              " \\quit\n");

  std::string line;
  while (true) {
    std::printf("fql> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    if (line.empty()) continue;
    if (line == "\\quit" || line == "\\q") break;
    if (line == "\\stats") {
      PrintStats(shell);
      continue;
    }
    if (line == "\\hubs") {
      PrintHubs(shell);
      continue;
    }
    if (line == "\\schema") {
      PrintSchema();
      continue;
    }
    if (line.rfind("\\explain ", 0) == 0) {
      auto plan = query::ExplainText(shell.db, line.substr(9));
      std::printf("%s", plan.ok() ? plan->c_str()
                                  : (plan.status().ToString() + "\n").c_str());
      continue;
    }
    if (line.rfind("\\save ", 0) == 0) {
      std::string path = line.substr(6);
      auto sizes = graph::SaveSnapshot(shell.view(), path,
                                       &shell.name_index);
      if (sizes.ok()) {
        std::printf("wrote %s (%.1f MB)\n", path.c_str(),
                    sizes->total() / 1048576.0);
      } else {
        std::printf("error: %s\n", sizes.status().ToString().c_str());
      }
      continue;
    }

    auto parsed = query::Parse(line);
    if (!parsed.ok()) {
      std::printf("parse error: %s\n", parsed.status().message().c_str());
      continue;
    }
    // `EXPLAIN <query>` renders the plan without executing (same as
    // \explain); `PROFILE <query>` executes and prints the annotated plan
    // above the rows.
    if (parsed->mode == query::QueryMode::kExplain) {
      auto plan = query::Explain(shell.db, *parsed);
      std::printf("%s", plan.ok() ? plan->c_str()
                                  : (plan.status().ToString() + "\n").c_str());
      continue;
    }
    query::ExecOptions options;
    options.max_steps = 50'000'000;
    options.deadline_ms = 30'000;
    options.profile = parsed->mode == query::QueryMode::kProfile;
    auto start = std::chrono::steady_clock::now();
    auto result = query::Execute(shell.db, *parsed, options);
    double ms = std::chrono::duration_cast<std::chrono::microseconds>(
                    std::chrono::steady_clock::now() - start)
                    .count() /
                1000.0;
    if (!result.ok()) {
      std::printf("error: %s\n", result.status().ToString().c_str());
      continue;
    }
    if (options.profile) {
      auto plan = query::ProfilePlan(shell.db, *parsed, result->stats);
      if (plan.ok()) std::printf("%s", plan->c_str());
    }
    // Header.
    for (const std::string& column : result->columns) {
      std::printf("%-28s", column.c_str());
    }
    std::printf("\n");
    size_t shown = 0;
    for (const auto& row : result->rows) {
      if (++shown > 25) {
        std::printf("... (%zu more rows)\n", result->rows.size() - 25);
        break;
      }
      for (const auto& value : row) {
        std::printf("%-28s", value.ToString(shell.db).c_str());
      }
      std::printf("\n");
    }
    std::printf("%zu row(s) in %.1f ms (%llu engine steps)\n",
                result->rows.size(), ms,
                static_cast<unsigned long long>(result->steps));
  }
  return 0;
}
