// Interactive FQL shell: open a Frappé snapshot (or generate a synthetic
// kernel) and query it from stdin.
//
//   fql_shell <snapshot.db>        open an existing database
//   fql_shell --generate [factor]  generate a synthetic kernel (default 0.05)
//
// Meta commands: \stats  \hubs  \schema  \top  \queries  \cancel <id>
//                \analyze  \statz  \save <path>  \quit
//
// Workload telemetry (opt-in via environment):
//   FRAPPE_STATS_PORT=9090   serve /metrics, /stats, /healthz plus the
//                            /debug/* control plane (queryz, cancel,
//                            tracez, storagez, logz) on localhost
//   FRAPPE_QUERY_LOG=q.jsonl log every query as JSONL (replayable with
//                            replay_qlog)
//   FRAPPE_SLOW_QUERY_MS=50  log queries at/over the threshold with plans
//   FRAPPE_LOG_LEVEL=debug   structured-log threshold (debug|info|warn|
//                            error|off; default info)
//   FRAPPE_STUCK_QUERY_MS=60000  warn (component=watchdog) when a query
//                            runs past the threshold
//   FRAPPE_MISESTIMATE_QERROR=10 record queries whose plan q-error
//                            (est vs actual rows) crosses the threshold
//                            on /debug/statz and the structured log
//   FRAPPE_ESTIMATOR=off     disable the cardinality estimator entirely

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "extractor/synthetic.h"
#include "graph/csr_view.h"
#include "graph/snapshot_manager.h"
#include "graph/stats.h"
#include "model/code_graph.h"
#include "obs/fingerprint.h"
#include "obs/profiler.h"
#include "obs/query_log.h"
#include "obs/query_registry.h"
#include "obs/stats_server.h"
#include "query/explain.h"
#include "query/parser.h"
#include "query/session.h"

namespace {

using namespace frappe;

struct Shell {
  std::unique_ptr<query::SnapshotSession> session;  // snapshot mode
  std::unique_ptr<model::CodeGraph> owned_graph;    // --generate mode
  graph::NameIndex name_index;
  graph::LabelIndex label_index;
  model::Schema schema;
  query::Database db;

  const graph::GraphView& view() const {
    return owned_graph ? owned_graph->view() : session->view();
  }
  const query::Database& database() const {
    return owned_graph ? db : session->database();
  }
  const graph::NameIndex& index() const {
    return owned_graph ? name_index : session->name_index();
  }
  const model::Schema& schema_ref() const {
    return owned_graph ? schema : session->schema();
  }
  const graph::GraphStore& store() const {
    return owned_graph ? owned_graph->store() : session->store();
  }
};

bool OpenSnapshot(const std::string& path, Shell* shell) {
  auto session = query::SnapshotSession::Open(path);
  if (!session.ok()) {
    // Corruption statuses carry the failing section and byte offset.
    std::fprintf(stderr, "cannot open %s: %s\n", path.c_str(),
                 session.status().ToString().c_str());
    return false;
  }
  shell->session = std::move(*session);
  for (const std::string& warning : shell->session->warnings()) {
    std::fprintf(stderr, "warning: %s\n", warning.c_str());
  }
  if (shell->session->generation() > 0) {
    std::fprintf(stderr,
                 "warning: %s was unusable; loaded fallback generation %d"
                 " (%s)\n",
                 path.c_str(), shell->session->generation(),
                 shell->session->loaded_path().c_str());
  }
  return true;
}

void Generate(double factor, Shell* shell) {
  shell->owned_graph = std::make_unique<model::CodeGraph>(
      model::CodeGraph::Validation::kOff);
  extractor::GraphScale scale;
  scale.factor = factor;
  extractor::GenerateKernelGraph(scale, shell->owned_graph.get());
  shell->name_index = shell->owned_graph->BuildNameIndex();
  shell->label_index = graph::LabelIndex::Build(shell->owned_graph->view());
  shell->schema = shell->owned_graph->schema();
  shell->db = query::MakeFrappeDatabase(shell->owned_graph->view(),
                                        shell->schema, &shell->name_index,
                                        &shell->label_index);
}

void PrintStats(const Shell& shell) {
  auto metrics = graph::ComputeMetrics(shell.view());
  std::printf("nodes %llu, edges %llu, ratio 1:%.2f, density %.3e\n",
              static_cast<unsigned long long>(metrics.node_count),
              static_cast<unsigned long long>(metrics.edge_count),
              metrics.edge_node_ratio, metrics.density);
}

void PrintHubs(const Shell& shell) {
  for (const auto& hub : graph::TopDegreeNodes(
           shell.view(), 10,
           shell.schema_ref().key(model::PropKey::kShortName))) {
    std::printf("  %-30s %-14s degree %llu\n", hub.short_name.c_str(),
                hub.type_name.c_str(),
                static_cast<unsigned long long>(hub.degree));
  }
}

// \top: the per-fingerprint workload table, ordered by where the time
// went — the offline twin of the stats server's /stats endpoint.
void PrintTopQueries() {
  auto top = obs::QueryStats::Global().Top(10, obs::QueryStats::Order::kTotalLatency);
  if (top.empty()) {
    std::printf("no queries recorded yet\n");
    return;
  }
  std::printf("%-16s %8s %6s %10s %10s %10s %8s %8s %8s %8s %8s %9s %9s"
              "  query\n",
              "fingerprint", "calls", "errors", "total_ms", "avg_ms",
              "p99_ms", "worst_q", "parse_us", "plan_us", "exec_us",
              "cpu_us", "alloc_kb", "peak_kb");
  for (const auto& s : top) {
    double avg_ms =
        s.calls > 0
            ? static_cast<double>(s.total_latency_us) / s.calls / 1000.0
            : 0.0;
    // Per-call latency attribution averages: the same timeline the server
    // returns per response, aggregated per fingerprint. cpu_us/alloc_kb
    // are per-call averages of the resource accounting; peak_kb is the
    // worst single call.
    double calls = s.calls > 0 ? static_cast<double>(s.calls) : 1.0;
    std::printf(
        "%-16s %8llu %6llu %10.1f %10.2f %10.2f %8.2f %8.0f %8.0f %8.0f"
        " %8.0f %9.1f %9.1f  %s\n",
        obs::FingerprintHex(s.fingerprint).c_str(),
        static_cast<unsigned long long>(s.calls),
        static_cast<unsigned long long>(s.errors),
        static_cast<double>(s.total_latency_us) / 1000.0, avg_ms,
        s.latency.Quantile(0.99) / 1000.0,
        static_cast<double>(s.worst_qerror_x100) / 100.0,
        static_cast<double>(s.parse_us_total) / calls,
        static_cast<double>(s.plan_us_total) / calls,
        static_cast<double>(s.exec_us_total) / calls,
        static_cast<double>(s.cpu_us_total) / calls,
        static_cast<double>(s.alloc_bytes_total) / calls / 1024.0,
        static_cast<double>(s.peak_bytes_max) / 1024.0,
        s.normalized.c_str());
  }
}

// \queries: the in-flight table /debug/queryz serves. With the shell's
// synchronous prompt this usually only shows work started elsewhere (the
// stats server's /debug/cancel can kill entries from here too).
void PrintActiveQueries() {
  auto active = obs::QueryRegistry::Global().SnapshotAll();
  if (active.empty()) {
    std::printf("no queries in flight\n");
    return;
  }
  std::printf("%6s %-16s %10s %12s %10s %-18s query\n", "id", "fingerprint",
              "elapsed_ms", "steps", "rows", "operator");
  for (const auto& q : active) {
    std::printf("%6llu %-16s %10.1f %12llu %10llu %-18s %s%s\n",
                static_cast<unsigned long long>(q.id),
                obs::FingerprintHex(q.fingerprint).c_str(), q.elapsed_ms,
                static_cast<unsigned long long>(q.steps),
                static_cast<unsigned long long>(q.rows),
                q.op != nullptr ? q.op : "-", q.normalized.c_str(),
                q.cancel_requested ? "  [cancelling]" : "");
  }
}

void CancelQuery(const std::string& arg) {
  char* end = nullptr;
  unsigned long long id = std::strtoull(arg.c_str(), &end, 10);
  if (end == arg.c_str() || id == 0) {
    std::printf("usage: \\cancel <id>   (ids from \\queries)\n");
    return;
  }
  if (obs::QueryRegistry::Global().Cancel(id)) {
    std::printf("cancel requested for query %llu\n", id);
  } else {
    std::printf("no in-flight query with id %llu\n", id);
  }
}

// PROFILE CPU <query>: arm the sampling profiler around one execution and
// print the hottest folded stacks (the shell-side sibling of
// /debug/profilez — same SIGPROF sampler, same folded format).
void RunProfiledQuery(const Shell& shell, const std::string& fql) {
  Status started = obs::Profiler::Global().Start();
  if (!started.ok()) {
    std::printf("profiler unavailable: %s\n", started.ToString().c_str());
    return;
  }
  query::ExecOptions options;
  options.max_steps = 50'000'000;
  options.deadline_ms = 30'000;
  auto result = query::RunQuery(shell.database(), fql, options);
  std::string folded = obs::Profiler::Global().Stop();
  if (!result.ok()) {
    std::printf("error: %s\n", result.status().ToString().c_str());
  } else {
    std::printf("%zu row(s); cpu %llu us, alloc %llu bytes, peak %llu"
                " bytes\n",
                result->rows.size(),
                static_cast<unsigned long long>(result->stats.cpu_us),
                static_cast<unsigned long long>(result->stats.alloc_bytes),
                static_cast<unsigned long long>(result->stats.peak_bytes));
  }
  // Folded lines are "frame;frame;... count"; show the hottest first.
  std::vector<std::pair<unsigned long long, std::string>> stacks;
  size_t pos = 0;
  while (pos < folded.size()) {
    size_t eol = folded.find('\n', pos);
    if (eol == std::string::npos) eol = folded.size();
    std::string lineStr = folded.substr(pos, eol - pos);
    pos = eol + 1;
    size_t space = lineStr.rfind(' ');
    if (space == std::string::npos) continue;
    unsigned long long count =
        std::strtoull(lineStr.c_str() + space + 1, nullptr, 10);
    stacks.emplace_back(count, lineStr.substr(0, space));
  }
  if (stacks.empty()) {
    std::printf("no profile samples (query too fast for the %d Hz"
                " sampler?)\n",
                obs::Profiler::Options().hz);
    return;
  }
  std::sort(stacks.begin(), stacks.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  unsigned long long total = 0;
  for (const auto& [count, stack] : stacks) total += count;
  std::printf("%llu samples across %zu stacks; top stacks:\n", total,
              stacks.size());
  size_t shown = 0;
  for (const auto& [count, stack] : stacks) {
    if (++shown > 10) break;
    std::printf("%6llu (%4.1f%%)  %s\n", count,
                100.0 * static_cast<double>(count) /
                    static_cast<double>(total),
                stack.c_str());
  }
}

void PrintSchema() {
  std::printf("node types:");
  for (size_t i = 0; i < static_cast<size_t>(model::NodeKind::kCount); ++i) {
    std::printf(" %s",
                std::string(model::NodeKindName(
                                static_cast<model::NodeKind>(i)))
                    .c_str());
  }
  std::printf("\nedge types:");
  for (size_t i = 0; i < static_cast<size_t>(model::EdgeKind::kCount); ++i) {
    std::printf(" %s",
                std::string(model::EdgeKindName(
                                static_cast<model::EdgeKind>(i)))
                    .c_str());
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  Shell shell;
  if (argc >= 2 && std::strcmp(argv[1], "--generate") == 0) {
    double factor = argc >= 3 ? std::atof(argv[2]) : 0.05;
    std::printf("generating synthetic kernel at scale %g...\n", factor);
    Generate(factor, &shell);
  } else if (argc >= 2) {
    if (!OpenSnapshot(argv[1], &shell)) return 1;
  } else {
    std::printf("no snapshot given; generating a small kernel (0.02)...\n");
    Generate(0.02, &shell);
  }
  PrintStats(shell);

  // Live diagnostics: the /debug/storagez + frappe_storage_bytes provider
  // (re-queried on every scrape) and the stuck-query watchdog — before the
  // stats server so the endpoints are never up without their data sources.
  {
    const graph::GraphStore* store = &shell.store();
    std::shared_ptr<graph::CsrCache> csr = shell.database().csr;
    std::shared_ptr<graph::StatsCatalogCache> stats = shell.database().stats;
    obs::StatsServer::SetStorageStatsProvider(
        [store, csr, stats]() -> obs::StatsServer::StorageSections {
          graph::GraphStore::MemoryBreakdown m = store->EstimateMemory();
          obs::StatsServer::StorageSections sections = {
              {"nodes", m.nodes},
              {"relationships", m.relationships},
              {"properties", m.properties}};
          if (csr != nullptr) {
            // Packed-adjacency bytes: the transpose section stays 0 until
            // the first pull-direction traversal lazily builds it.
            graph::CsrCache::Stats cs = csr->GetStats();
            sections.emplace_back("csr_forward", cs.forward_bytes);
            sections.emplace_back("csr_reverse", cs.reverse_bytes);
          }
          if (stats != nullptr) {
            // 0 until ANALYZE runs (or a snapshot carried a catalog).
            auto catalog = stats->Get();
            sections.emplace_back(
                "stats_catalog", catalog != nullptr ? catalog->ByteSize() : 0);
          }
          return sections;
        });
    // /debug/statz serves whatever catalog the shared cache holds —
    // refreshed live by ANALYZE through the same pointer.
    obs::StatsServer::SetCatalogStatsProvider([stats]() -> std::string {
      if (stats == nullptr) return std::string();
      auto catalog = stats->Get();
      return catalog != nullptr ? catalog->ToJson() : std::string();
    });
  }
  obs::QueryRegistry::Global().MaybeStartWatchdogFromEnv();

  // Workload telemetry, both opt-in: the embedded stats server
  // (FRAPPE_STATS_PORT) and the structured query log (FRAPPE_QUERY_LOG).
  std::unique_ptr<obs::StatsServer> stats_server =
      obs::StatsServer::MaybeStartFromEnv();
  if (stats_server != nullptr) {
    std::printf("stats server on http://127.0.0.1:%u  (/metrics /stats"
                " /healthz /debug/queryz /debug/cancel /debug/tracez"
                " /debug/storagez /debug/statz /debug/logz /debug/memz"
                " /debug/profilez)\n",
                stats_server->port());
  }
  if (auto enabled = obs::QueryLog::Global().EnableFromEnv();
      enabled.ok() && *enabled) {
    std::printf("query log -> %s\n", std::getenv("FRAPPE_QUERY_LOG"));
  } else if (!enabled.ok()) {
    std::fprintf(stderr, "query log disabled: %s\n",
                 enabled.status().ToString().c_str());
  }

  std::printf("type FQL queries (prefix EXPLAIN or PROFILE for plans,"
              " PROFILE CPU for a sampled flame profile), or"
              " \\stats \\hubs \\schema \\top \\queries \\cancel <id>"
              " \\explain <query> \\analyze \\statz \\save <path> \\quit\n"
              "  \\queries      list in-flight queries (id, elapsed,"
              " progress) — the \\cancel ids\n"
              "  \\cancel <id>  request cooperative cancellation of an"
              " in-flight query\n"
              "  \\analyze      rebuild the cardinality stats catalog"
              " (same as the ANALYZE query)\n"
              "  \\statz        print the /debug/statz JSON (catalog +"
              " misestimates)\n");

  std::string line;
  while (true) {
    std::printf("fql> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    if (line.empty()) continue;
    if (line == "\\quit" || line == "\\q") break;
    if (line == "\\stats") {
      PrintStats(shell);
      continue;
    }
    if (line == "\\hubs") {
      PrintHubs(shell);
      continue;
    }
    if (line == "\\schema") {
      PrintSchema();
      continue;
    }
    if (line == "\\top") {
      PrintTopQueries();
      continue;
    }
    if (line == "\\analyze") {
      line = "ANALYZE";  // alias: falls through to RunQuery below
    }
    if (line == "\\statz") {
      std::printf("%s", obs::StatsServer::StatzJson().c_str());
      continue;
    }
    if (line == "\\queries") {
      PrintActiveQueries();
      continue;
    }
    if (line.rfind("\\cancel ", 0) == 0) {
      CancelQuery(line.substr(8));
      continue;
    }
    if (line.rfind("PROFILE CPU ", 0) == 0) {
      // Distinct from plain PROFILE (per-operator plan annotation): this
      // arms the SIGPROF sampler around the execution and prints where
      // the CPU time went, as folded stacks.
      RunProfiledQuery(shell, line.substr(12));
      continue;
    }
    if (line.rfind("\\explain ", 0) == 0) {
      auto plan = query::ExplainText(shell.database(), line.substr(9));
      std::printf("%s", plan.ok() ? plan->c_str()
                                  : (plan.status().ToString() + "\n").c_str());
      continue;
    }
    if (line.rfind("\\save ", 0) == 0) {
      std::string path = line.substr(6);
      // Crash-safe save with rotated generations (<path>.1, <path>.2).
      // The current stats catalog (if ANALYZE ran) rides along as its own
      // CRC-framed section, so the next open starts with warm estimates.
      graph::SnapshotManager manager(path);
      std::shared_ptr<const graph::StatsCatalog> catalog =
          shell.database().stats != nullptr ? shell.database().stats->Get()
                                            : nullptr;
      auto sizes = manager.Save(shell.view(), &shell.index(), catalog.get());
      if (sizes.ok()) {
        std::printf("wrote %s (%.1f MB)\n", path.c_str(),
                    sizes->total() / 1048576.0);
      } else {
        std::fprintf(stderr, "save failed: %s\n",
                     sizes.status().ToString().c_str());
      }
      continue;
    }

    // RunQuery is the telemetry-instrumented entry point: EXPLAIN renders
    // the plan without executing, PROFILE annotates it, and every
    // execution lands in the fingerprint stats table / query log / slow
    // log — exactly what an embedder gets.
    query::ExecOptions options;
    options.max_steps = 50'000'000;
    options.deadline_ms = 30'000;
    auto start = std::chrono::steady_clock::now();
    auto result = query::RunQuery(shell.database(), line, options);
    double ms = std::chrono::duration_cast<std::chrono::microseconds>(
                    std::chrono::steady_clock::now() - start)
                    .count() /
                1000.0;
    if (!result.ok()) {
      std::printf("error: %s\n", result.status().ToString().c_str());
      continue;
    }
    if (!result->plan.empty()) std::printf("%s", result->plan.c_str());
    // EXPLAIN produces only a plan — no row table to print.
    if (result->columns.empty() && result->rows.empty()) continue;
    // Header.
    for (const std::string& column : result->columns) {
      std::printf("%-28s", column.c_str());
    }
    std::printf("\n");
    size_t shown = 0;
    for (const auto& row : result->rows) {
      if (++shown > 25) {
        std::printf("... (%zu more rows)\n", result->rows.size() - 25);
        break;
      }
      for (const auto& value : row) {
        std::printf("%-28s", value.ToString(shell.database()).c_str());
      }
      std::printf("\n");
    }
    std::printf("%zu row(s) in %.1f ms (%llu engine steps)\n",
                result->rows.size(), ms,
                static_cast<unsigned long long>(result->steps));
  }
  // Drain + close the query log so the last records hit disk; stop the
  // watchdog and drop the storage provider before `shell` goes away.
  obs::QueryRegistry::Global().StopWatchdog();
  obs::StatsServer::SetStorageStatsProvider(nullptr);
  obs::StatsServer::SetCatalogStatsProvider(nullptr);
  obs::QueryLog::Global().Disable();
  return 0;
}
