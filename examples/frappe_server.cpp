// The Frappé query server binary: serves FQL over HTTP from an epoch-
// pinned snapshot, with admission control, overload shedding, and graceful
// drain on SIGINT/SIGTERM.
//
//   frappe_server <snapshot.fsnap> [--port N]
//   frappe_server --generate [factor] [--port N]
//
// The port comes from --port, else FRAPPE_SERVER_PORT, else 7474. The
// usual observability env vars apply: FRAPPE_STATS_PORT (metrics/debug
// endpoints, including /readyz), FRAPPE_QUERY_LOG (workload trace, flushed
// on drain), FRAPPE_STUCK_QUERY_MS + FRAPPE_STUCK_QUERY_ACTION (watchdog).
//
//   curl -s localhost:7474/readyz
//   curl -s localhost:7474/query
//       -d "START n=node:node_auto_index('short_name: main') RETURN n"
//
// A snapshot that loads from a fallback generation (or with load warnings)
// marks the process degraded on /readyz — serving, but an operator should
// look.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>

#include "extractor/synthetic.h"
#include "model/code_graph.h"
#include "obs/query_log.h"
#include "obs/query_registry.h"
#include "obs/readiness.h"
#include "obs/stats_server.h"
#include "server/epoch.h"
#include "server/query_server.h"

namespace {

using namespace frappe;

volatile std::sig_atomic_t g_shutdown = 0;

void HandleSignal(int) { g_shutdown = 1; }

uint16_t ResolvePort(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--port") == 0) {
      return static_cast<uint16_t>(std::atoi(argv[i + 1]));
    }
  }
  if (const char* env = std::getenv("FRAPPE_SERVER_PORT");
      env != nullptr && *env != '\0') {
    return static_cast<uint16_t>(std::atoi(env));
  }
  return 7474;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <snapshot.fsnap> [--port N]\n"
                 "       %s --generate [factor] [--port N]\n",
                 argv[0], argv[0]);
    return 2;
  }

  server::EpochManager epochs;
  std::shared_ptr<const server::Epoch> epoch;
  if (std::strcmp(argv[1], "--generate") == 0) {
    double factor =
        argc >= 3 && argv[2][0] != '-' ? std::atof(argv[2]) : 0.05;
    std::printf("generating synthetic kernel at scale %g...\n", factor);
    auto graph =
        std::make_unique<model::CodeGraph>(model::CodeGraph::Validation::kOff);
    extractor::GraphScale scale;
    scale.factor = factor;
    extractor::GenerateKernelGraph(scale, graph.get());
    auto published = epochs.Publish(std::move(graph), "generated kernel");
    if (!published.ok()) {
      std::fprintf(stderr, "publish failed: %s\n",
                   published.status().ToString().c_str());
      return 2;
    }
    epoch = std::move(*published);
  } else {
    std::string degraded;
    auto published = epochs.PublishSnapshotFile(argv[1], &degraded);
    if (!published.ok()) {
      std::fprintf(stderr, "cannot open %s: %s\n", argv[1],
                   published.status().ToString().c_str());
      return 2;
    }
    epoch = std::move(*published);
    if (!degraded.empty()) {
      obs::Readiness::Global().SetDegraded(degraded);
      std::fprintf(stderr, "DEGRADED: %s\n", degraded.c_str());
    }
  }
  std::printf("epoch %llu published: %zu nodes, %zu edges\n",
              static_cast<unsigned long long>(epoch->sequence),
              epoch->view().NodeCount(), epoch->view().EdgeCount());

  // Table 4 storage sections on /debug/storagez, re-queried per scrape.
  obs::StatsServer::SetStorageStatsProvider(
      [&epochs]() -> obs::StatsServer::StorageSections {
        std::shared_ptr<const server::Epoch> current = epochs.Current();
        if (current == nullptr) return {};
        const graph::GraphStore* store = nullptr;
        if (current->snapshot != nullptr) {
          store = &current->snapshot->store();
        } else if (current->code_graph != nullptr) {
          store = &current->code_graph->store();
        } else {
          store = current->store.get();
        }
        graph::GraphStore::MemoryBreakdown mem = store->EstimateMemory();
        return {{"nodes", mem.nodes},
                {"relationships", mem.relationships},
                {"properties", mem.properties},
                {"total", mem.total()}};
      });

  // Opt-in observability, all from env.
  std::unique_ptr<obs::StatsServer> stats =
      obs::StatsServer::MaybeStartFromEnv();
  obs::QueryRegistry::Global().MaybeStartWatchdogFromEnv();
  if (auto qlog = obs::QueryLog::Global().EnableFromEnv(); !qlog.ok()) {
    std::fprintf(stderr, "query log: %s\n",
                 qlog.status().ToString().c_str());
  }

  server::QueryServer::Options options;
  options.port = ResolvePort(argc, argv);
  auto server = server::QueryServer::Start(options, &epochs);
  if (!server.ok()) {
    std::fprintf(stderr, "cannot start server: %s\n",
                 server.status().ToString().c_str());
    return 2;
  }
  std::printf("query server listening on http://127.0.0.1:%u\n",
              (*server)->port());
  std::printf("  curl -s -d 'START n=node:node_auto_index(...) RETURN n' "
              "localhost:%u/query\n",
              (*server)->port());

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  while (g_shutdown == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  std::printf("draining...\n");
  (*server)->Stop();  // drain: refuse new work, cancel stragglers, flush
  obs::QueryRegistry::Global().StopWatchdog();
  std::printf("drained, bye\n");
  return 0;
}
