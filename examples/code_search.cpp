// Code search & navigation (paper Sections 4.1-4.2) on a generated
// kernel-style source tree: wildcard/fuzzy symbol search scoped to a
// module, go-to-definition, and find-references — each shown through both
// the FQL query and the direct analysis API.

#include <cstdio>

#include "analysis/navigation.h"
#include "analysis/search.h"
#include "extractor/build_model.h"
#include "extractor/synthetic.h"
#include "query/session.h"

int main() {
  using namespace frappe;

  // Generate and extract a small kernel-style tree through the full
  // pipeline (preprocessor -> parser -> extractor -> linker).
  extractor::Vfs vfs;
  extractor::SourceScale scale;
  scale.subsystems = 3;
  scale.files_per_subsystem = 4;
  scale.functions_per_file = 6;
  extractor::SourceKernel kernel = extractor::GenerateKernelSource(scale,
                                                                   &vfs);
  model::CodeGraph graph;
  extractor::BuildDriver driver(&vfs, &graph);
  for (const std::string& command : kernel.build_commands) {
    Status status = driver.Run(command);
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
  }
  std::printf("extracted %llu lines across %zu files -> %zu nodes\n",
              static_cast<unsigned long long>(kernel.total_lines),
              vfs.FileCount(), graph.store().NodeCount());

  query::Session session(graph);
  const model::Schema& schema = graph.schema();
  const graph::NameIndex& index = session.name_index();

  // --- 1. Wildcard search scoped to one module (Figure 3 style) ---
  auto module = *driver.ModuleFor("drivers/sub0/sub0.elf");
  analysis::SearchQuery search;
  search.name = "sub0_f*";
  search.kind = model::NodeKind::kFunction;
  search.module = module;
  auto results = analysis::CodeSearch(graph.view(), schema, index, search);
  std::printf("\nsearch 'sub0_f*' (functions in sub0.elf): %zu hits\n",
              results.size());
  for (size_t i = 0; i < std::min<size_t>(results.size(), 5); ++i) {
    std::printf("  %s\n", results[i].short_name.c_str());
  }

  // The same through FQL:
  auto fql = session.Run(
      "START m=node:node_auto_index('short_name: sub0.elf') "
      "MATCH m -[:compiled_from|linked_from*]-> f WITH distinct f "
      "MATCH f -[:file_contains]-> (n:function) RETURN count(distinct n)");
  if (fql.ok() && !fql->rows.empty()) {
    std::printf("  (FQL agrees: %lld functions in the module's files)\n",
                static_cast<long long>(fql->rows[0][0].value.AsInt()));
  }

  // --- 2. Fuzzy search (typo tolerance) ---
  analysis::SearchQuery fuzzy;
  fuzzy.name = results.empty() ? std::string("sub0_f0_0~")
                               : results[0].short_name + "x~";
  auto fuzzy_hits = analysis::CodeSearch(graph.view(), schema, index, fuzzy);
  std::printf("\nfuzzy search '%s': %zu hit(s)\n", fuzzy.name.c_str(),
              fuzzy_hits.size());

  // --- 3. Find-references, then go-to-definition round trip ---
  if (!results.empty()) {
    graph::NodeId target = results[0].node;
    auto refs = analysis::FindReferences(graph.view(), schema, target);
    std::printf("\nfind-references('%s'): %zu references\n",
                results[0].short_name.c_str(), refs.size());
    for (size_t i = 0; i < std::min<size_t>(refs.size(), 3); ++i) {
      std::printf("  %-12s from %-14s at file#%lld:%lld:%lld\n",
                  std::string(model::EdgeKindName(refs[i].kind)).c_str(),
                  std::string(graph.ShortName(refs[i].from)).c_str(),
                  static_cast<long long>(refs[i].use.file_id),
                  static_cast<long long>(refs[i].use.start_line),
                  static_cast<long long>(refs[i].use.start_col));
    }
    // go-to-definition from the first reference's name token: finds the
    // symbol we started from.
    if (!refs.empty()) {
      model::SourceRange name_range = graph.NameRange(refs[0].edge);
      if (name_range.valid()) {
        analysis::CursorPosition cursor{name_range.file_id,
                                        name_range.start_line,
                                        name_range.start_col};
        auto defs = analysis::GoToDefinition(graph.view(), schema, index,
                                             results[0].short_name, cursor);
        std::printf("go-to-definition at that reference: %zu result(s)%s\n",
                    defs.size(),
                    !defs.empty() && defs[0] == target
                        ? " — round-trips to the same definition"
                        : "");
      }
    }
  }
  return 0;
}
