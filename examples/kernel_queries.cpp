// Kernel-scale exploration: generates the synthetic kernel dependency
// graph (scaled down by default — pass a factor as argv[1]), prints its
// Table 3 shape, and runs the paper's query repertoire plus the debugging
// use case through the direct API.

#include <cstdio>
#include <cstdlib>

#include "analysis/debugging.h"
#include "extractor/synthetic.h"
#include "graph/stats.h"
#include "query/session.h"

int main(int argc, char** argv) {
  using namespace frappe;
  double factor = argc > 1 ? std::atof(argv[1]) : 0.05;

  model::CodeGraph graph(model::CodeGraph::Validation::kOff);
  extractor::GraphScale scale;
  scale.factor = factor;
  auto report = extractor::GenerateKernelGraph(scale, &graph);
  auto metrics = graph::ComputeMetrics(graph.view());
  std::printf("synthetic kernel at scale %g: %llu nodes, %llu edges"
              " (ratio 1:%.1f)\n", factor,
              static_cast<unsigned long long>(metrics.node_count),
              static_cast<unsigned long long>(metrics.edge_count),
              metrics.edge_node_ratio);

  auto hubs = graph::TopDegreeNodes(graph.view(), 3,
                                    graph.key_id(model::PropKey::kShortName));
  std::printf("top hubs:");
  for (const auto& hub : hubs) {
    std::printf(" %s(%llu)", hub.short_name.c_str(),
                static_cast<unsigned long long>(hub.degree));
  }
  std::printf("\n\n");

  query::Session session(graph);
  const char* queries[] = {
      // Lucene-style index query with a type filter (Table 6, 1.x style).
      "START n=node:node_auto_index('type: struct AND short_name: st_*') "
      "RETURN count(*)",
      // Label groups (Table 6, 2.x style).
      "MATCH (n:container:symbol) RETURN count(*)",
      // Find heavily-called functions: callers of the top declaration.
      "MATCH (f:function) -[:calls]-> (d:function_decl) "
      "RETURN d, count(*) AS callers ORDER BY callers DESC LIMIT 3",
  };
  for (const char* text : queries) {
    std::printf("fql> %s\n", text);
    auto result = session.Run(text);
    if (!result.ok()) {
      std::printf("  error: %s\n", result.status().ToString().c_str());
      continue;
    }
    for (const auto& row : result->rows) {
      std::printf(" ");
      for (const auto& value : row) {
        std::printf("  %s", value.ToString(session.database()).c_str());
      }
      std::printf("\n");
    }
  }

  // Bounded comprehension query: a depth-limited closure stays tractable
  // even declaratively (unbounded `*` is the Figure 6 blow-up).
  {
    std::string text =
        "START n=node(" + std::to_string(report.null_macro) + ") "
        "MATCH n <-[:expands_macro]- f RETURN count(*)";
    std::printf("fql> %s\n", text.c_str());
    auto result = session.Run(text);
    if (result.ok() && !result->rows.empty()) {
      std::printf("   NULL expanded from %lld places\n",
                  static_cast<long long>(result->rows[0][0].value.AsInt()));
    }
  }

  // Debugging use case through the direct API (Figure 5 shape): pick a
  // call edge as the bound and search for suspect writers.
  const auto& store = graph.store();
  graph::TypeId calls = graph.type_id(model::EdgeKind::kCalls);
  for (graph::EdgeId e = 0; e < store.EdgeIdUpperBound(); ++e) {
    if (!store.EdgeExists(e) || store.GetEdge(e).type != calls) continue;
    graph::Edge edge = store.GetEdge(e);
    int64_t line = store
                       .GetEdgeProperty(
                           e, graph.key_id(model::PropKey::kUseStartLine))
                       .AsInt();
    // Need some written field to hunt for.
    graph::NodeId field = graph::kInvalidNode;
    graph.view().ForEachNode([&](graph::NodeId id) {
      if (field == graph::kInvalidNode &&
          graph.KindOf(id) == model::NodeKind::kField &&
          graph.view().InDegree(id) > 3) {
        field = id;
      }
    });
    if (field == graph::kInvalidNode) break;
    auto suspects = analysis::FindSuspectWrites(
        graph.view(), graph.schema(), edge.src, edge.dst, field, line);
    std::printf("\ndebugging: writes to %s before %s -> %s (line %lld):"
                " %zu suspect(s)\n",
                std::string(graph.ShortName(field)).c_str(),
                std::string(graph.ShortName(edge.src)).c_str(),
                std::string(graph.ShortName(edge.dst)).c_str(),
                static_cast<long long>(line), suspects.size());
    break;
  }
  return 0;
}
