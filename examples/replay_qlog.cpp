// Replay a structured query log (FRAPPE_QUERY_LOG JSONL) against a
// snapshot — the load-testing / regression half of the workload-telemetry
// loop: record production traffic once, then re-execute it against a new
// snapshot (or a new build) and diff row counts and latency.
//
//   replay_qlog <qlog.jsonl> <snapshot.db>
//   replay_qlog <qlog.jsonl> --generate [factor]
//
// For every record the tool re-runs the raw query text, checks the row
// count against the recorded one (for records that succeeded), and sums
// recorded vs. replayed latency. Results print as a table and land in
// BENCH_replay.json (git SHA + timestamp stamped, like every bench).
// Exit code: 0 when every row count matched, 1 otherwise, 2 on usage or
// load errors.
//
// --load turns the tool into an open-loop concurrent load generator
// against an in-process QueryServer: the query mix (from the qlog, or the
// built-in mix when the qlog argument is `--builtin`) is offered at a
// fixed arrival schedule per client — arrivals do NOT wait for
// completions, so overload shows up as queueing and shedding instead of
// silently throttling the offered rate. Reports p50/p95/p99 latency and
// shed rate at 1, 4, 16 and 64 clients (BENCH_server_load.json), then a
// writer-isolation lane: 16 clients read while a writer republishes
// identical-content epochs, and every response must match the
// single-epoch baseline row counts.
//
//   replay_qlog --builtin --generate 0.02 --load
//   replay_qlog qlog.jsonl snapshot.db --load --clients 1,8 --requests 50

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_json.h"
#include "common/string_util.h"
#include "extractor/synthetic.h"
#include "model/code_graph.h"
#include "obs/fingerprint.h"
#include "obs/http_listener.h"
#include "obs/query_log.h"
#include "query/session.h"
#include "server/epoch.h"
#include "server/query_server.h"

namespace {

using namespace frappe;
using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

struct ReplayTarget {
  std::unique_ptr<query::SnapshotSession> session;  // snapshot mode
  std::unique_ptr<model::CodeGraph> graph;          // --generate mode
  graph::NameIndex name_index;
  graph::LabelIndex label_index;
  model::Schema schema;
  query::Database db;

  Result<query::QueryResult> Run(std::string_view text,
                                 const query::ExecOptions& options) const {
    return session ? session->Run(text, options)
                   : query::RunQuery(db, text, options);
  }
};

// ---------------------------------------------------------------------------
// --load: open-loop concurrent load against an in-process QueryServer
// ---------------------------------------------------------------------------

struct LoadFlags {
  bool enabled = false;
  std::vector<int> client_counts = {1, 4, 16, 64};
  int requests_per_client = 25;
  int period_ms = 20;  // arrival period per client (open-loop schedule)
  size_t workers = 4;
};

struct LaneOutcome {
  std::vector<double> ok_ms;
  uint64_t ok = 0, shed = 0, timeouts = 0, dropped = 0, errors = 0;
  uint64_t row_mismatches = 0;
};

double Percentile(std::vector<double> samples, double q) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  size_t idx = static_cast<size_t>(
      std::ceil(q * static_cast<double>(samples.size() - 1)));
  return samples[std::min(idx, samples.size() - 1)];
}

// The row count inside the response's "stats" object (the rows array can
// contain the substring too, so anchor on "stats").
int64_t ResponseRows(std::string_view body) {
  size_t stats = body.find("\"stats\"");
  if (stats == std::string_view::npos) return -1;
  size_t rows = body.find("\"rows\": ", stats);
  if (rows == std::string_view::npos) return -1;
  rows += std::strlen("\"rows\": ");
  size_t end = body.find_first_of(",}", rows);
  int64_t n = -1;
  if (end == std::string_view::npos ||
      !ParseInt64(body.substr(rows, end - rows), &n)) {
    return -1;
  }
  return n;
}

// One open-loop client: requests fire on the absolute schedule t0 + k*P.
// A slow response does not push later arrivals back — the client catches
// up by sending immediately, which is what keeps the offered rate honest
// under overload.
void ClientLoop(uint16_t port, const std::vector<std::string>& queries,
                const std::vector<int64_t>& baseline_rows,
                const LoadFlags& flags, size_t client_index,
                LaneOutcome* outcome, std::mutex* mu) {
  const auto t0 = Clock::now();
  for (int k = 0; k < flags.requests_per_client; ++k) {
    std::this_thread::sleep_until(
        t0 + std::chrono::milliseconds(static_cast<int64_t>(k) *
                                       flags.period_ms));
    size_t qi = (client_index + static_cast<size_t>(k)) % queries.size();
    auto start = Clock::now();
    std::string response = obs::HttpFetch(
        port, "POST", "/query?deadline_ms=10000", queries[qi], 15000);
    double ms = MsSince(start);
    int code = obs::HttpStatusOf(response);
    std::lock_guard<std::mutex> lock(*mu);
    if (code == 200) {
      ++outcome->ok;
      outcome->ok_ms.push_back(ms);
      int64_t rows = ResponseRows(obs::HttpBodyOf(response));
      if (baseline_rows[qi] >= 0 && rows != baseline_rows[qi]) {
        ++outcome->row_mismatches;
      }
    } else if (code == 429) {
      ++outcome->shed;
    } else if (code == 408) {
      ++outcome->timeouts;
    } else if (response.empty()) {
      ++outcome->dropped;
    } else {
      ++outcome->errors;
    }
  }
}

LaneOutcome RunLane(uint16_t port, const std::vector<std::string>& queries,
                    const std::vector<int64_t>& baseline_rows,
                    const LoadFlags& flags, int clients) {
  LaneOutcome outcome;
  std::mutex mu;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      ClientLoop(port, queries, baseline_rows, flags,
                 static_cast<size_t>(c), &outcome, &mu);
    });
  }
  for (auto& t : threads) t.join();
  return outcome;
}

// A generated-name seed with outgoing calls, for a closure query that does
// real traversal work in the mix.
std::string ClosureSeed(const graph::GraphView& view,
                        const model::Schema& schema) {
  graph::TypeId calls = schema.edge_type(model::EdgeKind::kCalls);
  graph::KeyId short_name = schema.key(model::PropKey::kShortName);
  for (graph::EdgeId e = 0; e < view.EdgeIdUpperBound(); ++e) {
    if (!view.EdgeExists(e) || view.GetEdge(e).type != calls) continue;
    std::string_view name =
        view.GetNodeString(view.GetEdge(e).src, short_name);
    if (!name.empty()) return std::string(name);
  }
  return "";
}

int RunLoadMode(const std::vector<obs::QueryLogRecord>& records,
                const std::string& target_arg, double generate_factor,
                const LoadFlags& flags) {
  // Publish the first epoch.
  server::EpochManager epochs;
  std::shared_ptr<const server::Epoch> epoch;
  const bool generated = target_arg == "--generate";
  if (generated) {
    std::printf("generating synthetic kernel at scale %g...\n",
                generate_factor);
    auto graph = std::make_unique<model::CodeGraph>(
        model::CodeGraph::Validation::kOff);
    extractor::GraphScale scale;
    scale.factor = generate_factor;
    extractor::GenerateKernelGraph(scale, graph.get());
    auto published = epochs.Publish(std::move(graph), "generated kernel");
    if (!published.ok()) {
      std::fprintf(stderr, "publish: %s\n",
                   published.status().ToString().c_str());
      return 2;
    }
    epoch = std::move(*published);
  } else {
    auto published = epochs.PublishSnapshotFile(target_arg);
    if (!published.ok()) {
      std::fprintf(stderr, "cannot open %s: %s\n", target_arg.c_str(),
                   published.status().ToString().c_str());
      return 2;
    }
    epoch = std::move(*published);
  }

  // The query mix: successful qlog records, or the built-in mix.
  std::vector<std::string> queries;
  for (const obs::QueryLogRecord& record : records) {
    if (record.status != "ok") continue;
    const std::string& text =
        record.raw.empty() ? record.query : record.raw;
    if (std::find(queries.begin(), queries.end(), text) == queries.end()) {
      queries.push_back(text);
    }
  }
  if (queries.empty()) {
    queries = {
        "MATCH (f:function) RETURN count(*)",
        "MATCH (s:struct) RETURN count(*)",
        "START n=node:node_auto_index('short_name: st_*') RETURN count(*)",
    };
    if (generated) {
      std::string seed =
          ClosureSeed(epoch->view(), epoch->code_graph->schema());
      if (!seed.empty()) {
        queries.push_back("START n=node:node_auto_index('short_name: " +
                          seed + "') MATCH n -[:calls*]-> m "
                          "RETURN distinct m");
      }
    }
  }
  std::printf("query mix: %zu distinct queries\n", queries.size());

  server::QueryServer::Options options;
  options.workers = flags.workers;
  options.admission.queue_capacity = 64;
  auto server = server::QueryServer::Start(options, &epochs);
  if (!server.ok()) {
    std::fprintf(stderr, "server: %s\n",
                 server.status().ToString().c_str());
    return 2;
  }
  uint16_t port = (*server)->port();
  std::printf("in-process query server on port %u (%zu workers)\n", port,
              flags.workers);

  // Baseline: every query once, single-client, recording row counts that
  // the concurrent lanes (and the writer-isolation lane) must reproduce.
  std::vector<int64_t> baseline_rows(queries.size(), -1);
  for (size_t i = 0; i < queries.size(); ++i) {
    std::string response = obs::HttpFetch(
        port, "POST", "/query?deadline_ms=30000", queries[i], 35000);
    if (obs::HttpStatusOf(response) != 200) {
      std::fprintf(stderr, "baseline FAILED for: %s\n%s\n",
                   queries[i].c_str(), response.c_str());
      return 2;
    }
    baseline_rows[i] = ResponseRows(obs::HttpBodyOf(response));
    std::printf("  baseline %zu: %" PRId64 " rows\n", i, baseline_rows[i]);
  }

  bench::JsonReport report("server_load");
  bool failed = false;

  for (int clients : flags.client_counts) {
    LaneOutcome lane =
        RunLane(port, queries, baseline_rows, flags, clients);
    uint64_t total = lane.ok + lane.shed + lane.timeouts + lane.dropped +
                     lane.errors;
    double shed_rate =
        total > 0 ? static_cast<double>(lane.shed) /
                        static_cast<double>(total)
                  : 0.0;
    double p50 = Percentile(lane.ok_ms, 0.50);
    double p95 = Percentile(lane.ok_ms, 0.95);
    double p99 = Percentile(lane.ok_ms, 0.99);
    std::printf(
        "clients=%-3d ok=%" PRIu64 " shed=%" PRIu64 " timeout=%" PRIu64
        " dropped=%" PRIu64 " errors=%" PRIu64
        " | p50=%.2fms p95=%.2fms p99=%.2fms shed_rate=%.3f\n",
        clients, lane.ok, lane.shed, lane.timeouts, lane.dropped,
        lane.errors, p50, p95, p99, shed_rate);
    if (lane.row_mismatches > 0 || lane.errors > 0) failed = true;
    report.Add("clients=" + std::to_string(clients))
        .Samples(lane.ok_ms)
        .Threads(clients)
        .Results(static_cast<int64_t>(lane.ok))
        .Extra("p50_ms", p50)
        .Extra("p95_ms", p95)
        .Extra("p99_ms", p99)
        .Extra("shed", static_cast<double>(lane.shed))
        .Extra("shed_rate", shed_rate)
        .Extra("timeouts", static_cast<double>(lane.timeouts))
        .Extra("dropped", static_cast<double>(lane.dropped))
        .Extra("errors", static_cast<double>(lane.errors))
        .Extra("row_mismatches", static_cast<double>(lane.row_mismatches))
        .Extra("offered_rps",
               static_cast<double>(clients) * 1000.0 /
                   static_cast<double>(flags.period_ms));
  }

  // Writer-isolation lane: 16 readers while a writer republishes epochs of
  // identical content — every 200 must still match the baseline row
  // counts, proving queries read their pinned epoch, never a half-built
  // one.
  {
    std::atomic<bool> stop_writer{false};
    uint64_t published = 0;
    std::thread writer([&] {
      extractor::GraphScale scale;
      scale.factor = generate_factor;
      while (!stop_writer.load(std::memory_order_relaxed)) {
        if (generated) {
          auto graph = std::make_unique<model::CodeGraph>(
              model::CodeGraph::Validation::kOff);
          extractor::GenerateKernelGraph(scale, graph.get());
          if (epochs.Publish(std::move(graph), "writer republish").ok()) {
            ++published;
          }
        } else {
          if (epochs.PublishSnapshotFile(target_arg).ok()) ++published;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
      }
    });
    LaneOutcome lane = RunLane(port, queries, baseline_rows, flags, 16);
    stop_writer.store(true, std::memory_order_relaxed);
    writer.join();
    std::printf("writer-isolation: %" PRIu64 " epochs published, ok=%" PRIu64
                " row_mismatches=%" PRIu64 "\n",
                published, lane.ok, lane.row_mismatches);
    if (lane.row_mismatches > 0) failed = true;
    report.Add("writer_isolation")
        .Samples(lane.ok_ms)
        .Threads(16)
        .Results(static_cast<int64_t>(lane.ok))
        .Extra("epochs_published", static_cast<double>(published))
        .Extra("row_mismatches", static_cast<double>(lane.row_mismatches))
        .Extra("shed", static_cast<double>(lane.shed));
  }

  (*server)->Stop();
  report.Write();
  return failed ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  LoadFlags load;
  std::vector<std::string> positional;
  double generate_factor = 0.05;
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg == "--load") {
      load.enabled = true;
    } else if (arg == "--clients" && i + 1 < argc) {
      load.client_counts.clear();
      std::string csv = argv[++i];
      for (size_t pos = 0; pos < csv.size();) {
        size_t comma = csv.find(',', pos);
        if (comma == std::string::npos) comma = csv.size();
        load.client_counts.push_back(
            std::atoi(csv.substr(pos, comma - pos).c_str()));
        pos = comma + 1;
      }
    } else if (arg == "--requests" && i + 1 < argc) {
      load.requests_per_client = std::atoi(argv[++i]);
    } else if (arg == "--period-ms" && i + 1 < argc) {
      load.period_ms = std::max(1, std::atoi(argv[++i]));
    } else if (arg == "--workers" && i + 1 < argc) {
      load.workers = static_cast<size_t>(std::atoi(argv[++i]));
    } else if (arg == "--generate") {
      positional.emplace_back(arg);
      if (i + 1 < argc && argv[i + 1][0] != '-') {
        generate_factor = std::atof(argv[++i]);
      }
    } else {
      positional.emplace_back(arg);
    }
  }
  if (positional.size() < 2) {
    std::fprintf(
        stderr,
        "usage: %s <qlog.jsonl> <snapshot.db> [--load]\n"
        "       %s <qlog.jsonl|--builtin> --generate [factor] [--load]\n"
        "load flags: --clients 1,4,16,64 --requests N --period-ms N "
        "--workers N\n",
        argv[0], argv[0]);
    return 2;
  }

  std::vector<obs::QueryLogRecord> records;
  if (positional[0] != "--builtin") {
    auto read = obs::ReadQueryLogFile(positional[0]);
    if (!read.ok()) {
      std::fprintf(stderr, "cannot read %s: %s\n", positional[0].c_str(),
                   read.status().ToString().c_str());
      return 2;
    }
    records = std::move(*read);
    std::printf("loaded %zu records from %s\n", records.size(),
                positional[0].c_str());
  } else if (!load.enabled) {
    std::fprintf(stderr, "--builtin only makes sense with --load\n");
    return 2;
  }

  if (load.enabled) {
    return RunLoadMode(records, positional[1], generate_factor, load);
  }

  ReplayTarget target;
  if (positional[1] == "--generate") {
    std::printf("generating synthetic kernel at scale %g...\n",
                generate_factor);
    target.graph = std::make_unique<model::CodeGraph>(
        model::CodeGraph::Validation::kOff);
    extractor::GraphScale scale;
    scale.factor = generate_factor;
    extractor::GenerateKernelGraph(scale, target.graph.get());
    target.name_index = target.graph->BuildNameIndex();
    target.label_index = graph::LabelIndex::Build(target.graph->view());
    target.schema = target.graph->schema();
    target.db = query::MakeFrappeDatabase(target.graph->view(), target.schema,
                                          &target.name_index,
                                          &target.label_index);
  } else {
    auto session = query::SnapshotSession::Open(positional[1]);
    if (!session.ok()) {
      std::fprintf(stderr, "cannot open %s: %s\n", positional[1].c_str(),
                   session.status().ToString().c_str());
      return 2;
    }
    target.session = std::move(*session);
  }

  query::ExecOptions options;
  options.max_steps = 50'000'000;
  options.deadline_ms = 30'000;

  bench::JsonReport report("replay");
  std::vector<double> replayed_ms;
  uint64_t row_matches = 0, row_mismatches = 0;
  uint64_t replay_errors = 0, skipped = 0;
  double recorded_total_ms = 0, replayed_total_ms = 0;
  uint64_t replayed_rows = 0;

  for (const obs::QueryLogRecord& record : records) {
    const std::string& text = record.raw.empty() ? record.query : record.raw;
    if (record.status != "ok") {
      ++skipped;  // recorded failures have no row count to check
      continue;
    }
    auto start = Clock::now();
    auto result = target.Run(text, options);
    double ms = MsSince(start);
    replayed_ms.push_back(ms);
    recorded_total_ms += static_cast<double>(record.latency_us) / 1000.0;
    replayed_total_ms += ms;
    if (!result.ok()) {
      ++replay_errors;
      std::printf("  ERROR fp=%s: %s\n",
                  obs::FingerprintHex(record.fingerprint).c_str(),
                  result.status().ToString().c_str());
      continue;
    }
    replayed_rows += result->rows.size();
    if (result->rows.size() == record.rows) {
      ++row_matches;
    } else {
      ++row_mismatches;
      std::printf("  MISMATCH fp=%s: recorded %" PRIu64
                  " rows, replayed %zu\n    %s\n",
                  obs::FingerprintHex(record.fingerprint).c_str(),
                  record.rows, result->rows.size(), record.query.c_str());
    }
  }

  std::printf("\nreplayed %zu records: %" PRIu64 " row-count matches, %" PRIu64
              " mismatches, %" PRIu64 " errors, %" PRIu64 " skipped\n",
              replayed_ms.size(), row_matches, row_mismatches, replay_errors,
              skipped);
  std::printf("latency: recorded %.1f ms total, replayed %.1f ms total"
              " (%.2fx)\n",
              recorded_total_ms, replayed_total_ms,
              recorded_total_ms > 0 ? replayed_total_ms / recorded_total_ms
                                    : 0.0);

  report.Add("replay")
      .Samples(replayed_ms)
      .Results(static_cast<int64_t>(replayed_rows))
      .Extra("records", static_cast<double>(records.size()))
      .Extra("row_matches", static_cast<double>(row_matches))
      .Extra("row_mismatches", static_cast<double>(row_mismatches))
      .Extra("replay_errors", static_cast<double>(replay_errors))
      .Extra("skipped", static_cast<double>(skipped))
      .Extra("recorded_total_ms", recorded_total_ms)
      .Extra("replayed_total_ms", replayed_total_ms);
  report.Write();

  return row_mismatches == 0 && replay_errors == 0 ? 0 : 1;
}
