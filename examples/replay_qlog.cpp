// Replay a structured query log (FRAPPE_QUERY_LOG JSONL) against a
// snapshot — the load-testing / regression half of the workload-telemetry
// loop: record production traffic once, then re-execute it against a new
// snapshot (or a new build) and diff row counts and latency.
//
//   replay_qlog <qlog.jsonl> <snapshot.db>
//   replay_qlog <qlog.jsonl> --generate [factor]
//
// For every record the tool re-runs the raw query text, checks the row
// count against the recorded one (for records that succeeded), and sums
// recorded vs. replayed latency. Results print as a table and land in
// BENCH_replay.json (git SHA + timestamp stamped, like every bench).
// Exit code: 0 when every row count matched, 1 otherwise, 2 on usage or
// load errors.

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_json.h"
#include "extractor/synthetic.h"
#include "model/code_graph.h"
#include "obs/fingerprint.h"
#include "obs/query_log.h"
#include "query/session.h"

namespace {

using namespace frappe;
using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

struct ReplayTarget {
  std::unique_ptr<query::SnapshotSession> session;  // snapshot mode
  std::unique_ptr<model::CodeGraph> graph;          // --generate mode
  graph::NameIndex name_index;
  graph::LabelIndex label_index;
  model::Schema schema;
  query::Database db;

  Result<query::QueryResult> Run(std::string_view text,
                                 const query::ExecOptions& options) const {
    return session ? session->Run(text, options)
                   : query::RunQuery(db, text, options);
  }
};

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: %s <qlog.jsonl> <snapshot.db>\n"
                 "       %s <qlog.jsonl> --generate [factor]\n",
                 argv[0], argv[0]);
    return 2;
  }

  auto records = obs::ReadQueryLogFile(argv[1]);
  if (!records.ok()) {
    std::fprintf(stderr, "cannot read %s: %s\n", argv[1],
                 records.status().ToString().c_str());
    return 2;
  }
  std::printf("loaded %zu records from %s\n", records->size(), argv[1]);

  ReplayTarget target;
  if (std::strcmp(argv[2], "--generate") == 0) {
    double factor = argc >= 4 ? std::atof(argv[3]) : 0.05;
    std::printf("generating synthetic kernel at scale %g...\n", factor);
    target.graph = std::make_unique<model::CodeGraph>(
        model::CodeGraph::Validation::kOff);
    extractor::GraphScale scale;
    scale.factor = factor;
    extractor::GenerateKernelGraph(scale, target.graph.get());
    target.name_index = target.graph->BuildNameIndex();
    target.label_index = graph::LabelIndex::Build(target.graph->view());
    target.schema = target.graph->schema();
    target.db = query::MakeFrappeDatabase(target.graph->view(), target.schema,
                                          &target.name_index,
                                          &target.label_index);
  } else {
    auto session = query::SnapshotSession::Open(argv[2]);
    if (!session.ok()) {
      std::fprintf(stderr, "cannot open %s: %s\n", argv[2],
                   session.status().ToString().c_str());
      return 2;
    }
    target.session = std::move(*session);
  }

  query::ExecOptions options;
  options.max_steps = 50'000'000;
  options.deadline_ms = 30'000;

  bench::JsonReport report("replay");
  std::vector<double> replayed_ms;
  uint64_t row_matches = 0, row_mismatches = 0;
  uint64_t replay_errors = 0, skipped = 0;
  double recorded_total_ms = 0, replayed_total_ms = 0;
  uint64_t replayed_rows = 0;

  for (const obs::QueryLogRecord& record : *records) {
    const std::string& text = record.raw.empty() ? record.query : record.raw;
    if (record.status != "ok") {
      ++skipped;  // recorded failures have no row count to check
      continue;
    }
    auto start = Clock::now();
    auto result = target.Run(text, options);
    double ms = MsSince(start);
    replayed_ms.push_back(ms);
    recorded_total_ms += static_cast<double>(record.latency_us) / 1000.0;
    replayed_total_ms += ms;
    if (!result.ok()) {
      ++replay_errors;
      std::printf("  ERROR fp=%s: %s\n",
                  obs::FingerprintHex(record.fingerprint).c_str(),
                  result.status().ToString().c_str());
      continue;
    }
    replayed_rows += result->rows.size();
    if (result->rows.size() == record.rows) {
      ++row_matches;
    } else {
      ++row_mismatches;
      std::printf("  MISMATCH fp=%s: recorded %" PRIu64
                  " rows, replayed %zu\n    %s\n",
                  obs::FingerprintHex(record.fingerprint).c_str(),
                  record.rows, result->rows.size(), record.query.c_str());
    }
  }

  std::printf("\nreplayed %zu records: %" PRIu64 " row-count matches, %" PRIu64
              " mismatches, %" PRIu64 " errors, %" PRIu64 " skipped\n",
              replayed_ms.size(), row_matches, row_mismatches, replay_errors,
              skipped);
  std::printf("latency: recorded %.1f ms total, replayed %.1f ms total"
              " (%.2fx)\n",
              recorded_total_ms, replayed_total_ms,
              recorded_total_ms > 0 ? replayed_total_ms / recorded_total_ms
                                    : 0.0);

  report.Add("replay")
      .Samples(replayed_ms)
      .Results(static_cast<int64_t>(replayed_rows))
      .Extra("records", static_cast<double>(records->size()))
      .Extra("row_matches", static_cast<double>(row_matches))
      .Extra("row_mismatches", static_cast<double>(row_mismatches))
      .Extra("replay_errors", static_cast<double>(replay_errors))
      .Extra("skipped", static_cast<double>(skipped))
      .Extra("recorded_total_ms", recorded_total_ms)
      .Extra("replayed_total_ms", replayed_total_ms);
  report.Write();

  return row_mismatches == 0 && replay_errors == 0 ? 0 : 1;
}
