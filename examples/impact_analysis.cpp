// Code comprehension & impact analysis (paper Section 4.4): program
// slices over the call graph, macro impact ("How much code could be
// affected if I change this macro?"), and the code-map visualization with
// the result set overlaid — written to impact_map.svg.

#include <cstdio>
#include <fstream>

#include "analysis/slicing.h"
#include "extractor/build_model.h"
#include "extractor/synthetic.h"
#include "graph/traversal.h"
#include "vis/code_map.h"

int main() {
  using namespace frappe;

  extractor::Vfs vfs;
  extractor::SourceScale scale;
  scale.subsystems = 3;
  scale.files_per_subsystem = 4;
  scale.functions_per_file = 5;
  extractor::SourceKernel kernel = extractor::GenerateKernelSource(scale,
                                                                   &vfs);
  model::CodeGraph graph;
  extractor::BuildDriver driver(&vfs, &graph);
  for (const std::string& command : kernel.build_commands) {
    if (Status s = driver.Run(command); !s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
  }
  const model::Schema& schema = graph.schema();

  // Pick a function and slice around it.
  graph::NodeId seed = graph::kInvalidNode;
  graph.view().ForEachNode([&](graph::NodeId id) {
    if (seed == graph::kInvalidNode &&
        graph.KindOf(id) == model::NodeKind::kFunction &&
        graph.view().OutDegree(id) > 2) {
      seed = id;
    }
  });
  if (seed == graph::kInvalidNode) return 1;
  std::string seed_name(graph.ShortName(seed));

  auto backward = analysis::BackwardSlice(graph.view(), schema, seed);
  auto forward = analysis::ForwardSlice(graph.view(), schema, seed);
  std::printf("seed function: %s\n", seed_name.c_str());
  std::printf("backward slice (what it depends on): %zu functions\n",
              backward.size());
  std::printf("forward slice (what depends on it):  %zu functions\n",
              forward.size());

  // Macro impact: everything touched by NULL.
  graph::NodeId null_macro = graph::kInvalidNode;
  graph.view().ForEachNode([&](graph::NodeId id) {
    if (graph.KindOf(id) == model::NodeKind::kMacro &&
        graph.ShortName(id) == "NULL") {
      null_macro = id;
    }
  });
  if (null_macro != graph::kInvalidNode) {
    auto impact = analysis::MacroImpact(graph.view(), schema, null_macro);
    std::printf("macro impact of NULL: %zu entities\n", impact.size());
  }

  // Shortest path between two functions ("how might execution reach it").
  graph::NodeId goal = backward.empty() ? seed : backward.back();
  auto path = graph::ShortestPath(
      graph.view(), seed, goal,
      graph::EdgeFilter::Of({schema.edge_type(model::EdgeKind::kCalls)}));
  if (path.has_value()) {
    std::printf("shortest call path %s -> %s: %zu hops\n",
                seed_name.c_str(),
                std::string(graph.ShortName(goal)).c_str(), path->Length());
  }

  // Render the code map with the forward slice overlaid.
  vis::CodeMap map = vis::CodeMap::Build(graph.view(), schema, 960, 640);
  vis::CodeMap::Overlay overlay;
  overlay.highlights = forward;
  overlay.highlights.push_back(seed);
  if (path.has_value()) overlay.paths.push_back(path->nodes);
  std::string svg = map.ToSvg(overlay);
  std::ofstream out("impact_map.svg");
  out << svg;
  std::printf("\ncode map with %zu regions written to impact_map.svg"
              " (%zu highlighted)\n",
              map.RegionCount(), overlay.highlights.size());
  return 0;
}
