// Quickstart: extract the paper's Figure 2 example program, inspect the
// resulting dependency graph, and run FQL queries over it.
//
//   foo.h   int bar(int);
//   foo.c   #include "foo.h"  int bar(int input) { return input; }
//   main.c  #include "foo.h"  int main(int argc, char **argv)
//                             { return bar(argc); }
//   build:  gcc foo.c -c -o foo.o
//           gcc main.c foo.o -o prog

#include <cstdio>

#include "extractor/build_model.h"
#include "graph/stats.h"
#include "model/code_graph.h"
#include "query/session.h"

int main() {
  using namespace frappe;

  // 1. Put the sources in the virtual file system.
  extractor::Vfs vfs;
  vfs.AddFile("foo.h", "int bar(int);\n");
  vfs.AddFile("foo.c",
              "#include \"foo.h\"\n"
              "int bar(int input) {\n"
              "  return input;\n"
              "}\n");
  vfs.AddFile("main.c",
              "#include \"foo.h\"\n"
              "int main(int argc, char **argv) {\n"
              "  return bar(argc);\n"
              "}\n");

  // 2. Drive the build the way the paper's compiler wrappers do.
  model::CodeGraph graph;
  extractor::BuildDriver driver(&vfs, &graph);
  for (const char* command : {"gcc foo.c -c -o foo.o",
                              "gcc main.c foo.o -o prog"}) {
    Status status = driver.Run(command);
    if (!status.ok()) {
      std::fprintf(stderr, "build failed: %s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("$ %s\n", command);
  }

  // 3. The dependency graph of Figure 2.
  auto metrics = graph::ComputeMetrics(graph.view());
  std::printf("\ngraph: %llu nodes, %llu edges\n",
              static_cast<unsigned long long>(metrics.node_count),
              static_cast<unsigned long long>(metrics.edge_count));
  std::printf("\nnodes:\n");
  graph.view().ForEachNode([&](graph::NodeId id) {
    std::printf("  #%-3u %-14s %s\n", id,
                std::string(model::NodeKindName(graph.KindOf(id))).c_str(),
                std::string(graph.ShortName(id)).c_str());
  });
  std::printf("\nedges:\n");
  graph.view().ForEachEdgeGlobal([&](graph::EdgeId e) {
    graph::Edge edge = graph.store().GetEdge(e);
    std::printf("  %-14s -[%s]-> %s\n",
                std::string(graph.ShortName(edge.src)).c_str(),
                std::string(graph.view().EdgeTypeName(e)).c_str(),
                std::string(graph.ShortName(edge.dst)).c_str());
  });

  // 4. Query it with FQL.
  query::Session session(graph);
  const char* queries[] = {
      // Who calls bar (through its header declaration)?
      "START n=node:node_auto_index('short_name: bar') "
      "MATCH n <-[:calls]- caller RETURN caller",
      // What is argv's type (the ** qualifier from the paper)?
      "START p=node:node_auto_index('short_name: argv') "
      "MATCH p -[r:isa_type]-> t RETURN t, r.qualifiers",
      // Which files does main.c pull in?
      "START f=node:node_auto_index('short_name: main.c') "
      "MATCH f -[:includes*]-> g RETURN distinct g",
  };
  for (const char* text : queries) {
    std::printf("\nfql> %s\n", text);
    auto result = session.Run(text);
    if (!result.ok()) {
      std::printf("  error: %s\n", result.status().ToString().c_str());
      continue;
    }
    for (const auto& row : result->rows) {
      std::printf(" ");
      for (const auto& value : row) {
        std::printf("  %s", value.ToString(session.database()).c_str());
      }
      std::printf("\n");
    }
  }
  return 0;
}
