// Evolving-codebase support (paper Section 6.3): keep several versions of
// a codebase's graph in one delta-encoded store, query any version
// point-in-time, diff versions, and compute change impact — the workflow
// the paper says per-version isolated stores cannot support.

#include <cstdio>

#include "graph/traversal.h"
#include "temporal/impact.h"
#include "temporal/version_store.h"

int main() {
  using namespace frappe;
  temporal::VersionStore store;
  model::Schema schema = model::Schema::Install(&store.raw_store());
  graph::TypeId fn = schema.node_type(model::NodeKind::kFunction);
  graph::TypeId calls = schema.edge_type(model::EdgeKind::kCalls);
  graph::KeyId name = schema.key(model::PropKey::kShortName);

  auto add_fn = [&](const char* n) {
    graph::NodeId id = store.AddNode(fn);
    store.SetNodeProperty(id, name, store.raw_store().StringValue(n));
    return id;
  };

  // v0 — the 3.8.13 state: main -> vfs_read -> ext3_read.
  graph::NodeId main_fn = add_fn("main");
  graph::NodeId vfs_read = add_fn("vfs_read");
  graph::NodeId ext3_read = add_fn("ext3_read");
  store.AddEdge(main_fn, vfs_read, calls);
  graph::EdgeId old_call = store.AddEdge(vfs_read, ext3_read, calls);
  temporal::Version v0 = store.CommitVersion();

  // v1 — a backport lands: ext4 replaces ext3 behind vfs_read.
  graph::NodeId ext4_read = add_fn("ext4_read");
  store.AddEdge(vfs_read, ext4_read, calls);
  store.RemoveEdge(old_call);
  store.RemoveNode(ext3_read);
  temporal::Version v1 = store.CommitVersion();

  // v2 — vfs_read's body is touched again.
  store.SetNodeProperty(vfs_read, store.raw_store().InternKey("body_hash"),
                        graph::Value::Int(0xbeef));
  temporal::Version v2 = store.CommitVersion();

  std::printf("committed %zu versions; store holds every one of them\n\n",
              store.VersionCount());

  // Query each version point-in-time: what does vfs_read call?
  for (temporal::Version v : {v0, v1, v2}) {
    auto view = *store.ViewAt(v);
    std::printf("v%u: vfs_read calls:", v);
    view->ForEachEdge(vfs_read, graph::Direction::kOut,
                      [&](graph::EdgeId, graph::NodeId callee) {
                        std::printf(" %s",
                                    std::string(view->GetNodeString(
                                                    callee, name))
                                        .c_str());
                        return true;
                      });
    std::printf("\n");
  }

  // Diff across the backport.
  auto diff = store.ComputeDiff(v0, v1);
  if (diff.ok()) {
    std::printf("\ndiff v0 -> v1: +%zu nodes, -%zu nodes, +%zu edges,"
                " -%zu edges\n", diff->added_nodes.size(),
                diff->removed_nodes.size(), diff->added_edges.size(),
                diff->removed_edges.size());
  }

  // Change impact: who is affected by what changed between v0 and v1?
  auto impact = temporal::ChangeImpact(store, schema, v0, v1);
  if (impact.ok()) {
    std::printf("impact v0 -> v1: %zu changed function(s),"
                " %zu transitively affected:\n",
                impact->changed_functions.size(),
                impact->impacted_functions.size());
    auto view = *store.ViewAt(v1);
    for (graph::NodeId id : impact->impacted_functions) {
      std::printf("  %s\n",
                  std::string(view->GetNodeString(id, name)).c_str());
    }
  }

  std::printf("\ndelta store footprint: %.1f KB for all %zu versions\n",
              store.DeltaBytes() / 1024.0, store.VersionCount());
  return 0;
}
