// frappe-extract: extract a real C source tree from disk into a Frappé
// snapshot, then poke at it.
//
//   extract_dir <directory> [output.db]
//
// Loads every *.c / *.h under <directory> into the virtual file system,
// compiles each .c (with the directory roots as include paths), links
// everything into one module, prints extraction statistics, and writes a
// snapshot that fql_shell (or any embedder) can open.
//
// The parser accepts a pragmatic C subset (see DESIGN.md); files that fail
// to parse are reported and skipped rather than aborting the run — on real
// trees, partial extraction beats none (the same trade-off the paper's
// wrapper scripts make by shadowing the native compiler).

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>

#include "common/string_util.h"
#include "extractor/build_model.h"
#include "obs/query_registry.h"
#include "obs/stats_server.h"
#include "graph/snapshot_manager.h"
#include "graph/stats.h"
#include "graph/stats_catalog.h"
#include "model/code_graph.h"

namespace fs = std::filesystem;

int main(int argc, char** argv) {
  using namespace frappe;
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <directory> [output.db]\n", argv[0]);
    return 2;
  }
  fs::path root(argv[1]);
  std::string output = argc >= 3 ? argv[2] : "frappe.db";
  if (!fs::is_directory(root)) {
    std::fprintf(stderr, "%s is not a directory\n", argv[1]);
    return 2;
  }

  // FRAPPE_STATS_PORT: expose /metrics and the /debug/* control plane
  // while a long extraction runs; FRAPPE_STUCK_QUERY_MS arms the watchdog.
  std::unique_ptr<obs::StatsServer> stats_server =
      obs::StatsServer::MaybeStartFromEnv();
  if (stats_server != nullptr) {
    std::fprintf(stderr, "stats server on http://127.0.0.1:%u\n",
                 stats_server->port());
  }
  obs::QueryRegistry::Global().MaybeStartWatchdogFromEnv();

  // Load the tree.
  extractor::Vfs vfs;
  std::vector<std::string> sources;
  std::set<std::string> include_dirs;
  std::error_code ec;
  for (auto it = fs::recursive_directory_iterator(
           root, fs::directory_options::skip_permission_denied, ec);
       it != fs::recursive_directory_iterator(); it.increment(ec)) {
    if (ec) break;
    if (!it->is_regular_file(ec)) continue;
    std::string ext = it->path().extension().string();
    if (ext != ".c" && ext != ".h") continue;
    std::string relative = fs::relative(it->path(), root, ec).string();
    std::ifstream in(it->path(), std::ios::binary);
    std::string content((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
    vfs.AddFile(relative, std::move(content));
    if (ext == ".c") sources.push_back(extractor::NormalizePath(relative));
    include_dirs.insert(extractor::DirName(relative));
  }
  if (sources.empty()) {
    std::fprintf(stderr, "no .c files under %s\n", argv[1]);
    return 1;
  }
  std::printf("loaded %zu files (%llu lines), %zu compilation units\n",
              vfs.FileCount(),
              static_cast<unsigned long long>(vfs.TotalLines()),
              sources.size());

  // Compile every unit; skip (but report) files the C-subset parser
  // rejects.
  model::CodeGraph graph;
  // /debug/storagez (and frappe_storage_bytes) track the growing graph
  // live while units compile.
  obs::StatsServer::SetStorageStatsProvider(
      [&graph]() -> obs::StatsServer::StorageSections {
        graph::GraphStore::MemoryBreakdown m = graph.store().EstimateMemory();
        return {{"nodes", m.nodes},
                {"relationships", m.relationships},
                {"properties", m.properties}};
      });
  extractor::BuildDriver driver(&vfs, &graph);
  extractor::PreprocessOptions options;
  options.include_dirs.assign(include_dirs.begin(), include_dirs.end());
  options.include_dirs.push_back("include");
  std::vector<std::string> objects;
  size_t failed = 0;
  for (const std::string& source : sources) {
    std::string object = source.substr(0, source.size() - 2) + ".o";
    auto result = driver.Compile(source, object, options);
    if (result.ok()) {
      objects.push_back(object);
    } else {
      ++failed;
      std::fprintf(stderr, "  skip %-40s %s\n", source.c_str(),
                   result.status().message().c_str());
    }
  }
  if (!objects.empty()) {
    auto linked = driver.Link(objects, "a.out", options,
                              /*is_library=*/true);
    if (!linked.ok()) {
      std::fprintf(stderr, "link: %s\n",
                   linked.status().ToString().c_str());
    }
  }

  auto metrics = graph::ComputeMetrics(graph.view());
  std::printf("\nextracted %zu/%zu units (%zu skipped)\n",
              objects.size(), sources.size(), failed);
  std::printf("graph: %llu nodes, %llu edges\n",
              static_cast<unsigned long long>(metrics.node_count),
              static_cast<unsigned long long>(metrics.edge_count));
  std::printf("resolved %zu cross-unit symbols (%zu unresolved/external)\n",
              driver.stats().symbols_resolved,
              driver.stats().symbols_unresolved);
  for (const auto& [kind, count] : graph::NodeTypeHistogram(graph.view())) {
    std::printf("  %-16s %llu\n", kind.c_str(),
                static_cast<unsigned long long>(count));
  }

  graph::NameIndex index = graph.BuildNameIndex();
  // The freshly extracted graph gets a fresh stats catalog — an ANALYZE at
  // ingest time — so fql_shell opens with warm cardinality estimates, and
  // /debug/statz on this process serves the catalog while saving.
  auto catalog = std::make_shared<const graph::StatsCatalog>(
      graph::BuildStatsCatalog(graph.view(), &index));
  obs::StatsServer::SetCatalogStatsProvider([catalog]() -> std::string {
    return catalog != nullptr ? catalog->ToJson() : std::string();
  });
  std::printf("stats catalog: %llu bytes (%zu node types, %zu edge types,"
              " %zu hubs)\n",
              static_cast<unsigned long long>(catalog->ByteSize()),
              catalog->node_types.size(), catalog->edge_types.size(),
              catalog->hubs.size());
  // Crash-safe save: temp file + fsync + rename, with rotated generations
  // (<output>.1, <output>.2) kept as fallbacks for corrupted snapshots.
  graph::SnapshotManager manager(output);
  auto sizes = manager.Save(graph.view(), &index, catalog.get());
  if (!sizes.ok()) {
    // A Corruption status here names the failing section and byte offset;
    // I/O failures carry the errno text.
    std::fprintf(stderr, "save: %s\n", sizes.status().ToString().c_str());
    return 1;
  }
  std::printf("\nwrote %s (%.2f MB) — open it with: fql_shell %s\n",
              output.c_str(), sizes->total() / 1048576.0, output.c_str());
  obs::QueryRegistry::Global().StopWatchdog();
  obs::StatsServer::SetStorageStatsProvider(nullptr);
  obs::StatsServer::SetCatalogStatsProvider(nullptr);
  return 0;
}
