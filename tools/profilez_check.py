#!/usr/bin/env python3
"""Validates the resource-attribution exports of the frappe stats server.

Two checks, either or both per invocation:

  profilez_check.py --folded <profilez.folded> [--min-samples N]
                    [--dominator REGEX] [--min-dominator-share PCT]
      A /debug/profilez capture (folded-stack format, flamegraph.pl
      input): every non-empty line is "frame;frame;... count" with a
      positive integer count and non-empty frames that contain neither
      ';' nor whitespace (the symbolizer sanitizes both). The counts must
      sum to at least --min-samples (default 1). When --dominator is
      given, at least --min-dominator-share percent (default 50) of all
      samples must contain a frame matching the regex — the "is the
      profiler looking at the right process" check (under closure load,
      traversal frames must dominate).

  profilez_check.py --memz <memz.json>
      A /debug/memz body: rss_bytes / peak_rss_bytes /
      query_mem_budget_bytes ints >= 0, a sections object mapping
      non-empty names to non-negative int bytes, and total equal to the
      sum of the sections. rss_bytes must be positive (the process
      exists) and peak_rss_bytes >= rss_bytes is not required (they come
      from different kernel counters sampled at different times), but
      peak_rss_bytes must be positive too.

Exit code 0 when valid, 1 with a diagnostic otherwise.

Run from ctest as the `profilez_check` entry (labels `profile`, `obs`),
against the files the obs_profiler_test fixture exports.
"""

import argparse
import json
import re
import sys

FOLDED_LINE_RE = re.compile(r"^(?P<stack>\S+) (?P<count>\d+)$")

MEMZ_TOP_KEYS = {"rss_bytes", "peak_rss_bytes", "query_mem_budget_bytes",
                 "sections", "total"}


def fail(message):
    print(f"profilez_check: FAIL: {message}", file=sys.stderr)
    return 1


def check_folded(path, min_samples, dominator, min_dominator_share):
    try:
        with open(path, "r", encoding="utf-8") as f:
            lines = f.read().splitlines()
    except OSError as e:
        return fail(f"cannot read {path}: {e}")

    total = 0
    dominated = 0
    stacks = 0
    dom_re = re.compile(dominator) if dominator else None
    for lineno, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        m = FOLDED_LINE_RE.match(line)
        if not m:
            return fail(f"{path}:{lineno}: not a folded-stack line"
                        f" ('frame;frame count'): {line!r}")
        count = int(m.group("count"))
        if count < 1:
            return fail(f"{path}:{lineno}: count {count} is not positive")
        frames = m.group("stack").split(";")
        if any(not frame for frame in frames):
            return fail(f"{path}:{lineno}: empty frame in {line!r}")
        stacks += 1
        total += count
        if dom_re is not None and any(dom_re.search(fr) for fr in frames):
            dominated += count

    if total < min_samples:
        return fail(f"{path}: {total} samples, need >= {min_samples}")
    if dom_re is not None:
        share = 100.0 * dominated / total if total else 0.0
        if share < min_dominator_share:
            return fail(f"{path}: only {share:.1f}% of samples contain a"
                        f" frame matching {dominator!r}, need >="
                        f" {min_dominator_share:.0f}%")
        print(f"profilez_check: OK: {total} samples across {stacks} stacks,"
              f" {share:.1f}% matching {dominator!r} in {path}")
    else:
        print(f"profilez_check: OK: {total} samples across {stacks} stacks"
              f" in {path}")
    return 0


def check_memz(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return fail(f"cannot load {path}: {e}")
    if not isinstance(doc, dict):
        return fail(f"{path}: top level is not a JSON object")
    if set(doc.keys()) != MEMZ_TOP_KEYS:
        return fail(f"{path}: top-level keys {sorted(doc.keys())},"
                    f" expected {sorted(MEMZ_TOP_KEYS)}")
    for key in ("rss_bytes", "peak_rss_bytes", "query_mem_budget_bytes"):
        value = doc[key]
        if not isinstance(value, int) or isinstance(value, bool) or value < 0:
            return fail(f"{path}: {key}={value!r} is not a non-negative int")
    if doc["rss_bytes"] == 0:
        return fail(f"{path}: rss_bytes is 0 (statm read failed?)")
    if doc["peak_rss_bytes"] == 0:
        return fail(f"{path}: peak_rss_bytes is 0 (getrusage failed?)")
    sections = doc["sections"]
    if not isinstance(sections, dict) or not sections:
        return fail(f"{path}: sections is not a non-empty object")
    for name, value in sections.items():
        if not name:
            return fail(f"{path}: empty section name")
        if not isinstance(value, int) or isinstance(value, bool) or value < 0:
            return fail(f"{path}: sections[{name!r}]={value!r} is not a"
                        " non-negative int")
    total = doc["total"]
    if not isinstance(total, int) or isinstance(total, bool):
        return fail(f"{path}: total={total!r} is not an int")
    if total != sum(sections.values()):
        return fail(f"{path}: total={total} != sum of sections"
                    f" ({sum(sections.values())})")
    print(f"profilez_check: OK: {len(sections)} memz sections, {total}"
          f" attributed bytes, rss {doc['rss_bytes']} in {path}")
    return 0


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--folded", metavar="FILE",
                        help="/debug/profilez folded-stack capture")
    parser.add_argument("--min-samples", type=int, default=1,
                        help="minimum total sample count (default 1)")
    parser.add_argument("--dominator", metavar="REGEX",
                        help="regex that must match a frame in at least"
                             " --min-dominator-share of samples")
    parser.add_argument("--min-dominator-share", type=float, default=50.0,
                        help="percent of samples the dominator regex must"
                             " cover (default 50)")
    parser.add_argument("--memz", metavar="FILE",
                        help="/debug/memz JSON export to validate")
    args = parser.parse_args()

    if not args.folded and not args.memz:
        parser.error("nothing to check: pass --folded and/or --memz")

    if args.folded:
        rc = check_folded(args.folded, args.min_samples, args.dominator,
                          args.min_dominator_share)
        if rc:
            return rc
    if args.memz:
        rc = check_memz(args.memz)
        if rc:
            return rc
    return 0


if __name__ == "__main__":
    sys.exit(main())
