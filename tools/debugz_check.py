#!/usr/bin/env python3
"""Validates the /debug/* JSON exports of the frappe stats server.

Three checks, any subset per invocation:

  debugz_check.py --queryz <queryz.json>
      The active-query registry dump (/debug/queryz): now_us (int >= 0),
      a queries array whose entries carry id (int > 0), fp (16 lower-case
      hex chars), query / raw (strings), start_unix_us (int), elapsed_ms
      (number >= 0), steps / db_hits / rows (ints >= 0), operator (string
      or null), cancel_requested (bool), trace_id (32 lower-case hex
      chars) and queue_wait_us (int >= 0), plus a server section with the
      front-door pressure gauges (queue_depth, inflight_bytes,
      inflight_bytes_hw) and the
      queue-wait histogram summary. Unknown keys fail: operators'
      dashboards parse against this schema.

  debugz_check.py --storagez <storagez.json>
      The Table 4 byte breakdown (/debug/storagez): a sections object
      mapping section name -> bytes (int >= 0) and a total equal to the
      sum of the sections.

  debugz_check.py --logz <logz.json>
      The in-memory log ring (/debug/logz): an entries array of
      {ts_us, level, component, message} objects plus a dropped count.

Exit code 0 when valid, 1 with a diagnostic otherwise.

Run from ctest as the `debugz_check` entry (label `obs`), against the
files the obs_debug_endpoints_test fixture exports.
"""

import argparse
import json
import re
import sys

FP_RE = re.compile(r"^[0-9a-f]{16}$")
TRACE_ID_RE = re.compile(r"^[0-9a-f]{32}$")
LOG_LEVELS = {"debug", "info", "warn", "error"}

QUERY_SCHEMA = {
    "id": int,
    "fp": str,
    "query": str,
    "raw": str,
    "start_unix_us": int,
    "elapsed_ms": (int, float),
    "steps": int,
    "db_hits": int,
    "rows": int,
    "operator": (str, type(None)),
    "cancel_requested": bool,
    "trace_id": str,
    "queue_wait_us": int,
}

SERVER_SCHEMA = {
    "queue_depth": int,
    "inflight_bytes": int,
    "inflight_bytes_hw": int,
    "queue_wait_us": dict,
}

QUEUE_WAIT_SCHEMA = {
    "count": int,
    "mean": (int, float),
    "p50": (int, float),
    "p99": (int, float),
}

LOG_ENTRY_SCHEMA = {
    "ts_us": int,
    "level": str,
    "component": str,
    "message": str,
}


def fail(message):
    print(f"debugz_check: FAIL: {message}", file=sys.stderr)
    return 1


def load_json(path):
    with open(path, "r", encoding="utf-8") as f:
        return json.load(f)


def check_object(path, obj, schema, where):
    """Strict schema check: exact key set, typed values, ints non-bool."""
    if not isinstance(obj, dict):
        return fail(f"{path}: {where} is not a JSON object")
    missing = schema.keys() - obj.keys()
    if missing:
        return fail(f"{path}: {where} missing keys: {sorted(missing)}")
    unknown = obj.keys() - schema.keys()
    if unknown:
        return fail(f"{path}: {where} unknown keys: {sorted(unknown)}")
    for key, expected in schema.items():
        value = obj[key]
        kinds = expected if isinstance(expected, tuple) else (expected,)
        # bool is an int subclass in Python; keep int checks strict.
        if bool not in kinds and isinstance(value, bool):
            return fail(f"{path}: {where}.{key}={value!r} is a bool")
        if not isinstance(value, kinds):
            names = "/".join(k.__name__ for k in kinds)
            return fail(f"{path}: {where}.{key}={value!r} is not {names}")
    return 0


def check_queryz(path):
    try:
        doc = load_json(path)
    except (OSError, json.JSONDecodeError) as e:
        return fail(f"cannot load {path}: {e}")
    if not isinstance(doc, dict):
        return fail(f"{path}: top level is not a JSON object")
    if set(doc.keys()) != {"now_us", "queries", "server"}:
        return fail(f"{path}: top-level keys {sorted(doc.keys())},"
                    " expected ['now_us', 'queries', 'server']")
    if not isinstance(doc["now_us"], int) or isinstance(doc["now_us"], bool) \
            or doc["now_us"] < 0:
        return fail(f"{path}: now_us={doc['now_us']!r} is not a"
                    " non-negative int")
    if not isinstance(doc["queries"], list):
        return fail(f"{path}: queries is not an array")
    for i, entry in enumerate(doc["queries"]):
        where = f"queries[{i}]"
        rc = check_object(path, entry, QUERY_SCHEMA, where)
        if rc:
            return rc
        if entry["id"] <= 0:
            return fail(f"{path}: {where}.id={entry['id']} is not positive")
        if not FP_RE.match(entry["fp"]):
            return fail(f"{path}: {where}.fp={entry['fp']!r} is not 16"
                        " lower-case hex chars")
        for key in ("elapsed_ms", "steps", "db_hits", "rows",
                    "start_unix_us"):
            if entry[key] < 0:
                return fail(f"{path}: {where}.{key}={entry[key]} is"
                            " negative")
        if not entry["query"]:
            return fail(f"{path}: {where}.query is empty")
        if not TRACE_ID_RE.match(entry["trace_id"]):
            return fail(f"{path}: {where}.trace_id={entry['trace_id']!r}"
                        " is not 32 lower-case hex chars")
        if entry["queue_wait_us"] < 0:
            return fail(f"{path}: {where}.queue_wait_us is negative")
    server = doc["server"]
    rc = check_object(path, server, SERVER_SCHEMA, "server")
    if rc:
        return rc
    for key in ("queue_depth", "inflight_bytes", "inflight_bytes_hw"):
        if server[key] < 0:
            return fail(f"{path}: server.{key}={server[key]} is negative")
    rc = check_object(path, server["queue_wait_us"], QUEUE_WAIT_SCHEMA,
                      "server.queue_wait_us")
    if rc:
        return rc
    for key in QUEUE_WAIT_SCHEMA:
        if server["queue_wait_us"][key] < 0:
            return fail(f"{path}: server.queue_wait_us.{key} is negative")
    print(f"debugz_check: OK: {len(doc['queries'])} active queries,"
          f" queue depth {server['queue_depth']} in {path}")
    return 0


def check_storagez(path):
    try:
        doc = load_json(path)
    except (OSError, json.JSONDecodeError) as e:
        return fail(f"cannot load {path}: {e}")
    if not isinstance(doc, dict):
        return fail(f"{path}: top level is not a JSON object")
    if set(doc.keys()) != {"sections", "total"}:
        return fail(f"{path}: top-level keys {sorted(doc.keys())},"
                    " expected ['sections', 'total']")
    sections = doc["sections"]
    if not isinstance(sections, dict) or not sections:
        return fail(f"{path}: sections is not a non-empty object")
    for name, value in sections.items():
        if not name:
            return fail(f"{path}: empty section name")
        if not isinstance(value, int) or isinstance(value, bool) or value < 0:
            return fail(f"{path}: sections[{name!r}]={value!r} is not a"
                        " non-negative int")
    total = doc["total"]
    if not isinstance(total, int) or isinstance(total, bool):
        return fail(f"{path}: total={total!r} is not an int")
    if total != sum(sections.values()):
        return fail(f"{path}: total={total} != sum of sections"
                    f" ({sum(sections.values())})")
    print(f"debugz_check: OK: {len(sections)} storage sections,"
          f" {total} bytes total in {path}")
    return 0


def check_logz(path):
    try:
        doc = load_json(path)
    except (OSError, json.JSONDecodeError) as e:
        return fail(f"cannot load {path}: {e}")
    if not isinstance(doc, dict):
        return fail(f"{path}: top level is not a JSON object")
    if set(doc.keys()) != {"entries", "dropped"}:
        return fail(f"{path}: top-level keys {sorted(doc.keys())},"
                    " expected ['entries', 'dropped']")
    if not isinstance(doc["entries"], list):
        return fail(f"{path}: entries is not an array")
    dropped = doc["dropped"]
    if not isinstance(dropped, int) or isinstance(dropped, bool) \
            or dropped < 0:
        return fail(f"{path}: dropped={dropped!r} is not a non-negative int")
    for i, entry in enumerate(doc["entries"]):
        where = f"entries[{i}]"
        rc = check_object(path, entry, LOG_ENTRY_SCHEMA, where)
        if rc:
            return rc
        if entry["ts_us"] < 0:
            return fail(f"{path}: {where}.ts_us={entry['ts_us']} is"
                        " negative")
        if entry["level"] not in LOG_LEVELS:
            return fail(f"{path}: {where}.level={entry['level']!r} not in"
                        f" {sorted(LOG_LEVELS)}")
        if not entry["component"]:
            return fail(f"{path}: {where}.component is empty")
    print(f"debugz_check: OK: {len(doc['entries'])} log entries"
          f" ({dropped} dropped) in {path}")
    return 0


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--queryz", metavar="FILE",
                        help="/debug/queryz JSON export to validate")
    parser.add_argument("--storagez", metavar="FILE",
                        help="/debug/storagez JSON export to validate")
    parser.add_argument("--logz", metavar="FILE",
                        help="/debug/logz JSON export to validate")
    args = parser.parse_args()

    if not (args.queryz or args.storagez or args.logz):
        parser.error("nothing to check: pass --queryz/--storagez/--logz")

    for flag, checker in (("queryz", check_queryz),
                          ("storagez", check_storagez),
                          ("logz", check_logz)):
        path = getattr(args, flag)
        if path:
            rc = checker(path)
            if rc:
                return rc
    return 0


if __name__ == "__main__":
    sys.exit(main())
