#!/usr/bin/env python3
"""Compares two BENCH_*.json artifacts and fails on perf regressions.

  bench_diff.py <baseline.json> <candidate.json> [--threshold-pct 10]

Both files are bench_json.h envelopes ({bench, git_sha, timestamp,
rusage, entries}). Entries are matched by label; for every pair that
carries timing samples, the candidate's avg_ms (and median-proxy min_ms)
are compared against the baseline. A candidate avg_ms more than
--threshold-pct percent slower than the baseline is a regression and the
tool exits 1, printing every offending label. Labels present on only one
side are reported but never fatal (benches grow lanes across PRs).

Peak RSS from the rusage stamp is compared the same way, at 2x the
timing threshold (allocator noise is larger than timer noise).

Intended use: download the previous PR's bench_out/BENCH_*.json, rerun
the bench, and diff — a perf gate without a dashboard in the loop.
"""

import argparse
import json
import sys


def fail(message):
    print(f"bench_diff: FAIL: {message}", file=sys.stderr)


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    if not isinstance(doc, dict) or not isinstance(doc.get("entries"), list):
        raise ValueError(f"{path}: not a bench_json envelope")
    return doc


def entries_by_label(doc):
    out = {}
    for e in doc["entries"]:
        if isinstance(e, dict) and isinstance(e.get("label"), str):
            out[e["label"]] = e
    return out


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("baseline", help="baseline BENCH_*.json")
    parser.add_argument("candidate", help="candidate BENCH_*.json")
    parser.add_argument("--threshold-pct", type=float, default=10.0,
                        help="max tolerated avg_ms increase (default 10)")
    args = parser.parse_args()

    try:
        base = load(args.baseline)
        cand = load(args.candidate)
    except (OSError, json.JSONDecodeError, ValueError) as e:
        fail(str(e))
        return 1
    if base.get("bench") != cand.get("bench"):
        fail(f"bench name mismatch: {base.get('bench')!r} vs"
             f" {cand.get('bench')!r}")
        return 1

    base_entries = entries_by_label(base)
    cand_entries = entries_by_label(cand)
    only_base = sorted(base_entries.keys() - cand_entries.keys())
    only_cand = sorted(cand_entries.keys() - base_entries.keys())
    for label in only_base:
        print(f"bench_diff: note: {label!r} only in baseline")
    for label in only_cand:
        print(f"bench_diff: note: {label!r} only in candidate")

    regressions = []
    compared = 0
    for label in sorted(base_entries.keys() & cand_entries.keys()):
        b, c = base_entries[label], cand_entries[label]
        for key in ("avg_ms", "min_ms"):
            bv, cv = b.get(key), c.get(key)
            if not isinstance(bv, (int, float)) or \
                    not isinstance(cv, (int, float)) or \
                    isinstance(bv, bool) or isinstance(cv, bool):
                continue
            if bv <= 0:
                continue
            delta_pct = 100.0 * (cv - bv) / bv
            compared += 1
            marker = ""
            if delta_pct > args.threshold_pct:
                regressions.append(
                    f"{label}.{key}: {bv:.3f} -> {cv:.3f} ms"
                    f" ({delta_pct:+.1f}% > {args.threshold_pct:.0f}%)")
                marker = "  <-- REGRESSION"
            print(f"bench_diff: {label}.{key}: {bv:.3f} -> {cv:.3f} ms"
                  f" ({delta_pct:+.1f}%){marker}")

    # Peak RSS: whole-process footprint; allocator noise warrants the
    # looser 2x threshold.
    rss_threshold = 2 * args.threshold_pct
    base_rss = (base.get("rusage") or {}).get("max_rss_kb")
    cand_rss = (cand.get("rusage") or {}).get("max_rss_kb")
    if isinstance(base_rss, int) and isinstance(cand_rss, int) \
            and base_rss > 0 and not isinstance(base_rss, bool):
        rss_pct = 100.0 * (cand_rss - base_rss) / base_rss
        marker = ""
        if rss_pct > rss_threshold:
            regressions.append(
                f"rusage.max_rss_kb: {base_rss} -> {cand_rss} kB"
                f" ({rss_pct:+.1f}% > {rss_threshold:.0f}%)")
            marker = "  <-- REGRESSION"
        print(f"bench_diff: rusage.max_rss_kb: {base_rss} -> {cand_rss} kB"
              f" ({rss_pct:+.1f}%){marker}")

    if compared == 0:
        fail("no comparable timing entries between the two files")
        return 1
    if regressions:
        for r in regressions:
            fail(r)
        return 1
    print(f"bench_diff: OK: {compared} timing comparisons within"
          f" {args.threshold_pct:.0f}%")
    return 0


if __name__ == "__main__":
    sys.exit(main())
