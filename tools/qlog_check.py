#!/usr/bin/env python3
"""Validates frappe workload-telemetry exports.

Two checks, either or both per invocation:

  qlog_check.py <qlog.jsonl> [--min-records N]
      The structured query log: one JSON object per line with the schema
      ToJsonLine writes — ts_us (int >= 0), fp (16 lower-case hex chars),
      trace_id (32 lower-case hex chars), query / raw / status (strings),
      latency_us / rows / db_hits (ints >= 0), fast_path (bool), and the
      latency timeline queue_us / parse_us / plan_us / exec_us
      (ints >= 0). Unknown keys fail: the schema is the contract replay
      and downstream pipelines parse against.

  qlog_check.py --metrics <metrics.txt> [qlog.jsonl]
      A Prometheus text exposition (what GET /metrics on the stats server
      returns): every sample names a metric declared by a preceding
      # TYPE line, metric names match the Prometheus grammar, values
      parse as floats, summaries carry quantile labels, and OpenMetrics
      exemplars (`# {trace_id="..."} value ts`) are syntactically valid
      and only appear on histogram bucket samples.

Exit code 0 when valid, 1 with a diagnostic otherwise.

Run from ctest as the `qlog_check` entry (label `obs`), against the files
the query_log_test and stats_server_test fixtures export.
"""

import argparse
import json
import re
import sys

QLOG_SCHEMA = {
    "ts_us": int,
    "fp": str,
    "trace_id": str,
    "query": str,
    "raw": str,
    "status": str,
    "latency_us": int,
    "rows": int,
    "db_hits": int,
    "fast_path": bool,
    "queue_us": int,
    "parse_us": int,
    "plan_us": int,
    "exec_us": int,
    "cpu_us": int,
    "alloc_bytes": int,
    "peak_bytes": int,
}
FP_RE = re.compile(r"^[0-9a-f]{16}$")
TRACE_ID_RE = re.compile(r"^[0-9a-f]{32}$")

METRIC_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
TYPE_LINE_RE = re.compile(r"^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (\w+)$")
SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})? (?P<value>\S+)"
    r"(?P<exemplar> # \{[^}]*\} \S+(?: \S+)?)?$")
EXEMPLAR_RE = re.compile(
    r"^ # \{trace_id=\"(?P<trace_id>[0-9a-f]{32})\"\}"
    r" (?P<value>\S+)(?: (?P<ts>\S+))?$")


def fail(message):
    print(f"qlog_check: FAIL: {message}", file=sys.stderr)
    return 1


def check_qlog(path, min_records):
    try:
        with open(path, "r", encoding="utf-8") as f:
            lines = f.read().splitlines()
    except OSError as e:
        return fail(f"cannot read {path}: {e}")

    records = 0
    for lineno, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as e:
            return fail(f"{path}:{lineno}: not valid JSON: {e}")
        if not isinstance(record, dict):
            return fail(f"{path}:{lineno}: not a JSON object")
        missing = QLOG_SCHEMA.keys() - record.keys()
        if missing:
            return fail(f"{path}:{lineno}: missing keys: {sorted(missing)}")
        unknown = record.keys() - QLOG_SCHEMA.keys()
        if unknown:
            return fail(f"{path}:{lineno}: unknown keys: {sorted(unknown)}")
        for key, expected in QLOG_SCHEMA.items():
            value = record[key]
            # bool is an int subclass in Python; keep the check strict.
            if expected is int and (not isinstance(value, int)
                                    or isinstance(value, bool)):
                return fail(f"{path}:{lineno}: {key}={value!r} is not an int")
            if expected is not int and not isinstance(value, expected):
                return fail(f"{path}:{lineno}: {key}={value!r} is not"
                            f" {expected.__name__}")
            if expected is int and value < 0:
                return fail(f"{path}:{lineno}: {key}={value} is negative")
        if not FP_RE.match(record["fp"]):
            return fail(f"{path}:{lineno}: fp={record['fp']!r} is not 16"
                        " lower-case hex chars")
        if not TRACE_ID_RE.match(record["trace_id"]):
            return fail(f"{path}:{lineno}: trace_id={record['trace_id']!r}"
                        " is not 32 lower-case hex chars")
        if not record["query"]:
            return fail(f"{path}:{lineno}: empty query")
        if not record["status"]:
            return fail(f"{path}:{lineno}: empty status")
        records += 1

    if records < min_records:
        return fail(f"{path}: only {records} records,"
                    f" need >= {min_records}")
    print(f"qlog_check: OK: {records} query-log records in {path}")
    return 0


def check_metrics(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            lines = f.read().splitlines()
    except OSError as e:
        return fail(f"cannot read {path}: {e}")

    declared = {}  # metric name -> type
    samples = 0
    summaries_with_quantiles = set()
    for lineno, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            m = TYPE_LINE_RE.match(line)
            if not m:
                return fail(f"{path}:{lineno}: malformed TYPE line: {line!r}")
            name, kind = m.group(1), m.group(2)
            if kind not in ("counter", "gauge", "summary", "histogram",
                            "untyped"):
                return fail(f"{path}:{lineno}: unknown metric type {kind!r}")
            declared[name] = kind
            continue
        if line.startswith("#"):
            continue  # HELP / comments
        m = SAMPLE_RE.match(line)
        if not m:
            return fail(f"{path}:{lineno}: malformed sample: {line!r}")
        name = m.group("name")
        # A summary's samples may carry _sum/_count suffixes on the
        # declared family name.
        family = name
        for suffix in ("_sum", "_count", "_bucket"):
            if name.endswith(suffix) and name[:-len(suffix)] in declared:
                family = name[:-len(suffix)]
                break
        if family not in declared:
            return fail(f"{path}:{lineno}: sample {name!r} has no # TYPE"
                        " declaration")
        if not METRIC_NAME_RE.match(name):
            return fail(f"{path}:{lineno}: invalid metric name {name!r}")
        try:
            float(m.group("value"))
        except ValueError:
            return fail(f"{path}:{lineno}: non-numeric value"
                        f" {m.group('value')!r}")
        exemplar = m.group("exemplar")
        if exemplar:
            # OpenMetrics exemplar: only on histogram buckets, labelled
            # with a well-formed trace id, numeric value and timestamp.
            if declared[family] != "histogram" or \
                    not name.endswith("_bucket"):
                return fail(f"{path}:{lineno}: exemplar on non-bucket"
                            f" sample {name!r}")
            ex = EXEMPLAR_RE.match(exemplar)
            if not ex:
                return fail(f"{path}:{lineno}: malformed exemplar"
                            f" {exemplar!r}")
            try:
                float(ex.group("value"))
                if ex.group("ts") is not None:
                    float(ex.group("ts"))
            except ValueError:
                return fail(f"{path}:{lineno}: non-numeric exemplar"
                            f" value/timestamp in {exemplar!r}")
        labels = m.group("labels")
        if labels and 'quantile="' in labels and declared[family] == "summary":
            summaries_with_quantiles.add(family)
        samples += 1

    if not declared:
        return fail(f"{path}: no # TYPE declarations")
    if samples == 0:
        return fail(f"{path}: no samples")
    summaries = {n for n, k in declared.items() if k == "summary"}
    bare = summaries - summaries_with_quantiles
    if bare:
        return fail(f"{path}: summaries without quantile samples:"
                    f" {sorted(bare)}")
    print(f"qlog_check: OK: {samples} samples across {len(declared)}"
          f" metrics in {path}")
    return 0


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("qlog_file", nargs="?",
                        help="query-log JSONL file to validate")
    parser.add_argument("--min-records", type=int, default=1,
                        help="minimum number of query-log records required")
    parser.add_argument("--metrics", metavar="FILE",
                        help="Prometheus text exposition to validate")
    args = parser.parse_args()

    if not args.qlog_file and not args.metrics:
        parser.error("nothing to check: pass a qlog file and/or --metrics")

    if args.qlog_file:
        rc = check_qlog(args.qlog_file, args.min_records)
        if rc:
            return rc
    if args.metrics:
        rc = check_metrics(args.metrics)
        if rc:
            return rc
    return 0


if __name__ == "__main__":
    sys.exit(main())
