#!/usr/bin/env python3
"""Validates the cardinality-observability exports of the frappe stats server.

Two checks, any subset per invocation:

  statz_check.py --statz <statz_export.json>
      The /debug/statz document: a catalog (the persisted ANALYZE stats
      catalog, or null before the first ANALYZE), the active
      FRAPPE_MISESTIMATE_QERROR threshold (number or null), the
      worst-q-error fingerprint table, and the misestimate ring. Unknown
      keys fail: operators' dashboards parse against this schema.

  statz_check.py --metrics <metrics.txt>
      A /metrics capture: the catalog gauges (frappe_catalog_nodes /
      _edges / _bytes), the frappe_catalog_builds_total counter, the
      frappe_plan_qerror_x100 summary and the
      frappe_plan_misestimates_total counter must all be present with
      sane values.

Exit code 0 when valid, 1 with a diagnostic otherwise.

Run from ctest as the `statz_check` entry (labels `obs;stats`), against
the files the obs_statz_test fixture exports.
"""

import argparse
import json
import re
import sys

FP_RE = re.compile(r"^[0-9a-f]{16}$")

CATALOG_SCHEMA = {
    "node_count": int,
    "edge_count": int,
    "bytes": int,
    "node_types": dict,
    "edge_types": list,
    "hubs": list,
    "index_fields": list,
}

EDGE_TYPE_SCHEMA = {
    "name": str,
    "count": int,
    "distinct_sources": int,
    "distinct_targets": int,
    "avg_out_fanout": (int, float),
    "avg_in_fanout": (int, float),
    "out_degree_bins": list,
    "in_degree_bins": list,
}

HUB_SCHEMA = {
    "id": int,
    "degree": int,
    "name": str,
    "type": str,
}

INDEX_FIELD_SCHEMA = {
    "field": str,
    "distinct_terms": int,
    "postings": int,
}

FINGERPRINT_SCHEMA = {
    "fp": str,
    "query": str,
    "calls": int,
    "errors": int,
    "total_latency_us": int,
    "avg_latency_us": int,
    "max_latency_us": int,
    "p99_latency_us": int,
    "rows": int,
    "db_hits": int,
    "worst_qerror": (int, float),
    "cpu_us_total": int,
    "alloc_bytes_total": int,
    "peak_bytes": int,
    "timeline": dict,
}

TIMELINE_SCHEMA = {
    "queue_us": int,
    "parse_us": int,
    "plan_us": int,
    "exec_us": int,
}

MISESTIMATE_SCHEMA = {
    "ts_us": int,
    "fp": str,
    "query": str,
    "est_rows": (int, float),
    "actual_rows": int,
    "qerror": (int, float),
}


def fail(message):
    print(f"statz_check: FAIL: {message}", file=sys.stderr)
    return 1


def load_json(path):
    with open(path, "r", encoding="utf-8") as f:
        return json.load(f)


def check_object(path, obj, schema, where):
    """Strict schema check: exact key set, typed values, ints non-bool."""
    if not isinstance(obj, dict):
        return fail(f"{path}: {where} is not a JSON object")
    missing = schema.keys() - obj.keys()
    if missing:
        return fail(f"{path}: {where} missing keys: {sorted(missing)}")
    unknown = obj.keys() - schema.keys()
    if unknown:
        return fail(f"{path}: {where} unknown keys: {sorted(unknown)}")
    for key, expected in schema.items():
        value = obj[key]
        kinds = expected if isinstance(expected, tuple) else (expected,)
        # bool is an int subclass in Python; keep int checks strict.
        if bool not in kinds and isinstance(value, bool):
            return fail(f"{path}: {where}.{key}={value!r} is a bool")
        if not isinstance(value, kinds):
            names = "/".join(k.__name__ for k in kinds)
            return fail(f"{path}: {where}.{key}={value!r} is not {names}")
    return 0


def check_bins(path, bins, where):
    """Degree bins are [min, max, count] triples with min <= max."""
    for i, bin_ in enumerate(bins):
        spot = f"{where}[{i}]"
        if (not isinstance(bin_, list) or len(bin_) != 3
                or any(isinstance(v, bool) or not isinstance(v, int)
                       or v < 0 for v in bin_)):
            return fail(f"{path}: {spot}={bin_!r} is not a non-negative"
                        " [min, max, count] triple")
        if bin_[0] > bin_[1]:
            return fail(f"{path}: {spot} has min {bin_[0]} > max {bin_[1]}")
    return 0


def check_catalog(path, catalog):
    rc = check_object(path, catalog, CATALOG_SCHEMA, "catalog")
    if rc:
        return rc
    for key in ("node_count", "edge_count", "bytes"):
        if catalog[key] < 0:
            return fail(f"{path}: catalog.{key}={catalog[key]} is negative")
    node_type_total = 0
    for name, count in catalog["node_types"].items():
        if not isinstance(count, int) or isinstance(count, bool) or count < 0:
            return fail(f"{path}: catalog.node_types[{name!r}]={count!r} is"
                        " not a non-negative int")
        node_type_total += count
    if node_type_total != catalog["node_count"]:
        return fail(f"{path}: node_types sum {node_type_total} !="
                    f" node_count {catalog['node_count']}")
    edge_type_total = 0
    for i, et in enumerate(catalog["edge_types"]):
        where = f"catalog.edge_types[{i}]"
        rc = check_object(path, et, EDGE_TYPE_SCHEMA, where)
        if rc:
            return rc
        edge_type_total += et["count"]
        if et["count"] > 0 and et["distinct_sources"] == 0:
            return fail(f"{path}: {where} has edges but no distinct sources")
        for bins_key in ("out_degree_bins", "in_degree_bins"):
            rc = check_bins(path, et[bins_key], f"{where}.{bins_key}")
            if rc:
                return rc
    if edge_type_total != catalog["edge_count"]:
        return fail(f"{path}: edge_types sum {edge_type_total} !="
                    f" edge_count {catalog['edge_count']}")
    previous_degree = None
    for i, hub in enumerate(catalog["hubs"]):
        where = f"catalog.hubs[{i}]"
        rc = check_object(path, hub, HUB_SCHEMA, where)
        if rc:
            return rc
        if previous_degree is not None and hub["degree"] > previous_degree:
            return fail(f"{path}: {where} degree {hub['degree']} out of"
                        " descending order")
        previous_degree = hub["degree"]
    for i, field in enumerate(catalog["index_fields"]):
        where = f"catalog.index_fields[{i}]"
        rc = check_object(path, field, INDEX_FIELD_SCHEMA, where)
        if rc:
            return rc
        if field["postings"] < field["distinct_terms"]:
            return fail(f"{path}: {where} has fewer postings"
                        f" ({field['postings']}) than distinct terms"
                        f" ({field['distinct_terms']})")
    return 0


def check_statz(path):
    try:
        doc = load_json(path)
    except (OSError, json.JSONDecodeError) as e:
        return fail(f"cannot load {path}: {e}")
    if not isinstance(doc, dict):
        return fail(f"{path}: top level is not a JSON object")
    expected = {"catalog", "misestimate_threshold", "worst_fingerprints",
                "misestimates"}
    if set(doc.keys()) != expected:
        return fail(f"{path}: top-level keys {sorted(doc.keys())},"
                    f" expected {sorted(expected)}")
    if doc["catalog"] is not None:
        rc = check_catalog(path, doc["catalog"])
        if rc:
            return rc
    threshold = doc["misestimate_threshold"]
    if threshold is not None:
        if isinstance(threshold, bool) \
                or not isinstance(threshold, (int, float)) or threshold <= 0:
            return fail(f"{path}: misestimate_threshold={threshold!r} is"
                        " not a positive number")
    if not isinstance(doc["worst_fingerprints"], list):
        return fail(f"{path}: worst_fingerprints is not an array")
    previous_q = None
    for i, entry in enumerate(doc["worst_fingerprints"]):
        where = f"worst_fingerprints[{i}]"
        rc = check_object(path, entry, FINGERPRINT_SCHEMA, where)
        if rc:
            return rc
        if not FP_RE.match(entry["fp"]):
            return fail(f"{path}: {where}.fp={entry['fp']!r} is not 16"
                        " lower-case hex chars")
        rc = check_object(path, entry["timeline"], TIMELINE_SCHEMA,
                          f"{where}.timeline")
        if rc:
            return rc
        for key in TIMELINE_SCHEMA:
            if entry["timeline"][key] < 0:
                return fail(f"{path}: {where}.timeline.{key} is negative")
        if entry["worst_qerror"] < 0:
            return fail(f"{path}: {where}.worst_qerror is negative")
        if previous_q is not None and entry["worst_qerror"] > previous_q:
            return fail(f"{path}: {where} worst_qerror out of descending"
                        " order")
        previous_q = entry["worst_qerror"]
    if not isinstance(doc["misestimates"], list):
        return fail(f"{path}: misestimates is not an array")
    for i, entry in enumerate(doc["misestimates"]):
        where = f"misestimates[{i}]"
        rc = check_object(path, entry, MISESTIMATE_SCHEMA, where)
        if rc:
            return rc
        if not FP_RE.match(entry["fp"]):
            return fail(f"{path}: {where}.fp={entry['fp']!r} is not 16"
                        " lower-case hex chars")
        # A recorded misestimate crossed a threshold >= 1 by construction.
        if entry["qerror"] < 1:
            return fail(f"{path}: {where}.qerror={entry['qerror']} < 1")
        if entry["est_rows"] < 0 or entry["actual_rows"] < 0:
            return fail(f"{path}: {where} has negative row counts")
    catalog_note = ("null catalog" if doc["catalog"] is None else
                    f"catalog of {doc['catalog']['node_count']} nodes")
    print(f"statz_check: OK: {catalog_note},"
          f" {len(doc['worst_fingerprints'])} fingerprints,"
          f" {len(doc['misestimates'])} misestimates in {path}")
    return 0


METRIC_RES = {
    "frappe_catalog_nodes":
        re.compile(r"^frappe_catalog_nodes (\d+)$", re.M),
    "frappe_catalog_edges":
        re.compile(r"^frappe_catalog_edges (\d+)$", re.M),
    "frappe_catalog_bytes":
        re.compile(r"^frappe_catalog_bytes (\d+)$", re.M),
    "frappe_catalog_builds_total":
        re.compile(r"^frappe_catalog_builds_total (\d+)$", re.M),
    "frappe_plan_qerror_x100_count":
        re.compile(r"^frappe_plan_qerror_x100_count (\d+)$", re.M),
    "frappe_plan_misestimates_total":
        re.compile(r"^frappe_plan_misestimates_total (\d+)$", re.M),
}


def check_metrics(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            text = f.read()
    except OSError as e:
        return fail(f"cannot load {path}: {e}")
    values = {}
    for name, regex in METRIC_RES.items():
        match = regex.search(text)
        if not match:
            return fail(f"{path}: metric {name} missing")
        values[name] = int(match.group(1))
    if "# TYPE frappe_plan_qerror_x100 summary" not in text:
        return fail(f"{path}: frappe_plan_qerror_x100 is not typed as a"
                    " summary")
    if values["frappe_catalog_builds_total"] < 1:
        return fail(f"{path}: frappe_catalog_builds_total is 0 — the"
                    " fixture ran ANALYZE")
    if values["frappe_catalog_nodes"] < 1:
        return fail(f"{path}: frappe_catalog_nodes is 0 after ANALYZE")
    if values["frappe_catalog_bytes"] < 1:
        return fail(f"{path}: frappe_catalog_bytes is 0 after ANALYZE")
    if values["frappe_plan_qerror_x100_count"] < 1:
        return fail(f"{path}: no q-error observations recorded")
    print(f"statz_check: OK: catalog of {values['frappe_catalog_nodes']}"
          f" nodes / {values['frappe_catalog_bytes']} bytes,"
          f" {values['frappe_plan_qerror_x100_count']} q-error samples,"
          f" {values['frappe_plan_misestimates_total']} misestimates"
          f" in {path}")
    return 0


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--statz", metavar="FILE",
                        help="/debug/statz JSON export to validate")
    parser.add_argument("--metrics", metavar="FILE",
                        help="/metrics capture to validate")
    args = parser.parse_args()

    if not (args.statz or args.metrics):
        parser.error("nothing to check: pass --statz/--metrics")

    for flag, checker in (("statz", check_statz),
                          ("metrics", check_metrics)):
        path = getattr(args, flag)
        if path:
            rc = checker(path)
            if rc:
                return rc
    return 0


if __name__ == "__main__":
    sys.exit(main())
