#!/usr/bin/env python3
"""Validates an exported frappe::obs trace file.

Checks that the file is well-formed Chrome trace-event JSON (the format
chrome://tracing and ui.perfetto.dev load): a top-level object with a
"traceEvents" array whose entries are complete duration ("ph": "X") events
with numeric, non-negative ts/dur and integer pid/tid. Events carrying
span identity in args (span_id / parent_id / trace_id, the request-scoped
form) must use 16-hex span ids and a 32-hex trace id.

With --parentage the file must be a single-request span tree (what
/debug/tracez?trace_id=... serves): every event carries args.span_id,
span ids are unique, exactly one root (parent absent from the file) exists
unless the root's parent is the client's remote span, and every child
lies within its parent's [ts, ts+dur] window (1ms slack for clock reads
on either side of scope push/pop).

Usage: trace_check.py <trace.json> [--min-events N] [--parentage]
Exit code 0 when valid, 1 with a diagnostic otherwise.

Run from ctest as the `trace_check` entries (label `obs`), against the
files the trace_test and query_server_test fixtures export.
"""

import argparse
import json
import re
import sys

REQUIRED_EVENT_KEYS = {"name", "ph", "pid", "tid", "ts", "dur"}
SPAN_ID_RE = re.compile(r"^[0-9a-f]{16}$")
TRACE_ID_RE = re.compile(r"^[0-9a-f]{32}$")
PARENT_SLACK_US = 1000.0


def fail(message):
    print(f"trace_check: FAIL: {message}", file=sys.stderr)
    return 1


def check_args_identity(i, event):
    """Span identity in args, when present, is well-formed hex."""
    args = event.get("args")
    if args is None:
        return 0
    if not isinstance(args, dict):
        return fail(f"event {i} args is not an object")
    for key in ("span_id", "parent_id"):
        if key in args and not SPAN_ID_RE.match(str(args[key])):
            return fail(f"event {i} args.{key}={args[key]!r} is not 16"
                        " lower-case hex chars")
    if "trace_id" in args and not TRACE_ID_RE.match(str(args["trace_id"])):
        return fail(f"event {i} args.trace_id={args['trace_id']!r} is not"
                    " 32 lower-case hex chars")
    return 0


def check_parentage(events):
    """The events form one span tree with consistent time nesting."""
    by_span = {}
    for i, event in enumerate(events):
        args = event.get("args") or {}
        span_id = args.get("span_id")
        if span_id is None:
            return fail(f"event {i} ({event['name']!r}) lacks args.span_id"
                        " (--parentage expects a request span tree)")
        if span_id in by_span:
            return fail(f"duplicate span_id {span_id}")
        by_span[span_id] = event
    roots = []
    for i, event in enumerate(events):
        parent_id = (event.get("args") or {}).get("parent_id")
        if parent_id is None or parent_id not in by_span:
            # Parent outside the file: the tree root (its parent is the
            # client's remote span, or zero when the server minted it).
            roots.append(event)
            continue
        parent = by_span[parent_id]
        child_start = event["ts"]
        child_end = event["ts"] + event["dur"]
        parent_start = parent["ts"] - PARENT_SLACK_US
        parent_end = parent["ts"] + parent["dur"] + PARENT_SLACK_US
        if child_start < parent_start or child_end > parent_end:
            return fail(
                f"event {i} ({event['name']!r}) [{child_start},"
                f" {child_end}] outside parent {parent['name']!r}"
                f" [{parent['ts']}, {parent['ts'] + parent['dur']}]")
    if not roots:
        return fail("no root span (every parent_id resolves in-file —"
                    " a cycle)")
    if len(roots) > 1:
        names = sorted(e["name"] for e in roots)
        return fail(f"{len(roots)} root spans {names}, expected one tree")
    return 0


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("trace_file")
    parser.add_argument("--min-events", type=int, default=1,
                        help="minimum number of trace events required")
    parser.add_argument("--parentage", action="store_true",
                        help="require a single consistent span tree")
    args = parser.parse_args()

    try:
        with open(args.trace_file, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except OSError as e:
        return fail(f"cannot read {args.trace_file}: {e}")
    except json.JSONDecodeError as e:
        return fail(f"not valid JSON: {e}")

    if not isinstance(doc, dict):
        return fail("top level is not a JSON object")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return fail('missing or non-array "traceEvents"')
    if len(events) < args.min_events:
        return fail(f"only {len(events)} events, need >= {args.min_events}")

    prev_ts = None
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            return fail(f"event {i} is not an object")
        missing = REQUIRED_EVENT_KEYS - event.keys()
        if missing:
            return fail(f"event {i} missing keys: {sorted(missing)}")
        if event["ph"] != "X":
            return fail(f"event {i} has ph={event['ph']!r}, expected 'X'")
        if not isinstance(event["name"], str) or not event["name"]:
            return fail(f"event {i} has an empty or non-string name")
        for key in ("ts", "dur"):
            value = event[key]
            if not isinstance(value, (int, float)) or value < 0:
                return fail(f"event {i} has invalid {key}={value!r}")
        for key in ("pid", "tid"):
            if not isinstance(event[key], int):
                return fail(f"event {i} has non-integer {key}")
        if prev_ts is not None and event["ts"] < prev_ts:
            return fail(f"event {i} not sorted by ts")
        prev_ts = event["ts"]
        rc = check_args_identity(i, event)
        if rc:
            return rc

    if args.parentage:
        rc = check_parentage(events)
        if rc:
            return rc
        print(f"trace_check: OK: {len(events)} events, consistent span"
              f" tree in {args.trace_file}")
        return 0

    print(f"trace_check: OK: {len(events)} events in {args.trace_file}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
