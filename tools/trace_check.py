#!/usr/bin/env python3
"""Validates an exported frappe::obs trace file.

Checks that the file is well-formed Chrome trace-event JSON (the format
chrome://tracing and ui.perfetto.dev load): a top-level object with a
"traceEvents" array whose entries are complete duration ("ph": "X") events
with numeric, non-negative ts/dur and integer pid/tid.

Usage: trace_check.py <trace.json> [--min-events N]
Exit code 0 when valid, 1 with a diagnostic otherwise.

Run from ctest as the `trace_check` entry (label `obs`), against the file
the trace_test fixture exports.
"""

import argparse
import json
import sys

REQUIRED_EVENT_KEYS = {"name", "ph", "pid", "tid", "ts", "dur"}


def fail(message):
    print(f"trace_check: FAIL: {message}", file=sys.stderr)
    return 1


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("trace_file")
    parser.add_argument("--min-events", type=int, default=1,
                        help="minimum number of trace events required")
    args = parser.parse_args()

    try:
        with open(args.trace_file, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except OSError as e:
        return fail(f"cannot read {args.trace_file}: {e}")
    except json.JSONDecodeError as e:
        return fail(f"not valid JSON: {e}")

    if not isinstance(doc, dict):
        return fail("top level is not a JSON object")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return fail('missing or non-array "traceEvents"')
    if len(events) < args.min_events:
        return fail(f"only {len(events)} events, need >= {args.min_events}")

    prev_ts = None
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            return fail(f"event {i} is not an object")
        missing = REQUIRED_EVENT_KEYS - event.keys()
        if missing:
            return fail(f"event {i} missing keys: {sorted(missing)}")
        if event["ph"] != "X":
            return fail(f"event {i} has ph={event['ph']!r}, expected 'X'")
        if not isinstance(event["name"], str) or not event["name"]:
            return fail(f"event {i} has an empty or non-string name")
        for key in ("ts", "dur"):
            value = event[key]
            if not isinstance(value, (int, float)) or value < 0:
                return fail(f"event {i} has invalid {key}={value!r}")
        for key in ("pid", "tid"):
            if not isinstance(event[key], int):
                return fail(f"event {i} has non-integer {key}")
        if prev_ts is not None and event["ts"] < prev_ts:
            return fail(f"event {i} not sorted by ts")
        prev_ts = event["ts"]

    print(f"trace_check: OK: {len(events)} events in {args.trace_file}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
