#!/usr/bin/env python3
"""Validates BENCH_parallel_traversal.json from bench_parallel_traversal.

Checks, in order:

  1. Envelope: bench/git_sha/timestamp strings plus a non-empty entries
     array (the provenance stamp bench_json.h writes).
  2. Timing entries carry iterations >= 1 and min_ms <= avg_ms <= max_ms.
  3. Kernel entries (push-only / pull-only / parallel) carry the
     direction-optimizing fields: `speedup_vs_seed` (> 0),
     `direction_switches` (int >= 0) and `directions` — a comma-joined
     per-level decision list matching push|pull ":" bitmap|array.
  4. Direction sanity: push-only entries never report a pull level,
     pull-only entries never report a push level, and only hybrid
     (parallel) entries may report direction switches.
  5. The meta entry reports all_results_identical == 1 (every engine,
     direction mode and lane count returned the same node set).
  6. Perf floor: the closure workload's single-thread hybrid lane must
     show speedup_vs_seed >= --min-closure-speedup (default 0.9) against
     the push-only seed kernel measured in the same run — i.e. the
     direction-optimizing kernel never regresses the Fig. 6 lanes.
     threads > 1 lanes are exempt: on a host with fewer cores than lanes
     they legitimately trail the 1-lane baseline. The default is 0.9, not
     1.0: on all-push workloads (typed closures) the hybrid runs the
     identical levels as the seed plus only per-level cost bookkeeping, so
     honest runs measure parity with best-of noise on either side of 1.0,
     while a genuinely mis-switched pull level measures 0.3-0.6x — which
     the 0.9 floor still fails hard.

Exit code 0 when valid, 1 with a diagnostic otherwise.

Run from ctest as the `bench_check` entry against the JSON the
bench_traversal_smoke fixture writes (a small-scale smoke run whose
sub-ms kernels are noisier still, so ctest passes an explicit 0.7).
"""

import argparse
import json
import re
import sys

DIRECTIONS_RE = re.compile(
    r"^((push|pull):(bitmap|array))(,(push|pull):(bitmap|array))*$")

# Labels look like "<workload> / <engine>"; kernel engines carry the
# direction fields.
KERNEL_ENGINES = {"push-only", "pull-only", "parallel"}


def fail(message):
    print(f"bench_check: FAIL: {message}", file=sys.stderr)
    return 1


def is_int(v):
    return isinstance(v, int) and not isinstance(v, bool)


def is_num(v):
    return isinstance(v, (int, float)) and not isinstance(v, bool)


def check(path, min_closure_speedup):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return fail(f"cannot load {path}: {e}")

    if not isinstance(doc, dict):
        return fail(f"{path}: top level is not a JSON object")
    for key in ("bench", "git_sha", "timestamp"):
        if not isinstance(doc.get(key), str) or not doc[key]:
            return fail(f"{path}: {key!r} is not a non-empty string")
    entries = doc.get("entries")
    if not isinstance(entries, list) or not entries:
        return fail(f"{path}: entries is not a non-empty array")
    # The process-cost stamp (peak RSS + CPU seconds via getrusage) rides
    # on every BENCH_*.json so memory regressions show up in artifacts.
    rusage = doc.get("rusage")
    if not isinstance(rusage, dict):
        return fail(f"{path}: rusage is not an object")
    if not is_int(rusage.get("max_rss_kb")) or rusage["max_rss_kb"] <= 0:
        return fail(f"{path}: rusage.max_rss_kb is not an int > 0")
    for key in ("user_s", "sys_s"):
        if not is_num(rusage.get(key)) or rusage[key] < 0:
            return fail(f"{path}: rusage.{key} is not a non-negative"
                        " number")

    meta = None
    kernel_entries = 0
    closure_hybrid_lanes = 0
    for i, e in enumerate(entries):
        where = f"entries[{i}]"
        if not isinstance(e, dict):
            return fail(f"{path}: {where} is not a JSON object")
        label = e.get("label")
        if not isinstance(label, str) or not label:
            return fail(f"{path}: {where}.label is not a non-empty string")
        where = f"entries[{i}] ({label})"
        if label == "meta":
            meta = e
            continue

        if not is_int(e.get("iterations")) or e["iterations"] < 1:
            return fail(f"{path}: {where}.iterations is not an int >= 1")
        for key in ("min_ms", "avg_ms", "max_ms"):
            if not is_num(e.get(key)) or e[key] < 0:
                return fail(f"{path}: {where}.{key} is not a"
                            " non-negative number")
        if not e["min_ms"] <= e["avg_ms"] <= e["max_ms"]:
            return fail(f"{path}: {where} min/avg/max_ms not ordered")
        if not is_int(e.get("results")) or e["results"] < 0:
            return fail(f"{path}: {where}.results is not an int >= 0")
        if e.get("note"):
            return fail(f"{path}: {where} carries note {e['note']!r}")

        engine = label.rsplit(" / ", 1)[-1]
        if engine not in KERNEL_ENGINES:
            continue
        kernel_entries += 1

        if not is_int(e.get("threads")) or e["threads"] < 1:
            return fail(f"{path}: {where}.threads is not an int >= 1")
        if not is_num(e.get("speedup_vs_seed")) or e["speedup_vs_seed"] <= 0:
            return fail(f"{path}: {where}.speedup_vs_seed is not a"
                        " positive number")
        if not is_int(e.get("direction_switches")) \
                or e["direction_switches"] < 0:
            return fail(f"{path}: {where}.direction_switches is not an"
                        " int >= 0")
        directions = e.get("directions")
        if not isinstance(directions, str):
            return fail(f"{path}: {where}.directions is not a string")
        if directions and not DIRECTIONS_RE.match(directions):
            return fail(f"{path}: {where}.directions={directions!r} does"
                        " not match (push|pull):(bitmap|array),...")
        levels = directions.split(",") if directions else []
        if engine == "push-only":
            if any(lv.startswith("pull") for lv in levels):
                return fail(f"{path}: {where} push-only run reports a pull"
                            " level")
            if e["direction_switches"] != 0:
                return fail(f"{path}: {where} push-only run reports"
                            " direction switches")
        if engine == "pull-only":
            if any(lv.startswith("push") for lv in levels):
                return fail(f"{path}: {where} pull-only run reports a push"
                            " level")
            if e["direction_switches"] != 0:
                return fail(f"{path}: {where} pull-only run reports"
                            " direction switches")

        if engine == "parallel" and "closure" in label \
                and e["threads"] == 1:
            closure_hybrid_lanes += 1
            if e["speedup_vs_seed"] < min_closure_speedup:
                return fail(
                    f"{path}: {where} closure-lane speedup_vs_seed="
                    f"{e['speedup_vs_seed']:.3f} is below the"
                    f" {min_closure_speedup:.2f} floor — the"
                    " direction-optimizing kernel regressed vs the"
                    " push-only seed")

    if kernel_entries == 0:
        return fail(f"{path}: no kernel entries"
                    f" (push-only/pull-only/parallel)")
    if closure_hybrid_lanes == 0:
        return fail(f"{path}: no single-thread closure-workload hybrid"
                    " lane to check")
    if meta is None:
        return fail(f"{path}: no meta entry")
    if meta.get("all_results_identical") != 1:
        return fail(f"{path}: meta.all_results_identical="
                    f"{meta.get('all_results_identical')!r}, expected 1")
    for key in ("cores", "scale"):
        if not is_num(meta.get(key)) or meta[key] <= 0:
            return fail(f"{path}: meta.{key} is not a positive number")

    print(f"bench_check: OK: {kernel_entries} kernel entries"
          f" ({closure_hybrid_lanes} closure hybrid lanes >="
          f" {min_closure_speedup:.2f}x vs seed) in {path}")
    return 0


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("json", metavar="FILE",
                        help="BENCH_parallel_traversal.json to validate")
    parser.add_argument("--min-closure-speedup", type=float, default=0.9,
                        help="fail when a closure-workload hybrid lane's"
                             " speedup_vs_seed drops below this (default"
                             " 0.9: parity with the push-only seed modulo"
                             " best-of noise; a mis-switched pull level"
                             " measures 0.3-0.6x)")
    args = parser.parse_args()
    return check(args.json, args.min_closure_speedup)


if __name__ == "__main__":
    sys.exit(main())
