#!/usr/bin/env python3
"""Validates the query front door's wire contract from captured exchanges.

Three checks, any subset per invocation:

  server_check.py --query <server_query.json>
      A successful POST /query response body: columns (array of strings),
      rows (array of arrays of strings, each row as wide as columns),
      stats {elapsed_ms, rows, steps, db_hits, fast_path, cpu_us,
      alloc_bytes, peak_bytes, scanned_bytes} with rows equal
      to len(rows), epoch (int >= 1), trace_id (32 lower-case hex chars),
      timeline {queue_us, parse_us, plan_us, exec_us, serialize_us,
      total_us} (ints >= 0), and optionally plan (string). Unknown keys
      fail: clients parse against this schema.

  server_check.py --overload <server_overload.http>
      A raw 429 shed exchange: status line "HTTP/1.0 429 Too Many
      Requests", a Retry-After header whose value is a positive integer,
      Content-Type application/json, and a JSON body carrying error +
      status == 429.

  server_check.py --readyz <state> <readyz.json>
      A /readyz body: {"state": <state>, "reason": string-or-null}, with
      a non-null reason for every state except "ready".

Exit code 0 when valid, 1 with a diagnostic otherwise.

Run from ctest as the `server_check` entry (label `server`), against the
files the query_server_test fixture exports.
"""

import argparse
import json
import re
import sys

READYZ_STATES = {"ready", "degraded", "overloaded", "draining"}

STATS_SCHEMA = {
    "elapsed_ms": (int, float),
    "rows": int,
    "steps": int,
    "db_hits": int,
    "fast_path": bool,
    "cpu_us": int,
    "alloc_bytes": int,
    "peak_bytes": int,
    "scanned_bytes": int,
}

TIMELINE_KEYS = {"queue_us", "parse_us", "plan_us", "exec_us",
                 "serialize_us", "total_us"}

TRACE_ID_RE = re.compile(r"^[0-9a-f]{32}$")


def fail(message):
    print(f"server_check: FAIL: {message}", file=sys.stderr)
    return 1


def load_json(path):
    with open(path, "r", encoding="utf-8") as f:
        return json.load(f)


def check_query(path):
    try:
        doc = load_json(path)
    except (OSError, json.JSONDecodeError) as e:
        return fail(f"cannot load {path}: {e}")
    if not isinstance(doc, dict):
        return fail(f"{path}: top level is not a JSON object")
    allowed = {"columns", "rows", "stats", "epoch", "plan", "trace_id",
               "timeline"}
    required = {"columns", "rows", "stats", "epoch", "trace_id", "timeline"}
    missing = required - doc.keys()
    if missing:
        return fail(f"{path}: missing keys: {sorted(missing)}")
    unknown = doc.keys() - allowed
    if unknown:
        return fail(f"{path}: unknown keys: {sorted(unknown)}")

    columns = doc["columns"]
    if not isinstance(columns, list) or not columns or \
            not all(isinstance(c, str) and c for c in columns):
        return fail(f"{path}: columns is not a non-empty string array")
    rows = doc["rows"]
    if not isinstance(rows, list):
        return fail(f"{path}: rows is not an array")
    for i, row in enumerate(rows):
        if not isinstance(row, list) or len(row) != len(columns):
            return fail(f"{path}: rows[{i}] is not an array of"
                        f" {len(columns)} cells")
        if not all(isinstance(cell, str) for cell in row):
            return fail(f"{path}: rows[{i}] has a non-string cell")

    stats = doc["stats"]
    if not isinstance(stats, dict):
        return fail(f"{path}: stats is not an object")
    if set(stats.keys()) != set(STATS_SCHEMA.keys()):
        return fail(f"{path}: stats keys {sorted(stats.keys())}, expected"
                    f" {sorted(STATS_SCHEMA.keys())}")
    for key, kinds in STATS_SCHEMA.items():
        value = stats[key]
        kinds = kinds if isinstance(kinds, tuple) else (kinds,)
        if bool not in kinds and isinstance(value, bool):
            return fail(f"{path}: stats.{key}={value!r} is a bool")
        if not isinstance(value, kinds) or \
                (not isinstance(value, bool) and value < 0):
            return fail(f"{path}: stats.{key}={value!r} is not a"
                        " non-negative number")
    if stats["rows"] != len(rows):
        return fail(f"{path}: stats.rows={stats['rows']} !="
                    f" len(rows)={len(rows)}")

    epoch = doc["epoch"]
    if not isinstance(epoch, int) or isinstance(epoch, bool) or epoch < 1:
        return fail(f"{path}: epoch={epoch!r} is not a positive int")
    if "plan" in doc and not isinstance(doc["plan"], str):
        return fail(f"{path}: plan is not a string")

    trace_id = doc["trace_id"]
    if not isinstance(trace_id, str) or not TRACE_ID_RE.match(trace_id):
        return fail(f"{path}: trace_id={trace_id!r} is not 32 lower-case"
                    " hex chars")
    timeline = doc["timeline"]
    if not isinstance(timeline, dict):
        return fail(f"{path}: timeline is not an object")
    if set(timeline.keys()) != TIMELINE_KEYS:
        return fail(f"{path}: timeline keys {sorted(timeline.keys())},"
                    f" expected {sorted(TIMELINE_KEYS)}")
    for key in TIMELINE_KEYS:
        value = timeline[key]
        if not isinstance(value, int) or isinstance(value, bool) or \
                value < 0:
            return fail(f"{path}: timeline.{key}={value!r} is not a"
                        " non-negative int")
    components = sum(timeline[k] for k in TIMELINE_KEYS - {"total_us"})
    if components > 0 and timeline["total_us"] == 0:
        return fail(f"{path}: timeline.total_us=0 with nonzero components")
    print(f"server_check: OK: {len(rows)} rows x {len(columns)} columns,"
          f" epoch {epoch} in {path}")
    return 0


def check_overload(path):
    try:
        with open(path, "r", encoding="utf-8", newline="") as f:
            raw = f.read()
    except OSError as e:
        return fail(f"cannot load {path}: {e}")
    head, sep, body = raw.partition("\r\n\r\n")
    if not sep:
        return fail(f"{path}: no header/body separator")
    lines = head.split("\r\n")
    if not lines[0].startswith("HTTP/1.0 429"):
        return fail(f"{path}: status line {lines[0]!r} is not HTTP/1.0 429")
    headers = {}
    for line in lines[1:]:
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    retry_after = headers.get("retry-after")
    if retry_after is None:
        return fail(f"{path}: no Retry-After header on a 429")
    if not retry_after.isdigit() or int(retry_after) < 1:
        return fail(f"{path}: Retry-After={retry_after!r} is not a"
                    " positive integer")
    if "application/json" not in headers.get("content-type", ""):
        return fail(f"{path}: 429 body is not application/json")
    try:
        doc = json.loads(body)
    except json.JSONDecodeError as e:
        return fail(f"{path}: 429 body is not valid JSON: {e}")
    if not isinstance(doc, dict) or "error" not in doc or \
            doc.get("status") != 429:
        return fail(f"{path}: 429 body {doc!r} lacks error/status=429")
    print(f"server_check: OK: 429 shed with Retry-After={retry_after}"
          f" in {path}")
    return 0


def check_readyz(state, path):
    if state not in READYZ_STATES:
        return fail(f"--readyz state {state!r} not in"
                    f" {sorted(READYZ_STATES)}")
    try:
        doc = load_json(path)
    except (OSError, json.JSONDecodeError) as e:
        return fail(f"cannot load {path}: {e}")
    if not isinstance(doc, dict) or set(doc.keys()) != {"state", "reason"}:
        return fail(f"{path}: expected exactly {{state, reason}}, got"
                    f" {doc!r}")
    if doc["state"] != state:
        return fail(f"{path}: state={doc['state']!r}, expected {state!r}")
    reason = doc["reason"]
    if state == "ready":
        if reason is not None:
            return fail(f"{path}: ready must carry reason=null,"
                        f" got {reason!r}")
    elif not isinstance(reason, str) or not reason:
        return fail(f"{path}: state {state!r} needs a non-empty string"
                    f" reason, got {reason!r}")
    print(f"server_check: OK: readyz state {state!r} in {path}")
    return 0


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--query", metavar="FILE",
                        help="POST /query 200 body to validate")
    parser.add_argument("--overload", metavar="FILE",
                        help="raw 429 shed exchange to validate")
    parser.add_argument("--readyz", nargs=2, action="append",
                        metavar=("STATE", "FILE"), default=[],
                        help="a /readyz body that must report STATE")
    args = parser.parse_args()

    if not (args.query or args.overload or args.readyz):
        parser.error("nothing to check: pass --query/--overload/--readyz")

    if args.query:
        rc = check_query(args.query)
        if rc:
            return rc
    if args.overload:
        rc = check_overload(args.overload)
        if rc:
            return rc
    for state, path in args.readyz:
        rc = check_readyz(state, path)
        if rc:
            return rc
    return 0


if __name__ == "__main__":
    sys.exit(main())
