// Ablation D: adjacency-list store vs compressed-sparse-row view for
// traversal-heavy analytics (the paper's Section 7 pointers — PGX, LLAMA —
// exist precisely because of this gap). Measures whole-graph BFS layers
// and repeated transitive closures on the kernel-scale graph through both
// representations.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_json.h"
#include "bench/kernel_common.h"
#include "graph/csr_view.h"
#include "graph/traversal.h"

using namespace frappe;

int main() {
  bench::PrintHeader(
      "Ablation D: adjacency-list store vs CSR view (traversal analytics)");
  double factor = std::min(bench::ScaleFromEnv(), 0.5);
  std::printf("scale factor: %g\n\n", factor);

  auto graph = bench::GenerateKernel(factor);
  const graph::GraphStore& store = graph->store();
  graph::TypeId calls = graph->type_id(model::EdgeKind::kCalls);

  auto t0 = bench::Clock::now();
  graph::CsrView csr = graph::CsrView::Build(store);
  double build_ms = bench::MsSince(t0);
  std::printf("CSR build: %.0f ms, packed arrays %.1f MB (store adjacency"
              " + records: %.1f MB)\n\n",
              build_ms, csr.ByteSize() / 1048576.0,
              (store.EstimateMemory().nodes +
               store.EstimateMemory().relationships) / 1048576.0);

  // Seeds: functions with decent out-degree.
  std::vector<graph::NodeId> seeds;
  store.ForEachNode([&](graph::NodeId id) {
    if (seeds.size() >= 50 ||
        graph->KindOf(id) != model::NodeKind::kFunction) {
      return;
    }
    size_t out_calls = 0;
    store.ForEachEdge(id, graph::Direction::kOut,
                      [&](graph::EdgeId e, graph::NodeId) {
                        if (store.GetEdge(e).type == calls) ++out_calls;
                        return true;
                      });
    if (out_calls >= 5) seeds.push_back(id);
  });

  graph::EdgeFilter filter = graph::EdgeFilter::Of({calls});
  auto run = [&](const graph::GraphView& view) {
    size_t total = 0;
    auto start = bench::Clock::now();
    for (graph::NodeId seed : seeds) {
      total += graph::TransitiveClosure(view, seed, filter).size();
    }
    return std::make_pair(bench::MsSince(start), total);
  };

  auto [store_ms, store_total] = run(store);
  auto [csr_ms, csr_total] = run(csr);
  std::printf("%-34s %10s %14s\n", "50 call-graph closures", "time",
              "nodes reached");
  std::printf("%-34s %7.0f ms %14zu\n", "GraphStore (adjacency lists)",
              store_ms, store_total);
  std::printf("%-34s %7.0f ms %14zu\n", "CsrView (packed arrays)", csr_ms,
              csr_total);
  std::printf("agreement: %s, speedup %.2fx\n",
              store_total == csr_total ? "identical results" : "MISMATCH!",
              store_ms / std::max(csr_ms, 0.001));

  // Full-graph BFS from the hub in both directions.
  auto bfs_all = [&](const graph::GraphView& view) {
    size_t visited = 0;
    auto start = bench::Clock::now();
    graph::Bfs(view, {0}, graph::EdgeFilter::Any(graph::Direction::kBoth),
               [&](graph::NodeId, size_t) {
                 ++visited;
                 return true;
               });
    return std::make_pair(bench::MsSince(start), visited);
  };
  auto [s_ms, s_n] = bfs_all(store);
  auto [c_ms, c_n] = bfs_all(csr);
  std::printf("\nundirected whole-graph BFS: store %.0f ms (%zu nodes),"
              " CSR %.0f ms (%zu nodes)\n", s_ms, s_n, c_ms, c_n);

  bench::JsonReport json("ablation_csr");
  json.Add("csr build").Sample(build_ms).Extra("scale", factor).Extra(
      "csr_mb", csr.ByteSize() / 1048576.0);
  json.Add("50 closures / store")
      .Sample(store_ms)
      .Results(static_cast<int64_t>(store_total));
  json.Add("50 closures / csr")
      .Sample(csr_ms)
      .Results(static_cast<int64_t>(csr_total))
      .Extra("speedup_vs_store", store_ms / std::max(csr_ms, 0.001));
  json.Add("whole-graph bfs / store")
      .Sample(s_ms)
      .Results(static_cast<int64_t>(s_n));
  json.Add("whole-graph bfs / csr")
      .Sample(c_ms)
      .Results(static_cast<int64_t>(c_n));
  return 0;
}
