// Ablation A (paper Section 6.1): why the declarative transitive closure
// explodes while the embedded traversal stays sub-second. Sweeps graph
// size (layered DAGs with fanout) and compares:
//   - FQL `MATCH n -[:calls*]-> m RETURN distinct m` (path enumeration
//     with relationship-uniqueness, Cypher semantics)
//   - graph::TransitiveClosure (visited-set BFS)
// The number of edge-distinct paths grows exponentially with depth, so the
// declarative engine hits its step budget while BFS visits each node once.

#include <cstdio>
#include <string>

#include "bench/bench_json.h"
#include "bench/kernel_common.h"
#include "common/rng.h"
#include "graph/traversal.h"
#include "query/parser.h"

using namespace frappe;

namespace {

// Layered DAG: `layers` layers of `width` functions; every function calls
// `fanout` functions of the next layer. Paths from layer 0 to the bottom:
// fanout^layers.
model::CodeGraph BuildLayeredDag(int layers, int width, int fanout) {
  model::CodeGraph graph(model::CodeGraph::Validation::kOff);
  std::vector<std::vector<graph::NodeId>> nodes(layers);
  for (int l = 0; l < layers; ++l) {
    for (int w = 0; w < width; ++w) {
      nodes[l].push_back(graph.AddNode(
          model::NodeKind::kFunction,
          "fn_l" + std::to_string(l) + "_" + std::to_string(w)));
    }
  }
  frappe::Rng rng(1);
  for (int l = 0; l + 1 < layers; ++l) {
    for (int w = 0; w < width; ++w) {
      for (int f = 0; f < fanout; ++f) {
        graph.AddEdgeUnchecked(model::EdgeKind::kCalls, nodes[l][w],
                               nodes[l + 1][rng.Uniform(width)]);
      }
    }
  }
  return graph;
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Ablation A: declarative closure vs embedded traversal (Section 6.1)");
  std::printf("%-28s %14s %16s %12s\n", "graph (layers x width x fanout)",
              "FQL closure", "direct closure", "reached");
  const uint64_t kStepBudget = 20'000'000;
  bench::JsonReport json("ablation_closure");

  for (int layers : {4, 8, 12, 16, 24}) {
    int width = 16, fanout = 3;
    model::CodeGraph graph = BuildLayeredDag(layers, width, fanout);
    query::Session session(graph);

    // Direct traversal first (a giant aborted declarative run perturbs the
    // allocator enough to contaminate a measurement taken right after it).
    graph::EdgeFilter filter = graph::EdgeFilter::Of(
        {graph.type_id(model::EdgeKind::kCalls)});
    auto t1 = bench::Clock::now();
    auto closure = graph::TransitiveClosure(graph.view(), 0, filter);
    double direct_ms = bench::MsSince(t1);

    std::string text =
        "START n=node:node_auto_index('short_name: fn_l0_0') "
        "MATCH n -[:calls*]-> m RETURN distinct m";
    query::ExecOptions options;
    options.max_steps = kStepBudget;

    auto t0 = bench::Clock::now();
    auto fql = session.Run(text, options);
    double fql_ms = bench::MsSince(t0);
    std::string fql_cell;
    if (fql.ok()) {
      char buf[48];
      std::snprintf(buf, sizeof(buf), "%9.1f ms", fql_ms);
      fql_cell = buf;
    } else {
      fql_cell = "ABORTED@" + std::to_string(kStepBudget / 1000000) + "M";
    }

    char label[64];
    std::snprintf(label, sizeof(label), "%d x %d x %d", layers, width,
                  fanout);
    std::printf("%-28s %14s %13.2f ms %12zu\n", label, fql_cell.c_str(),
                direct_ms, closure.size());
    json.Add(std::string(label) + " / fql")
        .Sample(fql_ms)
        .Results(fql.ok() ? static_cast<int64_t>(fql->rows.size()) : -1)
        .Note(fql.ok() ? "" : fql_cell);
    json.Add(std::string(label) + " / direct")
        .Sample(direct_ms)
        .Results(static_cast<int64_t>(closure.size()));
  }
  std::printf("\nTakeaway: path enumeration cost grows with the number of"
              " paths (exponential in\ndepth); the visited-set traversal"
              " grows with nodes+edges. This is the paper's\n'> 15 min"
              " aborted' vs '~20 ms via the embedded API'.\n");
  return 0;
}
