// Reproduces paper Figure 7 ("Linux kernel node degree distribution"):
// count of nodes per total degree on a log scale. The paper observes that
// "a large majority of nodes have a small node degree, whereas a few nodes
// have a huge degree" — primitives like `int` (degree 79K) and common
// constants like `NULL` (19K).

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>

#include "bench/bench_json.h"
#include "bench/kernel_common.h"
#include "graph/stats.h"

int main() {
  using namespace frappe;
  double factor = bench::ScaleFromEnv();
  bench::PrintHeader(
      "Figure 7: node degree distribution (log-binned) + hubs");
  std::printf("scale factor: %g\n\n", factor);

  extractor::GraphReport report;
  auto graph = bench::GenerateKernel(factor, &report);
  auto bins = graph::LogBinnedDegrees(graph->view());

  uint64_t max_count = 1;
  for (const auto& bin : bins) max_count = std::max(max_count, bin.node_count);

  std::printf("%-19s %12s  %s\n", "degree range", "node count",
              "log-scale bar");
  for (const auto& bin : bins) {
    char range[32];
    std::snprintf(range, sizeof(range), "%" PRIu64 "-%" PRIu64,
                  bin.min_degree, bin.max_degree);
    int bar = static_cast<int>(
        40.0 * std::log10(1.0 + static_cast<double>(bin.node_count)) /
        std::log10(1.0 + static_cast<double>(max_count)));
    std::printf("%-19s %12" PRIu64 "  ", range, bin.node_count);
    for (int i = 0; i < bar; ++i) std::putchar('#');
    std::putchar('\n');
  }

  auto hubs = graph::TopDegreeNodes(
      graph->view(), 8, graph->key_id(model::PropKey::kShortName));
  std::printf("\nTop hubs (paper: `int` ~79K, `NULL` ~19K at full scale):\n");
  for (const auto& hub : hubs) {
    std::printf("  %-28s %-12s degree %" PRIu64 "%s\n",
                hub.short_name.c_str(), hub.type_name.c_str(), hub.degree,
                hub.id == report.int_primitive
                    ? "   <- the `int` hub"
                    : (hub.id == report.null_macro ? "   <- the `NULL` hub"
                                                   : ""));
  }

  // Shape summary.
  uint64_t total = 0, low = 0;
  for (const auto& bin : bins) {
    total += bin.node_count;
    if (bin.max_degree <= 15) low += bin.node_count;
  }
  std::printf("\n%.1f%% of nodes have degree <= 15 (paper: 'large majority"
              " ... small node degree')\n",
              100.0 * static_cast<double>(low) / static_cast<double>(total));

  bench::JsonReport json("fig7_degree_distribution");
  json.Add("degree distribution")
      .Results(static_cast<int64_t>(total))
      .Extra("scale", factor)
      .Extra("bins", static_cast<double>(bins.size()))
      .Extra("pct_degree_le_15",
             100.0 * static_cast<double>(low) / static_cast<double>(total))
      .Extra("max_hub_degree",
             hubs.empty() ? 0.0 : static_cast<double>(hubs.front().degree));
  return 0;
}
