// Micro-bench for the cardinality-observability acceptance bars:
//
//   1. ANALYZE lane: what a full BuildStatsCatalog pass over the generated
//      kernel graph costs (the command is an explicit operator action, so
//      this is a budget number, not a < 5% bar) and how many bytes the
//      resulting catalog adds to a snapshot — cross-checked against the
//      /debug/storagez section breakdown the shell registers.
//   2. Estimator A/B lane: the per-query cost of the estimate + q-error
//      telemetry that runs after every successful query. Interleaved
//      FRAPPE_ESTIMATOR=off / on sampling over the Table 5-ish mix,
//      compared by median, must stay under the 5% observability bar.
//
// Emits BENCH_stats.json through the shared bench_json.h path (git SHA +
// timestamp stamped). Exits non-zero when the estimator overhead breaches
// 5%.
//
// Env knobs: FRAPPE_OBS_SCALE (0.1), FRAPPE_OBS_ITERS (30).

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_json.h"
#include "bench/kernel_common.h"
#include "graph/stats_catalog.h"
#include "model/code_graph.h"
#include "obs/stats_server.h"
#include "query/session.h"

namespace {

using namespace frappe;
using bench::Clock;
using bench::MsSince;

double EnvDouble(const char* name, double fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr) return fallback;
  double v = std::atof(env);
  return v > 0 ? v : fallback;
}

}  // namespace

int main() {
  bench::PrintHeader("stats: ANALYZE cost, catalog size, estimator overhead");
  bench::JsonReport report("stats");

  double scale = EnvDouble("FRAPPE_OBS_SCALE", 0.1);
  const int iters = static_cast<int>(EnvDouble("FRAPPE_OBS_ITERS", 30));
  auto graph = bench::GenerateKernel(scale);
  query::Session session(*graph);
  const graph::GraphView& view = graph->view();
  ::unsetenv("FRAPPE_MISESTIMATE_QERROR");

  // --- 1. ANALYZE lane ---
  auto run_analyze = [&]() {
    auto result = session.Run("ANALYZE");
    if (!result.ok()) {
      std::fprintf(stderr, "FATAL: ANALYZE: %s\n",
                   result.status().ToString().c_str());
      std::exit(1);
    }
  };
  run_analyze();  // warm (interns, allocator)
  std::vector<double> analyze_ms;
  for (int i = 0; i < iters; ++i) {
    Clock::time_point start = Clock::now();
    run_analyze();
    analyze_ms.push_back(MsSince(start));
  }
  double analyze_avg = 0;
  for (double s : analyze_ms) analyze_avg += s;
  analyze_avg /= static_cast<double>(analyze_ms.size());

  std::shared_ptr<const graph::StatsCatalog> catalog =
      session.database().stats->Get();
  if (catalog == nullptr) {
    std::fprintf(stderr, "FATAL: ANALYZE left no catalog behind\n");
    return 1;
  }
  uint64_t catalog_bytes = catalog->ByteSize();
  double bytes_per_node =
      static_cast<double>(catalog_bytes) /
      static_cast<double>(catalog->node_count ? catalog->node_count : 1);

  // The shell's /debug/storagez wiring: the catalog must show up as its
  // own section so operators can see what ANALYZE added to the snapshot.
  obs::StatsServer::SetStorageStatsProvider(
      [&]() -> obs::StatsServer::StorageSections {
        return {{"stats_catalog", catalog_bytes}};
      });
  std::string storagez = obs::StatsServer::StorageJson();
  obs::StatsServer::SetStorageStatsProvider(nullptr);
  if (storagez.find("stats_catalog") == std::string::npos) {
    std::fprintf(stderr, "FATAL: /debug/storagez lost the stats_catalog"
                 " section:\n%s\n", storagez.c_str());
    return 1;
  }

  std::printf("ANALYZE: %.3f ms avg over %d iters (%" PRIu64 " nodes, %"
              PRIu64 " edges)\n",
              analyze_avg, iters, catalog->node_count, catalog->edge_count);
  std::printf("catalog: %" PRIu64 " bytes (%.2f bytes/node, %zu edge types,"
              " %zu hubs) — in /debug/storagez as stats_catalog\n",
              catalog_bytes, bytes_per_node, catalog->edge_types.size(),
              catalog->hubs.size());

  report.Add("analyze")
      .Samples(analyze_ms)
      .Results(static_cast<int64_t>(catalog->node_count))
      .Extra("edge_count", static_cast<double>(catalog->edge_count));
  report.Add("catalog_size")
      .Extra("bytes", static_cast<double>(catalog_bytes))
      .Extra("bytes_per_node", bytes_per_node)
      .Extra("edge_types", static_cast<double>(catalog->edge_types.size()))
      .Extra("hubs", static_cast<double>(catalog->hubs.size()));

  // --- 2. estimator A/B lane ---
  // Seed: a function with outgoing calls, so the closure shape does real
  // work (same protocol as bench_obs_overhead).
  const model::Schema& schema = graph->schema();
  graph::TypeId calls = schema.edge_type(model::EdgeKind::kCalls);
  graph::KeyId short_name = schema.key(model::PropKey::kShortName);
  std::string seed_name;
  for (graph::EdgeId e = 0; e < view.EdgeIdUpperBound(); ++e) {
    if (!view.EdgeExists(e) || view.GetEdge(e).type != calls) continue;
    std::string_view name =
        view.GetNodeString(view.GetEdge(e).src, short_name);
    if (!name.empty()) {
      seed_name = std::string(name);
      break;
    }
  }
  if (seed_name.empty()) {
    std::fprintf(stderr, "FATAL: no seed function found\n");
    return 1;
  }
  std::vector<std::string> mix = {
      "START n=node:node_auto_index('short_name: " + seed_name +
          "') MATCH n -[:calls*]-> m RETURN distinct m",
      "START n=node:node_auto_index('short_name: " + seed_name +
          "') RETURN n",
      "MATCH (f:function) WHERE f.short_name = '" + seed_name +
          "' RETURN f",
  };
  auto run_mix = [&]() {
    for (const std::string& q : mix) {
      auto result = session.Run(q);
      if (!result.ok()) {
        std::fprintf(stderr, "FATAL: %s\n",
                     result.status().ToString().c_str());
        std::exit(1);
      }
    }
  };
  // Interleaved A/B sampling, compared by median (the
  // bench_obs_overhead protocol): each iteration takes one estimator-off
  // and one estimator-on sample back to back so scheduler drift hits both
  // lanes equally.
  std::vector<double> est_off_ms, est_on_ms;
  run_mix();  // warm caches (CSR build, allocator)
  for (int i = 0; i < iters; ++i) {
    ::setenv("FRAPPE_ESTIMATOR", "off", 1);
    run_mix();  // warm this mode
    Clock::time_point start = Clock::now();
    run_mix();
    est_off_ms.push_back(MsSince(start));

    ::unsetenv("FRAPPE_ESTIMATOR");
    run_mix();
    start = Clock::now();
    run_mix();
    est_on_ms.push_back(MsSince(start));
  }
  auto median = [](std::vector<double> v) {
    std::sort(v.begin(), v.end());
    size_t mid = v.size() / 2;
    return v.size() % 2 != 0 ? v[mid] : (v[mid - 1] + v[mid]) / 2.0;
  };
  double est_off_med = median(est_off_ms);
  double est_on_med = median(est_on_ms);
  double estimator_pct = 100.0 * (est_on_med - est_off_med) / est_off_med;
  bool pass = estimator_pct < 5.0;

  std::printf("query mix (estimator off): %.3f ms median over %d iters\n",
              est_off_med, iters);
  std::printf("query mix (estimator on):  %.3f ms median (%+.2f%%) -> %s"
              " (< 5%% required)\n",
              est_on_med, estimator_pct, pass ? "PASS" : "FAIL");

  report.Add("mix_estimator_off").Samples(est_off_ms);
  report.Add("mix_estimator_on")
      .Samples(est_on_ms)
      .Extra("estimator_overhead_pct", estimator_pct);
  report.Add("overhead")
      .Extra("estimator_overhead_pct", estimator_pct)
      .Extra("analyze_ms_avg", analyze_avg)
      .Extra("catalog_bytes", static_cast<double>(catalog_bytes))
      .Extra("pass", pass ? 1 : 0);
  report.Write();
  return pass ? 0 : 1;
}
