// Reproduces paper Table 3 ("Graph metrics"): node count, edge count and
// density of the extracted kernel dependency graph. The paper extracted
// Oracle UEK 3.8.13 (11.4 MLoC) into ~505 K nodes and ~4 M edges (prose:
// "just over half a million nodes and close to four million edges, for a
// ratio of 1:8"); we extract the synthetic kernel stand-in (DESIGN.md).

#include <cinttypes>
#include <cstdio>

#include "bench/bench_json.h"
#include "bench/kernel_common.h"
#include "graph/stats.h"

int main() {
  using namespace frappe;
  double factor = bench::ScaleFromEnv();
  bench::PrintHeader("Table 3: Graph metrics (paper vs measured)");
  std::printf("scale factor: %g (1.0 = paper scale; set FRAPPE_SCALE)\n\n",
              factor);

  auto start = bench::Clock::now();
  extractor::GraphReport report;
  auto graph = bench::GenerateKernel(factor, &report);
  double gen_ms = bench::MsSince(start);

  graph::GraphMetrics m = graph::ComputeMetrics(graph->view());

  std::printf("%-22s %15s %15s\n", "metric", "paper (UEK)", "measured");
  std::printf("%-22s %15s %15" PRIu64 "\n", "node count", "~505,000",
              m.node_count);
  std::printf("%-22s %15s %15" PRIu64 "\n", "edge count", "~4,000,000",
              m.edge_count);
  std::printf("%-22s %15s %15.2f\n", "edge:node ratio", "8 (1:8)",
              m.edge_node_ratio);
  std::printf("%-22s %15s %15.3e\n", "density", "~1.6e-05", m.density);
  std::printf("\nextraction substitute: synthetic kernel generated in"
              " %.0f ms\n", gen_ms);

  // Per-type breakdown (not in the paper's table, but useful to check the
  // model covers every Table 1 type).
  std::printf("\nnode types present: %zu / %zu from paper Table 1\n",
              graph::NodeTypeHistogram(graph->view()).size(),
              static_cast<size_t>(model::NodeKind::kCount));
  std::printf("edge types present: %zu / %zu from paper Table 1\n",
              graph::EdgeTypeHistogram(graph->view()).size(),
              static_cast<size_t>(model::EdgeKind::kCount));

  bench::JsonReport json("table3_graph_metrics");
  json.Add("generate + metrics")
      .Sample(gen_ms)
      .Extra("scale", factor)
      .Extra("node_count", static_cast<double>(m.node_count))
      .Extra("edge_count", static_cast<double>(m.edge_count))
      .Extra("edge_node_ratio", m.edge_node_ratio)
      .Extra("density", m.density);
  return 0;
}
