// Ablation C (paper Section 6.3): storing an evolving codebase's graph.
// Compares the two strategies the paper discusses:
//   naive   — "store and query each version in isolation" (full copy per
//             version; the paper: "increasing numbers of duplicate nodes,
//             edges and properties are being needlessly stored")
//   delta   — the VersionStore (one append-only store + lifetime
//             intervals + property histories)
// and shows cross-version capabilities the naive scheme lacks: diff and
// change-impact analysis, plus point-in-time query latency.

#include <cinttypes>
#include <cstdio>

#include "bench/bench_json.h"
#include "bench/kernel_common.h"
#include "common/rng.h"
#include "graph/traversal.h"
#include "temporal/impact.h"
#include "temporal/version_store.h"

using namespace frappe;

int main() {
  bench::PrintHeader(
      "Ablation C: delta-encoded versions vs copy-per-version (Section 6.3)");

  // Base graph: a mid-size kernel slice, then N versions with ~0.5%
  // change each ("large codebases evolve slowly").
  const int kVersions = 12;
  temporal::VersionStore store;
  model::Schema schema = model::Schema::Install(&store.raw_store());
  graph::TypeId fn = schema.node_type(model::NodeKind::kFunction);
  graph::TypeId calls = schema.edge_type(model::EdgeKind::kCalls);
  graph::KeyId name_key = schema.key(model::PropKey::kShortName);

  frappe::Rng rng(11);
  std::vector<graph::NodeId> fns;
  const int kFunctions = 20000;
  for (int i = 0; i < kFunctions; ++i) {
    graph::NodeId node = store.AddNode(fn);
    store.SetNodeProperty(node, name_key,
                          store.raw_store().StringValue(
                              "fn_" + std::to_string(i)));
    fns.push_back(node);
  }
  for (int i = 0; i < kFunctions * 8; ++i) {
    store.AddEdge(fns[rng.Uniform(fns.size())], fns[rng.Uniform(fns.size())],
                  calls);
  }
  store.CommitVersion();

  uint64_t naive_bytes = 0;
  for (int v = 1; v < kVersions; ++v) {
    // ~0.5% churn: new functions, new calls, a few removals.
    for (int i = 0; i < kFunctions / 400; ++i) {
      graph::NodeId node = store.AddNode(fn);
      store.SetNodeProperty(node, name_key,
                            store.raw_store().StringValue(
                                "fn_v" + std::to_string(v) + "_" +
                                std::to_string(i)));
      store.AddEdge(fns[rng.Uniform(fns.size())], node, calls);
      fns.push_back(node);
    }
    for (int i = 0; i < kFunctions / 50; ++i) {
      store.AddEdge(fns[rng.Uniform(fns.size())],
                    fns[rng.Uniform(fns.size())], calls);
    }
    store.CommitVersion();
  }
  // Naive cost: one full copy of each committed version (measured as the
  // serialized snapshot of that version).
  for (temporal::Version v = 0; v < store.VersionCount(); ++v) {
    std::string blob;
    auto sizes = graph::SerializeSnapshot(**store.ViewAt(v), &blob);
    naive_bytes += sizes.ok() ? sizes->total() : 0;
  }
  // Delta cost, measured the same way: base snapshot + serialized
  // intervals are bounded above by DeltaBytes (resident); report both.
  std::string base_blob;
  auto base_sizes = graph::SerializeSnapshot(**store.ViewAt(0), &base_blob);

  std::printf("versions: %zu, churn ~0.5%%/version\n\n",
              store.VersionCount());
  // One in-memory copy of a version costs about what the delta store's
  // final graph costs (the churn is tiny); naive-in-memory keeps one per
  // version.
  uint64_t resident_copy = store.raw_store().EstimateMemory().total();
  uint64_t naive_resident = resident_copy * store.VersionCount();
  std::printf("on disk:   copy-per-version (sum of snapshots) %10.1f MB\n",
              naive_bytes / 1048576.0);
  std::printf("           delta store base snapshot           %10.1f MB"
              "   (%.1fx smaller)\n",
              (base_sizes.ok() ? base_sizes->total() : 0) / 1048576.0,
              static_cast<double>(naive_bytes) /
                  std::max<uint64_t>(
                      base_sizes.ok() ? base_sizes->total() : 1, 1));
  std::printf("resident:  copy-per-version (%zu full graphs)  %10.1f MB\n",
              store.VersionCount(), naive_resident / 1048576.0);
  std::printf("           delta store (all versions)          %10.1f MB"
              "   (%.1fx smaller)\n\n",
              store.DeltaBytes() / 1048576.0,
              static_cast<double>(naive_resident) /
                  static_cast<double>(store.DeltaBytes()));

  bench::JsonReport json("temporal_versions");
  json.Add("storage")
      .Extra("versions", static_cast<double>(store.VersionCount()))
      .Extra("naive_disk_mb", naive_bytes / 1048576.0)
      .Extra("delta_disk_mb",
             (base_sizes.ok() ? base_sizes->total() : 0) / 1048576.0)
      .Extra("naive_resident_mb", naive_resident / 1048576.0)
      .Extra("delta_resident_mb", store.DeltaBytes() / 1048576.0);

  // Point-in-time query latency: closure on first and last version.
  for (temporal::Version v : {temporal::Version{0},
                              temporal::Version(store.VersionCount() - 1)}) {
    auto view = *store.ViewAt(v);
    auto t0 = bench::Clock::now();
    auto closure = graph::TransitiveClosure(*view, fns[0],
                                            graph::EdgeFilter::Of({calls}));
    double ms = bench::MsSince(t0);
    std::printf("closure at version %u: %zu nodes in %.1f ms\n", v,
                closure.size(), ms);
    json.Add("closure at v" + std::to_string(v))
        .Sample(ms)
        .Results(static_cast<int64_t>(closure.size()));
  }

  // Cross-version: diff + impact (impossible with isolated copies without
  // expensive whole-graph comparison).
  auto t1 = bench::Clock::now();
  auto diff = store.ComputeDiff(0, store.VersionCount() - 1);
  double diff_ms = bench::MsSince(t1);
  auto t2 = bench::Clock::now();
  auto impact = temporal::ChangeImpact(store, schema, 0,
                                       store.VersionCount() - 1);
  double impact_ms = bench::MsSince(t2);
  if (diff.ok() && impact.ok()) {
    std::printf("\ndiff v0 -> v%zu: +%zu nodes, +%zu edges, -%zu edges"
                " (%.1f ms)\n", store.VersionCount() - 1,
                diff->added_nodes.size(), diff->added_edges.size(),
                diff->removed_edges.size(), diff_ms);
    std::printf("change impact: %zu changed functions affect %zu"
                " transitively (%.1f ms)\n",
                impact->changed_functions.size(),
                impact->impacted_functions.size(), impact_ms);
    json.Add("diff v0..last")
        .Sample(diff_ms)
        .Results(static_cast<int64_t>(diff->added_nodes.size() +
                                      diff->added_edges.size() +
                                      diff->removed_edges.size()));
    json.Add("change impact")
        .Sample(impact_ms)
        .Results(static_cast<int64_t>(impact->impacted_functions.size()));
  }
  return 0;
}
