// Parallel frontier engine vs the sequential visited-set traversal on the
// kernel-scale synthetic graph. Two workloads:
//
//   calls closure     multi-source transitive closure over `calls` edges
//                     seeded from 50 high-out-degree functions (the Fig.6
//                     comprehension query writ large)
//   whole-graph sweep undirected reachability from node 0 — touches every
//                     connected node, the worst case for frontier merging
//
// Each workload runs on: the old sequential engine over the GraphStore,
// the old sequential engine over the CsrView, push-only and pull-only
// single-lane kernels, and the direction-optimizing (hybrid) kernel at
// 1/2/4/8 lanes. Result sets must be identical everywhere; timings +
// speedups are printed and written to BENCH_parallel_traversal.json.
//
// The push-only single-lane run reproduces the pre-direction-optimizing
// kernel, so `speedup_vs_seed` (push_only_ms / hybrid_ms, same binary,
// same machine) tracks what the Beamer switch buys independent of host
// speed. Target (ISSUE 6): >= 2x on both workloads. Hybrid entries also
// record the per-level `directions` decisions and `direction_switches`.
//
// Env knobs: FRAPPE_SCALE, FRAPPE_BENCH_ITERS (5), FRAPPE_THREADS (lane
// sweep upper bound when set).

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_json.h"
#include "bench/kernel_common.h"
#include "common/thread_pool.h"
#include "graph/analytics.h"
#include "graph/csr_view.h"
#include "graph/traversal.h"

using namespace frappe;

namespace {

struct Timed {
  double best_ms = 0;
  std::vector<double> samples_ms;
  size_t result_count = 0;
};

template <typename Fn>
Timed Measure(int iters, Fn&& fn) {
  Timed t;
  for (int i = 0; i < iters; ++i) {
    auto start = bench::Clock::now();
    t.result_count = fn();
    t.samples_ms.push_back(bench::MsSince(start));
  }
  t.best_ms = *std::min_element(t.samples_ms.begin(), t.samples_ms.end());
  return t;
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Parallel frontier traversal vs sequential visited-set engine");
  double factor = bench::ScaleFromEnv();
  int iters = 5;
  if (const char* env = std::getenv("FRAPPE_BENCH_ITERS")) {
    iters = std::max(1, std::atoi(env));
  }
  unsigned cores = std::thread::hardware_concurrency();
  std::printf("scale %g | %d iterations (best-of reported) | %u hardware"
              " threads\n\n", factor, iters, cores);

  auto graph = bench::GenerateKernel(factor);
  const graph::GraphStore& store = graph->store();
  graph::TypeId calls = graph->type_id(model::EdgeKind::kCalls);
  graph::CsrView csr = graph::CsrView::Build(store);

  // 50 high-out-degree function seeds, as in the CSR ablation.
  std::vector<graph::NodeId> seeds;
  store.ForEachNode([&](graph::NodeId id) {
    if (seeds.size() >= 50 ||
        graph->KindOf(id) != model::NodeKind::kFunction) {
      return;
    }
    size_t out_calls = 0;
    store.ForEachEdge(id, graph::Direction::kOut,
                      [&](graph::EdgeId e, graph::NodeId) {
                        if (store.GetEdge(e).type == calls) ++out_calls;
                        return true;
                      });
    if (out_calls >= 5) seeds.push_back(id);
  });

  bench::JsonReport json("parallel_traversal");
  const std::vector<size_t> lane_counts = {1, 2, 4, 8};

  struct Workload {
    const char* name;
    graph::EdgeFilter filter;
    std::vector<graph::NodeId> seeds;
    bool closure;  // closure (>=1 edge) vs reachable (>=0 edges)
  };
  std::vector<Workload> workloads = {
      {"calls closure", graph::EdgeFilter::Of({calls}), seeds, true},
      {"whole-graph sweep",
       graph::EdgeFilter::Any(graph::Direction::kBoth),
       {0},
       false},
  };

  bool all_identical = true;
  // Worst threads=1 / sequential-CSR time ratio across workloads: > 1.10
  // would mean the frontier engine regressed the single-threaded case.
  double t1_ratio_worst = 0;

  for (const Workload& w : workloads) {
    std::printf("%s (%zu seeds)\n", w.name, w.seeds.size());
    std::printf("  %-34s %10s %10s %9s\n", "engine", "best ms", "nodes",
                "speedup");

    // Old sequential engine. For the reachable workload the sequential
    // equivalent is closure + live seeds (a node reaches itself over 0
    // edges), matching analytics::Reachable's contract.
    auto sequential = [&](const graph::GraphView& view) {
      std::vector<graph::NodeId> out =
          graph::TransitiveClosure(view, w.seeds, w.filter);
      if (!w.closure) {
        for (graph::NodeId seed : w.seeds) {
          if (view.NodeExists(seed)) out.push_back(seed);
        }
        std::sort(out.begin(), out.end());
        out.erase(std::unique(out.begin(), out.end()), out.end());
      }
      return out;
    };

    std::vector<graph::NodeId> expected = sequential(store);
    Timed store_t = Measure(iters, [&] { return sequential(store).size(); });
    Timed csr_seq_t = Measure(iters, [&] { return sequential(csr).size(); });
    std::printf("  %-34s %10.1f %10zu %9s\n", "sequential (GraphStore)",
                store_t.best_ms, store_t.result_count, "");
    std::printf("  %-34s %10.1f %10zu %9s\n", "sequential (CsrView)",
                csr_seq_t.best_ms, csr_seq_t.result_count, "");
    std::string prefix = std::string(w.name) + " / ";
    json.Add(prefix + "sequential store")
        .Samples(store_t.samples_ms)
        .Results(static_cast<int64_t>(store_t.result_count))
        .Threads(1);
    json.Add(prefix + "sequential csr")
        .Samples(csr_seq_t.samples_ms)
        .Results(static_cast<int64_t>(csr_seq_t.result_count))
        .Threads(1);

    // Runs one kernel configuration and reports / records it. Returns
    // best-of ms so callers can form ratios.
    graph::analytics::Metrics metrics;
    auto run_kernel = [&](const char* label, const std::string& json_label,
                          size_t lanes,
                          graph::analytics::DirectionMode mode,
                          double baseline_ms, const char* baseline_key) {
      std::vector<graph::NodeId> last;
      graph::analytics::Options options;
      options.threads = lanes;
      options.mode = mode;
      Timed t = Measure(iters, [&] {
        auto result = w.closure
                          ? graph::analytics::ParallelClosure(
                                csr, w.seeds, w.filter, options, &metrics)
                          : graph::analytics::ParallelReachable(
                                csr, w.seeds, w.filter, options, &metrics);
        last = result.ok() ? std::move(*result)
                           : std::vector<graph::NodeId>{};
        return last.size();
      });
      bool identical = last == expected;
      all_identical = all_identical && identical;
      // The push-only lane *is* the seed kernel: its ratio is 1 by
      // definition.
      double speedup =
          baseline_ms > 0 ? baseline_ms / std::max(t.best_ms, 0.001) : 1.0;
      if (baseline_ms > 0) {
        std::printf("  %-34s %10.1f %10zu %8.2fx%s\n", label, t.best_ms,
                    t.result_count, speedup,
                    identical ? "" : "   RESULT MISMATCH!");
      } else {
        std::printf("  %-34s %10.1f %10zu %9s%s\n", label, t.best_ms,
                    t.result_count, "baseline",
                    identical ? "" : "   RESULT MISMATCH!");
      }
      std::string directions;
      for (size_t i = 0; i < metrics.level_pull.size(); ++i) {
        if (i > 0) directions += ",";
        directions += metrics.level_pull[i] != 0 ? "pull" : "push";
        directions += metrics.level_bitmap[i] != 0 ? ":bitmap" : ":array";
      }
      json.Add(json_label)
          .Samples(t.samples_ms)
          .Results(static_cast<int64_t>(t.result_count))
          .Threads(static_cast<int>(lanes))
          .Extra(baseline_key, speedup)
          .Extra("direction_switches",
                 static_cast<double>(metrics.direction_switches))
          .ExtraStr("directions", directions)
          .Note(identical ? "" : "RESULT MISMATCH");
      return t.best_ms;
    };

    // Single-lane direction ablation. push-only == the PR5 seed kernel,
    // the baseline `speedup_vs_seed` is measured against.
    double push_only_ms =
        run_kernel("push-only, 1 lane", prefix + "push-only", 1,
                   graph::analytics::DirectionMode::kPushOnly, 0,
                   "speedup_vs_seed");
    t1_ratio_worst = std::max(
        t1_ratio_worst, push_only_ms / std::max(csr_seq_t.best_ms, 0.001));
    run_kernel("pull-only, 1 lane", prefix + "pull-only", 1,
               graph::analytics::DirectionMode::kPullOnly, push_only_ms,
               "speedup_vs_seed");

    // Hybrid (direction-optimizing) lane sweep — the production path.
    for (size_t lanes : lane_counts) {
      char label[48];
      std::snprintf(label, sizeof(label), "hybrid frontier, %zu lane%s",
                    lanes, lanes == 1 ? "" : "s");
      run_kernel(label, prefix + "parallel", lanes,
                 graph::analytics::DirectionMode::kAuto, push_only_ms,
                 "speedup_vs_seed");
    }
    std::printf("\n");
  }

  json.Add("meta")
      .Extra("cores", static_cast<double>(cores))
      .Extra("scale", factor)
      .Extra("all_results_identical", all_identical ? 1 : 0);

  std::printf("result agreement across engines, direction modes and lane"
              " counts: %s\n", all_identical ? "identical" : "MISMATCH!");
  std::printf("push-only 1 lane vs old sequential CSR engine: %.2fx time"
              " ratio (%s; target: <= 1.10x)\n", t1_ratio_worst,
              t1_ratio_worst <= 1.10 ? "no single-thread regression"
                                     : "SINGLE-THREAD REGRESSION");
  std::printf("(speedup column: vs the push-only 1-lane seed kernel;"
              " ISSUE 6 target >= 2x single-thread; %u hardware"
              " threads)\n", cores);
  return all_identical ? 0 : 1;
}
