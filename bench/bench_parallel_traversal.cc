// Parallel frontier engine vs the sequential visited-set traversal on the
// kernel-scale synthetic graph. Two workloads:
//
//   calls closure     multi-source transitive closure over `calls` edges
//                     seeded from 50 high-out-degree functions (the Fig.6
//                     comprehension query writ large)
//   whole-graph sweep undirected reachability from node 0 — touches every
//                     connected node, the worst case for frontier merging
//
// Each workload runs on: the old sequential engine over the GraphStore,
// the old sequential engine over the CsrView, and analytics::
// ParallelClosure / ParallelReachable at 1/2/4/8 lanes. Result sets must
// be identical everywhere; timings + speedups are printed and written to
// BENCH_parallel_traversal.json.
//
// Target (ISSUE 1): >= 2.5x at 8 lanes vs 1 lane on an 8-way machine, and
// threads=1 within 10% of the old sequential CSR run. On fewer cores the
// speedup degrades toward 1x — the JSON records `cores` so readers can
// judge the number in context.
//
// Env knobs: FRAPPE_SCALE, FRAPPE_BENCH_ITERS (5), FRAPPE_THREADS (lane
// sweep upper bound when set).

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_json.h"
#include "bench/kernel_common.h"
#include "common/thread_pool.h"
#include "graph/analytics.h"
#include "graph/csr_view.h"
#include "graph/traversal.h"

using namespace frappe;

namespace {

struct Timed {
  double best_ms = 0;
  std::vector<double> samples_ms;
  size_t result_count = 0;
};

template <typename Fn>
Timed Measure(int iters, Fn&& fn) {
  Timed t;
  for (int i = 0; i < iters; ++i) {
    auto start = bench::Clock::now();
    t.result_count = fn();
    t.samples_ms.push_back(bench::MsSince(start));
  }
  t.best_ms = *std::min_element(t.samples_ms.begin(), t.samples_ms.end());
  return t;
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Parallel frontier traversal vs sequential visited-set engine");
  double factor = bench::ScaleFromEnv();
  int iters = 5;
  if (const char* env = std::getenv("FRAPPE_BENCH_ITERS")) {
    iters = std::max(1, std::atoi(env));
  }
  unsigned cores = std::thread::hardware_concurrency();
  std::printf("scale %g | %d iterations (best-of reported) | %u hardware"
              " threads\n\n", factor, iters, cores);

  auto graph = bench::GenerateKernel(factor);
  const graph::GraphStore& store = graph->store();
  graph::TypeId calls = graph->type_id(model::EdgeKind::kCalls);
  graph::CsrView csr = graph::CsrView::Build(store);

  // 50 high-out-degree function seeds, as in the CSR ablation.
  std::vector<graph::NodeId> seeds;
  store.ForEachNode([&](graph::NodeId id) {
    if (seeds.size() >= 50 ||
        graph->KindOf(id) != model::NodeKind::kFunction) {
      return;
    }
    size_t out_calls = 0;
    store.ForEachEdge(id, graph::Direction::kOut,
                      [&](graph::EdgeId e, graph::NodeId) {
                        if (store.GetEdge(e).type == calls) ++out_calls;
                        return true;
                      });
    if (out_calls >= 5) seeds.push_back(id);
  });

  bench::JsonReport json("parallel_traversal");
  const std::vector<size_t> lane_counts = {1, 2, 4, 8};

  struct Workload {
    const char* name;
    graph::EdgeFilter filter;
    std::vector<graph::NodeId> seeds;
    bool closure;  // closure (>=1 edge) vs reachable (>=0 edges)
  };
  std::vector<Workload> workloads = {
      {"calls closure", graph::EdgeFilter::Of({calls}), seeds, true},
      {"whole-graph sweep",
       graph::EdgeFilter::Any(graph::Direction::kBoth),
       {0},
       false},
  };

  bool all_identical = true;
  // Worst threads=1 / sequential-CSR time ratio across workloads: > 1.10
  // would mean the frontier engine regressed the single-threaded case.
  double t1_ratio_worst = 0;

  for (const Workload& w : workloads) {
    std::printf("%s (%zu seeds)\n", w.name, w.seeds.size());
    std::printf("  %-34s %10s %10s %9s\n", "engine", "best ms", "nodes",
                "speedup");

    // Old sequential engine. For the reachable workload the sequential
    // equivalent is closure + live seeds (a node reaches itself over 0
    // edges), matching analytics::Reachable's contract.
    auto sequential = [&](const graph::GraphView& view) {
      std::vector<graph::NodeId> out =
          graph::TransitiveClosure(view, w.seeds, w.filter);
      if (!w.closure) {
        for (graph::NodeId seed : w.seeds) {
          if (view.NodeExists(seed)) out.push_back(seed);
        }
        std::sort(out.begin(), out.end());
        out.erase(std::unique(out.begin(), out.end()), out.end());
      }
      return out;
    };

    std::vector<graph::NodeId> expected = sequential(store);
    Timed store_t = Measure(iters, [&] { return sequential(store).size(); });
    Timed csr_seq_t = Measure(iters, [&] { return sequential(csr).size(); });
    std::printf("  %-34s %10.1f %10zu %9s\n", "sequential (GraphStore)",
                store_t.best_ms, store_t.result_count, "");
    std::printf("  %-34s %10.1f %10zu %9s\n", "sequential (CsrView)",
                csr_seq_t.best_ms, csr_seq_t.result_count, "");
    std::string prefix = std::string(w.name) + " / ";
    json.Add(prefix + "sequential store")
        .Samples(store_t.samples_ms)
        .Results(static_cast<int64_t>(store_t.result_count))
        .Threads(1);
    json.Add(prefix + "sequential csr")
        .Samples(csr_seq_t.samples_ms)
        .Results(static_cast<int64_t>(csr_seq_t.result_count))
        .Threads(1);

    double one_lane_ms = 0;
    for (size_t lanes : lane_counts) {
      std::vector<graph::NodeId> last;
      graph::analytics::Options options;
      options.threads = lanes;
      Timed t = Measure(iters, [&] {
        auto result = w.closure
                          ? graph::analytics::ParallelClosure(
                                csr, w.seeds, w.filter, options)
                          : graph::analytics::ParallelReachable(
                                csr, w.seeds, w.filter, options);
        last = result.ok() ? std::move(*result)
                           : std::vector<graph::NodeId>{};
        return last.size();
      });
      if (lanes == 1) {
        one_lane_ms = t.best_ms;
        t1_ratio_worst = std::max(
            t1_ratio_worst, t.best_ms / std::max(csr_seq_t.best_ms, 0.001));
      }
      bool identical = last == expected;
      all_identical = all_identical && identical;
      char label[48];
      std::snprintf(label, sizeof(label), "parallel frontier, %zu lane%s",
                    lanes, lanes == 1 ? "" : "s");
      std::printf("  %-34s %10.1f %10zu %8.2fx%s\n", label, t.best_ms,
                  t.result_count,
                  one_lane_ms / std::max(t.best_ms, 0.001),
                  identical ? "" : "   RESULT MISMATCH!");
      json.Add(prefix + "parallel")
          .Samples(t.samples_ms)
          .Results(static_cast<int64_t>(t.result_count))
          .Threads(static_cast<int>(lanes))
          .Extra("speedup_vs_1lane",
                 one_lane_ms / std::max(t.best_ms, 0.001))
          .Note(identical ? "" : "RESULT MISMATCH");
    }
    std::printf("\n");
  }

  json.Add("meta")
      .Extra("cores", static_cast<double>(cores))
      .Extra("scale", factor)
      .Extra("all_results_identical", all_identical ? 1 : 0);

  std::printf("result agreement across engines and lane counts: %s\n",
              all_identical ? "identical" : "MISMATCH!");
  std::printf("threads=1 vs old sequential CSR engine: %.2fx time ratio"
              " (%s; target: <= 1.10x)\n", t1_ratio_worst,
              t1_ratio_worst <= 1.10 ? "no single-thread regression"
                                     : "SINGLE-THREAD REGRESSION");
  std::printf("(speedup target of >= 2.5x at 8 lanes assumes >= 8 hardware"
              " threads; this host has %u)\n", cores);
  return all_identical ? 0 : 1;
}
