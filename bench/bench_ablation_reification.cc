// Ablation B (paper Section 6.2): references as edges with USE_FILE_ID
// properties vs reified call-site nodes. The paper notes that associating
// a reference with the file it occurs in "makes matching all the
// references within a file much clumsier than it could be" in the edge
// encoding, and discuses reifying references as nodes
// (`foo -[:calls]-> callsite -[:calls]-> bar`, `file -[:contains]->
// callsite`) as the workaround.
//
// This bench builds both encodings of the same reference set and measures
// the query "all references occurring in file F":
//   edge encoding:    scan all edges, filter USE_FILE_ID = F
//   reified encoding: expand F's contains adjacency
// plus the storage cost of each encoding.

#include <cinttypes>
#include <cstdio>
#include <vector>

#include "bench/bench_json.h"
#include "bench/kernel_common.h"

using namespace frappe;

int main() {
  bench::PrintHeader(
      "Ablation B: reference edges vs reified call-site nodes (Section 6.2)");
  double factor = std::min(bench::ScaleFromEnv(), 0.25);
  std::printf("scale factor: %g (capped at 0.25; the contrast is scale-"
              "independent)\n\n", factor);

  auto graph = bench::GenerateKernel(factor);
  const graph::GraphStore& store = graph->store();
  const model::Schema& schema = graph->schema();
  graph::TypeId calls = schema.edge_type(model::EdgeKind::kCalls);
  graph::KeyId use_file = schema.key(model::PropKey::kUseFileId);

  // Build the reified encoding alongside: callsite nodes typed `local`
  // stand-ins are wrong — use a dedicated label.
  graph::GraphStore reified;
  graph::TypeId fn_type = reified.InternNodeType("function");
  graph::TypeId site_type = reified.InternNodeType("callsite");
  graph::TypeId file_type = reified.InternNodeType("file");
  graph::TypeId calls_r = reified.InternEdgeType("calls");
  graph::TypeId contains_r = reified.InternEdgeType("contains");

  std::vector<graph::NodeId> node_map(store.NodeIdUpperBound(),
                                      graph::kInvalidNode);
  store.ForEachNode([&](graph::NodeId id) {
    graph::TypeId type =
        store.NodeType(id) == schema.node_type(model::NodeKind::kFile)
            ? file_type
            : fn_type;
    node_map[id] = reified.AddNode(type);
  });
  size_t reference_count = 0;
  store.ForEachEdgeGlobal([&](graph::EdgeId e) {
    graph::Edge edge = store.GetEdge(e);
    if (edge.type != calls) return;
    graph::Value file = store.GetEdgeProperty(e, use_file);
    if (file.is_null()) return;
    ++reference_count;
    graph::NodeId site = reified.AddNode(site_type);
    reified.AddEdge(node_map[edge.src], site, calls_r);
    reified.AddEdge(site, node_map[edge.dst], calls_r);
    graph::NodeId file_node = node_map[static_cast<graph::NodeId>(
        file.AsInt())];
    if (file_node != graph::kInvalidNode) {
      reified.AddEdge(file_node, site, contains_r);
    }
  });

  // Query target: the file with the most call references.
  std::vector<uint32_t> per_file(store.NodeIdUpperBound(), 0);
  store.ForEachEdgeGlobal([&](graph::EdgeId e) {
    if (store.GetEdge(e).type != calls) return;
    graph::Value file = store.GetEdgeProperty(e, use_file);
    if (!file.is_null()) ++per_file[static_cast<size_t>(file.AsInt())];
  });
  graph::NodeId target_file = 0;
  for (graph::NodeId id = 0; id < per_file.size(); ++id) {
    if (per_file[id] > per_file[target_file]) target_file = id;
  }

  const int kIters = 20;
  // Edge encoding: full edge scan with property filter.
  size_t found_edges = 0;
  auto t0 = bench::Clock::now();
  for (int i = 0; i < kIters; ++i) {
    found_edges = 0;
    store.ForEachEdgeGlobal([&](graph::EdgeId e) {
      if (store.GetEdge(e).type != calls) return;
      graph::Value file = store.GetEdgeProperty(e, use_file);
      if (!file.is_null() &&
          file.AsInt() == static_cast<int64_t>(target_file)) {
        ++found_edges;
      }
    });
  }
  double edge_ms = bench::MsSince(t0) / kIters;

  // Reified encoding: adjacency expansion from the file node.
  size_t found_sites = 0;
  auto t1 = bench::Clock::now();
  for (int i = 0; i < kIters; ++i) {
    found_sites = 0;
    reified.ForEachEdge(node_map[target_file], graph::Direction::kOut,
                        [&](graph::EdgeId e, graph::NodeId) {
                          if (reified.GetEdge(e).type == contains_r) {
                            ++found_sites;
                          }
                          return true;
                        });
  }
  double reified_ms = bench::MsSince(t1) / kIters;

  std::printf("references modeled: %zu call sites\n\n", reference_count);
  std::printf("%-44s %10s %10s\n", "query: references within the busiest file",
              "time", "results");
  std::printf("%-44s %7.2f ms %10zu\n",
              "edge encoding (scan + USE_FILE_ID filter)", edge_ms,
              found_edges);
  std::printf("%-44s %7.3f ms %10zu\n",
              "reified encoding (file adjacency)", reified_ms, found_sites);
  std::printf("speedup: %.0fx\n\n", edge_ms / std::max(reified_ms, 0.0001));

  bench::JsonReport json("ablation_reification");
  json.Add("edge encoding scan")
      .Sample(edge_ms)
      .Results(static_cast<int64_t>(found_edges));
  json.Add("reified adjacency")
      .Sample(reified_ms)
      .Results(static_cast<int64_t>(found_sites))
      .Extra("speedup_vs_scan", edge_ms / std::max(reified_ms, 0.0001));

  auto base_mem = store.EstimateMemory();
  auto reified_mem = reified.EstimateMemory();
  std::printf("storage: edge encoding %.1f MB vs reified skeleton %.1f MB\n",
              base_mem.total() / 1048576.0, reified_mem.total() / 1048576.0);
  std::printf("\nTakeaway (as in the paper): reification makes per-file"
              " reference matching an\nadjacency walk instead of a property"
              " scan, at the cost of one extra node and\nedge per reference"
              " — and of losing `-[:calls*]->` expressibility, since Cypher"
              "\ncannot repeat node-edge-node patterns (Section 6.2).\n");
  return 0;
}
