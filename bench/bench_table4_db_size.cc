// Reproduces paper Table 4 ("Database size (MB)"): the storage breakdown
// of the persisted graph — Properties / Nodes / Relationships / Indexes /
// Total. The paper's Neo4j store was ~800 MB for the UEK graph; our
// single-file snapshot format is denser, so absolute numbers are smaller,
// but the *shape* (properties dominate, then relationships, then indexes,
// nodes smallest) should reproduce.

#include <cinttypes>
#include <cstdio>

#include "bench/bench_json.h"
#include "bench/kernel_common.h"

int main() {
  using namespace frappe;
  double factor = bench::ScaleFromEnv();
  bench::PrintHeader("Table 4: Database size (paper vs measured)");
  std::printf("scale factor: %g\n\n", factor);

  auto graph = bench::GenerateKernel(factor);
  graph::NameIndex index = graph->BuildNameIndex();
  std::string path = bench::CacheDir() + "/frappe_table4_probe.db";
  auto start = bench::Clock::now();
  auto sizes = graph::SaveSnapshot(graph->view(), path, &index);
  double save_ms = bench::MsSince(start);
  if (!sizes.ok()) {
    std::fprintf(stderr, "FATAL: %s\n", sizes.status().ToString().c_str());
    return 1;
  }

  auto mb = [](uint64_t bytes) {
    return static_cast<double>(bytes) / (1024.0 * 1024.0);
  };
  // Paper Table 4 (Neo4j store, MB). The per-section numbers are garbled
  // in the available text; the prose anchors the Total at ~800 MB, and the
  // section order implies properties dominate. We report our sections and
  // compare only what the paper states reliably.
  std::printf("%-15s %12s %12s\n", "section", "paper (MB)", "measured (MB)");
  std::printf("%-15s %12s %12.1f\n", "Properties", "(garbled)",
              mb(sizes->properties()));
  std::printf("%-15s %12s %12.1f\n", "Nodes", "(garbled)", mb(sizes->nodes));
  std::printf("%-15s %12s %12.1f\n", "Relationships", "(garbled)",
              mb(sizes->relationships));
  std::printf("%-15s %12s %12.1f\n", "Indexes", "(garbled)",
              mb(sizes->indexes));
  std::printf("%-15s %12s %12.1f\n", "Total", "~800", mb(sizes->total()));
  std::printf("\n(schema section: %.2f MB, header: %" PRIu64 " B; "
              "serialization took %.0f ms)\n",
              mb(sizes->schema), sizes->header, save_ms);
  std::printf("\nShape check: properties > relationships > indexes > nodes"
              " : %s\n",
              (sizes->properties() > sizes->relationships &&
               sizes->relationships > sizes->indexes &&
               sizes->indexes > sizes->nodes)
                  ? "HOLDS (as in the paper)"
                  : "differs — see EXPERIMENTS.md");
  bench::JsonReport json("table4_db_size");
  json.Add("save_snapshot")
      .Sample(save_ms)
      .Extra("scale", factor)
      .Extra("properties_mb", mb(sizes->properties()))
      .Extra("nodes_mb", mb(sizes->nodes))
      .Extra("relationships_mb", mb(sizes->relationships))
      .Extra("indexes_mb", mb(sizes->indexes))
      .Extra("total_mb", mb(sizes->total()));
  std::remove(path.c_str());
  return 0;
}
