// Reproduces paper Table 5 ("Query performance"): cold/warm min/avg/max
// runtimes and result counts for the four use-case queries (Figures 3-6)
// against the kernel-scale graph, plus the Section 6.1 footnote (the
// transitive closure computed via the embedded traversal API in ~20 ms
// after the declarative query was aborted).
//
// Cold here means: open the database from its on-disk snapshot (deserialize
// + attach indexes) and run the query once — the first-query experience.
// Warm repeats the query on the already-open database. The paper's
// absolute numbers (8x Xeon, 128 GB, Neo4j page cache) will differ; the
// orders of magnitude and the Figure 6 blow-up are the reproduction target.
//
// Env knobs: FRAPPE_SCALE, FRAPPE_COLD_ITERS (2), FRAPPE_WARM_ITERS (10),
// FRAPPE_FIG6_TIMEOUT_MS (15000), FRAPPE_FIG6_MAX_STEPS (5000000).

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_json.h"
#include "bench/kernel_common.h"
#include "graph/traversal.h"
#include "query/parser.h"

namespace {

using namespace frappe;
using bench::OpenedKernel;
using graph::NodeId;
using model::EdgeKind;
using model::NodeKind;
using model::PropKey;

int64_t EnvInt(const char* name, int64_t fallback) {
  const char* env = std::getenv(name);
  return env != nullptr ? std::atoll(env) : fallback;
}

struct TimingRow {
  std::string label;
  std::vector<double> cold_ms, warm_ms;
  size_t result_count = 0;
  std::string note;
};

void PrintRow(const TimingRow& row) {
  auto stats = [](const std::vector<double>& v) {
    struct S {
      double min = 0, avg = 0, max = 0;
    } s;
    if (v.empty()) return s;
    s.min = *std::min_element(v.begin(), v.end());
    s.max = *std::max_element(v.begin(), v.end());
    for (double x : v) s.avg += x;
    s.avg /= static_cast<double>(v.size());
    return s;
  };
  auto c = stats(row.cold_ms);
  auto w = stats(row.warm_ms);
  std::printf("%-24s cold %8.1f/%8.1f/%8.1f ms   warm %8.2f/%8.2f/%8.2f ms"
              "   results %zu%s%s\n",
              row.label.c_str(), c.min, c.avg, c.max, w.min, w.avg, w.max,
              row.result_count, row.note.empty() ? "" : "   ",
              row.note.c_str());
}

// Picks concrete symbol names for the query templates by scanning the
// opened kernel.
struct QueryInstances {
  std::string fig3;  // code search constrained by module
  std::string fig4;  // go-to-definition
  std::string fig5;  // debugging
  std::string fig6;  // comprehension (transitive closure)
  std::string table6;
  NodeId fig6_seed = graph::kInvalidNode;
  size_t fig6_closure_size = 0;
};

std::string NameOf(const OpenedKernel& k, NodeId node) {
  return std::string(k.store->GetNodeString(
      node, k.schema.key(PropKey::kShortName)));
}

QueryInstances ChooseInstances(const OpenedKernel& k) {
  QueryInstances q;
  const graph::GraphStore& store = *k.store;
  const model::Schema& schema = k.schema;
  graph::TypeId calls = schema.edge_type(EdgeKind::kCalls);
  graph::TypeId writes_member = schema.edge_type(EdgeKind::kWritesMember);
  graph::TypeId contains = schema.edge_type(EdgeKind::kContains);
  graph::TypeId file_contains = schema.edge_type(EdgeKind::kFileContains);
  graph::TypeId compiled_from = schema.edge_type(EdgeKind::kCompiledFrom);
  graph::KeyId line_key = schema.key(PropKey::kUseStartLine);

  // Figure 3: a module; search for fields by name within it. Find a module
  // whose files contain at least one field, take that field's name.
  for (NodeId m : k.label_index.Nodes(schema.node_type(NodeKind::kModule))) {
    bool has_sources = false;
    store.ForEachEdge(m, graph::Direction::kOut,
                      [&](graph::EdgeId e, NodeId) {
                        if (store.GetEdge(e).type == compiled_from) {
                          has_sources = true;
                          return false;
                        }
                        return true;
                      });
    if (!has_sources) continue;
    // Find a field in one of its files.
    std::string field_name;
    store.ForEachEdge(m, graph::Direction::kOut,
                      [&](graph::EdgeId e, NodeId file) {
                        if (store.GetEdge(e).type != compiled_from) {
                          return true;
                        }
                        store.ForEachEdge(
                            file, graph::Direction::kOut,
                            [&](graph::EdgeId e2, NodeId entity) {
                              if (store.GetEdge(e2).type == file_contains &&
                                  store.NodeType(entity) ==
                                      schema.node_type(NodeKind::kField)) {
                                field_name = NameOf(k, entity);
                                return false;
                              }
                              return true;
                            });
                        return field_name.empty();
                      });
    if (field_name.empty()) continue;
    q.fig3 = "START m=node:node_auto_index('short_name: " + NameOf(k, m) +
             "') MATCH m -[:compiled_from|linked_from*]-> f WITH distinct f"
             " MATCH f -[:file_contains]-> (n:field{short_name: '" +
             field_name + "'}) RETURN n";
    break;
  }

  // Figure 4 + 5 + 6 seeds from call edges.
  for (graph::EdgeId e = 0; e < store.EdgeIdUpperBound(); ++e) {
    if (!store.EdgeExists(e) || store.GetEdge(e).type != calls) continue;
    graph::Edge edge = store.GetEdge(e);
    if (q.fig4.empty()) {
      int64_t file = store.GetEdgeProperty(
          e, schema.key(PropKey::kNameFileId)).AsInt();
      int64_t line = store.GetEdgeProperty(
          e, schema.key(PropKey::kNameStartLine)).AsInt();
      int64_t col = store.GetEdgeProperty(
          e, schema.key(PropKey::kNameStartCol)).AsInt();
      q.fig4 = "START n=node:node_auto_index('short_name: " +
               NameOf(k, edge.dst) + "') WHERE (n) <-[{NAME_FILE_ID: " +
               std::to_string(file) + ", NAME_START_LINE: " +
               std::to_string(line) + ", NAME_START_COLUMN: " +
               std::to_string(col) + "}]- () RETURN n";
    }
    if (q.fig5.empty()) {
      // `from` must have several outgoing calls; `to` is this callee.
      size_t out_calls = 0;
      store.ForEachEdge(edge.src, graph::Direction::kOut,
                        [&](graph::EdgeId e2, NodeId) {
                          if (store.GetEdge(e2).type == calls) ++out_calls;
                          return true;
                        });
      if (out_calls >= 3 && out_calls <= 12) {
        // A written field + its containing struct. Like the paper's
        // scenario, the field should have a handful of writers (a field
        // written from thousands of places is not something one debugs
        // this way — and each (writer, call site) pair costs a
        // reachability check).
        NodeId field = graph::kInvalidNode, record = graph::kInvalidNode;
        for (NodeId f :
             k.label_index.Nodes(schema.node_type(NodeKind::kField))) {
          int writers = 0;
          store.ForEachEdge(f, graph::Direction::kIn,
                            [&](graph::EdgeId e2, NodeId) {
                              if (store.GetEdge(e2).type == writes_member) {
                                ++writers;
                              }
                              return writers <= 6;
                            });
          if (writers < 2 || writers > 6) continue;
          store.ForEachEdge(f, graph::Direction::kIn,
                            [&](graph::EdgeId e2, NodeId owner) {
                              if (store.GetEdge(e2).type == contains) {
                                record = owner;
                                return false;
                              }
                              return true;
                            });
          if (record != graph::kInvalidNode) {
            field = f;
            break;
          }
        }
        if (field != graph::kInvalidNode) {
          int64_t line = store.GetEdgeProperty(e, line_key).AsInt();
          q.fig5 =
              "START from=node:node_auto_index('short_name: " +
              NameOf(k, edge.src) + "'), to=node:node_auto_index('"
              "short_name: " + NameOf(k, edge.dst) +
              "'), b=node:node_auto_index('short_name: " +
              NameOf(k, record) + "') MATCH writer -[write:writes_member]->"
              " ({SHORT_NAME:'" + NameOf(k, field) +
              "'}) <-[:contains]- b WITH to, from, writer, write"
              " MATCH direct <-[s:calls]- from -[r:calls{use_start_line: " +
              std::to_string(line) + "}]-> to"
              " WHERE r.use_start_line >= s.use_start_line AND"
              " direct -[:calls*]-> writer"
              " RETURN distinct writer, write.use_start_line";
        }
      }
    }
    if (!q.fig4.empty() && !q.fig5.empty()) break;
  }

  // Figure 6: a function seed for the closure.
  for (NodeId fn :
       k.label_index.Nodes(k.schema.node_type(NodeKind::kFunction))) {
    size_t out_calls = 0;
    store.ForEachEdge(fn, graph::Direction::kOut,
                      [&](graph::EdgeId e, NodeId) {
                        if (store.GetEdge(e).type == calls) ++out_calls;
                        return true;
                      });
    if (out_calls >= 2) {
      q.fig6_seed = fn;
      q.fig6 = "START n=node:node_auto_index('short_name: " +
               NameOf(k, fn) + "') MATCH n -[:calls*]-> m RETURN distinct m";
      break;
    }
  }
  if (q.fig6_seed != graph::kInvalidNode) {
    q.fig6_closure_size =
        graph::TransitiveClosure(store, q.fig6_seed,
                                 graph::EdgeFilter::Of({calls}))
            .size();
  }

  // Table 6 footer: grouped-label query.
  NodeId any_struct =
      k.label_index.Nodes(schema.node_type(NodeKind::kStruct)).front();
  q.table6 = "MATCH (n:container:symbol {short_name: '" +
             NameOf(k, any_struct) + "'}) RETURN n";
  return q;
}

}  // namespace

int main() {
  double factor = bench::ScaleFromEnv();
  int cold_iters = static_cast<int>(EnvInt("FRAPPE_COLD_ITERS", 2));
  int warm_iters = static_cast<int>(EnvInt("FRAPPE_WARM_ITERS", 10));
  int64_t fig6_timeout = EnvInt("FRAPPE_FIG6_TIMEOUT_MS", 15000);
  int64_t fig6_steps = EnvInt("FRAPPE_FIG6_MAX_STEPS", 5000000);

  bench::PrintHeader("Table 5: Query performance (paper vs measured)");
  std::printf("scale %g | %d cold + %d warm iterations | cold = snapshot"
              " open + first query\n", factor, cold_iters, warm_iters);
  std::printf("paper (8x Xeon E5, 128 GB): code search 2567-3225 ms cold /"
              " 89-387 ms warm;\n  x-ref ~2615-2780 / ~87-247; debugging"
              " ~3701-4699 / ~280-1139; comprehension aborted > 15 min\n\n");

  std::string path = bench::EnsureKernelSnapshot(factor);
  auto warm_kernel = bench::OpenKernel(path);
  QueryInstances queries = ChooseInstances(*warm_kernel);
  bench::JsonReport json("table5_query_performance");

  struct Job {
    const char* label;
    const std::string* text;
    query::ExecOptions options;
    bool expect_abort = false;
  };
  query::ExecOptions plain;
  // The Fig.6 closure runs twice: once with the CSR fast path disabled —
  // the paper's configuration, where path enumeration blows up and the
  // budget aborts it — and once with the fast path on, where the parallel
  // frontier kernel completes it.
  query::ExecOptions fig6_enumerate;
  fig6_enumerate.deadline_ms = fig6_timeout;
  fig6_enumerate.max_steps = static_cast<uint64_t>(fig6_steps);
  fig6_enumerate.use_csr_fast_path = false;
  query::ExecOptions fig6_fast = fig6_enumerate;
  fig6_fast.use_csr_fast_path = true;
  std::vector<Job> jobs = {
      {"Code search (Fig.3)", &queries.fig3, plain, false},
      {"X-referencing (Fig.4)", &queries.fig4, plain, false},
      {"Debugging (Fig.5)", &queries.fig5, plain, false},
      {"Comprehension (Fig.6)", &queries.fig6, fig6_enumerate, true},
      {"Fig.6 + CSR fast path", &queries.fig6, fig6_fast, false},
  };

  for (const Job& job : jobs) {
    if (job.text->empty()) {
      std::printf("%-24s SKIPPED (no suitable instance in graph)\n",
                  job.label);
      continue;
    }
    TimingRow row;
    row.label = job.label;
    auto parsed = query::Parse(*job.text);
    if (!parsed.ok()) {
      std::printf("%-24s PARSE ERROR: %s\n", job.label,
                  parsed.status().ToString().c_str());
      continue;
    }
    // Cold: fresh open + query.
    for (int i = 0; i < cold_iters; ++i) {
      auto kernel = bench::OpenKernel(path);
      auto start = bench::Clock::now();
      auto result = query::Execute(kernel->db, *parsed, job.options);
      double query_ms = bench::MsSince(start);
      row.cold_ms.push_back(kernel->open_ms + query_ms);
      if (!result.ok() && !job.expect_abort) {
        row.note = result.status().ToString();
      }
    }
    // Warm: repeated on the long-lived instance.
    for (int i = 0; i < warm_iters; ++i) {
      auto start = bench::Clock::now();
      auto result = query::Execute(warm_kernel->db, *parsed, job.options);
      row.warm_ms.push_back(bench::MsSince(start));
      if (result.ok()) {
        row.result_count = result->size();
      } else if (job.expect_abort) {
        row.note = "ABORTED: " + result.status().ToString() +
                   " (paper: aborted after 15 min)";
        break;  // one warm abort demonstrates the blow-up
      } else {
        row.note = result.status().ToString();
      }
    }
    PrintRow(row);
    json.Add(std::string(job.label) + " / cold")
        .Samples(row.cold_ms)
        .Results(static_cast<int64_t>(row.result_count))
        .Note(row.note);
    json.Add(std::string(job.label) + " / warm")
        .Samples(row.warm_ms)
        .Results(static_cast<int64_t>(row.result_count))
        .Note(row.note);
  }

  // Section 6.1 footnote: the same closure through the embedded traversal
  // API.
  if (queries.fig6_seed != graph::kInvalidNode) {
    graph::EdgeFilter filter = graph::EdgeFilter::Of(
        {warm_kernel->schema.edge_type(EdgeKind::kCalls)});
    std::vector<double> direct_ms;
    size_t closure_size = 0;
    for (int i = 0; i < warm_iters; ++i) {
      auto start = bench::Clock::now();
      auto closure = graph::TransitiveClosure(*warm_kernel->store,
                                              queries.fig6_seed, filter);
      direct_ms.push_back(bench::MsSince(start));
      closure_size = closure.size();
    }
    double best = *std::min_element(direct_ms.begin(), direct_ms.end());
    std::printf("\nEmbedded-API transitive closure (same seed): %.1f ms for"
                " %zu nodes\n  (paper footnote: 'Computed via Neo4j's Java"
                " API in ~20ms')\n", best, closure_size);
    json.Add("Embedded-API closure")
        .Samples(direct_ms)
        .Results(static_cast<int64_t>(closure_size));
  }

  // Table 6 demonstration: the grouped-label syntax works and is fast.
  {
    auto parsed = query::Parse(queries.table6);
    auto start = bench::Clock::now();
    auto result = query::Execute(warm_kernel->db, *parsed, plain);
    double ms = bench::MsSince(start);
    std::printf("\nTable 6 (Cypher-2.x group labels) `%s`:\n  %s in %.1f ms"
                " (%zu rows)\n", queries.table6.c_str(),
                result.ok() ? "OK" : result.status().ToString().c_str(), ms,
                result.ok() ? result->size() : 0);
    json.Add("Table 6 group labels")
        .Sample(ms)
        .Results(result.ok() ? static_cast<int64_t>(result->size()) : -1)
        .Note(result.ok() ? "" : result.status().ToString());
  }
  return 0;
}
