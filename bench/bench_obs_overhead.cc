// Micro-bench for the frappe::obs acceptance bar: the observability layer
// must cost < 5% of executor time when no sink is attached.
//
// Strategy (an uninstrumented build is not available at runtime to diff
// against, so the disabled-path cost is measured directly):
//   1. Time the disabled Span constructor/destructor in a tight loop —
//      one relaxed atomic load + branch per span.
//   2. Time a representative query (the Figure 6 closure shape, which
//      crosses every instrumented layer: session -> executor -> fast path
//      -> analytics) with tracing disabled.
//   3. Enable tracing once to count how many spans that query emits, then
//      derive: overhead_pct = spans_per_query * span_ns / query_ns * 100.
//   4. For reference, also measure the query with tracing *enabled* (ring
//      writes included) — the worst case an operator can switch on.
//   5. Workload-telemetry lane: run the Table 5-ish query mix (Figure 6
//      closure + index seek + label scan) with the structured query log
//      off, then enabled (ring push + background writer), and require the
//      enabled path to stay under the same 5% bar — Record() must never
//      block the query path.
//   6. Request-tracing lane: the same mix run bare vs under a per-request
//      TraceScope + SpanCollector (what the query server installs for
//      every admitted request), also held to the 5% bar.
//   7. Resource-accounting lane: the mix with the ResourceTracker kill
//      switch off vs each query run under an installed tracker (CPU +
//      allocation + budget accounting, what RunQuery does), same 5% bar.
//   8. Profiler-armed reference lane: the mix under a live SIGPROF
//      sampler at the default rate — informational (profiling is a
//      bounded operator action, not an always-on path).
//
// Emits BENCH_obs_overhead.json through the shared bench_json.h path (git
// SHA + timestamp stamped). Exits non-zero when the derived disabled-path
// overhead breaches 5%.
//
// Env knobs: FRAPPE_OBS_SCALE (0.1), FRAPPE_OBS_ITERS (30).

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_json.h"
#include "bench/kernel_common.h"
#include "model/code_graph.h"
#include "obs/profiler.h"
#include "obs/query_log.h"
#include "obs/query_registry.h"
#include "obs/resource.h"
#include "obs/trace.h"
#include "query/session.h"

namespace {

using namespace frappe;
using bench::Clock;
using bench::MsSince;

double EnvDouble(const char* name, double fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr) return fallback;
  double v = std::atof(env);
  return v > 0 ? v : fallback;
}

}  // namespace

int main() {
  bench::PrintHeader("obs overhead: disabled-span cost vs executor time");
  bench::JsonReport report("obs_overhead");

  // --- 1. disabled Span cost ---
  constexpr uint64_t kSpanIters = 20'000'000;
  obs::Trace::Disable();
  Clock::time_point span_start = Clock::now();
  for (uint64_t i = 0; i < kSpanIters; ++i) {
    FRAPPE_TRACE_SPAN("bench.noop");
  }
  double span_total_ms = MsSince(span_start);
  double span_ns = span_total_ms * 1e6 / static_cast<double>(kSpanIters);
  std::printf("disabled span: %.2f ns each (%" PRIu64 " iterations)\n",
              span_ns, kSpanIters);
  report.Add("span_disabled")
      .Sample(span_total_ms)
      .Extra("iterations", static_cast<double>(kSpanIters))
      .Extra("ns_per_span", span_ns);

  // --- graph + query setup ---
  double scale = EnvDouble("FRAPPE_OBS_SCALE", 0.1);
  auto graph = bench::GenerateKernel(scale);
  query::Session session(*graph);
  const graph::GraphView& view = graph->view();
  const model::Schema& schema = graph->schema();

  // Seed: a function with outgoing calls, so the Figure 6 closure shape
  // does real work across every instrumented layer.
  graph::TypeId calls = schema.edge_type(model::EdgeKind::kCalls);
  graph::KeyId short_name = schema.key(model::PropKey::kShortName);
  std::string seed_name;
  for (graph::EdgeId e = 0; e < view.EdgeIdUpperBound(); ++e) {
    if (!view.EdgeExists(e) || view.GetEdge(e).type != calls) continue;
    std::string_view name =
        view.GetNodeString(view.GetEdge(e).src, short_name);
    if (!name.empty()) {
      seed_name = std::string(name);
      break;
    }
  }
  if (seed_name.empty()) {
    std::fprintf(stderr, "FATAL: no seed function found\n");
    return 1;
  }
  std::string fig6 = "START n=node:node_auto_index('short_name: " +
                     seed_name + "') MATCH n -[:calls*]-> m RETURN distinct m";

  const int iters = static_cast<int>(EnvDouble("FRAPPE_OBS_ITERS", 30));
  auto run_query = [&]() -> size_t {
    auto result = session.Run(fig6);
    if (!result.ok()) {
      std::fprintf(stderr, "FATAL: %s\n",
                   result.status().ToString().c_str());
      std::exit(1);
    }
    return result->size();
  };
  size_t rows = run_query();  // warm caches (CSR build, allocator)

  // --- 2. query with tracing disabled (sinks off) ---
  std::vector<double> off_ms;
  for (int i = 0; i < iters; ++i) {
    Clock::time_point start = Clock::now();
    run_query();
    off_ms.push_back(MsSince(start));
  }
  double off_avg = 0;
  for (double s : off_ms) off_avg += s;
  off_avg /= static_cast<double>(off_ms.size());
  report.Add("query_sinks_off")
      .Samples(off_ms)
      .Results(static_cast<int64_t>(rows));

  // --- 3. spans per query + tracing-on latency ---
  obs::Trace::Enable();
  obs::Trace::Clear();
  run_query();
  size_t spans_per_query = obs::Trace::EventCount();
  std::vector<double> on_ms;
  for (int i = 0; i < iters; ++i) {
    Clock::time_point start = Clock::now();
    run_query();
    on_ms.push_back(MsSince(start));
  }
  obs::Trace::Disable();
  obs::Trace::Clear();
  double on_avg = 0;
  for (double s : on_ms) on_avg += s;
  on_avg /= static_cast<double>(on_ms.size());

  double derived_pct =
      100.0 * static_cast<double>(spans_per_query) * span_ns /
      (off_avg * 1e6);
  double tracing_on_pct = 100.0 * (on_avg - off_avg) / off_avg;
  bool pass = derived_pct < 5.0;

  std::printf("query (sinks off):  %.3f ms avg over %d iters, %zu rows\n",
              off_avg, iters, rows);
  std::printf("query (tracing on): %.3f ms avg (%+.2f%%), %zu spans/query\n",
              on_avg, tracing_on_pct, spans_per_query);
  std::printf("derived disabled-path overhead: %.4f%% (%zu spans x %.2f ns"
              " / %.3f ms) -> %s (< 5%% required)\n",
              derived_pct, spans_per_query, span_ns, off_avg,
              pass ? "PASS" : "FAIL");

  report.Add("query_tracing_on")
      .Samples(on_ms)
      .Extra("spans_per_query", static_cast<double>(spans_per_query))
      .Extra("tracing_on_overhead_pct", tracing_on_pct);

  // --- 4. query-log lane: the Table 5 mix with the structured log on ---
  // Three shapes spanning the executor's main paths: the Figure 6
  // transitive closure, an index seek, and a label scan with a property
  // filter.
  std::vector<std::string> mix = {
      fig6,
      "START n=node:node_auto_index('short_name: " + seed_name +
          "') RETURN n",
      "MATCH (f:function) WHERE f.short_name = '" + seed_name +
          "' RETURN f",
  };
  auto run_mix = [&]() {
    for (const std::string& q : mix) {
      auto result = session.Run(q);
      if (!result.ok()) {
        std::fprintf(stderr, "FATAL: %s\n",
                     result.status().ToString().c_str());
        std::exit(1);
      }
    }
  };
  // Interleaved A/B sampling: each iteration takes one log-off and one
  // log-on sample back to back, so scheduler drift and thermal throttling
  // hit both lanes equally (on a 1-core CI box, two-block sampling swings
  // several percent between runs). Compared by median, which sheds the
  // scheduler-preemption outliers a mean would absorb.
  const std::string qlog_path = "bench_obs_overhead_qlog.jsonl";
  std::vector<double> mix_off_ms, mix_on_ms;
  run_mix();  // warm
  for (int i = 0; i < iters; ++i) {
    Clock::time_point start = Clock::now();
    run_mix();
    mix_off_ms.push_back(MsSince(start));

    obs::QueryLog::Options qlog_options;
    qlog_options.path = qlog_path;
    if (Status enabled = obs::QueryLog::Global().Enable(qlog_options);
        !enabled.ok()) {
      std::fprintf(stderr, "FATAL: query log: %s\n",
                   enabled.ToString().c_str());
      return 1;
    }
    run_mix();  // warm the log path
    start = Clock::now();
    run_mix();
    mix_on_ms.push_back(MsSince(start));
    obs::QueryLog::Global().Disable();
  }
  uint64_t qlog_written = obs::QueryLog::Global().written();
  uint64_t qlog_dropped = obs::QueryLog::Global().dropped();
  std::remove(qlog_path.c_str());
  std::remove((qlog_path + ".1").c_str());

  auto median = [](std::vector<double> v) {
    std::sort(v.begin(), v.end());
    size_t mid = v.size() / 2;
    return v.size() % 2 != 0 ? v[mid] : (v[mid - 1] + v[mid]) / 2.0;
  };
  double mix_off_med = median(mix_off_ms);
  double mix_on_med = median(mix_on_ms);
  double qlog_pct = 100.0 * (mix_on_med - mix_off_med) / mix_off_med;
  bool qlog_pass = qlog_pct < 5.0;

  std::printf("query mix (log off): %.3f ms median over %d iters\n",
              mix_off_med, iters);
  std::printf("query mix (log on):  %.3f ms median (%+.2f%%), %" PRIu64
              " records written, %" PRIu64 " dropped -> %s (< 5%%"
              " required)\n",
              mix_on_med, qlog_pct, qlog_written, qlog_dropped,
              qlog_pass ? "PASS" : "FAIL");

  report.Add("mix_qlog_off").Samples(mix_off_ms);
  report.Add("mix_qlog_on")
      .Samples(mix_on_ms)
      .Extra("qlog_overhead_pct", qlog_pct)
      .Extra("qlog_written", static_cast<double>(qlog_written))
      .Extra("qlog_dropped", static_cast<double>(qlog_dropped));

  // --- 5. registry + cancel-token lane: the live-diagnostics control
  // plane on the same Table 5 mix. Enabled adds per-query registration
  // (mutex map insert/erase + entry alloc) and the per-1024-step progress
  // publication + cancel poll in the executor; disabled runs the same
  // queries with the registry's kill switch off. Same interleaved-median
  // protocol as the qlog lane.
  obs::QueryRegistry& registry = obs::QueryRegistry::Global();
  std::vector<double> reg_off_ms, reg_on_ms;
  for (int i = 0; i < iters; ++i) {
    registry.set_enabled(false);
    run_mix();  // warm this mode
    Clock::time_point start = Clock::now();
    run_mix();
    reg_off_ms.push_back(MsSince(start));

    registry.set_enabled(true);
    run_mix();
    start = Clock::now();
    run_mix();
    reg_on_ms.push_back(MsSince(start));
  }
  registry.set_enabled(true);  // leave the default state behind
  double reg_off_med = median(reg_off_ms);
  double reg_on_med = median(reg_on_ms);
  double registry_pct = 100.0 * (reg_on_med - reg_off_med) / reg_off_med;
  bool registry_pass = registry_pct < 5.0;

  std::printf("query mix (registry off): %.3f ms median over %d iters\n",
              reg_off_med, iters);
  std::printf("query mix (registry on):  %.3f ms median (%+.2f%%) -> %s"
              " (< 5%% required)\n",
              reg_on_med, registry_pct, registry_pass ? "PASS" : "FAIL");

  report.Add("mix_registry_off").Samples(reg_off_ms);
  report.Add("mix_registry_on")
      .Samples(reg_on_ms)
      .Extra("registry_overhead_pct", registry_pct);

  // --- 6. request-tracing lane: what the query server adds per request —
  // a TraceScope with a fresh per-request SpanCollector, so every session/
  // executor/kernel span is allocated an id, parented, and appended to the
  // sink. Compared against the same mix with no scope (spans disabled).
  // Same interleaved-median protocol as the other lanes.
  auto run_mix_traced = [&]() {
    for (const std::string& q : mix) {
      obs::TraceContext ctx = obs::GenerateTraceContext();
      auto sink = std::make_shared<obs::SpanCollector>();
      obs::TraceScope scope(ctx, sink.get(), /*queue_wait_us=*/0);
      auto result = session.Run(q);
      if (!result.ok()) {
        std::fprintf(stderr, "FATAL: %s\n",
                     result.status().ToString().c_str());
        std::exit(1);
      }
    }
  };
  std::vector<double> trace_off_ms, trace_on_ms;
  run_mix_traced();  // warm
  for (int i = 0; i < iters; ++i) {
    Clock::time_point start = Clock::now();
    run_mix();
    trace_off_ms.push_back(MsSince(start));

    start = Clock::now();
    run_mix_traced();
    trace_on_ms.push_back(MsSince(start));
  }
  double trace_off_med = median(trace_off_ms);
  double trace_on_med = median(trace_on_ms);
  double tracing_pct = 100.0 * (trace_on_med - trace_off_med) / trace_off_med;
  bool tracing_pass = tracing_pct < 5.0;

  std::printf("query mix (no trace scope):  %.3f ms median over %d iters\n",
              trace_off_med, iters);
  std::printf("query mix (request traced):  %.3f ms median (%+.2f%%) -> %s"
              " (< 5%% required)\n",
              trace_on_med, tracing_pct, tracing_pass ? "PASS" : "FAIL");

  report.Add("mix_trace_off").Samples(trace_off_ms);
  report.Add("mix_trace_on")
      .Samples(trace_on_ms)
      .Extra("request_tracing_overhead_pct", tracing_pct);

  // --- 7. resource-accounting lane: the per-query ResourceTracker — a
  // thread-local install, the operator new/delete byte charges, the
  // CLOCK_THREAD_CPUTIME_ID reads at scope edges, and the per-flush budget
  // polls in the kernels. Disabled flips the global kill switch (the
  // allocation hook then costs one thread-local load + null check, the
  // shipped default when no query is in scope); enabled runs each query
  // under a tracker the way RunQuery installs one. Same interleaved-median
  // protocol, same 5% bar.
  auto run_mix_tracked = [&]() {
    for (const std::string& q : mix) {
      obs::ResourceTracker tracker;
      obs::ResourceScope scope(&tracker);
      auto result = session.Run(q);
      if (!result.ok()) {
        std::fprintf(stderr, "FATAL: %s\n",
                     result.status().ToString().c_str());
        std::exit(1);
      }
    }
  };
  std::vector<double> acct_off_ms, acct_on_ms;
  run_mix_tracked();  // warm
  for (int i = 0; i < iters; ++i) {
    obs::ResourceTracker::SetEnabled(false);
    run_mix();  // warm this mode
    Clock::time_point start = Clock::now();
    run_mix();
    acct_off_ms.push_back(MsSince(start));

    obs::ResourceTracker::SetEnabled(true);
    run_mix_tracked();
    start = Clock::now();
    run_mix_tracked();
    acct_on_ms.push_back(MsSince(start));
  }
  obs::ResourceTracker::SetEnabled(true);  // leave the default behind
  double acct_off_med = median(acct_off_ms);
  double acct_on_med = median(acct_on_ms);
  double acct_pct = 100.0 * (acct_on_med - acct_off_med) / acct_off_med;
  bool acct_pass = acct_pct < 5.0;

  std::printf("query mix (accounting off): %.3f ms median over %d iters\n",
              acct_off_med, iters);
  std::printf("query mix (accounting on):  %.3f ms median (%+.2f%%) -> %s"
              " (< 5%% required)\n",
              acct_on_med, acct_pct, acct_pass ? "PASS" : "FAIL");

  report.Add("mix_accounting_off").Samples(acct_off_ms);
  report.Add("mix_accounting_on")
      .Samples(acct_on_ms)
      .Extra("accounting_overhead_pct", acct_pct);

  // --- 8. profiler-armed reference lane: the mix under a live SIGPROF
  // sampler at the default rate — what /debug/profilez costs while its
  // window is open. Informational, not gated: an armed profiler is an
  // explicit operator action with a bounded window, not an always-on
  // path (the always-on cost is the accounting lane above).
  double profiler_pct = 0.0;
  uint64_t profiler_samples = 0;
  if (Status armed = obs::Profiler::Global().Start(); armed.ok()) {
    std::vector<double> prof_ms;
    run_mix();  // warm with the timer armed
    for (int i = 0; i < iters; ++i) {
      Clock::time_point start = Clock::now();
      run_mix();
      prof_ms.push_back(MsSince(start));
    }
    profiler_samples = obs::Profiler::Global().sample_count();
    std::string folded = obs::Profiler::Global().Stop();
    (void)folded;
    double prof_med = median(prof_ms);
    profiler_pct = 100.0 * (prof_med - mix_off_med) / mix_off_med;
    std::printf("query mix (profiler armed): %.3f ms median (%+.2f%% vs"
                " qlog-off baseline), %" PRIu64 " samples [informational]\n",
                prof_med, profiler_pct, profiler_samples);
    report.Add("mix_profiler_armed")
        .Samples(prof_ms)
        .Extra("profiler_overhead_pct", profiler_pct)
        .Extra("profiler_samples", static_cast<double>(profiler_samples));
  } else {
    std::printf("profiler lane skipped: %s\n", armed.ToString().c_str());
  }

  bool all_pass =
      pass && qlog_pass && registry_pass && tracing_pass && acct_pass;
  report.Add("overhead")
      .Extra("derived_disabled_overhead_pct", derived_pct)
      .Extra("qlog_overhead_pct", qlog_pct)
      .Extra("registry_overhead_pct", registry_pct)
      .Extra("request_tracing_overhead_pct", tracing_pct)
      .Extra("accounting_overhead_pct", acct_pct)
      .Extra("pass", all_pass ? 1 : 0);
  report.Write();
  return all_pass ? 0 : 1;
}
