// Micro-bench for the frappe::obs acceptance bar: the observability layer
// must cost < 5% of executor time when no sink is attached.
//
// Strategy (an uninstrumented build is not available at runtime to diff
// against, so the disabled-path cost is measured directly):
//   1. Time the disabled Span constructor/destructor in a tight loop —
//      one relaxed atomic load + branch per span.
//   2. Time a representative query (the Figure 6 closure shape, which
//      crosses every instrumented layer: session -> executor -> fast path
//      -> analytics) with tracing disabled.
//   3. Enable tracing once to count how many spans that query emits, then
//      derive: overhead_pct = spans_per_query * span_ns / query_ns * 100.
//   4. For reference, also measure the query with tracing *enabled* (ring
//      writes included) — the worst case an operator can switch on.
//
// Emits BENCH_obs_overhead.json through the shared bench_json.h path (git
// SHA + timestamp stamped). Exits non-zero when the derived disabled-path
// overhead breaches 5%.
//
// Env knobs: FRAPPE_OBS_SCALE (0.1), FRAPPE_OBS_ITERS (30).

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_json.h"
#include "bench/kernel_common.h"
#include "model/code_graph.h"
#include "obs/trace.h"
#include "query/session.h"

namespace {

using namespace frappe;
using bench::Clock;
using bench::MsSince;

double EnvDouble(const char* name, double fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr) return fallback;
  double v = std::atof(env);
  return v > 0 ? v : fallback;
}

}  // namespace

int main() {
  bench::PrintHeader("obs overhead: disabled-span cost vs executor time");
  bench::JsonReport report("obs_overhead");

  // --- 1. disabled Span cost ---
  constexpr uint64_t kSpanIters = 20'000'000;
  obs::Trace::Disable();
  Clock::time_point span_start = Clock::now();
  for (uint64_t i = 0; i < kSpanIters; ++i) {
    FRAPPE_TRACE_SPAN("bench.noop");
  }
  double span_total_ms = MsSince(span_start);
  double span_ns = span_total_ms * 1e6 / static_cast<double>(kSpanIters);
  std::printf("disabled span: %.2f ns each (%" PRIu64 " iterations)\n",
              span_ns, kSpanIters);
  report.Add("span_disabled")
      .Sample(span_total_ms)
      .Extra("iterations", static_cast<double>(kSpanIters))
      .Extra("ns_per_span", span_ns);

  // --- graph + query setup ---
  double scale = EnvDouble("FRAPPE_OBS_SCALE", 0.1);
  auto graph = bench::GenerateKernel(scale);
  query::Session session(*graph);
  const graph::GraphView& view = graph->view();
  const model::Schema& schema = graph->schema();

  // Seed: a function with outgoing calls, so the Figure 6 closure shape
  // does real work across every instrumented layer.
  graph::TypeId calls = schema.edge_type(model::EdgeKind::kCalls);
  graph::KeyId short_name = schema.key(model::PropKey::kShortName);
  std::string seed_name;
  for (graph::EdgeId e = 0; e < view.EdgeIdUpperBound(); ++e) {
    if (!view.EdgeExists(e) || view.GetEdge(e).type != calls) continue;
    std::string_view name =
        view.GetNodeString(view.GetEdge(e).src, short_name);
    if (!name.empty()) {
      seed_name = std::string(name);
      break;
    }
  }
  if (seed_name.empty()) {
    std::fprintf(stderr, "FATAL: no seed function found\n");
    return 1;
  }
  std::string fig6 = "START n=node:node_auto_index('short_name: " +
                     seed_name + "') MATCH n -[:calls*]-> m RETURN distinct m";

  const int iters = static_cast<int>(EnvDouble("FRAPPE_OBS_ITERS", 30));
  auto run_query = [&]() -> size_t {
    auto result = session.Run(fig6);
    if (!result.ok()) {
      std::fprintf(stderr, "FATAL: %s\n",
                   result.status().ToString().c_str());
      std::exit(1);
    }
    return result->size();
  };
  size_t rows = run_query();  // warm caches (CSR build, allocator)

  // --- 2. query with tracing disabled (sinks off) ---
  std::vector<double> off_ms;
  for (int i = 0; i < iters; ++i) {
    Clock::time_point start = Clock::now();
    run_query();
    off_ms.push_back(MsSince(start));
  }
  double off_avg = 0;
  for (double s : off_ms) off_avg += s;
  off_avg /= static_cast<double>(off_ms.size());
  report.Add("query_sinks_off")
      .Samples(off_ms)
      .Results(static_cast<int64_t>(rows));

  // --- 3. spans per query + tracing-on latency ---
  obs::Trace::Enable();
  obs::Trace::Clear();
  run_query();
  size_t spans_per_query = obs::Trace::EventCount();
  std::vector<double> on_ms;
  for (int i = 0; i < iters; ++i) {
    Clock::time_point start = Clock::now();
    run_query();
    on_ms.push_back(MsSince(start));
  }
  obs::Trace::Disable();
  obs::Trace::Clear();
  double on_avg = 0;
  for (double s : on_ms) on_avg += s;
  on_avg /= static_cast<double>(on_ms.size());

  double derived_pct =
      100.0 * static_cast<double>(spans_per_query) * span_ns /
      (off_avg * 1e6);
  double tracing_on_pct = 100.0 * (on_avg - off_avg) / off_avg;
  bool pass = derived_pct < 5.0;

  std::printf("query (sinks off):  %.3f ms avg over %d iters, %zu rows\n",
              off_avg, iters, rows);
  std::printf("query (tracing on): %.3f ms avg (%+.2f%%), %zu spans/query\n",
              on_avg, tracing_on_pct, spans_per_query);
  std::printf("derived disabled-path overhead: %.4f%% (%zu spans x %.2f ns"
              " / %.3f ms) -> %s (< 5%% required)\n",
              derived_pct, spans_per_query, span_ns, off_avg,
              pass ? "PASS" : "FAIL");

  report.Add("query_tracing_on")
      .Samples(on_ms)
      .Extra("spans_per_query", static_cast<double>(spans_per_query))
      .Extra("tracing_on_overhead_pct", tracing_on_pct);
  report.Add("overhead")
      .Extra("derived_disabled_overhead_pct", derived_pct)
      .Extra("pass", pass ? 1 : 0);
  report.Write();
  return pass ? 0 : 1;
}
