// Micro benchmarks (google-benchmark): the primitive operations the
// use-case latencies decompose into — index lookups, adjacency expansion,
// BFS, property access, snapshot round-trip, and extraction throughput.

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "common/rng.h"
#include "extractor/build_model.h"
#include "extractor/synthetic.h"
#include "graph/indexes.h"
#include "graph/snapshot.h"
#include "graph/traversal.h"
#include "model/code_graph.h"
#include "query/session.h"

namespace {

using namespace frappe;

// Shared mid-size kernel graph (~25 K nodes), built once.
model::CodeGraph& SharedKernel() {
  static model::CodeGraph* graph = [] {
    auto* g = new model::CodeGraph(model::CodeGraph::Validation::kOff);
    extractor::GraphScale scale;
    scale.factor = 0.05;
    extractor::GenerateKernelGraph(scale, g);
    return g;
  }();
  return *graph;
}

graph::NameIndex& SharedIndex() {
  static graph::NameIndex* index =
      new graph::NameIndex(SharedKernel().BuildNameIndex());
  return *index;
}

void BM_NameIndexExactLookup(benchmark::State& state) {
  auto& index = SharedIndex();
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.Lookup("short_name", "int"));
  }
}
BENCHMARK(BM_NameIndexExactLookup);

void BM_NameIndexWildcard(benchmark::State& state) {
  auto& index = SharedIndex();
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.LookupWildcard("short_name", "fn_init_*"));
  }
}
BENCHMARK(BM_NameIndexWildcard);

void BM_NameIndexFuzzy(benchmark::State& state) {
  auto& index = SharedIndex();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        index.LookupFuzzy("short_name", "fn_init_probe_10", 2));
  }
}
BENCHMARK(BM_NameIndexFuzzy);

void BM_LuceneQuery(benchmark::State& state) {
  auto& index = SharedIndex();
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.Query(
        "(type: struct OR type: union) AND short_name: st_*"));
  }
}
BENCHMARK(BM_LuceneQuery);

void BM_AdjacencyExpansion(benchmark::State& state) {
  auto& graph = SharedKernel();
  graph::NodeId hub = graph.Primitive("int");
  for (auto _ : state) {
    size_t count = 0;
    graph.view().ForEachEdge(hub, graph::Direction::kBoth,
                             [&](graph::EdgeId, graph::NodeId) {
                               ++count;
                               return true;
                             });
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(BM_AdjacencyExpansion);

void BM_TransitiveClosure(benchmark::State& state) {
  auto& graph = SharedKernel();
  graph::EdgeFilter filter = graph::EdgeFilter::Of(
      {graph.type_id(model::EdgeKind::kCalls)});
  // A function with outgoing calls.
  graph::NodeId seed = graph::kInvalidNode;
  graph.view().ForEachNode([&](graph::NodeId id) {
    if (seed == graph::kInvalidNode &&
        graph.KindOf(id) == model::NodeKind::kFunction &&
        graph.view().OutDegree(id) > 3) {
      seed = id;
    }
  });
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        graph::TransitiveClosure(graph.view(), seed, filter));
  }
}
BENCHMARK(BM_TransitiveClosure);

void BM_ShortestPath(benchmark::State& state) {
  auto& graph = SharedKernel();
  graph::EdgeFilter filter = graph::EdgeFilter::Of(
      {graph.type_id(model::EdgeKind::kCalls)}, graph::Direction::kBoth);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        graph::ShortestPath(graph.view(), 2000, 9000, filter));
  }
}
BENCHMARK(BM_ShortestPath);

void BM_PropertyAccess(benchmark::State& state) {
  auto& graph = SharedKernel();
  graph::KeyId key = graph.key_id(model::PropKey::kUseStartLine);
  graph::EdgeId edge = 100;
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph.store().GetEdgeProperty(edge, key));
  }
}
BENCHMARK(BM_PropertyAccess);

void BM_FqlIndexedQuery(benchmark::State& state) {
  static query::Session* session = new query::Session(SharedKernel());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        session->Run("START n=node:node_auto_index('short_name: int') "
                     "RETURN n"));
  }
}
BENCHMARK(BM_FqlIndexedQuery);

void BM_SnapshotRoundTrip(benchmark::State& state) {
  // Small graph: serialize + deserialize.
  model::CodeGraph graph(model::CodeGraph::Validation::kOff);
  extractor::GraphScale scale;
  scale.factor = 0.002;
  extractor::GenerateKernelGraph(scale, &graph);
  for (auto _ : state) {
    std::string blob;
    auto sizes = graph::SerializeSnapshot(graph.view(), &blob);
    auto loaded = graph::DeserializeSnapshot(blob);
    benchmark::DoNotOptimize(loaded->store->NodeCount());
  }
}
BENCHMARK(BM_SnapshotRoundTrip);

void BM_ExtractionThroughput(benchmark::State& state) {
  // Full pipeline: preprocess + parse + extract + link a generated tree.
  extractor::Vfs vfs;
  extractor::SourceScale scale;
  scale.subsystems = 2;
  scale.files_per_subsystem = 4;
  scale.functions_per_file = 6;
  extractor::SourceKernel kernel = extractor::GenerateKernelSource(scale,
                                                                   &vfs);
  uint64_t lines = 0;
  for (auto _ : state) {
    model::CodeGraph graph;
    extractor::BuildDriver driver(&vfs, &graph);
    for (const std::string& command : kernel.build_commands) {
      Status status = driver.Run(command);
      if (!status.ok()) state.SkipWithError(status.ToString().c_str());
    }
    lines += kernel.total_lines;
  }
  state.counters["lines_per_sec"] = benchmark::Counter(
      static_cast<double>(lines), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ExtractionThroughput);

}  // namespace

// Like BENCHMARK_MAIN(), but defaults --benchmark_out to
// BENCH_micro.json (JSON format) so this binary emits machine-readable
// results like the table/figure benches do. An explicit --benchmark_out
// on the command line wins.
int main(int argc, char** argv) {
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--benchmark_out", 0) == 0) {
      has_out = true;
    }
  }
  std::vector<char*> args(argv, argv + argc);
  std::string out_flag = "--benchmark_out=BENCH_micro.json";
  std::string fmt_flag = "--benchmark_out_format=json";
  if (const char* dir = std::getenv("FRAPPE_BENCH_JSON_DIR")) {
    out_flag = std::string("--benchmark_out=") + dir + "/BENCH_micro.json";
  }
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
