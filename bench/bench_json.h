#ifndef FRAPPE_BENCH_BENCH_JSON_H_
#define FRAPPE_BENCH_BENCH_JSON_H_

// Machine-readable companion output for the reproduction benches. Each
// bench_* binary accumulates one entry per measured configuration and
// writes BENCH_<name>.json (label, min/avg/max ms, result counts, thread
// count) next to the human-readable table, so the perf trajectory is
// trackable across PRs without scraping stdout.
//
// Output location: $FRAPPE_BENCH_JSON_DIR (default: current directory).
// Files are overwritten on every run.

#include <sys/resource.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <string>
#include <utility>
#include <vector>

namespace frappe::bench {

struct JsonEntry {
  std::string label;
  std::vector<double> samples_ms;  // min/avg/max derived at write time
  int64_t results = -1;            // result/row/node count; -1 = omit
  int threads = -1;                // lane count; -1 = omit
  std::string note;                // e.g. "ABORTED: ..."; empty = omit
  // Extra numeric facts (counts, sizes, ratios) specific to one bench.
  std::vector<std::pair<std::string, double>> extra;
  // Extra string facts (e.g. per-level push/pull decisions).
  std::vector<std::pair<std::string, std::string>> extra_str;

  JsonEntry& Sample(double ms) {
    samples_ms.push_back(ms);
    return *this;
  }
  JsonEntry& Samples(const std::vector<double>& ms) {
    samples_ms.insert(samples_ms.end(), ms.begin(), ms.end());
    return *this;
  }
  JsonEntry& Results(int64_t count) {
    results = count;
    return *this;
  }
  JsonEntry& Threads(int count) {
    threads = count;
    return *this;
  }
  JsonEntry& Note(std::string text) {
    note = std::move(text);
    return *this;
  }
  JsonEntry& Extra(std::string key, double value) {
    extra.emplace_back(std::move(key), value);
    return *this;
  }
  JsonEntry& ExtraStr(std::string key, std::string value) {
    extra_str.emplace_back(std::move(key), std::move(value));
    return *this;
  }
};

// Collects entries and writes BENCH_<name>.json when Write() is called (or
// on destruction, for benches that exit through main's tail).
class JsonReport {
 public:
  explicit JsonReport(std::string name) : name_(std::move(name)) {}
  JsonReport(const JsonReport&) = delete;
  JsonReport& operator=(const JsonReport&) = delete;
  ~JsonReport() { Write(); }

  JsonEntry& Add(std::string label) {
    entries_.emplace_back();
    entries_.back().label = std::move(label);
    return entries_.back();
  }

  void Write() {
    if (written_) return;
    written_ = true;
    std::string path = Path();
    FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "[bench_json] cannot write %s\n", path.c_str());
      return;
    }
    // Provenance stamp: which commit produced the numbers, and when — so
    // BENCH_*.json files from different PRs are comparable as a trajectory.
    // The rusage block records what the run cost the machine: peak RSS and
    // user/system CPU seconds of the whole bench process (getrusage), so a
    // memory regression shows up in the artifact even when latency holds.
    struct rusage usage {};
    getrusage(RUSAGE_SELF, &usage);
    double user_s = static_cast<double>(usage.ru_utime.tv_sec) +
                    static_cast<double>(usage.ru_utime.tv_usec) / 1e6;
    double sys_s = static_cast<double>(usage.ru_stime.tv_sec) +
                   static_cast<double>(usage.ru_stime.tv_usec) / 1e6;
    std::fprintf(f,
                 "{\n  \"bench\": %s,\n  \"git_sha\": %s,\n"
                 "  \"timestamp\": %s,\n  \"rusage\": {\"max_rss_kb\": %lld,"
                 " \"user_s\": %s, \"sys_s\": %s},\n  \"entries\": [",
                 Quoted(name_).c_str(), Quoted(GitSha()).c_str(),
                 Quoted(TimestampUtc()).c_str(),
                 static_cast<long long>(usage.ru_maxrss),
                 Num(user_s).c_str(), Num(sys_s).c_str());
    for (size_t i = 0; i < entries_.size(); ++i) {
      const JsonEntry& e = entries_[i];
      std::fprintf(f, "%s\n    {\"label\": %s", i == 0 ? "" : ",",
                   Quoted(e.label).c_str());
      if (!e.samples_ms.empty()) {
        double min = *std::min_element(e.samples_ms.begin(),
                                       e.samples_ms.end());
        double max = *std::max_element(e.samples_ms.begin(),
                                       e.samples_ms.end());
        double sum = 0;
        for (double s : e.samples_ms) sum += s;
        std::fprintf(f,
                     ", \"iterations\": %zu, \"min_ms\": %s, \"avg_ms\": %s,"
                     " \"max_ms\": %s",
                     e.samples_ms.size(), Num(min).c_str(),
                     Num(sum / static_cast<double>(e.samples_ms.size()))
                         .c_str(),
                     Num(max).c_str());
      }
      if (e.results >= 0) {
        std::fprintf(f, ", \"results\": %lld",
                     static_cast<long long>(e.results));
      }
      if (e.threads >= 0) std::fprintf(f, ", \"threads\": %d", e.threads);
      for (const auto& [key, value] : e.extra) {
        std::fprintf(f, ", %s: %s", Quoted(key).c_str(), Num(value).c_str());
      }
      for (const auto& [key, value] : e.extra_str) {
        std::fprintf(f, ", %s: %s", Quoted(key).c_str(),
                     Quoted(value).c_str());
      }
      if (!e.note.empty()) {
        std::fprintf(f, ", \"note\": %s", Quoted(e.note).c_str());
      }
      std::fputc('}', f);
    }
    std::fprintf(f, "\n  ]\n}\n");
    std::fclose(f);
    std::printf("\n[bench_json] wrote %s (%zu entries)\n", path.c_str(),
                entries_.size());
  }

  std::string Path() const {
    const char* dir = std::getenv("FRAPPE_BENCH_JSON_DIR");
    std::string prefix = dir != nullptr ? std::string(dir) + "/" : "";
    return prefix + "BENCH_" + name_ + ".json";
  }

 private:
  // Commit SHA baked in at configure time (FRAPPE_GIT_SHA_DEFAULT, see
  // bench/CMakeLists.txt); the FRAPPE_GIT_SHA env var overrides it when the
  // build tree is stale relative to the checkout.
  static std::string GitSha() {
    const char* env = std::getenv("FRAPPE_GIT_SHA");
    if (env != nullptr && *env != '\0') return env;
#ifdef FRAPPE_GIT_SHA_DEFAULT
    return FRAPPE_GIT_SHA_DEFAULT;
#else
    return "unknown";
#endif
  }

  // ISO-8601 UTC, e.g. "2026-08-06T12:34:56Z".
  static std::string TimestampUtc() {
    std::time_t now = std::time(nullptr);
    std::tm tm = {};
    gmtime_r(&now, &tm);
    char buf[32];
    std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm);
    return buf;
  }

  static std::string Quoted(const std::string& s) {
    std::string out = "\"";
    for (char c : s) {
      switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out += buf;
          } else {
            out += c;
          }
      }
    }
    out += '"';
    return out;
  }

  // %g keeps the file compact while preserving ~6 significant digits.
  static std::string Num(double v) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
  }

  std::string name_;
  std::vector<JsonEntry> entries_;
  bool written_ = false;
};

}  // namespace frappe::bench

#endif  // FRAPPE_BENCH_BENCH_JSON_H_
