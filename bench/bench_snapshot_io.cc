// Snapshot I/O throughput: save and load MB/s with per-section CRC32C
// checksums on vs off. The v2 format targets <5% checksum overhead on both
// paths (hardware CRC32C where SSE4.2 is available, slice-by-8 otherwise);
// the JSON report carries the measured overhead so the trajectory is
// trackable across PRs.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_json.h"
#include "bench/kernel_common.h"
#include "graph/snapshot.h"

namespace {

constexpr int kIterations = 5;

struct IoStats {
  std::vector<double> save_ms;
  std::vector<double> load_ms;
  double file_mb = 0;
};

double Min(const std::vector<double>& v) {
  double best = v[0];
  for (double x : v) best = std::min(best, x);
  return best;
}

}  // namespace

int main() {
  using namespace frappe;
  double factor = bench::ScaleFromEnv();
  bench::PrintHeader("Snapshot I/O: checksummed vs raw (MB/s)");
  std::printf("scale factor: %g, iterations: %d\n\n", factor, kIterations);

  auto graph = bench::GenerateKernel(factor);
  graph::NameIndex index = graph->BuildNameIndex();
  std::string path = bench::CacheDir() + "/frappe_snapshot_io_probe.db";

  auto measure = [&](bool checksums) -> IoStats {
    IoStats stats;
    graph::SnapshotOptions options;
    options.checksums = checksums;
    for (int i = 0; i < kIterations; ++i) {
      auto start = bench::Clock::now();
      auto sizes = graph::SaveSnapshot(graph->view(), path, &index, options);
      stats.save_ms.push_back(bench::MsSince(start));
      if (!sizes.ok()) {
        std::fprintf(stderr, "FATAL: save: %s\n",
                     sizes.status().ToString().c_str());
        std::exit(1);
      }
      stats.file_mb =
          static_cast<double>(sizes->total()) / (1024.0 * 1024.0);

      start = bench::Clock::now();
      auto loaded = graph::LoadSnapshot(path);
      stats.load_ms.push_back(bench::MsSince(start));
      if (!loaded.ok()) {
        std::fprintf(stderr, "FATAL: load: %s\n",
                     loaded.status().ToString().c_str());
        std::exit(1);
      }
    }
    return stats;
  };

  IoStats checked = measure(/*checksums=*/true);
  IoStats raw = measure(/*checksums=*/false);
  std::remove(path.c_str());

  auto mbps = [](double mb, double ms) { return mb / (ms / 1000.0); };
  double save_on = mbps(checked.file_mb, Min(checked.save_ms));
  double save_off = mbps(raw.file_mb, Min(raw.save_ms));
  double load_on = mbps(checked.file_mb, Min(checked.load_ms));
  double load_off = mbps(raw.file_mb, Min(raw.load_ms));
  // Overhead as slowdown of the checksummed path relative to raw, best-run
  // vs best-run (steady-state; first iterations absorb page-cache warmup).
  double save_overhead = (save_off / save_on - 1.0) * 100.0;
  double load_overhead = (load_off / load_on - 1.0) * 100.0;

  std::printf("%-12s %12s %12s %12s\n", "path", "raw MB/s", "crc MB/s",
              "overhead");
  std::printf("%-12s %12.1f %12.1f %11.1f%%\n", "save", save_off, save_on,
              save_overhead);
  std::printf("%-12s %12.1f %12.1f %11.1f%%\n", "load", load_off, load_on,
              load_overhead);
  std::printf("\nfile size: %.1f MB (checksummed), %.1f MB (raw)\n",
              checked.file_mb, raw.file_mb);
  std::printf("target: checksum overhead < 5%% on both paths\n");

  bench::JsonReport json("snapshot_io");
  json.Add("save_checksummed")
      .Samples(checked.save_ms)
      .Extra("scale", factor)
      .Extra("file_mb", checked.file_mb)
      .Extra("mb_per_s", save_on);
  json.Add("save_raw")
      .Samples(raw.save_ms)
      .Extra("file_mb", raw.file_mb)
      .Extra("mb_per_s", save_off)
      .Extra("checksum_overhead_pct", save_overhead);
  json.Add("load_checksummed")
      .Samples(checked.load_ms)
      .Extra("mb_per_s", load_on);
  json.Add("load_raw")
      .Samples(raw.load_ms)
      .Extra("mb_per_s", load_off)
      .Extra("checksum_overhead_pct", load_overhead);
  return 0;
}
