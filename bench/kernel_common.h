#ifndef FRAPPE_BENCH_KERNEL_COMMON_H_
#define FRAPPE_BENCH_KERNEL_COMMON_H_

// Shared plumbing for the table/figure reproduction benches: builds (or
// loads from a cache file) the paper-scale synthetic kernel graph and
// opens it the way a Frappé deployment would (snapshot + auto index +
// label index + schema bindings).
//
// Environment knobs:
//   FRAPPE_SCALE           graph scale factor (default 1.0 = paper scale)
//   FRAPPE_CACHE_DIR       where kernel snapshots are cached (default /tmp)
//   FRAPPE_THREADS         default lane count for the parallel analytics
//                          kernels (0/unset = hardware concurrency); see
//                          ThreadPool::ResolveThreads
//   FRAPPE_BENCH_JSON_DIR  where BENCH_<name>.json files are written
//                          (default: current directory; see bench_json.h)

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "extractor/synthetic.h"
#include "graph/indexes.h"
#include "graph/snapshot.h"
#include "model/code_graph.h"
#include "query/session.h"

namespace frappe::bench {

inline double ScaleFromEnv() {
  const char* env = std::getenv("FRAPPE_SCALE");
  if (env == nullptr) return 1.0;
  double v = std::atof(env);
  return v > 0 ? v : 1.0;
}

inline std::string CacheDir() {
  const char* env = std::getenv("FRAPPE_CACHE_DIR");
  return env != nullptr ? env : "/tmp";
}

inline std::string KernelCachePath(double factor) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "frappe_kernel_%.4f.db", factor);
  return CacheDir() + "/" + buf;
}

using Clock = std::chrono::steady_clock;

inline double MsSince(Clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             Clock::now() - start)
             .count() /
         1000.0;
}

// Generates the kernel graph in memory (no cache involved).
inline std::unique_ptr<model::CodeGraph> GenerateKernel(
    double factor, extractor::GraphReport* report = nullptr) {
  auto graph = std::make_unique<model::CodeGraph>(
      model::CodeGraph::Validation::kOff);
  extractor::GraphScale scale;
  scale.factor = factor;
  extractor::GraphReport r =
      extractor::GenerateKernelGraph(scale, graph.get());
  if (report != nullptr) *report = r;
  return graph;
}

// Ensures the cache file exists; returns its path.
inline std::string EnsureKernelSnapshot(double factor) {
  std::string path = KernelCachePath(factor);
  if (FILE* f = std::fopen(path.c_str(), "rb")) {
    std::fclose(f);
    return path;
  }
  std::fprintf(stderr, "[kernel_common] generating kernel graph (scale %g)"
                       " and writing %s ...\n", factor, path.c_str());
  auto graph = GenerateKernel(factor);
  graph::NameIndex index = graph->BuildNameIndex();
  auto sizes = graph::SaveSnapshot(graph->view(), path, &index);
  if (!sizes.ok()) {
    std::fprintf(stderr, "FATAL: %s\n", sizes.status().ToString().c_str());
    std::exit(1);
  }
  return path;
}

// A kernel database opened from a snapshot: everything needed to run FQL
// and direct-API queries.
struct OpenedKernel {
  std::unique_ptr<graph::GraphStore> store;
  graph::NameIndex name_index;
  graph::LabelIndex label_index;
  model::Schema schema;
  query::Database db;
  double open_ms = 0;  // deserialize + index attach + label scan build
};

inline std::unique_ptr<OpenedKernel> OpenKernel(const std::string& path) {
  Clock::time_point start = Clock::now();
  auto loaded = graph::LoadSnapshot(path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "FATAL: %s\n", loaded.status().ToString().c_str());
    std::exit(1);
  }
  for (const std::string& warning : loaded->warnings) {
    std::fprintf(stderr, "[kernel_common] %s\n", warning.c_str());
  }
  auto out = std::make_unique<OpenedKernel>();
  out->store = std::move(loaded->store);
  if (loaded->index.has_value()) {
    out->name_index = std::move(*loaded->index);
  } else {
    model::CodeGraph scratch;  // field specs only
    out->name_index =
        graph::NameIndex::Build(*out->store, scratch.IndexFields());
  }
  out->label_index = graph::LabelIndex::Build(*out->store);
  out->schema = model::Schema::Install(out->store.get());
  out->db = query::MakeFrappeDatabase(*out->store, out->schema,
                                      &out->name_index, &out->label_index);
  out->open_ms = MsSince(start);
  return out;
}

inline void PrintHeader(const char* title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("================================================================\n");
}

}  // namespace frappe::bench

#endif  // FRAPPE_BENCH_KERNEL_COMMON_H_
