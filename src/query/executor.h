#ifndef FRAPPE_QUERY_EXECUTOR_H_
#define FRAPPE_QUERY_EXECUTOR_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "query/ast.h"
#include "query/database.h"

namespace frappe::obs {
struct QueryProgress;
}  // namespace frappe::obs

namespace frappe::query {

// Execution limits. The paper aborted the Figure 6 transitive-closure query
// after 15 minutes; these limits let a caller reproduce that behaviour
// without hanging: on breach the executor returns DeadlineExceeded /
// ResourceExhausted instead of a result.
struct ExecOptions {
  uint64_t max_steps = 0;      // 0 = unlimited; counts expansions/candidates
  int64_t deadline_ms = 0;     // 0 = none; wall-clock budget
  // Lane count for the parallel analytics kernels the executor may dispatch
  // to (the CSR closure fast path). 0 resolves FRAPPE_THREADS / hardware
  // concurrency; 1 forces the sequential inline loop.
  size_t threads = 0;
  // When a variable-length MATCH only feeds multiplicity-insensitive
  // clauses (RETURN DISTINCT, count(DISTINCT ...)), answer it with the
  // parallel CSR transitive-closure kernel instead of enumerating every
  // edge-distinct path — the difference between Figure 6 aborting and
  // finishing. Off = always enumerate (the paper's measured behaviour).
  bool use_csr_fast_path = true;
  // Collect per-operator runtime stats (rows, db-hits, steps, wall time)
  // into QueryResult::stats.operators. Set by `PROFILE <query>`; adds two
  // clock reads and a couple of counter subtractions per clause.
  bool profile = false;
  // Cooperative cancellation: when set, the executor polls the token on the
  // kDeadlineCheckInterval cadence (and forwards it to the analytics
  // kernel) and returns Status::Cancelled once it reads true. The token
  // outlives the call; the executor never writes it.
  std::atomic<bool>* cancel = nullptr;
  // Live progress counters (steps, db-hits, rows, current operator)
  // published on the same cadence for /debug/queryz and the stuck-query
  // watchdog. Owned by the caller (normally the active-query registry).
  obs::QueryProgress* progress = nullptr;
};

// Storage accesses the executor performed, split by what was touched. One
// "db hit" is one node record, edge record, or property read — the unit
// Neo4j's PROFILE reports, and the denominator the paper lacked when
// diagnosing Figure 6.
struct DbHits {
  uint64_t nodes = 0;
  uint64_t edges = 0;
  uint64_t properties = 0;

  uint64_t Total() const { return nodes + edges + properties; }
  DbHits operator-(const DbHits& o) const {
    return DbHits{nodes - o.nodes, edges - o.edges,
                  properties - o.properties};
  }
};

// Per-clause runtime stats collected under PROFILE. `clause_index` keys the
// entry back to the plan operator rendered for that clause.
struct OperatorStats {
  size_t clause_index = 0;
  uint64_t rows = 0;     // rows alive after the clause ran
  DbHits db_hits;        // storage accesses attributable to the clause
  uint64_t steps = 0;    // step-budget units the clause consumed
  double time_ms = 0.0;  // wall time inside the clause
  // CSR fast-path detail (variable-length MATCH answered by the parallel
  // closure kernel): frontier size per BFS level, the direction-optimizing
  // kernel's per-level choices (parallel to frontier_sizes: pull vs push,
  // bitmap vs array frontier), switch count, and lanes used.
  bool fast_path = false;
  std::vector<uint64_t> frontier_sizes;
  std::vector<uint8_t> level_pull;
  std::vector<uint8_t> level_bitmap;
  size_t direction_switches = 0;
  size_t lanes = 0;
};

// Per-query latency attribution: microseconds spent in each stage of the
// request. parse/plan/exec are filled by Session::Run; queue_us (admission
// queue wait), serialize_us and total_us are filled by the query server —
// zero for queries that never crossed it (shell, replay, tests).
struct Timeline {
  uint64_t queue_us = 0;
  uint64_t parse_us = 0;
  uint64_t plan_us = 0;
  uint64_t exec_us = 0;
  uint64_t serialize_us = 0;
  uint64_t total_us = 0;
};

// Always-on execution summary: populated for every query (two clock reads
// plus counters the executor maintains anyway), independent of PROFILE.
struct ExecStats {
  double elapsed_ms = 0.0;
  uint64_t steps = 0;
  DbHits db_hits;
  bool fast_path_taken = false;
  Timeline timeline;  // latency attribution (see Timeline)
  std::vector<OperatorStats> operators;  // non-empty only under PROFILE
  // Resource attribution (obs/resource.h): thread-CPU time summed across
  // every thread the query touched, heap allocation totals and the live-byte
  // high-water mark, and approximate bytes read from graph storage. The
  // executor fills scanned_bytes; the session fills the rest from the
  // query's ResourceTracker.
  uint64_t cpu_us = 0;
  uint64_t alloc_bytes = 0;
  uint64_t peak_bytes = 0;
  uint64_t scanned_bytes = 0;
};

// A value in a result row: a node, an edge, a scalar, or the edge list a
// variable-length relationship variable binds to.
struct ResultValue {
  enum class Kind { kNull, kNode, kEdge, kValue, kEdgeList };
  Kind kind = Kind::kNull;
  graph::NodeId node = graph::kInvalidNode;
  graph::EdgeId edge = graph::kInvalidEdge;
  graph::Value value;                 // kValue payload
  std::vector<graph::EdgeId> edges;   // kEdgeList payload

  static ResultValue Null() { return {}; }
  static ResultValue Node(graph::NodeId id) {
    ResultValue v;
    v.kind = Kind::kNode;
    v.node = id;
    return v;
  }
  static ResultValue EdgeRef(graph::EdgeId id) {
    ResultValue v;
    v.kind = Kind::kEdge;
    v.edge = id;
    return v;
  }
  static ResultValue Scalar(graph::Value value) {
    ResultValue v;
    if (value.is_null()) return v;
    v.kind = Kind::kValue;
    v.value = value;
    return v;
  }
  static ResultValue EdgeList(std::vector<graph::EdgeId> list) {
    ResultValue v;
    v.kind = Kind::kEdgeList;
    v.edges = std::move(list);
    return v;
  }

  bool is_null() const { return kind == Kind::kNull; }

  bool operator==(const ResultValue& other) const;
  // Total order used by DISTINCT, grouping and ORDER BY. Nulls sort last.
  static int Compare(const ResultValue& a, const ResultValue& b);

  // Display rendering, e.g. `(#12:function main)` for a node.
  std::string ToString(const Database& db) const;
};

struct QueryResult {
  std::vector<std::string> columns;
  std::vector<std::vector<ResultValue>> rows;
  uint64_t steps = 0;  // work units the executor spent
  ExecStats stats;     // always populated (operators only under PROFILE)
  // Rendered plan: set for EXPLAIN (instead of rows) and PROFILE
  // (alongside rows, annotated with per-operator stats).
  std::string plan;

  size_t size() const { return rows.size(); }
};

// Parses nothing — takes an already-parsed query. See Session::Run for the
// string-in/rows-out convenience wrapper.
Result<QueryResult> Execute(const Database& db, const Query& query,
                            const ExecOptions& options = {});

}  // namespace frappe::query

#endif  // FRAPPE_QUERY_EXECUTOR_H_
