#include "query/database.h"

#include <string>

#include "common/string_util.h"

namespace frappe::query {

Database Database::Plain(const graph::GraphView& view,
                         const graph::NameIndex* name_index,
                         const graph::LabelIndex* label_index) {
  Database db;
  db.view = &view;
  db.name_index = name_index;
  db.label_index = label_index;
  db.resolve_label = [&view](std::string_view label) {
    std::vector<graph::TypeId> out;
    graph::TypeId id = view.node_types().Find(ToLower(label));
    if (id != 0xFFFF) out.push_back(id);
    return out;
  };
  db.resolve_edge_type =
      [&view](std::string_view name) -> std::optional<graph::TypeId> {
    graph::TypeId id = view.edge_types().Find(ToLower(name));
    if (id == 0xFFFF) return std::nullopt;
    return id;
  };
  db.resolve_property =
      [&view](std::string_view name) -> std::optional<graph::KeyId> {
    graph::KeyId id = view.keys().Find(ToLower(name));
    if (id == 0xFFFF) return std::nullopt;
    return id;
  };
  db.csr = std::make_shared<graph::CsrCache>();
  db.stats = std::make_shared<graph::StatsCatalogCache>();
  return db;
}

}  // namespace frappe::query
