#ifndef FRAPPE_QUERY_LEXER_H_
#define FRAPPE_QUERY_LEXER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace frappe::query {

enum class TokenType {
  kEnd,
  kIdent,    // identifiers and keywords (keyword-ness decided by parser)
  kInt,
  kDouble,
  kString,   // quoted with ' or "
  kLParen,   // (
  kRParen,   // )
  kLBracket, // [
  kRBracket, // ]
  kLBrace,   // {
  kRBrace,   // }
  kColon,    // :
  kComma,    // ,
  kDot,      // .
  kDotDot,   // ..
  kPipe,     // |
  kStar,     // *
  kMinus,    // -
  kEq,       // =
  kNe,       // <>
  kLt,       // <
  kLe,       // <=
  kGt,       // >
  kGe,       // >=
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;       // identifier / string payload
  int64_t int_value = 0;
  double double_value = 0.0;
  size_t offset = 0;      // byte offset in the query, for error messages

  bool IsKeyword(std::string_view kw) const;  // case-insensitive ident match
};

// Tokenizes an FQL query. `<-` and `->` are NOT fused here: the pattern
// parser combines kLt/kMinus/kGt itself so that `a < -5` keeps working in
// expressions (the same choice real Cypher lexers make).
Result<std::vector<Token>> Lex(std::string_view input);

// Human-readable token description for error messages.
std::string TokenDescription(const Token& token);

}  // namespace frappe::query

#endif  // FRAPPE_QUERY_LEXER_H_
