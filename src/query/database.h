#ifndef FRAPPE_QUERY_DATABASE_H_
#define FRAPPE_QUERY_DATABASE_H_

#include <functional>
#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "graph/csr_view.h"
#include "graph/graph_view.h"
#include "graph/indexes.h"
#include "graph/stats_catalog.h"

namespace frappe::query {

// Everything the executor needs to resolve a query against a graph:
// the graph itself, the auto name index (START lookups), the label index
// (label-scan start points) and name-resolution hooks.
//
// The resolution hooks decouple the query engine from the Frappé code-graph
// schema: `resolve_label` may expand a group label ("symbol") into several
// concrete node type ids (Table 6 semantics), and `resolve_property` may
// canonicalize paper spelling variants (NAME_START_COLUMN).
struct Database {
  const graph::GraphView* view = nullptr;
  const graph::NameIndex* name_index = nullptr;    // may be null
  const graph::LabelIndex* label_index = nullptr;  // may be null

  // Returns all node type ids matching a label written in a query. Empty
  // means "unknown label" (matches nothing).
  std::function<std::vector<graph::TypeId>(std::string_view)> resolve_label;

  // Returns the edge type id for a relationship type name, or nullopt.
  std::function<std::optional<graph::TypeId>(std::string_view)>
      resolve_edge_type;

  // Returns the property key id for a (possibly aliased) property name.
  std::function<std::optional<graph::KeyId>(std::string_view)>
      resolve_property;

  // Property used when rendering nodes in result output (optional).
  graph::KeyId display_name_key = graph::kInvalidKey;

  // Lazily-built CSR snapshot shared by analytics fast paths (the
  // executor's variable-length closure kernel). Populated by Plain /
  // MakeFrappeDatabase; a null cache disables the fast path. Call
  // csr->Invalidate() after mutating the underlying graph.
  std::shared_ptr<graph::CsrCache> csr;

  // Cardinality statistics feeding the plan estimator (est_rows /
  // q-error). Populated by the FQL ANALYZE command or from a loaded
  // snapshot's stats section; an empty cache degrades the estimator to
  // live label/index probes. Shared so ANALYZE on one session's database
  // refreshes every reader of the same graph.
  std::shared_ptr<graph::StatsCatalogCache> stats;

  // Builds a Database with schema-unaware defaults: labels resolve by exact
  // (case-insensitive) registry lookup, properties by lowercased name.
  static Database Plain(const graph::GraphView& view,
                        const graph::NameIndex* name_index = nullptr,
                        const graph::LabelIndex* label_index = nullptr);
};

}  // namespace frappe::query

#endif  // FRAPPE_QUERY_DATABASE_H_
