#ifndef FRAPPE_QUERY_ESTIMATOR_H_
#define FRAPPE_QUERY_ESTIMATOR_H_

#include <vector>

#include "query/ast.h"
#include "query/database.h"

namespace frappe::query {

// Per-clause cardinality estimates for one query, computed before
// execution from the ANALYZE stats catalog (db.stats) with live
// label-index / node-count fallbacks when no catalog exists.
//
// This is deliberately a *naive* System-R-style estimator — independence
// and uniformity assumptions, fixed selectivities for predicates — because
// its job in this PR is observability, not optimality: every EXPLAIN /
// PROFILE plan step carries `est_rows`, PROFILE compares it against actual
// rows as a q-error, and gross misestimates land in telemetry
// (frappe_plan_qerror, /debug/statz). ROADMAP item 3's cost model will
// replace the guts; the seam and the scoreboard stay.
struct ClauseEstimates {
  // Estimated rows *after* each clause has run, indexed by clause
  // position in Query::clauses. Same length as Query::clauses.
  std::vector<double> rows;
  // Estimate for the full query (rows of the last clause, or 0 when the
  // query has no clauses).
  double final_rows = 0.0;
  // Whether a stats catalog informed the estimate (false = structural
  // fallbacks only; expect larger q-errors).
  bool used_catalog = false;
};

ClauseEstimates EstimateQuery(const Database& db, const Query& query);

// The standard misestimate metric: max((est+1)/(act+1), (act+1)/(est+1)).
// Symmetric, >= 1.0, and smoothed so zero-row results stay finite.
double QError(double est_rows, double actual_rows);

}  // namespace frappe::query

#endif  // FRAPPE_QUERY_ESTIMATOR_H_
