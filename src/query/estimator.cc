#include "query/estimator.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <string>

#include "common/string_util.h"

namespace frappe::query {

namespace {

// Textbook default selectivities (System R lineage); the catalog refines
// start points and expansion fanouts, these cover arbitrary predicates.
constexpr double kEqSelectivity = 0.1;
constexpr double kNeSelectivity = 0.9;
constexpr double kRangeSelectivity = 1.0 / 3.0;
constexpr double kPatternSelectivity = 0.5;
// Wildcard / fuzzy index terms match a handful of distinct terms instead
// of one.
constexpr double kWildcardTermFactor = 8.0;
// Var-length expansions are estimated up to this many hops; beyond it the
// node-count cap dominates anyway.
constexpr uint32_t kMaxEstimatedHops = 8;

struct EstimatorState {
  const Database* db;
  std::shared_ptr<const graph::StatsCatalog> catalog;  // may be null
  std::set<std::string> bound;  // variables bound by earlier clauses
};

double NodeCountOf(const EstimatorState& st) {
  return static_cast<double>(st.db->view->NodeCount());
}

// Rows produced by one lucene START lookup. With a catalog: terms in the
// query x average postings per term for the field. Without: a single
// exact term can be probed live (cheap, one map lookup); anything else
// guesses 1.
double EstimateIndexQuery(const EstimatorState& st,
                          const std::string& index_query) {
  std::string_view q = StripWhitespace(index_query);
  size_t colon = q.find(':');
  std::string field =
      colon == std::string_view::npos
          ? std::string("short_name")
          : ToLower(StripWhitespace(q.substr(0, colon)));
  // Each `field: term` pair is one term; OR combines them additively.
  size_t term_count = 0;
  for (char c : q) term_count += c == ':';
  if (term_count == 0) term_count = 1;
  bool has_wildcard = q.find('*') != std::string_view::npos ||
                      q.find('?') != std::string_view::npos ||
                      q.find('~') != std::string_view::npos;

  if (st.catalog != nullptr) {
    for (const auto& f : st.catalog->index_fields) {
      if (EqualsIgnoreCase(f.field, field)) {
        double per_term =
            f.distinct_terms == 0
                ? 0.0
                : static_cast<double>(f.postings) /
                      static_cast<double>(f.distinct_terms);
        double terms = static_cast<double>(term_count) *
                       (has_wildcard ? kWildcardTermFactor : 1.0);
        return std::max(per_term, 1.0) * terms;
      }
    }
  }
  if (st.db->name_index != nullptr && term_count == 1 && !has_wildcard &&
      colon != std::string_view::npos) {
    std::string term = ToLower(StripWhitespace(q.substr(colon + 1)));
    return static_cast<double>(st.db->name_index->Lookup(field, term).size());
  }
  return 1.0;
}

// Nodes matching a node pattern's labels (sum over resolved type ids) and
// inline property constraints.
double EstimateNodePattern(const EstimatorState& st,
                           const NodePattern& node) {
  double rows;
  if (node.labels.empty()) {
    rows = NodeCountOf(st);
  } else {
    rows = 0.0;
    for (const std::string& label : node.labels) {
      std::vector<graph::TypeId> types =
          st.db->resolve_label ? st.db->resolve_label(label)
                               : std::vector<graph::TypeId>{};
      for (graph::TypeId t : types) {
        if (st.catalog != nullptr && t < st.catalog->node_types.size()) {
          rows += static_cast<double>(st.catalog->node_types[t].count);
        } else if (st.db->label_index != nullptr) {
          rows += static_cast<double>(st.db->label_index->Nodes(t).size());
        } else {
          rows += NodeCountOf(st) /
                  std::max<double>(st.db->view->node_types().size(), 1.0);
        }
      }
    }
  }
  for (size_t i = 0; i < node.props.size(); ++i) rows *= kEqSelectivity;
  return std::max(rows, 0.0);
}

// Average neighbors per row for one relationship hop. Catalog fanouts are
// per *participating* endpoint (edges / distinct endpoints of that type),
// which models "rows already matching the pattern shape".
double EstimateFanout(const EstimatorState& st, const RelPattern& rel) {
  double node_count = std::max(NodeCountOf(st), 1.0);
  double untyped =
      static_cast<double>(st.db->view->EdgeCount()) / node_count;
  if (st.catalog == nullptr) return std::max(untyped, 1.0);

  auto type_fanout = [&](graph::TypeId t) {
    if (t >= st.catalog->edge_types.size()) return 0.0;
    const auto& et = st.catalog->edge_types[t];
    switch (rel.direction) {
      case graph::Direction::kOut: return et.AvgOutFanout();
      case graph::Direction::kIn: return et.AvgInFanout();
      case graph::Direction::kBoth:
        return et.AvgOutFanout() + et.AvgInFanout();
    }
    return 0.0;
  };

  if (rel.types.empty()) {
    // Any type: sum directional fanouts over every edge type, scaled by
    // nothing — per-participant again, summed across types.
    double total = 0.0;
    for (graph::TypeId t = 0;
         t < static_cast<graph::TypeId>(st.catalog->edge_types.size()); ++t) {
      total += type_fanout(t);
    }
    return std::max(total, untyped);
  }
  double total = 0.0;
  for (const std::string& name : rel.types) {
    std::optional<graph::TypeId> t =
        st.db->resolve_edge_type ? st.db->resolve_edge_type(name)
                                 : std::nullopt;
    if (t.has_value()) total += type_fanout(*t);
  }
  for (size_t i = 0; i < rel.props.size(); ++i) total *= kEqSelectivity;
  return total;
}

double EstimateChain(const EstimatorState& st, const PatternChain& chain,
                     double current_rows) {
  double node_count = std::max(NodeCountOf(st), 1.0);
  // Anchor: a bound first node continues from the current row set; an
  // unbound one scans/seeks and joins cartesian-style.
  const NodePattern& first = chain.nodes.front();
  bool anchored =
      !first.var.empty() && st.bound.count(first.var) > 0;
  double rows = anchored
                    ? current_rows
                    : std::max(current_rows, 1.0) *
                          EstimateNodePattern(st, first);
  for (size_t i = 0; i < chain.rels.size(); ++i) {
    const RelPattern& rel = chain.rels[i];
    double fanout = EstimateFanout(st, rel);
    if (rel.var_length) {
      uint32_t hops = std::min(rel.max_length, kMaxEstimatedHops);
      double expansion = 1.0;
      // Sum of fanout^1 .. fanout^hops: a var-length match emits every
      // intermediate endpoint, not just the final frontier.
      double power = 1.0;
      for (uint32_t h = 0; h < hops; ++h) {
        power *= std::max(fanout, 1e-6);
        expansion = expansion + power;
        if (rows * expansion > node_count) break;
      }
      rows = std::min(rows * expansion, std::max(rows, node_count));
    } else {
      rows *= fanout;
    }
    // Shortest path binds at most one path per endpoint pair.
    if (chain.shortest) rows = std::min(rows, std::max(current_rows, 1.0));
    // A labeled / constrained target node filters the expansion.
    const NodePattern& target = chain.nodes[i + 1];
    bool target_bound =
        !target.var.empty() && st.bound.count(target.var) > 0;
    if (target_bound) {
      rows *= kEqSelectivity;  // join back onto an existing binding
    } else if (!target.labels.empty()) {
      double label_rows = EstimateNodePattern(st, target);
      rows *= std::clamp(label_rows / node_count, kEqSelectivity, 1.0);
    }
  }
  return std::max(rows, 0.0);
}

double Selectivity(const EstimatorState& st, const Expr& expr);

double CompareSelectivity(CompareOp op) {
  switch (op) {
    case CompareOp::kEq: return kEqSelectivity;
    case CompareOp::kNe: return kNeSelectivity;
    default: return kRangeSelectivity;
  }
}

double Selectivity(const EstimatorState& st, const Expr& expr) {
  if (const auto* cmp = std::get_if<CompareExpr>(&expr.node)) {
    return CompareSelectivity(cmp->op);
  }
  if (const auto* b = std::get_if<BoolExpr>(&expr.node)) {
    double l = Selectivity(st, *b->left);
    double r = Selectivity(st, *b->right);
    return b->op == BoolOp::kAnd ? l * r : l + r - l * r;
  }
  if (const auto* n = std::get_if<NotExpr>(&expr.node)) {
    return 1.0 - Selectivity(st, *n->inner);
  }
  if (std::get_if<PatternExpr>(&expr.node) != nullptr) {
    return kPatternSelectivity;
  }
  // has()/exists(), bare booleans, anything else.
  return kEqSelectivity * 5;
}

bool IsAggregateItem(const ProjectionItem& item) {
  const auto* call = std::get_if<CallExpr>(&item.expr->node);
  return call != nullptr && call->function == "count";
}

double EstimateProjection(const EstimatorState& st, bool distinct,
                          const std::vector<ProjectionItem>& items,
                          double rows) {
  size_t aggregates = 0;
  for (const ProjectionItem& item : items) {
    aggregates += IsAggregateItem(item) ? 1 : 0;
  }
  if (aggregates > 0) {
    // All-aggregate projections collapse to one row; grouped aggregation
    // keeps one row per distinct group (sqrt heuristic).
    rows = aggregates == items.size() ? 1.0 : std::sqrt(std::max(rows, 1.0));
  }
  if (distinct) rows = std::min(rows, std::max(NodeCountOf(st), 1.0));
  return rows;
}

void BindChainVars(EstimatorState* st, const PatternChain& chain) {
  for (const NodePattern& n : chain.nodes) {
    if (!n.var.empty()) st->bound.insert(n.var);
  }
  for (const RelPattern& r : chain.rels) {
    if (!r.var.empty()) st->bound.insert(r.var);
  }
}

}  // namespace

double QError(double est_rows, double actual_rows) {
  double e = std::max(est_rows, 0.0) + 1.0;
  double a = std::max(actual_rows, 0.0) + 1.0;
  return std::max(e / a, a / e);
}

ClauseEstimates EstimateQuery(const Database& db, const Query& query) {
  ClauseEstimates out;
  out.rows.reserve(query.clauses.size());
  EstimatorState st;
  st.db = &db;
  if (db.stats != nullptr) st.catalog = db.stats->Get();
  out.used_catalog = st.catalog != nullptr;

  double rows = 0.0;  // no binding rows before the first clause
  for (const Clause& clause : query.clauses) {
    if (const auto* start = std::get_if<StartClause>(&clause)) {
      double product = std::max(rows, 1.0);
      for (const StartItem& item : start->items) {
        double item_rows = 1.0;
        switch (item.kind) {
          case StartItem::Kind::kIndexQuery:
            item_rows = EstimateIndexQuery(st, item.index_query);
            break;
          case StartItem::Kind::kByIds:
            item_rows = static_cast<double>(item.ids.size());
            break;
          case StartItem::Kind::kAllNodes:
            item_rows = NodeCountOf(st);
            break;
        }
        product *= std::max(item_rows, 0.0);
        if (!item.var.empty()) st.bound.insert(item.var);
      }
      rows = product;
    } else if (const auto* match = std::get_if<MatchClause>(&clause)) {
      for (const PatternChain& chain : match->chains) {
        rows = EstimateChain(st, chain, rows);
        BindChainVars(&st, chain);
      }
    } else if (const auto* where = std::get_if<WhereClause>(&clause)) {
      rows *= Selectivity(st, *where->predicate);
    } else if (const auto* with = std::get_if<WithClause>(&clause)) {
      rows = EstimateProjection(st, with->distinct, with->items, rows);
    } else if (const auto* ret = std::get_if<ReturnClause>(&clause)) {
      rows = EstimateProjection(st, ret->distinct, ret->items, rows);
      if (ret->skip > 0) {
        rows = std::max(rows - static_cast<double>(ret->skip), 0.0);
      }
      if (ret->limit >= 0) {
        rows = std::min(rows, static_cast<double>(ret->limit));
      }
    }
    out.rows.push_back(rows);
  }
  out.final_rows = out.rows.empty() ? 0.0 : out.rows.back();
  return out;
}

}  // namespace frappe::query
