#ifndef FRAPPE_QUERY_AST_H_
#define FRAPPE_QUERY_AST_H_

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "graph/graph_view.h"

namespace frappe::query {

// FQL (Frappé Query Language) abstract syntax. FQL is a Cypher-1.x/2.x
// style language covering everything the paper's Figures 3-6 and Table 6
// use: START index lookups, MATCH patterns with variable-length
// relationships, WHERE expressions (including pattern predicates),
// WITH [DISTINCT] pipelines and RETURN [DISTINCT] ... ORDER BY ... LIMIT.

// ---------------------------------------------------------------------------
// Literals and expressions
// ---------------------------------------------------------------------------

struct Literal {
  enum class Kind { kNull, kBool, kInt, kDouble, kString };
  Kind kind = Kind::kNull;
  bool bool_value = false;
  int64_t int_value = 0;
  double double_value = 0.0;
  std::string string_value;

  static Literal Null() { return {}; }
  static Literal Bool(bool b) {
    Literal l;
    l.kind = Kind::kBool;
    l.bool_value = b;
    return l;
  }
  static Literal Int(int64_t v) {
    Literal l;
    l.kind = Kind::kInt;
    l.int_value = v;
    return l;
  }
  static Literal Double(double v) {
    Literal l;
    l.kind = Kind::kDouble;
    l.double_value = v;
    return l;
  }
  static Literal String(std::string v) {
    Literal l;
    l.kind = Kind::kString;
    l.string_value = std::move(v);
    return l;
  }
};

// One `key: value` entry of a `{...}` property map in a pattern.
struct PropConstraint {
  std::string key;  // raw name; canonicalized at bind time
  Literal value;
};

// ---------------------------------------------------------------------------
// Patterns
// ---------------------------------------------------------------------------

struct NodePattern {
  std::string var;                  // empty when anonymous: ()
  std::vector<std::string> labels;  // concrete types or group labels
  std::vector<PropConstraint> props;
};

inline constexpr uint32_t kUnboundedLength =
    std::numeric_limits<uint32_t>::max();

struct RelPattern {
  std::string var;                 // empty when anonymous
  std::vector<std::string> types;  // alternation; empty = any type
  graph::Direction direction = graph::Direction::kOut;
  bool var_length = false;  // `*`, `*2`, `*1..3`
  uint32_t min_length = 1;
  uint32_t max_length = 1;  // kUnboundedLength for `*`
  std::vector<PropConstraint> props;
};

// node (rel node)*  — rels.size() == nodes.size() - 1.
struct PatternChain {
  std::vector<NodePattern> nodes;
  std::vector<RelPattern> rels;
  // shortestPath((a)-[:t*]->(b)): instead of enumerating paths, bind the
  // single fewest-edges path between the (bound) endpoints.
  bool shortest = false;
};

// ---------------------------------------------------------------------------
// Expressions (WHERE / WITH / RETURN)
// ---------------------------------------------------------------------------

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct LiteralExpr {
  Literal value;
};
struct VarExpr {
  std::string name;
};
struct PropExpr {
  std::string var;
  std::string key;
};
enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };
struct CompareExpr {
  CompareOp op;
  ExprPtr left;
  ExprPtr right;
};
enum class BoolOp { kAnd, kOr };
struct BoolExpr {
  BoolOp op;
  ExprPtr left;
  ExprPtr right;
};
struct NotExpr {
  ExprPtr inner;
};
// Existential pattern check, e.g. `direct -[:calls*]-> writer` (Figure 5)
// or `(n) <-[{...}]- ()` (Figure 4).
struct PatternExpr {
  PatternChain chain;
};
// count(*), count(x), count(distinct x), id(x), has(x.key)/exists(x.key).
struct CallExpr {
  std::string function;  // lowercased
  bool distinct = false;
  bool star = false;  // count(*)
  std::vector<ExprPtr> args;
};

struct Expr {
  std::variant<LiteralExpr, VarExpr, PropExpr, CompareExpr, BoolExpr, NotExpr,
               PatternExpr, CallExpr>
      node;
};

// ---------------------------------------------------------------------------
// Clauses
// ---------------------------------------------------------------------------

struct StartItem {
  enum class Kind {
    kIndexQuery,  // n=node:node_auto_index('short_name: foo')
    kByIds,       // n=node(3) or n=node(3, 5, 7)
    kAllNodes,    // n=node(*)
  };
  std::string var;
  Kind kind = Kind::kIndexQuery;
  std::string index_query;        // lucene-style payload
  std::vector<uint64_t> ids;      // for kByIds
};

struct StartClause {
  std::vector<StartItem> items;
};
struct MatchClause {
  std::vector<PatternChain> chains;
};
struct WhereClause {
  ExprPtr predicate;
};

struct ProjectionItem {
  ExprPtr expr;
  std::string alias;  // explicit AS, or derived name
};

struct WithClause {
  bool distinct = false;
  std::vector<ProjectionItem> items;
};

struct OrderItem {
  ExprPtr expr;
  bool ascending = true;
};

struct ReturnClause {
  bool distinct = false;
  std::vector<ProjectionItem> items;
  std::vector<OrderItem> order_by;
  int64_t limit = -1;  // -1 = no limit
  int64_t skip = 0;
};

using Clause = std::variant<StartClause, MatchClause, WhereClause, WithClause,
                            ReturnClause>;

// Prefix keyword ahead of the first clause: `EXPLAIN <query>` renders the
// plan without executing; `PROFILE <query>` executes for real and annotates
// the same plan with per-operator runtime stats. `ANALYZE` is a standalone
// command (no clauses): it rebuilds the cardinality stats catalog the
// estimator reads.
enum class QueryMode {
  kNormal,
  kExplain,
  kProfile,
  kAnalyze,
};

struct Query {
  QueryMode mode = QueryMode::kNormal;
  std::vector<Clause> clauses;
};

}  // namespace frappe::query

#endif  // FRAPPE_QUERY_AST_H_
