#include "query/executor.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "common/string_util.h"
#include "graph/analytics.h"
#include "graph/traversal.h"
#include "obs/metrics.h"
#include "obs/query_registry.h"
#include "obs/resource.h"
#include "obs/trace.h"
#include "query/fast_path.h"

namespace frappe::query {

// ---------------------------------------------------------------------------
// ResultValue
// ---------------------------------------------------------------------------

namespace {

int CompareScalars(const graph::Value& a, const graph::Value& b,
                   const graph::StringPool* pool) {
  using graph::ValueType;
  if (a.is_numeric() && b.is_numeric()) {
    double x = a.NumericValue(), y = b.NumericValue();
    if (x < y) return -1;
    if (x > y) return 1;
    return 0;
  }
  if (a.type() != b.type()) {
    return static_cast<int>(a.type()) < static_cast<int>(b.type()) ? -1 : 1;
  }
  switch (a.type()) {
    case ValueType::kBool:
      return (a.AsBool() ? 1 : 0) - (b.AsBool() ? 1 : 0);
    case ValueType::kString: {
      if (pool != nullptr) {
        return pool->Resolve(a.AsString())
            .compare(pool->Resolve(b.AsString()));
      }
      // Without a pool fall back to interning order (stable, not
      // lexicographic) — sufficient for DISTINCT / grouping.
      if (a.AsString().id < b.AsString().id) return -1;
      if (a.AsString().id > b.AsString().id) return 1;
      return 0;
    }
    default:
      return 0;
  }
}

int ComparePools(const ResultValue& a, const ResultValue& b,
                 const graph::StringPool* pool) {
  using Kind = ResultValue::Kind;
  // Nulls last.
  if (a.kind == Kind::kNull || b.kind == Kind::kNull) {
    if (a.kind == b.kind) return 0;
    return a.kind == Kind::kNull ? 1 : -1;
  }
  if (a.kind != b.kind) {
    return static_cast<int>(a.kind) < static_cast<int>(b.kind) ? -1 : 1;
  }
  switch (a.kind) {
    case Kind::kNode:
      return a.node < b.node ? -1 : (a.node > b.node ? 1 : 0);
    case Kind::kEdge:
      return a.edge < b.edge ? -1 : (a.edge > b.edge ? 1 : 0);
    case Kind::kValue:
      return CompareScalars(a.value, b.value, pool);
    case Kind::kEdgeList: {
      if (a.edges != b.edges) return a.edges < b.edges ? -1 : 1;
      return 0;
    }
    default:
      return 0;
  }
}

}  // namespace

int ResultValue::Compare(const ResultValue& a, const ResultValue& b) {
  return ComparePools(a, b, nullptr);
}

bool ResultValue::operator==(const ResultValue& other) const {
  return Compare(*this, other) == 0;
}

std::string ResultValue::ToString(const Database& db) const {
  const graph::GraphView& view = *db.view;
  switch (kind) {
    case Kind::kNull:
      return "null";
    case Kind::kNode: {
      std::string out = "(#" + std::to_string(node);
      if (view.NodeExists(node)) {
        out += ":" + std::string(view.NodeTypeName(node));
        if (db.display_name_key != graph::kInvalidKey) {
          std::string_view name = view.GetNodeString(node,
                                                     db.display_name_key);
          if (!name.empty()) out += " " + std::string(name);
        }
      }
      return out + ")";
    }
    case Kind::kEdge: {
      if (!view.EdgeExists(edge)) return "[#" + std::to_string(edge) + "]";
      graph::Edge e = view.GetEdge(edge);
      return "[#" + std::to_string(edge) + ":" +
             std::string(view.EdgeTypeName(edge)) + " " +
             std::to_string(e.src) + "->" + std::to_string(e.dst) + "]";
    }
    case Kind::kValue:
      return value.ToString(view.strings());
    case Kind::kEdgeList:
      return "[" + std::to_string(edges.size()) + " rels]";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

namespace {

using graph::Direction;
using graph::EdgeId;
using graph::KeyId;
using graph::NodeId;
using graph::TypeId;

using Row = std::vector<ResultValue>;

// Lexicographic total order over rows, used for DISTINCT and grouping.
struct RowLess {
  bool operator()(const Row& a, const Row& b) const {
    for (size_t i = 0; i < std::min(a.size(), b.size()); ++i) {
      int c = ResultValue::Compare(a[i], b[i]);
      if (c != 0) return c < 0;
    }
    return a.size() < b.size();
  }
};

graph::Direction Flip(graph::Direction dir) {
  switch (dir) {
    case Direction::kOut:
      return Direction::kIn;
    case Direction::kIn:
      return Direction::kOut;
    default:
      return Direction::kBoth;
  }
}

// A node pattern with names resolved against the database.
struct BoundNodePattern {
  int slot = -1;                // row slot for named vars, -1 if anonymous
  bool any_type = true;
  std::vector<TypeId> types;    // allowed types when !any_type
  bool impossible = false;      // unknown label / un-internable string prop
  std::vector<std::pair<KeyId, graph::Value>> props;
};

struct BoundRelPattern {
  int slot = -1;
  bool any_type = true;
  std::vector<TypeId> types;
  bool impossible = false;
  Direction direction = Direction::kOut;
  bool var_length = false;
  uint32_t min_length = 1;
  uint32_t max_length = 1;
  std::vector<std::pair<KeyId, graph::Value>> props;

  bool AllowsType(TypeId t) const {
    if (any_type) return true;
    for (TypeId allowed : types) {
      if (allowed == t) return true;
    }
    return false;
  }
};

struct BoundChain {
  std::vector<BoundNodePattern> nodes;
  std::vector<BoundRelPattern> rels;
  bool shortest = false;
};

// One expansion step in the chosen matching order.
struct MatchStep {
  size_t from_node;  // index into BoundChain::nodes, already bound
  size_t to_node;    // index to bind
  size_t rel;        // index into BoundChain::rels
  bool flipped;      // expansion runs against the pattern's direction
};

class Engine {
 public:
  Engine(const Database& db, const Query& query, const ExecOptions& options)
      : db_(db),
        query_(query),
        options_(options),
        tracker_(obs::ResourceTracker::Current()) {
    if (options_.deadline_ms > 0) {
      deadline_ = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(options_.deadline_ms);
      has_deadline_ = true;
    }
  }

  Result<QueryResult> Run() {
    const auto run_start = std::chrono::steady_clock::now();
    rows_.push_back(Row(width_));
    QueryResult out;
    bool returned = false;
    for (size_t clause_index = 0; clause_index < query_.clauses.size();
         ++clause_index) {
      const Clause& clause = query_.clauses[clause_index];
      // Span names are literals, picked by clause kind ahead of the visit.
      const char* span_name = std::visit(
          [](const auto& c) -> const char* {
            using T = std::decay_t<decltype(c)>;
            if constexpr (std::is_same_v<T, StartClause>) {
              return "executor.start";
            } else if constexpr (std::is_same_v<T, MatchClause>) {
              return "executor.match";
            } else if constexpr (std::is_same_v<T, WhereClause>) {
              return "executor.where";
            } else if constexpr (std::is_same_v<T, WithClause>) {
              return "executor.with";
            } else {
              return "executor.return";
            }
          },
          clause);
      obs::Span clause_span(span_name);
      if (options_.progress != nullptr) {
        options_.progress->op.store(span_name, std::memory_order_relaxed);
        PublishProgress();
      }
      const bool profile = options_.profile;
      const uint64_t steps_before = steps_;
      const DbHits hits_before = hits_;
      std::chrono::steady_clock::time_point clause_start;
      if (profile) {
        fast_path_op_ = false;
        fp_frontier_sizes_.clear();
        fp_level_pull_.clear();
        fp_level_bitmap_.clear();
        fp_direction_switches_ = 0;
        fp_lanes_ = 0;
        clause_start = std::chrono::steady_clock::now();
      }
      Status status = std::visit(
          [&](const auto& c) -> Status {
            using T = std::decay_t<decltype(c)>;
            if constexpr (std::is_same_v<T, StartClause>) {
              return ExecStart(c);
            } else if constexpr (std::is_same_v<T, MatchClause>) {
              return ExecMatch(c, clause_index);
            } else if constexpr (std::is_same_v<T, WhereClause>) {
              return ExecWhere(c);
            } else if constexpr (std::is_same_v<T, WithClause>) {
              return ExecWith(c);
            } else {
              returned = true;
              return ExecReturn(c, &out);
            }
          },
          clause);
      FRAPPE_RETURN_IF_ERROR(status);
      if (profile) {
        OperatorStats op;
        op.clause_index = clause_index;
        // After RETURN ran, `rows_` is stale — the projected rows moved
        // into the result.
        op.rows = returned ? out.rows.size() : rows_.size();
        op.steps = steps_ - steps_before;
        op.db_hits = hits_ - hits_before;
        op.time_ms = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - clause_start)
                         .count();
        op.fast_path = fast_path_op_;
        op.frontier_sizes = fp_frontier_sizes_;
        op.level_pull = fp_level_pull_;
        op.level_bitmap = fp_level_bitmap_;
        op.direction_switches = fp_direction_switches_;
        op.lanes = fp_lanes_;
        out.stats.operators.push_back(std::move(op));
      }
    }
    if (!returned) {
      return Status::InvalidArgument("query has no RETURN clause");
    }
    out.steps = steps_;
    out.stats.steps = steps_;
    out.stats.db_hits = hits_;
    out.stats.fast_path_taken = fast_path_taken_;
    // Bytes read from graph storage: the CSR kernels report exact packed
    // bytes; the enumerating path is approximated from db-hit counts times
    // the packed record widths each hit touches.
    constexpr uint64_t kNodeScanBytes = 8;
    constexpr uint64_t kEdgeScanBytes = 16;
    constexpr uint64_t kPropScanBytes = 16;
    out.stats.scanned_bytes =
        csr_scanned_bytes_ + hits_.nodes * kNodeScanBytes +
        (hits_.edges - csr_edge_hits_) * kEdgeScanBytes +
        hits_.properties * kPropScanBytes;
    if (tracker_ != nullptr) {
      tracker_->AddScannedBytes(out.stats.scanned_bytes);
    }
    out.stats.elapsed_ms = std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - run_start)
                               .count();
    return out;
  }

 private:
  // --- budget ---

  // The deadline clock is read once every this many steps, not per
  // candidate row — steady_clock::now() is far too expensive for the inner
  // match loop. Power of two so the test is a mask, and small enough that
  // enforcement lags the deadline by at most one interval of cheap work
  // (the regression test pins the observed tolerance).
  static constexpr uint64_t kDeadlineCheckInterval = 1024;

  Status Tick() {
    ++steps_;
    if (options_.max_steps > 0 && steps_ > options_.max_steps) {
      return Status::ResourceExhausted(
          "query exceeded step budget of " +
          std::to_string(options_.max_steps));
    }
    // Progress publication, the cancel token, and the deadline clock all
    // share one cadence: cheap inner-loop work pays only the mask test.
    if ((steps_ & (kDeadlineCheckInterval - 1)) == 0) {
      if (options_.progress != nullptr) PublishProgress();
      if (options_.cancel != nullptr &&
          options_.cancel->load(std::memory_order_relaxed)) {
        return Status::Cancelled("query cancelled");
      }
      if (has_deadline_ && std::chrono::steady_clock::now() > deadline_) {
        return Status::DeadlineExceeded(
            "query exceeded deadline of " +
            std::to_string(options_.deadline_ms) + "ms");
      }
      if (tracker_ != nullptr && tracker_->OverBudget()) {
        return Status::ResourceExhausted(
            "query exceeded memory budget of " +
            std::to_string(tracker_->budget_bytes()) + " bytes");
      }
    }
    return Status::OK();
  }

  void PublishProgress() {
    obs::QueryProgress& p = *options_.progress;
    p.steps.store(steps_, std::memory_order_relaxed);
    p.db_hits.store(hits_.Total(), std::memory_order_relaxed);
    p.rows.store(rows_.size(), std::memory_order_relaxed);
  }

  // --- variable slots ---

  int SlotOf(const std::string& var) {
    auto it = slots_.find(var);
    if (it != slots_.end()) return static_cast<int>(it->second);
    size_t slot = width_++;
    slots_.emplace(var, slot);
    for (Row& row : rows_) row.resize(width_);
    return static_cast<int>(slot);
  }
  int FindSlot(const std::string& var) const {
    auto it = slots_.find(var);
    return it == slots_.end() ? -1 : static_cast<int>(it->second);
  }

  // --- clause execution ---

  Status ExecStart(const StartClause& clause) {
    for (const StartItem& item : clause.items) {
      std::vector<NodeId> nodes;
      switch (item.kind) {
        case StartItem::Kind::kIndexQuery: {
          if (db_.name_index == nullptr) {
            return Status::FailedPrecondition(
                "START index lookup requires a name index");
          }
          FRAPPE_ASSIGN_OR_RETURN(nodes,
                                  db_.name_index->Query(item.index_query));
          break;
        }
        case StartItem::Kind::kByIds:
          for (uint64_t id : item.ids) {
            NodeId node = static_cast<NodeId>(id);
            if (!db_.view->NodeExists(node)) {
              return Status::NotFound("node " + std::to_string(id) +
                                      " does not exist");
            }
            nodes.push_back(node);
          }
          break;
        case StartItem::Kind::kAllNodes:
          db_.view->ForEachNode([&](NodeId id) { nodes.push_back(id); });
          break;
      }
      hits_.nodes += nodes.size();
      int slot = SlotOf(item.var);
      std::vector<Row> next;
      next.reserve(rows_.size() * nodes.size());
      for (const Row& row : rows_) {
        for (NodeId node : nodes) {
          FRAPPE_RETURN_IF_ERROR(Tick());
          Row extended = row;
          extended[slot] = ResultValue::Node(node);
          next.push_back(std::move(extended));
        }
      }
      rows_ = std::move(next);
    }
    return Status::OK();
  }

  Status ExecMatch(const MatchClause& clause, size_t clause_index) {
    // Resolve all chains once.
    std::vector<BoundChain> chains;
    for (const PatternChain& chain : clause.chains) {
      FRAPPE_ASSIGN_OR_RETURN(BoundChain bound, BindChain(chain));
      chains.push_back(std::move(bound));
    }
    // CSR closure fast path: a lone deep variable-length hop whose path
    // multiplicity is collapsed downstream can be answered with the
    // parallel frontier kernel instead of enumerating every path. Only for
    // a single-chain MATCH — multiple chains share edge-distinctness via
    // `used`, which the closure does not model.
    bool try_fast_path =
        options_.use_csr_fast_path && db_.csr != nullptr &&
        clause.chains.size() == 1 &&
        ChainEligibleForCsrClosure(query_, clause_index, clause.chains[0])
            .eligible;
    std::vector<Row> next;
    for (Row& row : rows_) {
      if (try_fast_path) {
        FRAPPE_ASSIGN_OR_RETURN(bool handled,
                                TryCsrClosure(chains[0], &row, &next));
        if (handled) continue;
      }
      std::unordered_set<EdgeId> used;
      FRAPPE_RETURN_IF_ERROR(MatchChainList(
          chains, 0, &row, &used, [&](const Row& matched) {
            next.push_back(matched);
            return Status::OK();
          }));
    }
    rows_ = std::move(next);
    return Status::OK();
  }

  // Attempts to answer an eligible variable-length chain for one row with
  // the parallel CSR closure kernel. Returns true when the row was handled
  // (its result rows, possibly none, were appended to `out`); false falls
  // back to path enumeration — used whenever the runtime binding shape is
  // not the "exactly one endpoint bound, target unbound and named" form
  // the kernel answers.
  Result<bool> TryCsrClosure(const BoundChain& chain, Row* row,
                             std::vector<Row>* out) {
    const BoundNodePattern& a = chain.nodes[0];
    const BoundNodePattern& b = chain.nodes[1];
    const BoundRelPattern& rel = chain.rels[0];
    if (rel.impossible || a.impossible || b.impossible) return false;

    // -1 = unbound slot, kInvalidNode-as-weird handled via the bool.
    auto slot_node = [&](const BoundNodePattern& p, bool* weird) -> NodeId {
      if (p.slot < 0 || p.slot >= static_cast<int>(row->size())) {
        return graph::kInvalidNode;
      }
      const ResultValue& v = (*row)[p.slot];
      if (v.is_null()) return graph::kInvalidNode;
      if (v.kind != ResultValue::Kind::kNode) *weird = true;
      return v.node;
    };
    bool weird = false;
    NodeId from = slot_node(a, &weird);
    NodeId to = slot_node(b, &weird);
    if (weird) return false;  // non-node binding: let the slow path decide

    bool reversed;
    if (from != graph::kInvalidNode && to == graph::kInvalidNode) {
      reversed = false;
    } else if (to != graph::kInvalidNode && from == graph::kInvalidNode) {
      reversed = true;
    } else {
      return false;  // both or neither endpoint bound
    }
    const BoundNodePattern& anchor = reversed ? b : a;
    const BoundNodePattern& target = reversed ? a : b;
    if (target.slot < 0) return false;  // anonymous target
    NodeId seed = reversed ? to : from;

    FRAPPE_RETURN_IF_ERROR(Tick());
    if (!NodeSatisfies(anchor, seed)) return true;  // handled: no rows

    graph::EdgeFilter filter;
    filter.direction = reversed ? Flip(rel.direction) : rel.direction;
    if (!rel.any_type) filter.types = rel.types;

    graph::analytics::Options opt;
    opt.threads = options_.threads;
    opt.cancel = options_.cancel;
    if (rel.max_length != kUnboundedLength) opt.max_depth = rel.max_length;
    // Hand the kernel the remaining budget so a breach surfaces with the
    // same codes (and comparable timing) as the enumerating path.
    if (options_.max_steps > 0) {
      opt.max_steps =
          options_.max_steps > steps_ ? options_.max_steps - steps_ : 1;
    }
    if (has_deadline_) {
      int64_t remaining_ms =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              deadline_ - std::chrono::steady_clock::now())
              .count();
      opt.deadline_ms = remaining_ms > 0 ? remaining_ms : 1;
    }

    const graph::CsrView& csr = db_.csr->Get(*db_.view);
    graph::analytics::Metrics metrics;
    auto members = [&] {
      FRAPPE_TRACE_SPAN("executor.csr_closure");
      return graph::analytics::ParallelClosure(csr, {seed}, filter, opt,
                                               &metrics);
    }();
    steps_ += metrics.steps;
    hits_.edges += metrics.steps;  // each kernel step scans one edge
    csr_edge_hits_ += metrics.steps;
    csr_scanned_bytes_ += metrics.scanned_bytes;
    fast_path_taken_ = true;
    fast_path_op_ = true;
    // Frontier trajectory of the widest run this clause dispatched (one
    // kernel call per input row; typically exactly one).
    if (metrics.frontier_sizes.size() > fp_frontier_sizes_.size()) {
      fp_frontier_sizes_ = metrics.frontier_sizes;
      // Direction decisions ride with the frontier trajectory they
      // annotate, so PROFILE shows one consistent run.
      fp_level_pull_ = metrics.level_pull;
      fp_level_bitmap_ = metrics.level_bitmap;
      fp_direction_switches_ = metrics.direction_switches;
    }
    fp_lanes_ = std::max(fp_lanes_, metrics.lanes_used);
    if (!members.ok()) {
      // Re-phrase kernel budget errors in the executor's vocabulary.
      // Memory-budget breaches pass through untouched: their message
      // already names the cap, and rewriting them as a step-budget error
      // would misattribute the failure.
      if (members.status().code() == StatusCode::kResourceExhausted) {
        if (members.status().message().find("memory") != std::string::npos) {
          return members.status();
        }
        return Status::ResourceExhausted(
            "query exceeded step budget of " +
            std::to_string(options_.max_steps));
      }
      if (members.status().code() == StatusCode::kDeadlineExceeded) {
        return Status::DeadlineExceeded(
            "query exceeded deadline of " +
            std::to_string(options_.deadline_ms) + "ms");
      }
      if (members.status().code() == StatusCode::kCancelled) {
        return Status::Cancelled("query cancelled");
      }
      return members.status();
    }

    auto emit = [&](NodeId node) -> Status {
      if (!NodeSatisfies(target, node)) return Status::OK();
      FRAPPE_RETURN_IF_ERROR(Tick());
      Row extended = *row;
      extended[target.slot] = ResultValue::Node(node);
      out->push_back(std::move(extended));
      return Status::OK();
    };
    // `*0..` includes the zero-length path unless the closure already
    // reached the seed through a cycle.
    if (rel.min_length == 0 &&
        !std::binary_search(members->begin(), members->end(), seed)) {
      FRAPPE_RETURN_IF_ERROR(emit(seed));
    }
    for (NodeId node : *members) {
      FRAPPE_RETURN_IF_ERROR(emit(node));
    }
    return true;
  }

  Status ExecWhere(const WhereClause& clause) {
    std::vector<Row> next;
    for (const Row& row : rows_) {
      FRAPPE_ASSIGN_OR_RETURN(bool keep, EvalPredicate(*clause.predicate, row));
      if (keep) next.push_back(row);
    }
    rows_ = std::move(next);
    return Status::OK();
  }

  Status ExecWith(const WithClause& clause) {
    std::vector<std::string> columns;
    std::vector<Row> projected;
    FRAPPE_RETURN_IF_ERROR(
        Project(clause.items, clause.distinct, &columns, &projected));
    // The projected columns become the new variable universe.
    slots_.clear();
    width_ = 0;
    for (const std::string& name : columns) SlotOf(name);
    rows_ = std::move(projected);
    for (Row& row : rows_) row.resize(width_);
    return Status::OK();
  }

  Status ExecReturn(const ReturnClause& clause, QueryResult* out) {
    std::vector<Row> projected;
    FRAPPE_RETURN_IF_ERROR(
        Project(clause.items, clause.distinct, &out->columns, &projected));
    if (!clause.order_by.empty()) {
      FRAPPE_RETURN_IF_ERROR(
          OrderRows(clause.order_by, out->columns, &projected));
    }
    // SKIP / LIMIT.
    size_t begin = std::min(projected.size(),
                            static_cast<size_t>(std::max<int64_t>(
                                clause.skip, 0)));
    size_t end = projected.size();
    if (clause.limit >= 0) {
      end = std::min(end, begin + static_cast<size_t>(clause.limit));
    }
    out->rows.assign(std::make_move_iterator(projected.begin() + begin),
                     std::make_move_iterator(projected.begin() + end));
    return Status::OK();
  }

  // --- projection / aggregation ---

  static bool IsCountCall(const Expr& expr) {
    const auto* call = std::get_if<CallExpr>(&expr.node);
    return call != nullptr && call->function == "count";
  }

  Status Project(const std::vector<ProjectionItem>& items, bool distinct,
                 std::vector<std::string>* columns, std::vector<Row>* out) {
    columns->clear();
    bool has_aggregate = false;
    for (const ProjectionItem& item : items) {
      columns->push_back(item.alias);
      if (IsCountCall(*item.expr)) has_aggregate = true;
    }

    if (!has_aggregate) {
      out->clear();
      out->reserve(rows_.size());
      for (const Row& row : rows_) {
        FRAPPE_RETURN_IF_ERROR(Tick());
        Row projected;
        projected.reserve(items.size());
        for (const ProjectionItem& item : items) {
          FRAPPE_ASSIGN_OR_RETURN(ResultValue v, Eval(*item.expr, row));
          projected.push_back(std::move(v));
        }
        out->push_back(std::move(projected));
      }
      if (distinct) DedupeRows(out);
      return Status::OK();
    }

    // Aggregation: group rows by the non-aggregate items (implicit Cypher
    // grouping), compute counts per group.
    struct Group {
      Row key;                        // values of non-aggregate items
      uint64_t star_count = 0;
      std::vector<uint64_t> arg_counts;                   // per aggregate item
      std::vector<std::set<Row, RowLess>> distinct_sets;  // count(distinct x)
    };
    std::map<Row, Group, RowLess> groups;

    std::vector<size_t> agg_positions;
    for (size_t i = 0; i < items.size(); ++i) {
      if (IsCountCall(*items[i].expr)) agg_positions.push_back(i);
    }

    for (const Row& row : rows_) {
      FRAPPE_RETURN_IF_ERROR(Tick());
      Row key;
      for (const ProjectionItem& item : items) {
        if (IsCountCall(*item.expr)) continue;
        FRAPPE_ASSIGN_OR_RETURN(ResultValue v, Eval(*item.expr, row));
        key.push_back(std::move(v));
      }
      Group& group = groups[key];
      if (group.arg_counts.empty()) {
        group.key = key;
        group.arg_counts.resize(agg_positions.size(), 0);
        group.distinct_sets.resize(agg_positions.size());
      }
      ++group.star_count;
      for (size_t a = 0; a < agg_positions.size(); ++a) {
        const auto& call =
            std::get<CallExpr>(items[agg_positions[a]].expr->node);
        if (call.star) continue;
        if (call.args.size() != 1) {
          return Status::InvalidArgument("count() takes one argument or *");
        }
        FRAPPE_ASSIGN_OR_RETURN(ResultValue v, Eval(*call.args[0], row));
        if (v.is_null()) continue;
        if (call.distinct) {
          group.distinct_sets[a].insert(Row{v});
        } else {
          ++group.arg_counts[a];
        }
      }
    }

    // Cypher semantics: a global aggregate (no grouping keys) over zero
    // input rows still yields one row of zero counts.
    if (groups.empty() && agg_positions.size() == items.size()) {
      Row zeros(items.size(),
                ResultValue::Scalar(graph::Value::Int(0)));
      out->clear();
      out->push_back(std::move(zeros));
      return Status::OK();
    }
    out->clear();
    for (auto& [key, group] : groups) {
      Row row(items.size());
      size_t key_idx = 0, agg_idx = 0;
      for (size_t i = 0; i < items.size(); ++i) {
        const auto* call = std::get_if<CallExpr>(&items[i].expr->node);
        if (call != nullptr && call->function == "count") {
          uint64_t count;
          if (call->star) {
            count = group.star_count;
          } else if (call->distinct) {
            count = group.distinct_sets[agg_idx].size();
          } else {
            count = group.arg_counts[agg_idx];
          }
          ++agg_idx;
          row[i] = ResultValue::Scalar(
              graph::Value::Int(static_cast<int64_t>(count)));
        } else {
          row[i] = group.key[key_idx++];
        }
      }
      out->push_back(std::move(row));
    }
    if (distinct) DedupeRows(out);
    return Status::OK();
  }

  void DedupeRows(std::vector<Row>* rows) {
    std::sort(rows->begin(), rows->end(), RowLess());
    rows->erase(std::unique(rows->begin(), rows->end(),
                            [](const Row& a, const Row& b) {
                              if (a.size() != b.size()) return false;
                              for (size_t i = 0; i < a.size(); ++i) {
                                if (!(a[i] == b[i])) return false;
                              }
                              return true;
                            }),
                rows->end());
  }

  Status OrderRows(const std::vector<OrderItem>& order,
                   const std::vector<std::string>& columns,
                   std::vector<Row>* rows) {
    // Each order expression must reference an output column (optionally a
    // property of one).
    struct SortKey {
      int column;
      std::string prop;  // empty: the column value itself
      bool ascending;
    };
    std::vector<SortKey> keys;
    for (const OrderItem& item : order) {
      SortKey key;
      key.ascending = item.ascending;
      if (const auto* var = std::get_if<VarExpr>(&item.expr->node)) {
        key.column = ColumnIndex(columns, var->name);
        if (key.column < 0) {
          return Status::InvalidArgument("ORDER BY references '" + var->name +
                                         "' which is not a returned column");
        }
      } else if (const auto* prop = std::get_if<PropExpr>(&item.expr->node)) {
        key.column = ColumnIndex(columns, prop->var);
        if (key.column < 0) {
          // Maybe the whole `var.key` string is itself a column alias.
          key.column = ColumnIndex(columns, prop->var + "." + prop->key);
          if (key.column < 0) {
            return Status::InvalidArgument(
                "ORDER BY references '" + prop->var +
                "' which is not a returned column");
          }
        } else {
          key.prop = prop->key;
        }
      } else {
        return Status::InvalidArgument(
            "ORDER BY supports column and property references only");
      }
      keys.push_back(std::move(key));
    }
    const graph::StringPool* pool = &db_.view->strings();
    auto key_value = [&](const Row& row, const SortKey& key) -> ResultValue {
      const ResultValue& base = row[key.column];
      if (key.prop.empty()) return base;
      return GetPropertyOf(base, key.prop);
    };
    std::stable_sort(rows->begin(), rows->end(),
                     [&](const Row& a, const Row& b) {
                       for (const SortKey& key : keys) {
                         int c = ComparePools(key_value(a, key),
                                              key_value(b, key), pool);
                         if (c != 0) return key.ascending ? c < 0 : c > 0;
                       }
                       return false;
                     });
    return Status::OK();
  }

  static int ColumnIndex(const std::vector<std::string>& columns,
                         const std::string& name) {
    for (size_t i = 0; i < columns.size(); ++i) {
      if (columns[i] == name) return static_cast<int>(i);
    }
    return -1;
  }

  // --- pattern binding ---

  Result<graph::Value> LiteralToValue(const Literal& lit, bool* impossible) {
    switch (lit.kind) {
      case Literal::Kind::kNull:
        return graph::Value::Null();
      case Literal::Kind::kBool:
        return graph::Value::Bool(lit.bool_value);
      case Literal::Kind::kInt:
        return graph::Value::Int(lit.int_value);
      case Literal::Kind::kDouble:
        return graph::Value::Double(lit.double_value);
      case Literal::Kind::kString: {
        auto ref = db_.view->strings().Find(lit.string_value);
        if (!ref.has_value()) {
          // String never interned: no stored property can equal it.
          *impossible = true;
          return graph::Value::Null();
        }
        return graph::Value::String(*ref);
      }
    }
    return graph::Value::Null();
  }

  Result<BoundNodePattern> BindNode(const NodePattern& pattern) {
    BoundNodePattern bound;
    if (!pattern.var.empty()) bound.slot = SlotOf(pattern.var);
    if (!pattern.labels.empty()) {
      bound.any_type = false;
      // Multiple labels intersect: (n:container:symbol).
      bool first = true;
      for (const std::string& label : pattern.labels) {
        std::vector<TypeId> resolved = db_.resolve_label
                                           ? db_.resolve_label(label)
                                           : std::vector<TypeId>();
        std::sort(resolved.begin(), resolved.end());
        if (first) {
          bound.types = std::move(resolved);
          first = false;
        } else {
          std::vector<TypeId> intersection;
          std::set_intersection(bound.types.begin(), bound.types.end(),
                                resolved.begin(), resolved.end(),
                                std::back_inserter(intersection));
          bound.types = std::move(intersection);
        }
      }
      if (bound.types.empty()) bound.impossible = true;
    }
    for (const PropConstraint& prop : pattern.props) {
      std::optional<KeyId> key = db_.resolve_property
                                     ? db_.resolve_property(prop.key)
                                     : std::nullopt;
      if (!key.has_value()) {
        bound.impossible = true;
        continue;
      }
      bool impossible = false;
      FRAPPE_ASSIGN_OR_RETURN(graph::Value value,
                              LiteralToValue(prop.value, &impossible));
      if (impossible) {
        bound.impossible = true;
        continue;
      }
      bound.props.emplace_back(*key, value);
    }
    return bound;
  }

  Result<BoundRelPattern> BindRel(const RelPattern& pattern) {
    BoundRelPattern bound;
    if (!pattern.var.empty()) bound.slot = SlotOf(pattern.var);
    bound.direction = pattern.direction;
    bound.var_length = pattern.var_length;
    bound.min_length = pattern.min_length;
    bound.max_length = pattern.max_length;
    if (!pattern.types.empty()) {
      bound.any_type = false;
      for (const std::string& type : pattern.types) {
        std::optional<TypeId> id = db_.resolve_edge_type
                                       ? db_.resolve_edge_type(type)
                                       : std::nullopt;
        if (id.has_value()) bound.types.push_back(*id);
      }
      if (bound.types.empty()) bound.impossible = true;
    }
    for (const PropConstraint& prop : pattern.props) {
      std::optional<KeyId> key = db_.resolve_property
                                     ? db_.resolve_property(prop.key)
                                     : std::nullopt;
      if (!key.has_value()) {
        bound.impossible = true;
        continue;
      }
      bool impossible = false;
      FRAPPE_ASSIGN_OR_RETURN(graph::Value value,
                              LiteralToValue(prop.value, &impossible));
      if (impossible) {
        bound.impossible = true;
        continue;
      }
      bound.props.emplace_back(*key, value);
    }
    return bound;
  }

  Result<BoundChain> BindChain(const PatternChain& chain) {
    BoundChain bound;
    bound.shortest = chain.shortest;
    for (const NodePattern& node : chain.nodes) {
      FRAPPE_ASSIGN_OR_RETURN(BoundNodePattern b, BindNode(node));
      bound.nodes.push_back(std::move(b));
    }
    for (const RelPattern& rel : chain.rels) {
      FRAPPE_ASSIGN_OR_RETURN(BoundRelPattern b, BindRel(rel));
      bound.rels.push_back(std::move(b));
    }
    return bound;
  }

  // --- pattern matching ---

  bool NodeSatisfies(const BoundNodePattern& pattern, NodeId node) const {
    if (pattern.impossible) return false;
    ++hits_.nodes;
    if (!pattern.any_type) {
      TypeId type = db_.view->NodeType(node);
      bool ok = false;
      for (TypeId t : pattern.types) {
        if (t == type) {
          ok = true;
          break;
        }
      }
      if (!ok) return false;
    }
    for (const auto& [key, value] : pattern.props) {
      ++hits_.properties;
      if (!(db_.view->GetNodeProperty(node, key) == value)) return false;
    }
    return true;
  }

  bool EdgeSatisfies(const BoundRelPattern& pattern, EdgeId edge) const {
    if (pattern.impossible) return false;
    ++hits_.edges;
    if (!pattern.AllowsType(db_.view->GetEdge(edge).type)) return false;
    for (const auto& [key, value] : pattern.props) {
      ++hits_.properties;
      if (!(db_.view->GetEdgeProperty(edge, key) == value)) return false;
    }
    return true;
  }

  // If one of the pattern's property constraints is backed by the auto
  // name index (a string-valued indexed key), returns the exact candidate
  // set instead of scanning — Neo4j 2.x's index-backed MATCH.
  std::optional<std::vector<NodeId>> IndexCandidates(
      const BoundNodePattern& pattern) const {
    if (db_.name_index == nullptr || pattern.impossible) return std::nullopt;
    for (const auto& [key, value] : pattern.props) {
      if (value.type() != graph::ValueType::kString) continue;
      for (const auto& spec : db_.name_index->fields()) {
        if (!spec.is_type_field && spec.key == key) {
          return db_.name_index->Lookup(
              spec.name, db_.view->strings().Resolve(value.AsString()));
        }
      }
    }
    return std::nullopt;
  }

  bool HasIndexableProp(const BoundNodePattern& pattern) const {
    if (db_.name_index == nullptr) return false;
    for (const auto& [key, value] : pattern.props) {
      if (value.type() != graph::ValueType::kString) continue;
      for (const auto& spec : db_.name_index->fields()) {
        if (!spec.is_type_field && spec.key == key) return true;
      }
    }
    return false;
  }

  using RowSink = std::function<Status(const Row&)>;

  Status MatchChainList(const std::vector<BoundChain>& chains, size_t index,
                        Row* row, std::unordered_set<EdgeId>* used,
                        const RowSink& sink) {
    if (index == chains.size()) return sink(*row);
    return MatchChain(chains[index], row, used, [&](Row* matched) {
      return MatchChainList(chains, index + 1, matched, used, sink);
    });
  }

  using ChainSink = std::function<Status(Row*)>;

  // Matches one chain against the row, invoking `sink` for every complete
  // assignment. `row` is restored on return.
  Status MatchChain(const BoundChain& chain, Row* row,
                    std::unordered_set<EdgeId>* used, const ChainSink& sink) {
    if (chain.shortest) return MatchShortestPath(chain, row, sink);
    // Pick the cheapest anchor node:
    // bound var < index-backed property < labeled < full scan.
    size_t pivot = 0;
    int best_score = 100;
    for (size_t i = 0; i < chain.nodes.size(); ++i) {
      const BoundNodePattern& p = chain.nodes[i];
      int score = 3;
      if (p.slot >= 0 && !(*row)[p.slot].is_null()) {
        score = 0;
      } else if (HasIndexableProp(p)) {
        score = 1;
      } else if (!p.any_type) {
        score = 2;
      }
      if (score < best_score) {
        best_score = score;
        pivot = i;
      }
    }
    // Build the expansion order: rightward from the pivot, then leftward.
    std::vector<MatchStep> steps;
    for (size_t i = pivot; i + 1 < chain.nodes.size(); ++i) {
      steps.push_back(MatchStep{i, i + 1, i, /*flipped=*/false});
    }
    for (size_t i = pivot; i > 0; --i) {
      steps.push_back(MatchStep{i, i - 1, i - 1, /*flipped=*/true});
    }

    std::vector<NodeId> binding(chain.nodes.size(), graph::kInvalidNode);
    const BoundNodePattern& anchor = chain.nodes[pivot];
    if (anchor.slot >= 0 && !(*row)[anchor.slot].is_null()) {
      const ResultValue& v = (*row)[anchor.slot];
      if (v.kind != ResultValue::Kind::kNode) {
        return Status::InvalidArgument(
            "pattern variable is bound to a non-node value");
      }
      FRAPPE_RETURN_IF_ERROR(Tick());
      if (!NodeSatisfies(anchor, v.node)) return Status::OK();
      return BindAndStep(chain, steps, 0, pivot, v.node, &binding, row, used,
                         sink);
    }
    // Enumerate candidates: label index when available, full scan otherwise.
    Status status = Status::OK();
    auto try_candidate = [&](NodeId node) -> bool {
      status = Tick();
      if (!status.ok()) return false;
      if (!NodeSatisfies(anchor, node)) return true;
      status = BindAndStep(chain, steps, 0, pivot, node, &binding, row, used,
                           sink);
      return status.ok();
    };
    if (std::optional<std::vector<NodeId>> seek = IndexCandidates(anchor)) {
      for (NodeId node : *seek) {
        if (!try_candidate(node)) return status;
      }
    } else if (!anchor.any_type && db_.label_index != nullptr) {
      for (TypeId type : anchor.types) {
        for (NodeId node : db_.label_index->Nodes(type)) {
          if (!try_candidate(node)) return status;
        }
      }
    } else if (!anchor.impossible) {
      for (NodeId node = 0; node < db_.view->NodeIdUpperBound(); ++node) {
        if (!db_.view->NodeExists(node)) continue;
        if (!try_candidate(node)) return status;
      }
    }
    return status;
  }

  // shortestPath((a)-[:t*]->(b)): both endpoints must already be bound;
  // binds the relationship variable (if named) to the fewest-edges path.
  Status MatchShortestPath(const BoundChain& chain, Row* row,
                           const ChainSink& sink) {
    const BoundNodePattern& a = chain.nodes[0];
    const BoundNodePattern& b = chain.nodes[1];
    const BoundRelPattern& rel = chain.rels[0];
    if (rel.impossible || a.impossible || b.impossible) return Status::OK();
    auto bound_node = [&](const BoundNodePattern& p) -> NodeId {
      if (p.slot >= 0 && p.slot < static_cast<int>(row->size()) &&
          (*row)[p.slot].kind == ResultValue::Kind::kNode) {
        return (*row)[p.slot].node;
      }
      return graph::kInvalidNode;
    };
    NodeId from = bound_node(a);
    NodeId to = bound_node(b);
    if (from == graph::kInvalidNode || to == graph::kInvalidNode) {
      return Status::InvalidArgument(
          "shortestPath requires both endpoints to be bound");
    }
    FRAPPE_RETURN_IF_ERROR(Tick());
    if (!NodeSatisfies(a, from) || !NodeSatisfies(b, to)) return Status::OK();
    graph::EdgeFilter filter;
    filter.direction = rel.direction;
    if (!rel.any_type) filter.types = rel.types;
    std::optional<graph::Path> path =
        graph::ShortestPath(*db_.view, from, to, filter);
    if (!path.has_value() || path->Length() < rel.min_length ||
        path->Length() > rel.max_length) {
      return Status::OK();
    }
    if (!rel.props.empty()) {
      for (EdgeId e : path->edges) {
        if (!EdgeSatisfies(rel, e)) return Status::OK();
      }
    }
    bool rel_was_null = false;
    if (rel.slot >= 0) {
      ResultValue& slot = (*row)[rel.slot];
      if (slot.is_null()) {
        slot = ResultValue::EdgeList(path->edges);
        rel_was_null = true;
      }
    }
    Status status = sink(row);
    if (rel.slot >= 0 && rel_was_null) {
      (*row)[rel.slot] = ResultValue::Null();
    }
    return status;
  }

  // Binds chain node `node_idx` to `node` (checking row consistency), then
  // runs match step `step_idx`.
  Status BindAndStep(const BoundChain& chain,
                     const std::vector<MatchStep>& steps, size_t step_idx,
                     size_t node_idx, NodeId node,
                     std::vector<NodeId>* binding, Row* row,
                     std::unordered_set<EdgeId>* used, const ChainSink& sink) {
    const BoundNodePattern& pattern = chain.nodes[node_idx];
    if (!NodeSatisfies(pattern, node)) return Status::OK();
    bool row_was_null = false;
    if (pattern.slot >= 0) {
      ResultValue& slot = (*row)[pattern.slot];
      if (!slot.is_null()) {
        if (slot.kind != ResultValue::Kind::kNode || slot.node != node) {
          return Status::OK();  // inconsistent binding
        }
      } else {
        slot = ResultValue::Node(node);
        row_was_null = true;
      }
    }
    (*binding)[node_idx] = node;

    Status status = RunStep(chain, steps, step_idx, binding, row, used, sink);

    (*binding)[node_idx] = graph::kInvalidNode;
    if (pattern.slot >= 0 && row_was_null) {
      (*row)[pattern.slot] = ResultValue::Null();
    }
    return status;
  }

  Status RunStep(const BoundChain& chain, const std::vector<MatchStep>& steps,
                 size_t step_idx, std::vector<NodeId>* binding, Row* row,
                 std::unordered_set<EdgeId>* used, const ChainSink& sink) {
    if (step_idx == steps.size()) return sink(row);
    const MatchStep& step = steps[step_idx];
    const BoundRelPattern& rel = chain.rels[step.rel];
    if (rel.impossible) return Status::OK();
    NodeId from = (*binding)[step.from_node];
    Direction dir = step.flipped ? Flip(rel.direction) : rel.direction;

    if (!rel.var_length) {
      Status status = Status::OK();
      db_.view->ForEachEdge(from, dir, [&](EdgeId edge, NodeId neighbor) {
        status = Tick();
        if (!status.ok()) return false;
        if (used->count(edge) != 0 || !EdgeSatisfies(rel, edge)) return true;
        // Bind the relationship variable if named.
        bool rel_was_null = false;
        if (rel.slot >= 0) {
          ResultValue& slot = (*row)[rel.slot];
          if (!slot.is_null()) {
            if (slot.kind != ResultValue::Kind::kEdge || slot.edge != edge) {
              return true;
            }
          } else {
            slot = ResultValue::EdgeRef(edge);
            rel_was_null = true;
          }
        }
        used->insert(edge);
        status = BindAndStep(chain, steps, step_idx + 1, step.to_node,
                             neighbor, binding, row, used, sink);
        used->erase(edge);
        if (rel.slot >= 0 && rel_was_null) {
          (*row)[rel.slot] = ResultValue::Null();
        }
        return status.ok();
      });
      return status;
    }

    // Variable-length relationship: enumerate every edge-distinct path of
    // length in [min, max]. This is Cypher's relationship-isomorphism
    // semantics, and precisely what makes Figure 6's `-[:calls*]->`
    // intractable on a kernel-sized graph (Section 6.1). Iterative DFS —
    // path depth can reach the graph's edge count, far beyond any call
    // stack.
    std::vector<EdgeId> path;
    auto close_path = [&](NodeId current) -> Status {
      if (path.size() < rel.min_length) return Status::OK();
      bool rel_was_null = false;
      if (rel.slot >= 0) {
        ResultValue& slot = (*row)[rel.slot];
        if (slot.is_null()) {
          slot = ResultValue::EdgeList(path);
          rel_was_null = true;
        }
      }
      Status status = BindAndStep(chain, steps, step_idx + 1, step.to_node,
                                  current, binding, row, used, sink);
      if (rel.slot >= 0 && rel_was_null) {
        (*row)[rel.slot] = ResultValue::Null();
      }
      return status;
    };

    struct Frame {
      EdgeId in_edge;  // edge taken to reach this frame (kInvalidEdge=root)
      std::vector<std::pair<EdgeId, NodeId>> edges;
      size_t next = 0;
    };
    auto make_frame = [&](NodeId node, EdgeId in_edge) {
      Frame frame;
      frame.in_edge = in_edge;
      if (path.size() < rel.max_length) {
        db_.view->ForEachEdge(node, dir, [&](EdgeId e, NodeId n) {
          if (used->count(e) == 0 && EdgeSatisfies(rel, e)) {
            frame.edges.emplace_back(e, n);
          }
          return true;
        });
      }
      return frame;
    };

    FRAPPE_RETURN_IF_ERROR(close_path(from));
    std::vector<Frame> stack;
    stack.push_back(make_frame(from, graph::kInvalidEdge));
    while (!stack.empty()) {
      Frame& top = stack.back();
      if (top.next >= top.edges.size()) {
        if (top.in_edge != graph::kInvalidEdge) {
          used->erase(top.in_edge);
          path.pop_back();
        }
        stack.pop_back();
        continue;
      }
      auto [edge, neighbor] = top.edges[top.next++];
      FRAPPE_RETURN_IF_ERROR(Tick());
      used->insert(edge);
      path.push_back(edge);
      FRAPPE_RETURN_IF_ERROR(close_path(neighbor));
      stack.push_back(make_frame(neighbor, edge));
    }
    return Status::OK();
  }

  // --- expressions ---

  Result<bool> EvalPredicate(const Expr& expr, const Row& row) {
    if (const auto* pattern = std::get_if<PatternExpr>(&expr.node)) {
      return EvalPatternExists(pattern->chain, row);
    }
    if (const auto* boolean = std::get_if<BoolExpr>(&expr.node)) {
      FRAPPE_ASSIGN_OR_RETURN(bool left, EvalPredicate(*boolean->left, row));
      if (boolean->op == BoolOp::kAnd) {
        if (!left) return false;
        return EvalPredicate(*boolean->right, row);
      }
      if (left) return true;
      return EvalPredicate(*boolean->right, row);
    }
    if (const auto* negation = std::get_if<NotExpr>(&expr.node)) {
      FRAPPE_ASSIGN_OR_RETURN(bool inner,
                              EvalPredicate(*negation->inner, row));
      return !inner;
    }
    FRAPPE_ASSIGN_OR_RETURN(ResultValue v, Eval(expr, row));
    if (v.is_null()) return false;
    if (v.kind == ResultValue::Kind::kValue &&
        v.value.type() == graph::ValueType::kBool) {
      return v.value.AsBool();
    }
    return Status::InvalidArgument("expression is not a boolean predicate");
  }

  Result<bool> EvalPatternExists(const PatternChain& chain, const Row& row) {
    FRAPPE_ASSIGN_OR_RETURN(BoundChain bound, BindChain(chain));
    Row scratch = row;
    scratch.resize(width_);
    // Reachability short-circuit: a predicate of the shape
    // `bound -[:t*]-> bound` with no relationship variable or property map
    // asks only "is there a path" — answer it with a visited-set BFS
    // instead of path enumeration. (Any BFS path is also edge-distinct, so
    // this is sound under relationship-isomorphism semantics.)
    if (bound.rels.size() == 1 && bound.rels[0].var_length &&
        bound.rels[0].slot < 0 && bound.rels[0].props.empty() &&
        !bound.rels[0].impossible && bound.rels[0].min_length <= 1) {
      const BoundNodePattern& a = bound.nodes[0];
      const BoundNodePattern& b = bound.nodes[1];
      auto bound_node = [&](const BoundNodePattern& p) -> NodeId {
        if (p.slot >= 0 && p.slot < static_cast<int>(scratch.size()) &&
            scratch[p.slot].kind == ResultValue::Kind::kNode) {
          return scratch[p.slot].node;
        }
        return graph::kInvalidNode;
      };
      NodeId from = bound_node(a);
      NodeId to = bound_node(b);
      if (from != graph::kInvalidNode && to != graph::kInvalidNode &&
          NodeSatisfies(a, from) && NodeSatisfies(b, to)) {
        graph::EdgeFilter filter;
        filter.direction = bound.rels[0].direction;
        if (!bound.rels[0].any_type) filter.types = bound.rels[0].types;
        // min_length >= 1: `from == to` requires a cycle, which
        // TransitiveClosure handles; otherwise plain reachability.
        bool reachable;
        if (from == to && bound.rels[0].min_length >= 1) {
          auto closure = graph::TransitiveClosure(
              *db_.view, from, filter, bound.rels[0].max_length);
          reachable = std::binary_search(closure.begin(), closure.end(), to);
        } else {
          reachable = graph::IsReachable(*db_.view, from, to, filter,
                                         bound.rels[0].max_length);
          if (bound.rels[0].min_length >= 1 && from == to) {
            reachable = false;  // unreachable fallthrough guard
          }
        }
        steps_ += 1;
        return reachable;
      }
    }
    std::unordered_set<EdgeId> used;
    bool found = false;
    Status status = MatchChain(bound, &scratch, &used, [&](Row*) {
      found = true;
      // Surface "found" through an error-free early stop: returning a
      // sentinel status stops the search; it is translated below.
      return Status::FailedPrecondition("__pattern_found__");
    });
    if (!status.ok() && status.message() != "__pattern_found__") {
      return status;
    }
    return found;
  }

  Result<ResultValue> Eval(const Expr& expr, const Row& row) {
    if (const auto* lit = std::get_if<LiteralExpr>(&expr.node)) {
      bool impossible = false;
      FRAPPE_ASSIGN_OR_RETURN(graph::Value v,
                              LiteralToValue(lit->value, &impossible));
      if (impossible) {
        // A string constant absent from the pool equals nothing, but it can
        // still be returned; represent it as null for comparisons.
        return ResultValue::Null();
      }
      return ResultValue::Scalar(v);
    }
    if (const auto* var = std::get_if<VarExpr>(&expr.node)) {
      int slot = FindSlot(var->name);
      if (slot < 0) {
        return Status::InvalidArgument("undefined variable '" + var->name +
                                       "'");
      }
      return row[slot];
    }
    if (const auto* prop = std::get_if<PropExpr>(&expr.node)) {
      int slot = FindSlot(prop->var);
      if (slot < 0) {
        return Status::InvalidArgument("undefined variable '" + prop->var +
                                       "'");
      }
      return GetPropertyOf(row[slot], prop->key);
    }
    if (const auto* cmp = std::get_if<CompareExpr>(&expr.node)) {
      FRAPPE_ASSIGN_OR_RETURN(ResultValue left, Eval(*cmp->left, row));
      FRAPPE_ASSIGN_OR_RETURN(ResultValue right, Eval(*cmp->right, row));
      if (left.is_null() || right.is_null()) {
        return ResultValue::Null();  // SQL/Cypher null semantics
      }
      int c = ComparePools(left, right, &db_.view->strings());
      bool result = false;
      switch (cmp->op) {
        case CompareOp::kEq:
          result = (c == 0);
          break;
        case CompareOp::kNe:
          result = (c != 0);
          break;
        case CompareOp::kLt:
          result = (c < 0);
          break;
        case CompareOp::kLe:
          result = (c <= 0);
          break;
        case CompareOp::kGt:
          result = (c > 0);
          break;
        case CompareOp::kGe:
          result = (c >= 0);
          break;
      }
      return ResultValue::Scalar(graph::Value::Bool(result));
    }
    if (std::get_if<BoolExpr>(&expr.node) != nullptr ||
        std::get_if<NotExpr>(&expr.node) != nullptr ||
        std::get_if<PatternExpr>(&expr.node) != nullptr) {
      FRAPPE_ASSIGN_OR_RETURN(bool b, EvalPredicate(expr, row));
      return ResultValue::Scalar(graph::Value::Bool(b));
    }
    if (const auto* call = std::get_if<CallExpr>(&expr.node)) {
      return EvalCall(*call, row);
    }
    return Status::Internal("unhandled expression node");
  }

  Result<ResultValue> EvalCall(const CallExpr& call, const Row& row) {
    if (call.function == "count") {
      return Status::InvalidArgument(
          "count() is only valid in WITH/RETURN items");
    }
    if (call.function == "id") {
      if (call.args.size() != 1) {
        return Status::InvalidArgument("id() takes one argument");
      }
      FRAPPE_ASSIGN_OR_RETURN(ResultValue v, Eval(*call.args[0], row));
      if (v.kind == ResultValue::Kind::kNode) {
        return ResultValue::Scalar(graph::Value::Int(v.node));
      }
      if (v.kind == ResultValue::Kind::kEdge) {
        return ResultValue::Scalar(graph::Value::Int(v.edge));
      }
      return ResultValue::Null();
    }
    if (call.function == "length") {
      if (call.args.size() != 1) {
        return Status::InvalidArgument("length() takes one argument");
      }
      FRAPPE_ASSIGN_OR_RETURN(ResultValue v, Eval(*call.args[0], row));
      if (v.kind == ResultValue::Kind::kEdgeList) {
        return ResultValue::Scalar(
            graph::Value::Int(static_cast<int64_t>(v.edges.size())));
      }
      if (v.kind == ResultValue::Kind::kValue &&
          v.value.type() == graph::ValueType::kString) {
        return ResultValue::Scalar(graph::Value::Int(static_cast<int64_t>(
            db_.view->strings().Resolve(v.value.AsString()).size())));
      }
      return ResultValue::Null();
    }
    if (call.function == "has" || call.function == "exists") {
      if (call.args.size() != 1) {
        return Status::InvalidArgument(call.function +
                                       "() takes one argument");
      }
      FRAPPE_ASSIGN_OR_RETURN(ResultValue v, Eval(*call.args[0], row));
      return ResultValue::Scalar(graph::Value::Bool(!v.is_null()));
    }
    if (call.function == "type") {
      if (call.args.size() != 1) {
        return Status::InvalidArgument("type() takes one argument");
      }
      FRAPPE_ASSIGN_OR_RETURN(ResultValue v, Eval(*call.args[0], row));
      if (v.kind == ResultValue::Kind::kEdge &&
          db_.view->EdgeExists(v.edge)) {
        auto ref = db_.view->strings().Find(
            std::string(db_.view->EdgeTypeName(v.edge)));
        if (ref.has_value()) {
          return ResultValue::Scalar(graph::Value::String(*ref));
        }
        return ResultValue::Null();
      }
      return ResultValue::Null();
    }
    if (call.function == "labels") {
      if (call.args.size() != 1) {
        return Status::InvalidArgument("labels() takes one argument");
      }
      FRAPPE_ASSIGN_OR_RETURN(ResultValue v, Eval(*call.args[0], row));
      if (v.kind == ResultValue::Kind::kNode &&
          db_.view->NodeExists(v.node)) {
        auto ref = db_.view->strings().Find(
            std::string(db_.view->NodeTypeName(v.node)));
        if (ref.has_value()) {
          return ResultValue::Scalar(graph::Value::String(*ref));
        }
      }
      return ResultValue::Null();
    }
    return Status::InvalidArgument("unknown function '" + call.function +
                                   "'");
  }

  ResultValue GetPropertyOf(const ResultValue& base,
                            const std::string& key) const {
    std::optional<KeyId> key_id =
        db_.resolve_property ? db_.resolve_property(key) : std::nullopt;
    if (!key_id.has_value()) return ResultValue::Null();
    ++hits_.properties;
    if (base.kind == ResultValue::Kind::kNode &&
        db_.view->NodeExists(base.node)) {
      return ResultValue::Scalar(db_.view->GetNodeProperty(base.node,
                                                           *key_id));
    }
    if (base.kind == ResultValue::Kind::kEdge &&
        db_.view->EdgeExists(base.edge)) {
      return ResultValue::Scalar(db_.view->GetEdgeProperty(base.edge,
                                                           *key_id));
    }
    return ResultValue::Null();
  }

  const Database& db_;
  const Query& query_;
  ExecOptions options_;

  std::unordered_map<std::string, size_t> slots_;
  size_t width_ = 0;
  std::vector<Row> rows_;

  uint64_t steps_ = 0;
  bool has_deadline_ = false;
  std::chrono::steady_clock::time_point deadline_;

  // The query's resource tracker (installed by the session's ResourceScope),
  // captured once at construction: Tick() polls its memory budget on the
  // deadline cadence, and Run() credits it with bytes scanned.
  obs::ResourceTracker* tracker_ = nullptr;
  uint64_t csr_edge_hits_ = 0;
  uint64_t csr_scanned_bytes_ = 0;

  // Db-hit accounting. Mutable: NodeSatisfies/EdgeSatisfies/GetPropertyOf
  // are logically const reads whose cost we still want on the books.
  mutable DbHits hits_;
  // Set when any MATCH dispatched to the CSR closure kernel, plus the
  // per-operator detail the current clause accumulated (reset per clause
  // by Run when profiling).
  bool fast_path_taken_ = false;
  bool fast_path_op_ = false;
  std::vector<uint64_t> fp_frontier_sizes_;
  std::vector<uint8_t> fp_level_pull_;
  std::vector<uint8_t> fp_level_bitmap_;
  size_t fp_direction_switches_ = 0;
  size_t fp_lanes_ = 0;
};

}  // namespace

Result<QueryResult> Execute(const Database& db, const Query& query,
                            const ExecOptions& options) {
  if (db.view == nullptr) {
    return Status::InvalidArgument("database has no graph view");
  }
  FRAPPE_TRACE_SPAN("query.execute");
  Engine engine(db, query, options);
  Result<QueryResult> result = engine.Run();
  static obs::Counter& executions =
      obs::Registry::Global().GetCounter("query.executions");
  static obs::Counter& failures =
      obs::Registry::Global().GetCounter("query.failures");
  static obs::Counter& fast_paths =
      obs::Registry::Global().GetCounter("query.fast_path_taken");
  static obs::Histogram& latency =
      obs::Registry::Global().GetHistogram("query.latency_us");
  static obs::Histogram& db_hits =
      obs::Registry::Global().GetHistogram("query.db_hits");
  executions.Add();
  if (result.ok()) {
    latency.Record(static_cast<uint64_t>(result->stats.elapsed_ms * 1000.0));
    db_hits.Record(result->stats.db_hits.Total());
    if (result->stats.fast_path_taken) fast_paths.Add();
  } else {
    failures.Add();
  }
  return result;
}

}  // namespace frappe::query
