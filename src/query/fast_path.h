#ifndef FRAPPE_QUERY_FAST_PATH_H_
#define FRAPPE_QUERY_FAST_PATH_H_

#include <cstddef>

#include "query/ast.h"

namespace frappe::query {

// Variable-length depth from which the executor prefers the CSR closure
// kernel over path enumeration. Short bounded expansions (`*1..2`) stay on
// the enumerating path — they are cheap and may be followed by clauses
// that inspect individual paths; deep or unbounded ones (`-[:calls*]->`,
// Figure 6) are the ones that explode combinatorially.
inline constexpr uint32_t kCsrClosureDepthThreshold = 8;

// Outcome of the static eligibility check for answering a variable-length
// MATCH chain with the parallel CSR transitive-closure kernel instead of
// edge-distinct path enumeration.
struct FastPathDecision {
  bool eligible = false;
  // Human-readable explanation (why not, or empty when eligible). Points at
  // a string literal; never owning.
  const char* reason = "";
};

// Static (AST-level) eligibility of `chain` — the `clause_index`-th clause
// of `query` must be the MATCH containing it. Two things must hold:
//
// 1. Shape: a single 2-node / 1-rel chain whose relationship is
//    variable-length, anonymous (no rel variable), property-free, with
//    min length <= 1 and max length unbounded or >= the depth threshold.
//    The closure kernel answers "which nodes are reachable", so nothing in
//    the query may need the individual paths.
//
// 2. Multiplicity safety: path enumeration emits one row per edge-distinct
//    path, the closure one row per distinct endpoint. The substitution is
//    only sound when a downstream clause collapses that multiplicity before
//    it becomes observable — a DISTINCT projection, or an aggregation whose
//    counts are all count(DISTINCT x). Clauses that merely filter or extend
//    rows (WHERE, MATCH, plain WITH) preserve the question and are scanned
//    through.
//
// Which endpoint is bound (and therefore whether the traversal runs with or
// against the arrow) is a runtime, per-row question the executor checks at
// dispatch time; EXPLAIN approximates it from the statically-bound
// variables.
FastPathDecision ChainEligibleForCsrClosure(const Query& query,
                                            size_t clause_index,
                                            const PatternChain& chain);

}  // namespace frappe::query

#endif  // FRAPPE_QUERY_FAST_PATH_H_
