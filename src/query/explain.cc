#include "query/explain.h"

#include <algorithm>
#include <cstdio>
#include <set>
#include <sstream>

#include "query/estimator.h"
#include "query/fast_path.h"
#include "query/parser.h"

namespace frappe::query {

namespace {

std::string DescribeLiteral(const Literal& lit) {
  switch (lit.kind) {
    case Literal::Kind::kNull:
      return "null";
    case Literal::Kind::kBool:
      return lit.bool_value ? "true" : "false";
    case Literal::Kind::kInt:
      return std::to_string(lit.int_value);
    case Literal::Kind::kDouble: {
      std::ostringstream out;
      out << lit.double_value;
      return out.str();
    }
    case Literal::Kind::kString:
      return "'" + lit.string_value + "'";
  }
  return "?";
}

const char* CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "<>";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

std::string DescribeNodePattern(const NodePattern& node) {
  std::string out = "(" + node.var;
  for (const std::string& label : node.labels) out += ":" + label;
  if (!node.props.empty()) {
    out += " {";
    for (size_t i = 0; i < node.props.size(); ++i) {
      if (i > 0) out += ", ";
      out += node.props[i].key + ": " + DescribeLiteral(node.props[i].value);
    }
    out += "}";
  }
  return out + ")";
}

std::string DescribeRelPattern(const RelPattern& rel) {
  std::string detail = rel.var;
  if (!rel.types.empty()) {
    detail += ":";
    for (size_t i = 0; i < rel.types.size(); ++i) {
      if (i > 0) detail += "|";
      detail += rel.types[i];
    }
  }
  if (rel.var_length) {
    detail += "*";
    if (rel.min_length != 1 || rel.max_length != kUnboundedLength) {
      detail += std::to_string(rel.min_length) + "..";
      if (rel.max_length != kUnboundedLength) {
        detail += std::to_string(rel.max_length);
      }
    }
  }
  std::string body = detail.empty() ? "" : "[" + detail + "]";
  switch (rel.direction) {
    case graph::Direction::kOut:
      return "-" + body + "->";
    case graph::Direction::kIn:
      return "<-" + body + "-";
    default:
      return "-" + body + "-";
  }
}

std::string DescribeChain(const PatternChain& chain) {
  std::string out = chain.shortest ? "shortestPath(" : "";
  for (size_t i = 0; i < chain.nodes.size(); ++i) {
    if (i > 0) out += " " + DescribeRelPattern(chain.rels[i - 1]) + " ";
    out += DescribeNodePattern(chain.nodes[i]);
  }
  if (chain.shortest) out += ")";
  return out;
}

// Estimated start-candidate count for an unbound node pattern.
std::string AnchorEstimate(const Database& db, const NodePattern& node) {
  // Index-backed property seek wins over any scan (mirrors the executor).
  if (db.name_index != nullptr) {
    for (const PropConstraint& prop : node.props) {
      if (prop.value.kind != Literal::Kind::kString) continue;
      for (const auto& spec : db.name_index->fields()) {
        if (spec.is_type_field) continue;
        std::string lowered;
        for (char c : prop.key) {
          lowered += static_cast<char>(std::tolower(
              static_cast<unsigned char>(c)));
        }
        if (spec.name == lowered) {
          size_t hits =
              db.name_index->Lookup(spec.name, prop.value.string_value)
                  .size();
          return "NodeIndexSeek(" + spec.name + " = '" +
                 prop.value.string_value + "') (~" + std::to_string(hits) +
                 " candidates)";
        }
      }
    }
  }
  if (node.labels.empty()) {
    return "AllNodesScan (~" + std::to_string(db.view->NodeCount()) +
           " candidates)";
  }
  size_t total = 0;
  bool have_index = db.label_index != nullptr && db.resolve_label;
  if (have_index) {
    for (const std::string& label : node.labels) {
      size_t best = 0;
      for (graph::TypeId type : db.resolve_label(label)) {
        best += db.label_index->Nodes(type).size();
      }
      total = total == 0 ? best : std::min(total, best);
    }
    return "NodeByLabelScan(:" + node.labels[0] + ") (~" +
           std::to_string(total) + " candidates)";
  }
  return "FilteredAllNodesScan(:" + node.labels[0] + ")";
}

}  // namespace

std::string DescribeExpr(const Expr& expr) {
  if (const auto* lit = std::get_if<LiteralExpr>(&expr.node)) {
    return DescribeLiteral(lit->value);
  }
  if (const auto* var = std::get_if<VarExpr>(&expr.node)) return var->name;
  if (const auto* prop = std::get_if<PropExpr>(&expr.node)) {
    return prop->var + "." + prop->key;
  }
  if (const auto* cmp = std::get_if<CompareExpr>(&expr.node)) {
    return DescribeExpr(*cmp->left) + " " + CompareOpName(cmp->op) + " " +
           DescribeExpr(*cmp->right);
  }
  if (const auto* boolean = std::get_if<BoolExpr>(&expr.node)) {
    return "(" + DescribeExpr(*boolean->left) +
           (boolean->op == BoolOp::kAnd ? " AND " : " OR ") +
           DescribeExpr(*boolean->right) + ")";
  }
  if (const auto* negation = std::get_if<NotExpr>(&expr.node)) {
    return "NOT " + DescribeExpr(*negation->inner);
  }
  if (const auto* pattern = std::get_if<PatternExpr>(&expr.node)) {
    return "exists(" + DescribeChain(pattern->chain) + ")";
  }
  if (const auto* call = std::get_if<CallExpr>(&expr.node)) {
    std::string out = call->function + "(";
    if (call->star) out += "*";
    if (call->distinct) out += "distinct ";
    for (size_t i = 0; i < call->args.size(); ++i) {
      if (i > 0) out += ", ";
      out += DescribeExpr(*call->args[i]);
    }
    return out + ")";
  }
  return "?";
}

Result<std::vector<PlanStep>> BuildPlan(const Database& db,
                                        const Query& query) {
  if (db.view == nullptr) {
    return Status::InvalidArgument("database has no graph view");
  }
  std::vector<PlanStep> out;
  std::set<std::string> bound;
  ClauseEstimates estimates = EstimateQuery(db, query);
  size_t current_clause = 0;
  bool first_in_clause = true;
  auto line = [&](const std::string& text) {
    PlanStep step;
    step.text = text;
    step.clause_index = current_clause;
    step.primary = first_in_clause;
    if (current_clause < estimates.rows.size()) {
      step.est_rows = estimates.rows[current_clause];
    }
    first_in_clause = false;
    out.push_back(std::move(step));
  };

  for (size_t clause_index = 0; clause_index < query.clauses.size();
       ++clause_index) {
    current_clause = clause_index;
    first_in_clause = true;
    const Clause& clause = query.clauses[clause_index];
    if (const auto* start = std::get_if<StartClause>(&clause)) {
      for (const StartItem& item : start->items) {
        switch (item.kind) {
          case StartItem::Kind::kIndexQuery:
            line("NodeByIndexSeek " + item.var + " = node_auto_index('" +
                 item.index_query + "')");
            break;
          case StartItem::Kind::kByIds:
            line("NodeByIdSeek " + item.var + " (" +
                 std::to_string(item.ids.size()) + " id(s))");
            break;
          case StartItem::Kind::kAllNodes:
            line("AllNodesScan " + item.var + " (~" +
                 std::to_string(db.view->NodeCount()) + " rows)");
            break;
        }
        bound.insert(item.var);
      }
    } else if (const auto* match = std::get_if<MatchClause>(&clause)) {
      for (const PatternChain& chain : match->chains) {
        if (chain.shortest) {
          line("ShortestPath " + DescribeChain(chain) +
               " (bidirectional BFS between bound endpoints)");
        } else {
          // Mirror the executor's anchor choice: bound < labeled < scan.
          size_t pivot = 0;
          int best = 100;
          for (size_t i = 0; i < chain.nodes.size(); ++i) {
            const NodePattern& node = chain.nodes[i];
            int score = 2;
            if (!node.var.empty() && bound.count(node.var)) {
              score = 0;
            } else if (!node.labels.empty()) {
              score = 1;
            }
            if (score < best) {
              best = score;
              pivot = i;
            }
          }
          std::string anchor_desc;
          const NodePattern& anchor = chain.nodes[pivot];
          if (best == 0) {
            anchor_desc = "anchored on bound '" + anchor.var + "'";
          } else {
            anchor_desc = "anchored by " + AnchorEstimate(db, anchor);
          }
          // Mirror the executor's runtime dispatch: an eligible chain whose
          // anchor is the one bound endpoint runs on the parallel closure
          // kernel instead of enumerating paths.
          bool csr_fast_path =
              match->chains.size() == 1 && chain.nodes.size() == 2 &&
              best == 0 &&
              !chain.nodes[1 - pivot].var.empty() &&
              bound.count(chain.nodes[1 - pivot].var) == 0 &&
              ChainEligibleForCsrClosure(query, clause_index, chain)
                  .eligible;
          std::string expansion;
          const char* var_length_note =
              csr_fast_path
                  ? " [CSR closure fast path: parallel frontier traversal]"
                  : " [path enumeration]";
          for (size_t i = pivot; i + 1 < chain.nodes.size(); ++i) {
            expansion += " Expand" + DescribeRelPattern(chain.rels[i]);
            if (chain.rels[i].var_length) expansion += var_length_note;
          }
          for (size_t i = pivot; i > 0; --i) {
            expansion += " Expand(reversed)" +
                         DescribeRelPattern(chain.rels[i - 1]);
            if (chain.rels[i - 1].var_length) {
              expansion += var_length_note;
            }
          }
          line("Match " + DescribeChain(chain) + " — " + anchor_desc +
               (expansion.empty() ? "" : ";" + expansion));
        }
        for (const NodePattern& node : chain.nodes) {
          if (!node.var.empty()) bound.insert(node.var);
        }
        for (const RelPattern& rel : chain.rels) {
          if (!rel.var.empty()) bound.insert(rel.var);
        }
      }
    } else if (const auto* where = std::get_if<WhereClause>(&clause)) {
      line("Filter " + DescribeExpr(*where->predicate));
    } else if (const auto* with = std::get_if<WithClause>(&clause)) {
      std::string items;
      bound.clear();
      for (size_t i = 0; i < with->items.size(); ++i) {
        if (i > 0) items += ", ";
        items += DescribeExpr(*with->items[i].expr) + " AS " +
                 with->items[i].alias;
        bound.insert(with->items[i].alias);
      }
      line(std::string("Project") + (with->distinct ? " DISTINCT " : " ") +
           items);
    } else if (const auto* ret = std::get_if<ReturnClause>(&clause)) {
      std::string items;
      bool aggregated = false;
      for (size_t i = 0; i < ret->items.size(); ++i) {
        if (i > 0) items += ", ";
        items += DescribeExpr(*ret->items[i].expr) + " AS " +
                 ret->items[i].alias;
        if (std::get_if<CallExpr>(&ret->items[i].expr->node) != nullptr &&
            std::get<CallExpr>(ret->items[i].expr->node).function ==
                "count") {
          aggregated = true;
        }
      }
      line(std::string(aggregated ? "Aggregate" : "Produce") +
           (ret->distinct ? " DISTINCT " : " ") + items);
      if (!ret->order_by.empty()) {
        std::string keys;
        for (size_t i = 0; i < ret->order_by.size(); ++i) {
          if (i > 0) keys += ", ";
          keys += DescribeExpr(*ret->order_by[i].expr) +
                  (ret->order_by[i].ascending ? "" : " DESC");
        }
        line("Sort " + keys);
      }
      if (ret->skip > 0) line("Skip " + std::to_string(ret->skip));
      if (ret->limit >= 0) line("Limit " + std::to_string(ret->limit));
    }
  }
  return out;
}

namespace {

// Compact but parseable estimate rendering: integral when large, one
// decimal for small fractional values.
std::string FormatEstRows(double est) {
  char buf[32];
  if (est >= 100.0 || est == static_cast<double>(static_cast<long long>(est))) {
    std::snprintf(buf, sizeof(buf), "%.0f", est);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f", est);
  }
  return buf;
}

}  // namespace

std::string RenderPlan(const std::vector<PlanStep>& steps,
                       const ExecStats* stats) {
  // Pad every line to one shared annotation column so EXPLAIN (est only)
  // and PROFILE (est + actuals) emit the same, stably-parseable layout.
  size_t annotation_col = 0;
  {
    int number = 1;
    for (const PlanStep& step : steps) {
      size_t width = std::to_string(number++).size() + 2 + step.text.size();
      annotation_col = std::max(annotation_col, width);
    }
  }
  std::string out;
  int number = 1;
  for (const PlanStep& step : steps) {
    std::string line = std::to_string(number++) + ". " + step.text;
    const OperatorStats* op = nullptr;
    if (stats != nullptr && step.primary) {
      for (const OperatorStats& candidate : stats->operators) {
        if (candidate.clause_index == step.clause_index) {
          op = &candidate;
          break;
        }
      }
    }
    bool annotate = step.est_rows >= 0.0 || op != nullptr;
    if (annotate && line.size() < annotation_col) {
      line.append(annotation_col - line.size(), ' ');
    }
    out += line;
    if (annotate) {
      out += " //";
      if (step.est_rows >= 0.0) {
        out += " est_rows=" + FormatEstRows(step.est_rows);
      }
      if (op != nullptr) {
        char buf[160];
        std::snprintf(buf, sizeof(buf),
                      " rows=%llu db_hits=%llu steps=%llu time=%.3fms",
                      static_cast<unsigned long long>(op->rows),
                      static_cast<unsigned long long>(op->db_hits.Total()),
                      static_cast<unsigned long long>(op->steps),
                      op->time_ms);
        out += buf;
        if (step.est_rows >= 0.0) {
          std::snprintf(buf, sizeof(buf), " q=%.2f",
                        QError(step.est_rows,
                               static_cast<double>(op->rows)));
          out += buf;
        }
        if (op->fast_path) {
          out += " frontier=[";
          for (size_t i = 0; i < op->frontier_sizes.size(); ++i) {
            if (i > 0) out += ",";
            out += std::to_string(op->frontier_sizes[i]);
          }
          // Per-level push/pull decisions of the direction-optimizing
          // kernel, with the frontier representation each level consumed.
          out += "] direction=[";
          for (size_t i = 0; i < op->level_pull.size(); ++i) {
            if (i > 0) out += ",";
            out += op->level_pull[i] != 0 ? "pull" : "push";
            out += op->level_bitmap[i] != 0 ? ":bitmap" : ":array";
          }
          out += "] switches=" + std::to_string(op->direction_switches);
          out += " lanes=" + std::to_string(op->lanes);
        }
      }
    }
    out += "\n";
  }
  return out;
}

Result<std::string> Explain(const Database& db, const Query& query) {
  FRAPPE_ASSIGN_OR_RETURN(std::vector<PlanStep> steps, BuildPlan(db, query));
  return RenderPlan(steps, nullptr);
}

Result<std::string> ProfilePlan(const Database& db, const Query& query,
                                const ExecStats& stats) {
  FRAPPE_ASSIGN_OR_RETURN(std::vector<PlanStep> steps, BuildPlan(db, query));
  return RenderPlan(steps, &stats);
}

Result<std::string> ExplainText(const Database& db, std::string_view text) {
  FRAPPE_ASSIGN_OR_RETURN(Query query, Parse(text));
  return Explain(db, query);
}

}  // namespace frappe::query
