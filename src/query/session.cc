#include "query/session.h"

#include "common/string_util.h"
#include "query/parser.h"

namespace frappe::query {

Database MakeFrappeDatabase(const graph::GraphView& view,
                            const model::Schema& schema,
                            const graph::NameIndex* name_index,
                            const graph::LabelIndex* label_index) {
  Database db;
  db.view = &view;
  db.name_index = name_index;
  db.label_index = label_index;
  db.display_name_key = schema.key(model::PropKey::kShortName);
  db.resolve_label = [&view, schema](std::string_view label) {
    std::vector<graph::TypeId> out;
    // Group labels (Table 6: symbol / type / container) expand to their
    // member node types.
    model::NodeGroup group = model::NodeGroupFromName(label);
    if (group != model::NodeGroup::kCount) {
      for (model::NodeKind kind : model::GroupMembers(group)) {
        out.push_back(schema.node_type(kind));
      }
      return out;
    }
    graph::TypeId id = view.node_types().Find(ToLower(label));
    if (id != graph::kInvalidType) out.push_back(id);
    return out;
  };
  db.resolve_edge_type =
      [&view, schema](std::string_view name) -> std::optional<graph::TypeId> {
    // Edge groups (link / preprocessor / containment / reference) are not
    // expressible as a single type id; resolve concrete types only. (FQL
    // alternation `-[:a|b|c]->` covers the grouped case.)
    graph::TypeId id = view.edge_types().Find(ToLower(name));
    if (id == graph::kInvalidType) return std::nullopt;
    return id;
  };
  db.resolve_property =
      [&view](std::string_view name) -> std::optional<graph::KeyId> {
    graph::KeyId id =
        view.keys().Find(model::CanonicalPropertyName(name));
    if (id == graph::kInvalidKey) return std::nullopt;
    return id;
  };
  db.csr = std::make_shared<graph::CsrCache>();
  return db;
}

Session::Session(const model::CodeGraph& code_graph)
    : code_graph_(code_graph),
      name_index_(code_graph.BuildNameIndex()),
      label_index_(graph::LabelIndex::Build(code_graph.view())),
      db_(MakeFrappeDatabase(code_graph.view(), code_graph.schema(),
                             &name_index_, &label_index_)) {}

Result<QueryResult> Session::Run(std::string_view query_text,
                                 const ExecOptions& options) const {
  FRAPPE_ASSIGN_OR_RETURN(Query query, Parse(query_text));
  return Execute(db_, query, options);
}

}  // namespace frappe::query
