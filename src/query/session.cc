#include "query/session.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "common/string_util.h"
#include "graph/stats_catalog.h"
#include "obs/fingerprint.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/query_log.h"
#include "obs/query_registry.h"
#include "obs/resource.h"
#include "obs/trace.h"
#include "query/estimator.h"
#include "query/explain.h"
#include "query/parser.h"

namespace frappe::query {

namespace {

std::function<void(const std::string&)>& SlowQuerySink() {
  static std::function<void(const std::string&)>* sink =
      new std::function<void(const std::string&)>();  // never destroyed
  return *sink;
}

// Threshold in ms, or -1 when unset/invalid. Read per call so tests (and
// operators) can flip it at runtime via setenv.
int64_t SlowQueryThresholdMs() {
  const char* env = std::getenv("FRAPPE_SLOW_QUERY_MS");
  if (env == nullptr || *env == '\0') return -1;
  char* end = nullptr;
  long long value = std::strtoll(env, &end, 10);
  if (end == env || value < 0) return -1;
  return static_cast<int64_t>(value);
}

void EmitSlowQueryLog(const std::string& message) {
  if (SlowQuerySink()) {
    SlowQuerySink()(message);
  } else {
    std::fputs(message.c_str(), stderr);
  }
}

// Estimates are on unless FRAPPE_ESTIMATOR=off. Read per call (same
// contract as the slow-query threshold): operators can flip it live, and
// the A/B overhead bench toggles it between arms.
bool EstimatorDisabled() {
  const char* env = std::getenv("FRAPPE_ESTIMATOR");
  return env != nullptr && std::string_view(env) == "off";
}

// Misestimate q-error threshold, or -1 when unset/invalid. A query whose
// q-error meets it is pushed onto the MisestimateRing and warn-logged.
double MisestimateQErrorThreshold() {
  const char* env = std::getenv("FRAPPE_MISESTIMATE_QERROR");
  if (env == nullptr || *env == '\0') return -1.0;
  char* end = nullptr;
  double value = std::strtod(env, &end);
  if (end == env || value <= 0.0) return -1.0;
  return value;
}

// Per-query memory budget in bytes, or 0 (unlimited) when unset/invalid.
// Read per call so operators and tests can flip it at runtime via setenv.
uint64_t QueryMemBudgetBytes() {
  const char* env = std::getenv("FRAPPE_QUERY_MEM_BYTES");
  if (env == nullptr || *env == '\0') return 0;
  char* end = nullptr;
  long long value = std::strtoll(env, &end, 10);
  if (end == env || value <= 0) return 0;
  return static_cast<uint64_t>(value);
}

int64_t NowUnixMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

// Workload telemetry for one finished (or parse-failed) execution: the
// per-fingerprint stats table always, the structured query log when
// enabled. Both are fire-and-forget — neither blocks the query path. The
// trace id ties all three views (stats, qlog, retained traces) together;
// the timeline says where the latency went.
void RecordWorkloadTelemetry(const obs::NormalizedQuery& normalized,
                             std::string_view raw_text, bool ok,
                             std::string_view status_name, double elapsed_ms,
                             uint64_t rows, uint64_t db_hits, bool fast_path,
                             const obs::TraceContext& trace,
                             const Timeline& timeline,
                             const obs::ResourceTracker& resources) {
  uint64_t latency_us =
      elapsed_ms > 0 ? static_cast<uint64_t>(elapsed_ms * 1000.0) : 0;
  obs::QueryStats::Entry& entry = obs::QueryStats::Global().GetOrCreate(
      normalized.fingerprint, normalized.text);
  entry.Record(ok, latency_us, rows, db_hits);
  entry.RecordTimeline(timeline.queue_us, timeline.parse_us,
                       timeline.plan_us, timeline.exec_us);
  entry.RecordResources(resources.cpu_us(), resources.alloc_bytes(),
                        resources.peak_bytes());
  // Process-wide latency histogram with the trace id pinned per bucket, so
  // a /metrics p99 spike links straight to a retained trace.
  static obs::Histogram& latency_hist =
      obs::Registry::Global().GetHistogram("query.latency_us");
  latency_hist.RecordWithExemplar(latency_us, trace.trace_hi, trace.trace_lo);
  // Resource attribution histograms, exemplar-linked the same way: a CPU or
  // allocation outlier on /metrics names the trace that caused it.
  static obs::Histogram& cpu_hist =
      obs::Registry::Global().GetHistogram("query.cpu_us");
  static obs::Histogram& alloc_hist =
      obs::Registry::Global().GetHistogram("query.alloc_bytes");
  static obs::Histogram& peak_hist =
      obs::Registry::Global().GetHistogram("query.peak_bytes");
  cpu_hist.RecordWithExemplar(resources.cpu_us(), trace.trace_hi,
                              trace.trace_lo);
  alloc_hist.RecordWithExemplar(resources.alloc_bytes(), trace.trace_hi,
                                trace.trace_lo);
  peak_hist.RecordWithExemplar(resources.peak_bytes(), trace.trace_hi,
                               trace.trace_lo);
  obs::QueryLog& qlog = obs::QueryLog::Global();
  if (qlog.enabled()) {
    obs::QueryLogRecord record;
    record.ts_us = NowUnixMicros();
    record.fingerprint = normalized.fingerprint;
    record.trace_id = obs::TraceIdHex(trace);
    record.query = normalized.text;
    record.raw = std::string(raw_text);
    record.status = std::string(status_name);
    record.latency_us = latency_us;
    record.rows = rows;
    record.db_hits = db_hits;
    record.fast_path = fast_path;
    record.queue_us = timeline.queue_us;
    record.parse_us = timeline.parse_us;
    record.plan_us = timeline.plan_us;
    record.exec_us = timeline.exec_us;
    record.cpu_us = resources.cpu_us();
    record.alloc_bytes = resources.alloc_bytes();
    record.peak_bytes = resources.peak_bytes();
    qlog.Record(std::move(record));
  }
}

}  // namespace

void SetSlowQueryLogSinkForTesting(
    std::function<void(const std::string&)> sink) {
  SlowQuerySink() = std::move(sink);
}

Database MakeFrappeDatabase(const graph::GraphView& view,
                            const model::Schema& schema,
                            const graph::NameIndex* name_index,
                            const graph::LabelIndex* label_index) {
  Database db;
  db.view = &view;
  db.name_index = name_index;
  db.label_index = label_index;
  db.display_name_key = schema.key(model::PropKey::kShortName);
  db.resolve_label = [&view, schema](std::string_view label) {
    std::vector<graph::TypeId> out;
    // Group labels (Table 6: symbol / type / container) expand to their
    // member node types.
    model::NodeGroup group = model::NodeGroupFromName(label);
    if (group != model::NodeGroup::kCount) {
      for (model::NodeKind kind : model::GroupMembers(group)) {
        out.push_back(schema.node_type(kind));
      }
      return out;
    }
    graph::TypeId id = view.node_types().Find(ToLower(label));
    if (id != graph::kInvalidType) out.push_back(id);
    return out;
  };
  db.resolve_edge_type =
      [&view, schema](std::string_view name) -> std::optional<graph::TypeId> {
    // Edge groups (link / preprocessor / containment / reference) are not
    // expressible as a single type id; resolve concrete types only. (FQL
    // alternation `-[:a|b|c]->` covers the grouped case.)
    graph::TypeId id = view.edge_types().Find(ToLower(name));
    if (id == graph::kInvalidType) return std::nullopt;
    return id;
  };
  db.resolve_property =
      [&view](std::string_view name) -> std::optional<graph::KeyId> {
    graph::KeyId id =
        view.keys().Find(model::CanonicalPropertyName(name));
    if (id == graph::kInvalidKey) return std::nullopt;
    return id;
  };
  db.csr = std::make_shared<graph::CsrCache>();
  db.stats = std::make_shared<graph::StatsCatalogCache>();
  return db;
}

Session::Session(const model::CodeGraph& code_graph)
    : code_graph_(code_graph),
      name_index_(code_graph.BuildNameIndex()),
      label_index_(graph::LabelIndex::Build(code_graph.view())),
      db_(MakeFrappeDatabase(code_graph.view(), code_graph.schema(),
                             &name_index_, &label_index_)) {}

Result<std::unique_ptr<SnapshotSession>> SnapshotSession::Open(
    const std::string& path, const graph::SnapshotManager::Options& options) {
  FRAPPE_TRACE_SPAN("session.open_snapshot");
  graph::SnapshotManager manager(path, options);
  FRAPPE_ASSIGN_OR_RETURN(graph::SnapshotManager::Loaded loaded,
                          manager.Load());
  // `new` rather than make_unique: the constructor is private.
  std::unique_ptr<SnapshotSession> session(new SnapshotSession());
  session->store_ = std::move(loaded.snapshot.store);
  session->warnings_ = std::move(loaded.snapshot.warnings);
  session->generation_ = loaded.generation;
  session->loaded_path_ = std::move(loaded.path);
  if (loaded.snapshot.index.has_value()) {
    session->name_index_ = std::move(*loaded.snapshot.index);
  } else {
    // Index-less snapshot (or one whose index section was dropped as
    // unrecoverable): build the standard Frappé auto-index fields.
    model::CodeGraph scratch;
    session->name_index_ =
        graph::NameIndex::Build(*session->store_, scratch.IndexFields());
  }
  session->label_index_ = graph::LabelIndex::Build(*session->store_);
  session->schema_ = model::Schema::Install(session->store_.get());
  session->db_ =
      MakeFrappeDatabase(*session->store_, session->schema_,
                         &session->name_index_, &session->label_index_);
  if (loaded.snapshot.catalog.has_value()) {
    // The snapshot carried a verified stats catalog — the estimator is
    // warm from the first query, no ANALYZE needed.
    session->db_.stats->Set(std::move(*loaded.snapshot.catalog));
  }
  return session;
}

Result<QueryResult> Session::Run(std::string_view query_text,
                                 const ExecOptions& options) const {
  return RunQuery(db_, query_text, options);
}

Result<QueryResult> RunQuery(const Database& db, std::string_view query_text,
                             const ExecOptions& options) {
  FRAPPE_TRACE_SPAN("session.run");
  static obs::Counter& queries =
      obs::Registry::Global().GetCounter("session.queries");
  static obs::Counter& slow_queries =
      obs::Registry::Global().GetCounter("session.slow_queries");
  queries.Add();

  // Resource attribution for the whole call: the scope publishes the
  // tracker through TLS, so the allocation seam, the executor's budget
  // poll, and the analytics lanes all charge this query. The budget itself
  // comes from FRAPPE_QUERY_MEM_BYTES (0 = unlimited).
  obs::ResourceTracker resources;
  resources.set_budget_bytes(QueryMemBudgetBytes());
  obs::ResourceScope resource_scope(&resources);

  // The workload identity of this query: literals stripped, case folded,
  // hashed. Computed up front so parse failures aggregate by shape too.
  const obs::NormalizedQuery normalized = obs::NormalizeQuery(query_text);

  // Trace identity: adopt the request context the query server installed
  // via TraceScope, or mint a fresh id for direct callers (shell, replay,
  // tests) so the query log, /stats and the slow-query ring still carry a
  // joinable trace id. Minting does NOT activate span collection — the
  // disabled-span fast path stays one atomic + one TLS load.
  obs::TraceContext trace = obs::Trace::CurrentContext();
  if (!trace.valid()) trace = obs::GenerateTraceContext();
  Timeline timeline;
  timeline.queue_us = obs::Trace::CurrentQueueWaitUs();

  // Active-query registry: this query is visible on /debug/queryz (and
  // cancellable) for the whole call; the RAII handle removes the entry on
  // every exit path — parse failure, EXPLAIN, success, or abort.
  obs::QueryRegistry::Handle active = obs::QueryRegistry::Global().Register(
      normalized.fingerprint, normalized.text, std::string(query_text),
      options.cancel, trace.trace_hi, trace.trace_lo, timeline.queue_us);

  Query query;
  {
    FRAPPE_TRACE_SPAN("session.parse");
    const uint64_t parse_start = obs::Trace::NowMicros();
    Result<Query> parsed = Parse(query_text);
    timeline.parse_us = obs::Trace::NowMicros() - parse_start;
    if (!parsed.ok()) {
      resource_scope.SyncCpu();
      RecordWorkloadTelemetry(normalized, query_text, /*ok=*/false,
                              StatusCodeName(parsed.status().code()),
                              /*elapsed_ms=*/0.0, /*rows=*/0, /*db_hits=*/0,
                              /*fast_path=*/false, trace, timeline,
                              resources);
      return parsed.status();
    }
    query = std::move(*parsed);
  }

  if (query.mode == QueryMode::kExplain) {
    FRAPPE_TRACE_SPAN("session.plan");
    const uint64_t plan_start = obs::Trace::NowMicros();
    QueryResult result;
    FRAPPE_ASSIGN_OR_RETURN(result.plan, Explain(db, query));
    timeline.plan_us = obs::Trace::NowMicros() - plan_start;
    result.stats.timeline = timeline;
    return result;
  }

  if (query.mode == QueryMode::kAnalyze) {
    // ANALYZE: rebuild the cardinality stats catalog from the live graph
    // and swap it into the shared cache, so every reader of this database
    // (and the next \save) gets fresh estimates.
    FRAPPE_TRACE_SPAN("session.analyze");
    static obs::Counter& builds =
        obs::Registry::Global().GetCounter("catalog.builds");
    static obs::Histogram& build_us =
        obs::Registry::Global().GetHistogram("catalog.build_us");
    if (db.view == nullptr || db.stats == nullptr) {
      return Status::FailedPrecondition(
          "ANALYZE needs a graph-backed database with a stats cache");
    }
    const auto build_start = std::chrono::steady_clock::now();
    graph::StatsCatalog catalog =
        graph::BuildStatsCatalog(*db.view, db.name_index);
    const double analyze_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - build_start)
            .count();
    builds.Add();
    build_us.Record(static_cast<uint64_t>(analyze_ms * 1000.0));
    obs::Registry::Global().GetGauge("catalog.nodes").Set(
        static_cast<int64_t>(catalog.node_count));
    obs::Registry::Global().GetGauge("catalog.edges").Set(
        static_cast<int64_t>(catalog.edge_count));
    obs::Registry::Global().GetGauge("catalog.bytes").Set(
        static_cast<int64_t>(catalog.ByteSize()));

    QueryResult result;
    result.columns = {"nodes",      "edges", "node_types", "edge_types",
                      "hub_count",  "index_fields", "catalog_bytes"};
    result.rows.push_back(
        {ResultValue::Scalar(graph::Value::Int(
             static_cast<int64_t>(catalog.node_count))),
         ResultValue::Scalar(graph::Value::Int(
             static_cast<int64_t>(catalog.edge_count))),
         ResultValue::Scalar(graph::Value::Int(
             static_cast<int64_t>(catalog.node_types.size()))),
         ResultValue::Scalar(graph::Value::Int(
             static_cast<int64_t>(catalog.edge_types.size()))),
         ResultValue::Scalar(
             graph::Value::Int(static_cast<int64_t>(catalog.hubs.size()))),
         ResultValue::Scalar(graph::Value::Int(
             static_cast<int64_t>(catalog.index_fields.size()))),
         ResultValue::Scalar(graph::Value::Int(
             static_cast<int64_t>(catalog.ByteSize())))});
    db.stats->Set(std::move(catalog));
    timeline.exec_us = static_cast<uint64_t>(analyze_ms * 1000.0);
    result.stats.timeline = timeline;
    resource_scope.SyncCpu();
    result.stats.cpu_us = resources.cpu_us();
    result.stats.alloc_bytes = resources.alloc_bytes();
    result.stats.peak_bytes = resources.peak_bytes();
    RecordWorkloadTelemetry(normalized, query_text, /*ok=*/true, "ok",
                            analyze_ms, /*rows=*/1, /*db_hits=*/0,
                            /*fast_path=*/false, trace, timeline, resources);
    return result;
  }

  ExecOptions exec_options = options;
  if (query.mode == QueryMode::kProfile) exec_options.profile = true;
  if (active.entry() != nullptr) {
    // The registry's token aliases the caller's when one was supplied, so
    // both /debug/cancel and the caller can trip the same switch.
    exec_options.cancel = active.entry()->cancel_token;
    if (exec_options.progress == nullptr) {
      exec_options.progress = &active.entry()->progress;
    }
  }

  const auto exec_start = std::chrono::steady_clock::now();
  const uint64_t exec_start_us = obs::Trace::NowMicros();
  Result<QueryResult> result = [&] {
    FRAPPE_TRACE_SPAN("session.execute");
    return Execute(db, query, exec_options);
  }();
  timeline.exec_us = obs::Trace::NowMicros() - exec_start_us;
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - exec_start)
          .count();

  if (result.ok() && query.mode == QueryMode::kProfile) {
    FRAPPE_TRACE_SPAN("session.plan");
    const uint64_t plan_start = obs::Trace::NowMicros();
    FRAPPE_ASSIGN_OR_RETURN(result->plan,
                            ProfilePlan(db, query, result->stats));
    timeline.plan_us = obs::Trace::NowMicros() - plan_start;
  }

  if (result.ok()) result->stats.timeline = timeline;

  // Flush this thread's CPU delta so the totals below include the parse,
  // plan, and execute work just done (lane CPU already landed via
  // ResourceLaneScope).
  resource_scope.SyncCpu();
  if (result.ok()) {
    result->stats.cpu_us = resources.cpu_us();
    result->stats.alloc_bytes = resources.alloc_bytes();
    result->stats.peak_bytes = resources.peak_bytes();
    // scanned_bytes was filled by the executor.
  }

  const char* status_name =
      result.ok() ? "ok" : StatusCodeName(result.status().code());
  RecordWorkloadTelemetry(
      normalized, query_text, result.ok(), status_name, elapsed_ms,
      result.ok() ? result->rows.size() : 0,
      result.ok() ? result->stats.db_hits.Total() : 0,
      result.ok() && result->stats.fast_path_taken, trace, timeline,
      resources);

  // Estimate-vs-actual instrumentation: compare the planner's final-row
  // estimate against what the execution produced, feed the q-error
  // histogram and the per-fingerprint worst-case, and route crossings of
  // FRAPPE_MISESTIMATE_QERROR to the misestimate ring + structured log.
  if (result.ok() && !EstimatorDisabled()) {
    ClauseEstimates estimates = EstimateQuery(db, query);
    const double actual = static_cast<double>(result->rows.size());
    const double q = QError(estimates.final_rows, actual);
    const uint64_t q_x100 = static_cast<uint64_t>(q * 100.0);
    static obs::Histogram& qerror_hist =
        obs::Registry::Global().GetHistogram("plan.qerror_x100");
    qerror_hist.Record(q_x100);
    obs::QueryStats::Global()
        .GetOrCreate(normalized.fingerprint, normalized.text)
        .RecordQError(q_x100);
    double qerror_threshold = MisestimateQErrorThreshold();
    if (qerror_threshold > 0.0 && q >= qerror_threshold) {
      static obs::Counter& misestimates =
          obs::Registry::Global().GetCounter("plan.misestimates");
      misestimates.Add();
      obs::MisestimateRing::Record miss;
      miss.ts_us = NowUnixMicros();
      miss.fingerprint = normalized.fingerprint;
      miss.normalized = normalized.text;
      miss.est_rows = estimates.final_rows;
      miss.actual_rows = result->rows.size();
      miss.qerror = q;
      obs::MisestimateRing::Global().Push(std::move(miss));
      char detail[160];
      std::snprintf(detail, sizeof(detail),
                    "plan misestimate q=%.2f (est=%.1f actual=%zu) fp=",
                    q, estimates.final_rows, result->rows.size());
      obs::LogWarn("planner",
                   detail + obs::FingerprintHex(normalized.fingerprint) +
                       ": " + normalized.text);
    }
  }

  // Slow-query log: fires for successes and budget breaches alike — the
  // aborted Figure 6 run is exactly the query an operator wants logged.
  // Identified by fingerprint + normalized text (not the raw query):
  // that's the key the /stats fingerprint table and the query log use, so
  // the three views join on `fp` — and literals stay out of the log.
  int64_t threshold_ms = SlowQueryThresholdMs();
  if (threshold_ms >= 0 && elapsed_ms >= static_cast<double>(threshold_ms)) {
    slow_queries.Add();
    std::string message = "[frappe] slow query (" +
                          std::to_string(elapsed_ms) + " ms >= " +
                          std::to_string(threshold_ms) + " ms) fp=" +
                          obs::FingerprintHex(normalized.fingerprint) +
                          " trace=" + obs::TraceIdHex(trace) + ": " +
                          normalized.text + "\n";
    if (result.ok() && !result->plan.empty()) {
      message += result->plan;
    } else if (Result<std::string> plan = Explain(db, query); plan.ok()) {
      message += *plan;
    }
    if (!result.ok()) {
      message += "status: " + result.status().ToString() + "\n";
    }
    EmitSlowQueryLog(message);
    obs::SlowQueryRing::Record slow;
    slow.ts_us = NowUnixMicros();
    slow.fingerprint = normalized.fingerprint;
    slow.trace_id = obs::TraceIdHex(trace);
    slow.normalized = normalized.text;
    slow.latency_ms = elapsed_ms;
    slow.threshold_ms = threshold_ms;
    slow.status = status_name;
    obs::SlowQueryRing::Global().Push(std::move(slow));
  }
  return result;
}

}  // namespace frappe::query
