#include "query/parser.h"

#include <utility>

#include "common/string_util.h"
#include "query/lexer.h"

namespace frappe::query {

namespace {

// Keywords that terminate an expression or pattern region.
bool IsClauseKeyword(const Token& t) {
  return t.IsKeyword("start") || t.IsKeyword("match") ||
         t.IsKeyword("where") || t.IsKeyword("with") ||
         t.IsKeyword("return") || t.IsKeyword("order") ||
         t.IsKeyword("limit") || t.IsKeyword("skip");
}

// Reserved words that can never be variable names in value position.
bool IsReservedIdent(const Token& t) {
  return IsClauseKeyword(t) || t.IsKeyword("and") || t.IsKeyword("or") ||
         t.IsKeyword("not") || t.IsKeyword("distinct") || t.IsKeyword("as") ||
         t.IsKeyword("by") || t.IsKeyword("asc") || t.IsKeyword("desc");
}

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Query> ParseQuery() {
    Query query;
    // EXPLAIN / PROFILE prefix keywords (at most one, before any clause).
    if (Peek().IsKeyword("explain")) {
      query.mode = QueryMode::kExplain;
      Advance();
    } else if (Peek().IsKeyword("profile")) {
      query.mode = QueryMode::kProfile;
      Advance();
    } else if (Peek().IsKeyword("analyze")) {
      // Standalone statistics command, not a query prefix.
      query.mode = QueryMode::kAnalyze;
      Advance();
      if (!At(TokenType::kEnd)) {
        return Error("ANALYZE takes no clauses, got " +
                     TokenDescription(Peek()));
      }
      return query;
    }
    while (!At(TokenType::kEnd)) {
      const Token& t = Peek();
      if (t.IsKeyword("start")) {
        Advance();
        FRAPPE_ASSIGN_OR_RETURN(StartClause clause, ParseStart());
        query.clauses.emplace_back(std::move(clause));
      } else if (t.IsKeyword("match")) {
        Advance();
        FRAPPE_ASSIGN_OR_RETURN(MatchClause clause, ParseMatch());
        query.clauses.emplace_back(std::move(clause));
      } else if (t.IsKeyword("where")) {
        Advance();
        WhereClause clause;
        FRAPPE_ASSIGN_OR_RETURN(clause.predicate, ParseExpr());
        query.clauses.emplace_back(std::move(clause));
      } else if (t.IsKeyword("with")) {
        Advance();
        FRAPPE_ASSIGN_OR_RETURN(WithClause clause, ParseWith());
        query.clauses.emplace_back(std::move(clause));
      } else if (t.IsKeyword("return")) {
        Advance();
        FRAPPE_ASSIGN_OR_RETURN(ReturnClause clause, ParseReturn());
        query.clauses.emplace_back(std::move(clause));
      } else {
        return Error("expected a clause keyword, got " + TokenDescription(t));
      }
    }
    if (query.clauses.empty()) return Error("empty query");
    return query;
  }

 private:
  // --- token plumbing ---

  const Token& Peek(size_t ahead = 0) const {
    size_t idx = pos_ + ahead;
    return idx < tokens_.size() ? tokens_[idx] : tokens_.back();
  }
  bool At(TokenType type) const { return Peek().type == type; }
  const Token& Advance() { return tokens_[pos_++]; }
  bool Accept(TokenType type) {
    if (!At(type)) return false;
    ++pos_;
    return true;
  }
  Status Expect(TokenType type, std::string_view what) {
    if (!At(type)) {
      return Status::ParseError("expected " + std::string(what) + ", got " +
                                TokenDescription(Peek()) + " at offset " +
                                std::to_string(Peek().offset));
    }
    ++pos_;
    return Status::OK();
  }
  Status Error(std::string message) const {
    return Status::ParseError(message + " (offset " +
                              std::to_string(Peek().offset) + ")");
  }
  size_t Save() const { return pos_; }
  void Restore(size_t save) { pos_ = save; }

  // --- clauses ---

  Result<StartClause> ParseStart() {
    StartClause clause;
    do {
      StartItem item;
      if (!At(TokenType::kIdent) || IsReservedIdent(Peek())) {
        return Error("expected variable name in START");
      }
      item.var = Advance().text;
      FRAPPE_RETURN_IF_ERROR(Expect(TokenType::kEq, "'=' in START item"));
      if (!Peek().IsKeyword("node")) {
        return Error("expected 'node' in START item");
      }
      Advance();
      if (Accept(TokenType::kColon)) {
        // node:node_auto_index('...'). The index name is accepted and
        // ignored — Frappé has a single auto index, like the paper.
        if (!At(TokenType::kIdent)) return Error("expected index name");
        Advance();
        FRAPPE_RETURN_IF_ERROR(Expect(TokenType::kLParen, "'('"));
        if (!At(TokenType::kString)) {
          return Error("expected quoted index query");
        }
        item.kind = StartItem::Kind::kIndexQuery;
        item.index_query = Advance().text;
        FRAPPE_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
      } else if (Accept(TokenType::kLParen)) {
        if (Accept(TokenType::kStar)) {
          item.kind = StartItem::Kind::kAllNodes;
        } else {
          item.kind = StartItem::Kind::kByIds;
          do {
            if (!At(TokenType::kInt)) return Error("expected node id");
            item.ids.push_back(
                static_cast<uint64_t>(Advance().int_value));
          } while (Accept(TokenType::kComma));
        }
        FRAPPE_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
      } else {
        return Error("expected ':' or '(' after 'node'");
      }
      clause.items.push_back(std::move(item));
    } while (Accept(TokenType::kComma));
    return clause;
  }

  Result<MatchClause> ParseMatch() {
    MatchClause clause;
    do {
      FRAPPE_ASSIGN_OR_RETURN(PatternChain chain, ParsePatternChain());
      clause.chains.push_back(std::move(chain));
    } while (Accept(TokenType::kComma));
    return clause;
  }

  Result<WithClause> ParseWith() {
    WithClause clause;
    if (Peek().IsKeyword("distinct")) {
      Advance();
      clause.distinct = true;
    }
    FRAPPE_ASSIGN_OR_RETURN(clause.items, ParseProjectionItems());
    return clause;
  }

  Result<ReturnClause> ParseReturn() {
    ReturnClause clause;
    if (Peek().IsKeyword("distinct")) {
      Advance();
      clause.distinct = true;
    }
    FRAPPE_ASSIGN_OR_RETURN(clause.items, ParseProjectionItems());
    if (Peek().IsKeyword("order")) {
      Advance();
      if (!Peek().IsKeyword("by")) return Error("expected BY after ORDER");
      Advance();
      do {
        OrderItem item;
        FRAPPE_ASSIGN_OR_RETURN(item.expr, ParseValue());
        if (Peek().IsKeyword("desc")) {
          Advance();
          item.ascending = false;
        } else if (Peek().IsKeyword("asc")) {
          Advance();
        }
        clause.order_by.push_back(std::move(item));
      } while (Accept(TokenType::kComma));
    }
    if (Peek().IsKeyword("skip")) {
      Advance();
      if (!At(TokenType::kInt)) return Error("expected integer after SKIP");
      clause.skip = Advance().int_value;
    }
    if (Peek().IsKeyword("limit")) {
      Advance();
      if (!At(TokenType::kInt)) return Error("expected integer after LIMIT");
      clause.limit = Advance().int_value;
    }
    return clause;
  }

  Result<std::vector<ProjectionItem>> ParseProjectionItems() {
    std::vector<ProjectionItem> items;
    do {
      ProjectionItem item;
      FRAPPE_ASSIGN_OR_RETURN(item.expr, ParseValue());
      if (Peek().IsKeyword("as")) {
        Advance();
        if (!At(TokenType::kIdent)) return Error("expected alias after AS");
        item.alias = Advance().text;
      } else {
        item.alias = DeriveAlias(*item.expr);
      }
      items.push_back(std::move(item));
    } while (Accept(TokenType::kComma));
    return items;
  }

  static std::string DeriveAlias(const Expr& expr) {
    if (const auto* v = std::get_if<VarExpr>(&expr.node)) return v->name;
    if (const auto* p = std::get_if<PropExpr>(&expr.node)) {
      return p->var + "." + p->key;
    }
    if (const auto* c = std::get_if<CallExpr>(&expr.node)) {
      if (c->star) return c->function + "(*)";
      return c->function + "(...)";
    }
    return "expr";
  }

  // --- patterns ---

  // True if the upcoming tokens begin a relationship pattern.
  bool AtRelStart() const {
    if (At(TokenType::kMinus)) return true;
    return At(TokenType::kLt) && Peek(1).type == TokenType::kMinus;
  }

  Result<PatternChain> ParsePatternChain() {
    // shortestPath((a)-[:t*]->(b)) — paper Section 4.4's "shortest path
    // queries are also useful" use case.
    if (Peek().IsKeyword("shortestpath") &&
        Peek(1).type == TokenType::kLParen) {
      Advance();  // shortestPath
      Advance();  // (
      FRAPPE_ASSIGN_OR_RETURN(PatternChain inner, ParsePatternChain());
      FRAPPE_RETURN_IF_ERROR(
          Expect(TokenType::kRParen, "')' closing shortestPath"));
      if (inner.rels.size() != 1 || !inner.rels[0].var_length) {
        return Error(
            "shortestPath expects a single variable-length relationship");
      }
      inner.shortest = true;
      return inner;
    }
    PatternChain chain;
    FRAPPE_ASSIGN_OR_RETURN(NodePattern first, ParseNodePattern());
    chain.nodes.push_back(std::move(first));
    while (AtRelStart()) {
      FRAPPE_ASSIGN_OR_RETURN(RelPattern rel, ParseRelPattern());
      chain.rels.push_back(std::move(rel));
      FRAPPE_ASSIGN_OR_RETURN(NodePattern node, ParseNodePattern());
      chain.nodes.push_back(std::move(node));
    }
    return chain;
  }

  Result<NodePattern> ParseNodePattern() {
    NodePattern node;
    if (At(TokenType::kIdent) && !IsReservedIdent(Peek())) {
      node.var = Advance().text;
      return node;
    }
    FRAPPE_RETURN_IF_ERROR(Expect(TokenType::kLParen, "node pattern"));
    if (At(TokenType::kIdent) && !IsReservedIdent(Peek())) {
      node.var = Advance().text;
    }
    while (Accept(TokenType::kColon)) {
      if (!At(TokenType::kIdent)) return Error("expected label name");
      node.labels.push_back(Advance().text);
    }
    if (At(TokenType::kLBrace)) {
      FRAPPE_ASSIGN_OR_RETURN(node.props, ParsePropMap());
    }
    FRAPPE_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')' in node pattern"));
    return node;
  }

  Result<RelPattern> ParseRelPattern() {
    RelPattern rel;
    bool incoming = false;
    if (Accept(TokenType::kLt)) {
      FRAPPE_RETURN_IF_ERROR(Expect(TokenType::kMinus, "'-' after '<'"));
      incoming = true;
    } else {
      FRAPPE_RETURN_IF_ERROR(Expect(TokenType::kMinus, "'-'"));
    }
    if (Accept(TokenType::kLBracket)) {
      FRAPPE_RETURN_IF_ERROR(ParseRelDetail(&rel));
      FRAPPE_RETURN_IF_ERROR(Expect(TokenType::kRBracket, "']'"));
    }
    FRAPPE_RETURN_IF_ERROR(Expect(TokenType::kMinus, "'-' closing relationship"));
    bool outgoing = false;
    if (!incoming && Accept(TokenType::kGt)) outgoing = true;
    if (incoming) {
      rel.direction = graph::Direction::kIn;
    } else if (outgoing) {
      rel.direction = graph::Direction::kOut;
    } else {
      rel.direction = graph::Direction::kBoth;
    }
    return rel;
  }

  Status ParseRelDetail(RelPattern* rel) {
    if (At(TokenType::kIdent) && !IsReservedIdent(Peek())) {
      rel->var = Advance().text;
    }
    if (Accept(TokenType::kColon)) {
      if (!At(TokenType::kIdent)) return Error("expected relationship type");
      rel->types.push_back(Advance().text);
      while (Accept(TokenType::kPipe)) {
        Accept(TokenType::kColon);  // `|:type` (Cypher 2.x) or `|type` (1.x)
        if (!At(TokenType::kIdent)) {
          return Error("expected relationship type after '|'");
        }
        rel->types.push_back(Advance().text);
      }
    }
    if (Accept(TokenType::kStar)) {
      rel->var_length = true;
      rel->min_length = 1;
      rel->max_length = kUnboundedLength;
      if (At(TokenType::kInt)) {
        int64_t n = Advance().int_value;
        if (n < 0) return Error("negative path length");
        rel->min_length = static_cast<uint32_t>(n);
        rel->max_length = static_cast<uint32_t>(n);
        if (Accept(TokenType::kDotDot)) {
          rel->max_length = kUnboundedLength;
          if (At(TokenType::kInt)) {
            rel->max_length = static_cast<uint32_t>(Advance().int_value);
          }
        }
      } else if (Accept(TokenType::kDotDot)) {
        // `*..3`
        if (At(TokenType::kInt)) {
          rel->max_length = static_cast<uint32_t>(Advance().int_value);
        }
      }
      if (rel->min_length > rel->max_length) {
        return Error("path length range is empty");
      }
    }
    if (At(TokenType::kLBrace)) {
      FRAPPE_ASSIGN_OR_RETURN(rel->props, ParsePropMap());
    }
    return Status::OK();
  }

  Result<std::vector<PropConstraint>> ParsePropMap() {
    std::vector<PropConstraint> props;
    FRAPPE_RETURN_IF_ERROR(Expect(TokenType::kLBrace, "'{'"));
    if (!Accept(TokenType::kRBrace)) {
      do {
        PropConstraint prop;
        if (!At(TokenType::kIdent)) return Error("expected property name");
        prop.key = Advance().text;
        FRAPPE_RETURN_IF_ERROR(Expect(TokenType::kColon, "':'"));
        FRAPPE_ASSIGN_OR_RETURN(prop.value, ParseLiteral());
        props.push_back(std::move(prop));
      } while (Accept(TokenType::kComma));
      FRAPPE_RETURN_IF_ERROR(Expect(TokenType::kRBrace, "'}'"));
    }
    return props;
  }

  Result<Literal> ParseLiteral() {
    bool negative = Accept(TokenType::kMinus);
    const Token& t = Peek();
    switch (t.type) {
      case TokenType::kInt:
        Advance();
        return Literal::Int(negative ? -t.int_value : t.int_value);
      case TokenType::kDouble:
        Advance();
        return Literal::Double(negative ? -t.double_value : t.double_value);
      case TokenType::kString:
        if (negative) return Error("'-' before string literal");
        Advance();
        return Literal::String(t.text);
      case TokenType::kIdent:
        if (negative) return Error("'-' before identifier");
        if (t.IsKeyword("true")) {
          Advance();
          return Literal::Bool(true);
        }
        if (t.IsKeyword("false")) {
          Advance();
          return Literal::Bool(false);
        }
        if (t.IsKeyword("null")) {
          Advance();
          return Literal::Null();
        }
        return Error("expected literal, got " + TokenDescription(t));
      default:
        return Error("expected literal, got " + TokenDescription(t));
    }
  }

  // --- expressions ---

  Result<ExprPtr> ParseExpr() { return ParseOr(); }

  Result<ExprPtr> ParseOr() {
    FRAPPE_ASSIGN_OR_RETURN(ExprPtr left, ParseAnd());
    while (Peek().IsKeyword("or")) {
      Advance();
      FRAPPE_ASSIGN_OR_RETURN(ExprPtr right, ParseAnd());
      auto expr = std::make_unique<Expr>();
      expr->node = BoolExpr{BoolOp::kOr, std::move(left), std::move(right)};
      left = std::move(expr);
    }
    return left;
  }

  Result<ExprPtr> ParseAnd() {
    FRAPPE_ASSIGN_OR_RETURN(ExprPtr left, ParseNot());
    while (Peek().IsKeyword("and")) {
      Advance();
      FRAPPE_ASSIGN_OR_RETURN(ExprPtr right, ParseNot());
      auto expr = std::make_unique<Expr>();
      expr->node = BoolExpr{BoolOp::kAnd, std::move(left), std::move(right)};
      left = std::move(expr);
    }
    return left;
  }

  Result<ExprPtr> ParseNot() {
    if (Peek().IsKeyword("not")) {
      Advance();
      FRAPPE_ASSIGN_OR_RETURN(ExprPtr inner, ParseNot());
      auto expr = std::make_unique<Expr>();
      expr->node = NotExpr{std::move(inner)};
      return expr;
    }
    return ParseCondition();
  }

  // A condition is a pattern predicate, a comparison, or a bare boolean
  // value expression.
  Result<ExprPtr> ParseCondition() {
    // Attempt a pattern predicate first; roll back unless the parse
    // succeeds AND the chain has at least one relationship (a bare variable
    // or parenthesized expression must be treated as a value).
    size_t save = Save();
    if (At(TokenType::kIdent) || At(TokenType::kLParen)) {
      Result<PatternChain> chain = ParsePatternChain();
      if (chain.ok() && !chain->rels.empty()) {
        auto expr = std::make_unique<Expr>();
        expr->node = PatternExpr{std::move(*chain)};
        return expr;
      }
      Restore(save);
    }
    FRAPPE_ASSIGN_OR_RETURN(ExprPtr left, ParseValue());
    CompareOp op;
    switch (Peek().type) {
      case TokenType::kEq:
        op = CompareOp::kEq;
        break;
      case TokenType::kNe:
        op = CompareOp::kNe;
        break;
      case TokenType::kLt:
        op = CompareOp::kLt;
        break;
      case TokenType::kLe:
        op = CompareOp::kLe;
        break;
      case TokenType::kGt:
        op = CompareOp::kGt;
        break;
      case TokenType::kGe:
        op = CompareOp::kGe;
        break;
      default:
        return left;  // bare value used as condition
    }
    Advance();
    FRAPPE_ASSIGN_OR_RETURN(ExprPtr right, ParseValue());
    auto expr = std::make_unique<Expr>();
    expr->node = CompareExpr{op, std::move(left), std::move(right)};
    return expr;
  }

  // Value-level expression: literal, variable, property access, function
  // call, or parenthesized boolean expression.
  Result<ExprPtr> ParseValue() {
    const Token& t = Peek();
    if (t.type == TokenType::kLParen) {
      Advance();
      FRAPPE_ASSIGN_OR_RETURN(ExprPtr inner, ParseOr());
      FRAPPE_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
      return inner;
    }
    if (t.type == TokenType::kIdent && !IsReservedIdent(t)) {
      // Function call?
      if (Peek(1).type == TokenType::kLParen) {
        return ParseCall();
      }
      std::string var = Advance().text;
      if (Accept(TokenType::kDot)) {
        if (!At(TokenType::kIdent)) return Error("expected property name");
        auto expr = std::make_unique<Expr>();
        expr->node = PropExpr{std::move(var), Advance().text};
        return expr;
      }
      auto expr = std::make_unique<Expr>();
      expr->node = VarExpr{std::move(var)};
      return expr;
    }
    // Literals (including keywords true/false/null).
    FRAPPE_ASSIGN_OR_RETURN(Literal lit, ParseLiteral());
    auto expr = std::make_unique<Expr>();
    expr->node = LiteralExpr{std::move(lit)};
    return expr;
  }

  Result<ExprPtr> ParseCall() {
    CallExpr call;
    call.function = ToLower(Advance().text);
    FRAPPE_RETURN_IF_ERROR(Expect(TokenType::kLParen, "'('"));
    if (Accept(TokenType::kStar)) {
      call.star = true;
    } else if (!At(TokenType::kRParen)) {
      if (Peek().IsKeyword("distinct")) {
        Advance();
        call.distinct = true;
      }
      do {
        FRAPPE_ASSIGN_OR_RETURN(ExprPtr arg, ParseValue());
        call.args.push_back(std::move(arg));
      } while (Accept(TokenType::kComma));
    }
    FRAPPE_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
    auto expr = std::make_unique<Expr>();
    expr->node = std::move(call);
    return expr;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<Query> Parse(std::string_view input) {
  FRAPPE_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(input));
  Parser parser(std::move(tokens));
  return parser.ParseQuery();
}

}  // namespace frappe::query
