#ifndef FRAPPE_QUERY_EXPLAIN_H_
#define FRAPPE_QUERY_EXPLAIN_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "query/ast.h"
#include "query/database.h"
#include "query/executor.h"

namespace frappe::query {

// One rendered plan operator. EXPLAIN and PROFILE share this structure —
// PROFILE is the identical operator tree with runtime stats appended — so
// the two renderings can never drift.
struct PlanStep {
  std::string text;
  size_t clause_index = 0;  // AST clause this operator came from
  // First operator emitted for its clause: the anchor PROFILE hangs the
  // clause's OperatorStats on (secondary steps like Sort/Limit share the
  // clause's execution and carry no separate stats).
  bool primary = false;
  // Estimated output rows of this step's clause (the estimator works at
  // clause granularity, so secondary steps repeat their clause's value).
  // Negative = no estimate available.
  double est_rows = -1.0;
};

// Builds the operator tree for `query` against `db`'s indexes/statistics.
Result<std::vector<PlanStep>> BuildPlan(const Database& db,
                                        const Query& query);

// Renders steps as numbered lines ("1. <operator>\n"), padded so every
// " // " annotation block starts at one aligned column (identical for
// EXPLAIN and PROFILE, so both layouts parse the same way). Every step
// carries " // est_rows=E" from the cardinality estimator. With `stats`
// (PROFILE), each clause's primary step additionally gains " rows=...
// db_hits=... steps=... time=...ms q=Q" (q = per-step q-error of est vs
// actual rows), plus "frontier=[...] lanes=N" when the operator ran on
// the CSR closure fast path. Annotations never alter operator text —
// strip everything from " // " to end-of-line (and trailing padding
// spaces) to recover the bare operator tree exactly.
std::string RenderPlan(const std::vector<PlanStep>& steps,
                       const ExecStats* stats);

// Renders the execution plan the engine will follow for `query`: start
// operators (index seek / id seek / all-nodes scan), the anchor and
// expansion order chosen for each MATCH chain (with label/scan estimates
// from the database's indexes), filter predicates, and the
// projection/aggregation/ordering pipeline.
//
// This is the EXPLAIN the paper wished for when diagnosing "suboptimal
// graph explorations being chosen by the Cypher query language"
// (Section 6.1): it makes the exploration order visible before paying for
// it.
Result<std::string> Explain(const Database& db, const Query& query);

// Parses and explains in one step.
Result<std::string> ExplainText(const Database& db, std::string_view text);

// PROFILE rendering: the EXPLAIN operator tree annotated with the stats a
// real execution produced (QueryResult::stats with operators populated).
Result<std::string> ProfilePlan(const Database& db, const Query& query,
                                const ExecStats& stats);

// Renders an expression back to FQL-ish text (used by Explain and handy
// for diagnostics).
std::string DescribeExpr(const Expr& expr);

}  // namespace frappe::query

#endif  // FRAPPE_QUERY_EXPLAIN_H_
