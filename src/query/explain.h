#ifndef FRAPPE_QUERY_EXPLAIN_H_
#define FRAPPE_QUERY_EXPLAIN_H_

#include <string>

#include "common/status.h"
#include "query/ast.h"
#include "query/database.h"

namespace frappe::query {

// Renders the execution plan the engine will follow for `query`: start
// operators (index seek / id seek / all-nodes scan), the anchor and
// expansion order chosen for each MATCH chain (with label/scan estimates
// from the database's indexes), filter predicates, and the
// projection/aggregation/ordering pipeline.
//
// This is the EXPLAIN the paper wished for when diagnosing "suboptimal
// graph explorations being chosen by the Cypher query language"
// (Section 6.1): it makes the exploration order visible before paying for
// it.
Result<std::string> Explain(const Database& db, const Query& query);

// Parses and explains in one step.
Result<std::string> ExplainText(const Database& db, std::string_view text);

// Renders an expression back to FQL-ish text (used by Explain and handy
// for diagnostics).
std::string DescribeExpr(const Expr& expr);

}  // namespace frappe::query

#endif  // FRAPPE_QUERY_EXPLAIN_H_
