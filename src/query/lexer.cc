#include "query/lexer.h"

#include <cctype>

#include "common/string_util.h"

namespace frappe::query {

bool Token::IsKeyword(std::string_view kw) const {
  return type == TokenType::kIdent && EqualsIgnoreCase(text, kw);
}

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

Result<std::vector<Token>> Lex(std::string_view input) {
  std::vector<Token> tokens;
  size_t pos = 0;
  auto push = [&](TokenType type, size_t at) {
    Token t;
    t.type = type;
    t.offset = at;
    tokens.push_back(std::move(t));
  };

  while (pos < input.size()) {
    char c = input[pos];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++pos;
      continue;
    }
    // Comments: // to end of line.
    if (c == '/' && pos + 1 < input.size() && input[pos + 1] == '/') {
      while (pos < input.size() && input[pos] != '\n') ++pos;
      continue;
    }
    size_t start = pos;
    if (IsIdentStart(c)) {
      while (pos < input.size() && IsIdentChar(input[pos])) ++pos;
      Token t;
      t.type = TokenType::kIdent;
      t.text = std::string(input.substr(start, pos - start));
      t.offset = start;
      tokens.push_back(std::move(t));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      while (pos < input.size() &&
             std::isdigit(static_cast<unsigned char>(input[pos]))) {
        ++pos;
      }
      // A float only if '.' is followed by a digit ("1..3" must lex as
      // 1 .. 3 for range patterns).
      bool is_double = false;
      if (pos + 1 < input.size() && input[pos] == '.' &&
          std::isdigit(static_cast<unsigned char>(input[pos + 1]))) {
        is_double = true;
        ++pos;
        while (pos < input.size() &&
               std::isdigit(static_cast<unsigned char>(input[pos]))) {
          ++pos;
        }
      }
      Token t;
      t.offset = start;
      std::string text(input.substr(start, pos - start));
      if (is_double) {
        t.type = TokenType::kDouble;
        t.double_value = std::stod(text);
      } else {
        t.type = TokenType::kInt;
        int64_t v = 0;
        if (!ParseInt64(text, &v)) {
          return Status::ParseError("integer literal out of range: " + text);
        }
        t.int_value = v;
      }
      tokens.push_back(std::move(t));
      continue;
    }
    if (c == '\'' || c == '"') {
      char quote = c;
      ++pos;
      std::string text;
      while (pos < input.size() && input[pos] != quote) {
        if (input[pos] == '\\' && pos + 1 < input.size()) {
          ++pos;  // simple escape: next char literally
        }
        text.push_back(input[pos++]);
      }
      if (pos >= input.size()) {
        return Status::ParseError("unterminated string literal");
      }
      ++pos;  // closing quote
      Token t;
      t.type = TokenType::kString;
      t.text = std::move(text);
      t.offset = start;
      tokens.push_back(std::move(t));
      continue;
    }
    switch (c) {
      case '(':
        push(TokenType::kLParen, start);
        ++pos;
        break;
      case ')':
        push(TokenType::kRParen, start);
        ++pos;
        break;
      case '[':
        push(TokenType::kLBracket, start);
        ++pos;
        break;
      case ']':
        push(TokenType::kRBracket, start);
        ++pos;
        break;
      case '{':
        push(TokenType::kLBrace, start);
        ++pos;
        break;
      case '}':
        push(TokenType::kRBrace, start);
        ++pos;
        break;
      case ':':
        push(TokenType::kColon, start);
        ++pos;
        break;
      case ',':
        push(TokenType::kComma, start);
        ++pos;
        break;
      case '|':
        push(TokenType::kPipe, start);
        ++pos;
        break;
      case '*':
        push(TokenType::kStar, start);
        ++pos;
        break;
      case '-':
        push(TokenType::kMinus, start);
        ++pos;
        break;
      case '=':
        push(TokenType::kEq, start);
        ++pos;
        break;
      case '.':
        if (pos + 1 < input.size() && input[pos + 1] == '.') {
          push(TokenType::kDotDot, start);
          pos += 2;
        } else {
          push(TokenType::kDot, start);
          ++pos;
        }
        break;
      case '<':
        if (pos + 1 < input.size() && input[pos + 1] == '>') {
          push(TokenType::kNe, start);
          pos += 2;
        } else if (pos + 1 < input.size() && input[pos + 1] == '=') {
          push(TokenType::kLe, start);
          pos += 2;
        } else {
          push(TokenType::kLt, start);
          ++pos;
        }
        break;
      case '>':
        if (pos + 1 < input.size() && input[pos + 1] == '=') {
          push(TokenType::kGe, start);
          pos += 2;
        } else {
          push(TokenType::kGt, start);
          ++pos;
        }
        break;
      default:
        return Status::ParseError(std::string("unexpected character '") + c +
                                  "' at offset " + std::to_string(start));
    }
  }
  Token end;
  end.type = TokenType::kEnd;
  end.offset = input.size();
  tokens.push_back(std::move(end));
  return tokens;
}

std::string TokenDescription(const Token& token) {
  switch (token.type) {
    case TokenType::kEnd:
      return "end of query";
    case TokenType::kIdent:
      return "'" + token.text + "'";
    case TokenType::kInt:
      return std::to_string(token.int_value);
    case TokenType::kDouble:
      return std::to_string(token.double_value);
    case TokenType::kString:
      return "string '" + token.text + "'";
    case TokenType::kLParen:
      return "'('";
    case TokenType::kRParen:
      return "')'";
    case TokenType::kLBracket:
      return "'['";
    case TokenType::kRBracket:
      return "']'";
    case TokenType::kLBrace:
      return "'{'";
    case TokenType::kRBrace:
      return "'}'";
    case TokenType::kColon:
      return "':'";
    case TokenType::kComma:
      return "','";
    case TokenType::kDot:
      return "'.'";
    case TokenType::kDotDot:
      return "'..'";
    case TokenType::kPipe:
      return "'|'";
    case TokenType::kStar:
      return "'*'";
    case TokenType::kMinus:
      return "'-'";
    case TokenType::kEq:
      return "'='";
    case TokenType::kNe:
      return "'<>'";
    case TokenType::kLt:
      return "'<'";
    case TokenType::kLe:
      return "'<='";
    case TokenType::kGt:
      return "'>'";
    case TokenType::kGe:
      return "'>='";
  }
  return "?";
}

}  // namespace frappe::query
