#ifndef FRAPPE_QUERY_PARSER_H_
#define FRAPPE_QUERY_PARSER_H_

#include <string_view>

#include "common/status.h"
#include "query/ast.h"

namespace frappe::query {

// Parses an FQL query string into its AST. Returns ParseError with a
// human-readable message (including offset context) on malformed input.
Result<Query> Parse(std::string_view input);

}  // namespace frappe::query

#endif  // FRAPPE_QUERY_PARSER_H_
