#ifndef FRAPPE_QUERY_SESSION_H_
#define FRAPPE_QUERY_SESSION_H_

#include <functional>
#include <memory>
#include <string>
#include <string_view>

#include <vector>

#include "common/status.h"
#include "graph/indexes.h"
#include "graph/snapshot_manager.h"
#include "model/code_graph.h"
#include "query/database.h"
#include "query/executor.h"

namespace frappe::query {

// Parses and executes `query_text` against a wired Database: EXPLAIN
// returns the plan without executing, PROFILE annotates it with operator
// stats, and the FRAPPE_SLOW_QUERY_MS slow-query log applies. Session and
// SnapshotSession both run queries through this.
Result<QueryResult> RunQuery(const Database& db, std::string_view query_text,
                             const ExecOptions& options = {});

// End-to-end query session over a Frappé code graph: owns the auto name
// index and label index, wires schema-aware label/property resolution
// (group labels like `symbol`/`container` expand per paper Table 6, and
// paper property aliases like NAME_START_COLUMN resolve), and runs FQL
// strings.
//
// The indexes are built eagerly at construction, mirroring a database whose
// index files already exist on disk.
class Session {
 public:
  explicit Session(const model::CodeGraph& code_graph);

  // Parses and executes `query_text`. `EXPLAIN <query>` returns the plan
  // in QueryResult::plan without executing; `PROFILE <query>` executes for
  // real and returns rows plus the plan annotated with per-operator stats.
  // When the FRAPPE_SLOW_QUERY_MS environment variable is set (read per
  // call), any execution at or over that many milliseconds is logged with
  // its plan — to stderr, or to the sink installed below.
  Result<QueryResult> Run(std::string_view query_text,
                          const ExecOptions& options = {}) const;

  const Database& database() const { return db_; }
  const graph::NameIndex& name_index() const { return name_index_; }
  const graph::LabelIndex& label_index() const { return label_index_; }

 private:
  const model::CodeGraph& code_graph_;
  graph::NameIndex name_index_;
  graph::LabelIndex label_index_;
  Database db_;
};

// A query session over a snapshot family on disk: loads the newest
// verifying generation through graph::SnapshotManager (falling back past a
// corrupt current file), rebuilds the name index when the snapshot didn't
// embed one (or embedded a corrupt one — see LoadedSnapshot::warnings),
// installs the Frappé schema, and wires a Database.
//
// Heap-allocated via Open() because Database captures raw pointers into
// the owned store/indexes; the unique_ptr keeps those addresses stable.
class SnapshotSession {
 public:
  static Result<std::unique_ptr<SnapshotSession>> Open(
      const std::string& path,
      const graph::SnapshotManager::Options& options = {});

  Result<QueryResult> Run(std::string_view query_text,
                          const ExecOptions& options = {}) const {
    return RunQuery(db_, query_text, options);
  }

  const Database& database() const { return db_; }
  const graph::GraphView& view() const { return *store_; }
  // The owned store itself, e.g. for EstimateMemory() (Table 4 sections on
  // /debug/storagez).
  const graph::GraphStore& store() const { return *store_; }
  const graph::NameIndex& name_index() const { return name_index_; }
  const model::Schema& schema() const { return schema_; }

  // Which file actually loaded: generation 0 is `path` itself, higher
  // generations mean the current snapshot was unusable.
  int generation() const { return generation_; }
  const std::string& loaded_path() const { return loaded_path_; }
  // Non-fatal degradations from the load (checksum fallbacks, index
  // rebuilds). Callers should surface these to the operator.
  const std::vector<std::string>& warnings() const { return warnings_; }

 private:
  SnapshotSession() = default;

  std::unique_ptr<graph::GraphStore> store_;
  graph::NameIndex name_index_;
  graph::LabelIndex label_index_;
  model::Schema schema_;
  Database db_;
  std::vector<std::string> warnings_;
  int generation_ = 0;
  std::string loaded_path_;
};

// Wires a schema-aware Database over arbitrary components (used when the
// graph was loaded from a snapshot rather than built through CodeGraph).
// Group labels expand using `schema`; property names canonicalize through
// model::CanonicalPropertyName.
Database MakeFrappeDatabase(const graph::GraphView& view,
                            const model::Schema& schema,
                            const graph::NameIndex* name_index,
                            const graph::LabelIndex* label_index);

// Redirects the slow-query log (FRAPPE_SLOW_QUERY_MS) from stderr into
// `sink`; pass nullptr to restore stderr. Not thread-safe with concurrent
// Session::Run — install before running queries (test hook).
void SetSlowQueryLogSinkForTesting(
    std::function<void(const std::string&)> sink);

}  // namespace frappe::query

#endif  // FRAPPE_QUERY_SESSION_H_
