#include "query/fast_path.h"

#include <variant>

#include "obs/metrics.h"

namespace frappe::query {

namespace {

FastPathDecision No(const char* reason) {
  static obs::Counter& rejected =
      obs::Registry::Global().GetCounter("fast_path.rejected");
  rejected.Add();
  FastPathDecision d;
  d.reason = reason;
  return d;
}

FastPathDecision Yes() {
  static obs::Counter& eligible =
      obs::Registry::Global().GetCounter("fast_path.eligible");
  eligible.Add();
  FastPathDecision d;
  d.eligible = true;
  return d;
}

// Classifies a projection (WITH or RETURN items) for multiplicity safety.
enum class ProjectionKind {
  kCollapsing,   // DISTINCT, or aggregation with only count(DISTINCT x)
  kTransparent,  // plain projection: duplicates in -> duplicates out
  kObserving,    // count(*) / count(x): row multiplicity reaches the output
};

ProjectionKind ClassifyProjection(const std::vector<ProjectionItem>& items,
                                  bool distinct) {
  if (distinct) return ProjectionKind::kCollapsing;
  bool has_aggregate = false;
  bool all_distinct_counts = true;
  for (const ProjectionItem& item : items) {
    const auto* call = std::get_if<CallExpr>(&item.expr->node);
    if (call == nullptr || call->function != "count") continue;
    has_aggregate = true;
    if (call->star || !call->distinct) all_distinct_counts = false;
  }
  if (!has_aggregate) return ProjectionKind::kTransparent;
  // Aggregation groups by the non-aggregate items. Deduplicating input rows
  // preserves the set of groups and every count(DISTINCT x), but changes
  // count(*) / count(x).
  return all_distinct_counts ? ProjectionKind::kCollapsing
                             : ProjectionKind::kObserving;
}

}  // namespace

FastPathDecision ChainEligibleForCsrClosure(const Query& query,
                                            size_t clause_index,
                                            const PatternChain& chain) {
  // --- shape ---
  if (chain.shortest) return No("shortestPath has its own plan");
  if (chain.nodes.size() != 2 || chain.rels.size() != 1) {
    return No("chain is not a single hop");
  }
  const RelPattern& rel = chain.rels[0];
  if (!rel.var_length) return No("relationship is fixed-length");
  if (!rel.var.empty()) {
    return No("relationship variable binds the path edges");
  }
  if (!rel.props.empty()) {
    return No("relationship properties require per-edge checks on the path");
  }
  if (rel.min_length > 1) {
    return No("min length > 1 distinguishes paths the closure cannot");
  }
  if (rel.max_length != kUnboundedLength &&
      rel.max_length < kCsrClosureDepthThreshold) {
    return No("bounded shallow expansion; enumeration is cheap");
  }

  // --- downstream multiplicity safety ---
  for (size_t i = clause_index + 1; i < query.clauses.size(); ++i) {
    const Clause& clause = query.clauses[i];
    if (std::holds_alternative<StartClause>(clause) ||
        std::holds_alternative<MatchClause>(clause) ||
        std::holds_alternative<WhereClause>(clause)) {
      // Per-row filters/extensions: duplicates in -> duplicates out.
      continue;
    }
    if (const auto* with = std::get_if<WithClause>(&clause)) {
      switch (ClassifyProjection(with->items, with->distinct)) {
        case ProjectionKind::kCollapsing:
          return Yes();
        case ProjectionKind::kTransparent:
          continue;
        case ProjectionKind::kObserving:
          return No("WITH observes row multiplicity (count over paths)");
      }
    }
    if (const auto* ret = std::get_if<ReturnClause>(&clause)) {
      switch (ClassifyProjection(ret->items, ret->distinct)) {
        case ProjectionKind::kCollapsing:
          return Yes();
        case ProjectionKind::kTransparent:
        case ProjectionKind::kObserving:
          return No("RETURN observes row multiplicity (one row per path)");
      }
    }
  }
  return No("no collapsing projection downstream");
}

}  // namespace frappe::query
