#ifndef FRAPPE_SERVER_QUERY_SERVER_H_
#define FRAPPE_SERVER_QUERY_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "obs/http_listener.h"
#include "server/admission.h"
#include "server/epoch.h"

namespace frappe::server {

// The concurrent query front door: FQL over HTTP, served by a fixed worker
// pool behind an explicit admission controller, reading epoch-pinned
// snapshots.
//
//   POST /query     body = FQL text; ?deadline_ms=N&max_steps=N optional
//                   (&fast_path=0 forces the generic executor — a debug
//                   knob for plan comparison and slow-query tests).
//                   200 -> {"columns": [...], "rows": [[...]], "stats":
//                   {...}, "epoch": N, "trace_id": "<32 hex>",
//                   "timeline": {queue_us, parse_us, plan_us, exec_us,
//                   serialize_us, total_us}}. Errors map: parse/bad
//                   request 400, deadline 408, step or memory budget 413,
//                   shed 429 (+ Retry-After), cancelled 499,
//                   draining/no-epoch 503, internal 500.
//
// Request tracing: a W3C `traceparent` request header is adopted (the
// response echoes the same trace id; the client's span id becomes the
// server root span's parent) or a fresh trace id is minted — malformed
// headers fall back to minting, never 4xx. Every worker-side response
// carries a `traceparent` response header. Span trees for slow / errored /
// cancelled / shed / explicitly-traced requests are retained in the
// obs::TraceStore, served by /debug/tracez?trace_id=<id>.
//   GET  /healthz   liveness ("ok")
//   GET  /readyz    readiness (obs::Readiness: draining/overloaded 503)
//
// Concurrency model: the accept thread parses one request and makes an
// admission decision — queue it or shed it — and never executes queries.
// Workers pop, check the queue deadline (expired requests get 408, not an
// execution slot), pin the current epoch, and run the query with a
// per-request deadline and a per-worker cancel token that the query
// registry aliases (so /debug/cancel, the stuck-query watchdog, and
// graceful drain all trip the same switch).
//
// Snapshot isolation: a writer publishing epochs through the EpochManager
// never perturbs running queries — each query holds a shared_ptr to the
// epoch it started on, and old epochs are reclaimed when their last reader
// departs.
//
// Graceful drain (Stop): stop accepting; answer still-queued requests 503;
// trip every worker's cancel token so stragglers return kCancelled (499);
// join the pool; flush the query log.
class QueryServer {
 public:
  struct Options {
    uint16_t port = 0;  // 0 = kernel-assigned; port() tells which
    std::string bind_address = "127.0.0.1";
    // SO_RCVTIMEO/SO_SNDTIMEO + overall request-read deadline per
    // connection (see obs::HttpListener).
    int socket_timeout_ms = 5000;
    size_t workers = 4;
    AdmissionConfig admission;
    // Per-request execution deadline when the client didn't pass
    // ?deadline_ms. Client values are clamped to max_deadline_ms.
    int64_t default_deadline_ms = 10000;
    int64_t max_deadline_ms = 60000;
    // Default step budget (0 = unlimited); client ?max_steps clamps to
    // max_steps_limit when that is nonzero.
    uint64_t default_max_steps = 0;
    uint64_t max_steps_limit = 0;
  };

  // Binds, listens, and starts the worker pool. `epochs` must outlive the
  // server; it may be empty (queries answer 503 until the first Publish).
  static Result<std::unique_ptr<QueryServer>> Start(Options options,
                                                    EpochManager* epochs);

  ~QueryServer();
  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  uint16_t port() const { return listener_ ? listener_->port() : 0; }
  bool draining() const {
    return draining_.load(std::memory_order_relaxed);
  }

  // Graceful drain; idempotent and safe to call concurrently with traffic.
  void Stop();

 private:
  explicit QueryServer(Options options, EpochManager* epochs);

  void HandleConnection(obs::HttpConnection conn);
  void WorkerLoop(size_t worker_index);
  obs::HttpResponse ExecuteQuery(const AdmissionQueue::Item& item,
                                 uint64_t queue_wait_us,
                                 size_t worker_index);

  Options options_;
  EpochManager* epochs_;
  AdmissionQueue queue_;
  std::unique_ptr<obs::HttpListener> listener_;
  // One cancel token per worker, heap-pinned so the registry can alias
  // them; Stop() trips them all to cancel stragglers.
  std::vector<std::unique_ptr<std::atomic<bool>>> worker_cancel_;
  std::vector<std::thread> workers_;
  std::atomic<bool> draining_{false};
  std::atomic<bool> stopped_{false};
};

}  // namespace frappe::server

#endif  // FRAPPE_SERVER_QUERY_SERVER_H_
