#include "server/query_server.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <utility>

#include "common/fault_injector.h"
#include "common/string_util.h"
#include "obs/fingerprint.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/query_log.h"
#include "obs/readiness.h"
#include "obs/trace.h"
#include "obs/trace_store.h"
#include "query/executor.h"
#include "query/session.h"

namespace frappe::server {

namespace {

using obs::HttpConnection;
using obs::HttpError;
using obs::HttpQueryParam;
using obs::HttpRequest;
using obs::HttpResponse;
using obs::JsonResponse;

obs::Counter& RequestCounter() {
  static obs::Counter& c =
      obs::Registry::Global().GetCounter("server.requests");
  return c;
}
obs::Counter& AdmittedCounter() {
  static obs::Counter& c =
      obs::Registry::Global().GetCounter("server.admitted");
  return c;
}
obs::Counter& ShedQueueCounter() {
  static obs::Counter& c =
      obs::Registry::Global().GetCounter("server.shed_queue_full");
  return c;
}
obs::Counter& ShedBudgetCounter() {
  static obs::Counter& c =
      obs::Registry::Global().GetCounter("server.shed_over_budget");
  return c;
}
obs::Counter& QueueExpiredCounter() {
  static obs::Counter& c =
      obs::Registry::Global().GetCounter("server.queue_deadline_expired");
  return c;
}
obs::Counter& DrainedCounter() {
  static obs::Counter& c =
      obs::Registry::Global().GetCounter("server.drained_requests");
  return c;
}
obs::Counter& OkCounter() {
  static obs::Counter& c =
      obs::Registry::Global().GetCounter("server.queries_ok");
  return c;
}
obs::Counter& ErrorCounter() {
  static obs::Counter& c =
      obs::Registry::Global().GetCounter("server.queries_error");
  return c;
}
obs::Counter& EnqueueFaultCounter() {
  static obs::Counter& c =
      obs::Registry::Global().GetCounter("server.enqueue_faults");
  return c;
}
obs::Histogram& QueueWaitHistogram() {
  static obs::Histogram& h =
      obs::Registry::Global().GetHistogram("server.queue_wait_us");
  return h;
}

uint64_t NowUnixMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

// Slow-query threshold in ms (-1 = unset) — the same knob the session's
// slow-query log reads, reused here as the trace-retention bar so "it was
// logged slow" and "its trace was retained" agree.
int64_t SlowTraceThresholdMs() {
  const char* env = std::getenv("FRAPPE_SLOW_QUERY_MS");
  if (env == nullptr || *env == '\0') return -1;
  char* end = nullptr;
  long long value = std::strtoll(env, &end, 10);
  if (end == env || value < 0) return -1;
  return static_cast<int64_t>(value);
}

// HTTP status for a failed query. 499 is the nginx convention for
// "request aborted" — the closest standard-adjacent code for cooperative
// cancellation.
std::pair<int, const char*> HttpStatusFor(StatusCode code) {
  switch (code) {
    case StatusCode::kInvalidArgument:
    case StatusCode::kParseError:
    case StatusCode::kNotFound:
    case StatusCode::kOutOfRange:
    case StatusCode::kFailedPrecondition:
    case StatusCode::kAlreadyExists:
    case StatusCode::kUnimplemented:
      return {400, "Bad Request"};
    case StatusCode::kDeadlineExceeded:
      return {408, "Request Timeout"};
    case StatusCode::kResourceExhausted:
      // Step or memory budget exceeded: the request asked for more
      // resources than the server allows (mirrors the 413 the listener
      // returns for oversized request bodies).
      return {413, "Payload Too Large"};
    case StatusCode::kCancelled:
      return {499, "Client Closed Request"};
    default:
      return {500, "Internal Server Error"};
  }
}

HttpResponse QueryErrorResponse(const Status& status) {
  auto [code, reason] = HttpStatusFor(status.code());
  std::string body = "{\"error\": ";
  body += JsonQuote(status.message());
  body += ", \"code\": \"";
  body += StatusCodeName(status.code());
  body += "\", \"status\": " + std::to_string(code) + "}\n";
  return JsonResponse(code, reason, std::move(body));
}

HttpResponse ShedResponse(std::string_view detail, int retry_after_seconds) {
  HttpResponse response =
      HttpError(429, "Too Many Requests", detail);
  response.headers.emplace_back("Retry-After",
                                std::to_string(retry_after_seconds));
  return response;
}

// Renders everything except the closing brace: the caller measures this
// call as serialize time, then appends the trace id and the timeline (which
// must include that very measurement) before closing the object.
std::string RenderResultJsonOpen(const query::QueryResult& result,
                                 const query::Database& db, uint64_t epoch) {
  std::string out = "{\"columns\": [";
  for (size_t i = 0; i < result.columns.size(); ++i) {
    if (i > 0) out += ", ";
    out += JsonQuote(result.columns[i]);
  }
  out += "], \"rows\": [";
  for (size_t r = 0; r < result.rows.size(); ++r) {
    out += r > 0 ? ",\n  [" : "\n  [";
    const auto& row = result.rows[r];
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out += ", ";
      out += JsonQuote(row[c].ToString(db));
    }
    out += "]";
  }
  out += result.rows.empty() ? "]" : "\n]";
  if (!result.plan.empty()) {
    out += ", \"plan\": " + JsonQuote(result.plan);
  }
  char elapsed[32];
  std::snprintf(elapsed, sizeof(elapsed), "%.3f",
                result.stats.elapsed_ms);
  out += ", \"stats\": {\"elapsed_ms\": ";
  out += elapsed;
  out += ", \"rows\": " + std::to_string(result.rows.size());
  out += ", \"steps\": " + std::to_string(result.stats.steps);
  out += ", \"db_hits\": " + std::to_string(result.stats.db_hits.Total());
  out += ", \"fast_path\": ";
  out += result.stats.fast_path_taken ? "true" : "false";
  out += ", \"cpu_us\": " + std::to_string(result.stats.cpu_us);
  out += ", \"alloc_bytes\": " + std::to_string(result.stats.alloc_bytes);
  out += ", \"peak_bytes\": " + std::to_string(result.stats.peak_bytes);
  out += ", \"scanned_bytes\": " + std::to_string(result.stats.scanned_bytes);
  out += "}, \"epoch\": " + std::to_string(epoch);
  return out;
}

std::string RenderTimelineJson(const query::Timeline& t) {
  std::string out = "{\"queue_us\": " + std::to_string(t.queue_us);
  out += ", \"parse_us\": " + std::to_string(t.parse_us);
  out += ", \"plan_us\": " + std::to_string(t.plan_us);
  out += ", \"exec_us\": " + std::to_string(t.exec_us);
  out += ", \"serialize_us\": " + std::to_string(t.serialize_us);
  out += ", \"total_us\": " + std::to_string(t.total_us) + "}";
  return out;
}

// A shed request never reaches a worker, but its trace id is exactly what
// an operator chasing 429s has in hand: retain a one-span tree tagged
// "shed" so /debug/tracez?trace_id= explains the refusal.
void RetainShedTrace(const AdmissionQueue::Item& item) {
  obs::StoredTrace trace;
  trace.trace_hi = item.trace.trace_hi;
  trace.trace_lo = item.trace.trace_lo;
  trace.reason = "shed";
  trace.status = "ResourceExhausted";
  trace.fingerprint = obs::FingerprintHex(
      obs::NormalizeQuery(item.conn.request().body).fingerprint);
  trace.ts_us = NowUnixMicros();
  obs::CollectedSpan span;
  span.name = "server.shed";
  span.span_id = item.trace.span_id;
  span.parent_id = item.root_parent_id;
  span.start_us = obs::Trace::NowMicros();
  trace.spans.push_back(span);
  obs::TraceStore::Global().Retain(std::move(trace));
}

}  // namespace

QueryServer::QueryServer(Options options, EpochManager* epochs)
    : options_(std::move(options)),
      epochs_(epochs),
      queue_(options_.admission) {}

Result<std::unique_ptr<QueryServer>> QueryServer::Start(
    Options options, EpochManager* epochs) {
  if (epochs == nullptr) {
    return Status::InvalidArgument("QueryServer needs an EpochManager");
  }
  if (options.workers == 0) options.workers = 1;
  std::unique_ptr<QueryServer> server(
      new QueryServer(std::move(options), epochs));
  for (size_t i = 0; i < server->options_.workers; ++i) {
    server->worker_cancel_.push_back(
        std::make_unique<std::atomic<bool>>(false));
  }
  obs::HttpListener::Options listener_options;
  listener_options.port = server->options_.port;
  listener_options.bind_address = server->options_.bind_address;
  listener_options.socket_timeout_ms = server->options_.socket_timeout_ms;
  FRAPPE_ASSIGN_OR_RETURN(
      server->listener_,
      obs::HttpListener::Start(std::move(listener_options),
                               [s = server.get()](HttpConnection conn) {
                                 s->HandleConnection(std::move(conn));
                               }));
  for (size_t i = 0; i < server->options_.workers; ++i) {
    server->workers_.emplace_back(
        [s = server.get(), i] { s->WorkerLoop(i); });
  }
  obs::LogInfo("server",
               "query server on http://" + server->options_.bind_address +
                   ":" + std::to_string(server->port()) + " (" +
                   std::to_string(server->options_.workers) +
                   " workers, queue " +
                   std::to_string(server->options_.admission.queue_capacity) +
                   ")");
  return server;
}

QueryServer::~QueryServer() { Stop(); }

void QueryServer::HandleConnection(HttpConnection conn) {
  RequestCounter().Add();
  const HttpRequest& request = conn.request();
  if (request.target == "/healthz") {
    HttpResponse response;
    response.body = "ok\n";
    conn.Respond(response);
    return;
  }
  if (request.target == "/readyz") {
    const obs::Readiness& readiness = obs::Readiness::Global();
    int code = readiness.HttpCode();
    conn.Respond(JsonResponse(code,
                              code == 200 ? "OK" : "Service Unavailable",
                              readiness.Json()));
    return;
  }
  if (request.target != "/query") {
    conn.Respond(HttpError(404, "Not Found",
                           "unknown path; try POST /query, /healthz, "
                           "/readyz"));
    return;
  }
  if (request.method != "POST") {
    conn.Respond(HttpError(405, "Method Not Allowed",
                           "/query requires POST with the FQL text as the "
                           "request body"));
    return;
  }
  if (draining_.load(std::memory_order_relaxed)) {
    conn.Respond(HttpError(503, "Service Unavailable", "server draining"));
    return;
  }
  // Fault site: lose the request between accept and admission (the
  // connection drops without a response, like a crashed proxy hop).
  common::FaultInjector& faults = common::FaultInjector::Global();
  if (faults.AnyArmed() && faults.ShouldFail("server.enqueue")) {
    EnqueueFaultCounter().Add();
    return;
  }
  // Trace identity: adopt the client's traceparent when well-formed (its
  // span id becomes the root span's parent), mint a fresh trace otherwise —
  // a malformed header is never a 4xx. The root "server.request" span id is
  // allocated now so the queue-wait span (recorded by whichever worker pops
  // the item) parents correctly.
  AdmissionQueue::Item item;
  std::optional<obs::TraceContext> remote =
      obs::ParseTraceparent(request.traceparent);
  item.trace = remote.has_value() ? *remote : obs::GenerateTraceContext();
  item.root_parent_id = remote.has_value() ? remote->span_id : 0;
  item.trace_requested = remote.has_value();
  item.trace.span_id = obs::Trace::NextSpanId();
  item.sink = std::make_shared<obs::SpanCollector>();
  item.conn = std::move(conn);
  switch (queue_.TryPush(item)) {
    case AdmissionQueue::Outcome::kAdmitted:
      AdmittedCounter().Add();
      return;
    case AdmissionQueue::Outcome::kQueueFull:
      ShedQueueCounter().Add();
      obs::Readiness::Global().SetOverloaded(
          true, "admission queue full (" +
                    std::to_string(queue_.config().queue_capacity) + ")");
      RetainShedTrace(item);
      item.conn.Respond(ShedResponse("admission queue full",
                                     queue_.config().retry_after_seconds));
      return;
    case AdmissionQueue::Outcome::kOverBudget:
      ShedBudgetCounter().Add();
      obs::Readiness::Global().SetOverloaded(
          true, "in-flight byte budget exceeded");
      RetainShedTrace(item);
      item.conn.Respond(ShedResponse("in-flight byte budget exceeded",
                                     queue_.config().retry_after_seconds));
      return;
    case AdmissionQueue::Outcome::kShutdown:
      item.conn.Respond(
          HttpError(503, "Service Unavailable", "server draining"));
      return;
  }
}

void QueryServer::WorkerLoop(size_t worker_index) {
  std::atomic<bool>& cancel = *worker_cancel_[worker_index];
  while (true) {
    std::optional<AdmissionQueue::Item> item = queue_.Pop();
    if (!item.has_value()) break;  // shutdown, queue drained
    // Queue wait ends now, whatever happens to the request next: record
    // the histogram (with the trace id as exemplar) and append the
    // explicit queue-wait span under the pre-allocated root span.
    const uint64_t queue_wait_us =
        obs::Trace::NowMicros() - item->enqueue_trace_us;
    QueueWaitHistogram().RecordWithExemplar(
        queue_wait_us, item->trace.trace_hi, item->trace.trace_lo);
    if (item->sink != nullptr) {
      obs::CollectedSpan wait_span;
      wait_span.name = "server.queue_wait";
      wait_span.span_id = obs::Trace::NextSpanId();
      wait_span.parent_id = item->trace.span_id;
      wait_span.start_us = item->enqueue_trace_us;
      wait_span.dur_us = queue_wait_us;
      item->sink->Add(wait_span);
    }
    // Reset our cancel token BEFORE checking draining_: if Stop() trips
    // the token between the reset and the check, it also set draining_
    // first, so this request is refused below instead of running with a
    // lost cancel.
    cancel.store(false, std::memory_order_relaxed);
    if (draining_.load(std::memory_order_relaxed)) {
      DrainedCounter().Add();
      item->conn.Respond(
          HttpError(503, "Service Unavailable", "server draining"));
      queue_.Release(item->charged_bytes);
      continue;
    }
    if (queue_.Expired(*item, std::chrono::steady_clock::now())) {
      // The client has been waiting past the queue deadline — executing
      // now would spend a slot on a request nobody is waiting for.
      QueueExpiredCounter().Add();
      HttpResponse expired = HttpError(408, "Request Timeout",
                                       "queue deadline exceeded before "
                                       "execution started");
      expired.headers.emplace_back("traceparent",
                                   obs::FormatTraceparent(item->trace));
      item->conn.Respond(expired);
      queue_.Release(item->charged_bytes);
      continue;
    }
    // Queue below capacity again and the request was admittable — clear
    // the overload signal set by a previous shed.
    obs::Readiness::Global().SetOverloaded(false);
    HttpResponse response = ExecuteQuery(*item, queue_wait_us, worker_index);
    if (response.code == 200) {
      OkCounter().Add();
    } else {
      ErrorCounter().Add();
    }
    // Echo the trace identity on every /query response — the value a
    // client needs to fetch its retained tree from /debug/tracez.
    response.headers.emplace_back("traceparent",
                                  obs::FormatTraceparent(item->trace));
    // The serialized response occupies server memory until the socket
    // write completes: charge it against the same in-flight byte budget
    // the request body was admitted under, so /debug/queryz's
    // inflight_bytes (and its high-water mark) reflect both directions.
    const uint64_t response_bytes = response.body.size();
    queue_.Charge(response_bytes);
    item->conn.Respond(response);
    queue_.Release(item->charged_bytes + response_bytes);
  }
}

HttpResponse QueryServer::ExecuteQuery(const AdmissionQueue::Item& item,
                                       uint64_t queue_wait_us,
                                       size_t worker_index) {
  const HttpRequest& request = item.conn.request();
  if (request.body.empty()) {
    return HttpError(400, "Bad Request",
                     "empty body; POST the FQL query text");
  }
  // Pin the current epoch for the whole execution: the writer can publish
  // any number of newer epochs meanwhile, this query still reads the one
  // it started on.
  std::shared_ptr<const Epoch> epoch = epochs_->Current();
  if (epoch == nullptr) {
    return HttpError(503, "Service Unavailable", "no graph published yet");
  }

  int64_t deadline_ms = options_.default_deadline_ms;
  std::string_view raw = HttpQueryParam(request.params, "deadline_ms");
  if (!raw.empty()) {
    if (!ParseInt64(raw, &deadline_ms) || deadline_ms < 0) {
      return HttpError(400, "Bad Request", "bad deadline_ms parameter");
    }
  }
  if (options_.max_deadline_ms > 0) {
    deadline_ms = deadline_ms == 0
                      ? options_.max_deadline_ms
                      : std::min(deadline_ms, options_.max_deadline_ms);
  }
  int64_t max_steps =
      static_cast<int64_t>(options_.default_max_steps);
  raw = HttpQueryParam(request.params, "max_steps");
  if (!raw.empty()) {
    if (!ParseInt64(raw, &max_steps) || max_steps < 0) {
      return HttpError(400, "Bad Request", "bad max_steps parameter");
    }
  }
  if (options_.max_steps_limit > 0) {
    max_steps = max_steps == 0
                    ? static_cast<int64_t>(options_.max_steps_limit)
                    : std::min(max_steps,
                               static_cast<int64_t>(
                                   options_.max_steps_limit));
  }

  query::ExecOptions exec_options;
  exec_options.deadline_ms = deadline_ms;
  exec_options.max_steps = static_cast<uint64_t>(max_steps);
  // Debug knob: fast_path=0 forces the generic executor (plan comparison,
  // and the only way tests can make a query reliably slow).
  if (HttpQueryParam(request.params, "fast_path") == "0") {
    exec_options.use_csr_fast_path = false;
  }
  // The registry aliases this token, so /debug/cancel, the watchdog's
  // cancel action, and Stop() all trip the same switch the executor polls.
  exec_options.cancel = worker_cancel_[worker_index].get();

  // Everything from here to serialization runs under the request's trace
  // scope: session/executor/kernel spans parent under the root span and
  // land in the per-request sink, and the session reads the trace id and
  // queue wait for its own telemetry (query log, /stats, slow-query ring).
  query::Timeline timeline;
  Result<query::QueryResult> result = [&] {
    obs::TraceScope scope(item.trace, item.sink.get(), queue_wait_us);
    return query::RunQuery(epoch->db, request.body, exec_options);
  }();
  if (result.ok()) {
    timeline = result->stats.timeline;
  }
  timeline.queue_us = queue_wait_us;

  HttpResponse response;
  if (result.ok()) {
    const uint64_t serialize_start = obs::Trace::NowMicros();
    std::string body =
        RenderResultJsonOpen(*result, epoch->db, epoch->sequence);
    timeline.serialize_us = obs::Trace::NowMicros() - serialize_start;
    timeline.total_us = obs::Trace::NowMicros() - item.enqueue_trace_us;
    result->stats.timeline = timeline;
    body += ", \"trace_id\": \"" + obs::TraceIdHex(item.trace) + "\"";
    body += ", \"timeline\": " + RenderTimelineJson(timeline) + "}\n";
    response = JsonResponse(200, "OK", std::move(body));
  } else {
    timeline.total_us = obs::Trace::NowMicros() - item.enqueue_trace_us;
    response = QueryErrorResponse(result.status());
  }

  // Tail-sampling decision: keep the span tree for anything that went
  // wrong, anything slow, and anything the client explicitly traced.
  const double latency_ms =
      static_cast<double>(timeline.total_us) / 1000.0;
  std::string reason;
  if (!result.ok()) {
    reason = result.status().code() == StatusCode::kCancelled ? "cancelled"
                                                              : "error";
  } else {
    int64_t slow_ms = SlowTraceThresholdMs();
    if (slow_ms >= 0 && latency_ms >= static_cast<double>(slow_ms)) {
      reason = "slow";
    } else if (item.trace_requested) {
      reason = "requested";
    }
  }
  if (!reason.empty() && item.sink != nullptr) {
    obs::StoredTrace stored;
    stored.trace_hi = item.trace.trace_hi;
    stored.trace_lo = item.trace.trace_lo;
    stored.reason = std::move(reason);
    stored.status =
        result.ok() ? "ok" : StatusCodeName(result.status().code());
    stored.fingerprint = obs::FingerprintHex(
        obs::NormalizeQuery(request.body).fingerprint);
    stored.ts_us = NowUnixMicros();
    stored.latency_ms = latency_ms;
    stored.dropped_spans = item.sink->dropped();
    stored.spans = item.sink->TakeSpans();
    // The root span covers enqueue through serialization; its parent is
    // the client's span id when one arrived via traceparent.
    obs::CollectedSpan root;
    root.name = "server.request";
    root.span_id = item.trace.span_id;
    root.parent_id = item.root_parent_id;
    root.start_us = item.enqueue_trace_us;
    root.dur_us = timeline.total_us;
    stored.spans.push_back(root);
    obs::TraceStore::Global().Retain(std::move(stored));
  }
  return response;
}

void QueryServer::Stop() {
  if (stopped_.exchange(true)) return;
  draining_.store(true, std::memory_order_relaxed);
  obs::Readiness::Global().SetDraining(true, "query server draining");
  // 1. Stop accepting new connections.
  if (listener_) listener_->Stop();
  // 2. Cancel stragglers: trip every worker's token (the query registry
  //    aliases these, so in-flight queries observe it on the executor's
  //    poll cadence and return kCancelled).
  for (auto& token : worker_cancel_) {
    token->store(true, std::memory_order_relaxed);
  }
  // 3. Refuse whatever was admitted but never started.
  std::vector<AdmissionQueue::Item> leftover = queue_.Shutdown();
  for (auto& item : leftover) {
    DrainedCounter().Add();
    item.conn.Respond(
        HttpError(503, "Service Unavailable", "server draining"));
  }
  // 4. Join the pool — workers exit once the queue reports shutdown.
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  // 5. Flush the structured query log so the workload trace survives the
  //    process.
  obs::QueryLog::Global().Flush();
  obs::LogInfo("server", "query server drained");
}

}  // namespace frappe::server
