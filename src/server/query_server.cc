#include "server/query_server.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <optional>
#include <utility>

#include "common/fault_injector.h"
#include "common/string_util.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/query_log.h"
#include "obs/readiness.h"
#include "query/executor.h"
#include "query/session.h"

namespace frappe::server {

namespace {

using obs::HttpConnection;
using obs::HttpError;
using obs::HttpQueryParam;
using obs::HttpRequest;
using obs::HttpResponse;
using obs::JsonResponse;

obs::Counter& RequestCounter() {
  static obs::Counter& c =
      obs::Registry::Global().GetCounter("server.requests");
  return c;
}
obs::Counter& AdmittedCounter() {
  static obs::Counter& c =
      obs::Registry::Global().GetCounter("server.admitted");
  return c;
}
obs::Counter& ShedQueueCounter() {
  static obs::Counter& c =
      obs::Registry::Global().GetCounter("server.shed_queue_full");
  return c;
}
obs::Counter& ShedBudgetCounter() {
  static obs::Counter& c =
      obs::Registry::Global().GetCounter("server.shed_over_budget");
  return c;
}
obs::Counter& QueueExpiredCounter() {
  static obs::Counter& c =
      obs::Registry::Global().GetCounter("server.queue_deadline_expired");
  return c;
}
obs::Counter& DrainedCounter() {
  static obs::Counter& c =
      obs::Registry::Global().GetCounter("server.drained_requests");
  return c;
}
obs::Counter& OkCounter() {
  static obs::Counter& c =
      obs::Registry::Global().GetCounter("server.queries_ok");
  return c;
}
obs::Counter& ErrorCounter() {
  static obs::Counter& c =
      obs::Registry::Global().GetCounter("server.queries_error");
  return c;
}
obs::Counter& EnqueueFaultCounter() {
  static obs::Counter& c =
      obs::Registry::Global().GetCounter("server.enqueue_faults");
  return c;
}

// HTTP status for a failed query. 499 is the nginx convention for
// "request aborted" — the closest standard-adjacent code for cooperative
// cancellation.
std::pair<int, const char*> HttpStatusFor(StatusCode code) {
  switch (code) {
    case StatusCode::kInvalidArgument:
    case StatusCode::kParseError:
    case StatusCode::kNotFound:
    case StatusCode::kOutOfRange:
    case StatusCode::kFailedPrecondition:
    case StatusCode::kAlreadyExists:
    case StatusCode::kUnimplemented:
      return {400, "Bad Request"};
    case StatusCode::kDeadlineExceeded:
    case StatusCode::kResourceExhausted:
      return {408, "Request Timeout"};
    case StatusCode::kCancelled:
      return {499, "Client Closed Request"};
    default:
      return {500, "Internal Server Error"};
  }
}

HttpResponse QueryErrorResponse(const Status& status) {
  auto [code, reason] = HttpStatusFor(status.code());
  std::string body = "{\"error\": ";
  body += JsonQuote(status.message());
  body += ", \"code\": \"";
  body += StatusCodeName(status.code());
  body += "\", \"status\": " + std::to_string(code) + "}\n";
  return JsonResponse(code, reason, std::move(body));
}

HttpResponse ShedResponse(std::string_view detail, int retry_after_seconds) {
  HttpResponse response =
      HttpError(429, "Too Many Requests", detail);
  response.headers.emplace_back("Retry-After",
                                std::to_string(retry_after_seconds));
  return response;
}

std::string RenderResultJson(const query::QueryResult& result,
                             const query::Database& db, uint64_t epoch) {
  std::string out = "{\"columns\": [";
  for (size_t i = 0; i < result.columns.size(); ++i) {
    if (i > 0) out += ", ";
    out += JsonQuote(result.columns[i]);
  }
  out += "], \"rows\": [";
  for (size_t r = 0; r < result.rows.size(); ++r) {
    out += r > 0 ? ",\n  [" : "\n  [";
    const auto& row = result.rows[r];
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out += ", ";
      out += JsonQuote(row[c].ToString(db));
    }
    out += "]";
  }
  out += result.rows.empty() ? "]" : "\n]";
  if (!result.plan.empty()) {
    out += ", \"plan\": " + JsonQuote(result.plan);
  }
  char elapsed[32];
  std::snprintf(elapsed, sizeof(elapsed), "%.3f",
                result.stats.elapsed_ms);
  out += ", \"stats\": {\"elapsed_ms\": ";
  out += elapsed;
  out += ", \"rows\": " + std::to_string(result.rows.size());
  out += ", \"steps\": " + std::to_string(result.stats.steps);
  out += ", \"db_hits\": " + std::to_string(result.stats.db_hits.Total());
  out += ", \"fast_path\": ";
  out += result.stats.fast_path_taken ? "true" : "false";
  out += "}, \"epoch\": " + std::to_string(epoch) + "}\n";
  return out;
}

}  // namespace

QueryServer::QueryServer(Options options, EpochManager* epochs)
    : options_(std::move(options)),
      epochs_(epochs),
      queue_(options_.admission) {}

Result<std::unique_ptr<QueryServer>> QueryServer::Start(
    Options options, EpochManager* epochs) {
  if (epochs == nullptr) {
    return Status::InvalidArgument("QueryServer needs an EpochManager");
  }
  if (options.workers == 0) options.workers = 1;
  std::unique_ptr<QueryServer> server(
      new QueryServer(std::move(options), epochs));
  for (size_t i = 0; i < server->options_.workers; ++i) {
    server->worker_cancel_.push_back(
        std::make_unique<std::atomic<bool>>(false));
  }
  obs::HttpListener::Options listener_options;
  listener_options.port = server->options_.port;
  listener_options.bind_address = server->options_.bind_address;
  listener_options.socket_timeout_ms = server->options_.socket_timeout_ms;
  FRAPPE_ASSIGN_OR_RETURN(
      server->listener_,
      obs::HttpListener::Start(std::move(listener_options),
                               [s = server.get()](HttpConnection conn) {
                                 s->HandleConnection(std::move(conn));
                               }));
  for (size_t i = 0; i < server->options_.workers; ++i) {
    server->workers_.emplace_back(
        [s = server.get(), i] { s->WorkerLoop(i); });
  }
  obs::LogInfo("server",
               "query server on http://" + server->options_.bind_address +
                   ":" + std::to_string(server->port()) + " (" +
                   std::to_string(server->options_.workers) +
                   " workers, queue " +
                   std::to_string(server->options_.admission.queue_capacity) +
                   ")");
  return server;
}

QueryServer::~QueryServer() { Stop(); }

void QueryServer::HandleConnection(HttpConnection conn) {
  RequestCounter().Add();
  const HttpRequest& request = conn.request();
  if (request.target == "/healthz") {
    HttpResponse response;
    response.body = "ok\n";
    conn.Respond(response);
    return;
  }
  if (request.target == "/readyz") {
    const obs::Readiness& readiness = obs::Readiness::Global();
    int code = readiness.HttpCode();
    conn.Respond(JsonResponse(code,
                              code == 200 ? "OK" : "Service Unavailable",
                              readiness.Json()));
    return;
  }
  if (request.target != "/query") {
    conn.Respond(HttpError(404, "Not Found",
                           "unknown path; try POST /query, /healthz, "
                           "/readyz"));
    return;
  }
  if (request.method != "POST") {
    conn.Respond(HttpError(405, "Method Not Allowed",
                           "/query requires POST with the FQL text as the "
                           "request body"));
    return;
  }
  if (draining_.load(std::memory_order_relaxed)) {
    conn.Respond(HttpError(503, "Service Unavailable", "server draining"));
    return;
  }
  // Fault site: lose the request between accept and admission (the
  // connection drops without a response, like a crashed proxy hop).
  common::FaultInjector& faults = common::FaultInjector::Global();
  if (faults.AnyArmed() && faults.ShouldFail("server.enqueue")) {
    EnqueueFaultCounter().Add();
    return;
  }
  switch (queue_.TryPush(conn)) {
    case AdmissionQueue::Outcome::kAdmitted:
      AdmittedCounter().Add();
      return;
    case AdmissionQueue::Outcome::kQueueFull:
      ShedQueueCounter().Add();
      obs::Readiness::Global().SetOverloaded(
          true, "admission queue full (" +
                    std::to_string(queue_.config().queue_capacity) + ")");
      conn.Respond(ShedResponse("admission queue full",
                                queue_.config().retry_after_seconds));
      return;
    case AdmissionQueue::Outcome::kOverBudget:
      ShedBudgetCounter().Add();
      obs::Readiness::Global().SetOverloaded(
          true, "in-flight byte budget exceeded");
      conn.Respond(ShedResponse("in-flight byte budget exceeded",
                                queue_.config().retry_after_seconds));
      return;
    case AdmissionQueue::Outcome::kShutdown:
      conn.Respond(HttpError(503, "Service Unavailable", "server draining"));
      return;
  }
}

void QueryServer::WorkerLoop(size_t worker_index) {
  std::atomic<bool>& cancel = *worker_cancel_[worker_index];
  while (true) {
    std::optional<AdmissionQueue::Item> item = queue_.Pop();
    if (!item.has_value()) break;  // shutdown, queue drained
    // Reset our cancel token BEFORE checking draining_: if Stop() trips
    // the token between the reset and the check, it also set draining_
    // first, so this request is refused below instead of running with a
    // lost cancel.
    cancel.store(false, std::memory_order_relaxed);
    if (draining_.load(std::memory_order_relaxed)) {
      DrainedCounter().Add();
      item->conn.Respond(
          HttpError(503, "Service Unavailable", "server draining"));
      queue_.Release(item->charged_bytes);
      continue;
    }
    if (queue_.Expired(*item, std::chrono::steady_clock::now())) {
      // The client has been waiting past the queue deadline — executing
      // now would spend a slot on a request nobody is waiting for.
      QueueExpiredCounter().Add();
      item->conn.Respond(HttpError(408, "Request Timeout",
                                   "queue deadline exceeded before "
                                   "execution started"));
      queue_.Release(item->charged_bytes);
      continue;
    }
    // Queue below capacity again and the request was admittable — clear
    // the overload signal set by a previous shed.
    obs::Readiness::Global().SetOverloaded(false);
    HttpResponse response =
        ExecuteQuery(item->conn.request(), worker_index);
    if (response.code == 200) {
      OkCounter().Add();
    } else {
      ErrorCounter().Add();
    }
    item->conn.Respond(response);
    queue_.Release(item->charged_bytes);
  }
}

HttpResponse QueryServer::ExecuteQuery(const HttpRequest& request,
                                       size_t worker_index) {
  if (request.body.empty()) {
    return HttpError(400, "Bad Request",
                     "empty body; POST the FQL query text");
  }
  // Pin the current epoch for the whole execution: the writer can publish
  // any number of newer epochs meanwhile, this query still reads the one
  // it started on.
  std::shared_ptr<const Epoch> epoch = epochs_->Current();
  if (epoch == nullptr) {
    return HttpError(503, "Service Unavailable", "no graph published yet");
  }

  int64_t deadline_ms = options_.default_deadline_ms;
  std::string_view raw = HttpQueryParam(request.params, "deadline_ms");
  if (!raw.empty()) {
    if (!ParseInt64(raw, &deadline_ms) || deadline_ms < 0) {
      return HttpError(400, "Bad Request", "bad deadline_ms parameter");
    }
  }
  if (options_.max_deadline_ms > 0) {
    deadline_ms = deadline_ms == 0
                      ? options_.max_deadline_ms
                      : std::min(deadline_ms, options_.max_deadline_ms);
  }
  int64_t max_steps =
      static_cast<int64_t>(options_.default_max_steps);
  raw = HttpQueryParam(request.params, "max_steps");
  if (!raw.empty()) {
    if (!ParseInt64(raw, &max_steps) || max_steps < 0) {
      return HttpError(400, "Bad Request", "bad max_steps parameter");
    }
  }
  if (options_.max_steps_limit > 0) {
    max_steps = max_steps == 0
                    ? static_cast<int64_t>(options_.max_steps_limit)
                    : std::min(max_steps,
                               static_cast<int64_t>(
                                   options_.max_steps_limit));
  }

  query::ExecOptions exec_options;
  exec_options.deadline_ms = deadline_ms;
  exec_options.max_steps = static_cast<uint64_t>(max_steps);
  // Debug knob: fast_path=0 forces the generic executor (plan comparison,
  // and the only way tests can make a query reliably slow).
  if (HttpQueryParam(request.params, "fast_path") == "0") {
    exec_options.use_csr_fast_path = false;
  }
  // The registry aliases this token, so /debug/cancel, the watchdog's
  // cancel action, and Stop() all trip the same switch the executor polls.
  exec_options.cancel = worker_cancel_[worker_index].get();

  Result<query::QueryResult> result =
      query::RunQuery(epoch->db, request.body, exec_options);
  if (!result.ok()) return QueryErrorResponse(result.status());
  return JsonResponse(
      200, "OK", RenderResultJson(*result, epoch->db, epoch->sequence));
}

void QueryServer::Stop() {
  if (stopped_.exchange(true)) return;
  draining_.store(true, std::memory_order_relaxed);
  obs::Readiness::Global().SetDraining(true, "query server draining");
  // 1. Stop accepting new connections.
  if (listener_) listener_->Stop();
  // 2. Cancel stragglers: trip every worker's token (the query registry
  //    aliases these, so in-flight queries observe it on the executor's
  //    poll cadence and return kCancelled).
  for (auto& token : worker_cancel_) {
    token->store(true, std::memory_order_relaxed);
  }
  // 3. Refuse whatever was admitted but never started.
  std::vector<AdmissionQueue::Item> leftover = queue_.Shutdown();
  for (auto& item : leftover) {
    DrainedCounter().Add();
    item.conn.Respond(
        HttpError(503, "Service Unavailable", "server draining"));
  }
  // 4. Join the pool — workers exit once the queue reports shutdown.
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  // 5. Flush the structured query log so the workload trace survives the
  //    process.
  obs::QueryLog::Global().Flush();
  obs::LogInfo("server", "query server drained");
}

}  // namespace frappe::server
