#ifndef FRAPPE_SERVER_ADMISSION_H_
#define FRAPPE_SERVER_ADMISSION_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "obs/http_listener.h"
#include "obs/trace.h"

namespace frappe::server {

// Admission policy knobs for the query front door.
struct AdmissionConfig {
  // Accepted-but-not-yet-executing requests the queue will hold. Beyond
  // this the server sheds (429 + Retry-After) instead of building an
  // unbounded backlog.
  size_t queue_capacity = 64;
  // A request that waits in the queue longer than this is answered 408
  // instead of executing — its client has likely given up, and running it
  // anyway is pure goodput loss.
  int64_t queue_deadline_ms = 2000;
  // Global in-flight memory budget: every admitted request is charged its
  // body size plus a fixed per-request overhead, released when its
  // response is sent. Admissions that would exceed the budget shed (429).
  // 0 = unlimited.
  uint64_t max_inflight_bytes = 64ull << 20;
  // Fixed per-request charge on top of the body bytes (connection, parse
  // buffers, result rows in flight).
  uint64_t per_request_overhead_bytes = 4096;
  // Advisory Retry-After header value on 429 responses.
  int retry_after_seconds = 1;
};

// Bounded FIFO between the accept thread and the worker pool, plus the
// global in-flight byte budget. The accept thread calls TryPush (never
// blocks — admission is a decision, not a wait); workers call Pop (blocks
// until work or shutdown); Shutdown wakes everyone and hands back whatever
// was still queued so the caller can answer those clients 503.
class AdmissionQueue {
 public:
  struct Item {
    obs::HttpConnection conn;
    std::chrono::steady_clock::time_point enqueued;
    uint64_t charged_bytes = 0;
    // Request trace identity, assigned by the accept thread before TryPush:
    // `trace.span_id` is the pre-allocated root ("server.request") span id;
    // `root_parent_id` is the client's span id from its traceparent header
    // (0 when the server minted the trace). The per-request span sink rides
    // along so the queue-wait span and every worker-side span land in one
    // tree. `enqueue_trace_us` is Trace::NowMicros at admission — the
    // queue-wait span's start and the request timeline's origin.
    obs::TraceContext trace;
    uint64_t root_parent_id = 0;
    bool trace_requested = false;  // client sent a traceparent header
    uint64_t enqueue_trace_us = 0;
    std::shared_ptr<obs::SpanCollector> sink;
  };

  enum class Outcome { kAdmitted, kQueueFull, kOverBudget, kShutdown };

  explicit AdmissionQueue(AdmissionConfig config)
      : config_(config) {}

  // Admits `item` (moving it out of the caller; the caller pre-fills the
  // connection and trace fields, TryPush stamps enqueued/charged_bytes) or
  // leaves it untouched and reports why not — the caller still owns the
  // connection on kQueueFull / kOverBudget / kShutdown and answers it.
  Outcome TryPush(Item& item);

  // Next item, or nullopt after Shutdown. The worker owns the item's
  // budget charge and must Release(item.charged_bytes) when done with it
  // (response sent, on every path).
  std::optional<Item> Pop();

  void Release(uint64_t charged_bytes);

  // Adds `bytes` to the in-flight total without an admission decision —
  // used by workers to charge the serialized response body before the
  // socket write (the request-side TryPush charge only covered request
  // bytes). The caller must fold the extra into its Release.
  void Charge(uint64_t bytes);

  // Stops admissions, wakes all poppers, and returns the still-queued
  // items (their budget already released) for the caller to refuse.
  std::vector<Item> Shutdown();

  // True when the item has waited past queue_deadline_ms.
  bool Expired(const Item& item,
               std::chrono::steady_clock::time_point now) const {
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               now - item.enqueued)
               .count() > config_.queue_deadline_ms;
  }

  const AdmissionConfig& config() const { return config_; }
  size_t depth() const;
  uint64_t inflight_bytes() const;
  // Highest in-flight byte total ever observed (request + response
  // charges), exposed on /debug/queryz as server.inflight_bytes_hw.
  uint64_t inflight_bytes_hw() const;

 private:
  AdmissionConfig config_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Item> queue_;
  uint64_t inflight_bytes_ = 0;
  uint64_t inflight_bytes_hw_ = 0;
  bool shutdown_ = false;
};

}  // namespace frappe::server

#endif  // FRAPPE_SERVER_ADMISSION_H_
