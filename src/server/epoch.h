#ifndef FRAPPE_SERVER_EPOCH_H_
#define FRAPPE_SERVER_EPOCH_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "graph/graph_store.h"
#include "graph/indexes.h"
#include "model/code_graph.h"
#include "model/schema.h"
#include "query/database.h"
#include "query/session.h"
#include "temporal/version_store.h"

namespace frappe::server {

// One immutable published generation of the queryable graph: the store (or
// code graph, or loaded snapshot), the auto name index, the label index,
// the schema, and a wired query::Database — everything a reader needs,
// owned together so a single shared_ptr pins all of it.
//
// Epochs are the unit of snapshot isolation: a query pins the epoch that
// was current when it was admitted and runs against it to completion, no
// matter how many newer epochs a writer publishes meanwhile. When the last
// pinning reader departs, the shared_ptr count hits zero and the whole
// generation (store, indexes, CSR cache) is reclaimed.
struct Epoch {
  uint64_t sequence = 0;
  std::string source;  // human-readable provenance ("snapshot foo.fsnap")

  // Exactly one owner is set, depending on how the epoch was built.
  std::unique_ptr<const model::CodeGraph> code_graph;
  std::unique_ptr<const graph::GraphStore> store;
  std::unique_ptr<const query::SnapshotSession> snapshot;

  // Built here for code_graph/store epochs; the snapshot variant uses the
  // session's own members (db below points into them either way).
  model::Schema schema;
  graph::NameIndex name_index;
  graph::LabelIndex label_index;
  query::Database db;

  const graph::GraphView& view() const {
    if (code_graph != nullptr) return code_graph->view();
    if (snapshot != nullptr) return snapshot->view();
    return *store;
  }
};

// The publication point between one writer and many readers. Readers call
// Current() and keep the shared_ptr for the duration of their query;
// writers build the next epoch off to the side (Publish* do the index
// builds outside the lock) and swap it in atomically. No reader ever
// blocks a writer or vice versa — the cost of publication is one mutex'd
// pointer swap.
class EpochManager {
 public:
  EpochManager() = default;
  EpochManager(const EpochManager&) = delete;
  EpochManager& operator=(const EpochManager&) = delete;

  // The current epoch, or nullptr before the first Publish.
  std::shared_ptr<const Epoch> Current() const;
  // Sequence of the current epoch (0 = none yet).
  uint64_t current_sequence() const;

  // Publish a standalone store (e.g. temporal::VersionStore::
  // MaterializeVersion output, or an extractor product). Builds the
  // Frappé schema, name index and label index over it.
  Result<std::shared_ptr<const Epoch>> Publish(
      std::unique_ptr<graph::GraphStore> store, std::string source);

  // Publish a built code graph (generator / extractor output).
  Result<std::shared_ptr<const Epoch>> Publish(
      std::unique_ptr<model::CodeGraph> code_graph, std::string source);

  // Publish the newest verifying generation of a snapshot family on disk
  // (graph::SnapshotManager fallback semantics). When the load degraded —
  // fallback generation or load warnings — `degraded_reason` (if non-null)
  // receives a description; empty means a clean load.
  Result<std::shared_ptr<const Epoch>> PublishSnapshotFile(
      const std::string& path, std::string* degraded_reason = nullptr);

  // Materialize one committed version of a multi-version store and publish
  // it — the commit seam between temporal ingest and serving: commit,
  // then PublishVersion, and new queries see the new version while
  // in-flight queries finish on their pinned epoch.
  Result<std::shared_ptr<const Epoch>> PublishVersion(
      const temporal::VersionStore& versions, temporal::Version version);

 private:
  Result<std::shared_ptr<const Epoch>> Install(std::shared_ptr<Epoch> epoch);

  mutable std::mutex mu_;
  std::shared_ptr<const Epoch> current_;
  std::atomic<uint64_t> sequence_{0};
};

}  // namespace frappe::server

#endif  // FRAPPE_SERVER_EPOCH_H_
