#include "server/admission.h"

#include <utility>

#include "obs/metrics.h"

namespace frappe::server {

namespace {

obs::Gauge& DepthGauge() {
  static obs::Gauge& g =
      obs::Registry::Global().GetGauge("server.queue_depth");
  return g;
}

obs::Gauge& InflightGauge() {
  static obs::Gauge& g =
      obs::Registry::Global().GetGauge("server.inflight_bytes");
  return g;
}

obs::Gauge& InflightHwGauge() {
  static obs::Gauge& g =
      obs::Registry::Global().GetGauge("server.inflight_bytes_hw");
  return g;
}

}  // namespace

AdmissionQueue::Outcome AdmissionQueue::TryPush(Item& item) {
  uint64_t charge = item.conn.request().body.size() +
                    config_.per_request_overhead_bytes;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) return Outcome::kShutdown;
    if (queue_.size() >= config_.queue_capacity) return Outcome::kQueueFull;
    if (config_.max_inflight_bytes > 0 &&
        inflight_bytes_ + charge > config_.max_inflight_bytes) {
      return Outcome::kOverBudget;
    }
    item.enqueued = std::chrono::steady_clock::now();
    item.enqueue_trace_us = obs::Trace::NowMicros();
    item.charged_bytes = charge;
    inflight_bytes_ += charge;
    if (inflight_bytes_ > inflight_bytes_hw_) {
      inflight_bytes_hw_ = inflight_bytes_;
      InflightHwGauge().Set(static_cast<int64_t>(inflight_bytes_hw_));
    }
    queue_.push_back(std::move(item));
    DepthGauge().Set(static_cast<int64_t>(queue_.size()));
    InflightGauge().Set(static_cast<int64_t>(inflight_bytes_));
  }
  cv_.notify_one();
  return Outcome::kAdmitted;
}

std::optional<AdmissionQueue::Item> AdmissionQueue::Pop() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
  if (queue_.empty()) return std::nullopt;  // shutdown and drained
  Item item = std::move(queue_.front());
  queue_.pop_front();
  DepthGauge().Set(static_cast<int64_t>(queue_.size()));
  return item;
}

void AdmissionQueue::Charge(uint64_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  inflight_bytes_ += bytes;
  if (inflight_bytes_ > inflight_bytes_hw_) {
    inflight_bytes_hw_ = inflight_bytes_;
    InflightHwGauge().Set(static_cast<int64_t>(inflight_bytes_hw_));
  }
  InflightGauge().Set(static_cast<int64_t>(inflight_bytes_));
}

void AdmissionQueue::Release(uint64_t charged_bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  inflight_bytes_ -= charged_bytes > inflight_bytes_ ? inflight_bytes_
                                                     : charged_bytes;
  InflightGauge().Set(static_cast<int64_t>(inflight_bytes_));
}

std::vector<AdmissionQueue::Item> AdmissionQueue::Shutdown() {
  std::vector<Item> leftover;
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
    while (!queue_.empty()) {
      Item item = std::move(queue_.front());
      queue_.pop_front();
      inflight_bytes_ -= item.charged_bytes > inflight_bytes_
                             ? inflight_bytes_
                             : item.charged_bytes;
      leftover.push_back(std::move(item));
    }
    DepthGauge().Set(0);
    InflightGauge().Set(static_cast<int64_t>(inflight_bytes_));
  }
  cv_.notify_all();
  return leftover;
}

size_t AdmissionQueue::depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

uint64_t AdmissionQueue::inflight_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return inflight_bytes_;
}

uint64_t AdmissionQueue::inflight_bytes_hw() const {
  std::lock_guard<std::mutex> lock(mu_);
  return inflight_bytes_hw_;
}

}  // namespace frappe::server
