#include "server/epoch.h"

#include <utility>

#include "obs/log.h"
#include "obs/metrics.h"

namespace frappe::server {

namespace {

obs::Gauge& EpochGauge() {
  static obs::Gauge& g = obs::Registry::Global().GetGauge("server.epoch");
  return g;
}

obs::Counter& PublishCounter() {
  static obs::Counter& c =
      obs::Registry::Global().GetCounter("server.epochs_published");
  return c;
}

}  // namespace

std::shared_ptr<const Epoch> EpochManager::Current() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_;
}

uint64_t EpochManager::current_sequence() const {
  return sequence_.load(std::memory_order_relaxed);
}

Result<std::shared_ptr<const Epoch>> EpochManager::Install(
    std::shared_ptr<Epoch> epoch) {
  std::shared_ptr<const Epoch> published = std::move(epoch);
  {
    std::lock_guard<std::mutex> lock(mu_);
    current_ = published;
    sequence_.store(published->sequence, std::memory_order_relaxed);
  }
  PublishCounter().Add();
  EpochGauge().Set(static_cast<int64_t>(published->sequence));
  obs::LogInfo("server",
               "published epoch " + std::to_string(published->sequence) +
                   " (" + published->source + "): " +
                   std::to_string(published->view().NodeCount()) + " nodes, " +
                   std::to_string(published->view().EdgeCount()) + " edges");
  return published;
}

Result<std::shared_ptr<const Epoch>> EpochManager::Publish(
    std::unique_ptr<graph::GraphStore> store, std::string source) {
  if (store == nullptr) return Status::InvalidArgument("null store");
  auto epoch = std::make_shared<Epoch>();
  epoch->sequence = sequence_.fetch_add(1, std::memory_order_relaxed) + 1;
  epoch->source = std::move(source);
  // All of this (schema install interns type names, so it must precede the
  // store becoming const; index builds are the expensive part) happens
  // outside the manager lock — readers on the previous epoch are
  // undisturbed for the whole build.
  epoch->schema = model::Schema::Install(store.get());
  model::CodeGraph scratch;
  epoch->name_index = graph::NameIndex::Build(*store, scratch.IndexFields());
  epoch->label_index = graph::LabelIndex::Build(*store);
  epoch->store = std::move(store);
  epoch->db = query::MakeFrappeDatabase(*epoch->store, epoch->schema,
                                        &epoch->name_index,
                                        &epoch->label_index);
  return Install(std::move(epoch));
}

Result<std::shared_ptr<const Epoch>> EpochManager::Publish(
    std::unique_ptr<model::CodeGraph> code_graph, std::string source) {
  if (code_graph == nullptr) return Status::InvalidArgument("null code graph");
  auto epoch = std::make_shared<Epoch>();
  epoch->sequence = sequence_.fetch_add(1, std::memory_order_relaxed) + 1;
  epoch->source = std::move(source);
  epoch->schema = code_graph->schema();
  epoch->name_index = code_graph->BuildNameIndex();
  epoch->label_index = graph::LabelIndex::Build(code_graph->view());
  epoch->code_graph = std::move(code_graph);
  epoch->db = query::MakeFrappeDatabase(epoch->code_graph->view(),
                                        epoch->schema, &epoch->name_index,
                                        &epoch->label_index);
  return Install(std::move(epoch));
}

Result<std::shared_ptr<const Epoch>> EpochManager::PublishSnapshotFile(
    const std::string& path, std::string* degraded_reason) {
  FRAPPE_ASSIGN_OR_RETURN(std::unique_ptr<query::SnapshotSession> session,
                          query::SnapshotSession::Open(path));
  std::string degraded;
  if (session->generation() > 0) {
    degraded = "snapshot loaded from fallback generation " +
               std::to_string(session->generation()) + " (" +
               session->loaded_path() + ")";
  } else if (!session->warnings().empty()) {
    degraded = "snapshot load warnings: " + session->warnings().front();
  }
  if (degraded_reason != nullptr) *degraded_reason = degraded;
  if (!degraded.empty()) obs::LogWarn("server", degraded);

  auto epoch = std::make_shared<Epoch>();
  epoch->sequence = sequence_.fetch_add(1, std::memory_order_relaxed) + 1;
  epoch->source = "snapshot " + session->loaded_path();
  // The session's database points into the session's own store/indexes;
  // copying the Database struct keeps those pointers, and the epoch owns
  // the session, so the pointees live exactly as long as the epoch.
  epoch->db = session->database();
  epoch->snapshot = std::move(session);
  return Install(std::move(epoch));
}

Result<std::shared_ptr<const Epoch>> EpochManager::PublishVersion(
    const temporal::VersionStore& versions, temporal::Version version) {
  FRAPPE_ASSIGN_OR_RETURN(std::unique_ptr<graph::GraphStore> store,
                          versions.MaterializeVersion(version));
  return Publish(std::move(store), "version " + std::to_string(version));
}

}  // namespace frappe::server
