#ifndef FRAPPE_GRAPH_GRAPH_STORE_H_
#define FRAPPE_GRAPH_GRAPH_STORE_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"
#include "graph/graph_view.h"

namespace frappe::graph {

// Mutable in-memory property graph. This is the repository component of the
// source-code querying system (paper Figure 1): nodes carry a type (label)
// and properties, edges carry a type and properties, and adjacency lists
// support constant-time expansion in both directions — the access pattern
// graph databases optimize for and the reason the paper picked one over an
// RDBMS.
//
// Ids are dense and stable: deleting a node/edge leaves a hole (ids are
// never reused), which keeps external references and snapshots simple.
class GraphStore final : public GraphView {
 public:
  GraphStore() = default;
  GraphStore(const GraphStore&) = delete;
  GraphStore& operator=(const GraphStore&) = delete;
  GraphStore(GraphStore&&) = default;
  GraphStore& operator=(GraphStore&&) = default;

  // --- Schema vocabulary ---

  TypeId InternNodeType(std::string_view name) {
    return node_types_.Intern(name);
  }
  TypeId InternEdgeType(std::string_view name) {
    return edge_types_.Intern(name);
  }
  KeyId InternKey(std::string_view name) { return keys_.Intern(name); }
  StringRef InternString(std::string_view s) { return strings_.Intern(s); }
  Value StringValue(std::string_view s) {
    return Value::String(strings_.Intern(s));
  }

  // --- Mutation ---

  NodeId AddNode(TypeId type) {
    NodeId id = static_cast<NodeId>(nodes_.size());
    nodes_.emplace_back();
    nodes_.back().type = type;
    ++live_nodes_;
    return id;
  }
  NodeId AddNode(std::string_view type_name) {
    return AddNode(InternNodeType(type_name));
  }

  // Returns kInvalidEdge if either endpoint does not exist.
  EdgeId AddEdge(NodeId src, NodeId dst, TypeId type) {
    if (!NodeExists(src) || !NodeExists(dst)) return kInvalidEdge;
    EdgeId id = static_cast<EdgeId>(edges_.size());
    edges_.emplace_back();
    edges_.back().edge = Edge{src, dst, type};
    nodes_[src].out.push_back(id);
    nodes_[dst].in.push_back(id);
    ++live_edges_;
    return id;
  }
  EdgeId AddEdge(NodeId src, NodeId dst, std::string_view type_name) {
    return AddEdge(src, dst, InternEdgeType(type_name));
  }

  void SetNodeProperty(NodeId id, KeyId key, Value value) {
    if (NodeExists(id)) nodes_[id].props.Set(key, value);
  }
  void SetNodeProperty(NodeId id, std::string_view key, Value value) {
    SetNodeProperty(id, InternKey(key), value);
  }
  void SetEdgeProperty(EdgeId id, KeyId key, Value value) {
    if (EdgeExists(id)) edges_[id].props.Set(key, value);
  }
  void SetEdgeProperty(EdgeId id, std::string_view key, Value value) {
    SetEdgeProperty(id, InternKey(key), value);
  }

  // Replaces the full property map (used by snapshot load / temporal apply).
  void SetNodeProperties(NodeId id, PropertyMap props) {
    if (NodeExists(id)) nodes_[id].props = std::move(props);
  }
  void SetEdgeProperties(EdgeId id, PropertyMap props) {
    if (EdgeExists(id)) edges_[id].props = std::move(props);
  }

  // Snapshot-restore support: appends a tombstone record so a reloaded
  // graph preserves the exact id layout (including holes) of the original.
  NodeId AddDeadNode() {
    NodeId id = static_cast<NodeId>(nodes_.size());
    nodes_.emplace_back();
    nodes_.back().alive = false;
    return id;
  }
  EdgeId AddDeadEdge() {
    EdgeId id = static_cast<EdgeId>(edges_.size());
    edges_.emplace_back();
    edges_.back().alive = false;
    return id;
  }

  // Removes an edge. Safe to call on dead ids (no-op).
  void RemoveEdge(EdgeId id);

  // Removes a node and cascades to all incident edges.
  void RemoveNode(NodeId id);

  // --- GraphView implementation ---

  const NameRegistry& node_types() const override { return node_types_; }
  const NameRegistry& edge_types() const override { return edge_types_; }
  const NameRegistry& keys() const override { return keys_; }
  const StringPool& strings() const override { return strings_; }

  size_t NodeCount() const override { return live_nodes_; }
  size_t EdgeCount() const override { return live_edges_; }
  NodeId NodeIdUpperBound() const override {
    return static_cast<NodeId>(nodes_.size());
  }
  EdgeId EdgeIdUpperBound() const override {
    return static_cast<EdgeId>(edges_.size());
  }
  bool NodeExists(NodeId id) const override {
    return id < nodes_.size() && nodes_[id].alive;
  }
  bool EdgeExists(EdgeId id) const override {
    return id < edges_.size() && edges_[id].alive;
  }

  TypeId NodeType(NodeId id) const override { return nodes_[id].type; }
  Edge GetEdge(EdgeId id) const override { return edges_[id].edge; }
  Value GetNodeProperty(NodeId id, KeyId key) const override {
    return nodes_[id].props.Get(key);
  }
  Value GetEdgeProperty(EdgeId id, KeyId key) const override {
    return edges_[id].props.Get(key);
  }
  const PropertyMap& NodeProperties(NodeId id) const override {
    return nodes_[id].props;
  }
  const PropertyMap& EdgeProperties(EdgeId id) const override {
    return edges_[id].props;
  }

  void ForEachEdge(NodeId id, Direction dir,
                   const EdgeVisitor& fn) const override;

  size_t OutDegree(NodeId id) const override { return nodes_[id].out.size(); }
  size_t InDegree(NodeId id) const override { return nodes_[id].in.size(); }

  // Direct adjacency access for hot traversal paths (store-only; views go
  // through ForEachEdge).
  const std::vector<EdgeId>& OutEdgeIds(NodeId id) const {
    return nodes_[id].out;
  }
  const std::vector<EdgeId>& InEdgeIds(NodeId id) const {
    return nodes_[id].in;
  }

  // Approximate resident bytes by section, used for Table 4 accounting.
  struct MemoryBreakdown {
    uint64_t nodes = 0;          // fixed node records + adjacency lists
    uint64_t relationships = 0;  // fixed edge records
    uint64_t properties = 0;     // property entries + interned string bytes
    uint64_t total() const { return nodes + relationships + properties; }
  };
  MemoryBreakdown EstimateMemory() const;

 private:
  struct NodeRecord {
    TypeId type = kInvalidType;
    bool alive = true;
    PropertyMap props;
    std::vector<EdgeId> out;
    std::vector<EdgeId> in;
  };
  struct EdgeRecord {
    Edge edge;
    bool alive = true;
    PropertyMap props;
  };

  NameRegistry node_types_;
  NameRegistry edge_types_;
  NameRegistry keys_;
  StringPool strings_;

  std::vector<NodeRecord> nodes_;
  std::vector<EdgeRecord> edges_;
  size_t live_nodes_ = 0;
  size_t live_edges_ = 0;
};

}  // namespace frappe::graph

#endif  // FRAPPE_GRAPH_GRAPH_STORE_H_
