#ifndef FRAPPE_GRAPH_VALUE_H_
#define FRAPPE_GRAPH_VALUE_H_

#include <cstdint>
#include <cstring>
#include <string>

#include "graph/string_pool.h"

namespace frappe::graph {

enum class ValueType : uint8_t {
  kNull = 0,
  kBool = 1,
  kInt = 2,
  kDouble = 3,
  kString = 4,  // interned StringRef into the owning graph's StringPool
};

// Compact tagged property value (16 bytes). Strings are interned: a Value
// holds only a StringRef and must be resolved against the graph's
// StringPool. This keeps the ~40 M property entries of a paper-scale graph
// within a few hundred MB.
class Value {
 public:
  Value() : type_(ValueType::kNull), int_(0) {}

  static Value Null() { return Value(); }
  static Value Bool(bool b) {
    Value v;
    v.type_ = ValueType::kBool;
    v.int_ = b ? 1 : 0;
    return v;
  }
  static Value Int(int64_t i) {
    Value v;
    v.type_ = ValueType::kInt;
    v.int_ = i;
    return v;
  }
  static Value Double(double d) {
    Value v;
    v.type_ = ValueType::kDouble;
    v.double_ = d;
    return v;
  }
  static Value String(StringRef ref) {
    Value v;
    v.type_ = ValueType::kString;
    v.int_ = 0;  // zero padding bits so operator== can compare payloads
    v.string_ = ref;
    return v;
  }

  ValueType type() const { return type_; }
  bool is_null() const { return type_ == ValueType::kNull; }

  bool AsBool() const { return int_ != 0; }
  int64_t AsInt() const { return int_; }
  double AsDouble() const { return double_; }
  StringRef AsString() const { return string_; }

  // Numeric view: ints and doubles compare interchangeably in queries.
  bool is_numeric() const {
    return type_ == ValueType::kInt || type_ == ValueType::kDouble;
  }
  double NumericValue() const {
    return type_ == ValueType::kDouble ? double_ : static_cast<double>(int_);
  }

  // Exact equality: same type and payload, except int/double compare
  // numerically (so `{line: 5}` matches a stored double 5.0 and vice versa).
  bool operator==(const Value& other) const {
    if (is_numeric() && other.is_numeric()) {
      return NumericValue() == other.NumericValue();
    }
    if (type_ != other.type_) return false;
    switch (type_) {
      case ValueType::kNull:
        return true;
      case ValueType::kBool:
        return int_ == other.int_;
      case ValueType::kString:
        return string_ == other.string_;
      default:
        return int_ == other.int_;
    }
  }

  // Raw 64-bit payload, used by the packed property map and the snapshot
  // writer. Interpretation depends on type().
  uint64_t RawPayload() const {
    uint64_t out;
    std::memcpy(&out, &int_, sizeof(out));
    return out;
  }
  static Value FromRaw(ValueType type, uint64_t payload) {
    Value v;
    v.type_ = type;
    std::memcpy(&v.int_, &payload, sizeof(payload));
    if (type == ValueType::kString) {
      v.string_ = StringRef{static_cast<uint32_t>(payload)};
    }
    return v;
  }

  // Debug/display rendering; resolves strings against `pool`.
  std::string ToString(const StringPool& pool) const;

 private:
  ValueType type_;
  union {
    int64_t int_;
    double double_;
    StringRef string_;
  };
};

static_assert(sizeof(Value) == 16, "Value must stay compact");

}  // namespace frappe::graph

#endif  // FRAPPE_GRAPH_VALUE_H_
