#ifndef FRAPPE_GRAPH_ANALYTICS_H_
#define FRAPPE_GRAPH_ANALYTICS_H_

#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "graph/csr_view.h"
#include "graph/traversal.h"

namespace frappe::graph::analytics {

// Direction-optimizing frontier analytics over the packed CsrView arrays —
// the PGX/LLAMA-style fast path the paper points at in Section 7, with the
// Beamer-style push/pull switch layered on top. The kernels are
// level-synchronous; each level runs in one of two directions:
//
//   push (top-down)   the frontier is a flat NodeId array; lanes claim
//                     chunks of it and scan each frontier node's edges,
//                     marking discoveries through the atomic VisitedBitmap.
//                     Cheap while the frontier is sparse.
//
//   pull (bottom-up)  the frontier is a bitmap; lanes claim chunks of the
//                     *node id space* and scan each still-unvisited node's
//                     reverse edges (the lazily-built transpose CSR),
//                     stopping at the first parent found in the frontier.
//                     Wins on dense levels, where push would re-scan a
//                     majority of already-visited targets and the early
//                     exit skips most of each in-edge bucket.
//
// The per-level choice is heuristic (see Options::alpha / beta) and is
// recorded in Metrics for PROFILE / bench output. Results are identical
// for every direction policy and thread count: the newly-visited set of a
// level is frontier-neighbors minus already-visited, independent of both
// lane interleaving and scan direction. `threads=1` runs the same loops
// inline on the caller with no pool involvement and non-atomic bitmap
// writes.

// Reusable visited set: one bit per NodeId, cleared in O(1) by bumping an
// epoch. Each 64-bit word packs 48 payload bits with a 16-bit epoch tag, so
// a word whose tag is stale reads as all-zeros and is refreshed atomically
// (CAS) by the first writer — no O(n) clear between queries, and no
// clear/set race between lanes. Safe for concurrent TestAndSet; the *Seq
// variants elide the atomic read-modify-writes for single-lane runs.
class VisitedBitmap {
 public:
  static constexpr uint32_t kBitsPerWord = 48;

  // Prepares the bitmap for ids in [0, universe): reuses the allocation and
  // bumps the epoch; reallocates (or hard-clears on epoch wraparound) only
  // when needed.
  void Reset(size_t universe);

  // Atomically sets the bit; returns true when this call set it first.
  bool TestAndSet(NodeId id) {
    std::atomic<uint64_t>& word = words_[id / kBitsPerWord];
    uint64_t bit = uint64_t{1} << (id % kBitsPerWord);
    uint64_t fresh = uint64_t{epoch_} << kBitsPerWord;
    uint64_t cur = word.load(std::memory_order_relaxed);
    for (;;) {
      if ((cur >> kBitsPerWord) == epoch_) {
        uint64_t prev = word.fetch_or(bit, std::memory_order_relaxed);
        return (prev & bit) == 0;
      }
      // Stale word: atomically install {current epoch, just this bit}.
      if (word.compare_exchange_weak(cur, fresh | bit,
                                     std::memory_order_relaxed)) {
        return true;
      }
    }
  }
  void Set(NodeId id) { TestAndSet(id); }

  // Single-writer variants: plain load/store instead of lock-prefixed
  // read-modify-writes (~an order of magnitude cheaper per call on x86).
  // Only safe when no other thread writes the bitmap concurrently.
  bool TestAndSetSeq(NodeId id) {
    std::atomic<uint64_t>& word = words_[id / kBitsPerWord];
    uint64_t bit = uint64_t{1} << (id % kBitsPerWord);
    uint64_t cur = word.load(std::memory_order_relaxed);
    if ((cur >> kBitsPerWord) != epoch_) {
      word.store((uint64_t{epoch_} << kBitsPerWord) | bit,
                 std::memory_order_relaxed);
      return true;
    }
    if ((cur & bit) != 0) return false;
    word.store(cur | bit, std::memory_order_relaxed);
    return true;
  }
  void SetSeq(NodeId id) { TestAndSetSeq(id); }

  bool Test(NodeId id) const {
    uint64_t cur = words_[id / kBitsPerWord].load(std::memory_order_relaxed);
    if ((cur >> kBitsPerWord) != epoch_) return false;
    return (cur & (uint64_t{1} << (id % kBitsPerWord))) != 0;
  }

  size_t universe() const { return size_; }

  // Payload bits of the word containing `id` (0 when the word's epoch is
  // stale). Lets dense scans skip 48 ids at a time when all are set.
  uint64_t WordPayload(NodeId id) const {
    uint64_t cur = words_[id / kBitsPerWord].load(std::memory_order_relaxed);
    if ((cur >> kBitsPerWord) != epoch_) return 0;
    return cur & ((uint64_t{1} << kBitsPerWord) - 1);
  }

  // Appends every set id in ascending order.
  void AppendSetBits(std::vector<NodeId>* out) const;

 private:
  std::unique_ptr<std::atomic<uint64_t>[]> words_;
  size_t capacity_words_ = 0;
  size_t size_ = 0;
  uint16_t epoch_ = 0;
};

// Per-level traversal direction policy.
enum class DirectionMode : uint8_t {
  kAuto,      // Beamer-style heuristic switching (the default)
  kPushOnly,  // always top-down (the pre-direction-optimizing kernel)
  kPullOnly,  // always bottom-up (reference / testing)
};

struct Options {
  // Lane count. 1 = sequential (inline, no pool). 0 = resolve from the
  // FRAPPE_THREADS environment variable / hardware concurrency.
  size_t threads = 1;
  size_t max_depth = std::numeric_limits<size_t>::max();
  // Budget over edge expansions, mirroring query::ExecOptions: on breach
  // the kernel returns ResourceExhausted / DeadlineExceeded. Parallel runs
  // count steps in per-lane counters flushed to a shared atomic every few
  // thousand edges, so a breach is detected within one flush interval.
  uint64_t max_steps = 0;   // 0 = unlimited
  int64_t deadline_ms = 0;  // 0 = none
  // External cancel token, polled on the same flush cadence as the budgets
  // (in both directions); reading true aborts the traversal with
  // Status::Cancelled. The kernel never writes the token.
  std::atomic<bool>* cancel = nullptr;
  // Pool to run on; null uses ThreadPool::Shared().
  ThreadPool* pool = nullptr;

  // Direction policy. kAuto compares per-level cost estimates — push ~
  // frontier edge sum, pull ~ unvisited nodes x expected in-edge probes
  // until a matching frontier parent — and takes pull when its estimate is
  // below alpha x push (alpha > 1 credits pull's sequential, read-mostly,
  // early-exiting scan; see analytics.cc for the full model). beta is
  // hysteresis: once in pull mode, stay while the frontier still holds >=
  // universe/beta nodes even if the estimate flips marginally, avoiding
  // frontier-representation thrash. kPushOnly reproduces the previous
  // kernel's behavior exactly.
  DirectionMode mode = DirectionMode::kAuto;
  double alpha = 1.5;
  double beta = 24.0;
};

struct Metrics {
  uint64_t steps = 0;   // edges scanned (both directions count)
  size_t levels = 0;    // BFS levels expanded
  size_t frontier_peak = 0;
  // Observability detail (PROFILE): frontier size at the start of each
  // expanded level, and the widest lane fan-out any level ran with. The
  // sizes are thread-count and direction independent (same per-level
  // sets); lanes_used is a property of this run only. All fields are
  // cleared at traversal entry, so a Metrics struct can be reused across
  // runs without stale accumulation.
  std::vector<uint64_t> frontier_sizes;
  // Parallel to frontier_sizes: 1 when the level ran bottom-up (pull over
  // the reverse CSR), 0 top-down; and 1 when the level consumed a bitmap
  // frontier, 0 a flat array.
  std::vector<uint8_t> level_pull;
  std::vector<uint8_t> level_bitmap;
  // Number of push<->pull transitions across the run.
  size_t direction_switches = 0;
  size_t lanes_used = 0;
  // Bytes of packed CSR adjacency the run read: steps (edge scans) times
  // the per-edge scan width (CsrView::kBytesPerEdgeScan). Feeds the
  // per-query scanned_bytes attribution in ExecStats.
  uint64_t scanned_bytes = 0;
};

inline constexpr uint32_t kUnreachedDepth =
    std::numeric_limits<uint32_t>::max();

// Scratch-owning engine: the bitmaps and frontier buffers persist across
// calls, so repeated queries pay no per-query allocation beyond frontier
// growth. One engine must not be used from two threads at once (the
// kernels parallelize internally).
class FrontierEngine {
 public:
  // Multi-source transitive closure: every node reached over >= 1 matching
  // edge within max_depth steps — seeds included only when re-reached
  // through a cycle. Sorted ascending; semantics identical to
  // graph::TransitiveClosure.
  Result<std::vector<NodeId>> Closure(const CsrView& csr,
                                      const std::vector<NodeId>& seeds,
                                      const EdgeFilter& filter,
                                      const Options& options = {},
                                      Metrics* metrics = nullptr);

  // Multi-source reachability: every node reachable over >= 0 edges (live
  // seeds always included). Sorted ascending.
  Result<std::vector<NodeId>> Reachable(const CsrView& csr,
                                        const std::vector<NodeId>& seeds,
                                        const EdgeFilter& filter,
                                        const Options& options = {},
                                        Metrics* metrics = nullptr);

  // Level-synchronous BFS: minimal depth per node id (kUnreachedDepth when
  // unreached), over the whole id universe of the view.
  Result<std::vector<uint32_t>> BfsDepths(const CsrView& csr,
                                          const std::vector<NodeId>& seeds,
                                          const EdgeFilter& filter,
                                          const Options& options = {},
                                          Metrics* metrics = nullptr);

 private:
  Status Run(const CsrView& csr, const std::vector<NodeId>& seeds,
             const EdgeFilter& filter, const Options& options,
             bool track_member, std::vector<uint32_t>* depths,
             Metrics* metrics);

  VisitedBitmap visited_;
  VisitedBitmap member_;
  std::vector<NodeId> frontier_;
  VisitedBitmap frontier_bits_;
  VisitedBitmap next_bits_;
  std::vector<std::vector<NodeId>> lane_next_;
};

// Convenience wrappers over a thread-local FrontierEngine (scratch reuse
// across calls without threading an engine through every call site).
Result<std::vector<NodeId>> ParallelClosure(const CsrView& csr,
                                            const std::vector<NodeId>& seeds,
                                            const EdgeFilter& filter,
                                            const Options& options = {},
                                            Metrics* metrics = nullptr);
Result<std::vector<NodeId>> ParallelReachable(
    const CsrView& csr, const std::vector<NodeId>& seeds,
    const EdgeFilter& filter, const Options& options = {},
    Metrics* metrics = nullptr);
Result<std::vector<uint32_t>> ParallelBfsDepths(
    const CsrView& csr, const std::vector<NodeId>& seeds,
    const EdgeFilter& filter, const Options& options = {},
    Metrics* metrics = nullptr);

}  // namespace frappe::graph::analytics

#endif  // FRAPPE_GRAPH_ANALYTICS_H_
