#ifndef FRAPPE_GRAPH_SNAPSHOT_H_
#define FRAPPE_GRAPH_SNAPSHOT_H_

#include <memory>
#include <optional>
#include <string>

#include "common/status.h"
#include "graph/graph_store.h"
#include "graph/indexes.h"

namespace frappe::graph {

// Byte counts of the on-disk snapshot by logical section, matching the
// paper's Table 4 storage breakdown (Properties / Nodes / Relationships /
// Indexes).
struct SnapshotSizes {
  uint64_t header = 0;         // magic + version + section count
  uint64_t schema = 0;         // registries (labels, edge types, keys)
  uint64_t strings = 0;        // interned string payloads (counted under
                               // properties in Table 4 terms)
  uint64_t nodes = 0;          // fixed node records
  uint64_t relationships = 0;  // fixed edge records
  uint64_t node_properties = 0;
  uint64_t edge_properties = 0;
  uint64_t indexes = 0;

  uint64_t properties() const {
    return node_properties + edge_properties + strings;
  }
  uint64_t total() const {
    return header + schema + strings + nodes + relationships +
           node_properties + edge_properties + indexes;
  }
};

// Writes `view` (and optionally a prebuilt name index) to `path` as a
// single-file binary snapshot. Returns the per-section sizes.
Result<SnapshotSizes> SaveSnapshot(const GraphView& view, const std::string& path,
                                   const NameIndex* index = nullptr);

// In-memory variant (used by tests and the temporal store).
Result<SnapshotSizes> SerializeSnapshot(const GraphView& view, std::string* out,
                                        const NameIndex* index = nullptr);

struct LoadedSnapshot {
  std::unique_ptr<GraphStore> store;
  std::optional<NameIndex> index;  // present if the snapshot embedded one
  SnapshotSizes sizes;
};

Result<LoadedSnapshot> LoadSnapshot(const std::string& path);
Result<LoadedSnapshot> DeserializeSnapshot(std::string_view data);

}  // namespace frappe::graph

#endif  // FRAPPE_GRAPH_SNAPSHOT_H_
