#ifndef FRAPPE_GRAPH_SNAPSHOT_H_
#define FRAPPE_GRAPH_SNAPSHOT_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "graph/graph_store.h"
#include "graph/indexes.h"
#include "graph/stats_catalog.h"

namespace frappe::graph {

// On-disk snapshot format (v2, written by SerializeSnapshot):
//
//   header    magic "FRAPPEDB" | u32 version=2 | u32 flags | u32 sections
//   section*  u32 id | u64 payload_len | payload | u32 crc32c(payload)
//   trailer   u64 file_size | u32 crc32c(header + size) | u32 "FRPT"
//
// flags bit 0 = section payloads are checksummed (always set unless
// SnapshotOptions::checksums is cleared for benchmarking). The trailer
// detects truncation/extension immediately, and its CRC covers the header
// so a bit flip there (including in `flags`) cannot go unnoticed.
//
// v1 snapshots (no checksums, no trailer) still load; new files are always
// written as v2. Any truncation or corruption surfaces as
// Status::Corruption naming the section and byte offset — except a
// corrupted embedded name-index section, which degrades gracefully: the
// index is rebuilt from the (checksum-verified) node records and the load
// succeeds with a warning.

// Byte counts of the on-disk snapshot by logical section, matching the
// paper's Table 4 storage breakdown (Properties / Nodes / Relationships /
// Indexes). Section sizes include the v2 framing (id, length, CRC).
struct SnapshotSizes {
  uint64_t header = 0;         // magic + version + flags + section count
  uint64_t schema = 0;         // registries (labels, edge types, keys)
  uint64_t strings = 0;        // interned string payloads (counted under
                               // properties in Table 4 terms)
  uint64_t nodes = 0;          // fixed node records
  uint64_t relationships = 0;  // fixed edge records
  uint64_t node_properties = 0;
  uint64_t edge_properties = 0;
  uint64_t indexes = 0;
  uint64_t stats = 0;          // cardinality stats catalog (ANALYZE output)
  uint64_t trailer = 0;        // length/CRC trailer (v2 only)

  uint64_t properties() const {
    return node_properties + edge_properties + strings;
  }
  uint64_t total() const {
    return header + schema + strings + nodes + relationships +
           node_properties + edge_properties + indexes + stats + trailer;
  }
};

struct SnapshotOptions {
  // Write per-section CRC32C checksums (and verify them on load). Turning
  // this off exists so bench_snapshot_io can price the checksum work; real
  // deployments should never clear it.
  bool checksums = true;
  // Optional cardinality stats catalog to embed as its own section (the
  // pointer is only read during Save/Serialize). When null and
  // `build_stats_catalog` is set, a catalog is built from the view at save
  // time — this is how the temporal store versions the catalog alongside
  // each snapshot without threading one through every call site.
  const StatsCatalog* catalog = nullptr;
  bool build_stats_catalog = false;
};

// Writes `view` (and optionally a prebuilt name index) to `path` as a
// single-file binary snapshot. The write is crash-safe: data goes to
// `<path>.tmp.<pid>`, is fsynced, and is renamed over `path` (parent
// directory fsynced), so a crash at any point leaves either the old or the
// new snapshot — never a torn one. Returns the per-section sizes.
Result<SnapshotSizes> SaveSnapshot(const GraphView& view,
                                   const std::string& path,
                                   const NameIndex* index = nullptr,
                                   const SnapshotOptions& options = {});

// In-memory variant (used by tests and the temporal store). Appends to
// `*out`, which should be empty.
Result<SnapshotSizes> SerializeSnapshot(const GraphView& view,
                                        std::string* out,
                                        const NameIndex* index = nullptr,
                                        const SnapshotOptions& options = {});

struct LoadedSnapshot {
  std::unique_ptr<GraphStore> store;
  std::optional<NameIndex> index;  // present if the snapshot embedded one
  // Present if the snapshot embedded a stats catalog. A corrupted stats
  // section never fails the load: statistics are advisory, so it is
  // dropped with a warning (run ANALYZE to rebuild).
  std::optional<StatsCatalog> catalog;
  SnapshotSizes sizes;
  uint32_t format_version = 0;  // 1 or 2
  // Non-fatal degradations, e.g. "index section checksum mismatch ...;
  // rebuilt name index from node records".
  std::vector<std::string> warnings;
};

Result<LoadedSnapshot> LoadSnapshot(const std::string& path);
Result<LoadedSnapshot> DeserializeSnapshot(std::string_view data);

}  // namespace frappe::graph

#endif  // FRAPPE_GRAPH_SNAPSHOT_H_
