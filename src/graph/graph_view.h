#ifndef FRAPPE_GRAPH_GRAPH_VIEW_H_
#define FRAPPE_GRAPH_GRAPH_VIEW_H_

#include <functional>
#include <string_view>

#include "graph/ids.h"
#include "graph/property_map.h"
#include "graph/registry.h"
#include "graph/string_pool.h"
#include "graph/value.h"

namespace frappe::graph {

// Fixed part of an edge record.
struct Edge {
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  TypeId type = kInvalidType;
};

// Direction of traversal relative to a node.
enum class Direction : uint8_t { kOut, kIn, kBoth };

// Read-only interface over a property graph. `GraphStore` (the mutable
// store) and `temporal::VersionView` (a point-in-time view of a versioned
// graph) both implement it, so traversals, analyses, the query engine and
// the visualizer run unchanged against either.
//
// Iteration contract: node ids are dense in [0, NodeIdUpperBound()) but may
// contain holes after deletions; callers must check NodeExists(). Same for
// edges.
class GraphView {
 public:
  virtual ~GraphView() = default;

  // Shared vocabulary of the logical graph.
  virtual const NameRegistry& node_types() const = 0;
  virtual const NameRegistry& edge_types() const = 0;
  virtual const NameRegistry& keys() const = 0;
  virtual const StringPool& strings() const = 0;

  virtual size_t NodeCount() const = 0;
  virtual size_t EdgeCount() const = 0;
  virtual NodeId NodeIdUpperBound() const = 0;
  virtual EdgeId EdgeIdUpperBound() const = 0;
  virtual bool NodeExists(NodeId id) const = 0;
  virtual bool EdgeExists(EdgeId id) const = 0;

  // Requires NodeExists(id) / EdgeExists(id).
  virtual TypeId NodeType(NodeId id) const = 0;
  virtual Edge GetEdge(EdgeId id) const = 0;
  virtual Value GetNodeProperty(NodeId id, KeyId key) const = 0;
  virtual Value GetEdgeProperty(EdgeId id, KeyId key) const = 0;
  virtual const PropertyMap& NodeProperties(NodeId id) const = 0;
  virtual const PropertyMap& EdgeProperties(EdgeId id) const = 0;

  // Invokes `fn(edge_id, neighbor)` for each incident edge in the given
  // direction; stops early if `fn` returns false. With kBoth, a self-loop
  // is reported once.
  using EdgeVisitor = std::function<bool(EdgeId, NodeId)>;
  virtual void ForEachEdge(NodeId id, Direction dir,
                           const EdgeVisitor& fn) const = 0;

  virtual size_t OutDegree(NodeId id) const = 0;
  virtual size_t InDegree(NodeId id) const = 0;

  // --- Convenience helpers (non-virtual) ---

  size_t Degree(NodeId id) const { return OutDegree(id) + InDegree(id); }

  // Resolves a property that holds an interned string; empty view when the
  // property is absent or not a string.
  std::string_view GetNodeString(NodeId id, KeyId key) const {
    Value v = GetNodeProperty(id, key);
    if (v.type() != ValueType::kString) return {};
    return strings().Resolve(v.AsString());
  }
  std::string_view GetEdgeString(EdgeId id, KeyId key) const {
    Value v = GetEdgeProperty(id, key);
    if (v.type() != ValueType::kString) return {};
    return strings().Resolve(v.AsString());
  }

  std::string_view NodeTypeName(NodeId id) const {
    return node_types().Name(NodeType(id));
  }
  std::string_view EdgeTypeName(EdgeId id) const {
    return edge_types().Name(GetEdge(id).type);
  }

  // Invokes `fn(node_id)` for every live node.
  void ForEachNode(const std::function<void(NodeId)>& fn) const {
    for (NodeId id = 0; id < NodeIdUpperBound(); ++id) {
      if (NodeExists(id)) fn(id);
    }
  }
  // Invokes `fn(edge_id)` for every live edge.
  void ForEachEdgeGlobal(const std::function<void(EdgeId)>& fn) const {
    for (EdgeId id = 0; id < EdgeIdUpperBound(); ++id) {
      if (EdgeExists(id)) fn(id);
    }
  }
};

}  // namespace frappe::graph

#endif  // FRAPPE_GRAPH_GRAPH_VIEW_H_
