#include "graph/csr_view.h"

namespace frappe::graph {

CsrView CsrView::Build(const GraphView& base) {
  CsrView view;
  view.base_ = &base;
  size_t node_upper = base.NodeIdUpperBound();
  size_t edge_upper = base.EdgeIdUpperBound();

  view.edges_.assign(edge_upper, Edge{});
  std::vector<uint32_t> out_counts(node_upper, 0);
  std::vector<uint32_t> in_counts(node_upper, 0);
  for (EdgeId e = 0; e < edge_upper; ++e) {
    if (!base.EdgeExists(e)) continue;
    Edge edge = base.GetEdge(e);
    view.edges_[e] = edge;
    ++out_counts[edge.src];
    ++in_counts[edge.dst];
  }

  view.out_offsets_.assign(node_upper + 1, 0);
  view.in_offsets_.assign(node_upper + 1, 0);
  for (size_t n = 0; n < node_upper; ++n) {
    view.out_offsets_[n + 1] = view.out_offsets_[n] + out_counts[n];
    view.in_offsets_[n + 1] = view.in_offsets_[n] + in_counts[n];
  }
  size_t live_edges = view.out_offsets_[node_upper];
  view.out_edges_.resize(live_edges);
  view.out_targets_.resize(live_edges);
  view.in_edges_.resize(live_edges);
  view.in_sources_.resize(live_edges);

  std::vector<uint64_t> out_cursor(view.out_offsets_.begin(),
                                   view.out_offsets_.end() - 1);
  std::vector<uint64_t> in_cursor(view.in_offsets_.begin(),
                                  view.in_offsets_.end() - 1);
  for (EdgeId e = 0; e < edge_upper; ++e) {
    if (!base.EdgeExists(e)) continue;
    const Edge& edge = view.edges_[e];
    uint64_t out_pos = out_cursor[edge.src]++;
    view.out_edges_[out_pos] = e;
    view.out_targets_[out_pos] = edge.dst;
    uint64_t in_pos = in_cursor[edge.dst]++;
    view.in_edges_[in_pos] = e;
    view.in_sources_[in_pos] = edge.src;
  }
  return view;
}

void CsrView::ForEachEdge(NodeId id, Direction dir,
                          const EdgeVisitor& fn) const {
  if (id + 1 >= out_offsets_.size() || !base_->NodeExists(id)) return;
  if (dir == Direction::kOut || dir == Direction::kBoth) {
    Neighbors out = Out(id);
    for (size_t i = 0; i < out.count; ++i) {
      if (!fn(out.begin_edges[i], out.begin_nodes[i])) return;
    }
  }
  if (dir == Direction::kIn || dir == Direction::kBoth) {
    Neighbors in = In(id);
    for (size_t i = 0; i < in.count; ++i) {
      // Self-loops were reported in the out pass already.
      if (dir == Direction::kBoth && in.begin_nodes[i] == id) continue;
      if (!fn(in.begin_edges[i], in.begin_nodes[i])) return;
    }
  }
}

uint64_t CsrView::ByteSize() const {
  return edges_.size() * sizeof(Edge) +
         (out_offsets_.size() + in_offsets_.size()) * sizeof(uint64_t) +
         (out_edges_.size() + in_edges_.size()) * sizeof(EdgeId) +
         (out_targets_.size() + in_sources_.size()) * sizeof(NodeId);
}

const CsrView& CsrCache::Get(const GraphView& base) {
  std::lock_guard<std::mutex> lock(mu_);
  if (view_ == nullptr || base_ != &base) {
    view_ = std::make_unique<CsrView>(CsrView::Build(base));
    base_ = &base;
  }
  return *view_;
}

void CsrCache::Invalidate() {
  std::lock_guard<std::mutex> lock(mu_);
  view_.reset();
  base_ = nullptr;
}

}  // namespace frappe::graph
