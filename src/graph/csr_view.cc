#include "graph/csr_view.h"

#include <chrono>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace frappe::graph {

CsrView CsrView::Build(const GraphView& base) {
  CsrView view;
  view.base_ = &base;
  size_t node_upper = base.NodeIdUpperBound();
  size_t edge_upper = base.EdgeIdUpperBound();

  view.edges_.assign(edge_upper, Edge{});
  std::vector<uint32_t> out_counts(node_upper, 0);
  for (EdgeId e = 0; e < edge_upper; ++e) {
    if (!base.EdgeExists(e)) continue;
    Edge edge = base.GetEdge(e);
    view.edges_[e] = edge;
    ++out_counts[edge.src];
  }

  view.out_offsets_.assign(node_upper + 1, 0);
  for (size_t n = 0; n < node_upper; ++n) {
    view.out_offsets_[n + 1] = view.out_offsets_[n] + out_counts[n];
  }
  size_t live_edges = view.out_offsets_[node_upper];
  view.out_edges_.resize(live_edges);
  view.out_targets_.resize(live_edges);
  view.out_types_.resize(live_edges);

  std::vector<uint64_t> out_cursor(view.out_offsets_.begin(),
                                   view.out_offsets_.end() - 1);
  for (EdgeId e = 0; e < edge_upper; ++e) {
    if (!base.EdgeExists(e)) continue;
    const Edge& edge = view.edges_[e];
    uint64_t out_pos = out_cursor[edge.src]++;
    view.out_edges_[out_pos] = e;
    view.out_targets_[out_pos] = edge.dst;
    view.out_types_[out_pos] = edge.type;
    if (edge.type >= view.type_counts_.size()) {
      view.type_counts_.resize(edge.type + 1, 0);
    }
    ++view.type_counts_[edge.type];
  }
  return view;
}

void CsrView::EnsureReverse() const {
  ReverseCsr& rev = *reverse_;
  if (rev.built.load(std::memory_order_acquire)) return;
  std::call_once(rev.once, [&] {
    FRAPPE_TRACE_SPAN("csr.build_reverse");
    auto start = std::chrono::steady_clock::now();
    size_t node_upper = out_offsets_.size() - 1;
    std::vector<uint32_t> in_counts(node_upper, 0);
    for (NodeId dst : out_targets_) ++in_counts[dst];
    rev.offsets.assign(node_upper + 1, 0);
    for (size_t n = 0; n < node_upper; ++n) {
      rev.offsets[n + 1] = rev.offsets[n] + in_counts[n];
    }
    size_t live_edges = out_edges_.size();
    rev.edges.resize(live_edges);
    rev.sources.resize(live_edges);
    rev.types.resize(live_edges);
    std::vector<uint64_t> cursor(rev.offsets.begin(), rev.offsets.end() - 1);
    // Walking the forward CSR in ascending source order leaves every
    // destination bucket sorted by source id — the pull phase scans each
    // bucket front-to-back probing the frontier bitmap, so sorted sources
    // turn those probes into a monotonic walk over the bitmap words.
    for (NodeId src = 0; src < node_upper; ++src) {
      for (uint64_t pos = out_offsets_[src]; pos < out_offsets_[src + 1];
           ++pos) {
        NodeId dst = out_targets_[pos];
        uint64_t in_pos = cursor[dst]++;
        rev.edges[in_pos] = out_edges_[pos];
        rev.sources[in_pos] = src;
        rev.types[in_pos] = out_types_[pos];
      }
    }
    rev.build_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - start)
                       .count();
    static obs::Histogram& build_hist =
        obs::Registry::Global().GetHistogram("csr.reverse_build_ms");
    build_hist.Record(static_cast<uint64_t>(rev.build_ms));
    rev.built.store(true, std::memory_order_release);
  });
}

void CsrView::ForEachEdge(NodeId id, Direction dir,
                          const EdgeVisitor& fn) const {
  if (id + 1 >= out_offsets_.size() || !base_->NodeExists(id)) return;
  if (dir == Direction::kOut || dir == Direction::kBoth) {
    Neighbors out = Out(id);
    for (size_t i = 0; i < out.count; ++i) {
      if (!fn(out.begin_edges[i], out.begin_nodes[i])) return;
    }
  }
  if (dir == Direction::kIn || dir == Direction::kBoth) {
    Neighbors in = In(id);
    for (size_t i = 0; i < in.count; ++i) {
      // Self-loops were reported in the out pass already.
      if (dir == Direction::kBoth && in.begin_nodes[i] == id) continue;
      if (!fn(in.begin_edges[i], in.begin_nodes[i])) return;
    }
  }
}

uint64_t CsrView::ForwardByteSize() const {
  return edges_.size() * sizeof(Edge) +
         out_offsets_.size() * sizeof(uint64_t) +
         out_edges_.size() * sizeof(EdgeId) +
         out_targets_.size() * sizeof(NodeId) +
         out_types_.size() * sizeof(TypeId);
}

uint64_t CsrView::ReverseByteSize() const {
  if (!ReverseBuilt()) return 0;
  const ReverseCsr& rev = *reverse_;
  return rev.offsets.size() * sizeof(uint64_t) +
         rev.edges.size() * sizeof(EdgeId) +
         rev.sources.size() * sizeof(NodeId) +
         rev.types.size() * sizeof(TypeId);
}

const CsrView& CsrCache::Get(const GraphView& base) {
  std::lock_guard<std::mutex> lock(mu_);
  if (view_ == nullptr || base_ != &base) {
    view_ = std::make_unique<CsrView>(CsrView::Build(base));
    base_ = &base;
  }
  return *view_;
}

void CsrCache::Invalidate() {
  std::lock_guard<std::mutex> lock(mu_);
  view_.reset();
  base_ = nullptr;
}

CsrCache::Stats CsrCache::GetStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats stats;
  if (view_ != nullptr) {
    stats.forward_bytes = view_->ForwardByteSize();
    stats.reverse_bytes = view_->ReverseByteSize();
    stats.reverse_build_ms = view_->ReverseBuildMs();
  }
  return stats;
}

}  // namespace frappe::graph
