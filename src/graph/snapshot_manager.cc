#include "graph/snapshot_manager.h"

#include <cstdio>
#include <dirent.h>

#include "common/fault_injector.h"
#include "common/file_io.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace frappe::graph {

namespace {

// Fault sites below use the same "snapshot" prefix as SaveSnapshot, so
// FRAPPE_FAULT=snapshot.fsync:1 hits both code paths identically.
constexpr std::string_view kFaultPrefix = "snapshot";

bool CrashInjected(const char* suffix) {
  common::FaultInjector& inj = common::FaultInjector::Global();
  return inj.AnyArmed() &&
         inj.ShouldFail(std::string(kFaultPrefix) + suffix);
}

// Unlinks `<path>.tmp.*` leftovers from earlier crashed saves (our own
// temp name embeds the pid, so a previous process's debris never matches
// TempPathFor of this one).
void CleanStaleTemps(const std::string& path) {
  size_t slash = path.find_last_of('/');
  std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  if (slash == 0) dir = "/";
  std::string prefix =
      (slash == std::string::npos ? path : path.substr(slash + 1)) + ".tmp.";
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return;
  while (dirent* e = ::readdir(d)) {
    std::string_view name(e->d_name);
    if (name.size() > prefix.size() &&
        name.compare(0, prefix.size(), prefix) == 0) {
      common::RemoveFileIfExists(dir + "/" + std::string(name));
    }
  }
  ::closedir(d);
}

}  // namespace

SnapshotManager::SnapshotManager(std::string path, Options options)
    : path_(std::move(path)), options_(options) {
  if (options_.retain < 0) options_.retain = 0;
}

std::string SnapshotManager::GenerationPath(int generation) const {
  if (generation <= 0) return path_;
  return path_ + "." + std::to_string(generation);
}

Result<SnapshotSizes> SnapshotManager::Save(const GraphView& view,
                                            const NameIndex* index,
                                            const StatsCatalog* catalog) {
  FRAPPE_TRACE_SPAN("snapshot.manager.save");
  obs::Registry& reg = obs::Registry::Global();
  auto fail = [&reg](Status s) -> Status {
    reg.GetCounter("snapshot.save.failures").Add();
    return s;
  };

  std::string buffer;
  SnapshotOptions snapshot_options = options_.snapshot;
  if (catalog != nullptr) snapshot_options.catalog = catalog;
  auto sizes = SerializeSnapshot(view, &buffer, index, snapshot_options);
  if (!sizes.ok()) return fail(sizes.status());

  CleanStaleTemps(path_);

  // Make the new bytes durable under a temp name first: every later step
  // is a rename, so no generation is ever a mix of old and new data.
  std::string tmp = common::TempPathFor(path_);
  Status s = common::WriteFileDurable(tmp, buffer, kFaultPrefix);
  if (!s.ok()) {
    common::RemoveFileIfExists(tmp);
    return fail(s);
  }

  if (CrashInjected(".crash_rename")) {
    // Simulated crash between durable temp write and installation: the
    // temp file is left behind, generation 0 still holds the old bytes.
    return fail(Status::Internal("injected crash before rename: " + path_ +
                                 " (temp left at " + tmp + ")"));
  }

  // Shift old generations (best effort — a missing generation is fine,
  // and rename atomically replaces the older target). The one parent-dir
  // fsync issued by RenameFile below persists these entries too.
  for (int g = options_.retain - 1; g >= 1; --g) {
    std::rename(GenerationPath(g).c_str(), GenerationPath(g + 1).c_str());
  }
  if (options_.retain >= 1) {
    std::rename(path_.c_str(), GenerationPath(1).c_str());
  }

  s = common::RenameFile(tmp, path_, kFaultPrefix);
  if (!s.ok()) {
    common::RemoveFileIfExists(tmp);
    return fail(s);
  }
  reg.GetCounter("snapshot.save.count").Add();
  return sizes;
}

Result<SnapshotManager::Loaded> SnapshotManager::Load() const {
  FRAPPE_TRACE_SPAN("snapshot.manager.load");
  std::vector<std::string> errors;
  bool any_corrupt = false;
  for (int g = 0; g <= options_.retain; ++g) {
    std::string gen_path = GenerationPath(g);
    auto loaded = LoadSnapshot(gen_path);
    if (loaded.ok()) {
      Loaded result;
      result.snapshot = std::move(*loaded);
      result.path = std::move(gen_path);
      result.generation = g;
      result.generation_errors = std::move(errors);
      if (g > 0) {
        obs::Registry::Global().GetCounter("snapshot.load.fallbacks").Add();
        result.snapshot.warnings.push_back(
            "snapshot: generation 0 unusable; fell back to generation " +
            std::to_string(g) + " (" + result.path + ")");
        obs::LogWarn("snapshot", result.snapshot.warnings.back());
      }
      return result;
    }
    errors.push_back(gen_path + ": " + loaded.status().message());
    if (loaded.status().code() != StatusCode::kNotFound) any_corrupt = true;
  }
  std::string detail;
  for (const std::string& e : errors) {
    if (!detail.empty()) detail += "; ";
    detail += e;
  }
  // An all-missing family is NotFound (fresh start); any corrupt
  // generation makes the whole failure Corruption so callers can tell
  // "no snapshot yet" from "snapshots exist but none is usable".
  std::string msg = "no loadable snapshot generation: " + detail;
  return any_corrupt ? Status::Corruption(msg) : Status::NotFound(msg);
}

}  // namespace frappe::graph
