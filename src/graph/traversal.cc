#include "graph/traversal.h"

#include <algorithm>
#include <deque>
#include <unordered_map>
#include <unordered_set>

namespace frappe::graph {

namespace {

// Expands one node through the filter, invoking fn(edge, neighbor).
void Expand(const GraphView& view, NodeId node, const EdgeFilter& filter,
            const std::function<bool(EdgeId, NodeId)>& fn) {
  view.ForEachEdge(node, filter.direction, [&](EdgeId e, NodeId neighbor) {
    if (!filter.Allows(view.GetEdge(e).type)) return true;
    return fn(e, neighbor);
  });
}

}  // namespace

void Bfs(const GraphView& view, const std::vector<NodeId>& seeds,
         const EdgeFilter& filter,
         const std::function<bool(NodeId, size_t)>& visit, size_t max_depth) {
  std::unordered_set<NodeId> seen;
  std::deque<std::pair<NodeId, size_t>> queue;
  for (NodeId seed : seeds) {
    if (!view.NodeExists(seed)) continue;
    if (seen.insert(seed).second) {
      if (!visit(seed, 0)) return;
      queue.emplace_back(seed, 0);
    }
  }
  bool stopped = false;
  while (!queue.empty() && !stopped) {
    auto [node, depth] = queue.front();
    queue.pop_front();
    if (depth >= max_depth) continue;
    Expand(view, node, filter, [&](EdgeId, NodeId neighbor) {
      if (!seen.insert(neighbor).second) return true;
      if (!visit(neighbor, depth + 1)) {
        stopped = true;
        return false;
      }
      queue.emplace_back(neighbor, depth + 1);
      return true;
    });
  }
}

std::vector<NodeId> TransitiveClosure(const GraphView& view,
                                      const std::vector<NodeId>& seeds,
                                      const EdgeFilter& filter,
                                      size_t max_depth) {
  // Every node reached over >= 1 edges is in the closure — including a seed
  // re-reached through a cycle, which the single queue loop handles
  // naturally (membership is recorded on every expansion, enqueueing only
  // on first visit).
  std::unordered_set<NodeId> member;
  std::unordered_set<NodeId> visited;
  std::deque<std::pair<NodeId, size_t>> queue;
  for (NodeId seed : seeds) {
    if (view.NodeExists(seed) && visited.insert(seed).second) {
      queue.emplace_back(seed, 0);
    }
  }
  while (!queue.empty()) {
    auto [node, depth] = queue.front();
    queue.pop_front();
    if (depth >= max_depth) continue;
    Expand(view, node, filter, [&](EdgeId, NodeId neighbor) {
      member.insert(neighbor);
      if (visited.insert(neighbor).second) {
        queue.emplace_back(neighbor, depth + 1);
      }
      return true;
    });
  }
  std::vector<NodeId> out(member.begin(), member.end());
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<NodeId> TransitiveClosure(const GraphView& view, NodeId seed,
                                      const EdgeFilter& filter,
                                      size_t max_depth) {
  return TransitiveClosure(view, std::vector<NodeId>{seed}, filter, max_depth);
}

std::optional<Path> ShortestPath(const GraphView& view, NodeId from,
                                 NodeId to, const EdgeFilter& filter) {
  if (!view.NodeExists(from) || !view.NodeExists(to)) return std::nullopt;
  if (from == to) return Path{{from}, {}};
  // Parent pointers for path reconstruction.
  struct Link {
    NodeId parent;
    EdgeId via;
  };
  std::unordered_map<NodeId, Link> parents;
  std::deque<NodeId> queue{from};
  parents.emplace(from, Link{kInvalidNode, kInvalidEdge});
  while (!queue.empty()) {
    NodeId node = queue.front();
    queue.pop_front();
    bool found = false;
    Expand(view, node, filter, [&](EdgeId e, NodeId neighbor) {
      if (parents.count(neighbor)) return true;
      parents.emplace(neighbor, Link{node, e});
      if (neighbor == to) {
        found = true;
        return false;
      }
      queue.push_back(neighbor);
      return true;
    });
    if (found) break;
  }
  auto it = parents.find(to);
  if (it == parents.end()) return std::nullopt;
  Path path;
  NodeId cur = to;
  while (cur != from) {
    const Link& link = parents.at(cur);
    path.nodes.push_back(cur);
    path.edges.push_back(link.via);
    cur = link.parent;
  }
  path.nodes.push_back(from);
  std::reverse(path.nodes.begin(), path.nodes.end());
  std::reverse(path.edges.begin(), path.edges.end());
  return path;
}

namespace {

void EnumerateDfs(const GraphView& view, NodeId from, NodeId to,
                  const EdgeFilter& filter, size_t max_depth, size_t limit,
                  Path* stack, std::unordered_set<NodeId>* on_path,
                  std::vector<Path>* out) {
  // Explicit DFS stack: path depth is bounded only by the node count (think
  // a 100k-node chain), far beyond what the call stack can hold.
  struct Frame {
    EdgeId in_edge;  // edge appended to the path to enter this frame
    std::vector<std::pair<EdgeId, NodeId>> edges;
    size_t next = 0;
  };
  auto make_frame = [&](NodeId node, EdgeId in_edge) {
    Frame frame;
    frame.in_edge = in_edge;
    if (stack->edges.size() < max_depth) {
      Expand(view, node, filter, [&](EdgeId e, NodeId n) {
        frame.edges.emplace_back(e, n);
        return true;
      });
    }
    return frame;
  };
  std::vector<Frame> frames;
  frames.push_back(make_frame(from, kInvalidEdge));
  while (!frames.empty()) {
    Frame& top = frames.back();
    if (out->size() >= limit || top.next >= top.edges.size()) {
      if (top.in_edge != kInvalidEdge) {
        on_path->erase(stack->nodes.back());
        stack->nodes.pop_back();
        stack->edges.pop_back();
      }
      frames.pop_back();
      continue;
    }
    auto [edge, neighbor] = top.edges[top.next++];
    if (neighbor == to) {
      Path found = *stack;
      found.nodes.push_back(neighbor);
      found.edges.push_back(edge);
      out->push_back(std::move(found));
      continue;
    }
    if (on_path->count(neighbor)) continue;  // simple paths only
    stack->nodes.push_back(neighbor);
    stack->edges.push_back(edge);
    on_path->insert(neighbor);
    frames.push_back(make_frame(neighbor, edge));
  }
}

}  // namespace

std::vector<Path> EnumeratePaths(const GraphView& view, NodeId from,
                                 NodeId to, const EdgeFilter& filter,
                                 size_t max_depth, size_t limit) {
  std::vector<Path> out;
  if (!view.NodeExists(from) || !view.NodeExists(to)) return out;
  Path stack;
  stack.nodes.push_back(from);
  std::unordered_set<NodeId> on_path{from};
  EnumerateDfs(view, from, to, filter, max_depth, limit, &stack, &on_path,
               &out);
  return out;
}

bool IsReachable(const GraphView& view, NodeId from, NodeId to,
                 const EdgeFilter& filter, size_t max_depth) {
  if (!view.NodeExists(from) || !view.NodeExists(to)) return false;
  bool found = false;
  // Reachability over >= 0 edges: a node trivially reaches itself.
  Bfs(
      view, {from}, filter,
      [&](NodeId node, size_t) {
        if (node == to) {
          found = true;
          return false;
        }
        return true;
      },
      max_depth);
  return found;
}

}  // namespace frappe::graph
