#ifndef FRAPPE_GRAPH_REGISTRY_H_
#define FRAPPE_GRAPH_REGISTRY_H_

#include <cassert>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "graph/ids.h"

namespace frappe::graph {

// Small interning table mapping names (node labels, edge types, property
// keys) to dense 16-bit ids. A schema has a few dozen entries, so lookups
// and storage stay trivially cheap.
class NameRegistry {
 public:
  NameRegistry() = default;
  NameRegistry(const NameRegistry&) = delete;
  NameRegistry& operator=(const NameRegistry&) = delete;
  NameRegistry(NameRegistry&&) = default;
  NameRegistry& operator=(NameRegistry&&) = default;

  uint16_t Intern(std::string_view name) {
    auto it = index_.find(std::string(name));
    if (it != index_.end()) return it->second;
    assert(names_.size() < 0xFFFF && "registry overflow");
    uint16_t id = static_cast<uint16_t>(names_.size());
    names_.emplace_back(name);
    index_.emplace(names_.back(), id);
    return id;
  }

  // Returns kInvalidType/kInvalidKey-compatible 0xFFFF when absent.
  uint16_t Find(std::string_view name) const {
    auto it = index_.find(std::string(name));
    return it == index_.end() ? 0xFFFF : it->second;
  }

  bool Contains(std::string_view name) const { return Find(name) != 0xFFFF; }

  std::string_view Name(uint16_t id) const {
    if (id >= names_.size()) return {};
    return names_[id];
  }

  size_t size() const { return names_.size(); }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, uint16_t> index_;
};

}  // namespace frappe::graph

#endif  // FRAPPE_GRAPH_REGISTRY_H_
