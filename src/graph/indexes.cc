#include "graph/indexes.h"

#include <algorithm>
#include <cstring>

#include "common/string_util.h"

namespace frappe::graph {

namespace {

std::vector<NodeId> SortedUnique(std::vector<NodeId> v) {
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
  return v;
}

std::vector<NodeId> Union(const std::vector<NodeId>& a,
                          const std::vector<NodeId>& b) {
  std::vector<NodeId> out;
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

std::vector<NodeId> Intersect(const std::vector<NodeId>& a,
                              const std::vector<NodeId>& b) {
  std::vector<NodeId> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

}  // namespace

NameIndex NameIndex::Build(const GraphView& view,
                           std::vector<FieldSpec> fields) {
  NameIndex index;
  for (FieldSpec& spec : fields) {
    spec.name = ToLower(spec.name);
    index.specs_.push_back(spec);
    index.postings_.emplace_back();
  }
  view.ForEachNode([&](NodeId id) { index.IndexNode(view, id); });
  return index;
}

void NameIndex::IndexNode(const GraphView& view, NodeId id) {
  for (size_t i = 0; i < specs_.size(); ++i) {
    const FieldSpec& spec = specs_[i];
    std::string_view term;
    if (spec.is_type_field) {
      term = view.NodeTypeName(id);
    } else {
      term = view.GetNodeString(id, spec.key);
    }
    if (!term.empty()) AddTerm(i, term, id);
  }
}

void NameIndex::AddTerm(size_t field_idx, std::string_view term, NodeId id) {
  std::vector<NodeId>& list = postings_[field_idx][ToLower(term)];
  // Nodes are indexed in ascending id order during Build; keep the posting
  // list sorted for incremental inserts too.
  if (list.empty() || list.back() < id) {
    list.push_back(id);
  } else {
    auto it = std::lower_bound(list.begin(), list.end(), id);
    if (it == list.end() || *it != id) list.insert(it, id);
  }
}

const NameIndex::Postings* NameIndex::FindField(std::string_view field) const {
  std::string lowered = ToLower(field);
  for (size_t i = 0; i < specs_.size(); ++i) {
    if (specs_[i].name == lowered) return &postings_[i];
  }
  return nullptr;
}

std::vector<NodeId> NameIndex::Lookup(std::string_view field,
                                      std::string_view term) const {
  const Postings* p = FindField(field);
  if (p == nullptr) return {};
  auto it = p->find(ToLower(term));
  return it == p->end() ? std::vector<NodeId>() : it->second;
}

std::vector<NodeId> NameIndex::LookupWildcard(std::string_view field,
                                              std::string_view pattern) const {
  const Postings* p = FindField(field);
  if (p == nullptr) return {};
  std::string lowered = ToLower(pattern);
  // Literal prefix before the first metacharacter bounds the scan range.
  size_t meta = lowered.find_first_of("*?");
  std::string prefix = lowered.substr(0, meta);
  std::vector<NodeId> out;
  for (auto it = p->lower_bound(prefix); it != p->end(); ++it) {
    if (!prefix.empty() && !StartsWith(it->first, prefix)) break;
    if (WildcardMatch(lowered, it->first)) {
      out.insert(out.end(), it->second.begin(), it->second.end());
    }
  }
  return SortedUnique(std::move(out));
}

std::vector<NodeId> NameIndex::LookupFuzzy(std::string_view field,
                                           std::string_view term,
                                           size_t max_distance) const {
  const Postings* p = FindField(field);
  if (p == nullptr) return {};
  std::string lowered = ToLower(term);
  std::vector<NodeId> out;
  for (const auto& [candidate, nodes] : *p) {
    size_t len_a = candidate.size(), len_b = lowered.size();
    size_t diff = len_a > len_b ? len_a - len_b : len_b - len_a;
    if (diff > max_distance) continue;
    if (BoundedEditDistance(candidate, lowered, max_distance) <=
        max_distance) {
      out.insert(out.end(), nodes.begin(), nodes.end());
    }
  }
  return SortedUnique(std::move(out));
}

// ---------------------------------------------------------------------------
// Lucene-style query parser.
// ---------------------------------------------------------------------------

namespace {

struct LuceneParser {
  const NameIndex& index;
  std::string_view input;
  size_t pos = 0;

  void SkipSpace() {
    while (pos < input.size() &&
           std::isspace(static_cast<unsigned char>(input[pos]))) {
      ++pos;
    }
  }

  bool AtEnd() {
    SkipSpace();
    return pos >= input.size();
  }

  bool Peek(char c) {
    SkipSpace();
    return pos < input.size() && input[pos] == c;
  }

  // Matches a keyword (AND/OR) case-sensitively, as lucene does.
  bool ConsumeKeyword(std::string_view kw) {
    SkipSpace();
    if (input.substr(pos, kw.size()) != kw) return false;
    size_t after = pos + kw.size();
    if (after < input.size() &&
        !std::isspace(static_cast<unsigned char>(input[after])) &&
        input[after] != '(') {
      return false;
    }
    pos = after;
    return true;
  }

  // Bare word: identifier-ish characters plus wildcard/fuzzy markers and
  // the dots/dashes that appear in file names like `wakeup.elf`.
  Result<std::string> ParseTermToken() {
    SkipSpace();
    if (pos < input.size() && (input[pos] == '"' || input[pos] == '\'')) {
      char quote = input[pos++];
      size_t start = pos;
      while (pos < input.size() && input[pos] != quote) ++pos;
      if (pos >= input.size()) {
        return Status::ParseError("unterminated quoted term");
      }
      std::string out(input.substr(start, pos - start));
      ++pos;  // closing quote
      return out;
    }
    size_t start = pos;
    while (pos < input.size()) {
      char c = input[pos];
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
          c == '*' || c == '?' || c == '~' || c == '.' || c == '-' ||
          c == ':' || c == '/') {
        // ':' ends a field name, not a term; handled by caller splitting.
        if (c == ':') break;
        ++pos;
      } else {
        break;
      }
    }
    if (pos == start) return Status::ParseError("expected term");
    return std::string(input.substr(start, pos - start));
  }

  Result<std::vector<NodeId>> ParseOr() {
    FRAPPE_ASSIGN_OR_RETURN(std::vector<NodeId> left, ParseAnd());
    while (ConsumeKeyword("OR")) {
      FRAPPE_ASSIGN_OR_RETURN(std::vector<NodeId> right, ParseAnd());
      left = Union(left, right);
    }
    return left;
  }

  Result<std::vector<NodeId>> ParseAnd() {
    FRAPPE_ASSIGN_OR_RETURN(std::vector<NodeId> left, ParsePrimary());
    while (true) {
      SkipSpace();
      if (AtEnd() || Peek(')')) break;
      // Explicit OR binds at the level above.
      size_t save = pos;
      if (ConsumeKeyword("OR")) {
        pos = save;
        break;
      }
      ConsumeKeyword("AND");  // optional: juxtaposition also means AND
      if (AtEnd() || Peek(')')) {
        return Status::ParseError("dangling AND in index query");
      }
      FRAPPE_ASSIGN_OR_RETURN(std::vector<NodeId> right, ParsePrimary());
      left = Intersect(left, right);
    }
    return left;
  }

  Result<std::vector<NodeId>> ParsePrimary() {
    SkipSpace();
    if (Peek('(')) {
      ++pos;
      FRAPPE_ASSIGN_OR_RETURN(std::vector<NodeId> inner, ParseOr());
      if (!Peek(')')) return Status::ParseError("expected ')' in index query");
      ++pos;
      return inner;
    }
    FRAPPE_ASSIGN_OR_RETURN(std::string field, ParseTermToken());
    if (!Peek(':')) {
      return Status::ParseError("expected 'field: term', got '" + field + "'");
    }
    ++pos;  // ':'
    FRAPPE_ASSIGN_OR_RETURN(std::string term, ParseTermToken());

    // Fuzzy suffix: `term~` or `term~N`.
    size_t tilde = term.rfind('~');
    if (tilde != std::string::npos) {
      std::string base = term.substr(0, tilde);
      std::string dist_str = term.substr(tilde + 1);
      size_t dist = 2;
      if (!dist_str.empty()) {
        int64_t parsed = 0;
        if (!ParseInt64(dist_str, &parsed) || parsed < 0) {
          return Status::ParseError("bad fuzzy distance '" + dist_str + "'");
        }
        dist = static_cast<size_t>(parsed);
      }
      return index.LookupFuzzy(field, base, dist);
    }
    if (HasWildcards(term)) return index.LookupWildcard(field, term);
    return index.Lookup(field, term);
  }
};

}  // namespace

Result<std::vector<NodeId>> NameIndex::Query(std::string_view query) const {
  LuceneParser parser{*this, query};
  FRAPPE_ASSIGN_OR_RETURN(std::vector<NodeId> out, parser.ParseOr());
  if (!parser.AtEnd()) {
    return Status::ParseError("trailing input in index query: '" +
                              std::string(query.substr(parser.pos)) + "'");
  }
  return out;
}

size_t NameIndex::TermCount() const {
  size_t n = 0;
  for (const Postings& p : postings_) n += p.size();
  return n;
}

NameIndex::FieldStats NameIndex::StatsForField(size_t field_idx) const {
  FieldStats stats;
  if (field_idx >= postings_.size()) return stats;
  const Postings& p = postings_[field_idx];
  stats.distinct_terms = p.size();
  for (const auto& [term, nodes] : p) stats.postings += nodes.size();
  return stats;
}

uint64_t NameIndex::ByteSize() const {
  uint64_t bytes = 0;
  for (const Postings& p : postings_) {
    for (const auto& [term, nodes] : p) {
      // Term text + std::map node overhead + posting list.
      bytes += term.size() + 48 + nodes.size() * sizeof(NodeId);
    }
  }
  return bytes;
}

// ---------------------------------------------------------------------------
// Serialization: [u32 field_count] then per field
// [name][key u16][is_type u8][u64 term_count] then per term
// [term][u32 posting_count][postings...]. Strings are u32-length-prefixed.
// ---------------------------------------------------------------------------

namespace {

void PutU32(std::string* out, uint32_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}
void PutU64(std::string* out, uint64_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}
void PutString(std::string* out, std::string_view s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s.data(), s.size());
}

struct Reader {
  std::string_view data;
  size_t pos = 0;

  bool ReadU32(uint32_t* v) {
    if (pos + sizeof(*v) > data.size()) return false;
    std::memcpy(v, data.data() + pos, sizeof(*v));
    pos += sizeof(*v);
    return true;
  }
  bool ReadU64(uint64_t* v) {
    if (pos + sizeof(*v) > data.size()) return false;
    std::memcpy(v, data.data() + pos, sizeof(*v));
    pos += sizeof(*v);
    return true;
  }
  bool ReadString(std::string* s) {
    uint32_t len;
    if (!ReadU32(&len) || pos + len > data.size()) return false;
    s->assign(data.data() + pos, len);
    pos += len;
    return true;
  }
};

}  // namespace

void NameIndex::Serialize(std::string* out) const {
  PutU32(out, static_cast<uint32_t>(specs_.size()));
  for (size_t i = 0; i < specs_.size(); ++i) {
    PutString(out, specs_[i].name);
    PutU32(out, specs_[i].key);
    PutU32(out, specs_[i].is_type_field ? 1 : 0);
    PutU64(out, postings_[i].size());
    for (const auto& [term, nodes] : postings_[i]) {
      PutString(out, term);
      PutU32(out, static_cast<uint32_t>(nodes.size()));
      out->append(reinterpret_cast<const char*>(nodes.data()),
                  nodes.size() * sizeof(NodeId));
    }
  }
}

Result<NameIndex> NameIndex::Deserialize(std::string_view data) {
  auto corrupt = [](std::string what, size_t offset) {
    return Status::Corruption("name index: " + std::move(what) +
                              " at offset " + std::to_string(offset));
  };
  Reader r{data};
  uint32_t field_count;
  if (!r.ReadU32(&field_count)) {
    return corrupt("truncated header", r.pos);
  }
  // Each field header needs at least 20 bytes; anything bigger than the
  // remaining data is a corrupted count, not a real index.
  if (field_count > (data.size() - r.pos) / 20) {
    return corrupt("implausible field count " + std::to_string(field_count),
                   r.pos);
  }
  NameIndex index;
  for (uint32_t i = 0; i < field_count; ++i) {
    FieldSpec spec;
    uint32_t key, is_type;
    uint64_t term_count;
    if (!r.ReadString(&spec.name) || !r.ReadU32(&key) ||
        !r.ReadU32(&is_type) || !r.ReadU64(&term_count)) {
      return corrupt("truncated field header", r.pos);
    }
    spec.key = static_cast<KeyId>(key);
    spec.is_type_field = is_type != 0;
    index.specs_.push_back(spec);
    Postings postings;
    std::string prev_term;
    for (uint64_t t = 0; t < term_count; ++t) {
      size_t entry_pos = r.pos;
      std::string term;
      uint32_t count;
      if (!r.ReadString(&term) || !r.ReadU32(&count) ||
          count * sizeof(NodeId) > data.size() - r.pos) {
        return corrupt("truncated postings", r.pos);
      }
      // Serialize emits map order, so terms must be strictly increasing;
      // equal terms would silently collapse in the map and a wrong order
      // means the bytes were tampered with.
      if (t > 0 && term <= prev_term) {
        return corrupt("term order violation in field '" + spec.name + "'",
                       entry_pos);
      }
      std::vector<NodeId> nodes(count);
      std::memcpy(nodes.data(), data.data() + r.pos, count * sizeof(NodeId));
      r.pos += count * sizeof(NodeId);
      // Lookups intersect/merge posting lists assuming sorted, deduplicated
      // ids — enforce strictly ascending here rather than trusting disk.
      for (uint32_t n = 1; n < count; ++n) {
        if (nodes[n] <= nodes[n - 1]) {
          return corrupt("unsorted posting list for term '" + term + "'",
                         entry_pos);
        }
      }
      postings.emplace(std::move(term), std::move(nodes));
      prev_term = postings.rbegin()->first;
    }
    index.postings_.push_back(std::move(postings));
  }
  if (r.pos != data.size()) {
    return corrupt(std::to_string(data.size() - r.pos) + " trailing bytes",
                   r.pos);
  }
  return index;
}

// ---------------------------------------------------------------------------
// LabelIndex
// ---------------------------------------------------------------------------

LabelIndex LabelIndex::Build(const GraphView& view) {
  LabelIndex index;
  index.by_type_.resize(view.node_types().size());
  view.ForEachNode([&](NodeId id) {
    TypeId type = view.NodeType(id);
    if (type < index.by_type_.size()) index.by_type_[type].push_back(id);
  });
  return index;
}

const std::vector<NodeId>& LabelIndex::Nodes(TypeId type) const {
  if (type >= by_type_.size()) return empty_;
  return by_type_[type];
}

uint64_t LabelIndex::ByteSize() const {
  uint64_t bytes = 0;
  for (const auto& v : by_type_) bytes += v.size() * sizeof(NodeId) + 24;
  return bytes;
}

}  // namespace frappe::graph
