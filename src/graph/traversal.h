#ifndef FRAPPE_GRAPH_TRAVERSAL_H_
#define FRAPPE_GRAPH_TRAVERSAL_H_

#include <cstdint>
#include <limits>
#include <optional>
#include <vector>

#include "graph/graph_view.h"

namespace frappe::graph {

// Which edges an expansion step may follow.
struct EdgeFilter {
  // Empty means "any edge type".
  std::vector<TypeId> types;
  Direction direction = Direction::kOut;

  static EdgeFilter Any(Direction dir = Direction::kOut) {
    return EdgeFilter{{}, dir};
  }
  static EdgeFilter Of(std::vector<TypeId> types,
                       Direction dir = Direction::kOut) {
    return EdgeFilter{std::move(types), dir};
  }

  bool Allows(TypeId type) const {
    if (types.empty()) return true;
    for (TypeId t : types) {
      if (t == type) return true;
    }
    return false;
  }
};

// Result of a path search: node sequence and the edges between them.
struct Path {
  std::vector<NodeId> nodes;
  std::vector<EdgeId> edges;

  size_t Length() const { return edges.size(); }
  bool operator==(const Path&) const = default;
};

// Breadth-first expansion from `seeds`, visiting each node at most once.
// `visit(node, depth)` is called for every reached node (seeds at depth 0);
// returning false stops the whole traversal. This direct adjacency walk is
// the paper's workaround for Cypher's unusable transitive-closure
// performance ("computed via Neo4j's Java API in ~20ms", Section 6.1).
void Bfs(const GraphView& view, const std::vector<NodeId>& seeds,
         const EdgeFilter& filter,
         const std::function<bool(NodeId, size_t depth)>& visit,
         size_t max_depth = std::numeric_limits<size_t>::max());

// All nodes reachable from `seed` in 1..max_depth steps (excluding the seed
// unless it is reachable via a cycle). Sorted by node id. This is the
// Figure 6 "transitive closure of outgoing calls" computed the fast way.
std::vector<NodeId> TransitiveClosure(
    const GraphView& view, NodeId seed, const EdgeFilter& filter,
    size_t max_depth = std::numeric_limits<size_t>::max());
std::vector<NodeId> TransitiveClosure(
    const GraphView& view, const std::vector<NodeId>& seeds,
    const EdgeFilter& filter,
    size_t max_depth = std::numeric_limits<size_t>::max());

// Shortest path (fewest edges) from `from` to `to`, or nullopt if
// unreachable. Bidirectional BFS when the filter direction is symmetric
// enough; plain BFS otherwise.
std::optional<Path> ShortestPath(const GraphView& view, NodeId from,
                                 NodeId to, const EdgeFilter& filter);

// Enumerates up to `limit` simple paths (no repeated nodes) from `from` to
// `to` of length <= max_depth. Used by the debugging use case to show how
// execution can reach a point of interest.
std::vector<Path> EnumeratePaths(const GraphView& view, NodeId from,
                                 NodeId to, const EdgeFilter& filter,
                                 size_t max_depth, size_t limit);

// True if `to` is reachable from `from` within max_depth steps.
bool IsReachable(const GraphView& view, NodeId from, NodeId to,
                 const EdgeFilter& filter,
                 size_t max_depth = std::numeric_limits<size_t>::max());

}  // namespace frappe::graph

#endif  // FRAPPE_GRAPH_TRAVERSAL_H_
