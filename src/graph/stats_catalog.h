#ifndef FRAPPE_GRAPH_STATS_CATALOG_H_
#define FRAPPE_GRAPH_STATS_CATALOG_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "graph/indexes.h"
#include "graph/stats.h"

namespace frappe::graph {

// Persisted cardinality statistics — the data source for the query
// estimator and the `/debug/statz` endpoint. Built by the FQL `ANALYZE`
// command (or by BuildStatsCatalog directly), persisted as its own
// CRC-framed snapshot section, and consumed read-only by the planner.
//
// The catalog intentionally stores *summaries*, not per-node data: type
// counts, per-edge-type directional degree histograms (the kernel graph is
// heavily skewed — `int` alone has ~79K edges, paper Table 3/Fig. 7), the
// top-K hub list, and per-index-field term cardinalities. Serialized size
// is a few KB even for multi-million-edge graphs.
struct StatsCatalog {
  static constexpr uint32_t kFormatVersion = 1;
  static constexpr size_t kDefaultHubCount = 16;

  // Totals at build time. Also the staleness reference: when the live
  // graph drifts far from these, estimates degrade and ANALYZE should run.
  uint64_t node_count = 0;
  uint64_t edge_count = 0;

  struct NodeTypeStats {
    std::string name;
    uint64_t count = 0;
  };
  // Indexed by TypeId (dense, matches the node-type registry at build).
  std::vector<NodeTypeStats> node_types;

  struct EdgeTypeStats {
    std::string name;
    uint64_t count = 0;
    uint64_t distinct_sources = 0;  // nodes with >= 1 out-edge of this type
    uint64_t distinct_targets = 0;  // nodes with >= 1 in-edge of this type
    // Log-binned degree histograms restricted to this edge type, one per
    // direction. Bins cover only nodes that participate (degree >= 1).
    std::vector<DegreeBin> out_degrees;
    std::vector<DegreeBin> in_degrees;

    // Average fan-out per *participating* endpoint — the estimator's
    // expansion factor for one hop along this type.
    double AvgOutFanout() const {
      return distinct_sources == 0
                 ? 0.0
                 : static_cast<double>(count) /
                       static_cast<double>(distinct_sources);
    }
    double AvgInFanout() const {
      return distinct_targets == 0
                 ? 0.0
                 : static_cast<double>(count) /
                       static_cast<double>(distinct_targets);
    }
  };
  // Indexed by TypeId (dense, matches the edge-type registry at build).
  std::vector<EdgeTypeStats> edge_types;

  // Highest total-degree nodes (paper hubs: `int`, `NULL`, ...).
  std::vector<HubNode> hubs;

  struct IndexFieldStats {
    std::string field;            // lucene field name, e.g. "short_name"
    uint64_t distinct_terms = 0;
    uint64_t postings = 0;        // total (term, node) pairs
  };
  std::vector<IndexFieldStats> index_fields;

  // How far the live graph has drifted from the catalog, as a fraction of
  // the catalog's size: max over nodes/edges of |now - then| / max(then, 1).
  double StalenessRatio(uint64_t nodes_now, uint64_t edges_now) const;

  // Serialized byte size (what the snapshot stats section will cost).
  uint64_t ByteSize() const;

  void Serialize(std::string* out) const;
  static Result<StatsCatalog> Deserialize(std::string_view data);

  // Full catalog as a JSON object (served by /debug/statz and \statz).
  std::string ToJson() const;
};

// Scans `view` (two passes: nodes, edges) and the optional name index.
// Hub names resolve via the "short_name" key when the schema has one.
StatsCatalog BuildStatsCatalog(const GraphView& view,
                               const NameIndex* name_index = nullptr,
                               size_t hub_count =
                                   StatsCatalog::kDefaultHubCount);

// Shared, swappable catalog handle hung off query::Database (mirrors
// CsrCache). Readers snapshot the shared_ptr; ANALYZE swaps in a rebuild.
class StatsCatalogCache {
 public:
  // Current catalog, or nullptr when ANALYZE has never run and no
  // snapshot carried one.
  std::shared_ptr<const StatsCatalog> Get() const;
  void Set(StatsCatalog catalog);
  void Clear();

  // Ingest hook: rebuilds when the live graph has drifted more than
  // `max_drift` from the cached catalog (no-op when empty — ANALYZE is an
  // explicit opt-in the first time). Returns true when it rebuilt.
  bool RefreshIfStale(const GraphView& view, const NameIndex* name_index,
                      double max_drift = 0.1);

 private:
  mutable std::mutex mu_;
  std::shared_ptr<const StatsCatalog> catalog_;
};

}  // namespace frappe::graph

#endif  // FRAPPE_GRAPH_STATS_CATALOG_H_
