#include "graph/value.h"

#include <cstdio>

namespace frappe::graph {

std::string Value::ToString(const StringPool& pool) const {
  switch (type_) {
    case ValueType::kNull:
      return "null";
    case ValueType::kBool:
      return int_ ? "true" : "false";
    case ValueType::kInt:
      return std::to_string(int_);
    case ValueType::kDouble: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%g", double_);
      return buf;
    }
    case ValueType::kString:
      return "'" + std::string(pool.Resolve(string_)) + "'";
  }
  return "?";
}

}  // namespace frappe::graph
