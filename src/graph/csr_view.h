#ifndef FRAPPE_GRAPH_CSR_VIEW_H_
#define FRAPPE_GRAPH_CSR_VIEW_H_

#include <memory>
#include <mutex>
#include <vector>

#include "graph/graph_view.h"

namespace frappe::graph {

// Read-optimized compressed-sparse-row snapshot of a GraphView. The
// mutable GraphStore keeps one heap-allocated adjacency vector per node
// per direction — flexible, but cache-hostile for whole-graph analytics.
// CsrView packs all adjacency into four flat arrays (offsets + edge ids,
// out and in), the layout engines like PGX and LLAMA (paper Section 7)
// use for traversal-heavy workloads.
//
// The view borrows the base view for types, properties and strings;
// topology reads (ForEachEdge, degrees) hit the packed arrays. Build once
// after loading, then run closures/slices against it.
class CsrView final : public GraphView {
 public:
  // Materializes the adjacency of `base`. The base must outlive the view.
  static CsrView Build(const GraphView& base);

  // --- GraphView ---
  const NameRegistry& node_types() const override {
    return base_->node_types();
  }
  const NameRegistry& edge_types() const override {
    return base_->edge_types();
  }
  const NameRegistry& keys() const override { return base_->keys(); }
  const StringPool& strings() const override { return base_->strings(); }

  size_t NodeCount() const override { return base_->NodeCount(); }
  size_t EdgeCount() const override { return base_->EdgeCount(); }
  NodeId NodeIdUpperBound() const override {
    return base_->NodeIdUpperBound();
  }
  EdgeId EdgeIdUpperBound() const override {
    return base_->EdgeIdUpperBound();
  }
  bool NodeExists(NodeId id) const override { return base_->NodeExists(id); }
  bool EdgeExists(EdgeId id) const override { return base_->EdgeExists(id); }

  TypeId NodeType(NodeId id) const override { return base_->NodeType(id); }
  Edge GetEdge(EdgeId id) const override {
    // Topology is answered from the packed copy (cache-friendly).
    return edges_[id];
  }
  Value GetNodeProperty(NodeId id, KeyId key) const override {
    return base_->GetNodeProperty(id, key);
  }
  Value GetEdgeProperty(EdgeId id, KeyId key) const override {
    return base_->GetEdgeProperty(id, key);
  }
  const PropertyMap& NodeProperties(NodeId id) const override {
    return base_->NodeProperties(id);
  }
  const PropertyMap& EdgeProperties(EdgeId id) const override {
    return base_->EdgeProperties(id);
  }

  void ForEachEdge(NodeId id, Direction dir,
                   const EdgeVisitor& fn) const override;

  size_t OutDegree(NodeId id) const override {
    return out_offsets_[id + 1] - out_offsets_[id];
  }
  size_t InDegree(NodeId id) const override {
    return in_offsets_[id + 1] - in_offsets_[id];
  }

  // Packed-array accessors for tight traversal loops.
  struct Neighbors {
    const EdgeId* begin_edges;
    const NodeId* begin_nodes;
    size_t count;
  };
  Neighbors Out(NodeId id) const {
    size_t begin = out_offsets_[id];
    return {out_edges_.data() + begin, out_targets_.data() + begin,
            out_offsets_[id + 1] - begin};
  }
  Neighbors In(NodeId id) const {
    size_t begin = in_offsets_[id];
    return {in_edges_.data() + begin, in_sources_.data() + begin,
            in_offsets_[id + 1] - begin};
  }

  // Resident bytes of the packed arrays.
  uint64_t ByteSize() const;

 private:
  CsrView() = default;

  const GraphView* base_ = nullptr;
  std::vector<Edge> edges_;  // indexed by EdgeId (dead edges zeroed)
  std::vector<uint64_t> out_offsets_, in_offsets_;  // size = nodes + 1
  std::vector<EdgeId> out_edges_, in_edges_;
  std::vector<NodeId> out_targets_, in_sources_;
};

// Thread-safe lazy CsrView cache: builds the packed adjacency on first use
// and hands out the same view afterwards, so repeated analytics queries
// (the executor's closure fast path, parallel slices) amortize the one-off
// build. Invalidate() after mutating the base graph; Get() with a
// different base also rebuilds.
class CsrCache {
 public:
  const CsrView& Get(const GraphView& base);
  void Invalidate();

 private:
  std::mutex mu_;
  std::unique_ptr<CsrView> view_;
  const GraphView* base_ = nullptr;
};

}  // namespace frappe::graph

#endif  // FRAPPE_GRAPH_CSR_VIEW_H_
