#ifndef FRAPPE_GRAPH_CSR_VIEW_H_
#define FRAPPE_GRAPH_CSR_VIEW_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <vector>

#include "graph/graph_view.h"

namespace frappe::graph {

// Read-optimized compressed-sparse-row snapshot of a GraphView. The
// mutable GraphStore keeps one heap-allocated adjacency vector per node
// per direction — flexible, but cache-hostile for whole-graph analytics.
// CsrView packs all adjacency into flat arrays (offsets + edge ids +
// target ids + edge types), the layout engines like PGX and LLAMA (paper
// Section 7) use for traversal-heavy workloads.
//
// Two refinements over a plain CSR:
//
//   * Edge types ride in a packed per-direction lane (`out_types_`,
//     `in_types_`) parallel to the target array, so a type-filtered scan
//     streams 2 bytes per edge sequentially instead of gathering 12-byte
//     Edge structs at random EdgeId offsets.
//
//   * The reverse CSR (the in-direction transpose) is built lazily, on
//     the first traversal that actually scans in-edges — the
//     direction-optimizing kernel's pull phase, an explicit `<-` match,
//     or an undirected sweep. Forward-only workloads skip its build time
//     and memory entirely. The build is thread-safe (std::call_once) and
//     its cost/bytes are queryable for /debug/storagez.
//
// The view borrows the base view for types, properties and strings;
// topology reads (ForEachEdge, degrees) hit the packed arrays. Build once
// after loading, then run closures/slices against it.
class CsrView final : public GraphView {
 public:
  // Materializes the forward adjacency of `base`. The base must outlive
  // the view. The reverse arrays materialize on first in-direction use.
  static CsrView Build(const GraphView& base);

  // --- GraphView ---
  const NameRegistry& node_types() const override {
    return base_->node_types();
  }
  const NameRegistry& edge_types() const override {
    return base_->edge_types();
  }
  const NameRegistry& keys() const override { return base_->keys(); }
  const StringPool& strings() const override { return base_->strings(); }

  size_t NodeCount() const override { return base_->NodeCount(); }
  size_t EdgeCount() const override { return base_->EdgeCount(); }
  NodeId NodeIdUpperBound() const override {
    return base_->NodeIdUpperBound();
  }
  EdgeId EdgeIdUpperBound() const override {
    return base_->EdgeIdUpperBound();
  }
  bool NodeExists(NodeId id) const override { return base_->NodeExists(id); }
  bool EdgeExists(EdgeId id) const override { return base_->EdgeExists(id); }

  TypeId NodeType(NodeId id) const override { return base_->NodeType(id); }
  Edge GetEdge(EdgeId id) const override {
    // Topology is answered from the packed copy (cache-friendly).
    return edges_[id];
  }
  Value GetNodeProperty(NodeId id, KeyId key) const override {
    return base_->GetNodeProperty(id, key);
  }
  Value GetEdgeProperty(EdgeId id, KeyId key) const override {
    return base_->GetEdgeProperty(id, key);
  }
  const PropertyMap& NodeProperties(NodeId id) const override {
    return base_->NodeProperties(id);
  }
  const PropertyMap& EdgeProperties(EdgeId id) const override {
    return base_->EdgeProperties(id);
  }

  void ForEachEdge(NodeId id, Direction dir,
                   const EdgeVisitor& fn) const override;

  size_t OutDegree(NodeId id) const override {
    return out_offsets_[id + 1] - out_offsets_[id];
  }
  size_t InDegree(NodeId id) const override {
    EnsureReverse();
    return reverse_->offsets[id + 1] - reverse_->offsets[id];
  }

  // Packed-array accessors for tight traversal loops. `begin_types[i]` is
  // the edge type of `begin_edges[i]` — read it instead of
  // GetEdge(begin_edges[i]).type in filtered scans.
  struct Neighbors {
    const EdgeId* begin_edges;
    const NodeId* begin_nodes;
    const TypeId* begin_types;
    size_t count;
  };

  // Packed bytes one edge scan touches (target id + type id): the unit the
  // analytics kernels use to convert step counts into scanned_bytes for
  // per-query resource attribution.
  static constexpr uint64_t kBytesPerEdgeScan =
      sizeof(NodeId) + sizeof(TypeId);
  Neighbors Out(NodeId id) const {
    size_t begin = out_offsets_[id];
    return {out_edges_.data() + begin, out_targets_.data() + begin,
            out_types_.data() + begin, out_offsets_[id + 1] - begin};
  }
  // Triggers the lazy reverse-CSR build on first use. Within each node's
  // bucket the sources are sorted ascending (the transpose is built by
  // walking the forward CSR in source order), which keeps the pull phase's
  // frontier-bitmap probes monotonic in memory.
  Neighbors In(NodeId id) const {
    EnsureReverse();
    size_t begin = reverse_->offsets[id];
    return {reverse_->edges.data() + begin,
            reverse_->sources.data() + begin,
            reverse_->types.data() + begin,
            reverse_->offsets[id + 1] - begin};
  }

  // Number of live (existing) edges in the packed arrays.
  size_t LiveEdgeCount() const { return out_edges_.size(); }
  // Live edges of one type (0 for types past the observed range). The
  // direction-optimizing kernel uses these to estimate a type filter's
  // selectivity: low-selectivity filters weaken the pull phase's
  // first-parent early exit, shifting the push/pull break-even point.
  uint64_t EdgeTypeCount(TypeId type) const {
    return type < type_counts_.size() ? type_counts_[type] : 0;
  }

  // Resident bytes of the packed arrays (forward + reverse-if-built).
  uint64_t ByteSize() const { return ForwardByteSize() + ReverseByteSize(); }
  uint64_t ForwardByteSize() const;
  // 0 until the reverse CSR has been materialized.
  uint64_t ReverseByteSize() const;
  bool ReverseBuilt() const {
    return reverse_->built.load(std::memory_order_acquire);
  }
  // Wall time the lazy transpose build took; 0.0 until built.
  double ReverseBuildMs() const {
    return ReverseBuilt() ? reverse_->build_ms : 0.0;
  }

 private:
  // Lazily-materialized transpose. Heap-allocated so CsrView stays movable
  // (std::once_flag is neither movable nor copyable).
  struct ReverseCsr {
    std::once_flag once;
    std::atomic<bool> built{false};
    std::vector<uint64_t> offsets;  // size = nodes + 1
    std::vector<EdgeId> edges;
    std::vector<NodeId> sources;
    std::vector<TypeId> types;
    double build_ms = 0.0;
  };

  CsrView() : reverse_(std::make_unique<ReverseCsr>()) {}

  void EnsureReverse() const;

  const GraphView* base_ = nullptr;
  std::vector<Edge> edges_;  // indexed by EdgeId (dead edges zeroed)
  std::vector<uint64_t> out_offsets_;  // size = nodes + 1
  std::vector<EdgeId> out_edges_;
  std::vector<NodeId> out_targets_;
  std::vector<TypeId> out_types_;
  std::vector<uint64_t> type_counts_;  // live edges per TypeId
  std::unique_ptr<ReverseCsr> reverse_;
};

// Thread-safe lazy CsrView cache: builds the packed adjacency on first use
// and hands out the same view afterwards, so repeated analytics queries
// (the executor's closure fast path, parallel slices) amortize the one-off
// build. Invalidate() after mutating the base graph; Get() with a
// different base also rebuilds.
class CsrCache {
 public:
  const CsrView& Get(const GraphView& base);
  void Invalidate();

  // Storage accounting for /debug/storagez: bytes of the cached view's
  // forward and reverse sections (0 when absent / not yet built) and the
  // reverse transpose's lazy build time.
  struct Stats {
    uint64_t forward_bytes = 0;
    uint64_t reverse_bytes = 0;
    double reverse_build_ms = 0.0;
  };
  Stats GetStats() const;

 private:
  mutable std::mutex mu_;
  std::unique_ptr<CsrView> view_;
  const GraphView* base_ = nullptr;
};

}  // namespace frappe::graph

#endif  // FRAPPE_GRAPH_CSR_VIEW_H_
