#ifndef FRAPPE_GRAPH_SNAPSHOT_MANAGER_H_
#define FRAPPE_GRAPH_SNAPSHOT_MANAGER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "graph/snapshot.h"

namespace frappe::graph {

// Manages a family of rotated snapshot generations for one logical path:
//
//   <path>      generation 0, the current snapshot
//   <path>.1    previous snapshot
//   <path>.2    the one before that, ... up to `retain` old generations
//
// Save() writes the new snapshot to a temp file (fsynced), shifts the
// existing generations (<path> -> <path>.1 -> <path>.2, dropping the
// oldest), and renames the temp file into place; one parent-directory
// fsync after the final rename makes the whole shuffle durable. A crash or
// injected fault anywhere in that sequence leaves every generation either
// complete-old or complete-new — never torn.
//
// Load() tries generation 0 first and falls back to the newest older
// generation that still verifies, so a corrupted current snapshot (e.g.
// torn by a crash mid-rotation on a pre-v2 file, or bit-rotted on disk)
// degrades to slightly stale data instead of an outage. Fallbacks bump the
// `snapshot.load.fallbacks` counter and are reported in
// `Loaded::generation` / `Loaded::generation_errors`.
struct SnapshotManagerOptions {
  // How many old generations to keep (<path>.1 .. <path>.retain).
  // 0 disables rotation: Save() just replaces <path> atomically.
  int retain = 2;
  SnapshotOptions snapshot;
};

class SnapshotManager {
 public:
  using Options = SnapshotManagerOptions;

  struct Loaded {
    LoadedSnapshot snapshot;
    std::string path;    // the file that actually loaded
    int generation = 0;  // 0 = current, 1 = <path>.1, ...
    // Why newer generations were skipped (empty when generation == 0).
    std::vector<std::string> generation_errors;
  };

  explicit SnapshotManager(std::string path, Options options = {});

  // The on-disk name of generation `g` (0 = `path()` itself).
  std::string GenerationPath(int generation) const;
  const std::string& path() const { return path_; }
  const Options& options() const { return options_; }

  // Serializes `view` and installs it as generation 0, rotating the
  // previous generations. Also removes stale `<path>.tmp.*` debris left by
  // crashed earlier saves. `catalog` (when non-null) is embedded as the
  // stats section, overriding any catalog in options().snapshot.
  Result<SnapshotSizes> Save(const GraphView& view,
                             const NameIndex* index = nullptr,
                             const StatsCatalog* catalog = nullptr);

  // Loads the newest generation that deserializes cleanly. Fails only when
  // every generation is missing or corrupt; the returned status then
  // carries one line per generation explaining why.
  Result<Loaded> Load() const;

 private:
  std::string path_;
  Options options_;
};

}  // namespace frappe::graph

#endif  // FRAPPE_GRAPH_SNAPSHOT_MANAGER_H_
