#include "graph/stats.h"

#include <algorithm>

namespace frappe::graph {

GraphMetrics ComputeMetrics(const GraphView& view) {
  GraphMetrics m;
  m.node_count = view.NodeCount();
  m.edge_count = view.EdgeCount();
  if (m.node_count > 0) {
    m.edge_node_ratio =
        static_cast<double>(m.edge_count) / static_cast<double>(m.node_count);
  }
  if (m.node_count > 1) {
    m.density = static_cast<double>(m.edge_count) /
                (static_cast<double>(m.node_count) *
                 static_cast<double>(m.node_count - 1));
  }
  return m;
}

std::map<uint64_t, uint64_t> DegreeDistribution(const GraphView& view) {
  std::map<uint64_t, uint64_t> hist;
  view.ForEachNode([&](NodeId id) { ++hist[view.Degree(id)]; });
  return hist;
}

std::vector<DegreeBin> LogBinHistogram(
    const std::map<uint64_t, uint64_t>& hist) {
  std::vector<DegreeBin> bins;
  for (const auto& [degree, count] : hist) {
    uint64_t lo = 1, hi = 1;
    if (degree > 0) {
      lo = 1;
      while (lo * 2 <= degree) lo *= 2;
      hi = lo * 2 - 1;
    } else {
      lo = hi = 0;
    }
    if (!bins.empty() && bins.back().min_degree == lo) {
      bins.back().node_count += count;
    } else {
      bins.push_back(DegreeBin{lo, hi, count});
    }
  }
  return bins;
}

std::vector<DegreeBin> LogBinnedDegrees(const GraphView& view) {
  return LogBinHistogram(DegreeDistribution(view));
}

std::vector<HubNode> TopDegreeNodes(const GraphView& view, size_t k,
                                    KeyId name_key) {
  std::vector<HubNode> all;
  view.ForEachNode([&](NodeId id) {
    all.push_back(HubNode{id, view.Degree(id), "", ""});
  });
  size_t take = std::min(k, all.size());
  std::partial_sort(all.begin(), all.begin() + take, all.end(),
                    [](const HubNode& a, const HubNode& b) {
                      if (a.degree != b.degree) return a.degree > b.degree;
                      return a.id < b.id;
                    });
  all.resize(take);
  for (HubNode& hub : all) {
    if (name_key != kInvalidKey) {
      hub.short_name = std::string(view.GetNodeString(hub.id, name_key));
    }
    hub.type_name = std::string(view.NodeTypeName(hub.id));
  }
  return all;
}

std::map<std::string, uint64_t> EdgeTypeHistogram(const GraphView& view) {
  std::map<std::string, uint64_t> hist;
  view.ForEachEdgeGlobal([&](EdgeId id) {
    ++hist[std::string(view.EdgeTypeName(id))];
  });
  return hist;
}

std::map<std::string, uint64_t> NodeTypeHistogram(const GraphView& view) {
  std::map<std::string, uint64_t> hist;
  view.ForEachNode(
      [&](NodeId id) { ++hist[std::string(view.NodeTypeName(id))]; });
  return hist;
}

}  // namespace frappe::graph
