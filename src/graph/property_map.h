#ifndef FRAPPE_GRAPH_PROPERTY_MAP_H_
#define FRAPPE_GRAPH_PROPERTY_MAP_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "graph/ids.h"
#include "graph/value.h"

namespace frappe::graph {

// Sorted flat map from property key to value, packed to 16 bytes/entry.
// Nodes and edges typically carry 2-12 properties (paper Table 2), so a
// sorted vector beats any node-per-entry container in both memory and
// lookup cost.
class PropertyMap {
 public:
  // Packed entry: key + value tag share one 8-byte word with padding, the
  // value payload fills the other.
  struct Entry {
    KeyId key;
    ValueType type;
    uint64_t payload;

    Value value() const { return Value::FromRaw(type, payload); }
  };

  PropertyMap() = default;

  // Sets `key` to `value`, replacing any existing entry. Setting a null
  // value removes the key (Cypher property semantics: null means absent).
  void Set(KeyId key, Value value) {
    auto it = LowerBound(key);
    if (value.is_null()) {
      if (it != entries_.end() && it->key == key) entries_.erase(it);
      return;
    }
    Entry e{key, value.type(), value.RawPayload()};
    if (it != entries_.end() && it->key == key) {
      *it = e;
    } else {
      entries_.insert(it, e);
    }
  }

  // Returns the value for `key`, or a null Value when absent.
  Value Get(KeyId key) const {
    auto it = LowerBound(key);
    if (it != entries_.end() && it->key == key) return it->value();
    return Value::Null();
  }

  bool Has(KeyId key) const {
    auto it = LowerBound(key);
    return it != entries_.end() && it->key == key;
  }

  void Erase(KeyId key) { Set(key, Value::Null()); }

  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  const std::vector<Entry>& entries() const { return entries_; }

  // Approximate in-memory footprint of the payload (for Table 4 storage
  // accounting). Interned string payloads are accounted by the StringPool.
  uint64_t byte_size() const { return entries_.size() * sizeof(Entry); }

  bool operator==(const PropertyMap& other) const {
    if (entries_.size() != other.entries_.size()) return false;
    for (size_t i = 0; i < entries_.size(); ++i) {
      if (entries_[i].key != other.entries_[i].key ||
          !(entries_[i].value() == other.entries_[i].value())) {
        return false;
      }
    }
    return true;
  }

 private:
  std::vector<Entry>::const_iterator LowerBound(KeyId key) const {
    return std::lower_bound(
        entries_.begin(), entries_.end(), key,
        [](const Entry& e, KeyId k) { return e.key < k; });
  }
  std::vector<Entry>::iterator LowerBound(KeyId key) {
    return std::lower_bound(
        entries_.begin(), entries_.end(), key,
        [](const Entry& e, KeyId k) { return e.key < k; });
  }

  std::vector<Entry> entries_;
};

}  // namespace frappe::graph

#endif  // FRAPPE_GRAPH_PROPERTY_MAP_H_
