#include "graph/graph_store.h"

#include <algorithm>

namespace frappe::graph {

namespace {
void EraseId(std::vector<EdgeId>* list, EdgeId id) {
  auto it = std::find(list->begin(), list->end(), id);
  if (it != list->end()) list->erase(it);
}
}  // namespace

void GraphStore::RemoveEdge(EdgeId id) {
  if (!EdgeExists(id)) return;
  EdgeRecord& rec = edges_[id];
  EraseId(&nodes_[rec.edge.src].out, id);
  EraseId(&nodes_[rec.edge.dst].in, id);
  rec.alive = false;
  rec.props = PropertyMap();
  --live_edges_;
}

void GraphStore::RemoveNode(NodeId id) {
  if (!NodeExists(id)) return;
  // Cascade: detach incident edges first. Copy the lists because RemoveEdge
  // mutates them.
  std::vector<EdgeId> incident = nodes_[id].out;
  incident.insert(incident.end(), nodes_[id].in.begin(), nodes_[id].in.end());
  for (EdgeId e : incident) RemoveEdge(e);
  NodeRecord& rec = nodes_[id];
  rec.alive = false;
  rec.props = PropertyMap();
  rec.out.clear();
  rec.out.shrink_to_fit();
  rec.in.clear();
  rec.in.shrink_to_fit();
  --live_nodes_;
}

void GraphStore::ForEachEdge(NodeId id, Direction dir,
                             const EdgeVisitor& fn) const {
  if (!NodeExists(id)) return;
  const NodeRecord& rec = nodes_[id];
  if (dir == Direction::kOut || dir == Direction::kBoth) {
    for (EdgeId e : rec.out) {
      if (!fn(e, edges_[e].edge.dst)) return;
    }
  }
  if (dir == Direction::kIn || dir == Direction::kBoth) {
    for (EdgeId e : rec.in) {
      // Report self-loops once (already visited in the out pass).
      if (dir == Direction::kBoth && edges_[e].edge.src == id) continue;
      if (!fn(e, edges_[e].edge.src)) return;
    }
  }
}

GraphStore::MemoryBreakdown GraphStore::EstimateMemory() const {
  MemoryBreakdown out;
  for (const NodeRecord& n : nodes_) {
    out.nodes += sizeof(NodeRecord) +
                 (n.out.capacity() + n.in.capacity()) * sizeof(EdgeId);
    out.properties += n.props.byte_size();
  }
  for (const EdgeRecord& e : edges_) {
    out.relationships += sizeof(EdgeRecord);
    out.properties += e.props.byte_size();
  }
  out.properties += strings_.payload_bytes();
  return out;
}

}  // namespace frappe::graph
