#include "graph/snapshot.h"

#include <cstdint>
#include <cstring>
#include <fstream>

namespace frappe::graph {

namespace {

constexpr char kMagic[8] = {'F', 'R', 'A', 'P', 'P', 'E', 'D', 'B'};
constexpr uint32_t kVersion = 1;

enum SectionId : uint32_t {
  kSectionSchema = 1,
  kSectionStrings = 2,
  kSectionNodes = 3,
  kSectionNodeProps = 4,
  kSectionEdges = 5,
  kSectionEdgeProps = 6,
  kSectionIndex = 7,
};

// Sentinel type id marking a tombstoned node/edge record.
constexpr uint16_t kDeadType = 0xFFFF;

class Writer {
 public:
  explicit Writer(std::string* out) : out_(out) {}

  void U8(uint8_t v) { out_->push_back(static_cast<char>(v)); }
  void U16(uint16_t v) { Raw(&v, sizeof(v)); }
  void U32(uint32_t v) { Raw(&v, sizeof(v)); }
  void U64(uint64_t v) { Raw(&v, sizeof(v)); }
  void Str(std::string_view s) {
    U32(static_cast<uint32_t>(s.size()));
    out_->append(s.data(), s.size());
  }
  void Raw(const void* data, size_t size) {
    out_->append(static_cast<const char*>(data), size);
  }
  size_t offset() const { return out_->size(); }

 private:
  std::string* out_;
};

class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  bool U8(uint8_t* v) { return Raw(v, sizeof(*v)); }
  bool U16(uint16_t* v) { return Raw(v, sizeof(*v)); }
  bool U32(uint32_t* v) { return Raw(v, sizeof(*v)); }
  bool U64(uint64_t* v) { return Raw(v, sizeof(*v)); }
  bool Str(std::string* s) {
    uint32_t len;
    if (!U32(&len) || pos_ + len > data_.size()) return false;
    s->assign(data_.data() + pos_, len);
    pos_ += len;
    return true;
  }
  bool Raw(void* out, size_t size) {
    if (pos_ + size > data_.size()) return false;
    std::memcpy(out, data_.data() + pos_, size);
    pos_ += size;
    return true;
  }
  bool AtEnd() const { return pos_ == data_.size(); }
  size_t pos() const { return pos_; }
  void Seek(size_t pos) { pos_ = pos; }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

void WriteRegistry(Writer* w, const NameRegistry& reg) {
  w->U32(static_cast<uint32_t>(reg.size()));
  for (uint16_t i = 0; i < reg.size(); ++i) w->Str(reg.Name(i));
}

bool ReadRegistryInto(Reader* r,
                      const std::function<uint16_t(std::string_view)>& intern) {
  uint32_t count;
  if (!r->U32(&count)) return false;
  for (uint32_t i = 0; i < count; ++i) {
    std::string name;
    if (!r->Str(&name)) return false;
    intern(name);
  }
  return true;
}

void WriteProps(Writer* w, const PropertyMap& props) {
  w->U32(static_cast<uint32_t>(props.size()));
  for (const PropertyMap::Entry& e : props.entries()) {
    w->U16(e.key);
    w->U8(static_cast<uint8_t>(e.type));
    w->U64(e.payload);
  }
}

bool ReadProps(Reader* r, PropertyMap* props) {
  uint32_t count;
  if (!r->U32(&count)) return false;
  for (uint32_t i = 0; i < count; ++i) {
    uint16_t key;
    uint8_t type;
    uint64_t payload;
    if (!r->U16(&key) || !r->U8(&type) || !r->U64(&payload)) return false;
    props->Set(key, Value::FromRaw(static_cast<ValueType>(type), payload));
  }
  return true;
}

}  // namespace

Result<SnapshotSizes> SerializeSnapshot(const GraphView& view,
                                        std::string* out,
                                        const NameIndex* index) {
  SnapshotSizes sizes;
  Writer w(out);
  w.Raw(kMagic, sizeof(kMagic));
  w.U32(kVersion);
  w.U32(index != nullptr ? 7u : 6u);  // section count
  sizes.header = w.offset();

  // Schema: node types, edge types, keys.
  {
    size_t start = w.offset();
    w.U32(kSectionSchema);
    WriteRegistry(&w, view.node_types());
    WriteRegistry(&w, view.edge_types());
    WriteRegistry(&w, view.keys());
    sizes.schema = w.offset() - start;
  }
  // Strings, ordered by id so refs survive a round trip.
  {
    size_t start = w.offset();
    w.U32(kSectionStrings);
    const StringPool& pool = view.strings();
    w.U32(static_cast<uint32_t>(pool.size()));
    for (uint32_t i = 0; i < pool.size(); ++i) {
      w.Str(pool.Resolve(StringRef{i}));
    }
    sizes.strings = w.offset() - start;
  }
  // Node records (type per id slot; tombstones keep the id space intact).
  {
    size_t start = w.offset();
    w.U32(kSectionNodes);
    w.U32(view.NodeIdUpperBound());
    for (NodeId id = 0; id < view.NodeIdUpperBound(); ++id) {
      w.U16(view.NodeExists(id) ? view.NodeType(id) : kDeadType);
    }
    sizes.nodes = w.offset() - start;
  }
  // Node properties (live nodes only; id-ordered).
  {
    size_t start = w.offset();
    w.U32(kSectionNodeProps);
    for (NodeId id = 0; id < view.NodeIdUpperBound(); ++id) {
      if (view.NodeExists(id)) WriteProps(&w, view.NodeProperties(id));
    }
    sizes.node_properties = w.offset() - start;
  }
  // Edge records.
  {
    size_t start = w.offset();
    w.U32(kSectionEdges);
    w.U32(view.EdgeIdUpperBound());
    for (EdgeId id = 0; id < view.EdgeIdUpperBound(); ++id) {
      if (view.EdgeExists(id)) {
        Edge e = view.GetEdge(id);
        w.U16(e.type);
        w.U32(e.src);
        w.U32(e.dst);
      } else {
        w.U16(kDeadType);
      }
    }
    sizes.relationships = w.offset() - start;
  }
  // Edge properties.
  {
    size_t start = w.offset();
    w.U32(kSectionEdgeProps);
    for (EdgeId id = 0; id < view.EdgeIdUpperBound(); ++id) {
      if (view.EdgeExists(id)) WriteProps(&w, view.EdgeProperties(id));
    }
    sizes.edge_properties = w.offset() - start;
  }
  // Optional embedded name index.
  if (index != nullptr) {
    size_t start = w.offset();
    w.U32(kSectionIndex);
    std::string blob;
    index->Serialize(&blob);
    w.Str(blob);
    sizes.indexes = w.offset() - start;
  }
  return sizes;
}

Result<SnapshotSizes> SaveSnapshot(const GraphView& view,
                                   const std::string& path,
                                   const NameIndex* index) {
  std::string buffer;
  FRAPPE_ASSIGN_OR_RETURN(SnapshotSizes sizes,
                          SerializeSnapshot(view, &buffer, index));
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) return Status::Internal("cannot open for write: " + path);
  file.write(buffer.data(), static_cast<std::streamsize>(buffer.size()));
  if (!file) return Status::Internal("write failed: " + path);
  return sizes;
}

Result<LoadedSnapshot> DeserializeSnapshot(std::string_view data) {
  Reader r(data);
  char magic[8];
  uint32_t version, section_count;
  if (!r.Raw(magic, sizeof(magic)) ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("snapshot: bad magic");
  }
  if (!r.U32(&version) || version != kVersion) {
    return Status::Corruption("snapshot: unsupported version");
  }
  if (!r.U32(&section_count)) return Status::Corruption("snapshot: truncated");

  LoadedSnapshot loaded;
  loaded.sizes.header = r.pos();
  loaded.store = std::make_unique<GraphStore>();
  GraphStore& store = *loaded.store;

  std::vector<PropertyMap> node_props;
  std::vector<PropertyMap> edge_props;
  std::vector<NodeId> live_nodes;
  std::vector<EdgeId> live_edges;

  for (uint32_t s = 0; s < section_count; ++s) {
    uint32_t section;
    size_t start = r.pos();
    if (!r.U32(&section)) return Status::Corruption("snapshot: truncated");
    switch (section) {
      case kSectionSchema: {
        bool ok =
            ReadRegistryInto(&r, [&](std::string_view n) {
              return store.InternNodeType(n);
            }) &&
            ReadRegistryInto(&r, [&](std::string_view n) {
              return store.InternEdgeType(n);
            }) &&
            ReadRegistryInto(
                &r, [&](std::string_view n) { return store.InternKey(n); });
        if (!ok) return Status::Corruption("snapshot: bad schema section");
        loaded.sizes.schema = r.pos() - start;
        break;
      }
      case kSectionStrings: {
        uint32_t count;
        if (!r.U32(&count)) return Status::Corruption("snapshot: strings");
        for (uint32_t i = 0; i < count; ++i) {
          std::string str;
          if (!r.Str(&str)) return Status::Corruption("snapshot: strings");
          StringRef ref = store.InternString(str);
          if (ref.id != i) {
            return Status::Corruption("snapshot: duplicate interned string");
          }
        }
        loaded.sizes.strings = r.pos() - start;
        break;
      }
      case kSectionNodes: {
        uint32_t upper;
        if (!r.U32(&upper)) return Status::Corruption("snapshot: nodes");
        for (uint32_t i = 0; i < upper; ++i) {
          uint16_t type;
          if (!r.U16(&type)) return Status::Corruption("snapshot: nodes");
          if (type == kDeadType) {
            store.AddDeadNode();
          } else {
            live_nodes.push_back(store.AddNode(static_cast<TypeId>(type)));
          }
        }
        loaded.sizes.nodes = r.pos() - start;
        break;
      }
      case kSectionNodeProps: {
        for (NodeId id : live_nodes) {
          PropertyMap props;
          if (!ReadProps(&r, &props)) {
            return Status::Corruption("snapshot: node props");
          }
          store.SetNodeProperties(id, std::move(props));
        }
        loaded.sizes.node_properties = r.pos() - start;
        break;
      }
      case kSectionEdges: {
        uint32_t upper;
        if (!r.U32(&upper)) return Status::Corruption("snapshot: edges");
        for (uint32_t i = 0; i < upper; ++i) {
          uint16_t type;
          if (!r.U16(&type)) return Status::Corruption("snapshot: edges");
          if (type == kDeadType) {
            store.AddDeadEdge();
            continue;
          }
          uint32_t src, dst;
          if (!r.U32(&src) || !r.U32(&dst)) {
            return Status::Corruption("snapshot: edges");
          }
          EdgeId e = store.AddEdge(src, dst, static_cast<TypeId>(type));
          if (e == kInvalidEdge) {
            return Status::Corruption("snapshot: edge references dead node");
          }
          live_edges.push_back(e);
        }
        loaded.sizes.relationships = r.pos() - start;
        break;
      }
      case kSectionEdgeProps: {
        for (EdgeId id : live_edges) {
          PropertyMap props;
          if (!ReadProps(&r, &props)) {
            return Status::Corruption("snapshot: edge props");
          }
          store.SetEdgeProperties(id, std::move(props));
        }
        loaded.sizes.edge_properties = r.pos() - start;
        break;
      }
      case kSectionIndex: {
        std::string blob;
        if (!r.Str(&blob)) return Status::Corruption("snapshot: index");
        FRAPPE_ASSIGN_OR_RETURN(NameIndex idx, NameIndex::Deserialize(blob));
        loaded.index = std::move(idx);
        loaded.sizes.indexes = r.pos() - start;
        break;
      }
      default:
        return Status::Corruption("snapshot: unknown section " +
                                  std::to_string(section));
    }
  }
  if (!r.AtEnd()) return Status::Corruption("snapshot: trailing bytes");
  return loaded;
}

Result<LoadedSnapshot> LoadSnapshot(const std::string& path) {
  std::ifstream file(path, std::ios::binary | std::ios::ate);
  if (!file) return Status::NotFound("cannot open snapshot: " + path);
  std::streamsize size = file.tellg();
  file.seekg(0);
  std::string data(static_cast<size_t>(size), '\0');
  if (!file.read(data.data(), size)) {
    return Status::Internal("read failed: " + path);
  }
  return DeserializeSnapshot(data);
}

}  // namespace frappe::graph
