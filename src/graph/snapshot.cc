#include "graph/snapshot.h"

#include <array>
#include <chrono>
#include <cstdint>
#include <cstring>

#include "common/crc32c.h"
#include "common/file_io.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace frappe::graph {

namespace {

constexpr char kMagic[8] = {'F', 'R', 'A', 'P', 'P', 'E', 'D', 'B'};
constexpr uint32_t kVersionV1 = 1;
constexpr uint32_t kVersion = 2;

// v2 header: magic + version + flags + section count.
constexpr size_t kV2HeaderSize = sizeof(kMagic) + 3 * sizeof(uint32_t);
// v2 trailer: u64 file size + u32 crc32c(header ++ size) + u32 magic.
constexpr size_t kV2TrailerSize = sizeof(uint64_t) + 2 * sizeof(uint32_t);
constexpr uint32_t kTrailerMagic = 0x54505246;  // "FRPT" little-endian
constexpr uint32_t kFlagChecksummed = 1u << 0;

// Defense in depth against absurd counts in corrupted headers (the header
// CRC should catch flips first, but only v2 has one).
constexpr uint32_t kMaxSections = 1024;
constexpr uint32_t kMaxIndexFields = 4096;

enum SectionId : uint32_t {
  kSectionSchema = 1,
  kSectionStrings = 2,
  kSectionNodes = 3,
  kSectionNodeProps = 4,
  kSectionEdges = 5,
  kSectionEdgeProps = 6,
  kSectionIndex = 7,
  kSectionStats = 8,
};

const char* SectionName(uint32_t id) {
  switch (id) {
    case kSectionSchema: return "schema";
    case kSectionStrings: return "strings";
    case kSectionNodes: return "nodes";
    case kSectionNodeProps: return "node_props";
    case kSectionEdges: return "edges";
    case kSectionEdgeProps: return "edge_props";
    case kSectionIndex: return "index";
    case kSectionStats: return "stats";
    default: return "unknown";
  }
}

// Sentinel type id marking a tombstoned node/edge record.
constexpr uint16_t kDeadType = 0xFFFF;

class Writer {
 public:
  explicit Writer(std::string* out) : out_(out) {}

  void U8(uint8_t v) { out_->push_back(static_cast<char>(v)); }
  void U16(uint16_t v) { Raw(&v, sizeof(v)); }
  void U32(uint32_t v) { Raw(&v, sizeof(v)); }
  void U64(uint64_t v) { Raw(&v, sizeof(v)); }
  void Str(std::string_view s) {
    U32(static_cast<uint32_t>(s.size()));
    out_->append(s.data(), s.size());
  }
  void Raw(const void* data, size_t size) {
    out_->append(static_cast<const char*>(data), size);
  }
  size_t offset() const { return out_->size(); }

 private:
  std::string* out_;
};

// Bounds-checked reader over one buffer. `base` is the buffer's absolute
// offset within the snapshot file, so error messages can report file
// offsets even when reading a v2 section payload.
class Reader {
 public:
  explicit Reader(std::string_view data, size_t base = 0)
      : data_(data), base_(base) {}

  bool U8(uint8_t* v) { return Raw(v, sizeof(*v)); }
  bool U16(uint16_t* v) { return Raw(v, sizeof(*v)); }
  bool U32(uint32_t* v) { return Raw(v, sizeof(*v)); }
  bool U64(uint64_t* v) { return Raw(v, sizeof(*v)); }
  bool Str(std::string* s) {
    uint32_t len;
    if (!U32(&len) || len > data_.size() - pos_) return false;
    s->assign(data_.data() + pos_, len);
    pos_ += len;
    return true;
  }
  bool Raw(void* out, size_t size) {
    if (size > data_.size() - pos_) return false;
    std::memcpy(out, data_.data() + pos_, size);
    pos_ += size;
    return true;
  }
  bool AtEnd() const { return pos_ == data_.size(); }
  size_t pos() const { return pos_; }
  size_t AbsPos() const { return base_ + pos_; }
  void Seek(size_t pos) { pos_ = pos; }
  std::string_view data() const { return data_; }

 private:
  std::string_view data_;
  size_t base_ = 0;
  size_t pos_ = 0;
};

Status CorruptAt(const char* section, size_t abs_offset, std::string what) {
  return Status::Corruption("snapshot: section '" + std::string(section) +
                            "' " + std::move(what) + " at offset " +
                            std::to_string(abs_offset));
}

// ---------------------------------------------------------------------------
// Section payload writers (shared framing added by the caller).
// ---------------------------------------------------------------------------

void WriteRegistry(Writer* w, const NameRegistry& reg) {
  w->U32(static_cast<uint32_t>(reg.size()));
  for (uint16_t i = 0; i < reg.size(); ++i) w->Str(reg.Name(i));
}

void WriteProps(Writer* w, const PropertyMap& props) {
  w->U32(static_cast<uint32_t>(props.size()));
  for (const PropertyMap::Entry& e : props.entries()) {
    w->U16(e.key);
    w->U8(static_cast<uint8_t>(e.type));
    w->U64(e.payload);
  }
}

// v2 index payload: the field specs (with their own CRC, so a corrupted
// postings blob can still be rebuilt from node records) followed by the
// postings serialization.
void WriteIndexPayload(std::string* payload, const NameIndex& index) {
  Writer pw(payload);
  const std::vector<NameIndex::FieldSpec>& fields = index.fields();
  pw.U32(static_cast<uint32_t>(fields.size()));
  for (const NameIndex::FieldSpec& spec : fields) {
    pw.Str(spec.name);
    pw.U32(spec.key);
    pw.U8(spec.is_type_field ? 1 : 0);
  }
  pw.U32(common::Crc32c(payload->data(), payload->size()));
  std::string postings;
  index.Serialize(&postings);
  pw.Str(postings);
}

// ---------------------------------------------------------------------------
// Section payload parsers, shared between the v1 stream and v2 framed
// loaders. Everything is bounds-checked; corrupted values (unknown value
// types, dangling string refs, out-of-range type/key ids) are rejected
// rather than stored.
// ---------------------------------------------------------------------------

struct ParseState {
  GraphStore* store = nullptr;
  std::vector<NodeId> live_nodes;
  std::vector<EdgeId> live_edges;
};

bool ReadRegistryInto(Reader* r,
                      const std::function<uint16_t(std::string_view)>& intern) {
  uint32_t count;
  if (!r->U32(&count)) return false;
  for (uint32_t i = 0; i < count; ++i) {
    std::string name;
    if (!r->Str(&name)) return false;
    intern(name);
  }
  return true;
}

Status ParseSchema(Reader* r, ParseState* st) {
  GraphStore& store = *st->store;
  bool ok = ReadRegistryInto(r, [&](std::string_view n) {
              return store.InternNodeType(n);
            }) &&
            ReadRegistryInto(r, [&](std::string_view n) {
              return store.InternEdgeType(n);
            }) &&
            ReadRegistryInto(
                r, [&](std::string_view n) { return store.InternKey(n); });
  if (!ok) return CorruptAt("schema", r->AbsPos(), "truncated");
  return Status::OK();
}

Status ParseStrings(Reader* r, ParseState* st) {
  uint32_t count;
  if (!r->U32(&count)) return CorruptAt("strings", r->AbsPos(), "truncated");
  for (uint32_t i = 0; i < count; ++i) {
    std::string str;
    if (!r->Str(&str)) return CorruptAt("strings", r->AbsPos(), "truncated");
    StringRef ref = st->store->InternString(str);
    if (ref.id != i) {
      return CorruptAt("strings", r->AbsPos(),
                       "duplicate interned string #" + std::to_string(i));
    }
  }
  return Status::OK();
}

Status ParseNodes(Reader* r, ParseState* st) {
  GraphStore& store = *st->store;
  uint32_t upper;
  if (!r->U32(&upper)) return CorruptAt("nodes", r->AbsPos(), "truncated");
  uint32_t type_count = static_cast<uint32_t>(store.node_types().size());
  for (uint32_t i = 0; i < upper; ++i) {
    uint16_t type;
    if (!r->U16(&type)) return CorruptAt("nodes", r->AbsPos(), "truncated");
    if (type == kDeadType) {
      store.AddDeadNode();
    } else if (type >= type_count) {
      return CorruptAt("nodes", r->AbsPos(),
                       "node type " + std::to_string(type) +
                           " outside registry (" +
                           std::to_string(type_count) + " types)");
    } else {
      st->live_nodes.push_back(store.AddNode(static_cast<TypeId>(type)));
    }
  }
  return Status::OK();
}

Status ReadProps(Reader* r, const char* section, const ParseState& st,
                 PropertyMap* props) {
  uint32_t count;
  if (!r->U32(&count)) return CorruptAt(section, r->AbsPos(), "truncated");
  uint32_t key_count = static_cast<uint32_t>(st.store->keys().size());
  uint32_t string_count = static_cast<uint32_t>(st.store->strings().size());
  for (uint32_t i = 0; i < count; ++i) {
    uint16_t key;
    uint8_t type;
    uint64_t payload;
    if (!r->U16(&key) || !r->U8(&type) || !r->U64(&payload)) {
      return CorruptAt(section, r->AbsPos(), "truncated property entry");
    }
    if (key >= key_count) {
      return CorruptAt(section, r->AbsPos(),
                       "property key " + std::to_string(key) +
                           " outside registry");
    }
    if (type > static_cast<uint8_t>(ValueType::kString)) {
      return CorruptAt(section, r->AbsPos(),
                       "unknown value type " + std::to_string(type));
    }
    if (static_cast<ValueType>(type) == ValueType::kString &&
        static_cast<uint32_t>(payload) >= string_count) {
      return CorruptAt(section, r->AbsPos(),
                       "dangling string ref " +
                           std::to_string(static_cast<uint32_t>(payload)));
    }
    props->Set(key, Value::FromRaw(static_cast<ValueType>(type), payload));
  }
  return Status::OK();
}

Status ParseNodeProps(Reader* r, ParseState* st) {
  for (NodeId id : st->live_nodes) {
    PropertyMap props;
    FRAPPE_RETURN_IF_ERROR(ReadProps(r, "node_props", *st, &props));
    st->store->SetNodeProperties(id, std::move(props));
  }
  return Status::OK();
}

Status ParseEdges(Reader* r, ParseState* st) {
  GraphStore& store = *st->store;
  uint32_t upper;
  if (!r->U32(&upper)) return CorruptAt("edges", r->AbsPos(), "truncated");
  uint32_t type_count = static_cast<uint32_t>(store.edge_types().size());
  for (uint32_t i = 0; i < upper; ++i) {
    uint16_t type;
    if (!r->U16(&type)) return CorruptAt("edges", r->AbsPos(), "truncated");
    if (type == kDeadType) {
      store.AddDeadEdge();
      continue;
    }
    if (type >= type_count) {
      return CorruptAt("edges", r->AbsPos(),
                       "edge type " + std::to_string(type) +
                           " outside registry");
    }
    uint32_t src, dst;
    if (!r->U32(&src) || !r->U32(&dst)) {
      return CorruptAt("edges", r->AbsPos(), "truncated");
    }
    EdgeId e = store.AddEdge(src, dst, static_cast<TypeId>(type));
    if (e == kInvalidEdge) {
      return CorruptAt("edges", r->AbsPos(),
                       "edge #" + std::to_string(i) +
                           " references missing node");
    }
    st->live_edges.push_back(e);
  }
  return Status::OK();
}

Status ParseEdgeProps(Reader* r, ParseState* st) {
  for (EdgeId id : st->live_edges) {
    PropertyMap props;
    FRAPPE_RETURN_IF_ERROR(ReadProps(r, "edge_props", *st, &props));
    st->store->SetEdgeProperties(id, std::move(props));
  }
  return Status::OK();
}

// Dispatches one section body (sans framing) to its parser.
Status ParseSectionBody(uint32_t section, Reader* r, ParseState* st) {
  switch (section) {
    case kSectionSchema: return ParseSchema(r, st);
    case kSectionStrings: return ParseStrings(r, st);
    case kSectionNodes: return ParseNodes(r, st);
    case kSectionNodeProps: return ParseNodeProps(r, st);
    case kSectionEdges: return ParseEdges(r, st);
    case kSectionEdgeProps: return ParseEdgeProps(r, st);
    default:
      return Status::Corruption("snapshot: unknown section " +
                                std::to_string(section) + " at offset " +
                                std::to_string(r->AbsPos()));
  }
}

// The v2 index section degrades instead of failing the load: if the
// payload survived its checksum, deserialize it; otherwise (or if
// deserialization fails with checksums off) rebuild from node records when
// the field specs are still intact, or drop the index with a warning.
void ParseIndexSectionV2(std::string_view payload, size_t abs_base,
                         bool payload_verified, const ParseState& st,
                         LoadedSnapshot* loaded) {
  Reader r(payload, abs_base);
  std::vector<NameIndex::FieldSpec> specs;
  uint32_t spec_count = 0;
  bool specs_ok = r.U32(&spec_count) && spec_count <= kMaxIndexFields;
  for (uint32_t i = 0; specs_ok && i < spec_count; ++i) {
    NameIndex::FieldSpec spec;
    uint32_t key = 0;
    uint8_t is_type = 0;
    specs_ok = r.Str(&spec.name) && r.U32(&key) && r.U8(&is_type);
    if (specs_ok) {
      spec.key = static_cast<KeyId>(key);
      spec.is_type_field = is_type != 0;
      specs.push_back(std::move(spec));
    }
  }
  size_t specs_end = r.pos();
  uint32_t stored_specs_crc = 0;
  specs_ok = specs_ok && r.U32(&stored_specs_crc) &&
             common::Crc32c(payload.data(), specs_end) == stored_specs_crc;

  if (payload_verified) {
    // A checksum-verified payload should always deserialize; with checksums
    // off (payload_verified is vacuously true) structural corruption can
    // still reach this point and falls through to the rebuild below. A
    // failed checksum must NOT reach the embedded postings: a content flip
    // inside a term can survive structural validation.
    size_t postings_pos = r.pos();
    std::string blob;
    if (r.Str(&blob) && r.AtEnd()) {
      auto idx = NameIndex::Deserialize(blob);
      if (idx.ok()) {
        loaded->index = std::move(*idx);
        return;
      }
    }
    r.Seek(postings_pos);
  }
  if (specs_ok) {
    loaded->index = NameIndex::Build(*st.store, std::move(specs));
    loaded->warnings.push_back(
        "snapshot: index section failed verification at offset " +
        std::to_string(abs_base) + "; rebuilt name index from node records");
    obs::Registry::Global().GetCounter("snapshot.load.index_rebuilds").Add();
  } else {
    loaded->warnings.push_back(
        "snapshot: index section failed verification at offset " +
        std::to_string(abs_base) +
        "; dropped embedded name index (field specs unrecoverable)");
    obs::Registry::Global().GetCounter("snapshot.load.index_drops").Add();
  }
  obs::LogWarn("snapshot", loaded->warnings.back());
}

// The stats section is advisory: a catalog that fails its checksum or its
// own structural validation is dropped (with a warning) rather than
// failing the load — ANALYZE rebuilds it on demand.
void ParseStatsSectionV2(std::string_view payload, size_t abs_base,
                         bool payload_verified, LoadedSnapshot* loaded) {
  if (payload_verified) {
    auto catalog = StatsCatalog::Deserialize(payload);
    if (catalog.ok()) {
      loaded->catalog = std::move(*catalog);
      return;
    }
  }
  loaded->warnings.push_back(
      "snapshot: stats section failed verification at offset " +
      std::to_string(abs_base) +
      "; dropped stats catalog (run ANALYZE to rebuild)");
  obs::Registry::Global().GetCounter("snapshot.load.stats_drops").Add();
  obs::LogWarn("snapshot", loaded->warnings.back());
}

uint64_t SnapshotSizes::* SizeFieldFor(uint32_t section) {
  switch (section) {
    case kSectionSchema: return &SnapshotSizes::schema;
    case kSectionStrings: return &SnapshotSizes::strings;
    case kSectionNodes: return &SnapshotSizes::nodes;
    case kSectionNodeProps: return &SnapshotSizes::node_properties;
    case kSectionEdges: return &SnapshotSizes::relationships;
    case kSectionEdgeProps: return &SnapshotSizes::edge_properties;
    case kSectionIndex: return &SnapshotSizes::indexes;
    case kSectionStats: return &SnapshotSizes::stats;
    default: return nullptr;
  }
}

// ---------------------------------------------------------------------------
// v1 loader (no checksums, no trailer): kept for old snapshot files.
// ---------------------------------------------------------------------------

Result<LoadedSnapshot> DeserializeV1(std::string_view data, Reader r) {
  uint32_t section_count;
  if (!r.U32(&section_count) || section_count > kMaxSections) {
    return Status::Corruption("snapshot: truncated header");
  }

  LoadedSnapshot loaded;
  loaded.format_version = kVersionV1;
  loaded.sizes.header = r.pos();
  loaded.store = std::make_unique<GraphStore>();
  ParseState st;
  st.store = loaded.store.get();

  for (uint32_t s = 0; s < section_count; ++s) {
    uint32_t section;
    size_t start = r.pos();
    if (!r.U32(&section)) {
      return Status::Corruption("snapshot: truncated at offset " +
                                std::to_string(r.AbsPos()));
    }
    if (section == kSectionIndex) {
      std::string blob;
      if (!r.Str(&blob)) return CorruptAt("index", r.AbsPos(), "truncated");
      FRAPPE_ASSIGN_OR_RETURN(NameIndex idx, NameIndex::Deserialize(blob));
      loaded.index = std::move(idx);
    } else {
      FRAPPE_RETURN_IF_ERROR(ParseSectionBody(section, &r, &st));
    }
    if (auto field = SizeFieldFor(section)) {
      loaded.sizes.*field = r.pos() - start;
    }
  }
  if (!r.AtEnd()) {
    return Status::Corruption("snapshot: trailing bytes at offset " +
                              std::to_string(r.AbsPos()) + " (file has " +
                              std::to_string(data.size()) + " bytes)");
  }
  return loaded;
}

// ---------------------------------------------------------------------------
// v2 loader: verifies the trailer, the header CRC, and every section CRC
// before (or while) parsing.
// ---------------------------------------------------------------------------

Result<LoadedSnapshot> DeserializeV2(std::string_view data) {
  using Clock = std::chrono::steady_clock;
  if (data.size() < kV2HeaderSize + kV2TrailerSize) {
    return Status::Corruption("snapshot: truncated (" +
                              std::to_string(data.size()) + " bytes)");
  }

  // Trailer first: catches truncation/extension before any parsing.
  const char* trailer = data.data() + data.size() - kV2TrailerSize;
  uint64_t stated_size;
  uint32_t trailer_crc, trailer_magic;
  std::memcpy(&stated_size, trailer, sizeof(stated_size));
  std::memcpy(&trailer_crc, trailer + 8, sizeof(trailer_crc));
  std::memcpy(&trailer_magic, trailer + 12, sizeof(trailer_magic));
  if (trailer_magic != kTrailerMagic) {
    return Status::Corruption(
        "snapshot: missing trailer magic (truncated or corrupted tail)");
  }
  if (stated_size != data.size()) {
    return Status::Corruption("snapshot: trailer length mismatch (trailer "
                              "says " + std::to_string(stated_size) +
                              ", file has " + std::to_string(data.size()) +
                              " bytes)");
  }
  Clock::time_point t_header = Clock::now();
  uint32_t header_crc = common::Crc32cExtend(
      common::Crc32c(data.data(), kV2HeaderSize), trailer,
      sizeof(stated_size));
  uint64_t verify_us = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                            t_header)
          .count());
  if (header_crc != trailer_crc) {
    return Status::Corruption("snapshot: header checksum mismatch (stored " +
                              std::to_string(trailer_crc) + ", computed " +
                              std::to_string(header_crc) + ")");
  }

  Reader r(data);
  r.Seek(sizeof(kMagic) + sizeof(uint32_t));  // past magic + version
  uint32_t flags, section_count;
  r.U32(&flags);
  r.U32(&section_count);
  if (section_count > kMaxSections) {
    return Status::Corruption("snapshot: implausible section count " +
                              std::to_string(section_count));
  }
  const bool checksummed = (flags & kFlagChecksummed) != 0;

  LoadedSnapshot loaded;
  loaded.format_version = kVersion;
  loaded.sizes.header = kV2HeaderSize;
  loaded.sizes.trailer = kV2TrailerSize;
  loaded.store = std::make_unique<GraphStore>();
  ParseState st;
  st.store = loaded.store.get();

  const size_t body_end = data.size() - kV2TrailerSize;
  constexpr size_t kFrameOverhead = 2 * sizeof(uint32_t) + sizeof(uint64_t);
  std::array<bool, 9> seen{};
  uint32_t prev_section = 0;

  for (uint32_t s = 0; s < section_count; ++s) {
    size_t frame_start = r.pos();
    uint32_t section;
    uint64_t payload_len;
    if (frame_start + kFrameOverhead > body_end || !r.U32(&section) ||
        !r.U64(&payload_len)) {
      return Status::Corruption("snapshot: truncated section header at "
                                "offset " + std::to_string(frame_start));
    }
    const char* name = SectionName(section);
    if (section <= prev_section || section >= seen.size()) {
      return Status::Corruption(
          "snapshot: section '" + std::string(name) + "' out of order at "
          "offset " + std::to_string(frame_start));
    }
    prev_section = section;
    seen[section] = true;
    if (payload_len > body_end - r.pos() ||
        body_end - r.pos() - payload_len < sizeof(uint32_t)) {
      return CorruptAt(name, frame_start,
                       "length " + std::to_string(payload_len) +
                           " overruns file");
    }
    size_t payload_off = r.pos();
    std::string_view payload = data.substr(payload_off, payload_len);
    r.Seek(payload_off + payload_len);
    uint32_t stored_crc;
    r.U32(&stored_crc);

    bool payload_verified = !checksummed;
    if (checksummed) {
      Clock::time_point t0 = Clock::now();
      uint32_t actual = common::Crc32c(payload.data(), payload.size());
      verify_us += static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              Clock::now() - t0)
              .count());
      payload_verified = actual == stored_crc;
      if (!payload_verified && section != kSectionIndex &&
          section != kSectionStats) {
        return CorruptAt(name, payload_off,
                         "checksum mismatch (stored " +
                             std::to_string(stored_crc) + ", computed " +
                             std::to_string(actual) + ")");
      }
    }

    if (section == kSectionIndex) {
      ParseIndexSectionV2(payload, payload_off, payload_verified, st,
                          &loaded);
    } else if (section == kSectionStats) {
      ParseStatsSectionV2(payload, payload_off, payload_verified, &loaded);
    } else {
      Reader sub(payload, payload_off);
      FRAPPE_RETURN_IF_ERROR(ParseSectionBody(section, &sub, &st));
      if (!sub.AtEnd()) {
        return CorruptAt(name, sub.AbsPos(),
                         std::to_string(payload.size() - sub.pos()) +
                             " trailing bytes");
      }
    }
    if (auto field = SizeFieldFor(section)) {
      loaded.sizes.*field = kFrameOverhead + payload_len;
    }
  }
  if (r.pos() != body_end) {
    return Status::Corruption("snapshot: trailing bytes after last section "
                              "at offset " + std::to_string(r.pos()));
  }
  for (uint32_t id = kSectionSchema; id <= kSectionEdgeProps; ++id) {
    if (!seen[id]) {
      return Status::Corruption("snapshot: missing section '" +
                                std::string(SectionName(id)) + "'");
    }
  }
  if (checksummed) {
    obs::Registry::Global()
        .GetHistogram("snapshot.checksum_verify_us")
        .Record(verify_us);
  }
  return loaded;
}

}  // namespace

Result<SnapshotSizes> SerializeSnapshot(const GraphView& view,
                                        std::string* out,
                                        const NameIndex* index,
                                        const SnapshotOptions& options) {
  FRAPPE_TRACE_SPAN("snapshot.serialize");
  SnapshotSizes sizes;
  // A caller-provided catalog wins; otherwise build one from the view when
  // asked (the temporal store's per-version catalog path).
  std::optional<StatsCatalog> built_catalog;
  const StatsCatalog* catalog = options.catalog;
  if (catalog == nullptr && options.build_stats_catalog) {
    built_catalog = BuildStatsCatalog(view);
    catalog = &*built_catalog;
  }
  Writer w(out);
  const size_t base = out->size();
  const uint32_t flags = options.checksums ? kFlagChecksummed : 0;
  w.Raw(kMagic, sizeof(kMagic));
  w.U32(kVersion);
  w.U32(flags);
  uint32_t section_count = 6u + (index != nullptr ? 1u : 0u) +
                           (catalog != nullptr ? 1u : 0u);
  w.U32(section_count);
  sizes.header = w.offset() - base;

  std::string payload;
  auto emit = [&](uint32_t id) {
    size_t start = w.offset();
    w.U32(id);
    w.U64(payload.size());
    w.Raw(payload.data(), payload.size());
    w.U32(options.checksums ? common::Crc32c(payload.data(), payload.size())
                            : 0);
    return static_cast<uint64_t>(w.offset() - start);
  };

  // Schema: node types, edge types, keys.
  {
    payload.clear();
    Writer pw(&payload);
    WriteRegistry(&pw, view.node_types());
    WriteRegistry(&pw, view.edge_types());
    WriteRegistry(&pw, view.keys());
    sizes.schema = emit(kSectionSchema);
  }
  // Strings, ordered by id so refs survive a round trip.
  {
    payload.clear();
    Writer pw(&payload);
    const StringPool& pool = view.strings();
    pw.U32(static_cast<uint32_t>(pool.size()));
    for (uint32_t i = 0; i < pool.size(); ++i) {
      pw.Str(pool.Resolve(StringRef{i}));
    }
    sizes.strings = emit(kSectionStrings);
  }
  // Node records (type per id slot; tombstones keep the id space intact).
  {
    payload.clear();
    Writer pw(&payload);
    pw.U32(view.NodeIdUpperBound());
    for (NodeId id = 0; id < view.NodeIdUpperBound(); ++id) {
      pw.U16(view.NodeExists(id) ? view.NodeType(id) : kDeadType);
    }
    sizes.nodes = emit(kSectionNodes);
  }
  // Node properties (live nodes only; id-ordered).
  {
    payload.clear();
    Writer pw(&payload);
    for (NodeId id = 0; id < view.NodeIdUpperBound(); ++id) {
      if (view.NodeExists(id)) WriteProps(&pw, view.NodeProperties(id));
    }
    sizes.node_properties = emit(kSectionNodeProps);
  }
  // Edge records.
  {
    payload.clear();
    Writer pw(&payload);
    pw.U32(view.EdgeIdUpperBound());
    for (EdgeId id = 0; id < view.EdgeIdUpperBound(); ++id) {
      if (view.EdgeExists(id)) {
        Edge e = view.GetEdge(id);
        pw.U16(e.type);
        pw.U32(e.src);
        pw.U32(e.dst);
      } else {
        pw.U16(kDeadType);
      }
    }
    sizes.relationships = emit(kSectionEdges);
  }
  // Edge properties.
  {
    payload.clear();
    Writer pw(&payload);
    for (EdgeId id = 0; id < view.EdgeIdUpperBound(); ++id) {
      if (view.EdgeExists(id)) WriteProps(&pw, view.EdgeProperties(id));
    }
    sizes.edge_properties = emit(kSectionEdgeProps);
  }
  // Optional embedded name index.
  if (index != nullptr) {
    payload.clear();
    WriteIndexPayload(&payload, *index);
    sizes.indexes = emit(kSectionIndex);
  }
  // Optional cardinality stats catalog.
  if (catalog != nullptr) {
    payload.clear();
    catalog->Serialize(&payload);
    sizes.stats = emit(kSectionStats);
  }

  // Trailer: total size + CRC over header and size field. The CRC is
  // written even with checksums off — it protects the flags field itself.
  {
    uint64_t total = (w.offset() - base) + kV2TrailerSize;
    w.U64(total);
    uint32_t crc = common::Crc32cExtend(
        common::Crc32c(out->data() + base, kV2HeaderSize),
        out->data() + out->size() - sizeof(uint64_t), sizeof(uint64_t));
    w.U32(crc);
    w.U32(kTrailerMagic);
    sizes.trailer = kV2TrailerSize;
  }
  return sizes;
}

Result<SnapshotSizes> SaveSnapshot(const GraphView& view,
                                   const std::string& path,
                                   const NameIndex* index,
                                   const SnapshotOptions& options) {
  FRAPPE_TRACE_SPAN("snapshot.save");
  obs::Registry& reg = obs::Registry::Global();
  std::string buffer;
  auto sizes = SerializeSnapshot(view, &buffer, index, options);
  if (!sizes.ok()) {
    reg.GetCounter("snapshot.save.failures").Add();
    return sizes.status();
  }
  Status s = common::AtomicWriteFile(path, buffer, "snapshot");
  if (!s.ok()) {
    reg.GetCounter("snapshot.save.failures").Add();
    return s;
  }
  reg.GetCounter("snapshot.save.count").Add();
  return sizes;
}

Result<LoadedSnapshot> DeserializeSnapshot(std::string_view data) {
  FRAPPE_TRACE_SPAN("snapshot.deserialize");
  Reader r(data);
  char magic[8];
  uint32_t version;
  if (!r.Raw(magic, sizeof(magic)) ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("snapshot: bad magic");
  }
  if (!r.U32(&version)) return Status::Corruption("snapshot: truncated");
  if (version == kVersionV1) return DeserializeV1(data, r);
  if (version == kVersion) return DeserializeV2(data);
  return Status::Corruption("snapshot: unsupported version " +
                            std::to_string(version));
}

Result<LoadedSnapshot> LoadSnapshot(const std::string& path) {
  FRAPPE_TRACE_SPAN("snapshot.load");
  obs::Registry& reg = obs::Registry::Global();
  std::string data;
  Status s = common::ReadFile(path, &data, "snapshot");
  if (!s.ok()) {
    reg.GetCounter("snapshot.load.failures").Add();
    return s;
  }
  auto loaded = DeserializeSnapshot(data);
  if (!loaded.ok()) {
    reg.GetCounter("snapshot.load.failures").Add();
    return loaded.status();
  }
  reg.GetCounter("snapshot.load.count").Add();
  return loaded;
}

}  // namespace frappe::graph
