#ifndef FRAPPE_GRAPH_INDEXES_H_
#define FRAPPE_GRAPH_INDEXES_H_

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "graph/graph_view.h"

namespace frappe::graph {

// Index over string-valued node properties, equivalent to Neo4j's lucene
// `node_auto_index` the paper queries with
// `START n=node:node_auto_index('short_name: id')`.
//
// Each configured field maps lowercased terms to the nodes carrying that
// term. The synthetic field "type" indexes the node's label name, which is
// what Table 6's `TYPE: struct OR TYPE: union` queries filter on.
//
// Lookup flavours, mirroring lucene query syntax:
//   exact        `short_name: id`
//   wildcard     `short_name: pci_*` ('*' and '?')
//   fuzzy        `short_name: sr_media_chnge~` (edit distance <= 2, or `~1`)
// Terms combine with AND / OR and parentheses; juxtaposition means AND.
class NameIndex {
 public:
  struct FieldSpec {
    std::string name;            // lucene field name, e.g. "short_name"
    KeyId key = kInvalidKey;     // node property backing it
    bool is_type_field = false;  // true: indexes the node label instead
  };

  NameIndex() = default;

  // Builds the index by scanning every live node of `view`.
  static NameIndex Build(const GraphView& view, std::vector<FieldSpec> fields);

  // Incrementally indexes one node (used by stores that keep the index live).
  void IndexNode(const GraphView& view, NodeId id);

  // --- Lookups (results are sorted, deduplicated) ---
  std::vector<NodeId> Lookup(std::string_view field,
                             std::string_view term) const;
  std::vector<NodeId> LookupWildcard(std::string_view field,
                                     std::string_view pattern) const;
  std::vector<NodeId> LookupFuzzy(std::string_view field,
                                  std::string_view term,
                                  size_t max_distance) const;

  // Evaluates a full lucene-style query string.
  Result<std::vector<NodeId>> Query(std::string_view query) const;

  // --- Introspection / persistence ---
  const std::vector<FieldSpec>& fields() const { return specs_; }
  size_t TermCount() const;

  // Per-field cardinalities for the stats catalog: distinct indexed terms
  // and total postings (term, node) pairs. `field_idx` indexes fields().
  struct FieldStats {
    uint64_t distinct_terms = 0;
    uint64_t postings = 0;
  };
  FieldStats StatsForField(size_t field_idx) const;

  // Approximate resident bytes (terms + postings), for Table 4 accounting.
  uint64_t ByteSize() const;

  void Serialize(std::string* out) const;
  static Result<NameIndex> Deserialize(std::string_view data);

 private:
  friend class NameIndexTestPeer;

  using Postings = std::map<std::string, std::vector<NodeId>>;

  const Postings* FindField(std::string_view field) const;
  void AddTerm(size_t field_idx, std::string_view term, NodeId id);

  std::vector<FieldSpec> specs_;
  std::vector<Postings> postings_;  // parallel to specs_
};

// Label (node-type) index: constant-time access to all nodes of a type.
// This is Neo4j 2.x's label scan store; the FQL planner uses it for
// `MATCH (n:function ...)` start points.
class LabelIndex {
 public:
  static LabelIndex Build(const GraphView& view);

  // Nodes with exactly this type id (sorted). Empty for unknown types.
  const std::vector<NodeId>& Nodes(TypeId type) const;

  uint64_t ByteSize() const;

 private:
  std::vector<std::vector<NodeId>> by_type_;
  std::vector<NodeId> empty_;
};

}  // namespace frappe::graph

#endif  // FRAPPE_GRAPH_INDEXES_H_
