#include "graph/stats_catalog.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <map>
#include <unordered_map>

#include "common/string_util.h"
#include "obs/trace.h"

namespace frappe::graph {

namespace {

// Defense against absurd counts in corrupted payloads; the snapshot
// section CRC should catch flips first.
constexpr uint32_t kMaxCatalogEntries = 1u << 20;

// Minimal length-prefixed writer/reader for the catalog payload (the
// snapshot layer adds the CRC framing around it).
class Writer {
 public:
  explicit Writer(std::string* out) : out_(out) {}
  void U32(uint32_t v) { Raw(&v, sizeof(v)); }
  void U64(uint64_t v) { Raw(&v, sizeof(v)); }
  void Str(std::string_view s) {
    U32(static_cast<uint32_t>(s.size()));
    out_->append(s.data(), s.size());
  }
  void Raw(const void* data, size_t size) {
    out_->append(static_cast<const char*>(data), size);
  }

 private:
  std::string* out_;
};

class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}
  bool U32(uint32_t* v) { return Raw(v, sizeof(*v)); }
  bool U64(uint64_t* v) { return Raw(v, sizeof(*v)); }
  bool Str(std::string* s) {
    uint32_t len;
    if (!U32(&len) || len > data_.size() - pos_) return false;
    s->assign(data_.data() + pos_, len);
    pos_ += len;
    return true;
  }
  bool Raw(void* out, size_t size) {
    if (size > data_.size() - pos_) return false;
    std::memcpy(out, data_.data() + pos_, size);
    pos_ += size;
    return true;
  }
  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

void WriteBins(Writer* w, const std::vector<DegreeBin>& bins) {
  w->U32(static_cast<uint32_t>(bins.size()));
  for (const DegreeBin& b : bins) {
    w->U64(b.min_degree);
    w->U64(b.max_degree);
    w->U64(b.node_count);
  }
}

bool ReadBins(Reader* r, std::vector<DegreeBin>* bins) {
  uint32_t count;
  if (!r->U32(&count) || count > kMaxCatalogEntries) return false;
  bins->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    DegreeBin b;
    if (!r->U64(&b.min_degree) || !r->U64(&b.max_degree) ||
        !r->U64(&b.node_count)) {
      return false;
    }
    bins->push_back(b);
  }
  return true;
}

std::string BinsJson(const std::vector<DegreeBin>& bins) {
  std::string out = "[";
  for (size_t i = 0; i < bins.size(); ++i) {
    if (i > 0) out += ", ";
    out += "[" + std::to_string(bins[i].min_degree) + ", " +
           std::to_string(bins[i].max_degree) + ", " +
           std::to_string(bins[i].node_count) + "]";
  }
  return out + "]";
}

// %g-style but locale-independent and stable across platforms.
std::string DoubleJson(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4f", v);
  return buf;
}

}  // namespace

double StatsCatalog::StalenessRatio(uint64_t nodes_now,
                                    uint64_t edges_now) const {
  auto drift = [](uint64_t now, uint64_t then) {
    uint64_t delta = now > then ? now - then : then - now;
    return static_cast<double>(delta) /
           static_cast<double>(std::max<uint64_t>(then, 1));
  };
  return std::max(drift(nodes_now, node_count),
                  drift(edges_now, edge_count));
}

uint64_t StatsCatalog::ByteSize() const {
  std::string tmp;
  Serialize(&tmp);
  return tmp.size();
}

void StatsCatalog::Serialize(std::string* out) const {
  Writer w(out);
  w.U32(kFormatVersion);
  w.U64(node_count);
  w.U64(edge_count);
  w.U32(static_cast<uint32_t>(node_types.size()));
  for (const NodeTypeStats& nt : node_types) {
    w.Str(nt.name);
    w.U64(nt.count);
  }
  w.U32(static_cast<uint32_t>(edge_types.size()));
  for (const EdgeTypeStats& et : edge_types) {
    w.Str(et.name);
    w.U64(et.count);
    w.U64(et.distinct_sources);
    w.U64(et.distinct_targets);
    WriteBins(&w, et.out_degrees);
    WriteBins(&w, et.in_degrees);
  }
  w.U32(static_cast<uint32_t>(hubs.size()));
  for (const HubNode& hub : hubs) {
    w.U32(hub.id);
    w.U64(hub.degree);
    w.Str(hub.short_name);
    w.Str(hub.type_name);
  }
  w.U32(static_cast<uint32_t>(index_fields.size()));
  for (const IndexFieldStats& f : index_fields) {
    w.Str(f.field);
    w.U64(f.distinct_terms);
    w.U64(f.postings);
  }
}

Result<StatsCatalog> StatsCatalog::Deserialize(std::string_view data) {
  auto corrupt = [](const char* what) {
    return Status::Corruption(std::string("stats catalog: ") + what);
  };
  Reader r(data);
  StatsCatalog cat;
  uint32_t version;
  if (!r.U32(&version)) return corrupt("truncated header");
  if (version != kFormatVersion) return corrupt("unsupported version");
  if (!r.U64(&cat.node_count) || !r.U64(&cat.edge_count)) {
    return corrupt("truncated totals");
  }
  uint32_t count;
  if (!r.U32(&count) || count > kMaxCatalogEntries) {
    return corrupt("bad node-type count");
  }
  cat.node_types.resize(count);
  for (NodeTypeStats& nt : cat.node_types) {
    if (!r.Str(&nt.name) || !r.U64(&nt.count)) {
      return corrupt("truncated node-type entry");
    }
  }
  if (!r.U32(&count) || count > kMaxCatalogEntries) {
    return corrupt("bad edge-type count");
  }
  cat.edge_types.resize(count);
  for (EdgeTypeStats& et : cat.edge_types) {
    if (!r.Str(&et.name) || !r.U64(&et.count) ||
        !r.U64(&et.distinct_sources) || !r.U64(&et.distinct_targets) ||
        !ReadBins(&r, &et.out_degrees) || !ReadBins(&r, &et.in_degrees)) {
      return corrupt("truncated edge-type entry");
    }
  }
  if (!r.U32(&count) || count > kMaxCatalogEntries) {
    return corrupt("bad hub count");
  }
  cat.hubs.resize(count);
  for (HubNode& hub : cat.hubs) {
    if (!r.U32(&hub.id) || !r.U64(&hub.degree) || !r.Str(&hub.short_name) ||
        !r.Str(&hub.type_name)) {
      return corrupt("truncated hub entry");
    }
  }
  if (!r.U32(&count) || count > kMaxCatalogEntries) {
    return corrupt("bad index-field count");
  }
  cat.index_fields.resize(count);
  for (IndexFieldStats& f : cat.index_fields) {
    if (!r.Str(&f.field) || !r.U64(&f.distinct_terms) ||
        !r.U64(&f.postings)) {
      return corrupt("truncated index-field entry");
    }
  }
  if (!r.AtEnd()) return corrupt("trailing bytes");
  return cat;
}

std::string StatsCatalog::ToJson() const {
  std::string out = "{\n";
  out += "  \"node_count\": " + std::to_string(node_count) + ",\n";
  out += "  \"edge_count\": " + std::to_string(edge_count) + ",\n";
  out += "  \"bytes\": " + std::to_string(ByteSize()) + ",\n";
  out += "  \"node_types\": {";
  for (size_t i = 0; i < node_types.size(); ++i) {
    if (i > 0) out += ", ";
    out += JsonQuote(node_types[i].name) + ": " +
           std::to_string(node_types[i].count);
  }
  out += "},\n  \"edge_types\": [\n";
  for (size_t i = 0; i < edge_types.size(); ++i) {
    const EdgeTypeStats& et = edge_types[i];
    out += "    {\"name\": " + JsonQuote(et.name) +
           ", \"count\": " + std::to_string(et.count) +
           ", \"distinct_sources\": " + std::to_string(et.distinct_sources) +
           ", \"distinct_targets\": " + std::to_string(et.distinct_targets) +
           ", \"avg_out_fanout\": " + DoubleJson(et.AvgOutFanout()) +
           ", \"avg_in_fanout\": " + DoubleJson(et.AvgInFanout()) +
           ", \"out_degree_bins\": " + BinsJson(et.out_degrees) +
           ", \"in_degree_bins\": " + BinsJson(et.in_degrees) + "}";
    out += i + 1 < edge_types.size() ? ",\n" : "\n";
  }
  out += "  ],\n  \"hubs\": [\n";
  for (size_t i = 0; i < hubs.size(); ++i) {
    out += "    {\"id\": " + std::to_string(hubs[i].id) +
           ", \"degree\": " + std::to_string(hubs[i].degree) +
           ", \"name\": " + JsonQuote(hubs[i].short_name) +
           ", \"type\": " + JsonQuote(hubs[i].type_name) + "}";
    out += i + 1 < hubs.size() ? ",\n" : "\n";
  }
  out += "  ],\n  \"index_fields\": [\n";
  for (size_t i = 0; i < index_fields.size(); ++i) {
    out += "    {\"field\": " + JsonQuote(index_fields[i].field) +
           ", \"distinct_terms\": " +
           std::to_string(index_fields[i].distinct_terms) +
           ", \"postings\": " + std::to_string(index_fields[i].postings) +
           "}";
    out += i + 1 < index_fields.size() ? ",\n" : "\n";
  }
  out += "  ]\n}";
  return out;
}

StatsCatalog BuildStatsCatalog(const GraphView& view,
                               const NameIndex* name_index,
                               size_t hub_count) {
  FRAPPE_TRACE_SPAN("stats.build_catalog");
  StatsCatalog cat;
  cat.node_count = view.NodeCount();
  cat.edge_count = view.EdgeCount();

  const NameRegistry& ntypes = view.node_types();
  cat.node_types.resize(ntypes.size());
  for (uint16_t t = 0; t < ntypes.size(); ++t) {
    cat.node_types[t].name = std::string(ntypes.Name(t));
  }
  view.ForEachNode([&](NodeId id) {
    TypeId t = view.NodeType(id);
    if (t < cat.node_types.size()) ++cat.node_types[t].count;
  });

  const NameRegistry& etypes = view.edge_types();
  cat.edge_types.resize(etypes.size());
  // One edge pass accumulating per-type per-endpoint degrees; the map size
  // per type *is* the distinct source/target count.
  std::vector<std::unordered_map<NodeId, uint64_t>> out_deg(etypes.size());
  std::vector<std::unordered_map<NodeId, uint64_t>> in_deg(etypes.size());
  view.ForEachEdgeGlobal([&](EdgeId id) {
    Edge e = view.GetEdge(id);
    if (e.type >= cat.edge_types.size()) return;
    ++cat.edge_types[e.type].count;
    ++out_deg[e.type][e.src];
    ++in_deg[e.type][e.dst];
  });
  for (uint16_t t = 0; t < etypes.size(); ++t) {
    StatsCatalog::EdgeTypeStats& et = cat.edge_types[t];
    et.name = std::string(etypes.Name(t));
    et.distinct_sources = out_deg[t].size();
    et.distinct_targets = in_deg[t].size();
    std::map<uint64_t, uint64_t> hist;
    for (const auto& [node, degree] : out_deg[t]) ++hist[degree];
    et.out_degrees = LogBinHistogram(hist);
    hist.clear();
    for (const auto& [node, degree] : in_deg[t]) ++hist[degree];
    et.in_degrees = LogBinHistogram(hist);
  }

  KeyId name_key = view.keys().Find("short_name");
  cat.hubs = TopDegreeNodes(view, hub_count, name_key);

  if (name_index != nullptr) {
    const std::vector<NameIndex::FieldSpec>& fields = name_index->fields();
    cat.index_fields.reserve(fields.size());
    for (size_t i = 0; i < fields.size(); ++i) {
      NameIndex::FieldStats fs = name_index->StatsForField(i);
      cat.index_fields.push_back(StatsCatalog::IndexFieldStats{
          fields[i].name, fs.distinct_terms, fs.postings});
    }
  }
  return cat;
}

std::shared_ptr<const StatsCatalog> StatsCatalogCache::Get() const {
  std::lock_guard<std::mutex> lock(mu_);
  return catalog_;
}

void StatsCatalogCache::Set(StatsCatalog catalog) {
  auto fresh = std::make_shared<const StatsCatalog>(std::move(catalog));
  std::lock_guard<std::mutex> lock(mu_);
  catalog_ = std::move(fresh);
}

void StatsCatalogCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  catalog_.reset();
}

bool StatsCatalogCache::RefreshIfStale(const GraphView& view,
                                       const NameIndex* name_index,
                                       double max_drift) {
  std::shared_ptr<const StatsCatalog> current = Get();
  if (current == nullptr) return false;
  if (current->StalenessRatio(view.NodeCount(), view.EdgeCount()) <=
      max_drift) {
    return false;
  }
  Set(BuildStatsCatalog(view, name_index));
  return true;
}

}  // namespace frappe::graph
