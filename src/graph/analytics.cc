#include "graph/analytics.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <string>

#include "obs/metrics.h"
#include "obs/resource.h"
#include "obs/trace.h"

namespace frappe::graph::analytics {

void VisitedBitmap::Reset(size_t universe) {
  size_t words = (universe + kBitsPerWord - 1) / kBitsPerWord;
  if (words > capacity_words_) {
    // Value-initialization zeroes the words; tag 0 is never a live epoch.
    words_ = std::make_unique<std::atomic<uint64_t>[]>(words);
    capacity_words_ = words;
    epoch_ = 1;
  } else if (epoch_ == std::numeric_limits<uint16_t>::max()) {
    for (size_t i = 0; i < capacity_words_; ++i) {
      words_[i].store(0, std::memory_order_relaxed);
    }
    epoch_ = 1;
  } else {
    ++epoch_;
  }
  size_ = universe;
}

void VisitedBitmap::AppendSetBits(std::vector<NodeId>* out) const {
  constexpr uint64_t kPayloadMask = (uint64_t{1} << kBitsPerWord) - 1;
  size_t words = (size_ + kBitsPerWord - 1) / kBitsPerWord;
  for (size_t w = 0; w < words; ++w) {
    uint64_t cur = words_[w].load(std::memory_order_relaxed);
    if ((cur >> kBitsPerWord) != epoch_) continue;
    uint64_t payload = cur & kPayloadMask;
    while (payload != 0) {
      int bit = std::countr_zero(payload);
      payload &= payload - 1;
      NodeId id = static_cast<NodeId>(w * kBitsPerWord + bit);
      if (id < size_) out->push_back(id);
    }
  }
}

namespace {

using Clock = std::chrono::steady_clock;

// Flush/poll interval for the per-lane step counters. Small enough that a
// deadline or step-budget breach is noticed promptly, large enough that the
// shared atomic stays out of the hot loop.
constexpr uint64_t kFlushInterval = 4096;

enum CancelReason : int { kNone = 0, kSteps = 1, kDeadline = 2,
                          kExternal = 3, kMemory = 4 };

struct SharedState {
  std::atomic<uint64_t> steps{0};
  std::atomic<bool> cancelled{false};
  std::atomic<int> reason{kNone};

  void Cancel(int why) {
    reason.store(why, std::memory_order_relaxed);
    cancelled.store(true, std::memory_order_relaxed);
  }
};

Status StatusFor(int reason, const Options& options,
                 const obs::ResourceTracker* tracker) {
  switch (reason) {
    case kSteps:
      return Status::ResourceExhausted(
          "traversal exceeded step budget of " +
          std::to_string(options.max_steps));
    case kDeadline:
      return Status::DeadlineExceeded("traversal exceeded deadline of " +
                                      std::to_string(options.deadline_ms) +
                                      "ms");
    case kExternal:
      return Status::Cancelled("traversal cancelled");
    case kMemory:
      // "memory" in the message keeps the executor from re-phrasing this
      // as a step-budget failure (see TryCsrClosure).
      return Status::ResourceExhausted(
          "traversal exceeded memory budget of " +
          std::to_string(tracker != nullptr ? tracker->budget_bytes() : 0) +
          " bytes");
    default:
      return Status::OK();
  }
}

// Per-lane budget bookkeeping shared by the push and pull loops: counts
// edge scans locally and flushes them (with the cancel-token, step-budget
// and deadline polls) every kFlushInterval edges.
struct LaneBudget {
  SharedState* shared;
  const Options* options;
  const Clock::time_point* deadline;           // null when no deadline
  const obs::ResourceTracker* tracker = nullptr;  // null when untracked
  uint64_t local_steps = 0;

  void Flush() {
    uint64_t total = shared->steps.fetch_add(local_steps,
                                             std::memory_order_relaxed) +
                     local_steps;
    local_steps = 0;
    if (options->cancel != nullptr &&
        options->cancel->load(std::memory_order_relaxed)) {
      shared->Cancel(kExternal);
    } else if (options->max_steps > 0 && total > options->max_steps) {
      shared->Cancel(kSteps);
    } else if (deadline != nullptr && Clock::now() > *deadline) {
      shared->Cancel(kDeadline);
    } else if (tracker != nullptr && tracker->OverBudget()) {
      shared->Cancel(kMemory);
    }
  }
  // Returns true when the traversal was cancelled and the lane must stop.
  bool Step() {
    if (++local_steps >= kFlushInterval) {
      Flush();
      return shared->cancelled.load(std::memory_order_relaxed);
    }
    return false;
  }
};

}  // namespace

Status FrontierEngine::Run(const CsrView& csr,
                           const std::vector<NodeId>& seeds,
                           const EdgeFilter& filter, const Options& options,
                           bool track_member, std::vector<uint32_t>* depths,
                           Metrics* metrics) {
  FRAPPE_TRACE_SPAN("analytics.run");
  // The coordinating thread's tracker (if a query installed one): pool
  // lanes attach to it below so their CPU time and allocations land on the
  // query that dispatched them, and every lane polls its memory budget.
  obs::ResourceTracker* tracker = obs::ResourceTracker::Current();
  size_t upper = csr.NodeIdUpperBound();
  size_t threads = ThreadPool::ResolveThreads(options.threads);
  ThreadPool& pool =
      options.pool != nullptr ? *options.pool : ThreadPool::Shared();

  // Metrics structs are reusable across runs: every field resets here so
  // nothing (frontier_sizes in particular) accumulates stale entries.
  if (metrics != nullptr) *metrics = Metrics{};

  visited_.Reset(upper);
  if (track_member) member_.Reset(upper);
  if (depths != nullptr) depths->assign(upper, kUnreachedDepth);

  const bool scan_out = filter.direction == Direction::kOut ||
                        filter.direction == Direction::kBoth;
  const bool scan_in = filter.direction == Direction::kIn ||
                       filter.direction == Direction::kBoth;
  // Scan-direction degree of a node: how many edges a push expansion of it
  // reads. Drives the Beamer heuristic; uses untyped degrees (type filters
  // shrink push and pull costs roughly proportionally). Never touches
  // InDegree unless push itself would scan in-edges, so pure-out
  // traversals defer the reverse-CSR build until the first pull level.
  auto scan_degree = [&](NodeId id) -> uint64_t {
    uint64_t deg = 0;
    if (scan_out) deg += csr.OutDegree(id);
    if (scan_in) deg += csr.InDegree(id);
    return deg;
  };

  frontier_.clear();
  uint64_t frontier_deg = 0;
  for (NodeId seed : seeds) {
    if (!csr.NodeExists(seed)) continue;
    if (visited_.TestAndSetSeq(seed)) {
      frontier_.push_back(seed);
      frontier_deg += scan_degree(seed);
      if (depths != nullptr) (*depths)[seed] = 0;
    }
  }

  SharedState shared;
  const bool typed = !filter.types.empty();
  // The overwhelmingly common filter is a single edge type (calls,
  // includes); hoist it so the inner loops compare one register.
  const TypeId single_type =
      filter.types.size() == 1 ? filter.types[0] : kInvalidType;
  auto type_allowed = [&](TypeId t) {
    return filter.types.size() == 1 ? t == single_type : filter.Allows(t);
  };

  Clock::time_point deadline;
  const Clock::time_point* deadline_ptr = nullptr;
  if (options.deadline_ms > 0) {
    deadline = Clock::now() + std::chrono::milliseconds(options.deadline_ms);
    deadline_ptr = &deadline;
  }

  // Inputs for the per-level push/pull cost model (see the direction
  // decision below). `scannable` is the total edge count a direction scan
  // can touch; `selectivity` the fraction of edges a typed filter accepts
  // — a selective filter delays pull's first-parent early exit by
  // ~1/selectivity, which the model charges pull for.
  const double scannable =
      static_cast<double>(csr.LiveEdgeCount()) *
      ((scan_out ? 1 : 0) + (scan_in ? 1 : 0));
  double selectivity = 1.0;
  if (typed && csr.LiveEdgeCount() > 0) {
    uint64_t matching = 0;
    for (TypeId t : filter.types) matching += csr.EdgeTypeCount(t);
    selectivity = static_cast<double>(matching) /
                  static_cast<double>(csr.LiveEdgeCount());
  }
  const double avg_degree =
      upper > 0 ? scannable / static_cast<double>(upper) : 0.0;
  size_t visited_total = frontier_.size();

  size_t frontier_count = frontier_.size();
  bool frontier_is_bitmap = false;
  bool pull_mode = false;

  size_t depth = 0;
  while (frontier_count > 0 && depth < options.max_depth &&
         !shared.cancelled.load(std::memory_order_relaxed)) {
    // One span per BFS level, parented under the executor's span on this
    // (worker) thread: the per-level breakdown a retained trace shows.
    // Pool-lane work inside the level stays un-parented — lanes run on
    // their own threads without the request context.
    FRAPPE_TRACE_SPAN("analytics.level");
    // Poll the external token once per level as well: small frontiers may
    // run many levels between step-counter flushes.
    if (options.cancel != nullptr &&
        options.cancel->load(std::memory_order_relaxed)) {
      shared.Cancel(kExternal);
      break;
    }

    // --- direction decision ---
    // Beamer-style switching, but via an explicit cost model rather than
    // the mf > mu/alpha rule: classic BFS eventually visits every node, so
    // mu ("unexplored edges") approximates bottom-up's work. A filtered
    // closure reaching a fraction of the graph breaks that — the
    // forever-unreached majority rescans its whole in-bucket on every pull
    // level. Model both sides directly instead:
    //
    //   push  ~ frontier_deg            (scan each frontier edge once)
    //   pull  ~ unvisited * (E[probes until a matching frontier parent]
    //                        + 1)       (+1 = per-node bitmap overhead)
    //
    // where the expected probe count is scannable / (frontier_deg *
    // selectivity) — the chance a random in-edge hits a frontier parent
    // through a matching type — capped by the average degree (a node with
    // no frontier parent scans its whole bucket). Pull is taken when its
    // modelled cost is under alpha * push (alpha>1 credits pull's
    // sequential, read-mostly, early-exiting scan); beta adds hysteresis
    // so a marginal flip doesn't thrash the frontier representation.
    bool want_pull;
    {
      double unvisited = static_cast<double>(
          upper > visited_total ? upper - visited_total : 0);
      double hit_rate =
          std::max(static_cast<double>(frontier_deg) * selectivity, 1.0);
      double expected_probes =
          std::min(avg_degree, scannable / hit_rate);
      double pull_cost = unvisited * (expected_probes + 1.0);
      double push_cost = static_cast<double>(frontier_deg);
      switch (options.mode) {
        case DirectionMode::kPushOnly:
          want_pull = false;
          break;
        case DirectionMode::kPullOnly:
          want_pull = true;
          break;
        default:
          want_pull = pull_cost < options.alpha * push_cost;
          if (pull_mode && !want_pull) {
            want_pull = static_cast<double>(frontier_count) >=
                        static_cast<double>(upper) / options.beta;
          }
          break;
      }
    }
    if (depth > 0 && want_pull != pull_mode && metrics != nullptr) {
      ++metrics->direction_switches;
    }
    pull_mode = want_pull;

    // --- frontier representation conversion ---
    if (pull_mode && !frontier_is_bitmap) {
      frontier_bits_.Reset(upper);
      for (NodeId id : frontier_) frontier_bits_.SetSeq(id);
      frontier_is_bitmap = true;
    } else if (!pull_mode && frontier_is_bitmap) {
      frontier_.clear();
      frontier_bits_.AppendSetBits(&frontier_);
      frontier_is_bitmap = false;
    }

    if (metrics != nullptr) {
      metrics->frontier_peak = std::max(metrics->frontier_peak,
                                        frontier_count);
      metrics->frontier_sizes.push_back(frontier_count);
      metrics->level_pull.push_back(pull_mode ? 1 : 0);
      metrics->level_bitmap.push_back(frontier_is_bitmap ? 1 : 0);
    }

    obs::Span level_span(pull_mode ? "analytics.level.pull"
                                   : "analytics.level.push");
    uint32_t next_depth = static_cast<uint32_t>(depth) + 1;
    uint64_t next_count = 0;
    uint64_t next_deg = 0;

    if (!pull_mode) {
      // ---- push (top-down): lanes split the frontier array ----
      size_t lanes = std::min(threads, frontier_count);
      if (metrics != nullptr) {
        metrics->lanes_used = std::max(metrics->lanes_used, lanes);
      }
      size_t chunk = (frontier_count + lanes - 1) / lanes;
      lane_next_.resize(std::max(lane_next_.size(), lanes));
      std::vector<uint64_t> lane_deg(lanes, 0);
      const bool seq = lanes <= 1;

      auto expand_lane = [&](size_t lane) {
        obs::ResourceLaneScope lane_scope(tracker);
        std::vector<NodeId>& next = lane_next_[lane];
        next.clear();
        uint64_t deg = 0;
        LaneBudget budget{&shared, &options, deadline_ptr, tracker};
        size_t begin = lane * chunk;
        size_t end = std::min(begin + chunk, frontier_count);
        for (size_t i = begin; i < end; ++i) {
          if (shared.cancelled.load(std::memory_order_relaxed)) break;
          NodeId node = frontier_[i];
          auto scan = [&](CsrView::Neighbors nbrs) {
            for (size_t j = 0; j < nbrs.count; ++j) {
              if (budget.Step()) return;
              if (typed && !type_allowed(nbrs.begin_types[j])) continue;
              NodeId neighbor = nbrs.begin_nodes[j];
              if (track_member) {
                // Test-before-set keeps the common already-a-member case
                // to a plain load (no lock-prefixed RMW).
                if (seq) {
                  member_.SetSeq(neighbor);
                } else if (!member_.Test(neighbor)) {
                  member_.Set(neighbor);
                }
              }
              bool first = seq ? visited_.TestAndSetSeq(neighbor)
                               : visited_.TestAndSet(neighbor);
              if (first) {
                // Sole winner of the bit: no write race on depths.
                if (depths != nullptr) (*depths)[neighbor] = next_depth;
                deg += scan_degree(neighbor);
                next.push_back(neighbor);
              }
            }
          };
          if (scan_out) scan(csr.Out(node));
          if (scan_in) scan(csr.In(node));
        }
        budget.Flush();
        lane_deg[lane] = deg;
      };

      if (seq) {
        expand_lane(0);
      } else {
        FRAPPE_TRACE_SPAN("analytics.run_lanes");
        pool.RunLanes(lanes, expand_lane);
      }

      // Barrier passed: merge per-lane discoveries into the next frontier.
      // Lane order keeps the merge deterministic for a given thread count;
      // the *set* per level is thread-count independent.
      frontier_.clear();
      for (size_t lane = 0; lane < lanes; ++lane) {
        frontier_.insert(frontier_.end(), lane_next_[lane].begin(),
                         lane_next_[lane].end());
        next_deg += lane_deg[lane];
      }
      next_count = frontier_.size();
      frontier_is_bitmap = false;
    } else {
      // ---- pull (bottom-up): lanes split the node id space ----
      // Each lane owns a contiguous id range, so depth writes and the
      // visited/member updates of a node have exactly one writer; only
      // the 48-bit words straddling a chunk boundary are shared, which the
      // atomic bitmap ops handle. The frontier bitmap is read-only here.
      size_t lanes = std::max<size_t>(1, std::min(threads, upper));
      if (metrics != nullptr) {
        metrics->lanes_used = std::max(metrics->lanes_used, lanes);
      }
      size_t chunk = (upper + lanes - 1) / lanes;
      next_bits_.Reset(upper);
      std::vector<uint64_t> lane_new(lanes, 0);
      std::vector<uint64_t> lane_deg(lanes, 0);
      const bool seq = lanes <= 1;
      constexpr uint64_t kFullWord =
          (uint64_t{1} << VisitedBitmap::kBitsPerWord) - 1;

      auto pull_lane = [&](size_t lane) {
        obs::ResourceLaneScope lane_scope(tracker);
        uint64_t found = 0;
        uint64_t deg = 0;
        LaneBudget budget{&shared, &options, deadline_ptr, tracker};
        NodeId begin = static_cast<NodeId>(lane * chunk);
        NodeId end = static_cast<NodeId>(
            std::min<size_t>(begin + chunk, upper));
        NodeId v = begin;
        while (v < end) {
          if ((v % VisitedBitmap::kBitsPerWord) == 0 &&
              v + VisitedBitmap::kBitsPerWord <= end) {
            // Whole-word skip: 48 ids at a time where every node is
            // already visited (and, for closures, already a member).
            uint64_t done = visited_.WordPayload(v);
            if (track_member) done &= member_.WordPayload(v);
            if (done == kFullWord) {
              v += VisitedBitmap::kBitsPerWord;
              if (shared.cancelled.load(std::memory_order_relaxed)) return;
              continue;
            }
          }
          bool vis = visited_.Test(v);
          bool memb = track_member && member_.Test(v);
          if (vis && (!track_member || memb)) {
            ++v;
            continue;
          }
          // Scan v's reverse-direction adjacency for a frontier parent.
          bool hit = false;
          auto probe = [&](CsrView::Neighbors nbrs) {
            for (size_t j = 0; j < nbrs.count; ++j) {
              if (budget.Step()) return;
              if (typed && !type_allowed(nbrs.begin_types[j])) continue;
              if (frontier_bits_.Test(nbrs.begin_nodes[j])) {
                hit = true;
                return;
              }
            }
          };
          // A traversal that follows out-edges discovers v from its
          // in-neighbors, and vice versa.
          if (scan_out) probe(csr.In(v));
          if (scan_in && !hit) probe(csr.Out(v));
          if (shared.cancelled.load(std::memory_order_relaxed)) return;
          if (hit) {
            if (track_member && !memb) {
              if (seq) {
                member_.SetSeq(v);
              } else {
                member_.Set(v);
              }
            }
            if (!vis) {
              if (seq) {
                visited_.SetSeq(v);
                next_bits_.SetSeq(v);
              } else {
                visited_.Set(v);
                next_bits_.Set(v);
              }
              if (depths != nullptr) (*depths)[v] = next_depth;
              ++found;
              deg += scan_degree(v);
            }
          }
          ++v;
        }
        budget.Flush();
        lane_new[lane] = found;
        lane_deg[lane] = deg;
      };

      if (seq) {
        pull_lane(0);
      } else {
        FRAPPE_TRACE_SPAN("analytics.run_lanes");
        pool.RunLanes(lanes, pull_lane);
      }

      for (size_t lane = 0; lane < lanes; ++lane) {
        next_count += lane_new[lane];
        next_deg += lane_deg[lane];
      }
      std::swap(frontier_bits_, next_bits_);
      frontier_is_bitmap = true;
    }

    frontier_count = next_count;
    frontier_deg = next_deg;
    visited_total += next_count;
    ++depth;
    if (metrics != nullptr) metrics->levels = depth;
  }

  if (metrics != nullptr) {
    metrics->steps = shared.steps.load(std::memory_order_relaxed);
    metrics->scanned_bytes = metrics->steps * CsrView::kBytesPerEdgeScan;
  }
  static obs::Counter& runs_counter =
      obs::Registry::Global().GetCounter("analytics.runs");
  static obs::Counter& steps_counter =
      obs::Registry::Global().GetCounter("analytics.steps");
  static obs::Histogram& levels_hist =
      obs::Registry::Global().GetHistogram("analytics.levels");
  runs_counter.Add();
  steps_counter.Add(shared.steps.load(std::memory_order_relaxed));
  levels_hist.Record(depth);
  return StatusFor(shared.reason.load(std::memory_order_relaxed), options,
                   tracker);
}

Result<std::vector<NodeId>> FrontierEngine::Closure(
    const CsrView& csr, const std::vector<NodeId>& seeds,
    const EdgeFilter& filter, const Options& options, Metrics* metrics) {
  FRAPPE_RETURN_IF_ERROR(Run(csr, seeds, filter, options,
                             /*track_member=*/true, /*depths=*/nullptr,
                             metrics));
  std::vector<NodeId> out;
  member_.AppendSetBits(&out);
  return out;
}

Result<std::vector<NodeId>> FrontierEngine::Reachable(
    const CsrView& csr, const std::vector<NodeId>& seeds,
    const EdgeFilter& filter, const Options& options, Metrics* metrics) {
  FRAPPE_RETURN_IF_ERROR(Run(csr, seeds, filter, options,
                             /*track_member=*/false, /*depths=*/nullptr,
                             metrics));
  std::vector<NodeId> out;
  visited_.AppendSetBits(&out);
  return out;
}

Result<std::vector<uint32_t>> FrontierEngine::BfsDepths(
    const CsrView& csr, const std::vector<NodeId>& seeds,
    const EdgeFilter& filter, const Options& options, Metrics* metrics) {
  std::vector<uint32_t> depths;
  FRAPPE_RETURN_IF_ERROR(Run(csr, seeds, filter, options,
                             /*track_member=*/false, &depths, metrics));
  return depths;
}

namespace {

FrontierEngine& LocalEngine() {
  thread_local FrontierEngine engine;
  return engine;
}

}  // namespace

Result<std::vector<NodeId>> ParallelClosure(const CsrView& csr,
                                            const std::vector<NodeId>& seeds,
                                            const EdgeFilter& filter,
                                            const Options& options,
                                            Metrics* metrics) {
  return LocalEngine().Closure(csr, seeds, filter, options, metrics);
}

Result<std::vector<NodeId>> ParallelReachable(
    const CsrView& csr, const std::vector<NodeId>& seeds,
    const EdgeFilter& filter, const Options& options, Metrics* metrics) {
  return LocalEngine().Reachable(csr, seeds, filter, options, metrics);
}

Result<std::vector<uint32_t>> ParallelBfsDepths(
    const CsrView& csr, const std::vector<NodeId>& seeds,
    const EdgeFilter& filter, const Options& options, Metrics* metrics) {
  return LocalEngine().BfsDepths(csr, seeds, filter, options, metrics);
}

}  // namespace frappe::graph::analytics
