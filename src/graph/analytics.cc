#include "graph/analytics.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace frappe::graph::analytics {

void VisitedBitmap::Reset(size_t universe) {
  size_t words = (universe + kBitsPerWord - 1) / kBitsPerWord;
  if (words > capacity_words_) {
    // Value-initialization zeroes the words; tag 0 is never a live epoch.
    words_ = std::make_unique<std::atomic<uint64_t>[]>(words);
    capacity_words_ = words;
    epoch_ = 1;
  } else if (epoch_ == std::numeric_limits<uint16_t>::max()) {
    for (size_t i = 0; i < capacity_words_; ++i) {
      words_[i].store(0, std::memory_order_relaxed);
    }
    epoch_ = 1;
  } else {
    ++epoch_;
  }
  size_ = universe;
}

void VisitedBitmap::AppendSetBits(std::vector<NodeId>* out) const {
  constexpr uint64_t kPayloadMask = (uint64_t{1} << kBitsPerWord) - 1;
  size_t words = (size_ + kBitsPerWord - 1) / kBitsPerWord;
  for (size_t w = 0; w < words; ++w) {
    uint64_t cur = words_[w].load(std::memory_order_relaxed);
    if ((cur >> kBitsPerWord) != epoch_) continue;
    uint64_t payload = cur & kPayloadMask;
    while (payload != 0) {
      int bit = std::countr_zero(payload);
      payload &= payload - 1;
      NodeId id = static_cast<NodeId>(w * kBitsPerWord + bit);
      if (id < size_) out->push_back(id);
    }
  }
}

namespace {

using Clock = std::chrono::steady_clock;

// Flush/poll interval for the per-lane step counters. Small enough that a
// deadline or step-budget breach is noticed promptly, large enough that the
// shared atomic stays out of the hot loop.
constexpr uint64_t kFlushInterval = 4096;

enum CancelReason : int { kNone = 0, kSteps = 1, kDeadline = 2,
                          kExternal = 3 };

struct SharedState {
  std::atomic<uint64_t> steps{0};
  std::atomic<bool> cancelled{false};
  std::atomic<int> reason{kNone};

  void Cancel(int why) {
    reason.store(why, std::memory_order_relaxed);
    cancelled.store(true, std::memory_order_relaxed);
  }
};

Status StatusFor(int reason, const Options& options) {
  switch (reason) {
    case kSteps:
      return Status::ResourceExhausted(
          "traversal exceeded step budget of " +
          std::to_string(options.max_steps));
    case kDeadline:
      return Status::DeadlineExceeded("traversal exceeded deadline of " +
                                      std::to_string(options.deadline_ms) +
                                      "ms");
    case kExternal:
      return Status::Cancelled("traversal cancelled");
    default:
      return Status::OK();
  }
}

}  // namespace

Status FrontierEngine::Run(const CsrView& csr,
                           const std::vector<NodeId>& seeds,
                           const EdgeFilter& filter, const Options& options,
                           bool track_member, std::vector<uint32_t>* depths,
                           Metrics* metrics) {
  FRAPPE_TRACE_SPAN("analytics.run");
  size_t upper = csr.NodeIdUpperBound();
  size_t threads = ThreadPool::ResolveThreads(options.threads);
  ThreadPool& pool =
      options.pool != nullptr ? *options.pool : ThreadPool::Shared();

  visited_.Reset(upper);
  if (track_member) member_.Reset(upper);
  if (depths != nullptr) depths->assign(upper, kUnreachedDepth);

  frontier_.clear();
  for (NodeId seed : seeds) {
    if (!csr.NodeExists(seed)) continue;
    if (visited_.TestAndSet(seed)) {
      frontier_.push_back(seed);
      if (depths != nullptr) (*depths)[seed] = 0;
    }
  }

  SharedState shared;
  bool typed = !filter.types.empty();
  Clock::time_point deadline;
  bool has_deadline = options.deadline_ms > 0;
  if (has_deadline) {
    deadline = Clock::now() + std::chrono::milliseconds(options.deadline_ms);
  }

  size_t depth = 0;
  while (!frontier_.empty() && depth < options.max_depth &&
         !shared.cancelled.load(std::memory_order_relaxed)) {
    FRAPPE_TRACE_SPAN("analytics.level");
    // Poll the external token once per level as well: small frontiers may
    // run many levels between step-counter flushes.
    if (options.cancel != nullptr &&
        options.cancel->load(std::memory_order_relaxed)) {
      shared.Cancel(kExternal);
      break;
    }
    if (metrics != nullptr) {
      metrics->frontier_peak = std::max(metrics->frontier_peak,
                                        frontier_.size());
      metrics->frontier_sizes.push_back(frontier_.size());
    }
    size_t lanes = std::min(threads, frontier_.size());
    if (metrics != nullptr) {
      metrics->lanes_used = std::max(metrics->lanes_used, lanes);
    }
    size_t chunk = (frontier_.size() + lanes - 1) / lanes;
    lane_next_.resize(std::max(lane_next_.size(), lanes));

    auto expand_lane = [&](size_t lane) {
      std::vector<NodeId>& next = lane_next_[lane];
      next.clear();
      uint64_t local_steps = 0;
      auto flush = [&] {
        uint64_t total = shared.steps.fetch_add(
                             local_steps, std::memory_order_relaxed) +
                         local_steps;
        local_steps = 0;
        if (options.cancel != nullptr &&
            options.cancel->load(std::memory_order_relaxed)) {
          shared.Cancel(kExternal);
        } else if (options.max_steps > 0 && total > options.max_steps) {
          shared.Cancel(kSteps);
        } else if (has_deadline && Clock::now() > deadline) {
          shared.Cancel(kDeadline);
        }
      };
      size_t begin = lane * chunk;
      size_t end = std::min(begin + chunk, frontier_.size());
      uint32_t next_depth = static_cast<uint32_t>(depth) + 1;
      for (size_t i = begin; i < end; ++i) {
        if (shared.cancelled.load(std::memory_order_relaxed)) break;
        NodeId node = frontier_[i];
        auto scan = [&](CsrView::Neighbors nbrs) {
          for (size_t j = 0; j < nbrs.count; ++j) {
            if (++local_steps >= kFlushInterval) {
              flush();
              if (shared.cancelled.load(std::memory_order_relaxed)) return;
            }
            if (typed &&
                !filter.Allows(csr.GetEdge(nbrs.begin_edges[j]).type)) {
              continue;
            }
            NodeId neighbor = nbrs.begin_nodes[j];
            if (track_member) member_.Set(neighbor);
            if (visited_.TestAndSet(neighbor)) {
              // Sole winner of the bit: no write race on depths.
              if (depths != nullptr) (*depths)[neighbor] = next_depth;
              next.push_back(neighbor);
            }
          }
        };
        if (filter.direction == Direction::kOut ||
            filter.direction == Direction::kBoth) {
          scan(csr.Out(node));
        }
        if (filter.direction == Direction::kIn ||
            filter.direction == Direction::kBoth) {
          scan(csr.In(node));
        }
      }
      flush();
    };

    if (lanes <= 1) {
      expand_lane(0);
    } else {
      FRAPPE_TRACE_SPAN("analytics.run_lanes");
      pool.RunLanes(lanes, expand_lane);
    }

    // Barrier passed: merge per-lane discoveries into the next frontier.
    // Lane order keeps the merge deterministic for a given thread count;
    // the *set* per level is thread-count independent.
    frontier_.clear();
    for (size_t lane = 0; lane < lanes; ++lane) {
      frontier_.insert(frontier_.end(), lane_next_[lane].begin(),
                       lane_next_[lane].end());
    }
    ++depth;
    if (metrics != nullptr) metrics->levels = depth;
  }

  if (metrics != nullptr) {
    metrics->steps = shared.steps.load(std::memory_order_relaxed);
  }
  static obs::Counter& runs_counter =
      obs::Registry::Global().GetCounter("analytics.runs");
  static obs::Counter& steps_counter =
      obs::Registry::Global().GetCounter("analytics.steps");
  static obs::Histogram& levels_hist =
      obs::Registry::Global().GetHistogram("analytics.levels");
  runs_counter.Add();
  steps_counter.Add(shared.steps.load(std::memory_order_relaxed));
  levels_hist.Record(depth);
  return StatusFor(shared.reason.load(std::memory_order_relaxed), options);
}

Result<std::vector<NodeId>> FrontierEngine::Closure(
    const CsrView& csr, const std::vector<NodeId>& seeds,
    const EdgeFilter& filter, const Options& options, Metrics* metrics) {
  FRAPPE_RETURN_IF_ERROR(Run(csr, seeds, filter, options,
                             /*track_member=*/true, /*depths=*/nullptr,
                             metrics));
  std::vector<NodeId> out;
  member_.AppendSetBits(&out);
  return out;
}

Result<std::vector<NodeId>> FrontierEngine::Reachable(
    const CsrView& csr, const std::vector<NodeId>& seeds,
    const EdgeFilter& filter, const Options& options, Metrics* metrics) {
  FRAPPE_RETURN_IF_ERROR(Run(csr, seeds, filter, options,
                             /*track_member=*/false, /*depths=*/nullptr,
                             metrics));
  std::vector<NodeId> out;
  visited_.AppendSetBits(&out);
  return out;
}

Result<std::vector<uint32_t>> FrontierEngine::BfsDepths(
    const CsrView& csr, const std::vector<NodeId>& seeds,
    const EdgeFilter& filter, const Options& options, Metrics* metrics) {
  std::vector<uint32_t> depths;
  FRAPPE_RETURN_IF_ERROR(Run(csr, seeds, filter, options,
                             /*track_member=*/false, &depths, metrics));
  return depths;
}

namespace {

FrontierEngine& LocalEngine() {
  thread_local FrontierEngine engine;
  return engine;
}

}  // namespace

Result<std::vector<NodeId>> ParallelClosure(const CsrView& csr,
                                            const std::vector<NodeId>& seeds,
                                            const EdgeFilter& filter,
                                            const Options& options,
                                            Metrics* metrics) {
  return LocalEngine().Closure(csr, seeds, filter, options, metrics);
}

Result<std::vector<NodeId>> ParallelReachable(
    const CsrView& csr, const std::vector<NodeId>& seeds,
    const EdgeFilter& filter, const Options& options, Metrics* metrics) {
  return LocalEngine().Reachable(csr, seeds, filter, options, metrics);
}

Result<std::vector<uint32_t>> ParallelBfsDepths(
    const CsrView& csr, const std::vector<NodeId>& seeds,
    const EdgeFilter& filter, const Options& options, Metrics* metrics) {
  return LocalEngine().BfsDepths(csr, seeds, filter, options, metrics);
}

}  // namespace frappe::graph::analytics
