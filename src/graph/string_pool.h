#ifndef FRAPPE_GRAPH_STRING_POOL_H_
#define FRAPPE_GRAPH_STRING_POOL_H_

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

namespace frappe::graph {

// Reference to an interned string. 32 bits so it fits in a packed property
// entry payload.
struct StringRef {
  uint32_t id = 0xFFFFFFFFu;

  bool valid() const { return id != 0xFFFFFFFFu; }
  bool operator==(const StringRef&) const = default;
};

// Append-only interning pool. Every distinct property string (symbol names,
// file paths, qualifier codes) is stored once; properties hold 4-byte refs.
// Storage uses a deque so string_views handed out stay valid for the pool's
// lifetime even as it grows.
class StringPool {
 public:
  StringPool() = default;
  StringPool(const StringPool&) = delete;
  StringPool& operator=(const StringPool&) = delete;
  StringPool(StringPool&&) = default;
  StringPool& operator=(StringPool&&) = default;

  // Returns the ref for `s`, interning it if not present.
  StringRef Intern(std::string_view s) {
    auto it = index_.find(s);
    if (it != index_.end()) return StringRef{it->second};
    uint32_t id = static_cast<uint32_t>(strings_.size());
    strings_.emplace_back(s);
    index_.emplace(strings_.back(), id);
    bytes_ += s.size();
    return StringRef{id};
  }

  // Const lookup: returns nullopt if `s` was never interned. Lets read-only
  // consumers (query execution) translate string constants without mutating
  // the pool.
  std::optional<StringRef> Find(std::string_view s) const {
    auto it = index_.find(s);
    if (it == index_.end()) return std::nullopt;
    return StringRef{it->second};
  }

  std::string_view Resolve(StringRef ref) const {
    if (!ref.valid() || ref.id >= strings_.size()) return {};
    return strings_[ref.id];
  }

  size_t size() const { return strings_.size(); }

  // Total payload bytes of interned strings (for storage accounting).
  uint64_t payload_bytes() const { return bytes_; }

 private:
  std::deque<std::string> strings_;
  std::unordered_map<std::string_view, uint32_t> index_;
  uint64_t bytes_ = 0;
};

}  // namespace frappe::graph

#endif  // FRAPPE_GRAPH_STRING_POOL_H_
