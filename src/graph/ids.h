#ifndef FRAPPE_GRAPH_IDS_H_
#define FRAPPE_GRAPH_IDS_H_

#include <cstdint>

namespace frappe::graph {

// Dense 32-bit handles. A graph at paper scale is ~0.5 M nodes / 4 M edges,
// far below the 4 G ceiling; 32-bit ids halve adjacency-list memory compared
// to 64-bit and keep the snapshot format compact.
using NodeId = uint32_t;
using EdgeId = uint32_t;

inline constexpr NodeId kInvalidNode = 0xFFFFFFFFu;
inline constexpr EdgeId kInvalidEdge = 0xFFFFFFFFu;

// Interned identifiers for node labels / edge types and property keys.
// A code-graph schema has a few dozen of each (paper Table 1 / Table 2).
using TypeId = uint16_t;
using KeyId = uint16_t;

inline constexpr TypeId kInvalidType = 0xFFFF;
inline constexpr KeyId kInvalidKey = 0xFFFF;

}  // namespace frappe::graph

#endif  // FRAPPE_GRAPH_IDS_H_
