#ifndef FRAPPE_GRAPH_STATS_H_
#define FRAPPE_GRAPH_STATS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "graph/graph_view.h"

namespace frappe::graph {

// Paper Table 3: node count, edge count, density.
struct GraphMetrics {
  uint64_t node_count = 0;
  uint64_t edge_count = 0;
  // Edge-to-node ratio (the paper quotes 1:8).
  double edge_node_ratio = 0.0;
  // Directed graph density: |E| / (|V| * (|V| - 1)).
  double density = 0.0;
};

GraphMetrics ComputeMetrics(const GraphView& view);

// Paper Figure 7: distribution of total node degree (in + out).
// Returns degree -> node count, in ascending degree order.
std::map<uint64_t, uint64_t> DegreeDistribution(const GraphView& view);

// Log-binned view of the distribution for compact printing: each bin covers
// degrees [2^i, 2^(i+1)).
struct DegreeBin {
  uint64_t min_degree;
  uint64_t max_degree;
  uint64_t node_count;
};
std::vector<DegreeBin> LogBinnedDegrees(const GraphView& view);

// Log-bins an already-computed degree -> count histogram (the building
// block behind LogBinnedDegrees, reused by the stats catalog for per-edge-
// type directional histograms).
std::vector<DegreeBin> LogBinHistogram(
    const std::map<uint64_t, uint64_t>& hist);

// The k highest-degree nodes with their degree — in the paper these are
// hubs like `int` (degree ~79K) and `NULL` (~19K).
struct HubNode {
  NodeId id;
  uint64_t degree;
  std::string short_name;  // resolved via `name_key` when provided
  std::string type_name;
};
std::vector<HubNode> TopDegreeNodes(const GraphView& view, size_t k,
                                    KeyId name_key = kInvalidKey);

// Edge count per edge type (useful for sanity-checking extractor output).
std::map<std::string, uint64_t> EdgeTypeHistogram(const GraphView& view);
std::map<std::string, uint64_t> NodeTypeHistogram(const GraphView& view);

}  // namespace frappe::graph

#endif  // FRAPPE_GRAPH_STATS_H_
