#include "temporal/version_store.h"

#include <algorithm>

namespace frappe::temporal {

using graph::EdgeId;
using graph::NodeId;

NodeId VersionStore::AddNode(graph::TypeId type) {
  NodeId id = store_.AddNode(type);
  node_intervals_.push_back(Interval{committed_, kLive});
  return id;
}

EdgeId VersionStore::AddEdge(NodeId src, NodeId dst, graph::TypeId type) {
  if (!NodeAliveNow(src) || !NodeAliveNow(dst)) return graph::kInvalidEdge;
  EdgeId id = store_.AddEdge(src, dst, type);
  if (id == graph::kInvalidEdge) return id;
  edge_intervals_.push_back(Interval{committed_, kLive});
  return id;
}

void VersionStore::RemoveEdge(EdgeId id) {
  if (!EdgeAliveNow(id)) return;
  edge_intervals_[id].to = committed_;
}

void VersionStore::RemoveNode(NodeId id) {
  if (!NodeAliveNow(id)) return;
  // Cascade: end every live incident edge first.
  store_.ForEachEdge(id, graph::Direction::kBoth,
                     [&](EdgeId e, NodeId) {
                       RemoveEdge(e);
                       return true;
                     });
  node_intervals_[id].to = committed_;
}

void VersionStore::SnapshotPropsBeforeChange(uint32_t id, bool is_edge) {
  auto& history = is_edge ? edge_prop_history_[id] : node_prop_history_[id];
  if (history.empty()) {
    Version birth = is_edge ? edge_intervals_[id].from
                            : node_intervals_[id].from;
    const graph::PropertyMap& current =
        is_edge ? store_.EdgeProperties(id) : store_.NodeProperties(id);
    history.emplace_back(birth, current);
  }
  if (history.back().first != committed_) {
    history.emplace_back(committed_, history.back().second);
    if (node_prop_changes_.size() <= committed_) {
      node_prop_changes_.resize(committed_ + 1);
      edge_prop_changes_.resize(committed_ + 1);
    }
    if (is_edge) {
      edge_prop_changes_[committed_].push_back(id);
    } else {
      node_prop_changes_[committed_].push_back(id);
    }
  }
}

void VersionStore::SetNodeProperty(NodeId id, graph::KeyId key,
                                   graph::Value value) {
  if (!NodeAliveNow(id)) return;
  SnapshotPropsBeforeChange(id, /*is_edge=*/false);
  node_prop_history_[id].back().second.Set(key, value);
  store_.SetNodeProperty(id, key, value);
}

void VersionStore::SetEdgeProperty(EdgeId id, graph::KeyId key,
                                   graph::Value value) {
  if (!EdgeAliveNow(id)) return;
  SnapshotPropsBeforeChange(id, /*is_edge=*/true);
  edge_prop_history_[id].back().second.Set(key, value);
  store_.SetEdgeProperty(id, key, value);
}

Version VersionStore::CommitVersion() {
  Version version = committed_;
  uint64_t nodes = 0, edges = 0;
  for (const Interval& iv : node_intervals_) {
    if (iv.VisibleAt(version)) ++nodes;
  }
  for (const Interval& iv : edge_intervals_) {
    if (iv.VisibleAt(version)) ++edges;
  }
  counts_.emplace_back(nodes, edges);
  if (node_prop_changes_.size() <= version) {
    node_prop_changes_.resize(version + 1);
    edge_prop_changes_.resize(version + 1);
  }
  ++committed_;
  return version;
}

Result<std::unique_ptr<VersionView>> VersionStore::ViewAt(
    Version version) const {
  if (version >= committed_) {
    return Status::OutOfRange("version " + std::to_string(version) +
                              " not committed (have " +
                              std::to_string(committed_) + ")");
  }
  return std::make_unique<VersionView>(this, version);
}

Result<graph::SnapshotSizes> VersionStore::SaveVersion(
    Version version, const std::string& path,
    const graph::SnapshotOptions& options) const {
  FRAPPE_ASSIGN_OR_RETURN(std::unique_ptr<VersionView> view,
                          ViewAt(version));
  // Version the cardinality stats catalog with the snapshot: each saved
  // version carries statistics computed from *its* point-in-time view, so
  // a reloaded historical snapshot estimates against its own shape.
  graph::SnapshotOptions opts = options;
  if (opts.catalog == nullptr) opts.build_stats_catalog = true;
  return graph::SaveSnapshot(*view, path, /*index=*/nullptr, opts);
}

Result<std::unique_ptr<graph::GraphStore>> VersionStore::MaterializeVersion(
    Version version) const {
  if (version >= committed_) {
    return Status::OutOfRange("version " + std::to_string(version) +
                              " not committed (have " +
                              std::to_string(committed_) + ")");
  }
  auto out = std::make_unique<graph::GraphStore>();
  // Re-intern every vocabulary in id order. NameRegistry and StringPool
  // assign sequential ids, so in-order re-interning reproduces the exact
  // id mapping — which is what lets node/edge type ids, property key ids
  // and string-valued property payloads (StringRefs) copy over raw.
  const graph::GraphStore& src = store_;
  for (uint16_t i = 0; i < src.node_types().size(); ++i) {
    out->InternNodeType(src.node_types().Name(i));
  }
  for (uint16_t i = 0; i < src.edge_types().size(); ++i) {
    out->InternEdgeType(src.edge_types().Name(i));
  }
  for (uint16_t i = 0; i < src.keys().size(); ++i) {
    out->InternKey(src.keys().Name(i));
  }
  for (uint32_t i = 0; i < src.strings().size(); ++i) {
    out->InternString(src.strings().Resolve(graph::StringRef{i}));
  }
  // Entities in id order; dead-at-version slots become tombstones so the
  // id layout (including holes) matches the source exactly.
  for (NodeId id = 0; id < node_intervals_.size(); ++id) {
    if (!node_intervals_[id].VisibleAt(version)) {
      out->AddDeadNode();
      continue;
    }
    out->AddNode(src.NodeType(id));
    out->SetNodeProperties(id, PropsAt(/*is_edge=*/false, id, version));
  }
  for (EdgeId id = 0; id < edge_intervals_.size(); ++id) {
    if (!edge_intervals_[id].VisibleAt(version)) {
      out->AddDeadEdge();
      continue;
    }
    graph::Edge e = src.GetEdge(id);
    if (out->AddEdge(e.src, e.dst, e.type) == graph::kInvalidEdge) {
      return Status::Internal(
          "materialize: edge " + std::to_string(id) +
          " visible at version " + std::to_string(version) +
          " but an endpoint is not");
    }
    out->SetEdgeProperties(id, PropsAt(/*is_edge=*/true, id, version));
  }
  return out;
}

const graph::PropertyMap& VersionStore::PropsAt(bool is_edge, uint32_t id,
                                                Version version) const {
  const auto& histories = is_edge ? edge_prop_history_ : node_prop_history_;
  auto it = histories.find(id);
  if (it != histories.end() && !it->second.empty()) {
    const PropHistory& history = it->second;
    // Last entry with since <= version.
    auto entry = std::upper_bound(
        history.begin(), history.end(), version,
        [](Version v, const std::pair<Version, graph::PropertyMap>& e) {
          return v < e.first;
        });
    if (entry != history.begin()) {
      return std::prev(entry)->second;
    }
    // Version precedes the first snapshot — cannot happen for live
    // entities (first snapshot is taken at birth), fall through.
  }
  return is_edge ? store_.EdgeProperties(id) : store_.NodeProperties(id);
}

Result<VersionStore::Diff> VersionStore::ComputeDiff(Version from,
                                                     Version to) const {
  if (from >= committed_ || to >= committed_) {
    return Status::OutOfRange("diff versions must be committed");
  }
  Diff diff;
  for (NodeId id = 0; id < node_intervals_.size(); ++id) {
    bool before = node_intervals_[id].VisibleAt(from);
    bool after = node_intervals_[id].VisibleAt(to);
    if (!before && after) diff.added_nodes.push_back(id);
    if (before && !after) diff.removed_nodes.push_back(id);
  }
  for (EdgeId id = 0; id < edge_intervals_.size(); ++id) {
    bool before = edge_intervals_[id].VisibleAt(from);
    bool after = edge_intervals_[id].VisibleAt(to);
    if (!before && after) diff.added_edges.push_back(id);
    if (before && !after) diff.removed_edges.push_back(id);
  }
  // Property changes in eras (from, to], for nodes alive at both ends.
  if (to > from) {
    std::vector<NodeId> changed;
    for (Version v = from + 1; v <= to && v < node_prop_changes_.size();
         ++v) {
      for (NodeId id : node_prop_changes_[v]) {
        if (node_intervals_[id].VisibleAt(from) &&
            node_intervals_[id].VisibleAt(to)) {
          changed.push_back(id);
        }
      }
    }
    std::sort(changed.begin(), changed.end());
    changed.erase(std::unique(changed.begin(), changed.end()),
                  changed.end());
    diff.property_changed_nodes = std::move(changed);
  }
  return diff;
}

uint64_t VersionStore::DeltaBytes() const {
  uint64_t bytes = store_.EstimateMemory().total();
  bytes += node_intervals_.size() * sizeof(Interval);
  bytes += edge_intervals_.size() * sizeof(Interval);
  for (const auto& [id, history] : node_prop_history_) {
    for (const auto& [version, props] : history) {
      bytes += sizeof(version) + props.byte_size() + 24;
    }
  }
  for (const auto& [id, history] : edge_prop_history_) {
    for (const auto& [version, props] : history) {
      bytes += sizeof(version) + props.byte_size() + 24;
    }
  }
  return bytes;
}

}  // namespace frappe::temporal
