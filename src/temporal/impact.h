#ifndef FRAPPE_TEMPORAL_IMPACT_H_
#define FRAPPE_TEMPORAL_IMPACT_H_

#include <vector>

#include "model/schema.h"
#include "temporal/version_store.h"

namespace frappe::temporal {

// Software change impact analysis across versions (paper Section 6.3:
// "understanding what has changed between versions and the wider effects
// of those changes is a common and difficult task in large codebases").
struct ImpactReport {
  // Functions added, removed, or with changed properties/edges.
  std::vector<graph::NodeId> changed_functions;
  // Everything that transitively calls a changed function at `to` —
  // the code whose behaviour the change can affect.
  std::vector<graph::NodeId> impacted_functions;
};

// `threads = 1` (default) runs the sequential slice; any other value
// builds a CSR snapshot of the `to` view and runs the parallel frontier
// kernel on that many lanes (0 = FRAPPE_THREADS / hardware concurrency).
// The report is identical either way.
Result<ImpactReport> ChangeImpact(const VersionStore& store,
                                  const model::Schema& schema, Version from,
                                  Version to, size_t threads = 1);

}  // namespace frappe::temporal

#endif  // FRAPPE_TEMPORAL_IMPACT_H_
