#include "temporal/impact.h"

#include <algorithm>
#include <unordered_set>

#include "analysis/slicing.h"
#include "graph/csr_view.h"

namespace frappe::temporal {

using graph::NodeId;
using model::NodeKind;

Result<ImpactReport> ChangeImpact(const VersionStore& store,
                                  const model::Schema& schema, Version from,
                                  Version to, size_t threads) {
  FRAPPE_ASSIGN_OR_RETURN(VersionStore::Diff diff,
                          store.ComputeDiff(from, to));
  FRAPPE_ASSIGN_OR_RETURN(std::unique_ptr<VersionView> view,
                          store.ViewAt(to));

  graph::TypeId fn_type = schema.node_type(NodeKind::kFunction);
  std::unordered_set<NodeId> changed;
  auto consider = [&](NodeId id) {
    if (id < store.raw_store().NodeIdUpperBound() &&
        store.raw_store().NodeType(id) == fn_type) {
      changed.insert(id);
    }
  };
  for (NodeId id : diff.added_nodes) consider(id);
  for (NodeId id : diff.property_changed_nodes) consider(id);
  // Edge changes implicate their function endpoints.
  for (graph::EdgeId e : diff.added_edges) {
    graph::Edge edge = store.raw_store().GetEdge(e);
    consider(edge.src);
  }
  for (graph::EdgeId e : diff.removed_edges) {
    graph::Edge edge = store.raw_store().GetEdge(e);
    consider(edge.src);
  }
  // A removed function impacts its (still existing) callers too; seed the
  // slice from its callers at `to`.
  std::vector<NodeId> seeds(changed.begin(), changed.end());
  for (NodeId removed : diff.removed_nodes) {
    if (store.raw_store().NodeType(removed) != fn_type) continue;
    view->ForEachEdge(removed, graph::Direction::kIn,
                      [&](graph::EdgeId, NodeId) { return true; });
    // Callers at `from` that survive at `to`:
    FRAPPE_ASSIGN_OR_RETURN(std::unique_ptr<VersionView> old_view,
                            store.ViewAt(from));
    old_view->ForEachEdge(
        removed, graph::Direction::kIn, [&](graph::EdgeId e, NodeId from_n) {
          if (schema.edge_kind(old_view->GetEdge(e).type) ==
                  model::EdgeKind::kCalls &&
              view->NodeExists(from_n)) {
            seeds.push_back(from_n);
            changed.insert(from_n);
          }
          return true;
        });
  }

  ImpactReport report;
  report.changed_functions.assign(changed.begin(), changed.end());
  std::sort(report.changed_functions.begin(),
            report.changed_functions.end());

  // Forward slice at `to`: transitive callers of every changed function,
  // restricted to nodes that exist at `to`.
  std::vector<NodeId> live_seeds;
  for (NodeId id : seeds) {
    if (view->NodeExists(id)) live_seeds.push_back(id);
  }
  // The direction-optimizing CSR kernel beats the sequential visited-set
  // walk even single-threaded, so every lane count goes through it.
  graph::CsrView csr = graph::CsrView::Build(*view);
  report.impacted_functions = analysis::ParallelImpactSet(
      csr, schema, live_seeds, {model::EdgeKind::kCalls},
      graph::Direction::kIn, threads);
  return report;
}

}  // namespace frappe::temporal
