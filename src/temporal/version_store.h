#ifndef FRAPPE_TEMPORAL_VERSION_STORE_H_
#define FRAPPE_TEMPORAL_VERSION_STORE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "common/status.h"
#include "graph/graph_store.h"
#include "graph/graph_view.h"
#include "graph/snapshot.h"

namespace frappe::temporal {

using Version = uint32_t;
inline constexpr Version kLive = 0xFFFFFFFFu;

class VersionView;

// Multi-version property graph (paper Section 6.3): stores an evolving
// codebase's graph as one append-only store plus per-entity lifetime
// intervals and property histories, LLAMA-style, instead of a full copy
// per version. "As large codebases evolve slowly, most of the graph data
// extracted remains the same from one version to the next" — so the delta
// representation stores each unchanged node/edge exactly once, and any
// committed version can be queried through a point-in-time GraphView.
//
// Usage: mutate (AddNode/AddEdge/Remove*/Set*Property), then
// CommitVersion() to seal the state as the next version. ViewAt(v) returns
// a GraphView of any committed version; every traversal, analysis, query
// and code-map facility runs on it unchanged.
class VersionStore {
 public:
  VersionStore() = default;
  VersionStore(const VersionStore&) = delete;
  VersionStore& operator=(const VersionStore&) = delete;

  // --- mutation (affects the in-progress version) ---

  graph::NodeId AddNode(graph::TypeId type);
  graph::NodeId AddNode(std::string_view type_name) {
    return AddNode(store_.InternNodeType(type_name));
  }
  graph::EdgeId AddEdge(graph::NodeId src, graph::NodeId dst,
                        graph::TypeId type);
  graph::EdgeId AddEdge(graph::NodeId src, graph::NodeId dst,
                        std::string_view type_name) {
    return AddEdge(src, dst, store_.InternEdgeType(type_name));
  }
  void RemoveNode(graph::NodeId id);  // cascades to live incident edges
  void RemoveEdge(graph::EdgeId id);
  void SetNodeProperty(graph::NodeId id, graph::KeyId key,
                       graph::Value value);
  void SetEdgeProperty(graph::EdgeId id, graph::KeyId key,
                       graph::Value value);

  graph::GraphStore& raw_store() { return store_; }
  const graph::GraphStore& raw_store() const { return store_; }

  // --- versioning ---

  // Seals the current state as the next version; returns its number
  // (0-based).
  Version CommitVersion();
  size_t VersionCount() const { return committed_; }

  // Point-in-time view of a committed version. The view borrows this
  // store; it stays valid while the store lives (append-only design).
  Result<std::unique_ptr<VersionView>> ViewAt(Version version) const;

  // Materializes one committed version as a crash-safe on-disk snapshot
  // (the v2 checksummed format — see graph/snapshot.h). The saved file
  // reloads as a plain GraphStore; dead id slots become tombstones, so ids
  // survive the round trip. Each saved version also embeds a cardinality
  // stats catalog built from its point-in-time view (unless `options`
  // already carries one). Returns the per-section byte sizes.
  Result<graph::SnapshotSizes> SaveVersion(
      Version version, const std::string& path,
      const graph::SnapshotOptions& options = {}) const;

  // Materializes one committed version as a standalone GraphStore that
  // shares nothing with this store — the commit seam for epoch-based
  // snapshot publication: a server thread can hand the result to readers
  // and keep mutating this store freely. Id layout is preserved exactly
  // (entities dead at `version` become tombstones), and the schema
  // vocabularies + string pool are re-interned in id order, so ids, type
  // ids and property StringRefs all carry over verbatim.
  Result<std::unique_ptr<graph::GraphStore>> MaterializeVersion(
      Version version) const;

  // --- change analysis ---

  struct Diff {
    std::vector<graph::NodeId> added_nodes, removed_nodes;
    std::vector<graph::EdgeId> added_edges, removed_edges;
    std::vector<graph::NodeId> property_changed_nodes;

    bool empty() const {
      return added_nodes.empty() && removed_nodes.empty() &&
             added_edges.empty() && removed_edges.empty() &&
             property_changed_nodes.empty();
    }
  };
  Result<Diff> ComputeDiff(Version from, Version to) const;

  // Approximate resident bytes of the delta representation (the whole
  // multi-version store).
  uint64_t DeltaBytes() const;

 private:
  friend class VersionView;

  struct Interval {
    Version from = 0;
    Version to = kLive;  // exclusive: visible in [from, to)

    bool VisibleAt(Version v) const { return from <= v && v < to; }
  };
  // Property history entry: the full map as of version `since`.
  using PropHistory = std::vector<std::pair<Version, graph::PropertyMap>>;

  bool NodeAliveNow(graph::NodeId id) const {
    return id < node_intervals_.size() &&
           node_intervals_[id].to == kLive;
  }
  bool EdgeAliveNow(graph::EdgeId id) const {
    return id < edge_intervals_.size() &&
           edge_intervals_[id].to == kLive;
  }

  void SnapshotPropsBeforeChange(graph::NodeId id, bool is_edge);

  const graph::PropertyMap& PropsAt(bool is_edge, uint32_t id,
                                    Version version) const;

  graph::GraphStore store_;  // latest state; liveness managed here
  std::vector<Interval> node_intervals_;
  std::vector<Interval> edge_intervals_;
  std::map<graph::NodeId, PropHistory> node_prop_history_;
  std::map<graph::EdgeId, PropHistory> edge_prop_history_;
  // Nodes/edges whose properties changed during each era.
  std::vector<std::vector<graph::NodeId>> node_prop_changes_;
  std::vector<std::vector<graph::EdgeId>> edge_prop_changes_;
  std::vector<std::pair<uint64_t, uint64_t>> counts_;  // per version
  Version committed_ = 0;  // number of sealed versions; current era index
};

// Read-only GraphView of one committed version.
class VersionView final : public graph::GraphView {
 public:
  VersionView(const VersionStore* store, Version version)
      : store_(*store), version_(version) {}

  const graph::NameRegistry& node_types() const override {
    return store_.store_.node_types();
  }
  const graph::NameRegistry& edge_types() const override {
    return store_.store_.edge_types();
  }
  const graph::NameRegistry& keys() const override {
    return store_.store_.keys();
  }
  const graph::StringPool& strings() const override {
    return store_.store_.strings();
  }

  size_t NodeCount() const override {
    return store_.counts_[version_].first;
  }
  size_t EdgeCount() const override {
    return store_.counts_[version_].second;
  }
  graph::NodeId NodeIdUpperBound() const override {
    return static_cast<graph::NodeId>(store_.node_intervals_.size());
  }
  graph::EdgeId EdgeIdUpperBound() const override {
    return static_cast<graph::EdgeId>(store_.edge_intervals_.size());
  }
  bool NodeExists(graph::NodeId id) const override {
    return id < store_.node_intervals_.size() &&
           store_.node_intervals_[id].VisibleAt(version_);
  }
  bool EdgeExists(graph::EdgeId id) const override {
    return id < store_.edge_intervals_.size() &&
           store_.edge_intervals_[id].VisibleAt(version_);
  }

  graph::TypeId NodeType(graph::NodeId id) const override {
    return store_.store_.NodeType(id);
  }
  graph::Edge GetEdge(graph::EdgeId id) const override {
    return store_.store_.GetEdge(id);
  }
  graph::Value GetNodeProperty(graph::NodeId id,
                               graph::KeyId key) const override {
    return NodeProperties(id).Get(key);
  }
  graph::Value GetEdgeProperty(graph::EdgeId id,
                               graph::KeyId key) const override {
    return EdgeProperties(id).Get(key);
  }
  const graph::PropertyMap& NodeProperties(
      graph::NodeId id) const override {
    return store_.PropsAt(/*is_edge=*/false, id, version_);
  }
  const graph::PropertyMap& EdgeProperties(
      graph::EdgeId id) const override {
    return store_.PropsAt(/*is_edge=*/true, id, version_);
  }

  void ForEachEdge(graph::NodeId id, graph::Direction dir,
                   const EdgeVisitor& fn) const override {
    if (!NodeExists(id)) return;
    store_.store_.ForEachEdge(id, dir,
                              [&](graph::EdgeId e, graph::NodeId n) {
                                if (!EdgeExists(e)) return true;
                                return fn(e, n);
                              });
  }

  size_t OutDegree(graph::NodeId id) const override {
    size_t count = 0;
    ForEachEdge(id, graph::Direction::kOut,
                [&](graph::EdgeId, graph::NodeId) {
                  ++count;
                  return true;
                });
    return count;
  }
  size_t InDegree(graph::NodeId id) const override {
    size_t count = 0;
    ForEachEdge(id, graph::Direction::kIn,
                [&](graph::EdgeId, graph::NodeId) {
                  ++count;
                  return true;
                });
    return count;
  }

  Version version() const { return version_; }

 private:
  const VersionStore& store_;
  Version version_;
};

}  // namespace frappe::temporal

#endif  // FRAPPE_TEMPORAL_VERSION_STORE_H_
