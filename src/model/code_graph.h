#ifndef FRAPPE_MODEL_CODE_GRAPH_H_
#define FRAPPE_MODEL_CODE_GRAPH_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "graph/graph_store.h"
#include "graph/indexes.h"
#include "model/schema.h"

namespace frappe::model {

// Half-open-ish source range as the paper stores it: 1-based line/column of
// the first and last character of the range, plus the id of the file node
// the range lies in (ranges cannot use the edge endpoints' files because of
// macro expansion — paper Section 6.2).
struct SourceRange {
  int64_t file_id = -1;
  int64_t start_line = 0;
  int64_t start_col = 0;
  int64_t end_line = 0;
  int64_t end_col = 0;

  bool valid() const { return file_id >= 0 && start_line > 0; }
  bool operator==(const SourceRange&) const = default;
};

// Schema-aware facade over a GraphStore for building and reading Frappé
// code graphs. All node/edge types and property keys go through the
// installed Schema; the checked mutation API enforces the structural
// constraints of Table 1 (e.g. `calls` edges connect function-like nodes).
class CodeGraph {
 public:
  enum class Validation {
    kStrict,  // AddEdge returns InvalidArgument on constraint violations
    kOff,     // constraints skipped (bulk loads from trusted sources)
  };

  explicit CodeGraph(Validation validation = Validation::kStrict);

  graph::GraphStore& store() { return store_; }
  const graph::GraphStore& store() const { return store_; }
  const graph::GraphView& view() const { return store_; }
  const Schema& schema() const { return schema_; }

  // --- Node construction ---

  graph::NodeId AddNode(NodeKind kind, std::string_view short_name);

  void SetShortName(graph::NodeId id, std::string_view name);
  void SetName(graph::NodeId id, std::string_view name);
  void SetLongName(graph::NodeId id, std::string_view name);
  void SetEnumValue(graph::NodeId id, int64_t value);
  void MarkVariadic(graph::NodeId id);
  void MarkVirtual(graph::NodeId id);
  void MarkInMacro(graph::NodeId id);

  // Primitive type nodes (`int`, `char`, ...) are shared across the whole
  // graph; repeated requests return the same node. This is what gives the
  // paper's Figure 7 its extreme hubs.
  graph::NodeId Primitive(std::string_view name);

  // --- Edge construction ---

  // Validates endpoints per `ValidEndpoints` when in strict mode.
  Result<graph::EdgeId> AddEdge(EdgeKind kind, graph::NodeId src,
                                graph::NodeId dst);
  // Bypasses validation (still requires live endpoints).
  graph::EdgeId AddEdgeUnchecked(EdgeKind kind, graph::NodeId src,
                                 graph::NodeId dst);

  void SetUseRange(graph::EdgeId id, const SourceRange& range);
  void SetNameRange(graph::EdgeId id, const SourceRange& range);
  void SetQualifiers(graph::EdgeId id, std::string_view codes);
  void SetArrayLengths(graph::EdgeId id, std::string_view dims);
  void SetBitWidth(graph::EdgeId id, int64_t bits);
  void SetParamIndex(graph::EdgeId id, int64_t index);
  void SetLinkOrder(graph::EdgeId id, int64_t order);

  // --- Reads ---

  NodeKind KindOf(graph::NodeId id) const {
    return schema_.node_kind(store_.NodeType(id));
  }
  EdgeKind EdgeKindOf(graph::EdgeId id) const {
    return schema_.edge_kind(store_.GetEdge(id).type);
  }
  std::string_view ShortName(graph::NodeId id) const {
    return store_.GetNodeString(id, schema_.key(PropKey::kShortName));
  }
  SourceRange UseRange(graph::EdgeId id) const;
  SourceRange NameRange(graph::EdgeId id) const;

  graph::TypeId type_id(NodeKind kind) const { return schema_.node_type(kind); }
  graph::TypeId type_id(EdgeKind kind) const { return schema_.edge_type(kind); }
  graph::KeyId key_id(PropKey key) const { return schema_.key(key); }

  // --- Indexing ---

  // The auto-index fields Frappé exposes: short_name, name, long_name and
  // the synthetic "type" field over node labels.
  std::vector<graph::NameIndex::FieldSpec> IndexFields() const;
  graph::NameIndex BuildNameIndex() const;

 private:
  void SetRange(graph::EdgeId id, const SourceRange& range, PropKey file,
                PropKey sl, PropKey sc, PropKey el, PropKey ec);

  Validation validation_;
  graph::GraphStore store_;
  Schema schema_;
  std::unordered_map<std::string, graph::NodeId> primitives_;
};

}  // namespace frappe::model

#endif  // FRAPPE_MODEL_CODE_GRAPH_H_
