#include "model/schema.h"

#include <array>
#include <string>

#include "common/string_util.h"

namespace frappe::model {

namespace {

constexpr size_t kNodeCount = static_cast<size_t>(NodeKind::kCount);
constexpr size_t kEdgeCount = static_cast<size_t>(EdgeKind::kCount);
constexpr size_t kPropCount = static_cast<size_t>(PropKey::kCount);

constexpr std::array<std::string_view, kNodeCount> kNodeNames = {
    "directory",   "enum_def",    "enumerator", "field",
    "file",        "function",    "function_decl", "function_type",
    "global",      "global_decl", "local",      "macro",
    "module",      "parameter",   "primitive",  "static_local",
    "struct",      "struct_decl", "typedef",    "union",
    "union_decl",
};

constexpr std::array<std::string_view, kEdgeCount> kEdgeNames = {
    "calls",
    "casts_to",
    "compiled_from",
    "contains",
    "declares",
    "dereferences",
    "dereferences_member",
    "dir_contains",
    "expands_macro",
    "file_contains",
    "gets_align_of",
    "gets_size_of",
    "has_local",
    "has_param",
    "has_param_type",
    "has_ret_type",
    "includes",
    "interrogates_macro",
    "isa_type",
    "link_declares",
    "link_matches",
    "linked_from",
    "linked_from_lib",
    "reads",
    "reads_member",
    "takes_address_of",
    "takes_address_of_member",
    "uses_enumerator",
    "writes",
    "writes_member",
};

constexpr std::array<std::string_view, kPropCount> kPropNames = {
    "short_name",      "name",          "long_name",      "value",
    "variadic",        "virtual",       "in_macro",       "use_file_id",
    "use_start_line",  "use_start_col", "use_end_line",   "use_end_col",
    "name_file_id",    "name_start_line", "name_start_col", "name_end_line",
    "name_end_col",    "array_lengths", "bit_width",      "qualifiers",
    "index",           "link_order",
};

constexpr std::array<std::string_view,
                     static_cast<size_t>(NodeGroup::kCount)>
    kNodeGroupNames = {"symbol", "type", "container"};

constexpr std::array<std::string_view,
                     static_cast<size_t>(EdgeGroup::kCount)>
    kEdgeGroupNames = {"link", "preprocessor", "containment", "reference"};

// Group membership tables.
bool NodeGroupTable(NodeKind kind, NodeGroup group) {
  switch (group) {
    case NodeGroup::kSymbol:
      switch (kind) {
        case NodeKind::kEnumerator:
        case NodeKind::kField:
        case NodeKind::kFunction:
        case NodeKind::kFunctionDecl:
        case NodeKind::kGlobal:
        case NodeKind::kGlobalDecl:
        case NodeKind::kLocal:
        case NodeKind::kMacro:
        case NodeKind::kParameter:
        case NodeKind::kStaticLocal:
        case NodeKind::kStruct:
        case NodeKind::kStructDecl:
        case NodeKind::kTypedef:
        case NodeKind::kUnion:
        case NodeKind::kUnionDecl:
        case NodeKind::kEnumDef:
          return true;
        default:
          return false;
      }
    case NodeGroup::kType:
      switch (kind) {
        case NodeKind::kEnumDef:
        case NodeKind::kFunctionType:
        case NodeKind::kPrimitive:
        case NodeKind::kStruct:
        case NodeKind::kStructDecl:
        case NodeKind::kTypedef:
        case NodeKind::kUnion:
        case NodeKind::kUnionDecl:
          return true;
        default:
          return false;
      }
    case NodeGroup::kContainer:
      switch (kind) {
        case NodeKind::kDirectory:
        case NodeKind::kEnumDef:
        case NodeKind::kFile:
        case NodeKind::kModule:
        case NodeKind::kStruct:
        case NodeKind::kUnion:
          return true;
        default:
          return false;
      }
    default:
      return false;
  }
}

bool EdgeGroupTable(EdgeKind kind, EdgeGroup group) {
  switch (group) {
    case EdgeGroup::kLink:
      switch (kind) {
        case EdgeKind::kCompiledFrom:
        case EdgeKind::kLinkDeclares:
        case EdgeKind::kLinkMatches:
        case EdgeKind::kLinkedFrom:
        case EdgeKind::kLinkedFromLib:
          return true;
        default:
          return false;
      }
    case EdgeGroup::kPreprocessor:
      switch (kind) {
        case EdgeKind::kExpandsMacro:
        case EdgeKind::kIncludes:
        case EdgeKind::kInterrogatesMacro:
          return true;
        default:
          return false;
      }
    case EdgeGroup::kContainment:
      switch (kind) {
        case EdgeKind::kContains:
        case EdgeKind::kDeclares:
        case EdgeKind::kDirContains:
        case EdgeKind::kFileContains:
        case EdgeKind::kHasLocal:
        case EdgeKind::kHasParam:
          return true;
        default:
          return false;
      }
    case EdgeGroup::kReference:
      switch (kind) {
        case EdgeKind::kCalls:
        case EdgeKind::kCastsTo:
        case EdgeKind::kDereferences:
        case EdgeKind::kDereferencesMember:
        case EdgeKind::kGetsAlignOf:
        case EdgeKind::kGetsSizeOf:
        case EdgeKind::kHasParamType:
        case EdgeKind::kHasRetType:
        case EdgeKind::kIsaType:
        case EdgeKind::kReads:
        case EdgeKind::kReadsMember:
        case EdgeKind::kTakesAddressOf:
        case EdgeKind::kTakesAddressOfMember:
        case EdgeKind::kUsesEnumerator:
        case EdgeKind::kWrites:
        case EdgeKind::kWritesMember:
          return true;
        default:
          return false;
      }
    default:
      return false;
  }
}

bool IsFunctionLike(NodeKind k) {
  return k == NodeKind::kFunction || k == NodeKind::kFunctionDecl;
}
bool IsVariableLike(NodeKind k) {
  return k == NodeKind::kGlobal || k == NodeKind::kGlobalDecl ||
         k == NodeKind::kLocal || k == NodeKind::kStaticLocal ||
         k == NodeKind::kParameter || k == NodeKind::kField;
}
bool IsTypeLike(NodeKind k) { return NodeGroupTable(k, NodeGroup::kType); }
bool IsRecordLike(NodeKind k) {
  return k == NodeKind::kStruct || k == NodeKind::kUnion ||
         k == NodeKind::kStructDecl || k == NodeKind::kUnionDecl ||
         k == NodeKind::kTypedef;  // typedef of a record used as member base
}

}  // namespace

std::string_view NodeKindName(NodeKind kind) {
  size_t i = static_cast<size_t>(kind);
  return i < kNodeCount ? kNodeNames[i] : std::string_view();
}
std::string_view EdgeKindName(EdgeKind kind) {
  size_t i = static_cast<size_t>(kind);
  return i < kEdgeCount ? kEdgeNames[i] : std::string_view();
}
std::string_view PropKeyName(PropKey key) {
  size_t i = static_cast<size_t>(key);
  return i < kPropCount ? kPropNames[i] : std::string_view();
}
std::string_view NodeGroupName(NodeGroup group) {
  size_t i = static_cast<size_t>(group);
  return i < kNodeGroupNames.size() ? kNodeGroupNames[i] : std::string_view();
}
std::string_view EdgeGroupName(EdgeGroup group) {
  size_t i = static_cast<size_t>(group);
  return i < kEdgeGroupNames.size() ? kEdgeGroupNames[i] : std::string_view();
}

NodeKind NodeKindFromName(std::string_view name) {
  std::string lowered = ToLower(name);
  for (size_t i = 0; i < kNodeCount; ++i) {
    if (kNodeNames[i] == lowered) return static_cast<NodeKind>(i);
  }
  return NodeKind::kCount;
}
EdgeKind EdgeKindFromName(std::string_view name) {
  std::string lowered = ToLower(name);
  for (size_t i = 0; i < kEdgeCount; ++i) {
    if (kEdgeNames[i] == lowered) return static_cast<EdgeKind>(i);
  }
  return EdgeKind::kCount;
}
PropKey PropKeyFromName(std::string_view name) {
  std::string canonical = CanonicalPropertyName(name);
  for (size_t i = 0; i < kPropCount; ++i) {
    if (kPropNames[i] == canonical) return static_cast<PropKey>(i);
  }
  return PropKey::kCount;
}
NodeGroup NodeGroupFromName(std::string_view name) {
  std::string lowered = ToLower(name);
  for (size_t i = 0; i < kNodeGroupNames.size(); ++i) {
    if (kNodeGroupNames[i] == lowered) return static_cast<NodeGroup>(i);
  }
  return NodeGroup::kCount;
}
EdgeGroup EdgeGroupFromName(std::string_view name) {
  std::string lowered = ToLower(name);
  for (size_t i = 0; i < kEdgeGroupNames.size(); ++i) {
    if (kEdgeGroupNames[i] == lowered) return static_cast<EdgeGroup>(i);
  }
  return EdgeGroup::kCount;
}

std::string CanonicalPropertyName(std::string_view name) {
  std::string lowered = ToLower(name);
  // The paper uses both *_COL and *_COLUMN spellings (Figure 4 vs Table 2).
  if (EndsWith(lowered, "_column")) {
    lowered = lowered.substr(0, lowered.size() - 3);  // "_column" -> "_col"
  }
  return lowered;
}

bool InGroup(NodeKind kind, NodeGroup group) {
  return NodeGroupTable(kind, group);
}
bool InGroup(EdgeKind kind, EdgeGroup group) {
  return EdgeGroupTable(kind, group);
}

std::vector<NodeKind> GroupMembers(NodeGroup group) {
  std::vector<NodeKind> out;
  for (size_t i = 0; i < kNodeCount; ++i) {
    NodeKind kind = static_cast<NodeKind>(i);
    if (InGroup(kind, group)) out.push_back(kind);
  }
  return out;
}
std::vector<EdgeKind> GroupMembers(EdgeGroup group) {
  std::vector<EdgeKind> out;
  for (size_t i = 0; i < kEdgeCount; ++i) {
    EdgeKind kind = static_cast<EdgeKind>(i);
    if (InGroup(kind, group)) out.push_back(kind);
  }
  return out;
}

bool ValidEndpoints(EdgeKind kind, NodeKind src, NodeKind dst) {
  switch (kind) {
    case EdgeKind::kCalls:
      return IsFunctionLike(src) && IsFunctionLike(dst);
    case EdgeKind::kCastsTo:
    case EdgeKind::kGetsAlignOf:
    case EdgeKind::kGetsSizeOf:
      return IsFunctionLike(src) && IsTypeLike(dst);
    case EdgeKind::kCompiledFrom:
      return src == NodeKind::kModule && dst == NodeKind::kFile;
    case EdgeKind::kContains:
      // struct/union/enum contains fields/enumerators; nested records too.
      return (IsRecordLike(src) || src == NodeKind::kEnumDef) &&
             (dst == NodeKind::kField || dst == NodeKind::kEnumerator ||
              IsRecordLike(dst) || dst == NodeKind::kEnumDef);
    case EdgeKind::kDeclares:
      // A declaration declares its definition (decl -> def).
      return (src == NodeKind::kFunctionDecl && dst == NodeKind::kFunction) ||
             (src == NodeKind::kGlobalDecl && dst == NodeKind::kGlobal) ||
             (src == NodeKind::kStructDecl && dst == NodeKind::kStruct) ||
             (src == NodeKind::kUnionDecl && dst == NodeKind::kUnion);
    case EdgeKind::kDereferences:
    case EdgeKind::kReads:
    case EdgeKind::kWrites:
    case EdgeKind::kTakesAddressOf:
      return IsFunctionLike(src) &&
             (IsVariableLike(dst) || IsFunctionLike(dst));
    case EdgeKind::kDereferencesMember:
    case EdgeKind::kReadsMember:
    case EdgeKind::kWritesMember:
    case EdgeKind::kTakesAddressOfMember:
      return IsFunctionLike(src) && dst == NodeKind::kField;
    case EdgeKind::kDirContains:
      return src == NodeKind::kDirectory &&
             (dst == NodeKind::kDirectory || dst == NodeKind::kFile);
    case EdgeKind::kExpandsMacro:
    case EdgeKind::kInterrogatesMacro:
      // Functions, files (top-level expansion) and macros (nested expansion)
      // can use macros.
      return (IsFunctionLike(src) || src == NodeKind::kFile ||
              src == NodeKind::kMacro) &&
             dst == NodeKind::kMacro;
    case EdgeKind::kFileContains:
      return src == NodeKind::kFile;
    case EdgeKind::kHasLocal:
      return IsFunctionLike(src) && (dst == NodeKind::kLocal ||
                                     dst == NodeKind::kStaticLocal);
    case EdgeKind::kHasParam:
      return IsFunctionLike(src) && dst == NodeKind::kParameter;
    case EdgeKind::kHasParamType:
    case EdgeKind::kHasRetType:
      return (IsFunctionLike(src) || src == NodeKind::kFunctionType) &&
             IsTypeLike(dst);
    case EdgeKind::kIncludes:
      return src == NodeKind::kFile && dst == NodeKind::kFile;
    case EdgeKind::kIsaType:
      return (IsVariableLike(src) || src == NodeKind::kTypedef ||
              src == NodeKind::kGlobalDecl || src == NodeKind::kEnumerator) &&
             IsTypeLike(dst);
    case EdgeKind::kLinkDeclares:
      // A module's link step resolves a declaration (module -> decl).
      return src == NodeKind::kModule &&
             (dst == NodeKind::kFunctionDecl || dst == NodeKind::kGlobalDecl);
    case EdgeKind::kLinkMatches:
      // Declaration matched to its definition at link time.
      return (src == NodeKind::kFunctionDecl &&
              dst == NodeKind::kFunction) ||
             (src == NodeKind::kGlobalDecl && dst == NodeKind::kGlobal);
    case EdgeKind::kLinkedFrom:
    case EdgeKind::kLinkedFromLib:
      return src == NodeKind::kModule && dst == NodeKind::kModule;
    case EdgeKind::kUsesEnumerator:
      return IsFunctionLike(src) && dst == NodeKind::kEnumerator;
    default:
      return false;
  }
}

Schema Schema::Install(graph::GraphStore* store) {
  Schema schema;
  schema.node_ids_.reserve(kNodeCount);
  for (size_t i = 0; i < kNodeCount; ++i) {
    schema.node_ids_.push_back(store->InternNodeType(kNodeNames[i]));
  }
  schema.edge_ids_.reserve(kEdgeCount);
  for (size_t i = 0; i < kEdgeCount; ++i) {
    schema.edge_ids_.push_back(store->InternEdgeType(kEdgeNames[i]));
  }
  schema.key_ids_.reserve(kPropCount);
  for (size_t i = 0; i < kPropCount; ++i) {
    schema.key_ids_.push_back(store->InternKey(kPropNames[i]));
  }
  return schema;
}

NodeKind Schema::node_kind(graph::TypeId id) const {
  for (size_t i = 0; i < node_ids_.size(); ++i) {
    if (node_ids_[i] == id) return static_cast<NodeKind>(i);
  }
  return NodeKind::kCount;
}

EdgeKind Schema::edge_kind(graph::TypeId id) const {
  for (size_t i = 0; i < edge_ids_.size(); ++i) {
    if (edge_ids_[i] == id) return static_cast<EdgeKind>(i);
  }
  return EdgeKind::kCount;
}

}  // namespace frappe::model
