#include "model/code_graph.h"

namespace frappe::model {

using graph::EdgeId;
using graph::NodeId;
using graph::Value;

CodeGraph::CodeGraph(Validation validation)
    : validation_(validation), schema_(Schema::Install(&store_)) {}

NodeId CodeGraph::AddNode(NodeKind kind, std::string_view short_name) {
  NodeId id = store_.AddNode(schema_.node_type(kind));
  if (!short_name.empty()) SetShortName(id, short_name);
  return id;
}

void CodeGraph::SetShortName(NodeId id, std::string_view name) {
  store_.SetNodeProperty(id, schema_.key(PropKey::kShortName),
                         store_.StringValue(name));
}
void CodeGraph::SetName(NodeId id, std::string_view name) {
  store_.SetNodeProperty(id, schema_.key(PropKey::kName),
                         store_.StringValue(name));
}
void CodeGraph::SetLongName(NodeId id, std::string_view name) {
  store_.SetNodeProperty(id, schema_.key(PropKey::kLongName),
                         store_.StringValue(name));
}
void CodeGraph::SetEnumValue(NodeId id, int64_t value) {
  store_.SetNodeProperty(id, schema_.key(PropKey::kValue), Value::Int(value));
}
void CodeGraph::MarkVariadic(NodeId id) {
  store_.SetNodeProperty(id, schema_.key(PropKey::kVariadic),
                         Value::Bool(true));
}
void CodeGraph::MarkVirtual(NodeId id) {
  store_.SetNodeProperty(id, schema_.key(PropKey::kVirtual),
                         Value::Bool(true));
}
void CodeGraph::MarkInMacro(NodeId id) {
  store_.SetNodeProperty(id, schema_.key(PropKey::kInMacro),
                         Value::Bool(true));
}

NodeId CodeGraph::Primitive(std::string_view name) {
  auto it = primitives_.find(std::string(name));
  if (it != primitives_.end()) return it->second;
  NodeId id = AddNode(NodeKind::kPrimitive, name);
  SetName(id, name);
  SetLongName(id, name);
  primitives_.emplace(std::string(name), id);
  return id;
}

Result<EdgeId> CodeGraph::AddEdge(EdgeKind kind, NodeId src, NodeId dst) {
  if (!store_.NodeExists(src) || !store_.NodeExists(dst)) {
    return Status::InvalidArgument("edge endpoint does not exist");
  }
  if (validation_ == Validation::kStrict) {
    NodeKind src_kind = KindOf(src);
    NodeKind dst_kind = KindOf(dst);
    if (!ValidEndpoints(kind, src_kind, dst_kind)) {
      return Status::InvalidArgument(
          std::string("invalid '") + std::string(EdgeKindName(kind)) +
          "' edge: " + std::string(NodeKindName(src_kind)) + " -> " +
          std::string(NodeKindName(dst_kind)));
    }
  }
  return store_.AddEdge(src, dst, schema_.edge_type(kind));
}

EdgeId CodeGraph::AddEdgeUnchecked(EdgeKind kind, NodeId src, NodeId dst) {
  return store_.AddEdge(src, dst, schema_.edge_type(kind));
}

void CodeGraph::SetRange(EdgeId id, const SourceRange& range, PropKey file,
                         PropKey sl, PropKey sc, PropKey el, PropKey ec) {
  store_.SetEdgeProperty(id, schema_.key(file), Value::Int(range.file_id));
  store_.SetEdgeProperty(id, schema_.key(sl), Value::Int(range.start_line));
  store_.SetEdgeProperty(id, schema_.key(sc), Value::Int(range.start_col));
  store_.SetEdgeProperty(id, schema_.key(el), Value::Int(range.end_line));
  store_.SetEdgeProperty(id, schema_.key(ec), Value::Int(range.end_col));
}

void CodeGraph::SetUseRange(EdgeId id, const SourceRange& range) {
  SetRange(id, range, PropKey::kUseFileId, PropKey::kUseStartLine,
           PropKey::kUseStartCol, PropKey::kUseEndLine, PropKey::kUseEndCol);
}
void CodeGraph::SetNameRange(EdgeId id, const SourceRange& range) {
  SetRange(id, range, PropKey::kNameFileId, PropKey::kNameStartLine,
           PropKey::kNameStartCol, PropKey::kNameEndLine,
           PropKey::kNameEndCol);
}
void CodeGraph::SetQualifiers(EdgeId id, std::string_view codes) {
  store_.SetEdgeProperty(id, schema_.key(PropKey::kQualifiers),
                         store_.StringValue(codes));
}
void CodeGraph::SetArrayLengths(EdgeId id, std::string_view dims) {
  store_.SetEdgeProperty(id, schema_.key(PropKey::kArrayLengths),
                         store_.StringValue(dims));
}
void CodeGraph::SetBitWidth(EdgeId id, int64_t bits) {
  store_.SetEdgeProperty(id, schema_.key(PropKey::kBitWidth),
                         Value::Int(bits));
}
void CodeGraph::SetParamIndex(EdgeId id, int64_t index) {
  store_.SetEdgeProperty(id, schema_.key(PropKey::kIndex), Value::Int(index));
}
void CodeGraph::SetLinkOrder(EdgeId id, int64_t order) {
  store_.SetEdgeProperty(id, schema_.key(PropKey::kLinkOrder),
                         Value::Int(order));
}

SourceRange CodeGraph::UseRange(EdgeId id) const {
  SourceRange r;
  graph::Value file =
      store_.GetEdgeProperty(id, schema_.key(PropKey::kUseFileId));
  r.file_id = file.is_null() ? -1 : file.AsInt();
  r.start_line =
      store_.GetEdgeProperty(id, schema_.key(PropKey::kUseStartLine)).AsInt();
  r.start_col =
      store_.GetEdgeProperty(id, schema_.key(PropKey::kUseStartCol)).AsInt();
  r.end_line =
      store_.GetEdgeProperty(id, schema_.key(PropKey::kUseEndLine)).AsInt();
  r.end_col =
      store_.GetEdgeProperty(id, schema_.key(PropKey::kUseEndCol)).AsInt();
  return r;
}

SourceRange CodeGraph::NameRange(EdgeId id) const {
  SourceRange r;
  graph::Value file =
      store_.GetEdgeProperty(id, schema_.key(PropKey::kNameFileId));
  r.file_id = file.is_null() ? -1 : file.AsInt();
  r.start_line =
      store_.GetEdgeProperty(id, schema_.key(PropKey::kNameStartLine)).AsInt();
  r.start_col =
      store_.GetEdgeProperty(id, schema_.key(PropKey::kNameStartCol)).AsInt();
  r.end_line =
      store_.GetEdgeProperty(id, schema_.key(PropKey::kNameEndLine)).AsInt();
  r.end_col =
      store_.GetEdgeProperty(id, schema_.key(PropKey::kNameEndCol)).AsInt();
  return r;
}

std::vector<graph::NameIndex::FieldSpec> CodeGraph::IndexFields() const {
  return {
      {"short_name", schema_.key(PropKey::kShortName), false},
      {"name", schema_.key(PropKey::kName), false},
      {"long_name", schema_.key(PropKey::kLongName), false},
      {"type", graph::kInvalidKey, true},
  };
}

graph::NameIndex CodeGraph::BuildNameIndex() const {
  return graph::NameIndex::Build(store_, IndexFields());
}

}  // namespace frappe::model
