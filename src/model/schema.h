#ifndef FRAPPE_MODEL_SCHEMA_H_
#define FRAPPE_MODEL_SCHEMA_H_

#include <string_view>
#include <vector>

#include "graph/graph_store.h"
#include "graph/ids.h"

namespace frappe::model {

// Node types of the Frappé graph model (paper Table 1). Nodes represent
// "a range of entities from symbol definitions and declarations to macro
// definitions, source files, directories, and modules".
enum class NodeKind : uint16_t {
  kDirectory = 0,
  kEnumDef,
  kEnumerator,
  kField,
  kFile,
  kFunction,
  kFunctionDecl,
  kFunctionType,
  kGlobal,
  kGlobalDecl,
  kLocal,
  kMacro,
  kModule,  // linked outputs: executables, shared objects, object files
  kParameter,
  kPrimitive,
  kStaticLocal,
  kStruct,
  kStructDecl,
  kTypedef,
  kUnion,
  kUnionDecl,
  kCount,
};

// Edge types (paper Table 1): "directed associations between entities".
enum class EdgeKind : uint16_t {
  kCalls = 0,
  kCastsTo,
  kCompiledFrom,
  kContains,
  kDeclares,
  kDereferences,
  kDereferencesMember,
  kDirContains,
  kExpandsMacro,
  kFileContains,
  kGetsAlignOf,
  kGetsSizeOf,
  kHasLocal,
  kHasParam,
  kHasParamType,
  kHasRetType,
  kIncludes,
  kInterrogatesMacro,
  kIsaType,
  kLinkDeclares,
  kLinkMatches,
  kLinkedFrom,
  kLinkedFromLib,
  kReads,
  kReadsMember,
  kTakesAddressOf,
  kTakesAddressOfMember,
  kUsesEnumerator,
  kWrites,
  kWritesMember,
  kCount,
};

// Property keys (paper Table 2). Node TYPE is modeled as the node's label,
// not a property; the name index exposes it as the queryable field "type".
enum class PropKey : uint16_t {
  // --- node properties ---
  kShortName = 0,  // file name or symbol name, e.g. "main"
  kName,           // symbol name including its parent, e.g. "message::id"
  kLongName,       // fully qualified, e.g. "message::get_id(int)" or path
  kValue,          // enumerator integer value
  kVariadic,       // present (true) if the function is variadic
  kVirtual,        // present (true) if the function is virtual
  kInMacro,        // present if the node results from a macro expansion
  // --- edge properties: source range of the referencing expression ---
  kUseFileId,
  kUseStartLine,
  kUseStartCol,
  kUseEndLine,
  kUseEndCol,
  // --- edge properties: source range of the representative token ---
  kNameFileId,
  kNameStartLine,
  kNameStartCol,
  kNameEndLine,
  kNameEndCol,
  // --- isa_type edge qualifiers ---
  kArrayLengths,  // constant dimension sizes of declared arrays
  kBitWidth,      // bit width of bitfields
  kQualifiers,    // coded string: ']' array, '*' pointer, c/v/r cv-quals
  // --- positional ---
  kIndex,      // has_param / has_param_type parameter position
  kLinkOrder,  // linked_from link order
  kCount,
};

// Label groups (paper Table 6 / Section 6.2): Neo4j 2.x-style grouped
// labels so a query can say `(n:container:symbol)` instead of enumerating
// concrete TYPE values.
enum class NodeGroup : uint8_t {
  kSymbol = 0,
  kType,
  kContainer,
  kCount,
};

// Edge groups (Section 6.2 suggests link / preprocessor / containment /
// reference groupings).
enum class EdgeGroup : uint8_t {
  kLink = 0,
  kPreprocessor,
  kContainment,
  kReference,
  kCount,
};

// Canonical lowercase names as used in queries and stored registries.
std::string_view NodeKindName(NodeKind kind);
std::string_view EdgeKindName(EdgeKind kind);
std::string_view PropKeyName(PropKey key);
std::string_view NodeGroupName(NodeGroup group);
std::string_view EdgeGroupName(EdgeGroup group);

// Reverse lookups; return kCount when unknown. Lookup is case-insensitive.
NodeKind NodeKindFromName(std::string_view name);
EdgeKind EdgeKindFromName(std::string_view name);
PropKey PropKeyFromName(std::string_view name);
NodeGroup NodeGroupFromName(std::string_view name);
EdgeGroup EdgeGroupFromName(std::string_view name);

// Normalizes a property name: lowercases and resolves paper aliases
// (NAME_START_COLUMN -> name_start_col, USE_START_COLUMN -> use_start_col).
std::string CanonicalPropertyName(std::string_view name);

// Group membership.
bool InGroup(NodeKind kind, NodeGroup group);
bool InGroup(EdgeKind kind, EdgeGroup group);
std::vector<NodeKind> GroupMembers(NodeGroup group);
std::vector<EdgeKind> GroupMembers(EdgeGroup group);

// Structural constraint check: may an edge of `kind` connect `src` -> `dst`?
// (e.g. `calls` must leave a function-like node; `dir_contains` must leave a
// directory). Used by CodeGraph's checked mutation API.
bool ValidEndpoints(EdgeKind kind, NodeKind src, NodeKind dst);

// Interns the full schema vocabulary into `store` and records the id
// mappings. Installing into a fresh store yields identity mappings, but the
// class works against any store (e.g. one reloaded from a snapshot).
class Schema {
 public:
  static Schema Install(graph::GraphStore* store);

  graph::TypeId node_type(NodeKind kind) const {
    return node_ids_[static_cast<size_t>(kind)];
  }
  graph::TypeId edge_type(EdgeKind kind) const {
    return edge_ids_[static_cast<size_t>(kind)];
  }
  graph::KeyId key(PropKey key) const {
    return key_ids_[static_cast<size_t>(key)];
  }

  // Reverse mapping from store ids; returns kCount for non-schema ids.
  NodeKind node_kind(graph::TypeId id) const;
  EdgeKind edge_kind(graph::TypeId id) const;

 private:
  std::vector<graph::TypeId> node_ids_;
  std::vector<graph::TypeId> edge_ids_;
  std::vector<graph::KeyId> key_ids_;
};

}  // namespace frappe::model

#endif  // FRAPPE_MODEL_SCHEMA_H_
