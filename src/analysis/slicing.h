#ifndef FRAPPE_ANALYSIS_SLICING_H_
#define FRAPPE_ANALYSIS_SLICING_H_

#include <limits>
#include <vector>

#include "graph/csr_view.h"
#include "graph/graph_view.h"
#include "model/schema.h"

namespace frappe::analysis {

// Program-slicing approximations over the dependency graph (paper Section
// 4.4): the transitive closure of the call graph, the paper's simplest
// slice, plus generalizations over other edge kinds. These are the direct
// traversal implementations the paper fell back to when Cypher's
// transitive closure "does not terminate within 15 minutes" — they run in
// milliseconds (Section 6.1 footnote).

// Backward slice of `function`: everything it transitively calls — all
// functions that, if modified, could alter its behaviour.
std::vector<graph::NodeId> BackwardSlice(
    const graph::GraphView& view, const model::Schema& schema,
    graph::NodeId function,
    size_t max_depth = std::numeric_limits<size_t>::max());

// Forward slice: everything that transitively calls `function` — all code
// that may be affected if it changes.
std::vector<graph::NodeId> ForwardSlice(
    const graph::GraphView& view, const model::Schema& schema,
    graph::NodeId function,
    size_t max_depth = std::numeric_limits<size_t>::max());

// Generalized impact set over caller-supplied edge kinds and direction.
std::vector<graph::NodeId> ImpactSet(
    const graph::GraphView& view, const model::Schema& schema,
    const std::vector<graph::NodeId>& seeds,
    const std::vector<model::EdgeKind>& kinds, graph::Direction direction,
    size_t max_depth = std::numeric_limits<size_t>::max());

// "How much code could be affected if I change this macro?" — functions
// and files that expand or interrogate `macro`, widened through the
// forward call slice of each expanding function.
std::vector<graph::NodeId> MacroImpact(const graph::GraphView& view,
                                       const model::Schema& schema,
                                       graph::NodeId macro);

// Files transitively including `header` (include-impact).
std::vector<graph::NodeId> IncludeImpact(const graph::GraphView& view,
                                         const model::Schema& schema,
                                         graph::NodeId header);

// Parallel counterparts running the level-synchronous frontier kernel over
// a prebuilt CSR snapshot. Results are identical to the sequential
// functions above for every thread count; `threads = 0` resolves
// FRAPPE_THREADS / hardware concurrency, `threads = 1` runs the kernel
// inline on the caller.
std::vector<graph::NodeId> ParallelBackwardSlice(
    const graph::CsrView& csr, const model::Schema& schema,
    graph::NodeId function, size_t threads,
    size_t max_depth = std::numeric_limits<size_t>::max());
std::vector<graph::NodeId> ParallelForwardSlice(
    const graph::CsrView& csr, const model::Schema& schema,
    graph::NodeId function, size_t threads,
    size_t max_depth = std::numeric_limits<size_t>::max());
std::vector<graph::NodeId> ParallelImpactSet(
    const graph::CsrView& csr, const model::Schema& schema,
    const std::vector<graph::NodeId>& seeds,
    const std::vector<model::EdgeKind>& kinds, graph::Direction direction,
    size_t threads,
    size_t max_depth = std::numeric_limits<size_t>::max());

}  // namespace frappe::analysis

#endif  // FRAPPE_ANALYSIS_SLICING_H_
