#include "analysis/debugging.h"

#include <algorithm>
#include <unordered_set>

#include "graph/traversal.h"

namespace frappe::analysis {

using graph::Direction;
using graph::EdgeId;
using graph::NodeId;
using model::EdgeKind;
using model::PropKey;

std::vector<SuspectWrite> FindSuspectWrites(const graph::GraphView& view,
                                            const model::Schema& schema,
                                            NodeId known_good_fn,
                                            NodeId known_bad_fn,
                                            NodeId field,
                                            int64_t bounding_call_line) {
  graph::TypeId calls = schema.edge_type(EdgeKind::kCalls);
  graph::TypeId writes_member = schema.edge_type(EdgeKind::kWritesMember);
  graph::KeyId line_key = schema.key(PropKey::kUseStartLine);

  // Verify the bounding call exists (known_good -> known_bad at the line).
  bool bound_found = false;
  view.ForEachEdge(known_good_fn, Direction::kOut,
                   [&](EdgeId e, NodeId target) {
                     if (target == known_bad_fn &&
                         view.GetEdge(e).type == calls &&
                         view.GetEdgeProperty(e, line_key).AsInt() ==
                             bounding_call_line) {
                       bound_found = true;
                       return false;
                     }
                     return true;
                   });
  if (!bound_found) return {};

  // Call sites in known_good_fn at or before the bound.
  std::vector<NodeId> early_callees;
  view.ForEachEdge(known_good_fn, Direction::kOut,
                   [&](EdgeId e, NodeId target) {
                     if (view.GetEdge(e).type != calls) return true;
                     graph::Value line = view.GetEdgeProperty(e, line_key);
                     if (!line.is_null() &&
                         line.AsInt() <= bounding_call_line) {
                       early_callees.push_back(target);
                     }
                     return true;
                   });

  // Everything reachable from those call sites (including the callees
  // themselves).
  std::vector<NodeId> reachable = graph::TransitiveClosure(
      view, early_callees, graph::EdgeFilter::Of({calls}));
  std::unordered_set<NodeId> reachable_set(reachable.begin(),
                                           reachable.end());
  reachable_set.insert(early_callees.begin(), early_callees.end());

  // Writers of the field among the reachable set.
  std::vector<SuspectWrite> out;
  view.ForEachEdge(field, Direction::kIn, [&](EdgeId e, NodeId writer) {
    if (view.GetEdge(e).type != writes_member) return true;
    if (reachable_set.count(writer) == 0) return true;
    SuspectWrite suspect;
    suspect.writer = writer;
    suspect.write_edge = e;
    suspect.write_line = view.GetEdgeProperty(e, line_key).AsInt();
    out.push_back(suspect);
    return true;
  });
  std::sort(out.begin(), out.end(),
            [](const SuspectWrite& a, const SuspectWrite& b) {
              return a.write_line < b.write_line;
            });
  return out;
}

}  // namespace frappe::analysis
