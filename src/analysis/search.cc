#include "analysis/search.h"

#include <algorithm>
#include <unordered_set>

#include "common/string_util.h"
#include "graph/traversal.h"

namespace frappe::analysis {

using graph::EdgeFilter;
using graph::NodeId;
using model::EdgeKind;
using model::NodeKind;

std::vector<NodeId> ModuleFiles(const graph::GraphView& view,
                                const model::Schema& schema,
                                NodeId module) {
  EdgeFilter filter = EdgeFilter::Of({
      schema.edge_type(EdgeKind::kCompiledFrom),
      schema.edge_type(EdgeKind::kLinkedFrom),
      schema.edge_type(EdgeKind::kLinkedFromLib),
  });
  std::vector<NodeId> files;
  for (NodeId node : graph::TransitiveClosure(view, module, filter)) {
    if (schema.node_kind(view.NodeType(node)) == NodeKind::kFile) {
      files.push_back(node);
    }
  }
  return files;
}

std::vector<NodeId> DirectoryFiles(const graph::GraphView& view,
                                   const model::Schema& schema,
                                   NodeId directory) {
  EdgeFilter filter =
      EdgeFilter::Of({schema.edge_type(EdgeKind::kDirContains)});
  std::vector<NodeId> files;
  for (NodeId node : graph::TransitiveClosure(view, directory, filter)) {
    if (schema.node_kind(view.NodeType(node)) == NodeKind::kFile) {
      files.push_back(node);
    }
  }
  return files;
}

std::vector<SearchResult> CodeSearch(const graph::GraphView& view,
                                     const model::Schema& schema,
                                     const graph::NameIndex& index,
                                     const SearchQuery& query) {
  // Name lookup through the auto index.
  std::vector<NodeId> candidates;
  if (!query.name.empty() && query.name.back() == '~') {
    candidates = index.LookupFuzzy(
        "short_name", std::string_view(query.name).substr(
                          0, query.name.size() - 1), 2);
  } else if (HasWildcards(query.name)) {
    candidates = index.LookupWildcard("short_name", query.name);
  } else {
    candidates = index.Lookup("short_name", query.name);
  }

  // Scope filter: the set of files whose contents qualify.
  std::unordered_set<NodeId> allowed_files;
  bool scoped = false;
  if (query.module != graph::kInvalidNode) {
    scoped = true;
    for (NodeId f : ModuleFiles(view, schema, query.module)) {
      allowed_files.insert(f);
    }
  }
  if (query.directory != graph::kInvalidNode) {
    scoped = true;
    for (NodeId f : DirectoryFiles(view, schema, query.directory)) {
      allowed_files.insert(f);
    }
  }
  graph::TypeId file_contains =
      schema.edge_type(EdgeKind::kFileContains);

  std::vector<SearchResult> results;
  for (NodeId node : candidates) {
    if (results.size() >= query.limit) break;
    NodeKind kind = schema.node_kind(view.NodeType(node));
    if (query.kind != NodeKind::kCount && kind != query.kind) continue;
    if (query.group.has_value() && !model::InGroup(kind, *query.group)) {
      continue;
    }
    if (scoped) {
      bool in_scope = false;
      view.ForEachEdge(node, graph::Direction::kIn,
                       [&](graph::EdgeId e, NodeId from) {
                         if (view.GetEdge(e).type == file_contains &&
                             allowed_files.count(from) != 0) {
                           in_scope = true;
                           return false;
                         }
                         return true;
                       });
      if (!in_scope) continue;
    }
    SearchResult result;
    result.node = node;
    result.kind = kind;
    result.short_name = std::string(view.GetNodeString(
        node, schema.key(model::PropKey::kShortName)));
    results.push_back(std::move(result));
  }
  return results;
}

}  // namespace frappe::analysis
