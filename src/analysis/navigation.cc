#include "analysis/navigation.h"

namespace frappe::analysis {

using graph::EdgeId;
using graph::NodeId;
using model::EdgeKind;
using model::PropKey;

std::vector<NodeId> GoToDefinition(const graph::GraphView& view,
                                   const model::Schema& schema,
                                   const graph::NameIndex& index,
                                   const std::string& name,
                                   const CursorPosition& cursor) {
  graph::KeyId file_key = schema.key(PropKey::kNameFileId);
  graph::KeyId line_key = schema.key(PropKey::kNameStartLine);
  graph::KeyId col_key = schema.key(PropKey::kNameStartCol);
  std::vector<NodeId> out;
  for (NodeId candidate : index.Lookup("short_name", name)) {
    bool matches = false;
    view.ForEachEdge(candidate, graph::Direction::kIn,
                     [&](EdgeId e, NodeId) {
                       graph::Value file = view.GetEdgeProperty(e, file_key);
                       if (file.is_null() ||
                           file.AsInt() != cursor.file_id) {
                         return true;
                       }
                       if (view.GetEdgeProperty(e, line_key).AsInt() ==
                               cursor.line &&
                           view.GetEdgeProperty(e, col_key).AsInt() ==
                               cursor.col) {
                         matches = true;
                         return false;
                       }
                       return true;
                     });
    if (matches) out.push_back(candidate);
  }
  return out;
}

std::vector<Reference> FindReferences(const graph::GraphView& view,
                                      const model::Schema& schema,
                                      NodeId definition) {
  graph::KeyId use_file = schema.key(PropKey::kUseFileId);
  graph::KeyId use_sl = schema.key(PropKey::kUseStartLine);
  graph::KeyId use_sc = schema.key(PropKey::kUseStartCol);
  graph::KeyId use_el = schema.key(PropKey::kUseEndLine);
  graph::KeyId use_ec = schema.key(PropKey::kUseEndCol);
  std::vector<Reference> out;
  view.ForEachEdge(
      definition, graph::Direction::kIn, [&](EdgeId e, NodeId from) {
        EdgeKind kind = schema.edge_kind(view.GetEdge(e).type);
        if (kind == EdgeKind::kCount ||
            !model::InGroup(kind, model::EdgeGroup::kReference)) {
          return true;  // structural edges are not references
        }
        Reference ref;
        ref.edge = e;
        ref.from = from;
        ref.kind = kind;
        graph::Value file = view.GetEdgeProperty(e, use_file);
        ref.use.file_id = file.is_null() ? -1 : file.AsInt();
        ref.use.start_line = view.GetEdgeProperty(e, use_sl).AsInt();
        ref.use.start_col = view.GetEdgeProperty(e, use_sc).AsInt();
        ref.use.end_line = view.GetEdgeProperty(e, use_el).AsInt();
        ref.use.end_col = view.GetEdgeProperty(e, use_ec).AsInt();
        out.push_back(ref);
        return true;
      });
  return out;
}

}  // namespace frappe::analysis
