#ifndef FRAPPE_ANALYSIS_NAVIGATION_H_
#define FRAPPE_ANALYSIS_NAVIGATION_H_

#include <string>
#include <vector>

#include "graph/indexes.h"
#include "model/code_graph.h"
#include "model/schema.h"

namespace frappe::analysis {

// Cross-referencing and code navigation (paper Section 4.2).

// A position in a source file (file node id + 1-based line/column).
struct CursorPosition {
  int64_t file_id = -1;
  int64_t line = 0;
  int64_t col = 0;
};

// go-to-definition: the symbol named `name` whose *reference* has a name
// token starting at the cursor (Figure 4 semantics: results constrained by
// the location of their references, not their definitions).
std::vector<graph::NodeId> GoToDefinition(const graph::GraphView& view,
                                          const model::Schema& schema,
                                          const graph::NameIndex& index,
                                          const std::string& name,
                                          const CursorPosition& cursor);

// find-references: all incoming reference edges of a definition, with the
// location each reference occurs at.
struct Reference {
  graph::EdgeId edge;
  graph::NodeId from;
  model::EdgeKind kind;
  model::SourceRange use;
};
std::vector<Reference> FindReferences(const graph::GraphView& view,
                                      const model::Schema& schema,
                                      graph::NodeId definition);

}  // namespace frappe::analysis

#endif  // FRAPPE_ANALYSIS_NAVIGATION_H_
