#include "analysis/slicing.h"

#include <algorithm>
#include <unordered_set>

#include "graph/analytics.h"
#include "graph/traversal.h"

namespace frappe::analysis {

using graph::Direction;
using graph::EdgeFilter;
using graph::NodeId;
using model::EdgeKind;

namespace {

EdgeFilter CallFilter(const model::Schema& schema, Direction dir) {
  return EdgeFilter::Of({schema.edge_type(EdgeKind::kCalls)}, dir);
}

// Unbudgeted kernel run: without max_steps/deadline the closure cannot
// fail, so an empty set stands in for the unreachable error arm.
std::vector<NodeId> RunClosure(const graph::CsrView& csr,
                               const std::vector<NodeId>& seeds,
                               EdgeFilter filter, size_t threads,
                               size_t max_depth) {
  graph::analytics::Options options;
  options.threads = threads;
  options.max_depth = max_depth;
  return graph::analytics::ParallelClosure(csr, seeds, filter, options)
      .value_or({});
}

}  // namespace

std::vector<NodeId> BackwardSlice(const graph::GraphView& view,
                                  const model::Schema& schema,
                                  NodeId function, size_t max_depth) {
  return graph::TransitiveClosure(view, function,
                                  CallFilter(schema, Direction::kOut),
                                  max_depth);
}

std::vector<NodeId> ForwardSlice(const graph::GraphView& view,
                                 const model::Schema& schema,
                                 NodeId function, size_t max_depth) {
  return graph::TransitiveClosure(view, function,
                                  CallFilter(schema, Direction::kIn),
                                  max_depth);
}

std::vector<NodeId> ImpactSet(const graph::GraphView& view,
                              const model::Schema& schema,
                              const std::vector<NodeId>& seeds,
                              const std::vector<EdgeKind>& kinds,
                              Direction direction, size_t max_depth) {
  std::vector<graph::TypeId> types;
  types.reserve(kinds.size());
  for (EdgeKind kind : kinds) types.push_back(schema.edge_type(kind));
  return graph::TransitiveClosure(
      view, seeds, EdgeFilter::Of(std::move(types), direction), max_depth);
}

std::vector<NodeId> MacroImpact(const graph::GraphView& view,
                                const model::Schema& schema,
                                NodeId macro) {
  // Direct users: sources of expands_macro / interrogates_macro edges.
  graph::TypeId expands = schema.edge_type(EdgeKind::kExpandsMacro);
  graph::TypeId interrogates =
      schema.edge_type(EdgeKind::kInterrogatesMacro);
  std::unordered_set<NodeId> impacted;
  std::vector<NodeId> users;
  view.ForEachEdge(macro, Direction::kIn,
                   [&](graph::EdgeId e, NodeId from) {
                     graph::TypeId type = view.GetEdge(e).type;
                     if (type == expands || type == interrogates) {
                       if (impacted.insert(from).second) {
                         users.push_back(from);
                       }
                     }
                     return true;
                   });
  // Widen through the forward call slice of each user.
  for (NodeId user : ImpactSet(view, schema, users, {EdgeKind::kCalls},
                               Direction::kIn)) {
    impacted.insert(user);
  }
  std::vector<NodeId> out(impacted.begin(), impacted.end());
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<NodeId> IncludeImpact(const graph::GraphView& view,
                                  const model::Schema& schema,
                                  NodeId header) {
  return graph::TransitiveClosure(
      view, header,
      EdgeFilter::Of({schema.edge_type(EdgeKind::kIncludes)},
                     Direction::kIn));
}

std::vector<NodeId> ParallelBackwardSlice(const graph::CsrView& csr,
                                          const model::Schema& schema,
                                          NodeId function, size_t threads,
                                          size_t max_depth) {
  return RunClosure(csr, {function}, CallFilter(schema, Direction::kOut),
                    threads, max_depth);
}

std::vector<NodeId> ParallelForwardSlice(const graph::CsrView& csr,
                                         const model::Schema& schema,
                                         NodeId function, size_t threads,
                                         size_t max_depth) {
  return RunClosure(csr, {function}, CallFilter(schema, Direction::kIn),
                    threads, max_depth);
}

std::vector<NodeId> ParallelImpactSet(const graph::CsrView& csr,
                                      const model::Schema& schema,
                                      const std::vector<NodeId>& seeds,
                                      const std::vector<EdgeKind>& kinds,
                                      Direction direction, size_t threads,
                                      size_t max_depth) {
  std::vector<graph::TypeId> types;
  types.reserve(kinds.size());
  for (EdgeKind kind : kinds) types.push_back(schema.edge_type(kind));
  return RunClosure(csr, seeds, EdgeFilter::Of(std::move(types), direction),
                    threads, max_depth);
}

}  // namespace frappe::analysis
