#ifndef FRAPPE_ANALYSIS_SEARCH_H_
#define FRAPPE_ANALYSIS_SEARCH_H_

#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "graph/indexes.h"
#include "model/schema.h"

namespace frappe::analysis {

// Code search (paper Section 4.1): find symbols by name, entity type, and
// location (directory or module scope). The direct-API counterpart of the
// Figure 3 FQL query.
struct SearchQuery {
  // Name pattern against SHORT_NAME; '*'/'?' wildcards allowed; a trailing
  // '~' requests fuzzy matching (edit distance <= 2).
  std::string name;
  // Restrict to one node kind (kCount = any) or to a label group.
  model::NodeKind kind = model::NodeKind::kCount;
  std::optional<model::NodeGroup> group;
  // Scope: only results reachable from this module via
  // compiled_from/linked_from then file_contains, or under this directory.
  graph::NodeId module = graph::kInvalidNode;
  graph::NodeId directory = graph::kInvalidNode;
  size_t limit = 1000;
};

struct SearchResult {
  graph::NodeId node;
  std::string short_name;
  model::NodeKind kind;
};

std::vector<SearchResult> CodeSearch(const graph::GraphView& view,
                                     const model::Schema& schema,
                                     const graph::NameIndex& index,
                                     const SearchQuery& query);

// The set of files belonging to a module: transitive closure over
// compiled_from/linked_from/linked_from_lib, keeping file nodes.
std::vector<graph::NodeId> ModuleFiles(const graph::GraphView& view,
                                       const model::Schema& schema,
                                       graph::NodeId module);

// All files under a directory (transitively).
std::vector<graph::NodeId> DirectoryFiles(const graph::GraphView& view,
                                          const model::Schema& schema,
                                          graph::NodeId directory);

}  // namespace frappe::analysis

#endif  // FRAPPE_ANALYSIS_SEARCH_H_
