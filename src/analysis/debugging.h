#ifndef FRAPPE_ANALYSIS_DEBUGGING_H_
#define FRAPPE_ANALYSIS_DEBUGGING_H_

#include <vector>

#include "graph/graph_view.h"
#include "model/code_graph.h"

namespace frappe::analysis {

// The debugging use case (paper Section 4.3 / Figure 5) as a direct API:
// a field is known to hold a correct value at the start of `known_good_fn`
// and a bad one on entry to `known_bad_fn`; find the writes that can
// execute in between. Control-flow order is approximated by comparing
// USE_START_LINE values, exactly as the paper's query does.
struct SuspectWrite {
  graph::NodeId writer;       // function performing the write
  graph::EdgeId write_edge;   // the writes_member edge
  int64_t write_line;         // USE_START_LINE of the write
};

// `bounding_call_line` is the line of the call from known_good_fn to
// known_bad_fn (Figure 5 hard-codes 236); call sites in known_good_fn at
// or before that line are considered, and any writer of `field` reachable
// from them through the call graph is a suspect.
std::vector<SuspectWrite> FindSuspectWrites(const graph::GraphView& view,
                                            const model::Schema& schema,
                                            graph::NodeId known_good_fn,
                                            graph::NodeId known_bad_fn,
                                            graph::NodeId field,
                                            int64_t bounding_call_line);

}  // namespace frappe::analysis

#endif  // FRAPPE_ANALYSIS_DEBUGGING_H_
