#ifndef FRAPPE_EXTRACTOR_VFS_H_
#define FRAPPE_EXTRACTOR_VFS_H_

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace frappe::extractor {

// In-memory file system holding the source tree being extracted. Paths are
// '/'-separated and relative to the tree root (no leading slash). The
// extractor and the synthetic kernel generator both write into a Vfs; the
// build driver reads from it, so extraction runs hermetically with no disk
// access.
class Vfs {
 public:
  Vfs() = default;

  // Adds or replaces a file. Intermediate directories are implied.
  void AddFile(std::string_view path, std::string content);

  bool Exists(std::string_view path) const;
  Result<std::string_view> Read(std::string_view path) const;

  // All file paths, sorted.
  std::vector<std::string> Files() const;

  // All directory paths implied by the files, sorted, root ("") excluded.
  std::vector<std::string> Directories() const;

  // Resolves an #include reference: `name` is the spelling in the
  // directive, `including_file` the path of the file containing it.
  // Quote form searches the includer's directory first, then the include
  // dirs; angle form searches only the include dirs. Returns the resolved
  // path or NotFound.
  Result<std::string> ResolveInclude(
      std::string_view name, std::string_view including_file, bool angled,
      const std::vector<std::string>& include_dirs) const;

  size_t FileCount() const { return files_.size(); }
  uint64_t TotalBytes() const;

  // Total newline-terminated lines across all files (the "lines of code"
  // figure reported for the synthetic kernel).
  uint64_t TotalLines() const;

 private:
  std::map<std::string, std::string, std::less<>> files_;
};

// Normalizes "a/./b", "a/../b" and duplicate slashes.
std::string NormalizePath(std::string_view path);

// "a/b/c.h" -> "a/b"; "c.h" -> "".
std::string DirName(std::string_view path);

// "a/b/c.h" -> "c.h".
std::string BaseName(std::string_view path);

}  // namespace frappe::extractor

#endif  // FRAPPE_EXTRACTOR_VFS_H_
