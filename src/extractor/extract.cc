#include "extractor/extract.h"

#include <algorithm>

#include "common/string_util.h"
#include "extractor/vfs.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace frappe::extractor {

using graph::EdgeId;
using graph::NodeId;
using model::EdgeKind;
using model::NodeKind;
using model::PropKey;

// ---------------------------------------------------------------------------
// Files and directories
// ---------------------------------------------------------------------------

NodeId Extractor::DirectoryNode(const std::string& path) {
  auto it = dirs_.find(path);
  if (it != dirs_.end()) return it->second;
  NodeId node = graph_.AddNode(NodeKind::kDirectory, BaseName(path));
  graph_.SetLongName(node, path);
  dirs_.emplace(path, node);
  std::string parent = DirName(path);
  if (!parent.empty()) {
    NodeId parent_node = DirectoryNode(parent);
    EmitOnce(EdgeKind::kDirContains, parent_node, node);
  }
  return node;
}

NodeId Extractor::FileNode(const std::string& path) {
  std::string normalized = NormalizePath(path);
  auto it = files_.find(normalized);
  if (it != files_.end()) return it->second;
  NodeId node = graph_.AddNode(NodeKind::kFile, BaseName(normalized));
  graph_.SetLongName(node, normalized);
  files_.emplace(normalized, node);
  std::string dir = DirName(normalized);
  if (!dir.empty()) {
    EmitOnce(EdgeKind::kDirContains, DirectoryNode(dir), node);
  }
  return node;
}

// ---------------------------------------------------------------------------
// Node acquisition
// ---------------------------------------------------------------------------

NodeId Extractor::EntityNode(NodeKind kind, const std::string& name,
                             NodeId file, int line, bool* created) {
  EntityKey key{file, name, kind, line};
  auto it = entities_.find(key);
  if (it != entities_.end()) {
    if (created != nullptr) *created = false;
    return it->second;
  }
  NodeId node = graph_.AddNode(kind, name);
  entities_.emplace(key, node);
  if (file != graph::kInvalidNode) {
    EmitOnce(EdgeKind::kFileContains, file, node);
  }
  if (created != nullptr) *created = true;
  return node;
}

NodeId Extractor::TypeNode(UnitContext* ctx, const TypeName& type) {
  switch (type.base) {
    case TypeName::Base::kVoid:
      return graph_.Primitive("void");
    case TypeName::Base::kPrimitive:
      return graph_.Primitive(type.name.empty() ? "int" : type.name);
    case TypeName::Base::kStruct:
    case TypeName::Base::kUnion: {
      auto it = ctx->records.find(type.name);
      if (it != ctx->records.end()) return it->second;
      // Forward reference: a *_decl node stands in for the unseen record.
      NodeKind kind = type.base == TypeName::Base::kStruct
                          ? NodeKind::kStructDecl
                          : NodeKind::kUnionDecl;
      NodeId node = EntityNode(kind, type.name, graph::kInvalidNode, 0,
                               nullptr);
      ctx->records.emplace(type.name, node);
      return node;
    }
    case TypeName::Base::kEnum: {
      auto it = ctx->enums.find(type.name);
      if (it != ctx->enums.end()) return it->second;
      NodeId node = EntityNode(NodeKind::kEnumDef, type.name,
                               graph::kInvalidNode, 0, nullptr);
      ctx->enums.emplace(type.name, node);
      return node;
    }
    case TypeName::Base::kTypedefName: {
      auto it = ctx->typedef_nodes.find(type.name);
      if (it != ctx->typedef_nodes.end()) return it->second;
      // Typedef from a header outside the VFS (e.g. size_t).
      NodeId node = EntityNode(NodeKind::kTypedef, type.name,
                               graph::kInvalidNode, 0, nullptr);
      ctx->typedef_nodes.emplace(type.name, node);
      return node;
    }
    case TypeName::Base::kUnknown:
      return graph_.Primitive("int");
  }
  return graph_.Primitive("int");
}

NodeId Extractor::MacroNode(UnitContext* ctx, const std::string& name,
                            SourceLoc def_loc) {
  NodeId file = def_loc.file >= 0 &&
                        static_cast<size_t>(def_loc.file) <
                            ctx->file_nodes.size()
                    ? ctx->file_nodes[def_loc.file]
                    : graph::kInvalidNode;
  NodeId node = EntityNode(NodeKind::kMacro, name, file, def_loc.line,
                           nullptr);
  ctx->macro_nodes[name] = node;
  return node;
}

// ---------------------------------------------------------------------------
// Edge helpers
// ---------------------------------------------------------------------------

EdgeId Extractor::Emit(EdgeKind kind, NodeId src, NodeId dst) {
  return graph_.AddEdgeUnchecked(kind, src, dst);
}

EdgeId Extractor::EmitOnce(EdgeKind kind, NodeId src, NodeId dst) {
  auto key = std::make_tuple(static_cast<uint16_t>(kind), src, dst);
  if (!unique_edges_.insert(key).second) return graph::kInvalidEdge;
  return Emit(kind, src, dst);
}

model::SourceRange Extractor::TokenRange(const UnitContext& ctx,
                                         SourceLoc loc, int length) const {
  model::SourceRange range;
  if (loc.file >= 0 &&
      static_cast<size_t>(loc.file) < ctx.file_nodes.size()) {
    range.file_id = static_cast<int64_t>(ctx.file_nodes[loc.file]);
  }
  range.start_line = loc.line;
  range.start_col = loc.col;
  range.end_line = loc.line;
  range.end_col = loc.col + (length > 0 ? length - 1 : 0);
  return range;
}

model::SourceRange Extractor::RangeOf(const UnitContext& ctx,
                                      const Expr& expr) const {
  model::SourceRange range = TokenRange(ctx, expr.loc, 1);
  if (expr.end_loc.valid()) {
    range.end_line = expr.end_loc.line;
    range.end_col = expr.end_loc.col + std::max(expr.end_len - 1, 0);
  }
  return range;
}

void Extractor::EmitIsaType(UnitContext* ctx, NodeId var,
                            const TypeName& type) {
  NodeId type_node = TypeNode(ctx, type);
  EdgeId edge = EmitOnce(EdgeKind::kIsaType, var, type_node);
  if (edge == graph::kInvalidEdge) return;
  std::string quals = type.QualifierCode();
  if (!quals.empty()) graph_.SetQualifiers(edge, quals);
  if (!type.array_dims.empty()) {
    std::string dims;
    for (int64_t d : type.array_dims) {
      if (!dims.empty()) dims += ",";
      dims += d >= 0 ? std::to_string(d) : "?";
    }
    graph_.SetArrayLengths(edge, dims);
  }
}

// ---------------------------------------------------------------------------
// Unit extraction
// ---------------------------------------------------------------------------

Status Extractor::ExtractUnit(const PreprocessedUnit& pp,
                              const TranslationUnit& ast,
                              UnitSymbols* symbols) {
  FRAPPE_TRACE_SPAN("extract.unit");
  UnitContext ctx;
  ctx.pp = &pp;
  ctx.symbols = symbols;
  for (const std::string& path : pp.files) {
    ctx.file_nodes.push_back(FileNode(path));
  }
  if (!ctx.file_nodes.empty()) symbols->main_file = ctx.file_nodes[0];

  for (const IncludeEvent& inc : pp.includes) {
    EmitOnce(EdgeKind::kIncludes, ctx.file_nodes[inc.from_file],
             ctx.file_nodes[inc.to_file]);
  }

  {
    FRAPPE_TRACE_SPAN("extract.types");
    FRAPPE_RETURN_IF_ERROR(ExtractTypes(&ctx, ast));
  }
  {
    FRAPPE_TRACE_SPAN("extract.globals");
    FRAPPE_RETURN_IF_ERROR(ExtractGlobals(&ctx, ast));
  }
  {
    FRAPPE_TRACE_SPAN("extract.functions");
    FRAPPE_RETURN_IF_ERROR(ExtractFunctions(&ctx, ast));
  }
  {
    FRAPPE_TRACE_SPAN("extract.macros");
    FRAPPE_RETURN_IF_ERROR(ExtractMacros(&ctx, ast));
  }
  static obs::Counter& units =
      obs::Registry::Global().GetCounter("extractor.units");
  units.Add();
  return Status::OK();
}

Status Extractor::ExtractTypes(UnitContext* ctx, const TranslationUnit& ast) {
  // Records first (typedefs may reference them).
  for (const RecordDecl& record : ast.records) {
    NodeId file = record.loc.file >= 0
                      ? ctx->file_nodes[record.loc.file]
                      : graph::kInvalidNode;
    NodeKind kind =
        record.is_union ? NodeKind::kUnion : NodeKind::kStruct;
    bool created = false;
    NodeId node = EntityNode(kind, record.tag, file, record.loc.line,
                             &created);
    if (created) {
      graph_.SetName(node, record.tag);
      graph_.SetLongName(node,
                         (record.is_union ? "union " : "struct ") +
                             record.tag);
      if (record.in_macro) graph_.MarkInMacro(node);
    }
    ctx->records[record.tag] = node;
    for (const VarDeclarator& field : record.fields) {
      NodeId field_file = field.loc.file >= 0
                              ? ctx->file_nodes[field.loc.file]
                              : file;
      bool field_created = false;
      NodeId field_node = EntityNode(NodeKind::kField, field.name,
                                     field_file, field.loc.line,
                                     &field_created);
      if (field_created) {
        graph_.SetName(field_node, record.tag + "::" + field.name);
        EdgeId contains = EmitOnce(EdgeKind::kContains, node, field_node);
        if (contains != graph::kInvalidEdge && field.bit_width >= 0) {
          graph_.SetBitWidth(contains, field.bit_width);
        }
        EmitIsaType(ctx, field_node, field.type);
      }
      ctx->fields[record.tag][field.name] =
          VarInfo{field_node, field.type};
      auto [it, inserted] = ctx->unique_fields.emplace(
          field.name, VarInfo{field_node, field.type});
      if (!inserted && it->second.node != field_node) {
        ctx->ambiguous_fields.insert(field.name);
      }
    }
  }
  for (const EnumDecl& decl : ast.enums) {
    NodeId file = decl.loc.file >= 0 ? ctx->file_nodes[decl.loc.file]
                                     : graph::kInvalidNode;
    bool created = false;
    NodeId node = EntityNode(NodeKind::kEnumDef, decl.tag, file,
                             decl.loc.line, &created);
    ctx->enums[decl.tag] = node;
    for (const EnumeratorDecl& enumerator : decl.enumerators) {
      NodeId e_file = enumerator.loc.file >= 0
                          ? ctx->file_nodes[enumerator.loc.file]
                          : file;
      bool e_created = false;
      NodeId e_node = EntityNode(NodeKind::kEnumerator, enumerator.name,
                                 e_file, enumerator.loc.line, &e_created);
      if (e_created) {
        graph_.SetEnumValue(e_node, enumerator.value);
        graph_.SetName(e_node, decl.tag + "::" + enumerator.name);
        EmitOnce(EdgeKind::kContains, node, e_node);
      }
      ctx->enumerators[enumerator.name] = e_node;
    }
  }
  for (const TypedefDecl& td : ast.typedefs) {
    NodeId file = td.loc.file >= 0 ? ctx->file_nodes[td.loc.file]
                                   : graph::kInvalidNode;
    bool created = false;
    NodeId node = EntityNode(NodeKind::kTypedef, td.name, file, td.loc.line,
                             &created);
    ctx->typedef_nodes[td.name] = node;
    ctx->typedef_types[td.name] = td.underlying;
    if (created) EmitIsaType(ctx, node, td.underlying);
  }
  return Status::OK();
}

Status Extractor::ExtractGlobals(UnitContext* ctx,
                                 const TranslationUnit& ast) {
  for (const GlobalDecl& global : ast.globals) {
    const VarDeclarator& decl = global.decl;
    NodeId file = decl.loc.file >= 0 ? ctx->file_nodes[decl.loc.file]
                                     : graph::kInvalidNode;
    bool is_decl_only = global.is_extern && decl.init == nullptr;
    NodeKind kind = is_decl_only ? NodeKind::kGlobalDecl : NodeKind::kGlobal;
    bool created = false;
    NodeId node = EntityNode(kind, decl.name, file, decl.loc.line, &created);
    if (created) {
      graph_.SetName(node, decl.name);
      if (decl.in_macro) graph_.MarkInMacro(node);
      EmitIsaType(ctx, node, decl.type);
    }
    ctx->globals[decl.name] = VarInfo{node, decl.type};
    if (ctx->symbols != nullptr) {
      if (is_decl_only) {
        ctx->symbols->undefined_globals[decl.name] = node;
      } else if (!global.is_static) {
        ctx->symbols->defined_globals[decl.name] = node;
      }
    }
  }
  return Status::OK();
}

Status Extractor::ExtractFunctions(UnitContext* ctx,
                                   const TranslationUnit& ast) {
  // Pass A: register every function so forward and mutual calls resolve.
  for (const FunctionDecl& fn : ast.functions) {
    NodeId file = fn.loc.file >= 0 ? ctx->file_nodes[fn.loc.file]
                                   : graph::kInvalidNode;
    NodeKind kind =
        fn.is_definition ? NodeKind::kFunction : NodeKind::kFunctionDecl;
    bool created = false;
    NodeId node = EntityNode(kind, fn.name, file, fn.loc.line, &created);
    if (created) {
      graph_.SetName(node, fn.name);
      std::string signature = fn.name + "(";
      for (size_t i = 0; i < fn.params.size(); ++i) {
        if (i > 0) signature += ", ";
        signature += fn.params[i].type.name;
        signature += std::string(fn.params[i].type.pointer_depth, '*');
      }
      if (fn.variadic) signature += ", ...";
      signature += ")";
      graph_.SetLongName(node, signature);
      if (fn.variadic) graph_.MarkVariadic(node);
      if (fn.in_macro) graph_.MarkInMacro(node);
      EmitOnce(EdgeKind::kHasRetType, node, TypeNode(ctx, fn.return_type));
      if (fn.is_definition) {
        for (size_t i = 0; i < fn.params.size(); ++i) {
          const ParamDecl& param = fn.params[i];
          if (param.name.empty()) continue;
          NodeId param_node = graph_.AddNode(NodeKind::kParameter,
                                             param.name);
          graph_.SetName(param_node, fn.name + "::" + param.name);
          EdgeId has_param = Emit(EdgeKind::kHasParam, node, param_node);
          graph_.SetParamIndex(has_param, static_cast<int64_t>(i));
          EmitIsaType(ctx, param_node, param.type);
        }
      } else {
        for (size_t i = 0; i < fn.params.size(); ++i) {
          EdgeId e = Emit(EdgeKind::kHasParamType, node,
                          TypeNode(ctx, fn.params[i].type));
          graph_.SetParamIndex(e, static_cast<int64_t>(i));
        }
      }
    }
    if (fn.is_definition) {
      ctx->functions[fn.name] = node;
      if (!fn.is_static && ctx->symbols != nullptr) {
        ctx->symbols->defined_functions[fn.name] = node;
      }
    } else {
      ctx->function_decls[fn.name] = node;
    }
  }
  // declares: decl -> def when both are visible in the unit.
  for (const auto& [name, decl_node] : ctx->function_decls) {
    auto def = ctx->functions.find(name);
    if (def != ctx->functions.end()) {
      EmitOnce(EdgeKind::kDeclares, decl_node, def->second);
    }
  }

  // Pass B: walk bodies.
  for (const FunctionDecl& fn : ast.functions) {
    if (!fn.is_definition || fn.body == nullptr) continue;
    NodeId file = fn.loc.file >= 0 ? ctx->file_nodes[fn.loc.file]
                                   : graph::kInvalidNode;
    NodeId node = ctx->functions[fn.name];
    FunctionContext fctx;
    fctx.node = node;
    fctx.max_line = fn.loc.line;
    fctx.scopes.emplace_back();
    // Parameters: find their nodes back via has_param edges.
    {
      size_t param_idx = 0;
      graph_.store().ForEachEdge(
          node, graph::Direction::kOut,
          [&](EdgeId e, NodeId target) {
            if (graph_.EdgeKindOf(e) == EdgeKind::kHasParam &&
                param_idx < fn.params.size()) {
              const ParamDecl& param = fn.params[param_idx];
              // has_param edges were emitted in order.
              fctx.scopes.back().vars[std::string(
                  graph_.ShortName(target))] = VarInfo{target, param.type};
              ++param_idx;
            }
            return true;
          });
    }
    FRAPPE_RETURN_IF_ERROR(WalkStmt(ctx, &fctx, *fn.body));
    ctx->fn_spans.push_back(UnitContext::FnSpan{
        fn.loc.file, fn.loc.line, fctx.max_line, node});
    (void)file;
  }
  return Status::OK();
}

Status Extractor::ExtractMacros(UnitContext* ctx,
                                const TranslationUnit& ast) {
  (void)ast;
  const PreprocessedUnit& pp = *ctx->pp;
  for (const MacroDef& def : pp.macros) {
    bool existed = ctx->macro_nodes.count(def.name) != 0;
    NodeId node = MacroNode(ctx, def.name, def.loc);
    if (!existed) graph_.SetName(node, def.name);
  }
  auto covering_entity = [&](SourceLoc use) -> NodeId {
    for (const UnitContext::FnSpan& span : ctx->fn_spans) {
      if (span.file == use.file && use.line >= span.start_line &&
          use.line <= span.end_line) {
        return span.node;
      }
    }
    if (use.file >= 0 &&
        static_cast<size_t>(use.file) < ctx->file_nodes.size()) {
      return ctx->file_nodes[use.file];
    }
    return graph::kInvalidNode;
  };
  for (const MacroEvent& event : pp.events) {
    auto it = ctx->macro_nodes.find(event.name);
    NodeId macro;
    if (it != ctx->macro_nodes.end()) {
      macro = it->second;
    } else {
      // Interrogation of an undefined macro (#ifdef CONFIG_X): still a
      // dependency — model the macro without a defining file.
      macro = EntityNode(NodeKind::kMacro, event.name, graph::kInvalidNode,
                         0, nullptr);
      ctx->macro_nodes[event.name] = macro;
    }
    NodeId src = covering_entity(event.use);
    if (src == graph::kInvalidNode) continue;
    EdgeKind kind = event.kind == MacroEvent::Kind::kExpansion
                        ? EdgeKind::kExpandsMacro
                        : EdgeKind::kInterrogatesMacro;
    EdgeId edge = Emit(kind, src, macro);
    graph_.SetUseRange(edge,
                       TokenRange(*ctx, event.use,
                                  static_cast<int>(event.name.size())));
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Body walking
// ---------------------------------------------------------------------------

Status Extractor::DeclareLocal(UnitContext* ctx, FunctionContext* fn,
                               const VarDeclarator& decl, bool is_static) {
  NodeKind kind = is_static ? NodeKind::kStaticLocal : NodeKind::kLocal;
  NodeId node = graph_.AddNode(kind, decl.name);
  graph_.SetName(node,
                 std::string(graph_.ShortName(fn->node)) + "::" + decl.name);
  if (decl.in_macro) graph_.MarkInMacro(node);
  Emit(EdgeKind::kHasLocal, fn->node, node);
  EmitIsaType(ctx, node, decl.type);
  fn->scopes.back().vars[decl.name] = VarInfo{node, decl.type};
  if (decl.init != nullptr) {
    // Initialization is the local's first write.
    EdgeId write = Emit(EdgeKind::kWrites, fn->node, node);
    graph_.SetUseRange(write, TokenRange(*ctx, decl.loc, decl.name_len));
    graph_.SetNameRange(write, TokenRange(*ctx, decl.loc, decl.name_len));
    FRAPPE_RETURN_IF_ERROR(WalkExpr(ctx, fn, *decl.init));
  }
  return Status::OK();
}

Status Extractor::WalkStmt(UnitContext* ctx, FunctionContext* fn,
                           const Stmt& stmt) {
  if (stmt.loc.line > fn->max_line) fn->max_line = stmt.loc.line;
  switch (stmt.kind) {
    case StmtKind::kCompound: {
      fn->scopes.emplace_back();
      for (const StmtPtr& child : stmt.children) {
        FRAPPE_RETURN_IF_ERROR(WalkStmt(ctx, fn, *child));
      }
      fn->scopes.pop_back();
      return Status::OK();
    }
    case StmtKind::kDecl: {
      for (const VarDeclarator& decl : stmt.decls) {
        FRAPPE_RETURN_IF_ERROR(
            DeclareLocal(ctx, fn, decl, stmt.decls_static));
      }
      return Status::OK();
    }
    case StmtKind::kFor: {
      fn->scopes.emplace_back();
      for (const VarDeclarator& decl : stmt.decls) {
        FRAPPE_RETURN_IF_ERROR(DeclareLocal(ctx, fn, decl, false));
      }
      if (stmt.expr != nullptr) {
        FRAPPE_RETURN_IF_ERROR(WalkExpr(ctx, fn, *stmt.expr));
      }
      if (stmt.expr2 != nullptr) {
        FRAPPE_RETURN_IF_ERROR(WalkExpr(ctx, fn, *stmt.expr2));
      }
      for (const StmtPtr& child : stmt.children) {
        FRAPPE_RETURN_IF_ERROR(WalkStmt(ctx, fn, *child));
      }
      fn->scopes.pop_back();
      return Status::OK();
    }
    default: {
      if (stmt.expr != nullptr) {
        FRAPPE_RETURN_IF_ERROR(WalkExpr(ctx, fn, *stmt.expr));
      }
      if (stmt.expr2 != nullptr) {
        FRAPPE_RETURN_IF_ERROR(WalkExpr(ctx, fn, *stmt.expr2));
      }
      for (const StmtPtr& child : stmt.children) {
        FRAPPE_RETURN_IF_ERROR(WalkStmt(ctx, fn, *child));
      }
      return Status::OK();
    }
  }
}

const TypeName* Extractor::TypeOfExpr(UnitContext* ctx, FunctionContext* fn,
                                      const Expr& expr, TypeName* storage) {
  switch (expr.kind) {
    case ExprKind::kIdent: {
      const VarInfo* var = fn->Lookup(expr.text);
      if (var == nullptr) {
        auto it = ctx->globals.find(expr.text);
        if (it == ctx->globals.end()) return nullptr;
        var = &it->second;
      }
      return &var->type;
    }
    case ExprKind::kMember: {
      const TypeName* base =
          TypeOfExpr(ctx, fn, *expr.lhs, storage);
      if (base == nullptr) return nullptr;
      // Resolve the record and look the field's type up.
      std::string tag = base->name;
      TypeName::Base base_kind = base->base;
      int guard = 0;
      while (base_kind == TypeName::Base::kTypedefName && guard++ < 8) {
        auto it = ctx->typedef_types.find(tag);
        if (it == ctx->typedef_types.end()) return nullptr;
        tag = it->second.name;
        base_kind = it->second.base;
      }
      auto rec = ctx->fields.find(tag);
      if (rec == ctx->fields.end()) return nullptr;
      auto field = rec->second.find(expr.text);
      if (field == rec->second.end()) return nullptr;
      *storage = field->second.type;
      return storage;
    }
    case ExprKind::kIndex:
    case ExprKind::kUnary: {
      if (expr.kind == ExprKind::kUnary && expr.text != "*") {
        return expr.lhs ? TypeOfExpr(ctx, fn, *expr.lhs, storage) : nullptr;
      }
      const TypeName* base = TypeOfExpr(ctx, fn, *expr.lhs, storage);
      if (base == nullptr) return nullptr;
      *storage = *base;
      if (!storage->array_dims.empty()) {
        storage->array_dims.pop_back();
      } else if (storage->pointer_depth > 0) {
        --storage->pointer_depth;
      }
      return storage;
    }
    case ExprKind::kCast: {
      *storage = expr.type;
      return storage;
    }
    default:
      return nullptr;
  }
}

NodeId Extractor::ResolveMemberField(UnitContext* ctx, FunctionContext* fn,
                                     const Expr& member) {
  TypeName storage;
  const TypeName* base = TypeOfExpr(ctx, fn, *member.lhs, &storage);
  if (base != nullptr) {
    std::string tag = base->name;
    TypeName::Base kind = base->base;
    int guard = 0;
    while (kind == TypeName::Base::kTypedefName && guard++ < 8) {
      auto it = ctx->typedef_types.find(tag);
      if (it == ctx->typedef_types.end()) break;
      tag = it->second.name;
      kind = it->second.base;
    }
    auto rec = ctx->fields.find(tag);
    if (rec != ctx->fields.end()) {
      auto field = rec->second.find(member.text);
      if (field != rec->second.end()) return field->second.node;
    }
  }
  // Heuristic fallback: unique field name in the unit.
  if (ctx->ambiguous_fields.count(member.text) == 0) {
    auto it = ctx->unique_fields.find(member.text);
    if (it != ctx->unique_fields.end()) return it->second.node;
  }
  return graph::kInvalidNode;
}

Status Extractor::WalkExpr(UnitContext* ctx, FunctionContext* fn,
                           const Expr& expr, bool write, bool address_of) {
  if (expr.loc.line > fn->max_line) fn->max_line = expr.loc.line;
  if (expr.end_loc.line > fn->max_line) fn->max_line = expr.end_loc.line;

  auto annotate = [&](EdgeId edge, const Expr& use_expr,
                      SourceLoc name_loc, int name_len) {
    if (edge == graph::kInvalidEdge) return;
    graph_.SetUseRange(edge, RangeOf(*ctx, use_expr));
    graph_.SetNameRange(edge, TokenRange(*ctx, name_loc, name_len));
  };

  switch (expr.kind) {
    case ExprKind::kIdent: {
      const VarInfo* var = fn->Lookup(expr.text);
      if (var == nullptr) {
        auto it = ctx->globals.find(expr.text);
        if (it != ctx->globals.end()) var = &it->second;
      }
      if (var != nullptr) {
        EdgeKind kind = address_of ? EdgeKind::kTakesAddressOf
                                   : (write ? EdgeKind::kWrites
                                            : EdgeKind::kReads);
        EdgeId edge = Emit(kind, fn->node, var->node);
        annotate(edge, expr, expr.loc,
                 static_cast<int>(expr.text.size()));
        return Status::OK();
      }
      auto enumerator = ctx->enumerators.find(expr.text);
      if (enumerator != ctx->enumerators.end()) {
        EdgeId edge = Emit(EdgeKind::kUsesEnumerator, fn->node,
                           enumerator->second);
        annotate(edge, expr, expr.loc,
                 static_cast<int>(expr.text.size()));
        return Status::OK();
      }
      // A function referenced as a value (callback): implicit address-of.
      auto def = ctx->functions.find(expr.text);
      NodeId fn_node = graph::kInvalidNode;
      if (def != ctx->functions.end()) {
        fn_node = def->second;
      } else {
        auto decl = ctx->function_decls.find(expr.text);
        if (decl != ctx->function_decls.end()) fn_node = decl->second;
      }
      if (fn_node != graph::kInvalidNode) {
        EdgeId edge = Emit(EdgeKind::kTakesAddressOf, fn->node, fn_node);
        annotate(edge, expr, expr.loc,
                 static_cast<int>(expr.text.size()));
      }
      return Status::OK();
    }
    case ExprKind::kCall: {
      const Expr& callee = *expr.lhs;
      if (callee.kind == ExprKind::kIdent) {
        const VarInfo* var = fn->Lookup(callee.text);
        if (var == nullptr) {
          auto g = ctx->globals.find(callee.text);
          if (g != ctx->globals.end()) var = &g->second;
        }
        if (var != nullptr) {
          // Call through a function pointer variable.
          EdgeId read = Emit(EdgeKind::kReads, fn->node, var->node);
          annotate(read, callee, callee.loc,
                   static_cast<int>(callee.text.size()));
          EdgeId deref = Emit(EdgeKind::kDereferences, fn->node, var->node);
          annotate(deref, expr, callee.loc,
                   static_cast<int>(callee.text.size()));
        } else {
          NodeId target = graph::kInvalidNode;
          auto def = ctx->functions.find(callee.text);
          if (def != ctx->functions.end()) {
            target = def->second;
          } else {
            auto decl = ctx->function_decls.find(callee.text);
            if (decl != ctx->function_decls.end()) {
              target = decl->second;
            }
          }
          if (target == graph::kInvalidNode) {
            // Implicit declaration: one node per unknown symbol name.
            auto [it, created] = implicit_function_decls_.emplace(
                callee.text, graph::kInvalidNode);
            if (created) {
              it->second = graph_.AddNode(NodeKind::kFunctionDecl,
                                          callee.text);
              graph_.SetName(it->second, callee.text);
            }
            target = it->second;
            ctx->function_decls[callee.text] = target;
          }
          if (ctx->symbols != nullptr &&
              ctx->functions.find(callee.text) == ctx->functions.end()) {
            ctx->symbols->undefined_functions[callee.text] = target;
          }
          EdgeId call = Emit(EdgeKind::kCalls, fn->node, target);
          annotate(call, expr, callee.loc,
                   static_cast<int>(callee.text.size()));
        }
      } else if (callee.kind == ExprKind::kMember) {
        // Call through a member function pointer: ops->open(...).
        NodeId field = ResolveMemberField(ctx, fn, callee);
        if (field != graph::kInvalidNode) {
          EdgeId read = Emit(EdgeKind::kReadsMember, fn->node, field);
          annotate(read, callee, callee.end_loc, callee.end_len);
          EdgeId deref =
              Emit(EdgeKind::kDereferencesMember, fn->node, field);
          annotate(deref, expr, callee.end_loc, callee.end_len);
        }
        FRAPPE_RETURN_IF_ERROR(WalkExpr(ctx, fn, *callee.lhs));
      } else {
        FRAPPE_RETURN_IF_ERROR(WalkExpr(ctx, fn, callee));
      }
      for (const ExprPtr& arg : expr.args) {
        FRAPPE_RETURN_IF_ERROR(WalkExpr(ctx, fn, *arg));
      }
      return Status::OK();
    }
    case ExprKind::kMember: {
      NodeId field = ResolveMemberField(ctx, fn, expr);
      if (field != graph::kInvalidNode) {
        EdgeKind kind = address_of
                            ? EdgeKind::kTakesAddressOfMember
                            : (write ? EdgeKind::kWritesMember
                                     : EdgeKind::kReadsMember);
        EdgeId edge = Emit(kind, fn->node, field);
        annotate(edge, expr, expr.end_loc, expr.end_len);
      }
      // `p->f` also reads and dereferences the pointer p.
      if (expr.arrow && expr.lhs->kind == ExprKind::kIdent) {
        const VarInfo* var = fn->Lookup(expr.lhs->text);
        if (var == nullptr) {
          auto it = ctx->globals.find(expr.lhs->text);
          if (it != ctx->globals.end()) var = &it->second;
        }
        if (var != nullptr) {
          EdgeId read = Emit(EdgeKind::kReads, fn->node, var->node);
          annotate(read, *expr.lhs, expr.lhs->loc,
                   static_cast<int>(expr.lhs->text.size()));
          EdgeId deref = Emit(EdgeKind::kDereferences, fn->node, var->node);
          annotate(deref, expr, expr.lhs->loc,
                   static_cast<int>(expr.lhs->text.size()));
        }
      } else if (expr.lhs->kind != ExprKind::kIdent) {
        FRAPPE_RETURN_IF_ERROR(WalkExpr(ctx, fn, *expr.lhs));
      }
      return Status::OK();
    }
    case ExprKind::kIndex: {
      FRAPPE_RETURN_IF_ERROR(
          WalkExpr(ctx, fn, *expr.lhs, write, address_of));
      FRAPPE_RETURN_IF_ERROR(WalkExpr(ctx, fn, *expr.rhs));
      return Status::OK();
    }
    case ExprKind::kUnary: {
      if (expr.text == "&") {
        return WalkExpr(ctx, fn, *expr.lhs, false, /*address_of=*/true);
      }
      if (expr.text == "*") {
        if (expr.lhs->kind == ExprKind::kIdent) {
          const VarInfo* var = fn->Lookup(expr.lhs->text);
          if (var == nullptr) {
            auto it = ctx->globals.find(expr.lhs->text);
            if (it != ctx->globals.end()) var = &it->second;
          }
          if (var != nullptr) {
            EdgeId deref =
                Emit(EdgeKind::kDereferences, fn->node, var->node);
            annotate(deref, expr, expr.lhs->loc,
                     static_cast<int>(expr.lhs->text.size()));
          }
        } else if (expr.lhs->kind == ExprKind::kMember) {
          NodeId field = ResolveMemberField(ctx, fn, *expr.lhs);
          if (field != graph::kInvalidNode) {
            EdgeId deref =
                Emit(EdgeKind::kDereferencesMember, fn->node, field);
            annotate(deref, expr, expr.lhs->end_loc, expr.lhs->end_len);
          }
        }
        // Reading through the pointer still reads the pointer variable.
        return WalkExpr(ctx, fn, *expr.lhs, /*write=*/false, false);
      }
      if (expr.text == "++" || expr.text == "--") {
        FRAPPE_RETURN_IF_ERROR(WalkExpr(ctx, fn, *expr.lhs, false, false));
        return WalkExpr(ctx, fn, *expr.lhs, /*write=*/true, false);
      }
      return WalkExpr(ctx, fn, *expr.lhs);
    }
    case ExprKind::kPostfix: {
      FRAPPE_RETURN_IF_ERROR(WalkExpr(ctx, fn, *expr.lhs, false, false));
      return WalkExpr(ctx, fn, *expr.lhs, /*write=*/true, false);
    }
    case ExprKind::kBinary: {
      bool is_assign = !expr.text.empty() && expr.text.back() == '=' &&
                       expr.text != "==" && expr.text != "!=" &&
                       expr.text != "<=" && expr.text != ">=";
      if (is_assign) {
        bool compound = expr.text != "=";
        if (compound) {
          FRAPPE_RETURN_IF_ERROR(
              WalkExpr(ctx, fn, *expr.lhs, false, false));
        }
        FRAPPE_RETURN_IF_ERROR(
            WalkExpr(ctx, fn, *expr.lhs, /*write=*/true, false));
        return WalkExpr(ctx, fn, *expr.rhs);
      }
      FRAPPE_RETURN_IF_ERROR(WalkExpr(ctx, fn, *expr.lhs));
      return WalkExpr(ctx, fn, *expr.rhs);
    }
    case ExprKind::kTernary: {
      FRAPPE_RETURN_IF_ERROR(WalkExpr(ctx, fn, *expr.lhs));
      FRAPPE_RETURN_IF_ERROR(WalkExpr(ctx, fn, *expr.rhs));
      return WalkExpr(ctx, fn, *expr.third);
    }
    case ExprKind::kCast: {
      EdgeId edge = Emit(EdgeKind::kCastsTo, fn->node,
                         TypeNode(ctx, expr.type));
      annotate(edge, expr, expr.loc, 1);
      return WalkExpr(ctx, fn, *expr.lhs);
    }
    case ExprKind::kSizeof:
    case ExprKind::kAlignof: {
      if (expr.lhs != nullptr) {
        return WalkExpr(ctx, fn, *expr.lhs);
      }
      EdgeKind kind = expr.kind == ExprKind::kSizeof
                          ? EdgeKind::kGetsSizeOf
                          : EdgeKind::kGetsAlignOf;
      EdgeId edge = Emit(kind, fn->node, TypeNode(ctx, expr.type));
      annotate(edge, expr, expr.loc, 6);
      return Status::OK();
    }
    case ExprKind::kInitList: {
      for (const ExprPtr& item : expr.args) {
        FRAPPE_RETURN_IF_ERROR(WalkExpr(ctx, fn, *item));
      }
      return Status::OK();
    }
    default:
      return Status::OK();
  }
}

}  // namespace frappe::extractor
