#ifndef FRAPPE_EXTRACTOR_SYNTHETIC_H_
#define FRAPPE_EXTRACTOR_SYNTHETIC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "extractor/vfs.h"
#include "model/code_graph.h"

namespace frappe::extractor {

// Synthetic stand-in for the Unbreakable Enterprise Kernel (substitution
// documented in DESIGN.md). Two generators:
//
//  1. GenerateKernelGraph — directly synthesizes a dependency graph with
//     the published shape of the paper's UEK extraction (Table 3: ~505 K
//     nodes / ~4 M edges at factor 1.0; Figure 7: power-law degrees with
//     `int`-like and `NULL`-like hubs). Used by the paper-scale benches.
//
//  2. GenerateKernelSource — emits an actual C source tree (subsystem
//     directories, headers, macros, call graphs) plus the gcc-style build
//     commands to extract it through the full pipeline. Used by extractor
//     tests, examples and the extraction-throughput bench.

struct GraphScale {
  // 1.0 reproduces the paper's graph size; smaller factors shrink every
  // entity class proportionally.
  double factor = 1.0;
  uint64_t seed = 42;
};

struct GraphReport {
  uint64_t nodes = 0;
  uint64_t edges = 0;
  // Ids of the engineered hubs, for Figure 7 commentary.
  graph::NodeId int_primitive = graph::kInvalidNode;
  graph::NodeId null_macro = graph::kInvalidNode;
};

GraphReport GenerateKernelGraph(const GraphScale& scale,
                                model::CodeGraph* graph);

struct SourceScale {
  int subsystems = 4;
  int files_per_subsystem = 5;
  int functions_per_file = 8;
  int structs_per_subsystem = 3;
  int globals_per_subsystem = 4;
  uint64_t seed = 42;
};

struct SourceKernel {
  // Build commands in dependency order, consumable by BuildDriver::Run.
  std::vector<std::string> build_commands;
  uint64_t total_lines = 0;
};

SourceKernel GenerateKernelSource(const SourceScale& scale, Vfs* vfs);

}  // namespace frappe::extractor

#endif  // FRAPPE_EXTRACTOR_SYNTHETIC_H_
