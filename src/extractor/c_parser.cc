#include "extractor/c_parser.h"

#include <set>
#include <unordered_set>

namespace frappe::extractor {

namespace {

const std::unordered_set<std::string> kPrimitiveKeywords = {
    "void",   "char",  "short",    "int",      "long",  "float",
    "double", "signed", "unsigned", "_Bool",   "size_t_builtin",
};

const std::unordered_set<std::string> kQualifierKeywords = {
    "const", "volatile", "restrict", "__restrict", "__restrict__",
};

const std::unordered_set<std::string> kStorageKeywords = {
    "static", "extern", "register", "auto", "inline", "__inline",
    "__inline__", "_Noreturn",
};

class Parser {
 public:
  explicit Parser(const PreprocessedUnit& unit) : tokens_(unit.tokens) {}

  Result<TranslationUnit> Run() {
    while (!Peek().IsEof()) {
      FRAPPE_RETURN_IF_ERROR(ParseTopLevel());
    }
    return std::move(unit_);
  }

 private:
  // --- token plumbing ---

  const CToken& Peek(size_t ahead = 0) const {
    size_t idx = pos_ + ahead;
    return idx < tokens_.size() ? tokens_[idx] : tokens_.back();
  }
  const CToken& Advance() {
    const CToken& t = tokens_[pos_];
    if (pos_ + 1 < tokens_.size()) ++pos_;
    return t;
  }
  bool AcceptPunct(std::string_view p) {
    if (Peek().IsPunct(p)) {
      Advance();
      return true;
    }
    return false;
  }
  bool AcceptIdent(std::string_view name) {
    if (Peek().IsIdent(name)) {
      Advance();
      return true;
    }
    return false;
  }
  Status ExpectPunct(std::string_view p) {
    if (!AcceptPunct(p)) {
      return Status::ParseError("expected '" + std::string(p) + "', got '" +
                                Peek().text + "' at line " +
                                std::to_string(Peek().loc.line));
    }
    return Status::OK();
  }
  Status ErrorHere(std::string message) const {
    return Status::ParseError(message + " at line " +
                              std::to_string(Peek().loc.line) + " ('" +
                              Peek().text + "')");
  }

  void SkipAttributes() {
    while (true) {
      if (Peek().IsIdent("__attribute__") || Peek().IsIdent("__declspec")) {
        Advance();
        if (Peek().IsPunct("(")) SkipBalancedParens();
        continue;
      }
      if (Peek().IsIdent("__extension__") || Peek().IsIdent("__asm__") ||
          Peek().IsIdent("asm")) {
        Advance();
        if (Peek().IsPunct("(")) SkipBalancedParens();
        continue;
      }
      break;
    }
  }

  void SkipBalancedParens() {
    int depth = 0;
    do {
      const CToken& t = Advance();
      if (t.IsPunct("(")) ++depth;
      if (t.IsPunct(")")) --depth;
    } while (depth > 0 && !Peek().IsEof());
  }

  void SkipBalancedBraces() {
    int depth = 0;
    do {
      const CToken& t = Advance();
      if (t.IsPunct("{")) ++depth;
      if (t.IsPunct("}")) --depth;
    } while (depth > 0 && !Peek().IsEof());
  }

  // --- type recognition ---

  bool IsTypeStart(const CToken& t, size_t ahead = 0) const {
    if (t.kind != CToken::Kind::kIdent) return false;
    if (kPrimitiveKeywords.count(t.text) || kQualifierKeywords.count(t.text)) {
      return true;
    }
    if (t.text == "struct" || t.text == "union" || t.text == "enum") {
      return true;
    }
    if (typedefs_.count(t.text)) {
      // A typedef name only starts a declaration if it is not itself being
      // used as a variable: `foo_t x` vs `foo_t = 3` (the latter cannot
      // happen for a real typedef, so this is safe).
      (void)ahead;
      return true;
    }
    return false;
  }

  bool AtDeclarationStart() const {
    const CToken& t = Peek();
    if (t.kind != CToken::Kind::kIdent) return false;
    if (kStorageKeywords.count(t.text) || t.text == "typedef") return true;
    return IsTypeStart(t);
  }

  // Parses declaration specifiers: storage, qualifiers, and the base type.
  struct DeclSpecs {
    TypeName type;
    bool is_static = false;
    bool is_extern = false;
    bool is_typedef = false;
    // Set when the specifier defined a record/enum inline (its tag, for
    // anonymous ones a generated tag).
    bool defined_record = false;
  };

  Result<DeclSpecs> ParseDeclSpecs() {
    DeclSpecs specs;
    std::vector<std::string> primitive_parts;
    bool saw_base = false;
    while (true) {
      SkipAttributes();
      const CToken& t = Peek();
      if (t.kind != CToken::Kind::kIdent) break;
      if (t.text == "typedef") {
        specs.is_typedef = true;
        Advance();
        continue;
      }
      if (kStorageKeywords.count(t.text)) {
        if (t.text == "static") specs.is_static = true;
        if (t.text == "extern") specs.is_extern = true;
        Advance();
        continue;
      }
      if (kQualifierKeywords.count(t.text)) {
        if (t.text == "const") specs.type.is_const = true;
        if (t.text == "volatile") specs.type.is_volatile = true;
        if (t.text.find("restrict") != std::string::npos) {
          specs.type.is_restrict = true;
        }
        Advance();
        continue;
      }
      if (t.text == "struct" || t.text == "union") {
        bool is_union = t.text == "union";
        Advance();
        SkipAttributes();
        FRAPPE_ASSIGN_OR_RETURN(std::string tag, ParseRecordBody(is_union));
        specs.type.base =
            is_union ? TypeName::Base::kUnion : TypeName::Base::kStruct;
        specs.type.name = tag;
        specs.defined_record = true;
        saw_base = true;
        continue;
      }
      if (t.text == "enum") {
        Advance();
        SkipAttributes();
        FRAPPE_ASSIGN_OR_RETURN(std::string tag, ParseEnumBody());
        specs.type.base = TypeName::Base::kEnum;
        specs.type.name = tag;
        saw_base = true;
        continue;
      }
      if (kPrimitiveKeywords.count(t.text)) {
        primitive_parts.push_back(t.text);
        Advance();
        saw_base = true;
        continue;
      }
      if (!saw_base && typedefs_.count(t.text)) {
        specs.type.base = TypeName::Base::kTypedefName;
        specs.type.name = t.text;
        Advance();
        saw_base = true;
        continue;
      }
      break;
    }
    if (!primitive_parts.empty()) {
      std::string joined;
      for (const std::string& p : primitive_parts) {
        if (!joined.empty()) joined += " ";
        joined += p;
      }
      specs.type.base = joined == "void" ? TypeName::Base::kVoid
                                         : TypeName::Base::kPrimitive;
      specs.type.name = joined;
    }
    if (!saw_base && specs.type.base == TypeName::Base::kUnknown) {
      // Implicit int (old C) — treat bare `static x;` etc. as int.
      specs.type.base = TypeName::Base::kPrimitive;
      specs.type.name = "int";
    }
    return specs;
  }

  // Parses `struct tag? { ... }?`; returns the tag (generated if
  // anonymous). Records a RecordDecl when a body is present.
  Result<std::string> ParseRecordBody(bool is_union) {
    std::string tag;
    SourceLoc loc = Peek().loc;
    if (Peek().kind == CToken::Kind::kIdent &&
        !Peek().IsPunct("{")) {
      tag = Advance().text;
      loc = Peek().loc;
    }
    if (!Peek().IsPunct("{")) return tag;  // reference only
    Advance();  // {
    RecordDecl record;
    record.is_union = is_union;
    record.tag = tag.empty() ? MakeAnonTag(is_union ? "union" : "struct")
                             : tag;
    record.is_definition = true;
    record.loc = loc;
    while (!Peek().IsPunct("}") && !Peek().IsEof()) {
      FRAPPE_RETURN_IF_ERROR(ParseFieldDeclaration(&record));
    }
    FRAPPE_RETURN_IF_ERROR(ExpectPunct("}"));
    std::string result = record.tag;
    unit_.records.push_back(std::move(record));
    return result;
  }

  Status ParseFieldDeclaration(RecordDecl* record) {
    FRAPPE_ASSIGN_OR_RETURN(DeclSpecs specs, ParseDeclSpecs());
    // Anonymous nested record used directly as a member container:
    // `struct { ... };`
    if (Peek().IsPunct(";")) {
      Advance();
      return Status::OK();
    }
    while (true) {
      FRAPPE_ASSIGN_OR_RETURN(VarDeclarator decl, ParseDeclarator(specs.type));
      if (AcceptPunct(":")) {
        // Bitfield width: constant expression; accept a number or skip.
        if (Peek().kind == CToken::Kind::kNumber) {
          decl.bit_width = ParseNumberText(Advance().text);
        } else {
          FRAPPE_ASSIGN_OR_RETURN(ExprPtr ignored, ParseAssignment());
          (void)ignored;
        }
      }
      SkipAttributes();
      if (!decl.name.empty()) record->fields.push_back(std::move(decl));
      if (AcceptPunct(",")) continue;
      FRAPPE_RETURN_IF_ERROR(ExpectPunct(";"));
      break;
    }
    return Status::OK();
  }

  Result<std::string> ParseEnumBody() {
    std::string tag;
    SourceLoc loc = Peek().loc;
    if (Peek().kind == CToken::Kind::kIdent && !Peek().IsPunct("{")) {
      tag = Advance().text;
    }
    if (!Peek().IsPunct("{")) return tag;
    Advance();  // {
    EnumDecl decl;
    decl.tag = tag.empty() ? MakeAnonTag("enum") : tag;
    decl.is_definition = true;
    decl.loc = loc;
    int64_t next_value = 0;
    while (!Peek().IsPunct("}") && !Peek().IsEof()) {
      if (Peek().kind != CToken::Kind::kIdent) {
        return ErrorHere("expected enumerator name");
      }
      EnumeratorDecl enumerator;
      const CToken& name = Advance();
      enumerator.name = name.text;
      enumerator.loc = name.loc;
      enumerator.name_len = name.length;
      if (AcceptPunct("=")) {
        // Constant expression; evaluate numbers, fall back to sequential.
        if (Peek().kind == CToken::Kind::kNumber &&
            (Peek(1).IsPunct(",") || Peek(1).IsPunct("}"))) {
          enumerator.value = ParseNumberText(Advance().text);
          enumerator.has_value = true;
          next_value = enumerator.value + 1;
        } else if (Peek().IsPunct("-") &&
                   Peek(1).kind == CToken::Kind::kNumber &&
                   (Peek(2).IsPunct(",") || Peek(2).IsPunct("}"))) {
          Advance();
          enumerator.value = -ParseNumberText(Advance().text);
          enumerator.has_value = true;
          next_value = enumerator.value + 1;
        } else {
          FRAPPE_ASSIGN_OR_RETURN(ExprPtr ignored, ParseAssignment());
          (void)ignored;
          enumerator.value = next_value++;
          enumerator.has_value = true;
        }
      } else {
        enumerator.value = next_value++;
        enumerator.has_value = true;
      }
      enumerators_.insert(enumerator.name);
      decl.enumerators.push_back(std::move(enumerator));
      if (!AcceptPunct(",")) break;
    }
    FRAPPE_RETURN_IF_ERROR(ExpectPunct("}"));
    std::string result = decl.tag;
    unit_.enums.push_back(std::move(decl));
    return result;
  }

  // Parses a declarator: pointers, name, arrays, function-pointer form.
  Result<VarDeclarator> ParseDeclarator(TypeName base) {
    VarDeclarator decl;
    decl.type = base;
    while (true) {
      if (AcceptPunct("*")) {
        ++decl.type.pointer_depth;
        continue;
      }
      if (Peek().kind == CToken::Kind::kIdent &&
          kQualifierKeywords.count(Peek().text)) {
        if (Peek().text == "const") decl.type.is_const = true;
        if (Peek().text == "volatile") decl.type.is_volatile = true;
        if (Peek().text.find("restrict") != std::string::npos) {
          decl.type.is_restrict = true;
        }
        Advance();
        continue;
      }
      break;
    }
    SkipAttributes();
    // Function pointer: (*name)(params).
    if (Peek().IsPunct("(") && Peek(1).IsPunct("*")) {
      Advance();  // (
      Advance();  // *
      decl.type.function_pointer = true;
      ++decl.type.pointer_depth;
      if (Peek().kind == CToken::Kind::kIdent) {
        const CToken& name = Advance();
        decl.name = name.text;
        decl.loc = name.loc;
        decl.name_len = name.length;
        decl.in_macro = name.in_macro;
      }
      while (AcceptPunct("[")) {  // array of function pointers
        if (!Peek().IsPunct("]")) Advance();
        FRAPPE_RETURN_IF_ERROR(ExpectPunct("]"));
        decl.type.array_dims.push_back(-1);
      }
      FRAPPE_RETURN_IF_ERROR(ExpectPunct(")"));
      if (Peek().IsPunct("(")) SkipBalancedParens();
      return decl;
    }
    if (Peek().kind == CToken::Kind::kIdent &&
        !kPrimitiveKeywords.count(Peek().text)) {
      const CToken& name = Advance();
      decl.name = name.text;
      decl.loc = name.loc;
      decl.name_len = name.length;
      decl.in_macro = name.in_macro;
    }
    while (AcceptPunct("[")) {
      if (Peek().kind == CToken::Kind::kNumber && Peek(1).IsPunct("]")) {
        decl.type.array_dims.push_back(ParseNumberText(Advance().text));
      } else if (Peek().IsPunct("]")) {
        decl.type.array_dims.push_back(-1);
      } else {
        // Dimension is a constant expression (often an enumerator or a
        // macro-expanded value): parse and discard, dimension unknown.
        FRAPPE_ASSIGN_OR_RETURN(ExprPtr dim, ParseAssignment());
        (void)dim;
        decl.type.array_dims.push_back(-1);
      }
      FRAPPE_RETURN_IF_ERROR(ExpectPunct("]"));
    }
    return decl;
  }

  static int64_t ParseNumberText(std::string_view text) {
    size_t end = text.size();
    while (end > 0 && std::isalpha(static_cast<unsigned char>(
                          text[end - 1]))) {
      --end;
    }
    try {
      return std::stoll(std::string(text.substr(0, end)), nullptr, 0);
    } catch (...) {
      return 0;
    }
  }

  std::string MakeAnonTag(std::string_view kind) {
    return "<anonymous " + std::string(kind) + " " +
           std::to_string(anon_counter_++) + ">";
  }

  // --- top level ---

  Status ParseTopLevel() {
    SkipAttributes();
    if (AcceptPunct(";")) return Status::OK();
    if (!AtDeclarationStart()) {
      return ErrorHere("expected a declaration");
    }
    FRAPPE_ASSIGN_OR_RETURN(DeclSpecs specs, ParseDeclSpecs());

    // Bare record/enum definition: `struct foo { ... };`
    if (Peek().IsPunct(";")) {
      Advance();
      return Status::OK();
    }

    if (specs.is_typedef) {
      while (true) {
        FRAPPE_ASSIGN_OR_RETURN(VarDeclarator decl,
                                ParseDeclarator(specs.type));
        if (!decl.name.empty()) {
          TypedefDecl td;
          td.name = decl.name;
          td.underlying = decl.type;
          td.loc = decl.loc;
          typedefs_.insert(td.name);
          unit_.typedefs.push_back(std::move(td));
        }
        if (AcceptPunct(",")) continue;
        FRAPPE_RETURN_IF_ERROR(ExpectPunct(";"));
        break;
      }
      return Status::OK();
    }

    // Could be a function or global(s). Parse the first declarator and
    // look at what follows.
    FRAPPE_ASSIGN_OR_RETURN(VarDeclarator first, ParseDeclarator(specs.type));
    if (!first.type.function_pointer && Peek().IsPunct("(")) {
      return ParseFunctionRest(specs, std::move(first));
    }
    // Global variable declaration list.
    VarDeclarator decl = std::move(first);
    while (true) {
      SkipAttributes();
      if (AcceptPunct("=")) {
        FRAPPE_ASSIGN_OR_RETURN(decl.init, ParseInitializer());
      }
      if (!decl.name.empty()) {
        GlobalDecl global;
        global.decl = std::move(decl);
        global.is_static = specs.is_static;
        global.is_extern = specs.is_extern;
        unit_.globals.push_back(std::move(global));
      }
      if (AcceptPunct(",")) {
        FRAPPE_ASSIGN_OR_RETURN(decl, ParseDeclarator(specs.type));
        continue;
      }
      FRAPPE_RETURN_IF_ERROR(ExpectPunct(";"));
      break;
    }
    return Status::OK();
  }

  Status ParseFunctionRest(const DeclSpecs& specs, VarDeclarator declarator) {
    FunctionDecl fn;
    fn.name = declarator.name;
    fn.return_type = declarator.type;
    fn.is_static = specs.is_static;
    fn.loc = declarator.loc;
    fn.name_len = declarator.name_len;
    fn.in_macro = declarator.in_macro;
    FRAPPE_RETURN_IF_ERROR(ExpectPunct("("));
    if (!Peek().IsPunct(")")) {
      // `(void)` prototype.
      if (Peek().IsIdent("void") && Peek(1).IsPunct(")")) {
        Advance();
      } else {
        while (true) {
          if (AcceptPunct("...")) {
            fn.variadic = true;
            break;
          }
          FRAPPE_ASSIGN_OR_RETURN(DeclSpecs param_specs, ParseDeclSpecs());
          FRAPPE_ASSIGN_OR_RETURN(VarDeclarator param,
                                  ParseDeclarator(param_specs.type));
          ParamDecl p;
          p.name = param.name;
          p.type = param.type;
          p.loc = param.loc;
          fn.params.push_back(std::move(p));
          if (!AcceptPunct(",")) break;
        }
      }
    }
    FRAPPE_RETURN_IF_ERROR(ExpectPunct(")"));
    SkipAttributes();
    if (AcceptPunct(";")) {
      fn.is_definition = false;
      unit_.functions.push_back(std::move(fn));
      return Status::OK();
    }
    if (!Peek().IsPunct("{")) {
      return ErrorHere("expected ';' or function body");
    }
    fn.is_definition = true;
    FRAPPE_ASSIGN_OR_RETURN(fn.body, ParseCompound());
    unit_.functions.push_back(std::move(fn));
    return Status::OK();
  }

  Result<ExprPtr> ParseInitializer() {
    if (Peek().IsPunct("{")) {
      auto expr = std::make_unique<Expr>();
      expr->kind = ExprKind::kInitList;
      expr->loc = Peek().loc;
      Advance();  // {
      while (!Peek().IsPunct("}") && !Peek().IsEof()) {
        // Designators: `.field =` / `[i] =` — skip to the value.
        while (Peek().IsPunct(".") || Peek().IsPunct("[")) {
          if (AcceptPunct(".")) {
            if (Peek().kind == CToken::Kind::kIdent) Advance();
          } else {
            Advance();  // [
            FRAPPE_ASSIGN_OR_RETURN(ExprPtr idx, ParseAssignment());
            expr->args.push_back(std::move(idx));
            FRAPPE_RETURN_IF_ERROR(ExpectPunct("]"));
          }
          AcceptPunct("=");
        }
        FRAPPE_ASSIGN_OR_RETURN(ExprPtr item, ParseInitializer());
        expr->args.push_back(std::move(item));
        if (!AcceptPunct(",")) break;
      }
      FRAPPE_RETURN_IF_ERROR(ExpectPunct("}"));
      SetEnd(expr.get());
      return expr;
    }
    return ParseAssignment();
  }

  // --- statements ---

  Result<StmtPtr> ParseCompound() {
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = StmtKind::kCompound;
    stmt->loc = Peek().loc;
    FRAPPE_RETURN_IF_ERROR(ExpectPunct("{"));
    while (!Peek().IsPunct("}") && !Peek().IsEof()) {
      FRAPPE_ASSIGN_OR_RETURN(StmtPtr child, ParseStatement());
      stmt->children.push_back(std::move(child));
    }
    FRAPPE_RETURN_IF_ERROR(ExpectPunct("}"));
    return stmt;
  }

  Result<StmtPtr> ParseStatement() {
    const CToken& t = Peek();
    if (t.IsPunct("{")) return ParseCompound();
    if (t.IsPunct(";")) {
      Advance();
      auto stmt = std::make_unique<Stmt>();
      stmt->kind = StmtKind::kEmpty;
      stmt->loc = t.loc;
      return stmt;
    }
    if (t.IsIdent("if")) return ParseIf();
    if (t.IsIdent("while")) return ParseWhile();
    if (t.IsIdent("do")) return ParseDoWhile();
    if (t.IsIdent("for")) return ParseFor();
    if (t.IsIdent("return")) {
      auto stmt = std::make_unique<Stmt>();
      stmt->kind = StmtKind::kReturn;
      stmt->loc = t.loc;
      Advance();
      if (!Peek().IsPunct(";")) {
        FRAPPE_ASSIGN_OR_RETURN(stmt->expr, ParseExpression());
      }
      FRAPPE_RETURN_IF_ERROR(ExpectPunct(";"));
      return stmt;
    }
    if (t.IsIdent("break") || t.IsIdent("continue")) {
      auto stmt = std::make_unique<Stmt>();
      stmt->kind = t.IsIdent("break") ? StmtKind::kBreak
                                      : StmtKind::kContinue;
      stmt->loc = t.loc;
      Advance();
      FRAPPE_RETURN_IF_ERROR(ExpectPunct(";"));
      return stmt;
    }
    if (t.IsIdent("switch")) return ParseSwitch();
    if (t.IsIdent("case") || t.IsIdent("default")) {
      auto stmt = std::make_unique<Stmt>();
      stmt->kind = StmtKind::kCase;
      stmt->loc = t.loc;
      bool is_default = t.IsIdent("default");
      Advance();
      if (!is_default) {
        FRAPPE_ASSIGN_OR_RETURN(stmt->expr, ParseConditionalExpr());
      }
      FRAPPE_RETURN_IF_ERROR(ExpectPunct(":"));
      return stmt;
    }
    if (t.IsIdent("goto")) {
      auto stmt = std::make_unique<Stmt>();
      stmt->kind = StmtKind::kGoto;
      stmt->loc = t.loc;
      Advance();
      if (Peek().kind == CToken::Kind::kIdent) stmt->label = Advance().text;
      FRAPPE_RETURN_IF_ERROR(ExpectPunct(";"));
      return stmt;
    }
    // Label: ident ':' (not a ternary — statement position).
    if (t.kind == CToken::Kind::kIdent && Peek(1).IsPunct(":") &&
        !IsTypeStart(t)) {
      auto stmt = std::make_unique<Stmt>();
      stmt->kind = StmtKind::kLabel;
      stmt->loc = t.loc;
      stmt->label = Advance().text;
      Advance();  // :
      return stmt;
    }
    if (AtDeclarationStart()) return ParseDeclStatement();

    auto stmt = std::make_unique<Stmt>();
    stmt->kind = StmtKind::kExpr;
    stmt->loc = t.loc;
    FRAPPE_ASSIGN_OR_RETURN(stmt->expr, ParseExpression());
    FRAPPE_RETURN_IF_ERROR(ExpectPunct(";"));
    return stmt;
  }

  Result<StmtPtr> ParseDeclStatement() {
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = StmtKind::kDecl;
    stmt->loc = Peek().loc;
    FRAPPE_ASSIGN_OR_RETURN(DeclSpecs specs, ParseDeclSpecs());
    stmt->decls_static = specs.is_static;
    if (Peek().IsPunct(";")) {  // local record/enum definition
      Advance();
      return stmt;
    }
    while (true) {
      FRAPPE_ASSIGN_OR_RETURN(VarDeclarator decl, ParseDeclarator(specs.type));
      if (AcceptPunct("=")) {
        FRAPPE_ASSIGN_OR_RETURN(decl.init, ParseInitializer());
      }
      if (!decl.name.empty()) stmt->decls.push_back(std::move(decl));
      if (AcceptPunct(",")) continue;
      FRAPPE_RETURN_IF_ERROR(ExpectPunct(";"));
      break;
    }
    return stmt;
  }

  Result<StmtPtr> ParseIf() {
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = StmtKind::kIf;
    stmt->loc = Peek().loc;
    Advance();  // if
    FRAPPE_RETURN_IF_ERROR(ExpectPunct("("));
    FRAPPE_ASSIGN_OR_RETURN(stmt->expr, ParseExpression());
    FRAPPE_RETURN_IF_ERROR(ExpectPunct(")"));
    FRAPPE_ASSIGN_OR_RETURN(StmtPtr then_branch, ParseStatement());
    stmt->children.push_back(std::move(then_branch));
    if (AcceptIdent("else")) {
      FRAPPE_ASSIGN_OR_RETURN(StmtPtr else_branch, ParseStatement());
      stmt->children.push_back(std::move(else_branch));
    }
    return stmt;
  }

  Result<StmtPtr> ParseWhile() {
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = StmtKind::kWhile;
    stmt->loc = Peek().loc;
    Advance();
    FRAPPE_RETURN_IF_ERROR(ExpectPunct("("));
    FRAPPE_ASSIGN_OR_RETURN(stmt->expr, ParseExpression());
    FRAPPE_RETURN_IF_ERROR(ExpectPunct(")"));
    FRAPPE_ASSIGN_OR_RETURN(StmtPtr body, ParseStatement());
    stmt->children.push_back(std::move(body));
    return stmt;
  }

  Result<StmtPtr> ParseDoWhile() {
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = StmtKind::kDoWhile;
    stmt->loc = Peek().loc;
    Advance();  // do
    FRAPPE_ASSIGN_OR_RETURN(StmtPtr body, ParseStatement());
    stmt->children.push_back(std::move(body));
    if (!AcceptIdent("while")) return ErrorHere("expected 'while'");
    FRAPPE_RETURN_IF_ERROR(ExpectPunct("("));
    FRAPPE_ASSIGN_OR_RETURN(stmt->expr, ParseExpression());
    FRAPPE_RETURN_IF_ERROR(ExpectPunct(")"));
    FRAPPE_RETURN_IF_ERROR(ExpectPunct(";"));
    return stmt;
  }

  Result<StmtPtr> ParseFor() {
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = StmtKind::kFor;
    stmt->loc = Peek().loc;
    Advance();  // for
    FRAPPE_RETURN_IF_ERROR(ExpectPunct("("));
    // Init: declaration or expression.
    if (!Peek().IsPunct(";")) {
      if (AtDeclarationStart()) {
        FRAPPE_ASSIGN_OR_RETURN(DeclSpecs specs, ParseDeclSpecs());
        while (true) {
          FRAPPE_ASSIGN_OR_RETURN(VarDeclarator decl,
                                  ParseDeclarator(specs.type));
          if (AcceptPunct("=")) {
            FRAPPE_ASSIGN_OR_RETURN(decl.init, ParseInitializer());
          }
          if (!decl.name.empty()) stmt->decls.push_back(std::move(decl));
          if (!AcceptPunct(",")) break;
        }
      } else {
        FRAPPE_ASSIGN_OR_RETURN(ExprPtr init, ParseExpression());
        auto init_stmt = std::make_unique<Stmt>();
        init_stmt->kind = StmtKind::kExpr;
        init_stmt->loc = stmt->loc;
        init_stmt->expr = std::move(init);
        stmt->children.push_back(std::move(init_stmt));
      }
    }
    FRAPPE_RETURN_IF_ERROR(ExpectPunct(";"));
    if (!Peek().IsPunct(";")) {
      FRAPPE_ASSIGN_OR_RETURN(stmt->expr, ParseExpression());
    }
    FRAPPE_RETURN_IF_ERROR(ExpectPunct(";"));
    if (!Peek().IsPunct(")")) {
      FRAPPE_ASSIGN_OR_RETURN(stmt->expr2, ParseExpression());
    }
    FRAPPE_RETURN_IF_ERROR(ExpectPunct(")"));
    FRAPPE_ASSIGN_OR_RETURN(StmtPtr body, ParseStatement());
    stmt->children.push_back(std::move(body));
    return stmt;
  }

  Result<StmtPtr> ParseSwitch() {
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = StmtKind::kSwitch;
    stmt->loc = Peek().loc;
    Advance();
    FRAPPE_RETURN_IF_ERROR(ExpectPunct("("));
    FRAPPE_ASSIGN_OR_RETURN(stmt->expr, ParseExpression());
    FRAPPE_RETURN_IF_ERROR(ExpectPunct(")"));
    FRAPPE_ASSIGN_OR_RETURN(StmtPtr body, ParseStatement());
    stmt->children.push_back(std::move(body));
    return stmt;
  }

  // --- expressions ---

  void SetStart(Expr* expr, const CToken& t) {
    expr->loc = t.loc;
    expr->in_macro = t.in_macro;
  }
  void SetEnd(Expr* expr) {
    // Approximate: end at the token before the current position.
    const CToken& prev = tokens_[pos_ > 0 ? pos_ - 1 : 0];
    expr->end_loc = prev.loc;
    expr->end_len = prev.length;
  }

  Result<ExprPtr> ParseExpression() {
    FRAPPE_ASSIGN_OR_RETURN(ExprPtr left, ParseAssignment());
    while (Peek().IsPunct(",")) {
      Advance();
      FRAPPE_ASSIGN_OR_RETURN(ExprPtr right, ParseAssignment());
      auto comma = std::make_unique<Expr>();
      comma->kind = ExprKind::kBinary;
      comma->text = ",";
      comma->loc = left->loc;
      comma->lhs = std::move(left);
      comma->rhs = std::move(right);
      SetEnd(comma.get());
      left = std::move(comma);
    }
    return left;
  }

  static bool IsAssignOp(const CToken& t) {
    static const std::set<std::string> kOps = {"=",  "+=", "-=", "*=",
                                               "/=", "%=", "&=", "|=",
                                               "^=", "<<=", ">>="};
    return t.kind == CToken::Kind::kPunct && kOps.count(t.text) != 0;
  }

  Result<ExprPtr> ParseAssignment() {
    FRAPPE_ASSIGN_OR_RETURN(ExprPtr left, ParseConditionalExpr());
    if (IsAssignOp(Peek())) {
      std::string op = Advance().text;
      FRAPPE_ASSIGN_OR_RETURN(ExprPtr right, ParseAssignment());
      auto expr = std::make_unique<Expr>();
      expr->kind = ExprKind::kBinary;
      expr->text = op;
      expr->loc = left->loc;
      expr->in_macro = left->in_macro;
      expr->lhs = std::move(left);
      expr->rhs = std::move(right);
      SetEnd(expr.get());
      return expr;
    }
    return left;
  }

  Result<ExprPtr> ParseConditionalExpr() {
    FRAPPE_ASSIGN_OR_RETURN(ExprPtr cond, ParseBinary(0));
    if (Peek().IsPunct("?")) {
      Advance();
      // GNU elvis operator `a ?: b`: the middle operand is the condition.
      ExprPtr then_expr;
      if (!Peek().IsPunct(":")) {
        FRAPPE_ASSIGN_OR_RETURN(then_expr, ParseExpression());
      } else {
        then_expr = std::make_unique<Expr>();
        then_expr->kind = ExprKind::kIdent;
        then_expr->text = "";  // opaque: condition value reused
        then_expr->loc = cond->loc;
      }
      FRAPPE_RETURN_IF_ERROR(ExpectPunct(":"));
      FRAPPE_ASSIGN_OR_RETURN(ExprPtr else_expr, ParseConditionalExpr());
      auto expr = std::make_unique<Expr>();
      expr->kind = ExprKind::kTernary;
      expr->loc = cond->loc;
      expr->lhs = std::move(cond);
      expr->rhs = std::move(then_expr);
      expr->third = std::move(else_expr);
      SetEnd(expr.get());
      return expr;
    }
    return cond;
  }

  static int BinPrec(const CToken& t) {
    if (t.kind != CToken::Kind::kPunct) return 0;
    const std::string& op = t.text;
    if (op == "||") return 1;
    if (op == "&&") return 2;
    if (op == "|") return 3;
    if (op == "^") return 4;
    if (op == "&") return 5;
    if (op == "==" || op == "!=") return 6;
    if (op == "<" || op == ">" || op == "<=" || op == ">=") return 7;
    if (op == "<<" || op == ">>") return 8;
    if (op == "+" || op == "-") return 9;
    if (op == "*" || op == "/" || op == "%") return 10;
    return 0;
  }

  Result<ExprPtr> ParseBinary(int min_prec) {
    FRAPPE_ASSIGN_OR_RETURN(ExprPtr left, ParseUnary());
    while (true) {
      int prec = BinPrec(Peek());
      if (prec == 0 || prec < min_prec) break;
      std::string op = Advance().text;
      FRAPPE_ASSIGN_OR_RETURN(ExprPtr right, ParseBinary(prec + 1));
      auto expr = std::make_unique<Expr>();
      expr->kind = ExprKind::kBinary;
      expr->text = op;
      expr->loc = left->loc;
      expr->in_macro = left->in_macro;
      expr->lhs = std::move(left);
      expr->rhs = std::move(right);
      SetEnd(expr.get());
      left = std::move(expr);
    }
    return left;
  }

  // True if the parenthesis at the current position opens a type name
  // (cast or sizeof operand).
  bool ParenIsType() const {
    if (!Peek().IsPunct("(")) return false;
    const CToken& inner = Peek(1);
    if (inner.kind != CToken::Kind::kIdent) return false;
    return kPrimitiveKeywords.count(inner.text) != 0 ||
           kQualifierKeywords.count(inner.text) != 0 ||
           inner.text == "struct" || inner.text == "union" ||
           inner.text == "enum" || typedefs_.count(inner.text) != 0;
  }

  // Parses a type name inside parentheses (after '(' consumed).
  Result<TypeName> ParseTypeNameRest() {
    FRAPPE_ASSIGN_OR_RETURN(DeclSpecs specs, ParseDeclSpecs());
    TypeName type = specs.type;
    while (true) {
      if (AcceptPunct("*")) {
        ++type.pointer_depth;
        continue;
      }
      if (Peek().kind == CToken::Kind::kIdent &&
          kQualifierKeywords.count(Peek().text)) {
        Advance();
        continue;
      }
      break;
    }
    while (AcceptPunct("[")) {
      if (Peek().kind == CToken::Kind::kNumber) {
        type.array_dims.push_back(ParseNumberText(Advance().text));
      } else {
        type.array_dims.push_back(-1);
      }
      FRAPPE_RETURN_IF_ERROR(ExpectPunct("]"));
    }
    return type;
  }

  Result<ExprPtr> ParseUnary() {
    const CToken& t = Peek();
    // Cast.
    if (ParenIsType()) {
      size_t save = pos_;
      Advance();  // (
      Result<TypeName> type = ParseTypeNameRest();
      if (type.ok() && Peek().IsPunct(")")) {
        Advance();  // )
        // `(type){...}` compound literal or `(type)expr` cast; either way
        // the operand follows.
        FRAPPE_ASSIGN_OR_RETURN(ExprPtr operand,
                                Peek().IsPunct("{") ? ParseInitializer()
                                                    : ParseUnary());
        auto expr = std::make_unique<Expr>();
        expr->kind = ExprKind::kCast;
        SetStart(expr.get(), t);
        expr->type = *type;
        expr->lhs = std::move(operand);
        SetEnd(expr.get());
        return expr;
      }
      pos_ = save;  // not a cast after all
    }
    if (t.IsIdent("sizeof") || t.IsIdent("_Alignof") ||
        t.IsIdent("__alignof__")) {
      bool is_align = !t.IsIdent("sizeof");
      Advance();
      auto expr = std::make_unique<Expr>();
      expr->kind = is_align ? ExprKind::kAlignof : ExprKind::kSizeof;
      SetStart(expr.get(), t);
      if (ParenIsType()) {
        Advance();  // (
        FRAPPE_ASSIGN_OR_RETURN(expr->type, ParseTypeNameRest());
        FRAPPE_RETURN_IF_ERROR(ExpectPunct(")"));
      } else {
        FRAPPE_ASSIGN_OR_RETURN(expr->lhs, ParseUnary());
      }
      SetEnd(expr.get());
      return expr;
    }
    static const std::set<std::string> kUnaryOps = {"*", "&", "!", "~",
                                                    "-", "+", "++", "--"};
    if (t.kind == CToken::Kind::kPunct && kUnaryOps.count(t.text)) {
      std::string op = Advance().text;
      FRAPPE_ASSIGN_OR_RETURN(ExprPtr operand, ParseUnary());
      auto expr = std::make_unique<Expr>();
      expr->kind = ExprKind::kUnary;
      expr->text = op;
      SetStart(expr.get(), t);
      expr->lhs = std::move(operand);
      SetEnd(expr.get());
      return expr;
    }
    return ParsePostfix();
  }

  Result<ExprPtr> ParsePostfix() {
    FRAPPE_ASSIGN_OR_RETURN(ExprPtr expr, ParsePrimary());
    while (true) {
      const CToken& t = Peek();
      if (t.IsPunct("(")) {
        Advance();
        auto call = std::make_unique<Expr>();
        call->kind = ExprKind::kCall;
        call->loc = expr->loc;
        call->in_macro = expr->in_macro;
        call->lhs = std::move(expr);
        if (!Peek().IsPunct(")")) {
          while (true) {
            FRAPPE_ASSIGN_OR_RETURN(ExprPtr arg, ParseAssignment());
            call->args.push_back(std::move(arg));
            if (!AcceptPunct(",")) break;
          }
        }
        FRAPPE_RETURN_IF_ERROR(ExpectPunct(")"));
        SetEnd(call.get());
        expr = std::move(call);
        continue;
      }
      if (t.IsPunct("[")) {
        Advance();
        auto index = std::make_unique<Expr>();
        index->kind = ExprKind::kIndex;
        index->loc = expr->loc;
        index->in_macro = expr->in_macro;
        index->lhs = std::move(expr);
        FRAPPE_ASSIGN_OR_RETURN(index->rhs, ParseExpression());
        FRAPPE_RETURN_IF_ERROR(ExpectPunct("]"));
        SetEnd(index.get());
        expr = std::move(index);
        continue;
      }
      if (t.IsPunct(".") || t.IsPunct("->")) {
        bool arrow = t.IsPunct("->");
        Advance();
        if (Peek().kind != CToken::Kind::kIdent) {
          return ErrorHere("expected member name");
        }
        const CToken& member = Advance();
        auto access = std::make_unique<Expr>();
        access->kind = ExprKind::kMember;
        access->loc = expr->loc;
        access->in_macro = expr->in_macro || member.in_macro;
        access->arrow = arrow;
        access->text = member.text;
        access->lhs = std::move(expr);
        access->end_loc = member.loc;
        access->end_len = member.length;
        expr = std::move(access);
        continue;
      }
      if (t.IsPunct("++") || t.IsPunct("--")) {
        std::string op = Advance().text;
        auto postfix = std::make_unique<Expr>();
        postfix->kind = ExprKind::kPostfix;
        postfix->text = op;
        postfix->loc = expr->loc;
        postfix->in_macro = expr->in_macro;
        postfix->lhs = std::move(expr);
        SetEnd(postfix.get());
        expr = std::move(postfix);
        continue;
      }
      break;
    }
    return expr;
  }

  Result<ExprPtr> ParsePrimary() {
    const CToken& t = Peek();
    if (t.IsPunct("(")) {
      // GNU statement expression `({ ... })`: tolerated as an opaque value
      // (its internal references are not extracted — documented subset
      // limitation).
      if (Peek(1).IsPunct("{")) {
        Advance();  // (
        SkipBalancedBraces();
        FRAPPE_RETURN_IF_ERROR(ExpectPunct(")"));
        auto opaque = std::make_unique<Expr>();
        opaque->kind = ExprKind::kNumber;
        opaque->text = "0";
        SetStart(opaque.get(), t);
        SetEnd(opaque.get());
        return opaque;
      }
      Advance();
      FRAPPE_ASSIGN_OR_RETURN(ExprPtr inner, ParseExpression());
      FRAPPE_RETURN_IF_ERROR(ExpectPunct(")"));
      return inner;
    }
    auto expr = std::make_unique<Expr>();
    SetStart(expr.get(), t);
    expr->end_loc = t.loc;
    expr->end_len = t.length;
    switch (t.kind) {
      case CToken::Kind::kIdent:
        expr->kind = ExprKind::kIdent;
        expr->text = t.text;
        Advance();
        return expr;
      case CToken::Kind::kNumber:
        expr->kind = ExprKind::kNumber;
        expr->text = t.text;
        Advance();
        return expr;
      case CToken::Kind::kString: {
        expr->kind = ExprKind::kString;
        expr->text = t.text;
        Advance();
        // Adjacent string literal concatenation.
        while (Peek().kind == CToken::Kind::kString) Advance();
        return expr;
      }
      case CToken::Kind::kCharLit:
        expr->kind = ExprKind::kCharLit;
        expr->text = t.text;
        Advance();
        return expr;
      default:
        return ErrorHere("expected expression");
    }
  }

  const std::vector<CToken>& tokens_;
  size_t pos_ = 0;
  TranslationUnit unit_;
  std::set<std::string> typedefs_;
  std::set<std::string> enumerators_;
  int anon_counter_ = 0;
};

}  // namespace

Result<TranslationUnit> ParseUnit(const PreprocessedUnit& unit) {
  Parser parser(unit);
  return parser.Run();
}

}  // namespace frappe::extractor
