#include "extractor/build_model.h"

#include "common/string_util.h"
#include "extractor/c_parser.h"
#include "extractor/preprocessor.h"

namespace frappe::extractor {

using graph::NodeId;
using model::EdgeKind;
using model::NodeKind;

NodeId BuildDriver::MakeModule(const std::string& output) {
  auto it = modules_.find(output);
  if (it != modules_.end()) return it->second.node;
  NodeId node = extractor_.graph().AddNode(NodeKind::kModule,
                                           BaseName(output));
  extractor_.graph().SetLongName(node, output);
  modules_[output].node = node;
  return node;
}

Result<NodeId> BuildDriver::ModuleFor(const std::string& output) const {
  auto it = modules_.find(output);
  if (it == modules_.end()) {
    return Status::NotFound("no module built as '" + output + "'");
  }
  return it->second.node;
}

Result<NodeId> BuildDriver::Compile(const std::string& source,
                                    const std::string& output,
                                    const PreprocessOptions& options) {
  NodeId module = MakeModule(output);
  FRAPPE_ASSIGN_OR_RETURN(PreprocessedUnit pp,
                          Preprocess(vfs_, source, options));
  FRAPPE_ASSIGN_OR_RETURN(TranslationUnit ast, ParseUnit(pp));
  UnitSymbols symbols;
  FRAPPE_RETURN_IF_ERROR(extractor_.ExtractUnit(pp, ast, &symbols));
  extractor_.graph().AddEdgeUnchecked(EdgeKind::kCompiledFrom, module,
                                      symbols.main_file);
  modules_[output].units.push_back(std::move(symbols));
  ++stats_.units_compiled;
  return module;
}

Result<NodeId> BuildDriver::Link(const std::vector<std::string>& inputs,
                                 const std::string& output,
                                 const PreprocessOptions& options,
                                 bool is_library) {
  model::CodeGraph& graph = extractor_.graph();
  NodeId out_module = MakeModule(output);
  ModuleInfo& out_info = modules_[output];

  // Gather participating units: sources compiled directly into the output,
  // then the units of each input module.
  std::vector<const UnitSymbols*> all_units;
  int64_t link_order = 0;
  for (const std::string& input : inputs) {
    if (EndsWith(input, ".c")) {
      FRAPPE_ASSIGN_OR_RETURN(PreprocessedUnit pp,
                              Preprocess(vfs_, input, options));
      FRAPPE_ASSIGN_OR_RETURN(TranslationUnit ast, ParseUnit(pp));
      UnitSymbols symbols;
      FRAPPE_RETURN_IF_ERROR(extractor_.ExtractUnit(pp, ast, &symbols));
      graph.AddEdgeUnchecked(EdgeKind::kCompiledFrom, out_module,
                             symbols.main_file);
      out_info.units.push_back(std::move(symbols));
      ++stats_.units_compiled;
      continue;
    }
    auto it = modules_.find(input);
    if (it == modules_.end()) {
      return Status::NotFound("link input '" + input +
                              "' was never compiled");
    }
    EdgeKind kind = EndsWith(input, ".a") || EndsWith(input, ".so")
                        ? EdgeKind::kLinkedFromLib
                        : EdgeKind::kLinkedFrom;
    graph::EdgeId edge =
        graph.AddEdgeUnchecked(kind, out_module, it->second.node);
    graph.SetLinkOrder(edge, link_order++);
    for (const UnitSymbols& unit : it->second.units) {
      all_units.push_back(&unit);
    }
  }
  for (const UnitSymbols& unit : out_info.units) {
    all_units.push_back(&unit);
  }

  // Symbol resolution: every undefined declaration finds its definition
  // among the linked units.
  auto resolve = [&](const std::map<std::string, NodeId>& undefined,
                     auto defined_of, EdgeKind match_kind) {
    for (const auto& [name, decl_node] : undefined) {
      graph.AddEdgeUnchecked(EdgeKind::kLinkDeclares, out_module, decl_node);
      bool resolved = false;
      for (const UnitSymbols* unit : all_units) {
        const auto& defs = defined_of(*unit);
        auto def = defs.find(name);
        if (def != defs.end()) {
          graph.AddEdgeUnchecked(match_kind, decl_node, def->second);
          resolved = true;
          break;
        }
      }
      if (resolved) {
        ++stats_.symbols_resolved;
      } else if (!is_library) {
        ++stats_.symbols_unresolved;
      }
    }
  };
  for (const UnitSymbols* unit : all_units) {
    resolve(
        unit->undefined_functions,
        [](const UnitSymbols& u) -> const std::map<std::string, NodeId>& {
          return u.defined_functions;
        },
        EdgeKind::kLinkMatches);
    resolve(
        unit->undefined_globals,
        [](const UnitSymbols& u) -> const std::map<std::string, NodeId>& {
          return u.defined_globals;
        },
        EdgeKind::kLinkMatches);
  }
  ++stats_.modules_linked;
  return out_module;
}

Status BuildDriver::Run(const std::string& command_line) {
  std::vector<std::string_view> argv = SplitSkipEmpty(command_line, ' ');
  if (argv.empty()) return Status::InvalidArgument("empty command");

  PreprocessOptions options;
  bool compile_only = false;
  std::string output;
  std::vector<std::string> sources;
  std::vector<std::string> objects;

  // argv[0] is the compiler name (the wrapper pattern).
  for (size_t i = 1; i < argv.size(); ++i) {
    std::string_view arg = argv[i];
    if (arg == "-c") {
      compile_only = true;
    } else if (arg == "-o") {
      if (++i >= argv.size()) {
        return Status::InvalidArgument("-o without an argument");
      }
      output = std::string(argv[i]);
    } else if (StartsWith(arg, "-I")) {
      std::string_view dir = arg.substr(2);
      if (dir.empty()) {
        if (++i >= argv.size()) {
          return Status::InvalidArgument("-I without an argument");
        }
        dir = argv[i];
      }
      options.include_dirs.push_back(std::string(dir));
    } else if (StartsWith(arg, "-D")) {
      std::string_view def = arg.substr(2);
      size_t eq = def.find('=');
      if (eq == std::string_view::npos) {
        options.defines[std::string(def)] = "1";
      } else {
        options.defines[std::string(def.substr(0, eq))] =
            std::string(def.substr(eq + 1));
      }
    } else if (StartsWith(arg, "-")) {
      // Other flags (-O2, -Wall, -g, ...) are irrelevant to extraction.
    } else if (EndsWith(arg, ".c") || EndsWith(arg, ".h")) {
      sources.push_back(std::string(arg));
    } else if (EndsWith(arg, ".o") || EndsWith(arg, ".a") ||
               EndsWith(arg, ".so")) {
      objects.push_back(std::string(arg));
    } else {
      return Status::InvalidArgument("unrecognized input '" +
                                     std::string(arg) + "'");
    }
  }

  if (compile_only) {
    if (sources.size() != 1) {
      return Status::InvalidArgument(
          "-c expects exactly one source file");
    }
    if (output.empty()) {
      output = sources[0].substr(0, sources[0].size() - 2) + ".o";
    }
    return Compile(sources[0], output, options).status();
  }
  if (output.empty()) output = "a.out";
  std::vector<std::string> inputs = sources;
  inputs.insert(inputs.end(), objects.begin(), objects.end());
  if (inputs.empty()) {
    return Status::InvalidArgument("nothing to link");
  }
  return Link(inputs, output, options).status();
}

}  // namespace frappe::extractor
