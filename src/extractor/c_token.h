#ifndef FRAPPE_EXTRACTOR_C_TOKEN_H_
#define FRAPPE_EXTRACTOR_C_TOKEN_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace frappe::extractor {

// Location of a token in the (virtual) source tree. `file` indexes the
// preprocessing unit's file table; line/col are 1-based.
struct SourceLoc {
  int file = -1;
  int line = 0;
  int col = 0;

  bool valid() const { return file >= 0; }
  bool operator==(const SourceLoc&) const = default;
};

struct CToken {
  enum class Kind {
    kIdent,
    kNumber,
    kString,
    kCharLit,
    kPunct,
    kEof,
  };

  Kind kind = Kind::kEof;
  std::string text;
  SourceLoc loc;
  int length = 0;  // spelled length, for end-column computation

  // Macro provenance: set when the token came out of a macro expansion.
  // `macro` names the outermost macro; `loc` then points at the expansion
  // site, which is what the paper's IN_MACRO/USE_* properties record.
  bool in_macro = false;
  std::string macro;

  bool Is(std::string_view s) const { return text == s; }
  bool IsIdent(std::string_view s) const {
    return kind == Kind::kIdent && text == s;
  }
  bool IsPunct(std::string_view s) const {
    return kind == Kind::kPunct && text == s;
  }
  bool IsEof() const { return kind == Kind::kEof; }

  int end_col() const { return col_end(); }
  int col_end() const { return loc.col + (length > 0 ? length - 1 : 0); }
};

// One physical line of tokens (the preprocessor is line-oriented so
// directives can be recognized).
struct TokenLine {
  bool is_directive = false;
  std::vector<CToken> tokens;
};

// Tokenizes one file into lines. Handles line continuations (backslash
// newline), // and /* */ comments, string/char literals with escapes,
// numbers (including hex/suffixes, lexed as opaque text) and multi-char
// punctuators longest-first.
Result<std::vector<TokenLine>> LexCFile(std::string_view content,
                                        int file_index);

}  // namespace frappe::extractor

#endif  // FRAPPE_EXTRACTOR_C_TOKEN_H_
