#ifndef FRAPPE_EXTRACTOR_PREPROCESSOR_H_
#define FRAPPE_EXTRACTOR_PREPROCESSOR_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "extractor/c_token.h"
#include "extractor/vfs.h"

namespace frappe::extractor {

// A macro definition captured for the graph (one `macro` node each).
struct MacroDef {
  std::string name;
  bool function_like = false;
  std::vector<std::string> params;
  SourceLoc loc;  // of the name token in the #define
};

// One preprocessor-level dependency event.
struct MacroEvent {
  enum class Kind {
    kExpansion,      // macro expanded at `use` -> expands_macro edge
    kInterrogation,  // #ifdef/#ifndef/defined() -> interrogates_macro edge
  };
  Kind kind;
  std::string name;
  SourceLoc use;
};

struct IncludeEvent {
  int from_file;  // file-table indexes
  int to_file;
  SourceLoc use;  // location of the directive
};

struct PreprocessOptions {
  std::vector<std::string> include_dirs;
  // Predefined object-like macros (name -> replacement text).
  std::map<std::string, std::string> defines;
};

// Result of preprocessing one translation unit.
struct PreprocessedUnit {
  std::vector<CToken> tokens;       // expanded stream, kEof-terminated
  std::vector<std::string> files;   // file table; index 0 = main file
  std::vector<MacroDef> macros;
  std::vector<MacroEvent> events;
  std::vector<IncludeEvent> includes;
};

// Runs the preprocessor over `main_file`. Supports #include (quote/angle),
// object- and function-like #define (with #, ## and variadic __VA_ARGS__),
// #undef, #if/#ifdef/#ifndef/#elif/#else/#endif with an integer constant
// expression evaluator and defined(). Unknown directives (#pragma, #error
// in inactive regions) are skipped; #error in an active region fails.
Result<PreprocessedUnit> Preprocess(const Vfs& vfs,
                                    const std::string& main_file,
                                    const PreprocessOptions& options = {});

}  // namespace frappe::extractor

#endif  // FRAPPE_EXTRACTOR_PREPROCESSOR_H_
