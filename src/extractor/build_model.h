#ifndef FRAPPE_EXTRACTOR_BUILD_MODEL_H_
#define FRAPPE_EXTRACTOR_BUILD_MODEL_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "extractor/extract.h"
#include "extractor/vfs.h"

namespace frappe::extractor {

// Drives extraction the way Frappé's compiler-wrapper scripts do: it
// understands gcc-style command lines, runs the preprocessor+parser+
// extractor over each compiled source, models outputs (objects,
// executables, libraries) as `module` nodes, and performs symbol
// resolution at link time (link_declares / link_matches / linked_from).
class BuildDriver {
 public:
  BuildDriver(const Vfs* vfs, model::CodeGraph* graph)
      : vfs_(*vfs), extractor_(graph) {}

  // Compiles one source file into an object module:
  //   `gcc foo.c -c -o foo.o`.
  // Emits `foo.o -compiled_from-> foo.c` and extracts the unit.
  Result<graph::NodeId> Compile(const std::string& source,
                                const std::string& output,
                                const PreprocessOptions& options = {});

  // Links objects/libraries into an output module:
  //   `gcc main.o foo.o -o prog` / `ar rcs libx.a ...`.
  // Inputs that are source files are compiled directly into the output
  // (the paper's `gcc main.c foo.o -o prog` pattern: prog is
  // compiled_from main.c and linked_from foo.o).
  Result<graph::NodeId> Link(const std::vector<std::string>& inputs,
                             const std::string& output,
                             const PreprocessOptions& options = {},
                             bool is_library = false);

  // Parses and executes a gcc-like command line. Recognized: `-c`,
  // `-o OUT`, `-I DIR`, `-DNAME[=VALUE]`, *.c sources, *.o/*.a inputs.
  // The leading compiler name (gcc/cc/clang/...) is ignored, matching the
  // drop-in wrapper-script integration the paper describes.
  Status Run(const std::string& command_line);

  Extractor& extractor() { return extractor_; }
  model::CodeGraph& graph() { return extractor_.graph(); }

  // Module node for a previously built output.
  Result<graph::NodeId> ModuleFor(const std::string& output) const;

  struct Stats {
    size_t units_compiled = 0;
    size_t modules_linked = 0;
    size_t symbols_resolved = 0;
    size_t symbols_unresolved = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  struct ModuleInfo {
    graph::NodeId node = graph::kInvalidNode;
    std::vector<UnitSymbols> units;
  };

  graph::NodeId MakeModule(const std::string& output);

  const Vfs& vfs_;
  Extractor extractor_;
  std::map<std::string, ModuleInfo> modules_;
  Stats stats_;
};

}  // namespace frappe::extractor

#endif  // FRAPPE_EXTRACTOR_BUILD_MODEL_H_
