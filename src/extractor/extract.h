#ifndef FRAPPE_EXTRACTOR_EXTRACT_H_
#define FRAPPE_EXTRACTOR_EXTRACT_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "extractor/c_ast.h"
#include "extractor/preprocessor.h"
#include "model/code_graph.h"

namespace frappe::extractor {

// Link-time view of one compiled unit: which externally visible symbols it
// defines and which declarations it left unresolved.
struct UnitSymbols {
  graph::NodeId main_file = graph::kInvalidNode;
  std::map<std::string, graph::NodeId> defined_functions;  // extern defs
  std::map<std::string, graph::NodeId> defined_globals;
  std::map<std::string, graph::NodeId> undefined_functions;  // decl nodes
  std::map<std::string, graph::NodeId> undefined_globals;
};

// Emits the Frappé dependency graph (paper Table 1/2) from parsed
// translation units. One Extractor instance spans a whole build so that
// entities declared in shared headers map to a single node regardless of
// how many units include them.
class Extractor {
 public:
  explicit Extractor(model::CodeGraph* graph) : graph_(*graph) {}

  // Returns (creating if needed) the file node for `path`, wiring the
  // directory chain with dir_contains edges.
  graph::NodeId FileNode(const std::string& path);
  graph::NodeId DirectoryNode(const std::string& path);

  // Extracts one unit. `pp` supplies macro/include events, `ast` the
  // parsed declarations. Populates `symbols` for the linker.
  Status ExtractUnit(const PreprocessedUnit& pp, const TranslationUnit& ast,
                     UnitSymbols* symbols);

  model::CodeGraph& graph() { return graph_; }

 private:
  struct EntityKey {
    graph::NodeId file;
    std::string name;
    model::NodeKind kind;
    int line;
    auto operator<=>(const EntityKey&) const = default;
  };

  struct VarInfo {
    graph::NodeId node = graph::kInvalidNode;
    TypeName type;
  };

  struct UnitContext {
    const PreprocessedUnit* pp = nullptr;
    std::vector<graph::NodeId> file_nodes;  // parallel to pp->files
    // Unit-visible symbols.
    std::map<std::string, VarInfo> globals;
    std::map<std::string, graph::NodeId> functions;       // defs
    std::map<std::string, graph::NodeId> function_decls;  // decls
    std::map<std::string, graph::NodeId> enumerators;
    std::map<std::string, graph::NodeId> records;  // by tag
    std::map<std::string, graph::NodeId> enums;    // by tag
    std::map<std::string, TypeName> typedef_types;
    std::map<std::string, graph::NodeId> typedef_nodes;
    // Field lookup: record tag -> (field name -> info).
    std::map<std::string, std::map<std::string, VarInfo>> fields;
    // Fallback: field name -> info when unique unit-wide.
    std::map<std::string, VarInfo> unique_fields;
    std::set<std::string> ambiguous_fields;
    // Macro name -> node (latest definition wins, C semantics).
    std::map<std::string, graph::NodeId> macro_nodes;
    // Line spans of function definitions, for attributing macro events.
    struct FnSpan {
      int file;
      int start_line;
      int end_line;
      graph::NodeId node;
    };
    std::vector<FnSpan> fn_spans;
    UnitSymbols* symbols = nullptr;
  };

  // Scope stack used while walking a function body.
  struct Scope {
    std::map<std::string, VarInfo> vars;
  };

  struct FunctionContext {
    graph::NodeId node = graph::kInvalidNode;
    std::vector<Scope> scopes;
    int max_line = 0;  // furthest source line seen, for the macro pass
    const VarInfo* Lookup(const std::string& name) const {
      for (auto it = scopes.rbegin(); it != scopes.rend(); ++it) {
        auto found = it->vars.find(name);
        if (found != it->vars.end()) return &found->second;
      }
      return nullptr;
    }
  };

  // --- node acquisition (deduplicating) ---
  graph::NodeId EntityNode(model::NodeKind kind, const std::string& name,
                           graph::NodeId file, int line, bool* created);
  graph::NodeId TypeNode(UnitContext* ctx, const TypeName& type);
  graph::NodeId MacroNode(UnitContext* ctx, const std::string& name,
                          SourceLoc def_loc);

  // --- extraction passes ---
  Status ExtractTypes(UnitContext* ctx, const TranslationUnit& ast);
  Status ExtractGlobals(UnitContext* ctx, const TranslationUnit& ast);
  Status ExtractFunctions(UnitContext* ctx, const TranslationUnit& ast);
  Status ExtractMacros(UnitContext* ctx, const TranslationUnit& ast);

  Status WalkStmt(UnitContext* ctx, FunctionContext* fn, const Stmt& stmt);
  // `write` marks lvalue position of an assignment; `address_of` marks the
  // operand of unary '&'.
  Status WalkExpr(UnitContext* ctx, FunctionContext* fn, const Expr& expr,
                  bool write = false, bool address_of = false);

  Status DeclareLocal(UnitContext* ctx, FunctionContext* fn,
                      const VarDeclarator& decl, bool is_static);

  // --- edge helpers ---
  model::SourceRange RangeOf(const UnitContext& ctx, const Expr& expr) const;
  model::SourceRange TokenRange(const UnitContext& ctx, SourceLoc loc,
                                int length) const;
  graph::EdgeId Emit(model::EdgeKind kind, graph::NodeId src,
                     graph::NodeId dst);
  // Structural edges (contains, includes, isa_type, ...) are deduplicated.
  graph::EdgeId EmitOnce(model::EdgeKind kind, graph::NodeId src,
                         graph::NodeId dst);
  void EmitIsaType(UnitContext* ctx, graph::NodeId var, const TypeName& type);

  graph::NodeId ResolveMemberField(UnitContext* ctx, FunctionContext* fn,
                                   const Expr& member);
  const TypeName* TypeOfExpr(UnitContext* ctx, FunctionContext* fn,
                             const Expr& expr, TypeName* storage);

  model::CodeGraph& graph_;
  std::map<std::string, graph::NodeId> files_;
  std::map<std::string, graph::NodeId> dirs_;
  std::map<EntityKey, graph::NodeId> entities_;
  std::map<std::string, graph::NodeId> implicit_function_decls_;
  std::set<std::tuple<uint16_t, graph::NodeId, graph::NodeId>> unique_edges_;
};

}  // namespace frappe::extractor

#endif  // FRAPPE_EXTRACTOR_EXTRACT_H_
