#ifndef FRAPPE_EXTRACTOR_C_AST_H_
#define FRAPPE_EXTRACTOR_C_AST_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "extractor/c_token.h"

namespace frappe::extractor {

// AST for the C subset the extractor understands. The goal is dependency
// extraction, not compilation: the trees carry names, types and source
// ranges — constant values and full expression typing are out of scope
// except where a use case needs them (enumerator values, member bases).

// ---------------------------------------------------------------------------
// Types
// ---------------------------------------------------------------------------

struct TypeName {
  enum class Base {
    kVoid,
    kPrimitive,  // int, unsigned long, double, ...
    kStruct,
    kUnion,
    kEnum,
    kTypedefName,
    kUnknown,
  };
  Base base = Base::kUnknown;
  std::string name;          // normalized primitive spelling or tag/typedef
  int pointer_depth = 0;
  bool is_const = false;
  bool is_volatile = false;
  bool is_restrict = false;
  std::vector<int64_t> array_dims;  // -1 for unsized []
  bool function_pointer = false;    // simplified: (*name)(...) declarator

  bool IsPointer() const { return pointer_depth > 0 || function_pointer; }

  // Coded qualifier string per paper Table 2: ']' per array dimension,
  // '*' per pointer level, then c/v/r flags, in spoken order.
  std::string QualifierCode() const {
    std::string code;
    for (size_t i = 0; i < array_dims.size(); ++i) code += ']';
    for (int i = 0; i < pointer_depth; ++i) code += '*';
    if (is_const) code += 'c';
    if (is_volatile) code += 'v';
    if (is_restrict) code += 'r';
    return code;
  }
};

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

enum class ExprKind {
  kIdent,        // name
  kNumber,       // literal (text kept)
  kString,
  kCharLit,
  kCall,         // callee(args...)  — callee usually kIdent
  kMember,       // base.field / base->field (arrow flag)
  kIndex,        // base[index]
  kUnary,        // op operand (incl. * & ! ~ - + ++ -- prefix)
  kPostfix,      // operand++ / operand--
  kBinary,       // left op right (incl. assignments and comma)
  kTernary,      // cond ? then : else
  kCast,         // (type)operand
  kSizeof,       // sizeof(type) or sizeof expr
  kAlignof,      // _Alignof(type)
  kInitList,     // { ... } initializer
};

struct Expr {
  ExprKind kind;
  SourceLoc loc;       // start of the expression
  SourceLoc end_loc;   // location of its last token
  int end_len = 0;
  bool in_macro = false;

  std::string text;    // identifier name / literal text / operator / field
  bool arrow = false;  // kMember: -> vs .
  TypeName type;       // kCast/kSizeof/kAlignof target type (if a type)
  ExprPtr lhs;         // base / left / operand / callee / cond
  ExprPtr rhs;         // right / index / else-branch
  ExprPtr third;       // ternary else
  std::vector<ExprPtr> args;  // call args / init list items
};

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

struct VarDeclarator {
  std::string name;
  TypeName type;
  SourceLoc loc;       // of the name token
  int name_len = 0;
  ExprPtr init;
  int64_t bit_width = -1;  // fields only
  bool in_macro = false;
};

enum class StmtKind {
  kCompound,
  kExpr,
  kDecl,     // local variable declaration(s)
  kIf,
  kWhile,
  kDoWhile,
  kFor,
  kReturn,
  kBreak,
  kContinue,
  kSwitch,
  kCase,     // case expr: / default:
  kGoto,
  kLabel,
  kEmpty,
};

struct Stmt {
  StmtKind kind = StmtKind::kEmpty;
  SourceLoc loc;
  ExprPtr expr;                 // condition / return value / expression
  ExprPtr expr2;                // for-increment
  std::vector<VarDeclarator> decls;  // kDecl / for-init declarations
  bool decls_static = false;
  std::vector<StmtPtr> children;     // body / branches (then, else)
  std::string label;
};

// ---------------------------------------------------------------------------
// Top-level declarations
// ---------------------------------------------------------------------------

struct FieldDecl {
  VarDeclarator decl;
};

struct RecordDecl {
  bool is_union = false;
  std::string tag;   // empty for anonymous
  bool is_definition = false;
  std::vector<VarDeclarator> fields;
  SourceLoc loc;
  bool in_macro = false;
};

struct EnumeratorDecl {
  std::string name;
  bool has_value = false;
  int64_t value = 0;
  SourceLoc loc;
  int name_len = 0;
};

struct EnumDecl {
  std::string tag;
  bool is_definition = false;
  std::vector<EnumeratorDecl> enumerators;
  SourceLoc loc;
};

struct TypedefDecl {
  std::string name;
  TypeName underlying;
  SourceLoc loc;
};

struct ParamDecl {
  std::string name;  // may be empty in prototypes
  TypeName type;
  SourceLoc loc;
};

struct FunctionDecl {
  std::string name;
  TypeName return_type;
  std::vector<ParamDecl> params;
  bool variadic = false;
  bool is_definition = false;
  bool is_static = false;
  StmtPtr body;
  SourceLoc loc;       // of the name token
  int name_len = 0;
  bool in_macro = false;
};

struct GlobalDecl {
  VarDeclarator decl;
  bool is_static = false;
  bool is_extern = false;
};

// A parsed translation unit: ordered top-level declarations plus the
// record/enum/typedef definitions encountered anywhere in it.
struct TranslationUnit {
  std::vector<FunctionDecl> functions;
  std::vector<GlobalDecl> globals;
  std::vector<RecordDecl> records;
  std::vector<EnumDecl> enums;
  std::vector<TypedefDecl> typedefs;
};

}  // namespace frappe::extractor

#endif  // FRAPPE_EXTRACTOR_C_AST_H_
