#include "extractor/synthetic.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "common/string_util.h"

namespace frappe::extractor {

using graph::EdgeId;
using graph::NodeId;
using model::EdgeKind;
using model::NodeKind;
using model::SourceRange;

namespace {

// Entity budget at factor 1.0, calibrated so the totals land on the
// paper's Table 3 figures (~505 K nodes, ~4 M edges, ratio 1:8).
struct Budget {
  uint64_t directories, files, modules;
  uint64_t functions, function_decls, parameters, locals, static_locals;
  uint64_t globals, global_decls;
  uint64_t structs, unions, fields;
  uint64_t enums, enumerators, typedefs, macros;

  explicit Budget(double f) {
    directories = Scale(1600, f);
    files = Scale(16000, f);
    modules = Scale(900, f);
    functions = Scale(118000, f);
    function_decls = Scale(40000, f);
    parameters = Scale(142000, f);
    locals = Scale(62000, f);
    static_locals = Scale(2500, f);
    globals = Scale(12000, f);
    global_decls = Scale(3500, f);
    structs = Scale(17000, f);
    unions = Scale(1200, f);
    fields = Scale(52000, f);
    enums = Scale(2200, f);
    enumerators = Scale(11000, f);
    typedefs = Scale(4500, f);
    macros = Scale(24000, f);
  }

  static uint64_t Scale(uint64_t base, double f) {
    uint64_t v = static_cast<uint64_t>(std::llround(base * f));
    return v < 1 ? 1 : v;
  }
};

const char* const kSubsystems[] = {
    "kernel", "mm", "fs", "net", "block", "crypto", "lib", "sound",
    "drivers/pci", "drivers/net", "drivers/scsi", "drivers/usb",
    "drivers/gpu", "drivers/char", "arch/x86", "security",
};

const char* const kNameStems[] = {
    "init", "probe", "read", "write", "alloc", "free", "register",
    "unregister", "handle", "submit", "flush", "sync", "lock", "unlock",
    "queue", "dequeue", "attach", "detach", "open", "close", "ioctl",
    "media", "sector", "page", "inode", "dentry", "skb", "pci", "irq",
    "dma", "timer", "sched", "wake", "poll", "seek", "stat", "map",
};

const char* const kPrimitives[] = {
    "int", "unsigned int", "long", "unsigned long", "char", "void",
    "unsigned char", "short", "unsigned short", "long long", "u8", "u16",
    "u32", "u64", "size_t", "bool", "double",
};

// Popularity model for reference targets: a small "hot set" receives a
// fixed share of references with ~1/sqrt(rank) weights, the rest spread
// uniformly. Calibrated so the non-hub in-degree tail at paper scale tops
// out in the low thousands (Figure 7's x-axis reaches ~4.3 K) while the
// engineered hubs (`int`, `NULL`) stay far above it.
class ZipfPicker {
 public:
  ZipfPicker(size_t size, frappe::Rng* rng)
      : size_(size), rng_(rng) {
    size_t hot = std::min<size_t>(size, 1000);
    cumulative_.reserve(hot);
    double sum = 0;
    for (size_t k = 1; k <= hot; ++k) {
      sum += 1.0 / std::sqrt(static_cast<double>(k));
      cumulative_.push_back(sum);
    }
  }

  size_t Pick() {
    if (size_ == 0) return 0;
    if (!cumulative_.empty() && rng_->Bernoulli(0.3)) {
      double u = rng_->NextDouble() * cumulative_.back();
      auto it = std::lower_bound(cumulative_.begin(), cumulative_.end(), u);
      return static_cast<size_t>(it - cumulative_.begin());
    }
    return static_cast<size_t>(rng_->Uniform(size_));
  }

 private:
  size_t size_;
  frappe::Rng* rng_;
  std::vector<double> cumulative_;
};

class GraphGenerator {
 public:
  GraphGenerator(const GraphScale& scale, model::CodeGraph* graph)
      : budget_(scale.factor), rng_(scale.seed), graph_(*graph) {}

  GraphReport Run() {
    MakePrimitives();
    MakeTree();
    MakeMacros();
    MakeTypes();
    MakeGlobals();
    MakeFunctions();
    MakeBuildModel();
    report_.nodes = graph_.store().NodeCount();
    report_.edges = graph_.store().EdgeCount();
    return report_;
  }

 private:
  // --- naming ---

  std::string Name(std::string_view prefix, uint64_t i) {
    const char* stem_a = kNameStems[rng_.Uniform(std::size(kNameStems))];
    const char* stem_b = kNameStems[rng_.Uniform(std::size(kNameStems))];
    return std::string(prefix) + "_" + stem_a + "_" + stem_b + "_" +
           std::to_string(i);
  }

  SourceRange RandomRange(NodeId file) {
    int64_t line = rng_.UniformRange(1, 4000);
    int64_t col = rng_.UniformRange(1, 60);
    return SourceRange{static_cast<int64_t>(file), line, col, line,
                       col + rng_.UniformRange(2, 30)};
  }

  void AnnotateRef(EdgeId edge, NodeId file) {
    SourceRange use = RandomRange(file);
    graph_.SetUseRange(edge, use);
    SourceRange name = use;
    name.end_col = name.start_col + rng_.UniformRange(2, 16);
    graph_.SetNameRange(edge, name);
  }

  // --- structure ---

  void MakePrimitives() {
    for (const char* p : kPrimitives) {
      primitives_.push_back(graph_.Primitive(p));
    }
    report_.int_primitive = primitives_[0];
  }

  // Picks a type node with `int` strongly favored, giving Figure 7 its
  // dominant hub (degree ~79 K at factor 1.0 in the paper).
  NodeId PickType() {
    if (rng_.Bernoulli(0.12)) return primitives_[0];  // int
    if (!structs_.empty() && rng_.Bernoulli(0.35)) {
      return structs_[rng_.Uniform(structs_.size())];
    }
    if (!typedef_nodes_.empty() && rng_.Bernoulli(0.2)) {
      return typedef_nodes_[rng_.Uniform(typedef_nodes_.size())];
    }
    return primitives_[rng_.Uniform(primitives_.size())];
  }

  std::string RandomQualifiers() {
    std::string q;
    if (rng_.Bernoulli(0.35)) q += '*';
    if (rng_.Bernoulli(0.05)) q += '*';
    if (rng_.Bernoulli(0.12)) q += 'c';
    return q;
  }

  void EmitIsa(NodeId var, NodeId type) {
    EdgeId edge = graph_.AddEdgeUnchecked(EdgeKind::kIsaType, var, type);
    std::string q = RandomQualifiers();
    if (!q.empty()) graph_.SetQualifiers(edge, q);
  }

  void MakeTree() {
    // Directories: subsystem roots plus generated children.
    std::vector<NodeId> dirs;
    for (const char* name : kSubsystems) {
      NodeId dir = graph_.AddNode(NodeKind::kDirectory, BaseName(name));
      graph_.SetLongName(dir, name);
      dirs.push_back(dir);
    }
    while (dirs.size() < budget_.directories) {
      NodeId parent = dirs[rng_.Uniform(dirs.size())];
      NodeId dir = graph_.AddNode(NodeKind::kDirectory,
                                  Name("dir", dirs.size()));
      graph_.AddEdgeUnchecked(EdgeKind::kDirContains, parent, dir);
      dirs.push_back(dir);
    }
    // Files spread over directories; ~30% headers.
    for (uint64_t i = 0; i < budget_.files; ++i) {
      bool header = rng_.Bernoulli(0.3);
      std::string name = Name(header ? "hdr" : "src", i) +
                         (header ? ".h" : ".c");
      NodeId file = graph_.AddNode(NodeKind::kFile, name);
      NodeId dir = dirs[rng_.Uniform(dirs.size())];
      graph_.AddEdgeUnchecked(EdgeKind::kDirContains, dir, file);
      files_.push_back(file);
      if (header) headers_.push_back(file);
    }
    // Include edges: sources include a handful of headers; a few headers
    // are extremely popular (the NULL-carrying one most of all).
    if (headers_.empty()) headers_.push_back(files_[0]);
    for (NodeId file : files_) {
      uint64_t count = 1 + rng_.PowerLaw(2.0, 12);
      for (uint64_t k = 0; k < count; ++k) {
        NodeId header = rng_.Bernoulli(0.25)
                            ? headers_[rng_.Uniform(
                                  std::min<size_t>(headers_.size(), 8))]
                            : headers_[rng_.Uniform(headers_.size())];
        if (header != file) {
          graph_.AddEdgeUnchecked(EdgeKind::kIncludes, file, header);
        }
      }
    }
  }

  NodeId RandomFile() { return files_[rng_.Uniform(files_.size())]; }
  NodeId RandomSourceLike() { return RandomFile(); }

  void Place(NodeId entity, NodeId file) {
    graph_.AddEdgeUnchecked(EdgeKind::kFileContains, file, entity);
  }

  void MakeMacros() {
    // NULL first: the second hub of Figure 7 (degree ~19 K at the paper's
    // scale, "common constants referenced in many places").
    NodeId null_macro = graph_.AddNode(NodeKind::kMacro, "NULL");
    Place(null_macro, headers_[0]);
    macros_.push_back(null_macro);
    report_.null_macro = null_macro;
    for (uint64_t i = 1; i < budget_.macros; ++i) {
      NodeId macro = graph_.AddNode(
          NodeKind::kMacro, ToLowerUpper(Name("CONFIG", i)));
      Place(macro, headers_[rng_.Uniform(headers_.size())]);
      macros_.push_back(macro);
    }
  }

  static std::string ToLowerUpper(std::string s) {
    for (char& c : s) c = static_cast<char>(std::toupper(c));
    return s;
  }

  void MakeTypes() {
    for (uint64_t i = 0; i < budget_.structs + budget_.unions; ++i) {
      bool is_union = i >= budget_.structs;
      NodeId node = graph_.AddNode(
          is_union ? NodeKind::kUnion : NodeKind::kStruct,
          Name(is_union ? "un" : "st", i));
      Place(node, headers_[rng_.Uniform(headers_.size())]);
      structs_.push_back(node);
    }
    // Fields distributed over records; like every entity, a field is also
    // contained in a file (Figure 3's `f -[:file_contains]-> (n:field)`).
    for (uint64_t i = 0; i < budget_.fields; ++i) {
      NodeId record = structs_[rng_.Uniform(structs_.size())];
      NodeId field = graph_.AddNode(NodeKind::kField, Name("fld", i));
      graph_.AddEdgeUnchecked(EdgeKind::kContains, record, field);
      Place(field, headers_[rng_.Uniform(headers_.size())]);
      EmitIsa(field, PickType());
      fields_.push_back(field);
    }
    for (uint64_t i = 0; i < budget_.enums; ++i) {
      NodeId node = graph_.AddNode(NodeKind::kEnumDef, Name("en", i));
      Place(node, headers_[rng_.Uniform(headers_.size())]);
      enums_.push_back(node);
    }
    for (uint64_t i = 0; i < budget_.enumerators; ++i) {
      NodeId owner = enums_[rng_.Uniform(enums_.size())];
      NodeId node = graph_.AddNode(NodeKind::kEnumerator,
                                   ToLowerUpper(Name("E", i)));
      graph_.SetEnumValue(node, static_cast<int64_t>(i));
      graph_.AddEdgeUnchecked(EdgeKind::kContains, owner, node);
      enumerators_.push_back(node);
    }
    for (uint64_t i = 0; i < budget_.typedefs; ++i) {
      NodeId node = graph_.AddNode(NodeKind::kTypedef, Name("td", i) + "_t");
      Place(node, headers_[rng_.Uniform(headers_.size())]);
      EmitIsa(node, PickType());
      typedef_nodes_.push_back(node);
    }
    // Forward declarations (`struct foo;`) and function-pointer types.
    for (uint64_t i = 0; i < budget_.structs / 40 + 1; ++i) {
      bool is_union = rng_.Bernoulli(0.1);
      NodeId decl = graph_.AddNode(
          is_union ? NodeKind::kUnionDecl : NodeKind::kStructDecl,
          Name(is_union ? "un" : "st", i));
      Place(decl, headers_[rng_.Uniform(headers_.size())]);
      if (i < structs_.size()) {
        graph_.AddEdgeUnchecked(EdgeKind::kDeclares, decl, structs_[i]);
      }
    }
    for (uint64_t i = 0; i < budget_.typedefs / 8 + 1; ++i) {
      NodeId fn_type = graph_.AddNode(NodeKind::kFunctionType,
                                      Name("fnptr", i) + "_fn");
      Place(fn_type, headers_[rng_.Uniform(headers_.size())]);
      graph_.AddEdgeUnchecked(EdgeKind::kHasRetType, fn_type, PickType());
      uint64_t params = rng_.Uniform(3);
      for (uint64_t p = 0; p < params; ++p) {
        EdgeId e = graph_.AddEdgeUnchecked(EdgeKind::kHasParamType, fn_type,
                                           PickType());
        graph_.SetParamIndex(e, static_cast<int64_t>(p));
      }
    }
  }

  void MakeGlobals() {
    for (uint64_t i = 0; i < budget_.globals; ++i) {
      NodeId node = graph_.AddNode(NodeKind::kGlobal, Name("g", i));
      Place(node, RandomFile());
      EmitIsa(node, PickType());
      globals_.push_back(node);
    }
    for (uint64_t i = 0; i < budget_.global_decls; ++i) {
      NodeId node = graph_.AddNode(NodeKind::kGlobalDecl, Name("g", i));
      Place(node, headers_[rng_.Uniform(headers_.size())]);
      EmitIsa(node, PickType());
      global_decls_.push_back(node);
    }
  }

  void MakeFunctions() {
    // Create all function nodes first so call targets exist.
    for (uint64_t i = 0; i < budget_.functions; ++i) {
      NodeId file = RandomSourceLike();
      NodeId node = graph_.AddNode(NodeKind::kFunction, Name("fn", i));
      graph_.SetLongName(node, Name("fn", i) + "(...)");
      Place(node, file);
      functions_.push_back(node);
      fn_files_.push_back(file);
      graph_.AddEdgeUnchecked(EdgeKind::kHasRetType, node, PickType());
    }
    for (uint64_t i = 0; i < budget_.function_decls; ++i) {
      NodeId node = graph_.AddNode(NodeKind::kFunctionDecl,
                                   Name("fn", i));
      Place(node, headers_[rng_.Uniform(headers_.size())]);
      decls_.push_back(node);
      if (i < functions_.size()) {
        graph_.AddEdgeUnchecked(EdgeKind::kDeclares, node, functions_[i]);
      }
      // Prototypes carry parameter types (has_param_type, paper Table 1).
      uint64_t params = rng_.Uniform(3);
      for (uint64_t p = 0; p < params; ++p) {
        EdgeId e = graph_.AddEdgeUnchecked(EdgeKind::kHasParamType, node,
                                           PickType());
        graph_.SetParamIndex(e, static_cast<int64_t>(p));
      }
    }

    // Per-function contents. Per-entity counts follow the budget ratios.
    double params_per_fn =
        static_cast<double>(budget_.parameters) / functions_.size();
    double locals_per_fn =
        static_cast<double>(budget_.locals) / functions_.size();
    uint64_t call_budget = budget_.functions * 10;  // ~1.2 M at factor 1
    uint64_t rw_budget = budget_.functions * 8;
    uint64_t member_budget = budget_.functions * 4;
    uint64_t expand_budget = budget_.macros * 12;

    for (size_t i = 0; i < functions_.size(); ++i) {
      NodeId fn = functions_[i];
      // Parameters and locals.
      uint64_t params = SampleCount(params_per_fn);
      for (uint64_t p = 0; p < params; ++p) {
        NodeId node = graph_.AddNode(NodeKind::kParameter,
                                     "arg" + std::to_string(p));
        EdgeId e = graph_.AddEdgeUnchecked(EdgeKind::kHasParam, fn, node);
        graph_.SetParamIndex(e, static_cast<int64_t>(p));
        EmitIsa(node, PickType());
        if (rng_.Bernoulli(0.1)) locals_pool_.push_back(node);
      }
      uint64_t locals = SampleCount(locals_per_fn);
      for (uint64_t l = 0; l < locals; ++l) {
        bool is_static =
            static_locals_made_ < budget_.static_locals &&
            rng_.Bernoulli(0.03);
        NodeId node = graph_.AddNode(
            is_static ? NodeKind::kStaticLocal : NodeKind::kLocal,
            "v" + std::to_string(l));
        if (is_static) ++static_locals_made_;
        graph_.AddEdgeUnchecked(EdgeKind::kHasLocal, fn, node);
        EmitIsa(node, PickType());
        locals_pool_.push_back(node);
      }
    }

    // Calls: callee popularity is Zipf-like, producing the in-degree tail.
    ZipfPicker fn_picker(functions_.size(), &rng_);
    ZipfPicker decl_picker(decls_.size(), &rng_);
    for (uint64_t c = 0; c < call_budget; ++c) {
      NodeId caller = functions_[rng_.Uniform(functions_.size())];
      NodeId callee;
      if (rng_.Bernoulli(0.15) && !decls_.empty()) {
        callee = decls_[decl_picker.Pick()];
      } else {
        callee = functions_[fn_picker.Pick()];
      }
      EdgeId e = graph_.AddEdgeUnchecked(EdgeKind::kCalls, caller, callee);
      AnnotateRef(e, fn_files_[rng_.Uniform(fn_files_.size())]);
    }

    // Reads/writes of globals and locals.
    ZipfPicker global_picker(globals_.size(), &rng_);
    for (uint64_t c = 0; c < rw_budget; ++c) {
      NodeId fn = functions_[rng_.Uniform(functions_.size())];
      NodeId target;
      double which = rng_.NextDouble();
      if (which < 0.35 && !globals_.empty()) {
        target = globals_[global_picker.Pick()];
      } else if (which < 0.42 && !global_decls_.empty()) {
        target = global_decls_[rng_.Uniform(global_decls_.size())];
      } else if (!locals_pool_.empty()) {
        target = locals_pool_[rng_.Uniform(locals_pool_.size())];
      } else {
        continue;
      }
      EdgeKind kind = rng_.Bernoulli(0.6) ? EdgeKind::kReads
                                          : EdgeKind::kWrites;
      if (rng_.Bernoulli(0.04)) kind = EdgeKind::kTakesAddressOf;
      if (rng_.Bernoulli(0.05)) kind = EdgeKind::kDereferences;
      EdgeId e = graph_.AddEdgeUnchecked(kind, fn, target);
      AnnotateRef(e, RandomFile());
    }

    // Member accesses.
    ZipfPicker field_picker(fields_.size(), &rng_);
    for (uint64_t c = 0; c < member_budget; ++c) {
      NodeId fn = functions_[rng_.Uniform(functions_.size())];
      NodeId field = fields_[field_picker.Pick()];
      double which = rng_.NextDouble();
      EdgeKind kind = which < 0.55   ? EdgeKind::kReadsMember
                      : which < 0.92 ? EdgeKind::kWritesMember
                      : which < 0.97 ? EdgeKind::kDereferencesMember
                                     : EdgeKind::kTakesAddressOfMember;
      EdgeId e = graph_.AddEdgeUnchecked(kind, fn, field);
      AnnotateRef(e, RandomFile());
    }

    // Enumerator uses, casts, sizeof.
    ZipfPicker enum_picker(enumerators_.size(), &rng_);
    for (uint64_t c = 0; c < budget_.enumerators * 6; ++c) {
      NodeId fn = functions_[rng_.Uniform(functions_.size())];
      EdgeId e = graph_.AddEdgeUnchecked(EdgeKind::kUsesEnumerator, fn,
                                         enumerators_[enum_picker.Pick()]);
      AnnotateRef(e, RandomFile());
    }
    for (uint64_t c = 0; c < budget_.functions; ++c) {
      NodeId fn = functions_[rng_.Uniform(functions_.size())];
      double which = rng_.NextDouble();
      EdgeKind kind = which < 0.68   ? EdgeKind::kCastsTo
                      : which < 0.96 ? EdgeKind::kGetsSizeOf
                                     : EdgeKind::kGetsAlignOf;
      EdgeId e = graph_.AddEdgeUnchecked(kind, fn, PickType());
      AnnotateRef(e, RandomFile());
    }

    // Macro expansions; NULL takes a fixed large share (Figure 7's second
    // hub: ~19 K references at factor 1.0).
    uint64_t null_expansions =
        static_cast<uint64_t>(19000.0 * functions_.size() / 118000.0);
    for (uint64_t c = 0; c < null_expansions; ++c) {
      NodeId fn = functions_[rng_.Uniform(functions_.size())];
      EdgeId e = graph_.AddEdgeUnchecked(EdgeKind::kExpandsMacro, fn,
                                         macros_[0]);
      AnnotateRef(e, RandomFile());
    }
    ZipfPicker macro_picker(macros_.size(), &rng_);
    for (uint64_t c = 0; c < expand_budget; ++c) {
      NodeId src = rng_.Bernoulli(0.8)
                       ? functions_[rng_.Uniform(functions_.size())]
                       : RandomFile();
      EdgeKind kind = rng_.Bernoulli(0.85)
                          ? EdgeKind::kExpandsMacro
                          : EdgeKind::kInterrogatesMacro;
      EdgeId e = graph_.AddEdgeUnchecked(kind, src,
                                         macros_[macro_picker.Pick()]);
      AnnotateRef(e, RandomFile());
    }
  }

  void MakeBuildModel() {
    std::vector<NodeId> objects;
    for (uint64_t i = 0; i < budget_.modules; ++i) {
      NodeId module = graph_.AddNode(
          NodeKind::kModule,
          Name("mod", i) + (rng_.Bernoulli(0.3) ? ".elf" : ".o"));
      // compiled_from a few source files.
      uint64_t sources = 1 + rng_.Uniform(6);
      for (uint64_t s = 0; s < sources; ++s) {
        graph_.AddEdgeUnchecked(EdgeKind::kCompiledFrom, module,
                                RandomFile());
      }
      if (!objects.empty() && rng_.Bernoulli(0.5)) {
        uint64_t links = 1 + rng_.Uniform(4);
        for (uint64_t l = 0; l < links; ++l) {
          EdgeKind kind = rng_.Bernoulli(0.1) ? EdgeKind::kLinkedFromLib
                                              : EdgeKind::kLinkedFrom;
          EdgeId e = graph_.AddEdgeUnchecked(
              kind, module, objects[rng_.Uniform(objects.size())]);
          graph_.SetLinkOrder(e, static_cast<int64_t>(l));
        }
        // Link-time symbol resolution (link_declares / link_matches).
        uint64_t resolutions = rng_.Uniform(6);
        for (uint64_t r = 0; r < resolutions && !decls_.empty(); ++r) {
          size_t idx = rng_.Uniform(decls_.size());
          graph_.AddEdgeUnchecked(EdgeKind::kLinkDeclares, module,
                                  decls_[idx]);
          if (idx < functions_.size()) {
            graph_.AddEdgeUnchecked(EdgeKind::kLinkMatches, decls_[idx],
                                    functions_[idx]);
          }
        }
      }
      objects.push_back(module);
    }
  }

  uint64_t SampleCount(double mean) {
    // Integer part plus Bernoulli remainder keeps the expectation exact.
    uint64_t base = static_cast<uint64_t>(mean);
    return base + (rng_.Bernoulli(mean - static_cast<double>(base)) ? 1 : 0);
  }

  Budget budget_;
  frappe::Rng rng_;
  model::CodeGraph& graph_;
  GraphReport report_;

  std::vector<NodeId> primitives_, files_, headers_, macros_, structs_,
      fields_, enums_, enumerators_, typedef_nodes_, globals_,
      global_decls_, functions_, decls_, fn_files_, locals_pool_;
  uint64_t static_locals_made_ = 0;
};

}  // namespace

GraphReport GenerateKernelGraph(const GraphScale& scale,
                                model::CodeGraph* graph) {
  GraphGenerator generator(scale, graph);
  return generator.Run();
}

// ---------------------------------------------------------------------------
// Source-level generator
// ---------------------------------------------------------------------------

SourceKernel GenerateKernelSource(const SourceScale& scale, Vfs* vfs) {
  frappe::Rng rng(scale.seed);
  SourceKernel out;

  // Shared top-level header.
  std::string common_h;
  common_h += "#ifndef COMMON_H\n#define COMMON_H\n";
  common_h += "#define NULL ((void *)0)\n";
  common_h += "#define ARRAY_SIZE(a) (sizeof(a) / sizeof((a)[0]))\n";
  common_h += "typedef unsigned long size_t_k;\n";
  common_h += "typedef unsigned int u32;\n";
  common_h += "enum kstate { K_IDLE, K_BUSY, K_DEAD = 9 };\n";
  common_h += "#endif\n";
  vfs->AddFile("include/common.h", common_h);

  std::vector<std::string> link_inputs_all;
  for (int s = 0; s < scale.subsystems; ++s) {
    std::string sub = "sub" + std::to_string(s);
    std::string dir = "drivers/" + sub;

    // Subsystem header: structs, macros, prototypes.
    std::string header;
    std::string guard = "SUB" + std::to_string(s) + "_H";
    header += "#ifndef " + guard + "\n#define " + guard + "\n";
    header += "#include \"common.h\"\n";
    header += "#define " + sub + "_MAGIC 0x" + std::to_string(40 + s) + "\n";
    for (int t = 0; t < scale.structs_per_subsystem; ++t) {
      header += "struct " + sub + "_dev" + std::to_string(t) + " {\n";
      header += "  u32 id;\n  int state;\n  char name[16];\n";
      header += "  struct " + sub + "_dev" + std::to_string(t) + " *next;\n";
      header += "};\n";
    }
    for (int g = 0; g < scale.globals_per_subsystem; ++g) {
      header += "extern int " + sub + "_counter" + std::to_string(g) +
                ";\n";
    }
    for (int f = 0; f < scale.files_per_subsystem; ++f) {
      for (int k = 0; k < scale.functions_per_file; ++k) {
        header += "int " + sub + "_f" + std::to_string(f) + "_" +
                  std::to_string(k) + "(struct " + sub + "_dev0 *dev);\n";
      }
    }
    header += "#endif\n";
    vfs->AddFile(dir + "/" + sub + ".h", header);

    std::vector<std::string> objects;
    for (int f = 0; f < scale.files_per_subsystem; ++f) {
      std::string src;
      src += "#include \"" + sub + ".h\"\n";
      for (int g = 0; g < scale.globals_per_subsystem && f == 0; ++g) {
        src += "int " + sub + "_counter" + std::to_string(g) + " = 0;\n";
      }
      src += "static int " + sub + "_file" + std::to_string(f) +
             "_state = K_IDLE;\n";
      for (int k = 0; k < scale.functions_per_file; ++k) {
        std::string fn = sub + "_f" + std::to_string(f) + "_" +
                         std::to_string(k);
        src += "int " + fn + "(struct " + sub + "_dev0 *dev) {\n";
        src += "  static int invocations = 0;\n";
        src += "  int local = 0;\n";
        src += "  invocations++;\n";
        src += "  if (dev == NULL) { return -1; }\n";
        src += "  dev->state = K_BUSY;\n";
        src += "  local = dev->id + " + sub + "_MAGIC;\n";
        // Calls: a couple of targets within the subsystem, weighted to
        // low indexes so in-degrees skew.
        for (int c = 0; c < 2; ++c) {
          int tf = static_cast<int>(
              rng.PowerLaw(1.8, scale.files_per_subsystem));
          int tk = static_cast<int>(
              rng.PowerLaw(1.8, scale.functions_per_file));
          std::string target = sub + "_f" + std::to_string(tf - 1) + "_" +
                               std::to_string(tk - 1);
          if (target != fn) src += "  local += " + target + "(dev);\n";
        }
        src += "  " + sub + "_counter0 += local;\n";
        src += "  " + sub + "_file" + std::to_string(f) + "_state = local;\n";
        src += "  dev->state = K_IDLE;\n";
        src += "  return local;\n";
        src += "}\n";
      }
      std::string path = dir + "/" + sub + "_" + std::to_string(f) + ".c";
      vfs->AddFile(path, src);
      std::string object = dir + "/" + sub + "_" + std::to_string(f) + ".o";
      out.build_commands.push_back("gcc " + path + " -c -o " + object +
                                   " -Iinclude -I" + dir);
      objects.push_back(object);
    }
    std::string module = dir + "/" + sub + ".elf";
    std::string link = "gcc";
    for (const std::string& object : objects) link += " " + object;
    link += " -o " + module;
    out.build_commands.push_back(link);
    link_inputs_all.push_back(module);
  }
  out.total_lines = vfs->TotalLines();
  return out;
}

}  // namespace frappe::extractor
