#include "extractor/preprocessor.h"

#include <algorithm>
#include <functional>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "common/string_util.h"

namespace frappe::extractor {

namespace {

constexpr int kMaxIncludeDepth = 64;
constexpr int kMaxExpansionDepth = 64;

struct Macro {
  MacroDef def;
  bool variadic = false;
  std::vector<CToken> body;
};

class Preprocessor {
 public:
  Preprocessor(const Vfs& vfs, const PreprocessOptions& options)
      : vfs_(vfs), options_(options) {}

  Result<PreprocessedUnit> Run(const std::string& main_file) {
    for (const auto& [name, replacement] : options_.defines) {
      Macro macro;
      macro.def.name = name;
      macro.def.loc = SourceLoc{-1, 0, 0};  // builtin
      FRAPPE_ASSIGN_OR_RETURN(std::vector<TokenLine> lines,
                              LexCFile(replacement, -1));
      for (TokenLine& line : lines) {
        for (CToken& t : line.tokens) macro.body.push_back(std::move(t));
      }
      macros_[name] = std::move(macro);
    }
    FRAPPE_RETURN_IF_ERROR(ProcessFile(main_file, 0));
    CToken eof;
    eof.kind = CToken::Kind::kEof;
    unit_.tokens.push_back(eof);
    return std::move(unit_);
  }

 private:
  int FileIndex(const std::string& path) {
    for (size_t i = 0; i < unit_.files.size(); ++i) {
      if (unit_.files[i] == path) return static_cast<int>(i);
    }
    unit_.files.push_back(path);
    return static_cast<int>(unit_.files.size() - 1);
  }

  Status ProcessFile(const std::string& path, int depth) {
    if (depth > kMaxIncludeDepth) {
      return Status::FailedPrecondition("include depth limit at " + path);
    }
    FRAPPE_ASSIGN_OR_RETURN(std::string_view content, vfs_.Read(path));
    int file_index = FileIndex(path);
    FRAPPE_ASSIGN_OR_RETURN(std::vector<TokenLine> lines,
                            LexCFile(content, file_index));
    for (const TokenLine& line : lines) {
      if (line.is_directive) {
        FRAPPE_RETURN_IF_ERROR(HandleDirective(line, path, file_index,
                                               depth));
      } else if (Active()) {
        FRAPPE_RETURN_IF_ERROR(
            ExpandInto(line.tokens, &unit_.tokens, /*depth=*/0));
      }
    }
    return Status::OK();
  }

  // --- conditionals ---

  struct Cond {
    bool parent_active;
    bool taken;       // some branch already taken
    bool active_now;  // current branch active
  };

  bool Active() const {
    return cond_stack_.empty() || cond_stack_.back().active_now;
  }

  void PushCond(bool condition) {
    bool parent = Active();
    cond_stack_.push_back(Cond{parent, parent && condition,
                               parent && condition});
  }

  // --- directives ---

  Status HandleDirective(const TokenLine& line, const std::string& path,
                         int file_index, int depth) {
    if (line.tokens.empty()) return Status::OK();  // null directive
    const CToken& name = line.tokens[0];
    std::string_view directive = name.text;

    if (directive == "ifdef" || directive == "ifndef") {
      if (line.tokens.size() < 2) {
        return Status::ParseError("#" + std::string(directive) +
                                  " without a name");
      }
      const CToken& macro = line.tokens[1];
      if (Active()) {
        unit_.events.push_back(MacroEvent{
            MacroEvent::Kind::kInterrogation, macro.text, macro.loc});
      }
      bool defined = macros_.count(macro.text) != 0;
      PushCond(directive == "ifdef" ? defined : !defined);
      return Status::OK();
    }
    if (directive == "if") {
      bool value = false;
      if (Active()) {
        FRAPPE_ASSIGN_OR_RETURN(
            value, EvalCondition(line.tokens, 1));
      }
      PushCond(value);
      return Status::OK();
    }
    if (directive == "elif") {
      if (cond_stack_.empty()) return Status::ParseError("#elif without #if");
      Cond& cond = cond_stack_.back();
      if (cond.taken || !cond.parent_active) {
        cond.active_now = false;
      } else {
        FRAPPE_ASSIGN_OR_RETURN(bool value, EvalCondition(line.tokens, 1));
        cond.active_now = value;
        cond.taken = value;
      }
      return Status::OK();
    }
    if (directive == "else") {
      if (cond_stack_.empty()) return Status::ParseError("#else without #if");
      Cond& cond = cond_stack_.back();
      cond.active_now = cond.parent_active && !cond.taken;
      cond.taken = true;
      return Status::OK();
    }
    if (directive == "endif") {
      if (cond_stack_.empty()) {
        return Status::ParseError("#endif without #if");
      }
      cond_stack_.pop_back();
      return Status::OK();
    }

    if (!Active()) return Status::OK();  // skipped region

    if (directive == "define") return HandleDefine(line, file_index);
    if (directive == "undef") {
      if (line.tokens.size() >= 2) macros_.erase(line.tokens[1].text);
      return Status::OK();
    }
    if (directive == "include") {
      return HandleInclude(line, path, file_index, depth);
    }
    if (directive == "pragma" || directive == "warning") {
      return Status::OK();
    }
    if (directive == "error") {
      std::string message;
      for (size_t i = 1; i < line.tokens.size(); ++i) {
        if (i > 1) message += " ";
        message += line.tokens[i].text;
      }
      return Status::FailedPrecondition("#error: " + message);
    }
    // Unknown directive: be lenient (real kernels carry vendor pragmas).
    return Status::OK();
  }

  Status HandleDefine(const TokenLine& line, int file_index) {
    if (line.tokens.size() < 2 ||
        line.tokens[1].kind != CToken::Kind::kIdent) {
      return Status::ParseError("#define without a name");
    }
    Macro macro;
    macro.def.name = line.tokens[1].text;
    macro.def.loc = line.tokens[1].loc;
    size_t body_start = 2;
    // Function-like only when '(' immediately follows the name. The lexer
    // drops whitespace, so approximate with column adjacency.
    if (line.tokens.size() > 2 && line.tokens[2].IsPunct("(") &&
        line.tokens[2].loc.col ==
            line.tokens[1].loc.col + line.tokens[1].length &&
        line.tokens[2].loc.line == line.tokens[1].loc.line) {
      macro.def.function_like = true;
      size_t i = 3;
      while (i < line.tokens.size() && !line.tokens[i].IsPunct(")")) {
        if (line.tokens[i].IsPunct(",")) {
          ++i;
          continue;
        }
        if (line.tokens[i].IsPunct("...")) {
          macro.variadic = true;
        } else if (line.tokens[i].kind == CToken::Kind::kIdent) {
          macro.def.params.push_back(line.tokens[i].text);
        }
        ++i;
      }
      if (i >= line.tokens.size()) {
        return Status::ParseError("unterminated macro parameter list for " +
                                  macro.def.name);
      }
      body_start = i + 1;
    }
    macro.body.assign(line.tokens.begin() + body_start, line.tokens.end());
    unit_.macros.push_back(macro.def);
    macros_[macro.def.name] = std::move(macro);
    (void)file_index;
    return Status::OK();
  }

  Status HandleInclude(const TokenLine& line, const std::string& path,
                       int file_index, int depth) {
    if (line.tokens.size() < 2) return Status::ParseError("bare #include");
    std::string name;
    bool angled = false;
    const CToken& first = line.tokens[1];
    if (first.kind == CToken::Kind::kString) {
      name = first.text.substr(1, first.text.size() - 2);
    } else if (first.IsPunct("<")) {
      angled = true;
      for (size_t i = 2; i < line.tokens.size(); ++i) {
        if (line.tokens[i].IsPunct(">")) break;
        name += line.tokens[i].text;
      }
    } else {
      return Status::ParseError("malformed #include");
    }
    auto resolved =
        vfs_.ResolveInclude(name, path, angled, options_.include_dirs);
    if (!resolved.ok()) {
      // Angle-bracket system headers missing from the VFS are skipped:
      // the extractor models the project tree, not the host toolchain.
      if (angled) return Status::OK();
      return resolved.status();
    }
    int to_index = FileIndex(*resolved);
    unit_.includes.push_back(
        IncludeEvent{file_index, to_index, first.loc});
    return ProcessFile(*resolved, depth + 1);
  }

  // --- #if expression evaluation ---

  Result<bool> EvalCondition(const std::vector<CToken>& tokens,
                             size_t start) {
    // Phase 1: handle defined(X) / defined X and record interrogations.
    std::vector<CToken> pre;
    for (size_t i = start; i < tokens.size(); ++i) {
      if (tokens[i].IsIdent("defined")) {
        size_t j = i + 1;
        bool paren = j < tokens.size() && tokens[j].IsPunct("(");
        if (paren) ++j;
        if (j >= tokens.size() ||
            tokens[j].kind != CToken::Kind::kIdent) {
          return Status::ParseError("malformed defined()");
        }
        unit_.events.push_back(MacroEvent{MacroEvent::Kind::kInterrogation,
                                          tokens[j].text, tokens[j].loc});
        CToken value;
        value.kind = CToken::Kind::kNumber;
        value.text = macros_.count(tokens[j].text) ? "1" : "0";
        value.loc = tokens[i].loc;
        pre.push_back(std::move(value));
        i = paren ? j + 1 : j;  // skip ')' below
        continue;
      }
      pre.push_back(tokens[i]);
    }
    // Phase 2: expand remaining macros.
    std::vector<CToken> expanded;
    FRAPPE_RETURN_IF_ERROR(ExpandInto(pre, &expanded, 0));
    // Phase 3: identifiers left over evaluate to 0 (C semantics).
    eval_tokens_ = &expanded;
    eval_pos_ = 0;
    FRAPPE_ASSIGN_OR_RETURN(int64_t value, EvalTernary());
    return value != 0;
  }

  const CToken* EvalPeek() {
    if (eval_pos_ >= eval_tokens_->size()) return nullptr;
    return &(*eval_tokens_)[eval_pos_];
  }
  bool EvalAccept(std::string_view p) {
    const CToken* t = EvalPeek();
    if (t != nullptr && t->kind == CToken::Kind::kPunct && t->text == p) {
      ++eval_pos_;
      return true;
    }
    return false;
  }

  Result<int64_t> EvalTernary() {
    FRAPPE_ASSIGN_OR_RETURN(int64_t cond, EvalBinary(0));
    if (EvalAccept("?")) {
      FRAPPE_ASSIGN_OR_RETURN(int64_t then, EvalTernary());
      if (!EvalAccept(":")) return Status::ParseError("expected ':' in #if");
      FRAPPE_ASSIGN_OR_RETURN(int64_t otherwise, EvalTernary());
      return cond != 0 ? then : otherwise;
    }
    return cond;
  }

  static int BinaryPrecedence(std::string_view op) {
    if (op == "||") return 1;
    if (op == "&&") return 2;
    if (op == "|") return 3;
    if (op == "^") return 4;
    if (op == "&") return 5;
    if (op == "==" || op == "!=") return 6;
    if (op == "<" || op == ">" || op == "<=" || op == ">=") return 7;
    if (op == "<<" || op == ">>") return 8;
    if (op == "+" || op == "-") return 9;
    if (op == "*" || op == "/" || op == "%") return 10;
    return 0;
  }

  Result<int64_t> EvalBinary(int min_prec) {
    FRAPPE_ASSIGN_OR_RETURN(int64_t left, EvalUnary());
    while (true) {
      const CToken* t = EvalPeek();
      if (t == nullptr || t->kind != CToken::Kind::kPunct) break;
      int prec = BinaryPrecedence(t->text);
      if (prec == 0 || prec < min_prec) break;
      std::string op = t->text;
      ++eval_pos_;
      FRAPPE_ASSIGN_OR_RETURN(int64_t right, EvalBinary(prec + 1));
      if (op == "||") {
        left = (left != 0 || right != 0) ? 1 : 0;
      } else if (op == "&&") {
        left = (left != 0 && right != 0) ? 1 : 0;
      } else if (op == "|") {
        left |= right;
      } else if (op == "^") {
        left ^= right;
      } else if (op == "&") {
        left &= right;
      } else if (op == "==") {
        left = left == right;
      } else if (op == "!=") {
        left = left != right;
      } else if (op == "<") {
        left = left < right;
      } else if (op == ">") {
        left = left > right;
      } else if (op == "<=") {
        left = left <= right;
      } else if (op == ">=") {
        left = left >= right;
      } else if (op == "<<") {
        left = right >= 0 && right < 63 ? (left << right) : 0;
      } else if (op == ">>") {
        left = right >= 0 && right < 63 ? (left >> right) : 0;
      } else if (op == "+") {
        left += right;
      } else if (op == "-") {
        left -= right;
      } else if (op == "*") {
        left *= right;
      } else if (op == "/") {
        if (right == 0) return Status::ParseError("division by zero in #if");
        left /= right;
      } else if (op == "%") {
        if (right == 0) return Status::ParseError("modulo by zero in #if");
        left %= right;
      }
    }
    return left;
  }

  Result<int64_t> EvalUnary() {
    if (EvalAccept("!")) {
      FRAPPE_ASSIGN_OR_RETURN(int64_t v, EvalUnary());
      return v == 0 ? 1 : 0;
    }
    if (EvalAccept("-")) {
      FRAPPE_ASSIGN_OR_RETURN(int64_t v, EvalUnary());
      return -v;
    }
    if (EvalAccept("+")) return EvalUnary();
    if (EvalAccept("~")) {
      FRAPPE_ASSIGN_OR_RETURN(int64_t v, EvalUnary());
      return ~v;
    }
    if (EvalAccept("(")) {
      FRAPPE_ASSIGN_OR_RETURN(int64_t v, EvalTernary());
      if (!EvalAccept(")")) return Status::ParseError("expected ')' in #if");
      return v;
    }
    const CToken* t = EvalPeek();
    if (t == nullptr) return Status::ParseError("truncated #if expression");
    ++eval_pos_;
    if (t->kind == CToken::Kind::kNumber) return ParseNumber(t->text);
    if (t->kind == CToken::Kind::kCharLit) {
      // 'x' evaluates to its first character.
      return t->text.size() > 2 ? static_cast<int64_t>(t->text[1]) : 0;
    }
    if (t->kind == CToken::Kind::kIdent) return 0;  // undefined -> 0
    return Status::ParseError("unexpected token in #if: " + t->text);
  }

  static int64_t ParseNumber(std::string_view text) {
    // Strip integer suffixes, accept hex/octal.
    size_t end = text.size();
    while (end > 0 && (text[end - 1] == 'u' || text[end - 1] == 'U' ||
                       text[end - 1] == 'l' || text[end - 1] == 'L')) {
      --end;
    }
    std::string digits(text.substr(0, end));
    try {
      return std::stoll(digits, nullptr, 0);
    } catch (...) {
      return 0;
    }
  }

  // --- macro expansion ---

  Status ExpandInto(const std::vector<CToken>& input,
                    std::vector<CToken>* output, int depth) {
    std::unordered_set<std::string> active;
    return ExpandRange(input, 0, input.size(), output, depth, &active);
  }

  Status ExpandRange(const std::vector<CToken>& input, size_t begin,
                     size_t end, std::vector<CToken>* output, int depth,
                     std::unordered_set<std::string>* active) {
    if (depth > kMaxExpansionDepth) {
      return Status::FailedPrecondition("macro expansion depth limit");
    }
    for (size_t i = begin; i < end; ++i) {
      const CToken& token = input[i];
      if (token.kind != CToken::Kind::kIdent || active->count(token.text) ||
          macros_.find(token.text) == macros_.end()) {
        output->push_back(token);
        continue;
      }
      const Macro& macro = macros_.at(token.text);
      if (macro.def.function_like) {
        // Needs a '(' to be an invocation.
        size_t j = i + 1;
        if (j >= end || !input[j].IsPunct("(")) {
          output->push_back(token);
          continue;
        }
        // Collect arguments.
        std::vector<std::vector<CToken>> args;
        std::vector<CToken> current;
        int parens = 1;
        ++j;
        while (j < end && parens > 0) {
          const CToken& t = input[j];
          if (t.IsPunct("(")) ++parens;
          if (t.IsPunct(")")) {
            --parens;
            if (parens == 0) break;
          }
          if (t.IsPunct(",") && parens == 1) {
            args.push_back(std::move(current));
            current.clear();
          } else {
            current.push_back(t);
          }
          ++j;
        }
        if (parens != 0) {
          return Status::ParseError("unterminated invocation of macro " +
                                    macro.def.name);
        }
        if (!current.empty() || !args.empty() || !macro.def.params.empty()) {
          args.push_back(std::move(current));
        }
        RecordExpansion(macro, token.loc);
        std::vector<CToken> substituted;
        FRAPPE_RETURN_IF_ERROR(
            Substitute(macro, args, token, &substituted));
        active->insert(macro.def.name);
        FRAPPE_RETURN_IF_ERROR(ExpandRange(substituted, 0,
                                           substituted.size(), output,
                                           depth + 1, active));
        active->erase(macro.def.name);
        i = j;  // past ')'
      } else {
        RecordExpansion(macro, token.loc);
        std::vector<CToken> body = macro.body;
        for (CToken& t : body) Reattribute(&t, token);
        active->insert(macro.def.name);
        FRAPPE_RETURN_IF_ERROR(ExpandRange(body, 0, body.size(), output,
                                           depth + 1, active));
        active->erase(macro.def.name);
      }
    }
    return Status::OK();
  }

  void RecordExpansion(const Macro& macro, SourceLoc use) {
    unit_.events.push_back(
        MacroEvent{MacroEvent::Kind::kExpansion, macro.def.name, use});
  }

  // Tokens produced by a macro body report the expansion site as their
  // location (the IN_MACRO convention from paper Table 2).
  static void Reattribute(CToken* token, const CToken& invocation) {
    token->loc = invocation.loc;
    token->length = invocation.length;
    token->in_macro = true;
    if (token->macro.empty()) token->macro = invocation.text;
  }

  Status Substitute(const Macro& macro,
                    const std::vector<std::vector<CToken>>& args,
                    const CToken& invocation, std::vector<CToken>* out) {
    auto param_index = [&](std::string_view name) -> int {
      for (size_t p = 0; p < macro.def.params.size(); ++p) {
        if (macro.def.params[p] == name) return static_cast<int>(p);
      }
      return -1;
    };
    auto arg_or_empty =
        [&](int index) -> const std::vector<CToken>& {
      static const std::vector<CToken> kEmpty;
      if (index < 0 || static_cast<size_t>(index) >= args.size()) {
        return kEmpty;
      }
      return args[index];
    };

    for (size_t b = 0; b < macro.body.size(); ++b) {
      const CToken& t = macro.body[b];
      // Token pasting: A ## B.
      if (b + 2 < macro.body.size() && macro.body[b + 1].IsPunct("##")) {
        std::string left_text = SpellForPaste(t, args, param_index);
        std::string right_text =
            SpellForPaste(macro.body[b + 2], args, param_index);
        CToken pasted;
        pasted.kind = CToken::Kind::kIdent;
        pasted.text = left_text + right_text;
        Reattribute(&pasted, invocation);
        out->push_back(std::move(pasted));
        b += 2;
        continue;
      }
      // Stringize: # param.
      if (t.IsPunct("#") && b + 1 < macro.body.size() &&
          macro.body[b + 1].kind == CToken::Kind::kIdent) {
        int index = param_index(macro.body[b + 1].text);
        if (index >= 0) {
          std::string text = "\"";
          for (const CToken& a : arg_or_empty(index)) text += a.text;
          text += "\"";
          CToken str;
          str.kind = CToken::Kind::kString;
          str.text = std::move(text);
          Reattribute(&str, invocation);
          out->push_back(std::move(str));
          ++b;
          continue;
        }
      }
      if (t.kind == CToken::Kind::kIdent) {
        if (macro.variadic && t.text == "__VA_ARGS__") {
          size_t fixed = macro.def.params.size();
          for (size_t a = fixed; a < args.size(); ++a) {
            if (a > fixed) {
              CToken comma;
              comma.kind = CToken::Kind::kPunct;
              comma.text = ",";
              Reattribute(&comma, invocation);
              out->push_back(std::move(comma));
            }
            for (CToken arg_token : args[a]) {
              Reattribute(&arg_token, invocation);
              out->push_back(std::move(arg_token));
            }
          }
          continue;
        }
        int index = param_index(t.text);
        if (index >= 0) {
          for (CToken arg_token : arg_or_empty(index)) {
            Reattribute(&arg_token, invocation);
            out->push_back(std::move(arg_token));
          }
          continue;
        }
      }
      CToken copy = t;
      Reattribute(&copy, invocation);
      out->push_back(std::move(copy));
    }
    return Status::OK();
  }

  std::string SpellForPaste(
      const CToken& t, const std::vector<std::vector<CToken>>& args,
      const std::function<int(std::string_view)>& param_index) {
    if (t.kind == CToken::Kind::kIdent) {
      int index = param_index(t.text);
      if (index >= 0 && static_cast<size_t>(index) < args.size()) {
        std::string out;
        for (const CToken& a : args[index]) out += a.text;
        return out;
      }
    }
    return t.text;
  }

  const Vfs& vfs_;
  const PreprocessOptions& options_;
  PreprocessedUnit unit_;
  std::unordered_map<std::string, Macro> macros_;
  std::vector<Cond> cond_stack_;

  const std::vector<CToken>* eval_tokens_ = nullptr;
  size_t eval_pos_ = 0;
};

}  // namespace

Result<PreprocessedUnit> Preprocess(const Vfs& vfs,
                                    const std::string& main_file,
                                    const PreprocessOptions& options) {
  Preprocessor pp(vfs, options);
  return pp.Run(NormalizePath(main_file));
}

}  // namespace frappe::extractor
