#include "extractor/vfs.h"

#include <algorithm>
#include <set>

#include "common/string_util.h"

namespace frappe::extractor {

std::string NormalizePath(std::string_view path) {
  std::vector<std::string_view> parts;
  for (std::string_view piece : SplitSkipEmpty(path, '/')) {
    if (piece == ".") continue;
    if (piece == "..") {
      if (!parts.empty()) parts.pop_back();
      continue;
    }
    parts.push_back(piece);
  }
  return Join(parts, "/");
}

std::string DirName(std::string_view path) {
  size_t slash = path.rfind('/');
  if (slash == std::string_view::npos) return "";
  return std::string(path.substr(0, slash));
}

std::string BaseName(std::string_view path) {
  size_t slash = path.rfind('/');
  if (slash == std::string_view::npos) return std::string(path);
  return std::string(path.substr(slash + 1));
}

void Vfs::AddFile(std::string_view path, std::string content) {
  files_[NormalizePath(path)] = std::move(content);
}

bool Vfs::Exists(std::string_view path) const {
  return files_.find(NormalizePath(path)) != files_.end();
}

Result<std::string_view> Vfs::Read(std::string_view path) const {
  auto it = files_.find(NormalizePath(path));
  if (it == files_.end()) {
    return Status::NotFound("no such file: " + std::string(path));
  }
  return std::string_view(it->second);
}

std::vector<std::string> Vfs::Files() const {
  std::vector<std::string> out;
  out.reserve(files_.size());
  for (const auto& [path, content] : files_) out.push_back(path);
  return out;
}

std::vector<std::string> Vfs::Directories() const {
  std::set<std::string> dirs;
  for (const auto& [path, content] : files_) {
    std::string dir = DirName(path);
    while (!dir.empty()) {
      dirs.insert(dir);
      dir = DirName(dir);
    }
  }
  return std::vector<std::string>(dirs.begin(), dirs.end());
}

Result<std::string> Vfs::ResolveInclude(
    std::string_view name, std::string_view including_file, bool angled,
    const std::vector<std::string>& include_dirs) const {
  if (!angled) {
    std::string relative = DirName(including_file);
    std::string candidate =
        NormalizePath(relative.empty() ? std::string(name)
                                       : relative + "/" + std::string(name));
    if (Exists(candidate)) return candidate;
  }
  for (const std::string& dir : include_dirs) {
    std::string candidate =
        NormalizePath(dir.empty() ? std::string(name)
                                  : dir + "/" + std::string(name));
    if (Exists(candidate)) return candidate;
  }
  // Last resort: a bare path that exists as written.
  std::string bare = NormalizePath(name);
  if (Exists(bare)) return bare;
  return Status::NotFound("cannot resolve include '" + std::string(name) +
                          "' from " + std::string(including_file));
}

uint64_t Vfs::TotalBytes() const {
  uint64_t total = 0;
  for (const auto& [path, content] : files_) total += content.size();
  return total;
}

uint64_t Vfs::TotalLines() const {
  uint64_t total = 0;
  for (const auto& [path, content] : files_) {
    total += static_cast<uint64_t>(
        std::count(content.begin(), content.end(), '\n'));
    if (!content.empty() && content.back() != '\n') ++total;
  }
  return total;
}

}  // namespace frappe::extractor
