#ifndef FRAPPE_EXTRACTOR_C_PARSER_H_
#define FRAPPE_EXTRACTOR_C_PARSER_H_

#include "common/status.h"
#include "extractor/c_ast.h"
#include "extractor/preprocessor.h"

namespace frappe::extractor {

// Parses a preprocessed token stream into a TranslationUnit.
//
// Supported C subset (documented in DESIGN.md): functions (definitions,
// prototypes, static, variadic), globals (with static/extern), struct/
// union/enum definitions (incl. bitfields and nested records), typedefs,
// pointer/array/function-pointer declarators, the full statement set of
// C89 plus the expression grammar including casts, sizeof/_Alignof,
// member access, and assignment operators. GNU attribute syntax is
// skipped; K&R-style definitions are not supported.
Result<TranslationUnit> ParseUnit(const PreprocessedUnit& unit);

}  // namespace frappe::extractor

#endif  // FRAPPE_EXTRACTOR_C_PARSER_H_
