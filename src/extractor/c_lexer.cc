#include <cctype>
#include <cstring>

#include "extractor/c_token.h"

namespace frappe::extractor {

namespace {

// Multi-character punctuators, longest first so maximal munch works.
constexpr const char* kPunctuators[] = {
    "<<=", ">>=", "...", "->", "++", "--", "<<", ">>", "<=", ">=", "==",
    "!=",  "&&",  "||",  "+=", "-=", "*=", "/=", "%=", "&=", "^=", "|=",
    "##",  "[",   "]",   "(",  ")",  "{",  "}",  ".",  "&",  "*",  "+",
    "-",   "~",   "!",   "/",  "%",  "<",  ">",  "^",  "|",  "?",  ":",
    ";",   "=",   ",",   "#",
};

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

class Lexer {
 public:
  Lexer(std::string_view content, int file_index)
      : content_(content), file_(file_index) {}

  Result<std::vector<TokenLine>> Run() {
    std::vector<TokenLine> lines;
    TokenLine current;
    bool line_started = false;
    bool directive_possible = true;  // only whitespace so far on this line

    while (pos_ < content_.size()) {
      char c = content_[pos_];
      // Line continuation: splice.
      if (c == '\\' && pos_ + 1 < content_.size() &&
          (content_[pos_ + 1] == '\n' ||
           (content_[pos_ + 1] == '\r' && pos_ + 2 < content_.size() &&
            content_[pos_ + 2] == '\n'))) {
        pos_ += content_[pos_ + 1] == '\n' ? 2 : 3;
        ++line_;
        col_ = 1;
        continue;
      }
      if (c == '\n') {
        ++pos_;
        ++line_;
        col_ = 1;
        if (line_started) {
          lines.push_back(std::move(current));
          current = TokenLine();
          line_started = false;
        }
        directive_possible = true;
        continue;
      }
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
        ++col_;
        continue;
      }
      // Comments.
      if (c == '/' && pos_ + 1 < content_.size()) {
        if (content_[pos_ + 1] == '/') {
          while (pos_ < content_.size() && content_[pos_] != '\n') {
            ++pos_;
            ++col_;
          }
          continue;
        }
        if (content_[pos_ + 1] == '*') {
          pos_ += 2;
          col_ += 2;
          while (pos_ + 1 < content_.size() &&
                 !(content_[pos_] == '*' && content_[pos_ + 1] == '/')) {
            if (content_[pos_] == '\n') {
              ++line_;
              col_ = 1;
            } else {
              ++col_;
            }
            ++pos_;
          }
          if (pos_ + 1 >= content_.size()) {
            return Status::ParseError("unterminated block comment");
          }
          pos_ += 2;
          col_ += 2;
          continue;
        }
      }
      // Directive marker.
      if (c == '#' && directive_possible) {
        current.is_directive = true;
        line_started = true;
        directive_possible = false;
        ++pos_;
        ++col_;
        continue;
      }
      directive_possible = false;
      line_started = true;

      CToken token;
      token.loc = SourceLoc{file_, line_, col_};
      if (IsIdentStart(c)) {
        size_t start = pos_;
        while (pos_ < content_.size() && IsIdentChar(content_[pos_])) {
          ++pos_;
          ++col_;
        }
        token.kind = CToken::Kind::kIdent;
        token.text = std::string(content_.substr(start, pos_ - start));
      } else if (std::isdigit(static_cast<unsigned char>(c)) ||
                 (c == '.' && pos_ + 1 < content_.size() &&
                  std::isdigit(
                      static_cast<unsigned char>(content_[pos_ + 1])))) {
        size_t start = pos_;
        // pp-number: digits, letters, dots, and exponent signs.
        while (pos_ < content_.size()) {
          char n = content_[pos_];
          if (IsIdentChar(n) || n == '.') {
            ++pos_;
            ++col_;
          } else if ((n == '+' || n == '-') && pos_ > start &&
                     (content_[pos_ - 1] == 'e' || content_[pos_ - 1] == 'E' ||
                      content_[pos_ - 1] == 'p' ||
                      content_[pos_ - 1] == 'P')) {
            ++pos_;
            ++col_;
          } else {
            break;
          }
        }
        token.kind = CToken::Kind::kNumber;
        token.text = std::string(content_.substr(start, pos_ - start));
      } else if (c == '"' || c == '\'') {
        char quote = c;
        size_t start = pos_;
        ++pos_;
        ++col_;
        while (pos_ < content_.size() && content_[pos_] != quote) {
          if (content_[pos_] == '\\' && pos_ + 1 < content_.size()) {
            ++pos_;
            ++col_;
          }
          if (content_[pos_] == '\n') {
            return Status::ParseError("newline in literal at line " +
                                      std::to_string(line_));
          }
          ++pos_;
          ++col_;
        }
        if (pos_ >= content_.size()) {
          return Status::ParseError("unterminated literal at line " +
                                    std::to_string(line_));
        }
        ++pos_;
        ++col_;
        token.kind = quote == '"' ? CToken::Kind::kString
                                  : CToken::Kind::kCharLit;
        token.text = std::string(content_.substr(start, pos_ - start));
      } else {
        bool matched = false;
        for (const char* p : kPunctuators) {
          size_t len = std::strlen(p);
          if (content_.substr(pos_, len) == p) {
            token.kind = CToken::Kind::kPunct;
            token.text = p;
            pos_ += len;
            col_ += static_cast<int>(len);
            matched = true;
            break;
          }
        }
        if (!matched) {
          return Status::ParseError(std::string("stray character '") + c +
                                    "' at line " + std::to_string(line_));
        }
      }
      token.length = static_cast<int>(token.text.size());
      current.tokens.push_back(std::move(token));
    }
    if (line_started) lines.push_back(std::move(current));
    return lines;
  }

 private:
  std::string_view content_;
  int file_;
  size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
};

}  // namespace

Result<std::vector<TokenLine>> LexCFile(std::string_view content,
                                        int file_index) {
  Lexer lexer(content, file_index);
  return lexer.Run();
}

}  // namespace frappe::extractor
