#ifndef FRAPPE_COMMON_STRING_UTIL_H_
#define FRAPPE_COMMON_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace frappe {

// Splits `input` on `sep`, keeping empty pieces.
std::vector<std::string_view> Split(std::string_view input, char sep);

// Splits `input` on `sep`, dropping empty pieces.
std::vector<std::string_view> SplitSkipEmpty(std::string_view input, char sep);

// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);
std::string Join(const std::vector<std::string_view>& parts,
                 std::string_view sep);

// ASCII-only case transforms (identifiers and file names are ASCII here).
std::string ToLower(std::string_view s);
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

// Removes leading/trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view s);

// Glob-style match supporting '*' (any run) and '?' (any single char).
// Case-insensitive when `ignore_case` is set (the name index folds case the
// way Neo4j's lucene auto-index did).
bool WildcardMatch(std::string_view pattern, std::string_view text,
                   bool ignore_case = false);

// Returns true if `pattern` contains glob metacharacters.
bool HasWildcards(std::string_view pattern);

// Levenshtein edit distance, early-exiting with `limit + 1` once the
// distance provably exceeds `limit`. Used for fuzzy name search.
size_t BoundedEditDistance(std::string_view a, std::string_view b,
                           size_t limit);

// Parses a signed decimal integer; returns false on any non-numeric input.
bool ParseInt64(std::string_view s, int64_t* out);

// Formats `bytes` as a human-readable quantity ("1.23 MB").
std::string HumanBytes(uint64_t bytes);

// Escapes `s` for embedding inside a JSON string literal (quotes,
// backslashes, control characters as \uXXXX). Does NOT add surrounding
// quotes; JsonQuote does.
std::string JsonEscape(std::string_view s);
std::string JsonQuote(std::string_view s);

}  // namespace frappe

#endif  // FRAPPE_COMMON_STRING_UTIL_H_
