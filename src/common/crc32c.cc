#include "common/crc32c.h"

#include <cstring>
#include <mutex>

namespace frappe::common {

namespace {

constexpr uint32_t kPoly = 0x82F63B78u;  // Castagnoli, reflected

uint32_t table[8][256];
std::once_flag table_once;

void InitTables() {
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int k = 0; k < 8; ++k) {
      crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
    }
    table[0][i] = crc;
  }
  for (uint32_t i = 0; i < 256; ++i) {
    for (int t = 1; t < 8; ++t) {
      table[t][i] = (table[t - 1][i] >> 8) ^ table[0][table[t - 1][i] & 0xFF];
    }
  }
}

// Slice-by-8: consumes 8 bytes per step through 8 parallel tables.
// Assumes little-endian (everything we target).
uint32_t SoftExtend(uint32_t state, const uint8_t* p, size_t n) {
  std::call_once(table_once, InitTables);
  while (n >= 8) {
    uint64_t w;
    std::memcpy(&w, p, 8);
    w ^= state;
    state = table[7][w & 0xFF] ^ table[6][(w >> 8) & 0xFF] ^
            table[5][(w >> 16) & 0xFF] ^ table[4][(w >> 24) & 0xFF] ^
            table[3][(w >> 32) & 0xFF] ^ table[2][(w >> 40) & 0xFF] ^
            table[1][(w >> 48) & 0xFF] ^ table[0][(w >> 56) & 0xFF];
    p += 8;
    n -= 8;
  }
  while (n-- > 0) {
    state = (state >> 8) ^ table[0][(state ^ *p++) & 0xFF];
  }
  return state;
}

#if defined(__x86_64__)
// The crc32 instruction has 3-cycle latency but single-cycle throughput: a
// sequential chain caps at ~2.5 GB/s while three independent chains keep
// the unit saturated. We run three lanes over kLane-byte stripes and merge
// them with a precomputed GF(2) operator that advances a CRC register over
// kLane zero bytes (the standard zlib crc32_combine construction).
constexpr size_t kLane = 2048;
constexpr size_t kBlock = 3 * kLane;

using Gf2Matrix = uint32_t[32];

uint32_t Gf2Times(const Gf2Matrix mat, uint32_t vec) {
  uint32_t sum = 0;
  for (int bit = 0; vec != 0; ++bit, vec >>= 1) {
    if (vec & 1) sum ^= mat[bit];
  }
  return sum;
}

void Gf2Square(Gf2Matrix square, const Gf2Matrix mat) {
  for (int bit = 0; bit < 32; ++bit) square[bit] = Gf2Times(mat, mat[bit]);
}

// lane_shift[b][v] advances the register by kLane zero bytes for the crc
// byte v at position b: apply as XOR of the four byte lookups.
uint32_t lane_shift[4][256];
std::once_flag lane_once;

void InitLaneShift() {
  // Operator for one zero bit (reflected polynomial), squared repeatedly
  // up to kLane * 8 bits.
  Gf2Matrix odd, even;
  odd[0] = kPoly;
  for (int bit = 1; bit < 32; ++bit) odd[bit] = 1u << (bit - 1);
  Gf2Square(even, odd);   // 2 bits
  Gf2Square(odd, even);   // 4 bits
  Gf2Matrix* cur = &odd;
  Gf2Matrix* next = &even;
  for (size_t bits = 4; bits < kLane * 8; bits *= 2) {
    Gf2Square(*next, *cur);
    std::swap(cur, next);
  }
  for (int b = 0; b < 4; ++b) {
    for (uint32_t v = 0; v < 256; ++v) {
      lane_shift[b][v] = Gf2Times(*cur, v << (8 * b));
    }
  }
}

uint32_t LaneShift(uint32_t crc) {
  return lane_shift[0][crc & 0xFF] ^ lane_shift[1][(crc >> 8) & 0xFF] ^
         lane_shift[2][(crc >> 16) & 0xFF] ^ lane_shift[3][crc >> 24];
}

__attribute__((target("sse4.2"))) uint32_t HwExtend(uint32_t state,
                                                    const uint8_t* p,
                                                    size_t n) {
  uint64_t c = state;
  if (n >= kBlock) {
    std::call_once(lane_once, InitLaneShift);
    do {
      uint64_t c1 = 0, c2 = 0;
      for (size_t i = 0; i < kLane; i += 8) {
        uint64_t w0, w1, w2;
        std::memcpy(&w0, p + i, 8);
        std::memcpy(&w1, p + kLane + i, 8);
        std::memcpy(&w2, p + 2 * kLane + i, 8);
        c = __builtin_ia32_crc32di(c, w0);
        c1 = __builtin_ia32_crc32di(c1, w1);
        c2 = __builtin_ia32_crc32di(c2, w2);
      }
      c = LaneShift(static_cast<uint32_t>(c)) ^ c1;
      c = LaneShift(static_cast<uint32_t>(c)) ^ c2;
      p += kBlock;
      n -= kBlock;
    } while (n >= kBlock);
  }
  while (n >= 8) {
    uint64_t w;
    std::memcpy(&w, p, 8);
    c = __builtin_ia32_crc32di(c, w);
    p += 8;
    n -= 8;
  }
  uint32_t c32 = static_cast<uint32_t>(c);
  while (n-- > 0) {
    c32 = __builtin_ia32_crc32qi(c32, *p++);
  }
  return c32;
}

bool HasHardwareCrc() { return __builtin_cpu_supports("sse4.2"); }
#endif

uint32_t Extend(uint32_t state, const uint8_t* p, size_t n) {
#if defined(__x86_64__)
  static const bool hw = HasHardwareCrc();
  if (hw) return HwExtend(state, p, n);
#endif
  return SoftExtend(state, p, n);
}

}  // namespace

uint32_t Crc32c(const void* data, size_t size) {
  return ~Extend(~0u, static_cast<const uint8_t*>(data), size);
}

uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t size) {
  return ~Extend(~crc, static_cast<const uint8_t*>(data), size);
}

}  // namespace frappe::common
