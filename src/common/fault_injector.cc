#include "common/fault_injector.h"

#include <cstdlib>

#include "common/log_hook.h"
#include "common/string_util.h"

namespace frappe::common {

FaultInjector& FaultInjector::Global() {
  static FaultInjector* instance = [] {
    auto* injector = new FaultInjector();
    const char* env = std::getenv("FRAPPE_FAULT");
    if (env != nullptr && *env != '\0') {
      Status s = injector->Parse(env);
      if (!s.ok()) {
        LogMessage(kLogWarn, "fault_injector",
                   "ignoring FRAPPE_FAULT: " + s.ToString());
      }
    }
    return injector;
  }();
  return *instance;
}

void FaultInjector::Arm(std::string_view site, uint64_t countdown,
                        int64_t times) {
  if (countdown == 0) countdown = 1;
  std::lock_guard<std::mutex> lock(mu_);
  Site& s = sites_[std::string(site)];
  s.remaining_skip = countdown - 1;
  s.times = times;
  active_.store(true, std::memory_order_relaxed);
}

void FaultInjector::Disarm(std::string_view site) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  if (it != sites_.end()) sites_.erase(it);
  active_.store(!sites_.empty(), std::memory_order_relaxed);
}

void FaultInjector::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  sites_.clear();
  active_.store(false, std::memory_order_relaxed);
}

Status FaultInjector::Parse(std::string_view spec) {
  // Validate the whole spec before arming anything.
  std::vector<std::pair<std::string, uint64_t>> parsed;
  size_t pos = 0;
  while (pos <= spec.size()) {
    size_t comma = spec.find(',', pos);
    std::string_view entry = spec.substr(
        pos, comma == std::string_view::npos ? spec.size() - pos
                                             : comma - pos);
    pos = comma == std::string_view::npos ? spec.size() + 1 : comma + 1;
    if (entry.empty()) {
      if (comma == std::string_view::npos && parsed.empty()) break;
      return Status::InvalidArgument("fault spec: empty entry in '" +
                                     std::string(spec) + "'");
    }
    size_t colon = entry.rfind(':');
    std::string_view site = entry.substr(0, colon);
    uint64_t countdown = 1;
    if (colon != std::string_view::npos) {
      int64_t n = 0;
      if (!ParseInt64(entry.substr(colon + 1), &n) || n < 1) {
        return Status::InvalidArgument("fault spec: bad countdown in '" +
                                       std::string(entry) + "'");
      }
      countdown = static_cast<uint64_t>(n);
    }
    if (site.empty()) {
      return Status::InvalidArgument("fault spec: empty site name in '" +
                                     std::string(entry) + "'");
    }
    parsed.emplace_back(std::string(site), countdown);
  }
  for (const auto& [site, countdown] : parsed) Arm(site, countdown);
  return Status::OK();
}

bool FaultInjector::ShouldFail(std::string_view site) {
  if (!active_.load(std::memory_order_relaxed)) return false;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  if (it == sites_.end()) return false;
  Site& s = it->second;
  ++s.hits;
  if (s.remaining_skip > 0) {
    --s.remaining_skip;
    return false;
  }
  if (s.times == 0) return false;
  if (s.times > 0) --s.times;
  ++s.fires;
  return true;
}

uint64_t FaultInjector::HitCount(std::string_view site) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.hits;
}

uint64_t FaultInjector::FireCount(std::string_view site) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.fires;
}

std::vector<std::string> FaultInjector::ArmedSites() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(sites_.size());
  for (const auto& [name, site] : sites_) {
    if (site.times != 0) out.push_back(name);
  }
  return out;
}

}  // namespace frappe::common
