#ifndef FRAPPE_COMMON_FILE_IO_H_
#define FRAPPE_COMMON_FILE_IO_H_

#include <string>
#include <string_view>

#include "common/status.h"

namespace frappe::common {

// Durable POSIX file helpers for the snapshot persistence layer. All
// operations map errno into the Status vocabulary (ENOSPC/EDQUOT →
// ResourceExhausted, ENOENT → NotFound, everything else → Internal) and are
// threaded through FaultInjector so tests can simulate short writes,
// ENOSPC, fsync failures and crashes. The fault sites, relative to
// `fault_prefix` (default "file"):
//
//   <prefix>.open           open() of the output file fails
//   <prefix>.write_short    a data write stops halfway, then errors
//   <prefix>.write_enospc   a data write fails with simulated ENOSPC
//   <prefix>.fsync          fsync() of the file fails
//   <prefix>.crash_rename   simulated crash after the temp file is durable
//                           but before rename (AtomicWriteFile only; the
//                           temp file is left behind, as a real crash would)
//   <prefix>.rename         rename() fails
//   <prefix>.dirsync        fsync() of the parent directory fails
//   <prefix>.read           read path fails (ReadFile)

// "<path>.tmp.<pid>" — the scratch name AtomicWriteFile and SnapshotManager
// write to before renaming into place.
std::string TempPathFor(const std::string& path);

// Reads the whole file into `*out` (replacing its contents).
Status ReadFile(const std::string& path, std::string* out,
                std::string_view fault_prefix = "file");

// Writes `data` to `path` (truncating) and fsyncs the file before closing,
// so the bytes are durable once this returns OK. Does NOT fsync the parent
// directory — the file itself may not survive a crash until its directory
// entry is synced (RenameFile / SyncParentDir do that).
Status WriteFileDurable(const std::string& path, std::string_view data,
                        std::string_view fault_prefix = "file");

// rename(from, to) followed by an fsync of `to`'s parent directory, making
// the swap itself durable. POSIX rename is atomic: readers see either the
// old or the new file, never a mix.
Status RenameFile(const std::string& from, const std::string& to,
                  std::string_view fault_prefix = "file");

// fsync of the directory containing `path` (persists create/rename entries).
Status SyncParentDir(const std::string& path,
                     std::string_view fault_prefix = "file");

// Best-effort unlink; missing file is OK.
Status RemoveFileIfExists(const std::string& path);

// The crash-safe save primitive: write to TempPathFor(path), fsync, rename
// over `path`, fsync the parent directory. A crash (or injected fault) at
// any point leaves `path` as either the complete old file or the complete
// new file — never a torn mix. On failure the temp file is removed, except
// for the injected crash site, which leaves it behind like a real crash.
Status AtomicWriteFile(const std::string& path, std::string_view data,
                       std::string_view fault_prefix = "file");

}  // namespace frappe::common

#endif  // FRAPPE_COMMON_FILE_IO_H_
