#include "common/string_util.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cstdio>

namespace frappe {

std::vector<std::string_view> Split(std::string_view input, char sep) {
  std::vector<std::string_view> out;
  size_t start = 0;
  while (true) {
    size_t pos = input.find(sep, start);
    if (pos == std::string_view::npos) {
      out.push_back(input.substr(start));
      break;
    }
    out.push_back(input.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::vector<std::string_view> SplitSkipEmpty(std::string_view input,
                                             char sep) {
  std::vector<std::string_view> out;
  for (std::string_view piece : Split(input, sep)) {
    if (!piece.empty()) out.push_back(piece);
  }
  return out;
}

namespace {
template <typename Parts>
std::string JoinImpl(const Parts& parts, std::string_view sep) {
  std::string out;
  bool first = true;
  for (const auto& p : parts) {
    if (!first) out.append(sep);
    out.append(p);
    first = false;
  }
  return out;
}
}  // namespace

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  return JoinImpl(parts, sep);
}

std::string Join(const std::vector<std::string_view>& parts,
                 std::string_view sep) {
  return JoinImpl(parts, sep);
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string_view StripWhitespace(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() &&
         std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  size_t end = s.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

bool WildcardMatch(std::string_view pattern, std::string_view text,
                   bool ignore_case) {
  auto eq = [ignore_case](char a, char b) {
    if (ignore_case) {
      return std::tolower(static_cast<unsigned char>(a)) ==
             std::tolower(static_cast<unsigned char>(b));
    }
    return a == b;
  };
  // Iterative matcher with single-star backtracking (classic glob loop).
  size_t p = 0, t = 0;
  size_t star = std::string_view::npos, star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '?' || eq(pattern[p], text[t]))) {
      ++p;
      ++t;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      star_t = t;
    } else if (star != std::string_view::npos) {
      p = star + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

bool HasWildcards(std::string_view pattern) {
  return pattern.find_first_of("*?") != std::string_view::npos;
}

size_t BoundedEditDistance(std::string_view a, std::string_view b,
                           size_t limit) {
  if (a.size() > b.size()) std::swap(a, b);
  if (b.size() - a.size() > limit) return limit + 1;
  std::vector<size_t> prev(a.size() + 1);
  std::vector<size_t> cur(a.size() + 1);
  for (size_t i = 0; i <= a.size(); ++i) prev[i] = i;
  for (size_t j = 1; j <= b.size(); ++j) {
    cur[0] = j;
    size_t row_min = cur[0];
    for (size_t i = 1; i <= a.size(); ++i) {
      size_t subst = prev[i - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      cur[i] = std::min({prev[i] + 1, cur[i - 1] + 1, subst});
      row_min = std::min(row_min, cur[i]);
    }
    if (row_min > limit) return limit + 1;
    std::swap(prev, cur);
  }
  return prev[a.size()] > limit ? limit + 1 : prev[a.size()];
}

bool ParseInt64(std::string_view s, int64_t* out) {
  if (s.empty()) return false;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), *out);
  return ec == std::errc() && ptr == s.data() + s.size();
}

std::string HumanBytes(uint64_t bytes) {
  static const char* kUnits[] = {"B", "KB", "MB", "GB", "TB"};
  double value = static_cast<double>(bytes);
  int unit = 0;
  while (value >= 1024.0 && unit < 4) {
    value /= 1024.0;
    ++unit;
  }
  char buf[32];
  if (unit == 0) {
    std::snprintf(buf, sizeof(buf), "%llu B",
                  static_cast<unsigned long long>(bytes));
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f %s", value, kUnits[unit]);
  }
  return buf;
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonQuote(std::string_view s) {
  return "\"" + JsonEscape(s) + "\"";
}

}  // namespace frappe
