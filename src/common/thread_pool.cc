#include "common/thread_pool.h"

#include <cstdlib>

namespace frappe {

ThreadPool::ThreadPool(size_t workers) {
  workers_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_ready_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::RunLanes(size_t lanes,
                          const std::function<void(size_t)>& fn) {
  if (lanes <= 1) {
    if (lanes == 1) fn(0);
    return;
  }
  // Join state lives on the caller's stack; lanes signal a countdown.
  struct Join {
    std::mutex mu;
    std::condition_variable done;
    size_t pending;
  } join;
  join.pending = lanes - 1;

  {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t lane = 1; lane < lanes; ++lane) {
      queue_.emplace_back([&fn, &join, lane] {
        fn(lane);
        std::lock_guard<std::mutex> jlock(join.mu);
        if (--join.pending == 0) join.done.notify_one();
      });
    }
  }
  work_ready_.notify_all();

  fn(0);
  // Help drain the queue while waiting. This guarantees progress even when
  // the pool has fewer workers than lanes — including zero workers, where
  // the caller ends up running every lane itself (an 8-lane run on a
  // 1-core machine is then simply sequential, with identical results).
  for (;;) {
    std::function<void()> task;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!queue_.empty()) {
        task = std::move(queue_.front());
        queue_.pop_front();
      }
    }
    if (task) {
      task();
      continue;
    }
    std::unique_lock<std::mutex> lock(join.mu);
    if (join.pending == 0) return;
    join.done.wait(lock, [&join] { return join.pending == 0; });
    return;
  }
}

size_t ThreadPool::ResolveThreads(size_t requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("FRAPPE_THREADS")) {
    long v = std::atol(env);
    if (v > 0) return static_cast<size_t>(v);
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

ThreadPool& ThreadPool::Shared() {
  static ThreadPool pool(ResolveThreads(0) - 1);
  return pool;
}

}  // namespace frappe
